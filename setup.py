"""Legacy setup shim.

The sandboxed environment ships an older setuptools without the ``wheel``
package, so PEP 660 editable installs fail; this shim lets
``pip install -e . --no-use-pep517`` fall back to ``setup.py develop``.
All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()

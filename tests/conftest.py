"""Shared fixtures for the test suite."""

import os

import pytest

from repro.config import default_config
from repro.core.aos import AOSRuntime


@pytest.fixture(autouse=True, scope="session")
def _hermetic_artifact_cache(tmp_path_factory):
    """Point the default artifact cache at a per-session temp directory so
    tests exercising the CLI (which caches by default) never touch, or get
    polluted by, the user's real ``~/.cache/repro``."""
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("repro-cache"))
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous


@pytest.fixture
def aos_runtime() -> AOSRuntime:
    """A fast-PAC AOS runtime (behaviourally identical, cheaper to drive)."""
    return AOSRuntime(pac_mode="fast")


@pytest.fixture
def qarma_runtime() -> AOSRuntime:
    """An AOS runtime computing real QARMA PACs."""
    return AOSRuntime(pac_mode="qarma")


@pytest.fixture
def config():
    return default_config("aos")

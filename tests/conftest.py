"""Shared fixtures for the test suite."""

import pytest

from repro.config import default_config
from repro.core.aos import AOSRuntime


@pytest.fixture
def aos_runtime() -> AOSRuntime:
    """A fast-PAC AOS runtime (behaviourally identical, cheaper to drive)."""
    return AOSRuntime(pac_mode="fast")


@pytest.fixture
def qarma_runtime() -> AOSRuntime:
    """An AOS runtime computing real QARMA PACs."""
    return AOSRuntime(pac_mode="qarma")


@pytest.fixture
def config():
    return default_config("aos")

"""Paranoid invariant-oracle tests.

The oracle's contract: a clean harness or simulation audits clean, and
each seeded corruption class trips the matching invariant — turning a
silent escape into a first-class ``InvariantViolation`` when the campaign
runs with ``paranoid=True``.
"""

import dataclasses

import pytest

from repro.errors import InvariantViolation
from repro.experiments import CellSpec, RunSettings, simulate_cell
from repro.faults import (
    CampaignConfig,
    Deadline,
    FaultHarness,
    FaultInjector,
    FaultKind,
    FaultSpec,
    RunOutcome,
    run_campaign_cell,
)
from repro.supervise import InvariantOracle, Violation

HARNESS_KW = dict(workload="gcc", seed=11, objects=10)


def make_harness(**overrides):
    kwargs = dict(HARNESS_KW)
    kwargs.update(overrides)
    harness = FaultHarness(**kwargs)
    harness.populate()
    return harness


def inject(harness, kind, location=0, seed=11):
    return FaultInjector().inject(
        harness, FaultSpec(kind=kind, location=location, seed=seed)
    )


def violated(violations, invariant):
    return [v for v in violations if v.invariant == invariant]


class TestCleanAudits:
    def test_clean_harness_has_no_violations(self):
        harness = make_harness()
        harness.probe(deadline=Deadline(None), churn=2)
        oracle = InvariantOracle(shadow_sample=1)
        assert oracle.audit_harness(harness) == []

    def test_clean_pa_aos_harness_has_no_violations(self):
        harness = make_harness(mechanism="pa+aos")
        harness.probe(deadline=Deadline(None), churn=2)
        assert InvariantOracle(shadow_sample=1).audit_harness(harness) == []

    def test_shadow_sampling_is_deterministic(self):
        oracle = InvariantOracle(shadow_sample=4)
        tokens = [f"cell-{i}" for i in range(64)]
        first = [oracle.samples_shadow(t) for t in tokens]
        assert first == [oracle.samples_shadow(t) for t in tokens]
        assert any(first) and not all(first)  # a sample, not all-or-nothing

    def test_shadow_sample_one_checks_everything(self):
        oracle = InvariantOracle(shadow_sample=1)
        assert all(oracle.samples_shadow(f"cell-{i}") for i in range(16))


class TestSeededCorruption:
    def test_hbt_drop_trips_occupancy_and_pointer_bounds(self):
        harness = make_harness()
        inject(harness, FaultKind.HBT_ENTRY_DROP)
        violations = InvariantOracle().audit_harness(harness)
        assert violated(violations, "hbt-occupancy")
        assert violated(violations, "pointer-bounds")

    def test_ahc_zero_trips_pointer_ahc(self):
        harness = make_harness()
        inject(harness, FaultKind.PTR_AHC_ZERO)
        violations = InvariantOracle().audit_harness(harness)
        assert violated(violations, "pointer-ahc")

    def test_violation_formats_with_invariant_name(self):
        violation = Violation("pointer-ahc", "live pointer lost its AHC")
        assert "pointer-ahc" in str(violation)

    def test_bwb_hint_beyond_associativity_trips_bwb_way(self):
        harness = make_harness()
        harness.mcu.bwb.update(0x123, harness.hbt.ways + 3)
        violations = InvariantOracle().check_bwb(harness.mcu)
        assert violated(violations, "bwb-way")

    def test_inspector_raises_on_corruption(self):
        harness = make_harness()
        # Seed a structurally-impossible way hint: beyond associativity.
        harness.mcu.bwb.update(0x123, harness.hbt.ways + 3)
        inspect = InvariantOracle().inspector("gcc/test-cell")
        with pytest.raises(InvariantViolation) as excinfo:
            inspect(harness.mcu, harness.hbt)
        assert excinfo.value.violations
        assert "gcc/test-cell" in str(excinfo.value)

    def test_inspector_passes_clean_state(self):
        harness = make_harness()
        inspect = InvariantOracle().inspector("gcc/clean")
        inspect(harness.mcu, harness.hbt)  # must not raise

    def test_inspector_tolerates_unprotected_mechanisms(self):
        # Unprotected simulator configs have no MCU/HBT to audit.
        InvariantOracle().inspector("baseline/cell")(None, None)


class TestParanoidCampaign:
    def _config(self, **overrides):
        defaults = dict(
            workloads=("gcc",), mechanisms=("aos",), objects=8, churn=2, seed=3
        )
        defaults.update(overrides)
        return CampaignConfig(**defaults)

    def test_ahc_zero_promoted_from_silent_to_invariant(self):
        """Acceptance: the §VII-C escape is SILENT under plain AOS, but
        ``--paranoid`` catches the zeroed AHC as an invariant violation."""
        spec = FaultSpec(kind=FaultKind.PTR_AHC_ZERO, location=0, seed=11)
        plain = run_campaign_cell(self._config(), "gcc", "aos", spec)
        assert plain.outcome is RunOutcome.SILENT
        assert plain.invariant_violations == 0

        paranoid = run_campaign_cell(
            self._config(paranoid=True), "gcc", "aos", spec
        )
        assert paranoid.outcome is RunOutcome.INVARIANT
        assert paranoid.invariant_violations >= 1
        assert "pointer-ahc" in paranoid.detail

    def test_detected_cell_stays_detected_under_paranoid(self):
        spec = FaultSpec(kind=FaultKind.PTR_PAC_FLIP, location=0, seed=11)
        result = run_campaign_cell(self._config(paranoid=True), "gcc", "aos", spec)
        assert result.outcome is RunOutcome.DETECTED

    def test_hbt_corruption_audited_under_paranoid(self):
        """Acceptance: a seeded HBT-corruption fault registers oracle
        violations (the detection verdict itself is unchanged)."""
        spec = FaultSpec(kind=FaultKind.HBT_ENTRY_DROP, location=0, seed=11)
        result = run_campaign_cell(self._config(paranoid=True), "gcc", "aos", spec)
        assert result.invariant_violations >= 1

    def test_paranoid_meta_separates_checkpoints(self):
        from repro.faults import Campaign

        plain = Campaign(self._config())
        paranoid = Campaign(self._config(paranoid=True))
        assert plain._meta() != paranoid._meta()

    def test_stable_payload_drops_elapsed_only(self):
        spec = FaultSpec(kind=FaultKind.PTR_PAC_FLIP, location=0, seed=11)
        result = run_campaign_cell(self._config(), "gcc", "aos", spec)
        payload = result.to_payload()
        stable = result.stable_payload()
        payload.pop("elapsed")
        assert stable == payload


class TestParanoidSimulation:
    SETTINGS = RunSettings(instructions=3000, seed=7, scale=8)

    def test_paranoid_run_matches_plain_payload(self):
        cell = CellSpec("gcc", "aos")
        plain = simulate_cell(self.SETTINGS, cell)
        paranoid = simulate_cell(self.SETTINGS, cell, paranoid=True)
        assert dataclasses.asdict(paranoid) == dataclasses.asdict(plain)

    def test_paranoid_clean_for_unprotected_mechanism(self):
        cell = CellSpec("gcc", "baseline")
        paranoid = simulate_cell(self.SETTINGS, cell, paranoid=True)
        plain = simulate_cell(self.SETTINGS, cell)
        assert dataclasses.asdict(paranoid) == dataclasses.asdict(plain)


class TestInvariantViolationError:
    def test_carries_violations_and_pickles(self):
        import pickle

        err = InvariantViolation("cell X: 2 violations", ["a", "b"])
        clone = pickle.loads(pickle.dumps(err))
        assert clone.violations == ["a", "b"]
        assert str(clone) == str(err)

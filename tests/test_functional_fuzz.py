"""Property-based end-to-end fuzzing of the AOS runtime.

Random malloc/free/load/store sequences must uphold the two invariants
the paper establishes by construction:

- **no false negatives**: every out-of-bounds or temporally invalid access
  through a signed pointer faults;
- **no false positives**: accesses within a live allocation never fault
  (PAC collisions could in principle cause cross-object false *negatives*,
  never false positives on valid accesses — §VII-E).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aos import AOSRuntime
from repro.core.exceptions import AOSException, BoundsCheckFault, BoundsClearFault


class _Op:
    """Weighted random heap-op schedule."""

    MALLOC, FREE, LOAD_OK, STORE_OK, LOAD_OOB, LOAD_FREED = range(6)


schedule = st.lists(
    st.tuples(
        st.sampled_from([
            _Op.MALLOC, _Op.MALLOC, _Op.MALLOC,
            _Op.FREE,
            _Op.LOAD_OK, _Op.LOAD_OK, _Op.STORE_OK,
            _Op.LOAD_OOB, _Op.LOAD_FREED,
        ]),
        st.integers(min_value=0, max_value=2**31),
    ),
    min_size=5,
    max_size=80,
)


@given(schedule)
@settings(max_examples=40, deadline=None)
def test_no_false_positives_or_negatives(ops):
    rt = AOSRuntime(pac_mode="fast")
    live = []    # (pointer, size)
    freed = []   # dangling (re-signed) pointers

    for op, rand in ops:
        if op == _Op.MALLOC or not live:
            size = 16 + (rand % 256)
            live.append((rt.malloc(size), size))
            continue

        index = rand % len(live)
        pointer, size = live[index]

        if op == _Op.FREE:
            dangling = rt.free(pointer)
            freed.append(dangling)
            live.pop(index)
        elif op == _Op.LOAD_OK:
            offset = (rand % max(size - 8, 1)) & ~7
            rt.load(rt.offset(pointer, offset))  # must NOT raise
        elif op == _Op.STORE_OK:
            offset = (rand % max(size - 8, 1)) & ~7
            rt.store(rt.offset(pointer, offset), rand)  # must NOT raise
        elif op == _Op.LOAD_OOB:
            # Far beyond any allocation, so a PAC collision cannot make
            # another live object's bounds legitimately contain it.
            with pytest.raises(AOSException):
                rt.load(rt.offset(pointer, 0x4000_0000 + (rand % 4096)))
        elif op == _Op.LOAD_FREED and freed:
            with pytest.raises(AOSException):
                rt.load(freed[rand % len(freed)])

    # Every remaining live pointer still works.
    for pointer, size in live:
        rt.store(pointer, 1)
        assert rt.load(pointer) == 1
    # Every dangling pointer is still locked.
    for pointer in freed:
        with pytest.raises(BoundsCheckFault):
            rt.load(pointer)


@given(st.lists(st.integers(min_value=16, max_value=512), min_size=1, max_size=40))
@settings(max_examples=25, deadline=None)
def test_double_free_always_detected(sizes):
    rt = AOSRuntime(pac_mode="fast")
    danglings = []
    for size in sizes:
        p = rt.malloc(size)
        danglings.append(rt.free(p))
    for dangling in danglings:
        with pytest.raises(BoundsClearFault):
            rt.free(dangling)


@given(st.integers(min_value=1, max_value=60))
@settings(max_examples=15, deadline=None)
def test_hbt_row_pressure_resizes_transparently(n):
    """Force PAC collisions by allocating many same-sized objects under a
    tiny PAC space; the OS resize path must stay invisible to the user."""
    from repro.config import default_config
    import dataclasses

    config = default_config("aos")
    config = dataclasses.replace(config, pa=dataclasses.replace(config.pa, pac_bits=11))
    rt = AOSRuntime(config=config, pac_mode="fast")
    pointers = [rt.malloc(32) for _ in range(n * 32)]
    for i, p in enumerate(pointers):
        rt.store(p, i)
    for i, p in enumerate(pointers):
        assert rt.load(p) == i

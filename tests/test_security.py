"""Security analysis tests: the §VII detection matrix must match the paper."""

import pytest

from repro.mechanisms import REGISTRY
from repro.security import run_security_analysis
from repro.security.analysis import expected_aos
from repro.security.attacks import ATTACKS, AttackOutcome


@pytest.fixture(scope="module")
def matrix():
    return run_security_analysis()


class TestAOSClaims:
    """AOS must detect everything §VII claims it detects."""

    @pytest.mark.parametrize("attack", list(expected_aos()))
    def test_aos_outcome(self, matrix, attack):
        assert matrix.outcome(attack, "aos") is expected_aos()[attack]


class TestBaselineGaps:
    """The comparison points that motivate AOS."""

    def test_baseline_misses_spatial(self, matrix):
        assert not matrix.detected("adjacent-oob-read", "baseline")
        assert not matrix.detected("nonadjacent-oob-read", "baseline")

    def test_baseline_misses_temporal(self, matrix):
        assert not matrix.detected("use-after-free", "baseline")
        assert not matrix.detected("double-free", "baseline")

    def test_baseline_house_of_spirit_succeeds(self, matrix):
        """Fig. 1 works on an unprotected glibc-style heap."""
        assert not matrix.detected("house-of-spirit", "baseline")

    def test_rest_catches_adjacent_only(self, matrix):
        """Trip-wires stop adjacent overflows but not jumps (§I)."""
        assert matrix.detected("adjacent-oob-read", "rest")
        assert not matrix.detected("nonadjacent-oob-read", "rest")

    def test_pa_has_no_spatial_or_temporal_safety(self, matrix):
        """§II-B: PA alone detects neither OOB nor UAF."""
        assert not matrix.detected("adjacent-oob-read", "pa")
        assert not matrix.detected("use-after-free", "pa")

    def test_watchdog_detects_core_violations(self, matrix):
        for attack in ("adjacent-oob-read", "use-after-free", "double-free"):
            assert matrix.detected(attack, "watchdog")


class TestMatrixShape:
    def test_all_attacks_ran_on_all_mechanisms(self, matrix):
        assert set(matrix.results) == set(ATTACKS)
        for per_mech in matrix.results.values():
            assert set(per_mech) == set(REGISTRY.names())
        assert {"cryptsan", "pacsan", "pactight", "pacstack"} <= set(
            REGISTRY.names()
        )

    def test_format_table_renders(self, matrix):
        text = matrix.format_table()
        assert "house-of-spirit" in text
        assert "aos" in text

    def test_na_only_for_metadata_attacks(self, matrix):
        for attack, per_mech in matrix.results.items():
            for mech, result in per_mech.items():
                if result.outcome is AttackOutcome.NOT_APPLICABLE:
                    assert attack in (
                        "pac-forgery", "ahc-forgery", "metadata-brute-force",
                    )


class TestTagEntropy:
    """§X: small tags are brute-forceable; 16-bit PACs are not."""

    def test_mte_bypassed_by_brute_force(self, matrix):
        assert not matrix.detected("metadata-brute-force", "mte")

    def test_aos_survives_brute_force(self, matrix):
        assert matrix.detected("metadata-brute-force", "aos")

    def test_mte_catches_single_shot_violations(self, matrix):
        for attack in ("adjacent-oob-read", "use-after-free"):
            assert matrix.detected(attack, "mte")


class TestCheriRow:
    """§X: capabilities give spatial safety by construction but defer
    temporal safety to revocation (CHERIvoke)."""

    def test_spatial_by_construction(self, matrix):
        for attack in ("adjacent-oob-read", "nonadjacent-oob-read"):
            assert matrix.detected(attack, "cheri")

    def test_temporal_gap_without_revocation(self, matrix):
        assert not matrix.detected("use-after-free", "cheri")
        assert not matrix.detected("double-free", "cheri")

    def test_unforgeable(self, matrix):
        assert matrix.detected("house-of-spirit", "cheri")


class TestRunSelection:
    def test_subset_run(self):
        m = run_security_analysis(mechanisms=["baseline", "aos"], attacks=["use-after-free"])
        assert list(m.results) == ["use-after-free"]
        assert set(m.results["use-after-free"]) == {"baseline", "aos"}

"""Hashed bounds table tests: walks, capacity, gradual resizing (Fig. 10)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hbt import HashedBoundsTable
from repro.errors import SimulationError
from repro.memory.layout import DEFAULT_LAYOUT


def make_hbt(pac_bits=11, ways=1, compression=True):
    return HashedBoundsTable(
        pac_bits=pac_bits, initial_ways=ways, compression=compression
    )


class TestBasics:
    def test_table_bytes_matches_paper(self):
        """Table IV: 64K rows x 1 way x 64B = 4MB."""
        hbt = make_hbt(pac_bits=16, ways=1)
        assert hbt.table_bytes == 4 * 1024 * 1024

    def test_way_geometry(self):
        compressed = make_hbt(compression=True)
        raw = make_hbt(compression=False)
        assert compressed.slots_per_way == raw.slots_per_way == 8
        assert compressed.lines_per_way == 1
        assert raw.lines_per_way == 2  # 16-byte bounds span two lines (§V-D)
        assert raw.table_bytes == 2 * compressed.table_bytes

    def test_insert_then_find(self):
        hbt = make_hbt()
        way, slot, searched = hbt.insert(0x12, 0x20001000, 256)
        assert (way, slot, searched) == (0, 0, 1)
        found_way, accessed = hbt.find_valid(0x12, 0x20001080)
        assert found_way == 0

    def test_find_absent(self):
        hbt = make_hbt()
        way, accessed = hbt.find_valid(0x12, 0x20001000)
        assert way is None
        assert accessed == hbt.ways

    def test_out_of_bounds_address_not_found(self):
        hbt = make_hbt()
        hbt.insert(0x12, 0x20001000, 64)
        way, _ = hbt.find_valid(0x12, 0x20001040)
        assert way is None

    def test_clear_matching(self):
        hbt = make_hbt()
        hbt.insert(0x12, 0x20001000, 64)
        way, _ = hbt.clear_matching(0x12, 0x20001000)
        assert way == 0
        assert hbt.find_valid(0x12, 0x20001000)[0] is None

    def test_clear_absent_returns_none(self):
        """The double-free signal (§IV-D)."""
        hbt = make_hbt()
        way, _ = hbt.clear_matching(0x12, 0x20001000)
        assert way is None

    def test_same_pac_multiple_objects(self):
        """PAC collisions: one row holds several objects' bounds (§VI)."""
        hbt = make_hbt()
        hbt.insert(0x12, 0x20001000, 64)
        hbt.insert(0x12, 0x20002000, 64)
        assert hbt.find_valid(0x12, 0x20001000)[0] is not None
        assert hbt.find_valid(0x12, 0x20002020)[0] is not None

    def test_row_capacity_overflow_raises(self):
        hbt = make_hbt(ways=1)
        for i in range(8):
            hbt.insert(0x12, 0x20000000 + 0x1000 * i, 64)
        with pytest.raises(SimulationError):
            hbt.insert(0x12, 0x20010000, 64)
        assert hbt.stats.insert_failures == 1

    def test_cleared_slot_is_reused(self):
        """§IV-C: the initialised entry is reused by a new allocation."""
        hbt = make_hbt(ways=1)
        for i in range(8):
            hbt.insert(0x12, 0x20000000 + 0x1000 * i, 64)
        hbt.clear_matching(0x12, 0x20003000)
        way, slot, _ = hbt.insert(0x12, 0x20010000, 64)
        assert (way, slot) == (0, 3)

    def test_occupancy_helpers(self):
        hbt = make_hbt()
        hbt.insert(0x12, 0x20001000, 64)
        hbt.insert(0x13, 0x20002000, 64)
        assert hbt.row_occupancy(0x12) == 1
        assert hbt.total_records() == 2
        assert hbt.max_row_occupancy() == 1


class TestAddressing:
    def test_line_address_formula(self):
        """Eq. 1/2: BndAddr = base + (PAC << (log2(assoc)+6)) + (way << 6)."""
        hbt = make_hbt(ways=4)
        base = DEFAULT_LAYOUT.hbt_base
        assert hbt.line_address(0, 0) == base
        assert hbt.line_address(1, 0) == base + (1 << (2 + 6))
        assert hbt.line_address(1, 3) == base + (1 << 8) + (3 << 6)

    def test_line_addresses_64b_aligned(self):
        hbt = make_hbt(ways=2)
        for pac in (0, 1, 100):
            for way in range(2):
                assert hbt.line_address(pac, way) % 64 == 0

    def test_rejects_bad_pac(self):
        with pytest.raises(SimulationError):
            make_hbt(pac_bits=11).line_address(1 << 11, 0)

    def test_rejects_bad_way(self):
        with pytest.raises(SimulationError):
            make_hbt(ways=1).line_address(0, 1)


class TestResizing:
    def fill_row(self, hbt, pac, n):
        for i in range(n):
            hbt.insert(pac, 0x20000000 + 0x1000 * i, 64)

    def test_begin_resize_doubles_ways(self):
        hbt = make_hbt(ways=1)
        hbt.begin_resize()
        assert hbt.ways == 2
        assert hbt.resizing

    def test_contents_preserved_across_resize(self):
        hbt = make_hbt(ways=1)
        self.fill_row(hbt, 0x12, 8)
        hbt.begin_resize()
        hbt.finish_resize()
        for i in range(8):
            assert hbt.find_valid(0x12, 0x20000000 + 0x1000 * i)[0] is not None

    def test_insert_possible_after_resize(self):
        hbt = make_hbt(ways=1)
        self.fill_row(hbt, 0x12, 8)
        hbt.begin_resize()
        way, slot, _ = hbt.insert(0x12, 0x20010000, 64)
        assert way == 1  # first slot of the new way

    def test_fig10_steering_rule(self):
        """During resizing: W >= T1 or PAC < RowPtr -> new table."""
        hbt = make_hbt(pac_bits=11, ways=2)
        old_base = hbt.line_address(5, 0)
        hbt.begin_resize()  # T1=2, T2=4
        # Not yet migrated, old way -> old table (same address as before).
        assert hbt.line_address(5, 0) == old_base
        # New way (W >= T1) -> new table.
        new_addr = hbt.line_address(5, 2)
        assert new_addr != old_base
        # Migrate past row 5: now even way 0 goes to the new table.
        hbt.advance_migration(6)
        assert hbt.line_address(5, 0) != old_base

    def test_migration_completes(self):
        hbt = make_hbt(pac_bits=11, ways=1)
        hbt.begin_resize()
        moved = hbt.advance_migration(1 << 11)
        assert moved == 1 << 11
        assert not hbt.resizing

    def test_migration_in_steps(self):
        hbt = make_hbt(pac_bits=11, ways=1)
        hbt.begin_resize()
        hbt.advance_migration(100)
        assert hbt.resizing
        assert hbt.row_ptr == 100

    def test_double_begin_rejected(self):
        hbt = make_hbt()
        hbt.begin_resize()
        with pytest.raises(SimulationError):
            hbt.begin_resize()

    def test_resize_stats(self):
        hbt = make_hbt()
        hbt.begin_resize()
        hbt.finish_resize()
        assert hbt.stats.resizes == 1
        assert hbt.stats.migrated_rows == hbt.num_rows

    def test_max_ways_cap(self):
        hbt = HashedBoundsTable(pac_bits=11, initial_ways=1, max_ways=2)
        hbt.begin_resize()
        hbt.finish_resize()
        with pytest.raises(SimulationError):
            hbt.begin_resize()


class TestUncompressed:
    def test_raw_bounds_roundtrip(self):
        hbt = make_hbt(compression=False)
        hbt.insert(0x12, 0x20001000, 64)
        assert hbt.find_valid(0x12, 0x20001020)[0] == 0
        assert hbt.find_valid(0x12, 0x20001040)[0] is None

    def test_way_visits_cost_two_lines(self):
        hbt = make_hbt(compression=False, ways=1)
        addrs = hbt.way_line_addresses(0x12, 0)
        assert len(addrs) == 2
        assert addrs[1] == addrs[0] + 64
        hbt.read_way(0x12, 0)
        assert hbt.stats.lines_loaded == 2


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=(1 << 11) - 1),   # pac
            st.integers(min_value=0, max_value=1 << 20).map(lambda x: 0x20000000 + x * 16),
            st.integers(min_value=16, max_value=4096),
        ),
        min_size=1,
        max_size=64,
        unique_by=lambda t: t[1],
    )
)
@settings(max_examples=30, deadline=None)
def test_insert_find_clear_property(entries):
    """Everything inserted is findable at every interior address; after
    clearing, nothing matches its base address."""
    hbt = make_hbt(pac_bits=11, ways=4)
    inserted = []
    for pac, lower, size in entries:
        try:
            hbt.insert(pac, lower, size)
        except SimulationError:
            continue  # row full at max ways for this test's geometry
        inserted.append((pac, lower, size))
    for pac, lower, size in inserted:
        assert hbt.find_valid(pac, lower)[0] is not None
        assert hbt.find_valid(pac, lower + size - 1)[0] is not None
    for pac, lower, size in inserted:
        way, _ = hbt.clear_matching(pac, lower)
        assert way is not None


class TestLineAccountingPinned:
    """Pin the lines_loaded fix: a way already verified by the caller's FSM
    walk is written/cleared directly, without re-counting its line loads."""

    def test_insert_with_verified_way_loads_no_lines(self):
        hbt = make_hbt(ways=2)
        baseline = hbt.stats.lines_loaded
        way, slot, searched = hbt.insert(0x12, 0x20001000, 64, way=0)
        assert (way, slot, searched) == (0, 0, 0)
        assert hbt.stats.lines_loaded == baseline  # no re-walk

    def test_insert_without_way_still_counts_walk(self):
        hbt = make_hbt(ways=2)
        hbt.insert(0x12, 0x20001000, 64)
        assert hbt.stats.lines_loaded == hbt.lines_per_way  # one way read

    def test_clear_with_verified_way_loads_no_lines(self):
        hbt = make_hbt(ways=2)
        hbt.insert(0x12, 0x20001000, 64, way=0)
        baseline = hbt.stats.lines_loaded
        way, searched = hbt.clear_matching(0x12, 0x20001000, way=0)
        assert (way, searched) == (0, 0)
        assert hbt.stats.lines_loaded == baseline

    def test_stale_way_hint_falls_back_to_counted_walk(self):
        hbt = make_hbt(ways=2)
        hbt.insert(0x12, 0x20001000, 64)
        baseline = hbt.stats.lines_loaded
        # way=1 holds no matching record: the clear must fall back to the
        # full (counted) walk and still find the record in way 0.
        way, searched = hbt.clear_matching(0x12, 0x20001000, way=1)
        assert way == 0
        assert searched == 1
        assert hbt.stats.lines_loaded > baseline

    def test_mcu_sequence_counts_each_line_once(self):
        """End-to-end: malloc+free through the MCU loads each HBT line once
        per FSM walk — lines_loaded must equal the MCU's own lines_accessed
        tally, not double it (the bug this class pins)."""
        from repro.core.aos import AOSRuntime

        runtime = AOSRuntime(pac_mode="fast")
        pointers = [runtime.malloc(64) for _ in range(8)]
        for pointer in pointers:
            runtime.free(pointer)
        assert runtime.hbt.stats.lines_loaded == runtime.mcu.stats.lines_accessed

"""Trace profiler tests (the Valgrind --trace-malloc analogue)."""

import pytest

from repro.workloads import generate_trace, get_profile
from repro.workloads.profiler import profile_report, profile_trace


@pytest.fixture(scope="module")
def trace():
    return generate_trace(get_profile("omnetpp"), instructions=30_000, seed=3, scale=64)


class TestProfileTrace:
    def test_counts_consistent(self, trace):
        measured = profile_trace(trace)
        window_mallocs = sum(1 for e in trace.events if e[0] == "m")
        window_frees = sum(1 for e in trace.events if e[0] == "f")
        assert measured.allocations == len(trace.preamble) + window_mallocs
        assert measured.deallocations == window_frees

    def test_max_active_at_least_preamble(self, trace):
        measured = profile_trace(trace)
        assert measured.max_active >= len(trace.preamble)

    def test_steady_state_balance(self, trace):
        """omnetpp frees what it allocates (Table II: 21.2M == 21.2M)."""
        measured = profile_trace(trace)
        window_allocs = measured.allocations - len(trace.preamble)
        assert measured.deallocations >= window_allocs * 0.8

    def test_growth_phase_profile(self):
        grown = generate_trace(
            get_profile("omnetpp"), instructions=20_000, seed=3, scale=64,
            grow_live_by=10_000_000,
        )
        measured = profile_trace(grown)
        assert measured.deallocations == 0
        assert measured.max_active > len(grown.preamble)

    def test_report_renders(self, trace):
        text = profile_report({"omnetpp": profile_trace(trace)})
        assert "omnetpp" in text
        assert "max active" in text


class TestAllocatorHardening:
    def test_tcache_key_check_blocks_double_free(self):
        from repro.errors import AllocatorError
        from repro.memory.allocator import HeapAllocator
        from repro.memory.memory import SparseMemory

        alloc = HeapAllocator(SparseMemory(), tcache_key_check=True)
        p = alloc.malloc(48)
        alloc.free(p)
        with pytest.raises(AllocatorError):
            alloc.free(p)  # glibc 2.29 "double free detected in tcache 2"

    def test_legacy_glibc_remains_vulnerable(self):
        from repro.memory.allocator import HeapAllocator
        from repro.memory.memory import SparseMemory

        alloc = HeapAllocator(SparseMemory(), tcache_key_check=False)
        p = alloc.malloc(48)
        alloc.free(p)
        alloc.free(p)  # silently accepted (glibc 2.26, §VII-D)

"""Gradual-resize migration coverage (Fig. 10, §V-F3) and the
resize-during-migration regression.

The Fig. 10 steering rule splits accesses between the old and the new table
while the table manager migrates rows in the background::

    way >= old_ways or pac < row_ptr  ->  new table
    otherwise                         ->  old table

These tests pin the mid-migration behaviours the original suite never
exercised: accesses/inserts/clears landing on *both* sides of ``row_ptr``
while a migration is in flight, and — the regression — a second capacity
failure arriving before the previous migration has finished.
"""

import pytest

from repro.config import AOSOptions
from repro.core.hbt import HashedBoundsTable
from repro.core.mcu import MemoryCheckUnit
from repro.errors import SimulationError
from repro.isa.encoding import PointerLayout
from repro.os.table_manager import BoundsTableManager

PAC_BITS = 16
LAYOUT = PointerLayout(pac_bits=PAC_BITS)

#: 16-byte-aligned heap addresses (the §V-D malloc invariant).
BASE = 0x10000


def make_hbt(initial_ways: int = 1) -> HashedBoundsTable:
    return HashedBoundsTable(pac_bits=PAC_BITS, initial_ways=initial_ways)


def make_mcu(hbt: HashedBoundsTable, **options) -> MemoryCheckUnit:
    return MemoryCheckUnit(
        hbt=hbt, layout=LAYOUT, options=AOSOptions(**options)
    )


def signed_ptr(pac: int, address: int, ahc: int = 1) -> int:
    return LAYOUT.sign(address, pac, ahc)


# --------------------------------------------------------------- steering


def test_line_address_steering_mid_migration():
    """Fig. 10: migrated rows and beyond-old-geometry ways hit the new
    table; unmigrated rows within the old geometry hit the old table."""
    hbt = make_hbt(initial_ways=2)
    old_base = hbt._base
    hbt.begin_resize()  # ways 2 -> 4
    new_base = hbt._base
    assert new_base != old_base
    row_ptr = 100
    hbt.advance_migration(row_ptr)
    assert hbt.resizing and hbt.row_ptr == row_ptr

    migrated_pac, unmigrated_pac = row_ptr - 1, row_ptr

    def addr(base, assoc, pac, way):
        # Eq. 1: base + pac * (assoc ways * 64 B) + way * 64 B.
        return base + (pac << (assoc.bit_length() - 1 + 6)) + (way << 6)

    # Migrated row: every way reads the new table at new geometry.
    for way in range(hbt.ways):
        assert hbt.line_address(migrated_pac, way) == addr(
            new_base, hbt.ways, migrated_pac, way
        )
    # Unmigrated row: ways the old geometry had read the old table at the
    # *old* row stride...
    for way in range(hbt.old_ways):
        assert hbt.line_address(unmigrated_pac, way) == addr(
            old_base, hbt.old_ways, unmigrated_pac, way
        )
    # ...and the new ways (which never existed in the old table) read new.
    for way in range(hbt.old_ways, hbt.ways):
        assert hbt.line_address(unmigrated_pac, way) == addr(
            new_base, hbt.ways, unmigrated_pac, way
        )


def test_check_access_mid_migration_both_sides():
    """Bounds checks validate records on both sides of RowPtr mid-flight."""
    hbt = make_hbt()
    low_pac, high_pac = 10, 60000
    hbt.insert(low_pac, BASE, 64)
    hbt.insert(high_pac, BASE + 0x1000, 64)
    hbt.begin_resize()
    hbt.advance_migration(1024)  # low_pac migrated, high_pac not
    assert hbt.row_ptr <= high_pac

    mcu = make_mcu(hbt, nonblocking_resize=False)  # freeze migration state
    ok_low = mcu.check_access(signed_ptr(low_pac, BASE + 8))
    ok_high = mcu.check_access(signed_ptr(high_pac, BASE + 0x1000 + 8))
    assert ok_low.ok and ok_high.ok
    # Out-of-bounds still faults mid-migration.
    assert not mcu.check_access(signed_ptr(low_pac, BASE + 4096)).ok


def test_insert_and_clear_mid_migration_both_sides():
    """bndstr/bndclr land correctly on migrated and unmigrated rows."""
    hbt = make_hbt()
    hbt.begin_resize()
    hbt.advance_migration(1024)
    mcu = make_mcu(hbt, nonblocking_resize=False)

    low_pac, high_pac = 5, 50000  # below / above the frozen row_ptr
    assert hbt.row_ptr <= high_pac
    for pac, address in ((low_pac, BASE), (high_pac, BASE + 0x2000)):
        store = mcu.bounds_store(signed_ptr(pac, address), 64)
        assert store.ok
        assert mcu.check_access(signed_ptr(pac, address + 8)).ok
        clear = mcu.bounds_clear(signed_ptr(pac, address))
        assert clear.ok
        mcu.drain_recent_stores()
        assert not mcu.check_access(signed_ptr(pac, address + 8)).ok


# ------------------------------------------- resize during migration (bug)


def _fill_row(mcu: MemoryCheckUnit, pac: int, start: int, count: int) -> int:
    """Issue ``count`` bndstr ops with distinct addresses; returns faults."""
    faults = 0
    for i in range(count):
        outcome = mcu.bounds_store(signed_ptr(pac, start + 0x100 * i), 64)
        if not outcome.ok:
            faults += 1
    return faults


def test_mcu_second_resize_during_migration():
    """Regression: a capacity failure while the previous gradual resize is
    still migrating must complete that migration and start the next
    doubling — not crash with 'resize already in progress'."""
    hbt = make_hbt()
    mcu = make_mcu(hbt, nonblocking_resize=True, bounds_forwarding=False)
    pac = 1234
    # Fill ways=1 (8 slots); the 9th store triggers the first resize.
    assert _fill_row(mcu, pac, BASE, 9) == 0
    assert hbt.ways == 2
    assert hbt.resizing  # 65536 rows, only ~1-2k migrated so far
    # Fill the remaining slots of ways=2; the 17th store hits a full row
    # while the first migration is still in flight.
    assert _fill_row(mcu, pac, BASE + 0x10000, 8) == 0
    assert hbt.ways == 4
    assert mcu.stats.resizes == 2
    # The forced completion plus the new begin leave exactly one resize
    # in flight and every record still reachable.
    assert hbt.resizing
    assert hbt.row_occupancy(pac) == 17
    mcu.drain_recent_stores()
    assert mcu.check_access(signed_ptr(pac, BASE)).ok


def test_mcu_second_resize_charges_completion_latency():
    """The forced migration completion is charged like the blocking copy
    (~2 rows per cycle over the remaining rows)."""
    hbt = make_hbt()
    mcu = make_mcu(hbt, nonblocking_resize=True, bounds_forwarding=False)
    pac = 99
    _fill_row(mcu, pac, BASE, 9)
    remaining = hbt.num_rows - hbt.row_ptr
    outcomes = [
        mcu.bounds_store(signed_ptr(pac, BASE + 0x20000 + 0x100 * i), 64)
        for i in range(8)
    ]
    assert all(o.ok for o in outcomes)
    # The 8th of these stores (17th overall) forced the completion.
    assert outcomes[-1].latency >= (remaining - 8 * mcu.MIGRATION_ROWS_PER_OP) // 2


def test_mcu_resize_with_stalled_migration_still_faults():
    """A stalled (fault-injected) migration cannot be force-completed; the
    capacity failure surfaces as the injected fault, not silent repair."""
    hbt = make_hbt()
    mcu = make_mcu(hbt, nonblocking_resize=True, bounds_forwarding=False)
    pac = 7
    _fill_row(mcu, pac, BASE, 8)
    hbt.interrupt_migration()  # begins a resize and stalls it
    # Row full at old_ways=1... way 2 exists now, so fill it too.
    _fill_row(mcu, pac, BASE + 0x40000, 8)
    with pytest.raises(SimulationError):
        mcu.bounds_store(signed_ptr(pac, BASE + 0x80000), 64)


def test_manager_second_resize_during_migration():
    """Regression: BoundsTableManager services a failure mid-migration by
    completing the in-flight migration before the next doubling."""
    hbt = make_hbt()
    manager = BoundsTableManager(hbt, nonblocking=True)
    first = manager.on_bounds_store_failure()
    assert first.new_ways == 2
    manager.tick(100)
    assert hbt.resizing and hbt.row_ptr == 100
    second = manager.on_bounds_store_failure()
    assert second.old_ways == 2 and second.new_ways == 4
    assert hbt.ways == 4
    assert manager.resize_count == 2
    # The new migration starts from row zero.
    assert hbt.resizing and hbt.row_ptr == 0


def test_manager_blocking_mode_unaffected():
    hbt = make_hbt()
    manager = BoundsTableManager(hbt, nonblocking=False)
    manager.on_bounds_store_failure()
    assert not hbt.resizing
    manager.on_bounds_store_failure()
    assert hbt.ways == 4 and not hbt.resizing

"""Configuration validation tests (Table IV defaults)."""

import pytest

from repro.config import (
    BWBConfig,
    CacheConfig,
    CoreConfig,
    HBTConfig,
    PAConfig,
    SystemConfig,
    default_config,
)
from repro.errors import ConfigError


class TestDefaults:
    def test_table4_core(self):
        c = default_config().core
        assert (c.width, c.rob_entries, c.mcq_entries) == (8, 192, 48)
        assert c.load_queue_entries == c.store_queue_entries == 32

    def test_table4_caches(self):
        m = default_config().memory
        assert m.l1i.size_bytes == 32 * 1024 and m.l1i.assoc == 4
        assert m.l1d.size_bytes == 64 * 1024 and m.l1d.assoc == 8
        assert m.l1b.size_bytes == 32 * 1024 and m.l1b.assoc == 4
        assert m.l2.size_bytes == 8 * 1024 * 1024 and m.l2.assoc == 16

    def test_table4_pa(self):
        pa = default_config().pa
        assert pa.pac_bits == 16
        assert pa.sign_latency == 4
        assert pa.strip_latency == 1

    def test_table4_hbt_bwb(self):
        cfg = default_config()
        assert cfg.hbt.initial_ways == 1
        assert cfg.bwb.entries == 64
        assert cfg.bwb.eviction == "lru"

    def test_paper_pac_key_and_context(self):
        pa = default_config().pa
        assert pa.key == 0x84BE85CE9804E94BEC2802D4E0A488E9
        assert pa.context == 0x477D469DEC0B8762


class TestValidation:
    def test_rejects_bad_mechanism(self):
        with pytest.raises(ConfigError):
            SystemConfig(mechanism="sgx")

    def test_rejects_bad_cache_geometry(self):
        with pytest.raises(ConfigError):
            CacheConfig("X", size_bytes=1000, assoc=3, line_bytes=64)

    def test_rejects_bad_pac_size(self):
        with pytest.raises(ConfigError):
            PAConfig(pac_bits=8)

    def test_rejects_non_pow2_hbt(self):
        with pytest.raises(ConfigError):
            HBTConfig(initial_ways=3)

    def test_rejects_zero_width(self):
        with pytest.raises(ConfigError):
            CoreConfig(width=0)

    def test_rejects_bad_bwb_eviction(self):
        with pytest.raises(ConfigError):
            BWBConfig(eviction="plru")


class TestDerivation:
    def test_with_mechanism(self):
        cfg = default_config("baseline").with_mechanism("aos")
        assert cfg.mechanism == "aos"

    def test_with_aos_options(self):
        cfg = default_config().with_aos_options(l1b_cache=False)
        assert not cfg.aos.l1b_cache
        assert cfg.aos.bounds_compression  # untouched

    def test_num_sets(self):
        cache = CacheConfig("X", 64 * 1024, 8, 64)
        assert cache.num_sets == 128

    def test_scaled_config(self):
        from repro.experiments.common import scaled_config

        cfg = scaled_config("aos", 8)
        assert cfg.memory.l1d.size_bytes == 8 * 1024
        assert cfg.memory.l2.size_bytes == 1024 * 1024
        assert cfg.core.rob_entries == 192  # core geometry unscaled

    def test_scaled_config_identity_at_one(self):
        from repro.experiments.common import scaled_config

        assert scaled_config("aos", 1) == default_config("aos")

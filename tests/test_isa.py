"""ISA container tests: instructions, programs, registers."""

import pytest

from repro.isa.instructions import (
    CRYPTO_OPS,
    DEFAULT_LATENCY,
    Instruction,
    Op,
    is_alu_op,
    is_memory_op,
)
from repro.isa.program import Program, ProgramBuilder
from repro.isa.registers import Register, RegisterFile


class TestInstruction:
    def test_defaults(self):
        inst = Instruction(op=Op.ALU)
        assert inst.deps == ()
        assert inst.size == 8
        assert not inst.mispredicted

    def test_with_address(self):
        inst = Instruction(op=Op.LOAD, address=0x1000, deps=(2,))
        moved = inst.with_address(0x2000)
        assert moved.address == 0x2000
        assert moved.deps == (2,)
        assert moved.op is Op.LOAD

    def test_classifiers(self):
        assert is_memory_op(Op.LOAD) and is_memory_op(Op.STORE)
        assert not is_memory_op(Op.ALU)
        assert is_alu_op(Op.ALU)

    def test_every_op_has_default_latency_or_is_memory(self):
        for op in Op:
            if op in (Op.LOAD, Op.STORE):
                continue
            assert op in DEFAULT_LATENCY, op

    def test_crypto_ops_cost_qarma_latency(self):
        for op in CRYPTO_OPS:
            if op is Op.AUTM:
                continue  # AHC compare only, 1 cycle (§VII-B)
            assert DEFAULT_LATENCY[op] == 4


class TestProgram:
    def build(self, ops):
        b = ProgramBuilder("t")
        for op in ops:
            b.emit_op(op)
        return b.build()

    def test_len_iter_index(self):
        p = self.build([Op.ALU, Op.LOAD, Op.ALU])
        assert len(p) == 3
        assert p[1].op is Op.LOAD
        assert [i.op for i in p] == [Op.ALU, Op.LOAD, Op.ALU]

    def test_histogram(self):
        p = self.build([Op.ALU, Op.ALU, Op.LOAD])
        hist = p.op_histogram()
        assert hist[Op.ALU] == 2
        assert hist[Op.LOAD] == 1

    def test_memory_op_count(self):
        p = self.build([Op.LOAD, Op.STORE, Op.ALU])
        assert p.memory_op_count() == 2

    def test_instruction_overhead(self):
        small = self.build([Op.ALU] * 100)
        big = self.build([Op.ALU] * 144)
        assert big.instruction_overhead_vs(small) == pytest.approx(0.44)

    def test_overhead_vs_empty_rejected(self):
        p = self.build([Op.ALU])
        with pytest.raises(ValueError):
            p.instruction_overhead_vs(Program(instructions=(), name="e"))

    def test_builder_emit_all(self):
        b = ProgramBuilder()
        b.emit_all([Instruction(op=Op.ALU)] * 5)
        assert len(b) == 5


class TestRegisterFile:
    def test_read_write(self):
        rf = RegisterFile()
        rf[Register.X0] = 42
        assert rf[Register.X0] == 42

    def test_default_zero(self):
        assert RegisterFile()[Register.X5] == 0

    def test_xzr_reads_zero_and_discards_writes(self):
        rf = RegisterFile()
        rf[Register.XZR] = 99
        assert rf[Register.XZR] == 0

    def test_masks_to_64_bits(self):
        rf = RegisterFile()
        rf[Register.X1] = 1 << 70
        assert rf[Register.X1] == 0

"""PAC generator tests: truncation, key registers, fast mode statistics."""

import pytest

from repro.crypto.pac import PACGenerator, PAKeys
from repro.crypto.qarma import Qarma64


class TestPACGenerator:
    def test_truncates_to_pac_bits(self):
        gen = PACGenerator(pac_bits=16)
        pac = gen.compute(0x20001000, 0x1234)
        assert 0 <= pac < (1 << 16)

    def test_matches_raw_qarma(self):
        keys = PAKeys()
        gen = PACGenerator(keys=keys, pac_bits=16)
        expected = Qarma64(keys.apma).encrypt(0x20001000, 0x1234) & 0xFFFF
        assert gen.compute(0x20001000, 0x1234, key_name="ma") == expected

    def test_different_keys_differ(self):
        gen = PACGenerator()
        assert gen.compute(0x20001000, 1, "ma") != gen.compute(0x20001000, 1, "ia")

    def test_different_modifiers_differ(self):
        gen = PACGenerator()
        assert gen.compute(0x20001000, 1) != gen.compute(0x20001000, 2)

    def test_pac_space(self):
        assert PACGenerator(pac_bits=13).pac_space == 1 << 13

    def test_rejects_bad_pac_bits(self):
        with pytest.raises(ValueError):
            PACGenerator(pac_bits=8)
        with pytest.raises(ValueError):
            PACGenerator(pac_bits=33)

    def test_rejects_bad_mode(self):
        with pytest.raises(ValueError):
            PACGenerator(mode="weird")

    def test_unknown_key_register(self):
        with pytest.raises(KeyError):
            PAKeys().key_for("zz")


class TestFastMode:
    def test_fast_mode_in_range(self):
        gen = PACGenerator(mode="fast", pac_bits=16)
        for i in range(100):
            pac = gen.compute(0x20000000 + 48 * i, 0xABCD)
            assert 0 <= pac < (1 << 16)

    def test_fast_mode_deterministic(self):
        a = PACGenerator(mode="fast")
        b = PACGenerator(mode="fast")
        assert a.compute(0x20001000, 7) == b.compute(0x20001000, 7)

    def test_fast_mode_distribution_is_uniformish(self):
        """The fast hash must preserve the uniformity property Fig. 11
        establishes for QARMA (the only property the HBT depends on)."""
        gen = PACGenerator(mode="fast", pac_bits=11)
        counts = [0] * (1 << 11)
        n = 1 << 15
        for i in range(n):
            counts[gen.compute(0x20000000 + 48 * i, 0xABCD)] += 1
        mean = n / (1 << 11)
        assert max(counts) < mean * 3
        assert min(counts) > 0

    def test_fast_and_qarma_modes_differ(self):
        fast = PACGenerator(mode="fast")
        slow = PACGenerator(mode="qarma")
        # Not a correctness requirement, but they should not coincide on
        # a batch of inputs (they are different functions).
        diffs = sum(
            fast.compute(0x20000000 + 16 * i, 1) != slow.compute(0x20000000 + 16 * i, 1)
            for i in range(16)
        )
        assert diffs > 0

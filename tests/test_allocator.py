"""Heap allocator tests: alignment, reuse, coalescing, glibc behaviours."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AllocatorError
from repro.memory.allocator import (
    ALIGNMENT,
    HEADER_SIZE,
    MIN_CHUNK,
    HeapAllocator,
    chunk_size_for_request,
)
from repro.memory.layout import DEFAULT_LAYOUT
from repro.memory.memory import SparseMemory


def make_allocator(use_tcache: bool = True) -> HeapAllocator:
    return HeapAllocator(SparseMemory(), DEFAULT_LAYOUT, use_tcache=use_tcache)


class TestChunkSizing:
    def test_minimum(self):
        assert chunk_size_for_request(1) == MIN_CHUNK

    def test_alignment(self):
        for req in (1, 17, 24, 100, 1000):
            assert chunk_size_for_request(req) % ALIGNMENT == 0

    def test_rejects_negative(self):
        with pytest.raises(AllocatorError):
            chunk_size_for_request(-1)


class TestMalloc:
    def test_returns_16_byte_aligned_payloads(self):
        alloc = make_allocator()
        for size in (1, 8, 24, 100, 4096):
            assert alloc.malloc(size) % 16 == 0

    def test_payloads_in_heap(self):
        alloc = make_allocator()
        p = alloc.malloc(64)
        assert DEFAULT_LAYOUT.in_heap(p)

    def test_distinct_allocations_do_not_overlap(self):
        alloc = make_allocator()
        spans = []
        for _ in range(50):
            p = alloc.malloc(48)
            spans.append((p, p + 48))
        spans.sort()
        for (a0, a1), (b0, b1) in zip(spans, spans[1:]):
            assert a1 <= b0

    def test_malloc_zero_returns_valid_chunk(self):
        alloc = make_allocator()
        p = alloc.malloc(0)
        assert alloc.allocated_size(p) >= 1

    def test_usable_size_at_least_request(self):
        alloc = make_allocator()
        p = alloc.malloc(100)
        assert alloc.allocated_size(p) >= 100

    def test_heap_exhaustion(self):
        alloc = make_allocator()
        with pytest.raises(AllocatorError):
            for _ in range(10000):
                alloc.malloc(1 << 26)


class TestFreeAndReuse:
    def test_tcache_lifo_reuse(self):
        alloc = make_allocator()
        p = alloc.malloc(48)
        alloc.free(p)
        q = alloc.malloc(48)
        assert q == p  # tcache returns the most recently freed chunk

    def test_fastbin_reuse_without_tcache(self):
        alloc = make_allocator(use_tcache=False)
        p = alloc.malloc(48)
        alloc.free(p)
        assert alloc.malloc(48) == p

    def test_free_null_is_noop(self):
        make_allocator().free(0)

    def test_free_misaligned_rejected(self):
        alloc = make_allocator()
        p = alloc.malloc(64)
        with pytest.raises(AllocatorError):
            alloc.free(p + 4)

    def test_fastbin_double_free_detected_at_top(self):
        alloc = make_allocator(use_tcache=False)
        p = alloc.malloc(48)
        alloc.free(p)
        with pytest.raises(AllocatorError):
            alloc.free(p)

    def test_tcache_double_free_not_detected(self):
        """glibc 2.26 shipped tcache without a double-free check — the new
        heap exploit the paper cites (§VII-D)."""
        alloc = make_allocator(use_tcache=True)
        p = alloc.malloc(48)
        alloc.free(p)
        alloc.free(p)  # silently accepted: the tcache poisoning primitive
        assert alloc.malloc(48) == p
        assert alloc.malloc(48) == p  # same chunk handed out twice!

    def test_large_chunk_coalescing(self):
        alloc = make_allocator()
        a = alloc.malloc(2048)
        b = alloc.malloc(2048)
        alloc.malloc(64)  # plug the top so frees don't merge into it
        alloc.free(a)
        alloc.free(b)  # should coalesce with a
        big = alloc.malloc(4096)
        # The coalesced region must be reused rather than growing the heap.
        assert big == a

    def test_free_list_splits_remainder(self):
        alloc = make_allocator()
        a = alloc.malloc(4096)
        alloc.malloc(64)
        alloc.free(a)
        small = alloc.malloc(512)
        assert small == a  # head of the freed chunk
        second = alloc.malloc(512)
        assert a < second < a + 4096 + HEADER_SIZE  # from the remainder


class TestStats:
    def test_counts(self):
        alloc = make_allocator()
        ptrs = [alloc.malloc(64) for _ in range(10)]
        for p in ptrs[:4]:
            alloc.free(p)
        assert alloc.stats.allocations == 10
        assert alloc.stats.deallocations == 4
        assert alloc.stats.active == 6
        assert alloc.stats.max_active == 10

    def test_max_active_tracks_peak(self):
        alloc = make_allocator()
        p1 = alloc.malloc(32)
        alloc.free(p1)
        alloc.malloc(32)
        alloc.malloc(32)
        assert alloc.stats.max_active == 2


class TestBoundaryTags:
    def test_size_field_written(self):
        alloc = make_allocator()
        p = alloc.malloc(48)
        raw = alloc.memory.read_u64(p - 8)
        assert raw & ~0x7 == chunk_size_for_request(48)

    def test_fake_chunk_enters_fastbin(self):
        """The House-of-Spirit entry point: free() trusts memory contents."""
        alloc = make_allocator(use_tcache=False)
        fake = DEFAULT_LAYOUT.globals_base + 0x1000
        alloc.memory.write_u64(fake + 8, 0x40)  # plausible size field
        alloc.free(fake + HEADER_SIZE)          # accepted!
        victim = alloc.malloc(0x30)
        assert victim == fake + HEADER_SIZE     # attacker-controlled memory


@given(st.lists(st.integers(min_value=1, max_value=2048), min_size=1, max_size=60))
@settings(max_examples=30, deadline=None)
def test_no_live_overlap_property(sizes):
    """Live allocations never overlap, whatever the size sequence."""
    alloc = make_allocator()
    live = []
    for i, size in enumerate(sizes):
        p = alloc.malloc(size)
        live.append((p, size))
        if i % 3 == 2:
            victim = live.pop(0)
            alloc.free(victim[0])
    spans = sorted((p, p + s) for p, s in live)
    for (a0, a1), (b0, b1) in zip(spans, spans[1:]):
        assert a1 <= b0

"""Pointer layout tests: field placement, sign/strip round trips."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import EncodingError
from repro.isa.encoding import PointerLayout

LAYOUT = PointerLayout()

addresses = st.integers(min_value=0, max_value=(1 << 46) - 1)
pacs = st.integers(min_value=0, max_value=(1 << 16) - 1)
ahcs = st.integers(min_value=1, max_value=3)


class TestLayout:
    def test_default_fields_fill_64_bits(self):
        assert LAYOUT.va_bits + LAYOUT.ahc_bits + LAYOUT.pac_bits == 64

    def test_rejects_oversized_layout(self):
        with pytest.raises(EncodingError):
            PointerLayout(va_bits=48, pac_bits=32)

    def test_rejects_wrong_ahc_width(self):
        with pytest.raises(EncodingError):
            PointerLayout(ahc_bits=3)

    def test_rejects_tiny_pac(self):
        with pytest.raises(EncodingError):
            PointerLayout(va_bits=50, pac_bits=10)


class TestSignStrip:
    def test_sign_places_fields(self):
        p = LAYOUT.sign(0x20001000, pac=0xBEEF, ahc=2)
        assert LAYOUT.address(p) == 0x20001000
        assert LAYOUT.pac(p) == 0xBEEF
        assert LAYOUT.ahc(p) == 2
        assert LAYOUT.is_signed(p)

    def test_unsigned_pointer(self):
        assert not LAYOUT.is_signed(0x20001000)
        assert LAYOUT.ahc(0x20001000) == 0

    def test_strip_removes_everything(self):
        p = LAYOUT.sign(0x20001000, pac=0xFFFF, ahc=3)
        assert LAYOUT.strip(p) == 0x20001000

    @given(addresses, pacs, ahcs)
    def test_roundtrip_property(self, addr, pac, ahc):
        p = LAYOUT.sign(addr, pac, ahc)
        assert LAYOUT.address(p) == addr
        assert LAYOUT.pac(p) == pac
        assert LAYOUT.ahc(p) == ahc
        assert LAYOUT.strip(p) == addr

    def test_rejects_oversized_address(self):
        with pytest.raises(EncodingError):
            LAYOUT.sign(1 << 46, 0, 1)

    def test_rejects_oversized_pac(self):
        with pytest.raises(EncodingError):
            LAYOUT.sign(0x1000, 1 << 16, 1)

    def test_rejects_oversized_ahc(self):
        with pytest.raises(EncodingError):
            LAYOUT.sign(0x1000, 0, 4)

    def test_decode(self):
        p = LAYOUT.sign(0x20001000, pac=0x1234, ahc=1)
        d = LAYOUT.decode(p)
        assert d.address == 0x20001000
        assert d.pac == 0x1234
        assert d.ahc == 1
        assert d.is_signed
        assert int(d) == p

    def test_pointer_arithmetic_preserves_fields(self):
        """The core AOS trick: metadata rides along with the address."""
        p = LAYOUT.sign(0x20001000, pac=0x1234, ahc=1)
        q = p + 64
        assert LAYOUT.pac(q) == 0x1234
        assert LAYOUT.ahc(q) == 1
        assert LAYOUT.address(q) == 0x20001040

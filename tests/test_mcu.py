"""Memory check unit tests: selective checking, table ops, optimisations."""


from repro.config import AOSOptions, BWBConfig
from repro.core.exceptions import BoundsCheckFault, BoundsClearFault
from repro.core.hbt import HashedBoundsTable
from repro.core.mcu import MemoryCheckUnit
from repro.isa.encoding import PointerLayout

LAYOUT = PointerLayout(pac_bits=11)


def make_mcu(options=AOSOptions(), ways=1, bounds_access=None):
    hbt = HashedBoundsTable(pac_bits=11, initial_ways=ways)
    return MemoryCheckUnit(
        hbt=hbt,
        layout=LAYOUT,
        options=options,
        bwb_config=BWBConfig(),
        bounds_access=bounds_access,
    )


def signed(address, pac=0x12, ahc=1):
    return LAYOUT.sign(address, pac, ahc)


class TestSelectiveChecking:
    def test_unsigned_pointer_skips_checking(self):
        mcu = make_mcu()
        result = mcu.check_access(0x20001000)
        assert result.ok
        assert result.latency == 0
        assert mcu.stats.signed_checks == 0
        assert mcu.stats.checks == 1

    def test_signed_pointer_checked(self):
        mcu = make_mcu()
        mcu.bounds_store(signed(0x20001000), 64)
        result = mcu.check_access(signed(0x20001010))
        assert result.ok
        assert mcu.stats.signed_checks == 1

    def test_oob_faults(self):
        mcu = make_mcu()
        mcu.bounds_store(signed(0x20001000), 64)
        result = mcu.check_access(signed(0x20001040))
        assert not result.ok
        assert isinstance(result.fault, BoundsCheckFault)

    def test_missing_bounds_fault(self):
        """Temporal safety: a freed (cleared) pointer fails checking."""
        mcu = make_mcu()
        mcu.bounds_store(signed(0x20001000), 64)
        mcu.bounds_clear(signed(0x20001000))
        result = mcu.check_access(signed(0x20001000))
        assert not result.ok


class TestTableOps:
    def test_store_then_clear(self):
        mcu = make_mcu()
        assert mcu.bounds_store(signed(0x20001000), 64).ok
        assert mcu.bounds_clear(signed(0x20001000)).ok

    def test_double_clear_faults(self):
        mcu = make_mcu()
        mcu.bounds_store(signed(0x20001000), 64)
        mcu.bounds_clear(signed(0x20001000))
        result = mcu.bounds_clear(signed(0x20001000))
        assert not result.ok
        assert isinstance(result.fault, BoundsClearFault)

    def test_clear_of_crafted_pointer_faults(self):
        """The bndclr that stops House of Spirit (§VII-A)."""
        mcu = make_mcu()
        result = mcu.bounds_clear(signed(0x00601010))
        assert not result.ok

    def test_row_overflow_triggers_resize(self):
        mcu = make_mcu()
        for i in range(8):
            assert mcu.bounds_store(signed(0x20000000 + 0x1000 * i), 64).ok
        result = mcu.bounds_store(signed(0x20010000), 64)
        assert result.ok
        assert result.resized
        assert mcu.hbt.ways == 2
        assert mcu.stats.resizes == 1

    def test_blocking_resize_ablation(self):
        mcu = make_mcu(options=AOSOptions(nonblocking_resize=False))
        for i in range(8):
            mcu.bounds_store(signed(0x20000000 + 0x1000 * i), 64)
        result = mcu.bounds_store(signed(0x20010000), 64)
        assert result.ok
        assert not mcu.hbt.resizing  # stop-the-world copy completed


class TestBWBIntegration:
    def test_bwb_learns_way(self):
        # Forwarding off so checks actually walk the table here.
        mcu = make_mcu(ways=2, options=AOSOptions(bounds_forwarding=False))
        # Fill way 0 of the row so our object lands in way 1.
        for i in range(8):
            mcu.hbt.insert(0x12, 0x30000000 + 0x1000 * i, 64)
        mcu.bounds_store(signed(0x20001000), 64)
        first = mcu.check_access(signed(0x20001008))
        second = mcu.check_access(signed(0x20001010))
        assert second.bwb_hit
        assert second.lines_accessed <= first.lines_accessed

    def test_bwb_disabled(self):
        mcu = make_mcu(options=AOSOptions(bwb_enabled=False))
        assert mcu.bwb is None
        mcu.bounds_store(signed(0x20001000), 64)
        result = mcu.check_access(signed(0x20001008))
        assert result.ok
        assert not result.bwb_hit


class TestForwarding:
    def test_store_to_load_forwarding(self):
        mcu = make_mcu(options=AOSOptions(bounds_forwarding=True))
        mcu.bounds_store(signed(0x20001000), 64)
        result = mcu.check_access(signed(0x20001008))
        assert result.forwarded
        assert result.latency == 1
        assert mcu.stats.forwards == 1

    def test_forwarding_disabled(self):
        mcu = make_mcu(options=AOSOptions(bounds_forwarding=False))
        mcu.bounds_store(signed(0x20001000), 64)
        result = mcu.check_access(signed(0x20001008))
        assert not result.forwarded

    def test_forwarding_does_not_leak_across_clear(self):
        mcu = make_mcu(options=AOSOptions(bounds_forwarding=True))
        mcu.bounds_store(signed(0x20001000), 64)
        mcu.bounds_clear(signed(0x20001000))
        result = mcu.check_access(signed(0x20001008))
        assert not result.ok  # cleared bounds must not be forwarded

    def test_forwarding_only_within_bounds(self):
        mcu = make_mcu(options=AOSOptions(bounds_forwarding=True))
        mcu.bounds_store(signed(0x20001000), 64)
        result = mcu.check_access(signed(0x20002000))
        assert not result.forwarded


class TestLatencyAccounting:
    def test_bounds_access_callback_charged(self):
        charges = []

        def cost(addr, is_write):
            charges.append((addr, is_write))
            return 5

        mcu = make_mcu(bounds_access=cost)
        mcu.bounds_store(signed(0x20001000), 64)
        # occupancy-check line load + bounds store write
        assert len(charges) == 2
        assert charges[0][1] is False
        assert charges[1][1] is True

    def test_check_latency_scales_with_ways(self):
        mcu = make_mcu(ways=4, options=AOSOptions(bounds_forwarding=False, bwb_enabled=False))
        # Place bounds in the last way.
        for i in range(24):
            mcu.hbt.insert(0x12, 0x30000000 + 0x1000 * i, 64)
        mcu.hbt.insert(0x12, 0x20001000, 64)
        result = mcu.check_access(signed(0x20001008))
        assert result.ok
        assert result.lines_accessed == 4

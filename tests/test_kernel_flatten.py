"""Property tests for program flattening and its memoisation contract.

:mod:`repro.kernel.flatten` promises three things the kernels lean on:

- **correctness**: the columnar view agrees with the instruction stream
  (dispatch codes, addresses, resolved latencies, summary fields) for any
  program — pinned property-based over random instruction streams;
- **memoisation**: ``flatten_program`` runs once per :class:`Program`
  instance, and :meth:`FlatProgram.derived` builds each derived column
  exactly once per key — the specialized kernel and every batch lane share
  the same objects instead of recomputing;
- **immutability**: all columns are ``bytes``/tuples, so a buggy consumer
  raises instead of corrupting a sibling run.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.instructions import DEFAULT_LATENCY, Instruction, Op
from repro.isa.program import Program
from repro.kernel.flatten import (
    KIND_BNDCLR,
    KIND_BNDSTR,
    KIND_BRANCH_MISS,
    KIND_LOAD,
    KIND_MARKER,
    KIND_OTHER,
    KIND_STORE,
    KIND_WCHK,
    FlatProgram,
    flatten_program,
)

_OPS = st.sampled_from([
    Op.LOAD, Op.STORE, Op.WCHK, Op.BRANCH, Op.BNDSTR, Op.BNDCLR,
    Op.ALU, Op.MALLOC_MARK, Op.FREE_MARK,
])

_instruction = st.builds(
    Instruction,
    op=_OPS,
    address=st.integers(min_value=0, max_value=1 << 47),
    size=st.integers(min_value=1, max_value=512),
    deps=st.lists(
        st.integers(min_value=1, max_value=64), max_size=3
    ).map(tuple),
    latency=st.integers(min_value=0, max_value=30),
    mispredicted=st.booleans(),
)

_programs = st.lists(_instruction, max_size=60).map(
    lambda instructions: Program(instructions=tuple(instructions), name="fuzz")
)

_EXPECTED_KIND = {
    Op.LOAD: KIND_LOAD,
    Op.STORE: KIND_STORE,
    Op.WCHK: KIND_WCHK,
    Op.BNDSTR: KIND_BNDSTR,
    Op.BNDCLR: KIND_BNDCLR,
    Op.MALLOC_MARK: KIND_MARKER,
    Op.FREE_MARK: KIND_MARKER,
}


@given(_programs)
@settings(max_examples=60, deadline=None)
def test_columns_agree_with_instructions(program):
    flat = flatten_program(program)
    assert flat.count == len(program)
    for i, inst in enumerate(program):
        if inst.op is Op.BRANCH:
            expected = KIND_BRANCH_MISS if inst.mispredicted else KIND_OTHER
        else:
            expected = _EXPECTED_KIND.get(inst.op, KIND_OTHER)
        assert flat.kinds[i] == expected
        if expected == KIND_MARKER:
            # Markers are pure bookkeeping: no operand reaches the kernels.
            assert flat.addresses[i] == 0
            assert flat.deps[i] == ()
        else:
            assert flat.addresses[i] == inst.address
            assert flat.deps[i] == inst.deps
        if expected in (KIND_BNDSTR, KIND_BNDCLR, KIND_BRANCH_MISS, KIND_OTHER):
            want = float(inst.latency or DEFAULT_LATENCY[inst.op])
            assert flat.latencies[i] == want
    assert flat.kinds_present == frozenset(flat.kinds)
    assert flat.max_address == (max(flat.addresses) if flat.addresses else 0)


@given(_programs)
@settings(max_examples=30, deadline=None)
def test_flatten_is_memoized_per_program_instance(program):
    assert flatten_program(program) is flatten_program(program)


def test_distinct_program_instances_flatten_independently():
    instructions = (Instruction(op=Op.LOAD, address=64),)
    a, b = Program(instructions, name="a"), Program(instructions, name="b")
    assert flatten_program(a) is not flatten_program(b)


# ----------------------------------------------------------- derived columns


def test_derived_builds_once_per_key():
    flat = flatten_program(
        Program((Instruction(op=Op.LOAD, address=64),), name="memo")
    )
    calls = []

    def build(f: FlatProgram):
        calls.append(f)
        return ("column", len(calls))

    first = flat.derived("key-a", build)
    assert first == ("column", 1)
    assert flat.derived("key-a", build) is first
    assert calls == [flat]  # exactly one build, handed the flat view
    # A different key builds separately.
    assert flat.derived("key-b", build) == ("column", 2)
    assert len(calls) == 2


def test_derived_does_not_cache_across_programs():
    instructions = (Instruction(op=Op.STORE, address=128),)
    flat_a = flatten_program(Program(instructions, name="a"))
    flat_b = flatten_program(Program(instructions, name="b"))
    flat_a.derived("k", lambda f: "from-a")
    assert flat_b.derived("k", lambda f: "from-b") == "from-b"


@given(st.integers(min_value=0, max_value=10))
@settings(max_examples=10, deadline=None)
def test_derived_exceptions_do_not_poison_the_memo(n):
    flat = flatten_program(
        Program(
            tuple(Instruction(op=Op.ALU) for _ in range(n)), name=f"p{n}"
        )
    )

    def broken(f):
        raise RuntimeError("builder failed")

    with pytest.raises(RuntimeError):
        flat.derived("volatile", broken)
    # The failed build left no entry; a working builder still runs.
    assert flat.derived("volatile", lambda f: "ok") == "ok"


def test_spec_columns_memoized_via_derived():
    """The specialized kernel's column build is keyed through derived():
    one program, one geometry -> one SpecColumns object, shared."""
    from repro.compiler import lower_trace
    from repro.experiments.common import scaled_config
    from repro.kernel import specialize as sp
    from repro.workloads import generate_trace, get_profile

    config = scaled_config("aos", 8)
    trace = generate_trace(
        get_profile("gcc"), instructions=1500, seed=7, scale=8
    )
    lowered = lower_trace(trace, "aos", config=config)
    flat = flatten_program(lowered.program)
    layout = sp._mcu_layout(None)
    first = sp.spec_columns(flat, (1 << 46) - 1, 6, 16, layout)
    assert sp.spec_columns(flat, (1 << 46) - 1, 6, 16, layout) is first
    # A different geometry misses the memo and builds fresh columns.
    assert sp.spec_columns(flat, (1 << 46) - 1, 6, 32, layout) is not first


# --------------------------------------------------------------- immutability


def test_columns_are_immutable():
    flat = flatten_program(
        Program((Instruction(op=Op.LOAD, address=64),), name="frozen")
    )
    with pytest.raises(TypeError):
        flat.kinds[0] = 9  # bytes
    with pytest.raises(TypeError):
        flat.addresses[0] = 1  # tuple
    with pytest.raises((AttributeError, TypeError)):
        flat.count = 99  # frozen dataclass

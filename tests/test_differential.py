"""Differential tests: serial, parallel and cache-replay runs agree.

The observability PR's core guarantee: turning metrics on changes *what is
recorded*, never *what is simulated* — and every execution strategy
(in-process serial, ``jobs=N`` worker pool, artifact-cache replay) yields
byte-identical results and metric snapshots at the same seed.
"""

import dataclasses
import json

from repro.experiments import CellSpec, RunSettings, cell_fingerprint
from repro.experiments.common import ExperimentSuite
from repro.experiments.parallel import run_cells, simulate_cell
from repro.obs import ObsSettings

PLAIN = RunSettings(instructions=4000, seed=7, scale=8)
METRICS = dataclasses.replace(PLAIN, obs=ObsSettings(enabled=True, tracing=False))
TRACING = dataclasses.replace(PLAIN, obs=ObsSettings(enabled=True, tracing=True))

SMALL_SWEEP = [
    CellSpec(workload, mechanism)
    for workload in ("gobmk", "povray")
    for mechanism in ("baseline", "aos")
]


def payloads(results):
    return {key: dataclasses.asdict(result) for key, result in results.items()}


def canonical(snapshot):
    return json.dumps(snapshot, sort_keys=True)


class TestExecutionStrategiesAgree:
    def test_serial_vs_parallel_with_metrics(self):
        serial = run_cells(METRICS, SMALL_SWEEP, jobs=1)
        parallel = run_cells(METRICS, SMALL_SWEEP, jobs=2)
        assert payloads(serial) == payloads(parallel)
        # The metric snapshots themselves crossed the process boundary.
        for result in parallel.values():
            assert result.metrics["counters"]["pipeline.instructions"] > 0

    def test_simulate_cell_matches_engine_with_metrics(self):
        cell = CellSpec("gobmk", "aos")
        direct = simulate_cell(METRICS, cell)
        via_engine = run_cells(METRICS, [cell], jobs=2)[cell.cache_key]
        assert dataclasses.asdict(direct) == dataclasses.asdict(via_engine)

    def test_cache_replay_preserves_metrics(self, tmp_path):
        cold = ExperimentSuite(METRICS, cache=tmp_path)
        cold.ensure_cells(SMALL_SWEEP)
        reference = cold.result_payloads()

        warm = ExperimentSuite(METRICS, cache=tmp_path)
        warm.ensure_cells(SMALL_SWEEP)
        assert warm.cache.stats.hits == len(SMALL_SWEEP)
        assert warm.result_payloads() == reference
        assert canonical(warm.metrics_snapshot()) == canonical(
            cold.metrics_snapshot()
        )


class TestObservationDoesNotPerturb:
    def test_metrics_on_changes_only_the_metrics_field(self):
        cell = CellSpec("gobmk", "aos")
        plain = dataclasses.asdict(simulate_cell(PLAIN, cell))
        observed = dataclasses.asdict(simulate_cell(METRICS, cell))
        assert plain.pop("metrics") == {}
        assert observed.pop("metrics") != {}
        assert plain == observed  # cycles, stats, traffic: all identical

    def test_tracing_does_not_change_metrics(self):
        cell = CellSpec("gobmk", "aos")
        metrics_only = simulate_cell(METRICS, cell)
        with_tracer = simulate_cell(TRACING, cell)
        assert canonical(metrics_only.metrics) == canonical(with_tracer.metrics)

    def test_merged_snapshot_deterministic_across_suites(self):
        one = ExperimentSuite(METRICS)
        two = ExperimentSuite(METRICS, jobs=2)
        one.ensure_cells(SMALL_SWEEP)
        two.ensure_cells(SMALL_SWEEP)
        assert canonical(one.metrics_snapshot()) == canonical(
            two.metrics_snapshot()
        )

    def test_workload_filter_subsets_the_merge(self):
        suite = ExperimentSuite(METRICS)
        suite.ensure_cells(SMALL_SWEEP)
        everything = suite.metrics_snapshot()
        gobmk_only = suite.metrics_snapshot(workloads=["gobmk"])
        assert 0 < gobmk_only["counters"]["pipeline.instructions"] < (
            everything["counters"]["pipeline.instructions"]
        )


class TestObsSettingsInFingerprints:
    def test_obs_settings_bifurcate_cache_keys(self):
        cell = CellSpec("gcc", "aos")
        assert cell_fingerprint(PLAIN, cell) != cell_fingerprint(METRICS, cell)
        assert cell_fingerprint(METRICS, cell) != cell_fingerprint(TRACING, cell)

    def test_cell_metrics_only_lists_observed_cells(self):
        observed = ExperimentSuite(METRICS)
        observed.ensure_cells(SMALL_SWEEP[:2])
        assert len(observed.cell_metrics()) == 2

        dark = ExperimentSuite(PLAIN)
        dark.ensure_cells(SMALL_SWEEP[:2])
        assert dark.cell_metrics() == {}

"""Supervised execution layer tests.

Covers the PR-level guarantees: deterministic retry backoff, hang
detection + quarantine, the pool -> fresh-pool -> serial degradation
ladder, crash-atomic checkpoint writes, campaign integration (quarantine
persisted and skipped at resume, non-quarantined results byte-identical
to a fault-free serial run), worker-exception surfacing, and the
SIGTERM/SIGINT flush path.
"""

import json
import os
import signal
import time

import pytest

from repro.errors import CheckpointError, FaultInjectionError, SupervisionError
from repro.faults import (
    Campaign,
    CampaignConfig,
    CheckpointStore,
    FaultKind,
    FaultSpec,
)
from repro.stats import SupervisionSummary
from repro.supervise import (
    ExecutionLevel,
    HeartbeatBoard,
    LADDER,
    RetryPolicy,
    SupervisionReport,
    Supervisor,
    SupervisorConfig,
    Task,
    trap_signals,
)
from repro.supervise.heartbeat import start_beat_thread

# ----------------------------------------------------------- module workers
# Pool/fresh-pool workers must be module-level so they pickle by reference.


def _double(payload):
    return payload * 2


def _raise(payload):
    raise ValueError(f"boom on {payload!r}")


def _sleep_forever(payload):
    if payload == "hang":
        time.sleep(120)
    return payload


def _crash_once(sentinel):
    """Hard-crash the first time, succeed once the sentinel file exists."""
    if os.path.exists(sentinel):
        return "recovered"
    with open(sentinel, "w") as fh:
        fh.write("seen")
    os._exit(3)


def _ok_only_in_parent(parent_pid):
    """Succeeds in-process, hard-crashes any worker subprocess."""
    if os.getpid() != parent_pid:
        os._exit(3)
    return "serial-ok"


def _fast_config(**overrides):
    defaults = dict(
        jobs=2,
        deadline_s=2.0,
        heartbeat_interval_s=0.05,
        heartbeat_timeout_s=10.0,
        poll_interval_s=0.02,
        retry=RetryPolicy(max_retries=1, backoff_base_s=0.01, backoff_cap_s=0.05),
        strikes_per_level=2,
    )
    defaults.update(overrides)
    return SupervisorConfig(**defaults)


# ------------------------------------------------------------- retry policy


class TestRetryPolicy:
    def test_delay_is_deterministic(self):
        policy = RetryPolicy(seed=7)
        assert policy.delay("cell-a", 1) == policy.delay("cell-a", 1)

    def test_delay_varies_by_key_and_attempt(self):
        policy = RetryPolicy(seed=7)
        assert policy.delay("cell-a", 1) != policy.delay("cell-b", 1)
        assert policy.delay("cell-a", 1) != policy.delay("cell-a", 2)

    def test_delay_respects_cap_and_jitter_band(self):
        policy = RetryPolicy(
            backoff_base_s=0.1, backoff_factor=2.0, backoff_cap_s=0.4, jitter=0.25
        )
        for attempt in range(1, 8):
            raw = min(0.1 * 2.0 ** (attempt - 1), 0.4)
            delay = policy.delay("k", attempt)
            assert raw * 0.75 <= delay <= raw * 1.25

    def test_backoff_cap_is_hard(self):
        """Positive jitter on an at-cap delay must not push past the cap
        (a long chaos campaign would otherwise accumulate unbounded extra
        sleep across retries)."""
        policy = RetryPolicy(
            backoff_base_s=10.0, backoff_factor=10.0, backoff_cap_s=0.2,
            jitter=0.25, seed=3,
        )
        for key in ("cell-a", "cell-b", "cell-c"):
            for attempt in range(1, 6):
                assert policy.delay(key, attempt) <= 0.2

    def test_different_seeds_differ(self):
        assert RetryPolicy(seed=1).delay("k", 1) != RetryPolicy(seed=2).delay("k", 1)

    def test_max_attempts(self):
        assert RetryPolicy(max_retries=2).max_attempts == 3

    def test_rejects_bad_values(self):
        with pytest.raises(SupervisionError):
            RetryPolicy(max_retries=-1).delay("k", 1)
        with pytest.raises(SupervisionError):
            SupervisorConfig(heartbeat_interval_s=0.0)
        with pytest.raises(SupervisionError):
            SupervisorConfig(deadline_s=0.0)
        # jobs < 1 is legal: it means "decided by the caller at run time".
        assert SupervisorConfig(jobs=0).effective_jobs(fallback=4) == 4


# ---------------------------------------------------------------- heartbeat


class TestHeartbeat:
    def test_start_beat_finish_roundtrip(self, tmp_path):
        board = HeartbeatBoard(tmp_path)
        assert board.started_at("k") is None
        board.start_task("k")
        board.beat("k")
        assert board.started_at("k") is not None
        assert board.last_beat("k") is not None
        board.finish_task("k")
        assert board.started_at("k") is None
        assert board.last_beat("k") is None

    def test_beat_thread_stops(self, tmp_path):
        board = HeartbeatBoard(tmp_path)
        stop = start_beat_thread(board, "k", 0.01)
        time.sleep(0.05)
        assert board.last_beat("k") is not None
        stop.set()
        time.sleep(0.05)
        last = board.last_beat("k")
        time.sleep(0.05)
        assert board.last_beat("k") == last  # no more beats after stop


# --------------------------------------------------------------- supervisor


class TestSupervisorLevels:
    def test_pool_runs_all_tasks(self):
        tasks = [Task(key=f"t{i}", payload=i) for i in range(6)]
        results, report = Supervisor(_fast_config()).run(_double, tasks)
        assert results == {f"t{i}": i * 2 for i in range(6)}
        assert report.quarantined == {}
        assert report.final_level == ExecutionLevel.POOL.value
        assert report.accounts_for([t.key for t in tasks])

    def test_serial_level_retries_then_quarantines(self):
        config = _fast_config(start_level=ExecutionLevel.SERIAL)
        results, report = Supervisor(config).run(_raise, [Task(key="bad", payload=0)])
        assert results == {}
        assert "bad" in report.quarantined
        assert "ValueError" in report.quarantined["bad"]
        # max_retries=1 -> exactly two attempts, both recorded.
        assert [a.attempt for a in report.attempts] == [1, 2]
        assert all(a.outcome == "error" for a in report.attempts)
        assert report.accounts_for(["bad"])

    def test_duplicate_keys_rejected(self):
        with pytest.raises(SupervisionError):
            Supervisor(_fast_config()).run(
                _double, [Task(key="same", payload=1), Task(key="same", payload=2)]
            )

    def test_hang_detected_retried_quarantined(self):
        """Satellite: a sleeping worker is detected, retried, quarantined —
        and the bystander cells still complete."""
        config = _fast_config(deadline_s=0.6)
        tasks = [
            Task(key="ok1", payload="a"),
            Task(key="hangs", payload="hang"),
            Task(key="ok2", payload="b"),
        ]
        results, report = Supervisor(config).run(_sleep_forever, tasks)
        assert results == {"ok1": "a", "ok2": "b"}
        assert "hangs" in report.quarantined
        assert "hang" in report.quarantined["hangs"]
        hang_attempts = [a for a in report.attempts if a.key == "hangs"]
        assert [a.attempt for a in hang_attempts] == [1, 2]
        assert all(a.outcome == "hang" for a in hang_attempts)
        assert report.accounts_for([t.key for t in tasks])

    def test_crash_retried_then_succeeds(self, tmp_path):
        """A worker that dies hard once recovers on retry."""
        sentinel = str(tmp_path / "crashed-once")
        config = _fast_config(jobs=1, retry=RetryPolicy(max_retries=3,
                                                        backoff_base_s=0.01))
        results, report = Supervisor(config).run(
            _crash_once, [Task(key="flaky", payload=sentinel)]
        )
        assert results == {"flaky": "recovered"}
        outcomes = [a.outcome for a in report.attempts if a.key == "flaky"]
        assert outcomes[-1] == "ok"
        assert "crash" in outcomes

    def test_degrades_down_ladder_to_serial(self):
        """A task every subprocess dies on only completes in-process, two
        rungs down the ladder — and both fallbacks are recorded."""
        config = _fast_config(
            jobs=1,
            strikes_per_level=1,
            retry=RetryPolicy(max_retries=4, backoff_base_s=0.01),
        )
        results, report = Supervisor(config).run(
            _ok_only_in_parent, [Task(key="picky", payload=os.getpid())]
        )
        assert results == {"picky": "serial-ok"}
        assert report.final_level == ExecutionLevel.SERIAL.value
        assert len(report.fallbacks) == 2
        levels = [a.level for a in report.attempts if a.outcome == "ok"]
        assert levels == [ExecutionLevel.SERIAL.value]

    def test_on_result_streams_successes(self):
        seen = []
        config = _fast_config(jobs=1)
        Supervisor(config).run(
            _double,
            [Task(key="a", payload=1), Task(key="b", payload=2)],
            on_result=lambda key, value: seen.append((key, value)),
        )
        assert sorted(seen) == [("a", 2), ("b", 4)]


class TestSupervisionReport:
    def test_payload_roundtrip_shape(self):
        config = _fast_config(start_level=ExecutionLevel.SERIAL)
        _, report = Supervisor(config).run(_double, [Task(key="a", payload=1)])
        payload = report.to_payload()
        assert payload["attempts"][0]["key"] == "a"
        assert payload["final_level"] == "serial"
        assert json.dumps(payload)  # JSON-able for checkpoints

    def test_accounts_for_missing_key(self):
        report = SupervisionReport()
        assert not report.accounts_for(["never-ran"])

    def test_per_attempt_audit_helpers(self):
        from repro.supervise import AttemptRecord

        report = SupervisionReport(
            attempts=[
                AttemptRecord("flaky", 1, "pool", "hang"),
                AttemptRecord("clean", 1, "pool", "ok"),
                AttemptRecord("flaky", 2, "fresh-pool", "ok"),
            ]
        )
        flaky = report.attempts_for("flaky")
        assert [(a.attempt, a.level, a.outcome) for a in flaky] == [
            (1, "pool", "hang"),
            (2, "fresh-pool", "ok"),
        ]
        assert report.attempts_for("never-ran") == []
        assert report.attempt_outcomes() == {
            "flaky": ["hang", "ok"],
            "clean": ["ok"],
        }

    def test_audit_trail_recorded_for_real_run(self):
        config = _fast_config(start_level=ExecutionLevel.SERIAL)
        _, report = Supervisor(config).run(
            _double, [Task(key="a", payload=1), Task(key="b", payload=2)]
        )
        assert report.attempt_outcomes() == {"a": ["ok"], "b": ["ok"]}

    def test_format_mentions_quarantine(self):
        config = _fast_config(start_level=ExecutionLevel.SERIAL)
        _, report = Supervisor(config).run(_raise, [Task(key="bad", payload=0)])
        text = report.format()
        assert "quarantined: bad" in text


class TestSupervisionSummary:
    def test_taxonomy_classification(self):
        report = SupervisionReport(final_level="serial")
        from repro.supervise import AttemptRecord

        report.attempts = [
            AttemptRecord("clean", 1, "pool", "ok"),
            AttemptRecord("retried", 1, "pool", "error"),
            AttemptRecord("retried", 2, "pool", "ok"),
            AttemptRecord("degraded", 1, "pool", "hang"),
            AttemptRecord("degraded", 2, "serial", "ok"),
            AttemptRecord("dead", 1, "pool", "crash"),
        ]
        report.quarantined = {"dead": "crash on attempt 1"}
        report.skipped_quarantined = ["old-poison"]
        summary = SupervisionSummary.from_report(report)
        assert summary.per_task == {
            "clean": "clean",
            "retried": "retried",
            "degraded": "degraded",
            "dead": "quarantined",
            "old-poison": "skipped",
        }
        counts = summary.counts()
        assert counts == {
            "clean": 1, "retried": 1, "degraded": 1, "quarantined": 1, "skipped": 1,
        }
        assert summary.by_level["pool"]["ok"] == 2
        text = summary.format()
        assert "quarantined: 1" in text and "pool" in text


# --------------------------------------------------- crash-atomic checkpoint


class TestCheckpointAtomicity:
    def test_failed_replace_leaves_previous_generation(self, tmp_path, monkeypatch):
        """Satellite: a crash mid-commit must leave the previous complete
        file on disk and roll the in-memory map back to match it."""
        path = tmp_path / "ck.jsonl"
        store = CheckpointStore(path, meta={"v": 1})
        store.put(["a"], {"n": 1})

        real_replace = os.replace

        def exploding_replace(src, dst):
            raise OSError("disk detached mid-rename")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError):
            store.put(["b"], {"n": 2})
        monkeypatch.setattr(os, "replace", real_replace)

        # In-memory state rolled back; on-disk file is the old generation.
        assert ["b"] not in store
        assert store.get(["a"]) == {"n": 1}
        reopened = CheckpointStore(path, meta={"v": 1})
        assert reopened.get(["a"]) == {"n": 1}
        assert len(reopened) == 1

    def test_failed_overwrite_rolls_back_to_previous_value(
        self, tmp_path, monkeypatch
    ):
        path = tmp_path / "ck.jsonl"
        store = CheckpointStore(path, meta={})
        store.put(["a"], {"n": 1})
        monkeypatch.setattr(
            os, "replace", lambda s, d: (_ for _ in ()).throw(OSError("full"))
        )
        with pytest.raises(OSError):
            store.put(["a"], {"n": 2})
        assert store.get(["a"]) == {"n": 1}

    def test_no_temp_file_left_behind(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        store = CheckpointStore(path, meta={})
        store.put(["a"], 1)
        store.put(["b"], 2)
        leftovers = [p for p in tmp_path.iterdir() if p.name != "ck.jsonl"]
        assert leftovers == []

    def test_interrupted_legacy_append_still_loads(self, tmp_path):
        """Files torn by the old append-only writer must still open."""
        path = tmp_path / "ck.jsonl"
        store = CheckpointStore(path, meta={"v": 1})
        store.put(["a"], {"n": 1})
        with open(path, "a") as fh:
            fh.write('{"k": ["b"], "v": {"n"')  # torn tail, no newline
        reopened = CheckpointStore(path, meta={"v": 1})
        assert reopened.get(["a"]) == {"n": 1}
        assert ["b"] not in reopened

    def test_header_mismatch_error_policy_unchanged(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        CheckpointStore(path, meta={"v": 1}).put(["a"], 1)
        with pytest.raises(CheckpointError):
            CheckpointStore(path, meta={"v": 2}, on_mismatch="error")


# ------------------------------------------------------ campaign integration


def _tiny_campaign_config(**overrides):
    defaults = dict(
        workloads=("gcc",),
        mechanisms=("aos",),
        kinds=(FaultKind.PTR_PAC_FLIP, FaultKind.USE_AFTER_FREE),
        locations=1,
        objects=8,
        churn=2,
        seed=3,
    )
    defaults.update(overrides)
    return CampaignConfig(**defaults)


def _tiny_supervise(**overrides):
    defaults = dict(
        jobs=2,
        deadline_s=1.5,
        heartbeat_interval_s=0.05,
        heartbeat_timeout_s=10.0,
        poll_interval_s=0.02,
        retry=RetryPolicy(max_retries=1, backoff_base_s=0.01),
    )
    defaults.update(overrides)
    return SupervisorConfig(**defaults)


def _boom_cell(args):
    raise RuntimeError("simulated dead worker")


class TestSupervisedCampaign:
    def test_hang_quarantined_and_resume_skips(self, tmp_path):
        """Satellite: injected hang -> detected -> retried -> quarantined;
        a resumed run skips the poison cell without re-running it."""
        config = _tiny_campaign_config(
            hang_cells=("gcc:aos:ptr-pac-flip:0",), hang_s=60.0
        )
        ck = tmp_path / "ck.jsonl"
        outcome = Campaign(config, checkpoint=ck).run(
            jobs=2, supervise=_tiny_supervise()
        )
        assert len(outcome.quarantined) == 1
        cell = outcome.quarantined[0]
        assert (cell["workload"], cell["kind"]) == ("gcc", "ptr-pac-flip")
        assert "hang" in cell["reason"]
        # The healthy cell still produced a verdict.
        assert [r.kind for r in outcome.results] == ["use-after-free"]

        start = time.monotonic()
        resumed = Campaign(config, checkpoint=ck).run(
            jobs=2, supervise=_tiny_supervise()
        )
        # Skipping means no 60s sleep and no retry loop: near-instant.
        assert time.monotonic() - start < 5.0
        assert resumed.skipped_quarantined == 1
        assert len(resumed.quarantined) == 1
        assert resumed.resumed == 1  # the healthy cell came from checkpoint

    def test_supervised_matches_serial_for_healthy_cells(self, tmp_path):
        """Acceptance: non-quarantined cells are byte-identical to a
        fault-free serial campaign (modulo wall-clock ``elapsed``)."""
        hang = _tiny_campaign_config(
            hang_cells=("gcc:aos:ptr-pac-flip:0",), hang_s=60.0
        )
        supervised = Campaign(hang, checkpoint=tmp_path / "ck.jsonl").run(
            jobs=2, supervise=_tiny_supervise()
        )
        serial = Campaign(_tiny_campaign_config()).run()
        serial_by_cell = {
            (r.workload, r.mechanism, r.kind, r.location): r.stable_payload()
            for r in serial.results
        }
        assert supervised.results  # at least the healthy cell
        for result in supervised.results:
            key = (result.workload, result.mechanism, result.kind, result.location)
            assert result.stable_payload() == serial_by_cell[key]

    def test_report_accounts_for_every_cell(self, tmp_path):
        config = _tiny_campaign_config(
            hang_cells=("gcc:aos:ptr-pac-flip:0",), hang_s=60.0
        )
        outcome = Campaign(config, checkpoint=tmp_path / "ck.jsonl").run(
            jobs=2, supervise=_tiny_supervise()
        )
        report = outcome.supervision
        assert report is not None
        assert len(outcome.results) + len(outcome.quarantined) == 2
        assert report.retries >= 1

    def test_supervised_without_faults_matches_plain_parallel(self, tmp_path):
        config = _tiny_campaign_config()
        supervised = Campaign(config, checkpoint=tmp_path / "ck.jsonl").run(
            jobs=2, supervise=_tiny_supervise()
        )
        plain = Campaign(config).run(jobs=2)
        assert [r.stable_payload() for r in supervised.results] == [
            r.stable_payload() for r in plain.results
        ]
        assert supervised.quarantined == []

    def test_hang_pattern_validation(self):
        config = _tiny_campaign_config(hang_cells=("too:few:parts",))
        spec = FaultSpec(kind=FaultKind.PTR_PAC_FLIP, location=0)
        with pytest.raises(FaultInjectionError):
            config.matches_hang("gcc", "aos", spec)

    def test_hang_pattern_wildcards(self):
        config = _tiny_campaign_config(hang_cells=("*:*:ptr-pac-flip:*",))
        spec = FaultSpec(kind=FaultKind.PTR_PAC_FLIP, location=3)
        other = FaultSpec(kind=FaultKind.USE_AFTER_FREE, location=3)
        assert config.matches_hang("povray", "aos", spec)
        assert not config.matches_hang("povray", "aos", other)

    def test_parallel_worker_exception_names_cell(self, monkeypatch):
        """Satellite: a dying parallel worker must name the cell it died
        on, not surface as a bare pool error."""
        import repro.faults.campaign as campaign_mod

        monkeypatch.setattr(campaign_mod, "_cell_worker", _boom_cell)
        campaign = Campaign(_tiny_campaign_config())
        with pytest.raises(FaultInjectionError) as excinfo:
            campaign.run(jobs=2)
        message = str(excinfo.value)
        assert "workload=gcc" in message
        assert "kind=" in message and "location=" in message
        assert "RuntimeError" in message


# ------------------------------------------------------------------ signals


class TestSignals:
    def test_sigterm_becomes_keyboard_interrupt(self):
        with pytest.raises(KeyboardInterrupt):
            with trap_signals():
                os.kill(os.getpid(), signal.SIGTERM)
                time.sleep(2.0)  # interrupted long before this expires

    def test_previous_handler_restored(self):
        before = signal.getsignal(signal.SIGTERM)
        try:
            with trap_signals():
                assert signal.getsignal(signal.SIGTERM) is not before
        except KeyboardInterrupt:  # pragma: no cover - no signal sent
            pass
        assert signal.getsignal(signal.SIGTERM) is before


# ------------------------------------------------------------------- ladder


def test_ladder_order_is_fixed():
    assert [level.value for level in LADDER] == ["pool", "fresh-pool", "serial"]

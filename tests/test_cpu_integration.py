"""End-to-end simulator tests: generate -> lower -> simulate, per mechanism."""

import pytest

from repro.compiler import lower_trace
from repro.cpu.core import Simulator
from repro.experiments.common import scaled_config
from repro.workloads import generate_trace, get_profile


@pytest.fixture(scope="module")
def results():
    trace = generate_trace(get_profile("soplex"), instructions=15_000, seed=2)
    out = {}
    for mech in ("baseline", "watchdog", "pa", "aos", "pa+aos"):
        config = scaled_config(mech, 8)
        out[mech] = Simulator(config).run(lower_trace(trace, mech, config=config))
    return out


class TestOrdering:
    def test_all_mechanisms_ran(self, results):
        for mech, r in results.items():
            assert r.cycles > 0
            assert r.instructions > 0
            assert r.mechanism == mech

    def test_watchdog_slowest(self, results):
        """§I / Fig. 14: Watchdog's extra instructions cost the most."""
        assert results["watchdog"].cycles > results["aos"].cycles
        assert results["watchdog"].cycles > results["baseline"].cycles

    def test_pa_cheapest_protection(self, results):
        assert results["pa"].cycles < results["watchdog"].cycles
        assert results["pa"].cycles <= results["aos"].cycles * 1.05

    def test_pa_aos_close_to_aos(self, results):
        """§IX-A: pointer integrity adds ~1.5 % on top of AOS."""
        ratio = results["pa+aos"].cycles / results["aos"].cycles
        assert 0.98 < ratio < 1.10

    def test_no_validation_faults_on_benign_traces(self, results):
        for r in results.values():
            assert r.validation_faults == 0

    def test_aos_reports_mcu_statistics(self, results):
        r = results["aos"]
        assert r.bounds_accesses_per_check >= 0.5
        assert 0.0 <= r.bwb_hit_rate <= 1.0

    def test_traffic_counted(self, results):
        for r in results.values():
            assert r.network_traffic_bytes > 0
        assert (
            results["watchdog"].network_traffic_bytes
            > results["baseline"].network_traffic_bytes
        )


class TestRepeatability:
    def test_same_lowering_same_result(self):
        trace = generate_trace(get_profile("gobmk"), instructions=8_000, seed=9)
        config = scaled_config("aos", 8)
        lowered = lower_trace(trace, "aos", config=config)
        a = Simulator(config).run(lowered)
        b = Simulator(config).run(lowered)
        # hbt_factory must give each run a fresh table: identical results.
        assert a.cycles == b.cycles
        assert a.hbt_resizes == b.hbt_resizes

    def test_plain_program_accepted(self):
        from repro.isa.instructions import Instruction, Op
        from repro.isa.program import Program

        program = Program(
            instructions=tuple(Instruction(op=Op.ALU) for _ in range(100)),
            name="bare",
        )
        result = Simulator(scaled_config("baseline", 1)).run(program)
        assert result.instructions == 100

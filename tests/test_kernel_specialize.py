"""Guard machinery and differential fuzz for the trace-speculative kernel.

tests/test_kernel_equivalence.py pins the broad byte-identity grid; this
file owns everything specific to :mod:`repro.kernel.specialize`:

- the **differential equivalence-fuzz sweep**: seeded random programs
  (trace generator seeds x workloads x mechanisms) through reference x
  fast x specialized x batched, byte for byte — including cells where a
  guard failure is *forced* through the injection seam, which must fall
  back to the reference kernel with identical results;
- the **guard taxonomy**: geometry / kinds / deps pre-run guards raise
  :class:`GuardAbort` before any state is touched, and the injection seam
  (``RunSettings.guard_inject`` / ``REPRO_GUARD_INJECT``) aborts
  deterministically mid-run;
- **accounting**: aborts count ``kernel.guard_abort`` (and the per-guard
  counter) in the metrics registry, and the module ``STATS`` track
  trainings / compiles / cache hits / aborts;
- the **specialization cache**: keyed by program family x config digest x
  registry fingerprint x codegen version;
- the **native (C) backend**: attached only to MCU-free profiles, forced
  off via ``REPRO_SPEC_CBACKEND=off``, byte-identical to the generated
  Python kernel whenever both are available.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.compiler import lower_trace
from repro.cache.hierarchy import MemoryHierarchy
from repro.cpu.core import GUARD_INJECT_ENV, Simulator
from repro.experiments.common import (
    ExperimentSuite,
    RunSettings,
    _result_to_payload,
    scaled_config,
)
from repro.isa.instructions import Instruction, Op
from repro.isa.program import Program
from repro.kernel import specialize as sp
from repro.kernel import specialize_cgen as cgen
from repro.kernel.batch import BatchCell, run_batch
from repro.kernel.flatten import flatten_program
from repro.obs import ObsSettings
from repro.workloads import generate_trace, get_profile

SEED = 7
SCALE = 8


def payload(result) -> str:
    return json.dumps(_result_to_payload(result), sort_keys=True)


def make_lowered(workload: str, mechanism: str, instructions: int = 2500,
                 seed: int = SEED, config=None):
    config = config or scaled_config(mechanism, SCALE)
    trace = generate_trace(
        get_profile(workload), instructions=instructions, seed=seed, scale=SCALE
    )
    return config, lower_trace(trace, mechanism, config=config)


def wire(config, lowered):
    """Mirror Simulator._wire: fresh run state from one lowered workload."""
    from repro.core.mcu import MemoryCheckUnit

    program = lowered.program
    hbt = lowered.hbt
    layout = lowered.pointer_layout
    uses_aos = hbt is not None and layout is not None
    hierarchy = MemoryHierarchy(
        config.memory, use_l1b=uses_aos and config.aos.l1b_cache
    )
    va_mask = layout.va_mask if layout is not None else (1 << 46) - 1
    mcu = None
    if uses_aos:
        mcu = MemoryCheckUnit(
            hbt=hbt,
            layout=layout,
            options=config.aos,
            bwb_config=config.bwb,
            mcq_capacity=config.core.mcq_entries,
            bounds_access=hierarchy.access_bounds,
        )
    return program, hierarchy, mcu, va_mask, hbt


def train(config, lowered, name=None):
    """One training pass via the direct API; returns the compiled spec."""
    from repro.kernel.fast import run_fast

    program, hierarchy, mcu, va_mask, _ = wire(config, lowered)
    result = run_fast(config, hierarchy, mcu, va_mask, None, program)
    profile = sp.build_profile(
        flatten_program(program), config, hierarchy, mcu, va_mask,
        result.validation_faults > 0, False,
    )
    return sp.specialize(name or program.name, config, hierarchy, mcu,
                         va_mask, profile)


@pytest.fixture(autouse=True)
def _fresh_spec_state():
    """Each test sees a cold specialization cache and zeroed stats."""
    sp.clear_cache()
    sp.STATS.reset()
    yield
    sp.clear_cache()
    sp.STATS.reset()


# ------------------------------------------------ differential fuzz sweep

#: Seeded random programs: each tuple is one fuzz cell.  Seeds vary the
#: generated trace (allocation pattern, access mix, mispredict placement),
#: the workload x mechanism axes vary the dispatch-code profile.
FUZZ_CELLS = [
    ("gcc", "baseline", 11), ("gcc", "aos", 13), ("gcc", "mte", 17),
    ("mcf", "aos", 19), ("povray", "pa", 23), ("gobmk", "pa+aos", 29),
    ("omnetpp", "aos", 31), ("mysql", "baseline", 37),
]


@pytest.mark.parametrize("workload,mechanism,seed", FUZZ_CELLS)
def test_fuzz_seeded_programs_all_paths(workload, mechanism, seed):
    """Seeded random programs: all four execution paths byte-identical."""
    config, lowered = make_lowered(workload, mechanism, seed=seed)
    reference = Simulator(config, kernel="reference").run(lowered)
    want = payload(reference)
    assert payload(Simulator(config, kernel="fast").run(lowered)) == want
    simulator = Simulator(config, kernel="specialized")
    assert payload(simulator.run(lowered)) == want  # training run
    assert payload(simulator.run(lowered)) == want  # generated kernel
    [batched] = run_batch(
        [BatchCell(label=f"{workload}/{mechanism}", config=config,
                   lowered=lowered)]
    )
    assert payload(batched) == want


@pytest.mark.parametrize("workload,mechanism,seed", FUZZ_CELLS[:4])
def test_fuzz_forced_guard_failure_falls_back_byte_identical(
    workload, mechanism, seed
):
    """Same sweep with a forced mid-run abort: the fallback rerun must be
    byte-identical too, and the abort must be accounted.

    The generated kernels only re-check the seam at 4096-instruction chunk
    boundaries, so the programs here must span at least one boundary for
    ``after:1000`` to fire.
    """
    config, lowered = make_lowered(workload, mechanism, seed=seed,
                                   instructions=6000)
    want = payload(Simulator(config, kernel="reference").run(lowered))
    simulator = Simulator(config, kernel="specialized",
                          guard_inject="after:1000")
    assert payload(simulator.run(lowered)) == want  # training (no abort)
    before = sp.STATS.injected_aborts
    assert payload(simulator.run(lowered)) == want  # aborts, falls back
    assert sp.STATS.injected_aborts == before + 1
    assert sp.STATS.last_guard == "injected"


# ----------------------------------------------------------- injection seam


def test_parse_injection_grammar():
    parse = sp.parse_injection
    assert parse("", "any") == -1
    assert parse("entry", "any") == 0
    assert parse("after:4096", "any") == 4096
    assert parse("after:-3", "any") == 0  # clamped, still fires
    assert parse("entry@gcc", "gcc:aos") == 0
    assert parse("entry@povray", "gcc:aos") == -1  # name filter misses
    with pytest.raises(ValueError):
        parse("after:soon", "any")
    with pytest.raises(ValueError):
        parse("sometimes", "any")


def test_injection_counts_metrics_and_falls_back():
    """An injected abort counts ``kernel.guard_abort`` (plus the per-guard
    counter) in the metrics registry and the result is still identical."""
    config, lowered = make_lowered("gcc", "aos")
    want = payload(Simulator(config, kernel="reference").run(lowered))
    Simulator(config, kernel="specialized").run(lowered)  # train
    obs = ObsSettings(enabled=True, tracing=False).create()
    result = Simulator(config, obs=obs, kernel="specialized",
                       guard_inject="entry").run(lowered)
    counters = obs.registry.snapshot()["counters"]
    assert counters["kernel.guard_abort"] == 1
    assert counters["kernel.guard_abort.injected"] == 1
    assert json.loads(payload(result))["pipeline"] == json.loads(want)["pipeline"]


def test_injection_env_fallback(monkeypatch):
    """REPRO_GUARD_INJECT arms the seam without code changes (CI surface)."""
    config, lowered = make_lowered("gcc", "baseline")
    Simulator(config, kernel="specialized").run(lowered)  # train
    monkeypatch.setenv(GUARD_INJECT_ENV, "entry")
    before = sp.STATS.injected_aborts
    Simulator(config, kernel="specialized").run(lowered)
    assert sp.STATS.injected_aborts == before + 1


def test_injection_name_filter_spares_other_cells():
    """A targeted injection spec only fires on matching program names."""
    config, lowered = make_lowered("gcc", "baseline")
    simulator = Simulator(config, kernel="specialized",
                          guard_inject="entry@povray")
    simulator.run(lowered)  # train
    before = sp.STATS.guard_aborts
    simulator.run(lowered)  # gcc cell: filter misses, no abort
    assert sp.STATS.guard_aborts == before


def test_run_settings_guard_inject_through_suite():
    """RunSettings.guard_inject reaches the kernel through the suite path
    and the aborted cell still reports reference-identical results."""
    reference = ExperimentSuite(
        RunSettings(instructions=3000, kernel="reference")
    ).result("gcc", "aos")
    settings = RunSettings(
        instructions=3000, kernel="specialized", guard_inject="after:500"
    )
    suite = ExperimentSuite(settings)
    suite.result("gcc", "aos")  # training
    aborted = suite.result("gcc", "aos")
    assert payload(aborted) == payload(reference)


# ------------------------------------------------------------ guard taxonomy


def test_geometry_guard_rejects_mismatched_hierarchy():
    config, lowered = make_lowered("gcc", "aos")
    spec = train(config, lowered)
    other_config = scaled_config("aos", SCALE // 2)  # different geometry
    program, hierarchy, mcu, va_mask, _ = wire(other_config, lowered)
    with pytest.raises(sp.GuardAbort) as excinfo:
        sp.start_specialized(spec, other_config, hierarchy, mcu, va_mask, program)
    assert excinfo.value.guard == "geometry"


def test_kinds_guard_rejects_untrained_codes():
    """A kernel trained on an ALU-only profile refuses a program with
    loads (untrained dispatch code) before running anything."""
    config, lowered = make_lowered("gcc", "baseline")
    program, hierarchy, mcu, va_mask, _ = wire(config, lowered)
    narrow = Program(
        instructions=tuple(Instruction(op=Op.ALU) for _ in range(64)),
        name="alu-only",
    )
    profile = sp.build_profile(
        flatten_program(narrow), config, hierarchy, mcu, va_mask, False, False
    )
    spec = sp.specialize("alu-only", config, hierarchy, mcu, va_mask, profile)
    with pytest.raises(sp.GuardAbort) as excinfo:
        sp.start_specialized(spec, config, hierarchy, mcu, va_mask, program)
    assert excinfo.value.guard == "kinds"


def test_deps_guard_rejects_zero_distance_dependency():
    """A literal 0 dep distance (self-dependency) cannot use the fast
    truthiness dispatch; the deps guard refuses the program."""
    config, lowered = make_lowered("gcc", "baseline")
    spec = train(config, lowered)
    weird = Program(
        instructions=tuple(
            Instruction(op=Op.ALU, deps=(0,)) for _ in range(8)
        ),
        name="self-dep",
    )
    program, hierarchy, mcu, va_mask, _ = wire(config, lowered)
    with pytest.raises(sp.GuardAbort) as excinfo:
        sp.start_specialized(spec, config, hierarchy, mcu, va_mask, weird)
    assert excinfo.value.guard == "deps"


def test_simulator_falls_back_on_guard_abort_byte_identical():
    """Through the Simulator, a pre-run guard failure (kinds) reruns the
    cell on the reference kernel with byte-identical output."""
    config, lowered = make_lowered("gcc", "aos")
    want = payload(Simulator(config, kernel="reference").run(lowered))
    # Train on a narrower program under the *same* cache key, so the real
    # program trips the kinds guard on its next specialized run.
    narrow = Program(
        instructions=tuple(Instruction(op=Op.ALU) for _ in range(64)),
        name=lowered.name,  # the Simulator's cache key uses lowered.name
    )
    program, hierarchy, mcu, va_mask, _ = wire(config, lowered)
    profile = sp.build_profile(
        flatten_program(narrow), config, hierarchy, mcu, va_mask, False, False
    )
    sp.specialize(narrow.name, config, hierarchy, mcu, va_mask, profile)
    before = sp.STATS.guard_aborts
    result = Simulator(config, kernel="specialized").run(lowered)
    assert sp.STATS.guard_aborts == before + 1
    assert sp.STATS.last_guard == "kinds"
    assert payload(result) == want


# -------------------------------------------------------------------- cache


def test_specialization_cache_hits_and_reset():
    config, lowered = make_lowered("gcc", "baseline")
    simulator = Simulator(config, kernel="specialized")
    simulator.run(lowered)
    assert sp.STATS.trainings == 1
    assert sp.cache_size() == 1
    hits = sp.STATS.cache_hits
    simulator.run(lowered)
    assert sp.STATS.cache_hits > hits
    assert sp.STATS.trainings == 1  # no retraining
    sp.clear_cache()
    assert sp.cache_size() == 0
    simulator.run(lowered)
    assert sp.STATS.trainings == 2  # cold cache retrains


def test_specialization_key_axes():
    """The cache key separates program family, config and codegen version."""
    config_a = scaled_config("aos", SCALE)
    config_b = scaled_config("mte", SCALE)
    key = sp.specialization_key("gcc:aos", config_a)
    assert f"v{sp.SPEC_VERSION}" in key
    assert key != sp.specialization_key("mcf:aos", config_a)
    assert key != sp.specialization_key("gcc:aos", config_b)
    assert key == sp.specialization_key("gcc:aos", config_a)


def test_seed_sharing_one_specialization_many_seeds():
    """Cells differing only in seed share one compiled specialization."""
    config = scaled_config("baseline", SCALE)
    simulator = Simulator(config, kernel="specialized")
    for seed in (3, 5, 11):
        _, lowered = make_lowered("gcc", "baseline", seed=seed, config=config)
        simulator.run(lowered)
    assert sp.STATS.trainings == 1
    assert sp.STATS.compiles == 1


# ---------------------------------------------------------- native backend

_HAS_CC = cgen._find_cc() is not None


@pytest.mark.skipif(not _HAS_CC, reason="no C compiler on this host")
def test_cbackend_attaches_only_to_mcu_free_profiles():
    config, lowered = make_lowered("gcc", "baseline")
    assert train(config, lowered).cfn is not None
    config_aos, lowered_aos = make_lowered("gcc", "aos")
    assert train(config_aos, lowered_aos).cfn is None  # MCU profile


@pytest.mark.skipif(not _HAS_CC, reason="no C compiler on this host")
def test_cbackend_byte_identical_to_python_kernel(monkeypatch):
    """The differential seam: the same compiled specialization, run once
    through the generated Python and once through the C library, produces
    byte-identical results and cache state."""
    config, lowered = make_lowered("gcc", "baseline", instructions=4000)
    spec = train(config, lowered)
    assert spec.cfn is not None and spec.csource
    states = {}
    for mode in ("off", "auto"):
        monkeypatch.setenv(cgen.ENV_SWITCH, mode)
        program, hierarchy, mcu, va_mask, _ = wire(config, lowered)
        result = sp.run_specialized(spec, config, hierarchy, mcu, va_mask,
                                    program)
        states[mode] = json.dumps(
            {
                "pipeline": dataclasses.asdict(result),
                "cache": hierarchy.summary(),
                "l1d_sets": [list(s.items()) for s in hierarchy.l1d._sets],
                "l2_sets": [list(s.items()) for s in hierarchy.l2._sets],
            },
            sort_keys=True,
        )
    assert states["off"] == states["auto"]


@pytest.mark.skipif(not _HAS_CC, reason="no C compiler on this host")
def test_cbackend_off_switch_and_run_accounting(monkeypatch):
    config, lowered = make_lowered("gcc", "baseline")
    simulator = Simulator(config, kernel="specialized")
    simulator.run(lowered)  # train (attaches the backend)
    assert sp.STATS.c_compiles == 1
    monkeypatch.setenv(cgen.ENV_SWITCH, "off")
    simulator.run(lowered)
    assert sp.STATS.c_runs == 0
    monkeypatch.setenv(cgen.ENV_SWITCH, "auto")
    simulator.run(lowered)
    assert sp.STATS.c_runs == 1


@pytest.mark.skipif(not _HAS_CC, reason="no C compiler on this host")
def test_cbackend_honours_injection_seam():
    """The C runner yields at the same chunk boundaries, so the injection
    seam aborts it exactly like the Python kernel — and the fallback is
    still byte-identical."""
    config, lowered = make_lowered("gcc", "baseline", instructions=6000)
    want = payload(Simulator(config, kernel="reference").run(lowered))
    simulator = Simulator(config, kernel="specialized",
                          guard_inject="after:1000")
    simulator.run(lowered)  # train
    before = sp.STATS.injected_aborts
    assert payload(simulator.run(lowered)) == want
    assert sp.STATS.injected_aborts == before + 1


def test_cbackend_eligibility_predicate():
    """MCU profiles, marker-bearing profiles and rob-overflow profiles are
    all ineligible regardless of compiler availability."""
    g = {"rob_merge": True, "lq": 32, "sq": 32}
    assert cgen.eligible({1, 2, 4, 7}, g, None)
    assert not cgen.eligible({1, 2, 4, 7}, g, object())  # has MCU
    assert not cgen.eligible({1, 2, 4, 7, 8}, g, None)   # signed loads
    assert not cgen.eligible(set(), g, None)             # empty profile
    assert not cgen.eligible({1, 7}, dict(g, rob_merge=False), None)

"""Tests for pluggable cache backends, the LRU size cap, entry-point
mechanism discovery, and heartbeat-board hygiene — the satellite tasks of
the distributed campaign service PR."""

import os
import time

import pytest

from repro.experiments import (
    ArtifactCache,
    BACKEND_CHOICES,
    LocalDirBackend,
    MemoryBackend,
    SharedStoreBackend,
    make_backend,
)


class TestBackendContract:
    """Every backend satisfies the same read/write/remove/entries contract."""

    @pytest.fixture(params=BACKEND_CHOICES)
    def backend(self, request, tmp_path):
        return make_backend(request.param, tmp_path / "store")

    def test_roundtrip(self, backend):
        assert backend.read("results", "fp") is None
        backend.write("results", "fp", b'{"v": 1}')
        assert backend.read("results", "fp") == b'{"v": 1}'

    def test_overwrite_replaces(self, backend):
        backend.write("results", "fp", b"old")
        backend.write("results", "fp", b"newer")
        assert backend.read("results", "fp") == b"newer"

    def test_remove_is_idempotent(self, backend):
        backend.write("results", "fp", b"x")
        backend.remove("results", "fp")
        backend.remove("results", "fp")  # second removal: no error
        assert backend.read("results", "fp") is None

    def test_entries_enumerates_kinds_and_sizes(self, backend):
        backend.write("results", "a", b"aaaa")
        backend.write("traces", "b", b"bb")
        entries = {(e.kind, e.fingerprint): e.size for e in backend.entries()}
        assert entries == {("results", "a"): 4, ("traces", "b"): 2}
        assert backend.total_bytes() == 6


class TestLocalDirBackend:
    def test_layout_is_byte_compatible_with_legacy_caches(self, tmp_path):
        """Pre-backend caches wrote <root>/results/<fp>.json directly;
        the local backend must keep hitting those entries."""
        legacy = tmp_path / "cache" / "results"
        legacy.mkdir(parents=True)
        (legacy / "deadbeef.json").write_bytes(b'{"old": true}')
        backend = LocalDirBackend(tmp_path / "cache")
        assert backend.read("results", "deadbeef") == b'{"old": true}'
        backend.write("results", "cafe", b"{}")
        assert (tmp_path / "cache" / "results" / "cafe.json").exists()

    def test_temp_files_are_not_entries(self, tmp_path):
        backend = LocalDirBackend(tmp_path / "cache")
        backend.write("results", "fp", b"x")
        (tmp_path / "cache" / "results" / ".junk.123.tmp").write_bytes(b"partial")
        assert [e.fingerprint for e in backend.entries()] == ["fp"]


class TestSharedStoreBackend:
    def test_identical_payloads_share_one_blob(self, tmp_path):
        backend = SharedStoreBackend(tmp_path / "store")
        payload = b'{"result": "same"}'
        backend.write("results", "fp-a", payload)
        backend.write("results", "fp-b", payload)
        backend.write("traces", "fp-c", payload)
        stats = backend.dedup_stats()
        assert stats["refs"] == 3
        assert stats["objects"] == 1
        assert stats["deduped_bytes"] == 2 * len(payload)

    def test_blob_survives_until_last_ref_dies(self, tmp_path):
        backend = SharedStoreBackend(tmp_path / "store")
        payload = b"shared-bytes"
        backend.write("results", "a", payload)
        backend.write("results", "b", payload)
        backend.remove("results", "a")
        assert backend.collect_garbage() == 0  # "b" still references it
        assert backend.read("results", "b") == payload
        backend.remove("results", "b")
        assert backend.collect_garbage() == len(payload)

    def test_dangling_ref_reads_as_miss_and_self_heals(self, tmp_path):
        backend = SharedStoreBackend(tmp_path / "store")
        backend.write("results", "fp", b"doomed")
        # Simulate a GC'd/corrupted-away blob behind a live ref.
        for shard in (tmp_path / "store" / "objects").iterdir():
            for obj in shard.iterdir():
                obj.unlink()
        assert backend.read("results", "fp") is None
        assert backend.entries() == [] or all(
            e.fingerprint != "fp" for e in backend.entries()
        )

    def test_make_backend_rejects_unknown_and_rootless(self, tmp_path):
        with pytest.raises(ValueError, match="unknown cache backend"):
            make_backend("s3", tmp_path)
        with pytest.raises(ValueError, match="requires a root"):
            make_backend("shared", None)


class TestSizeCapLRU:
    def test_put_evicts_least_recently_used_first(self, tmp_path):
        backend = MemoryBackend()
        cache = ArtifactCache(backend=backend, max_bytes=40)
        cache.put_result("old", {"pad": "x" * 5})
        cache.put_result("hot", {"pad": "y" * 5})
        cache.get_result("old")  # refresh: "old" is now the MRU entry
        cache.put_result("new", {"pad": "z" * 5})  # overflows the cap
        assert cache.get_result("hot") is None  # LRU victim
        assert cache.get_result("old") is not None
        assert cache.get_result("new") is not None
        assert cache.stats.evicted == 1

    def test_disk_lru_uses_mtime(self, tmp_path):
        cache = ArtifactCache(root=tmp_path / "cache")
        cache.put_result("stale", {"v": 1})
        cache.put_result("fresh", {"v": 2})
        # Force a clear mtime ordering without sleeping.
        old = time.time() - 1000
        os.utime(tmp_path / "cache" / "results" / "stale.json", (old, old))
        report = cache.prune(max_bytes=10)
        assert report.evicted == 1
        assert cache.get_result("fresh") is not None
        assert cache.get_result("stale") is None

    def test_prune_zero_empties_and_gc_runs(self, tmp_path):
        backend = SharedStoreBackend(tmp_path / "store")
        cache = ArtifactCache(backend=backend)
        cache.put_result("a", {"v": 1})
        cache.put_result("b", {"v": 1})  # dedup: same blob
        report = cache.prune(max_bytes=0)
        assert report.evicted == 2
        assert report.gc_bytes > 0  # orphaned blob collected
        assert report.remaining_entries == 0
        assert backend.total_bytes() == 0

    def test_env_var_cap_applies(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "25")
        cache = ArtifactCache(backend=MemoryBackend())
        assert cache.max_bytes == 25
        cache.put_result("a", {"pad": "x" * 10})
        cache.put_result("b", {"pad": "y" * 10})
        assert cache.backend.total_bytes() <= 25

    def test_usage_reports_backend_and_kinds(self, tmp_path):
        cache = ArtifactCache(backend=MemoryBackend(), max_bytes=1000)
        cache.put_result("a", {"v": 1})
        usage = cache.usage()
        assert usage["entries"] == 1
        assert usage["max_bytes"] == 1000
        assert "results" in usage["kinds"]
        assert usage["backend"].startswith("memory")


class TestEntryPointDiscovery:
    """Out-of-tree mechanisms register via the ``repro.mechanisms``
    entry-point group (satellite: plugin discovery).  The tests simulate
    an installed dummy distribution by monkeypatching
    ``importlib.metadata.entry_points``."""

    def _registry_with_entry_points(self, monkeypatch, points):
        import importlib.metadata

        from repro.mechanisms import ENTRY_POINT_GROUP
        from repro.mechanisms.registry import MechanismRegistry

        def fake_entry_points(*args, **kwargs):
            assert kwargs.get("group") == ENTRY_POINT_GROUP
            return points

        monkeypatch.setattr(importlib.metadata, "entry_points", fake_entry_points)
        return MechanismRegistry()

    @staticmethod
    def _clone_spec(name):
        """An aos clone under a new name + cache token (tokens must be
        unique registry-wide or cached artifacts would collide)."""
        import dataclasses

        from repro.mechanisms import REGISTRY

        return dataclasses.replace(
            REGISTRY.get("aos"), name=name, cache_token=f"token-{name}"
        )

    def test_callable_entry_point_registers_mechanism(self, monkeypatch):
        clone = self._clone_spec("thirdparty-aos")

        class FakeEntryPoint:
            name = "thirdparty"

            @staticmethod
            def load():
                return lambda registry: registry.register(clone)

        registry = self._registry_with_entry_points(monkeypatch, [FakeEntryPoint()])
        assert "thirdparty-aos" in registry.names()
        assert registry.get("thirdparty-aos").factory is clone.factory

    def test_spec_entry_point_registers_directly(self, monkeypatch):
        clone = self._clone_spec("dummy-dist-mech")

        class FakeEntryPoint:
            name = "dummy"

            @staticmethod
            def load():
                return clone

        registry = self._registry_with_entry_points(monkeypatch, [FakeEntryPoint()])
        assert "dummy-dist-mech" in registry.names()

    def test_broken_entry_point_warns_and_is_skipped(self, monkeypatch):
        good = self._clone_spec("survivor-mech")

        class BrokenEntryPoint:
            name = "broken"

            @staticmethod
            def load():
                raise ImportError("plugin has a bug")

        class GoodEntryPoint:
            name = "good"

            @staticmethod
            def load():
                return good

        with pytest.warns(RuntimeWarning, match="broken"):
            registry = self._registry_with_entry_points(
                monkeypatch, [BrokenEntryPoint(), GoodEntryPoint()]
            )
            names = registry.names()
        # The bad plugin is skipped without poisoning discovery.
        assert "survivor-mech" in names

    def test_non_spec_non_callable_entry_point_is_skipped(self, monkeypatch):
        class JunkEntryPoint:
            name = "junk"

            @staticmethod
            def load():
                return 42

        with pytest.warns(RuntimeWarning, match="junk"):
            registry = self._registry_with_entry_points(monkeypatch, [JunkEntryPoint()])
            registry.names()

    def test_global_registry_still_serves_builtins(self):
        """Entry-point discovery must not disturb the builtin set the
        rest of the repo (CLI choices, sweeps) enumerates."""
        from repro.mechanisms import REGISTRY

        assert "aos" in REGISTRY.names()


class TestHeartbeatHygiene:
    """Stale heartbeat files from crashed runs are swept, not trusted
    (satellite: heartbeat hygiene)."""

    def test_sweep_stale_removes_old_stamps_only(self, tmp_path):
        from repro.supervise import HeartbeatBoard

        board = HeartbeatBoard(tmp_path / "board")
        board.start_task("fresh-task")
        board.start_task("old-task")
        # Age every stamp, then re-stamp the fresh task: what remains old
        # is exactly old-task's .start/.beat pair.
        old = time.time() - 7200
        for stamp in (tmp_path / "board").iterdir():
            os.utime(stamp, (old, old))
        board.start_task("fresh-task")
        removed = board.sweep_stale(max_age_s=3600)
        assert removed == 2  # old-task's .start (+ no .beat) and stale leftovers
        assert board.last_beat("fresh-task") is not None

    def test_sweep_stale_boards_removes_abandoned_dirs(self, tmp_path):
        from repro.supervise.heartbeat import sweep_stale_boards

        old_dir = tmp_path / "repro-supervise-dead"
        old_dir.mkdir()
        stamp = old_dir / "abc.start"
        stamp.write_text("1")
        old = time.time() - 7200
        os.utime(stamp, (old, old))
        os.utime(old_dir, (old, old))
        live_dir = tmp_path / "repro-supervise-live"
        live_dir.mkdir()
        (live_dir / "xyz.beat").write_text("1")
        unrelated = tmp_path / "keep-me"
        unrelated.mkdir()
        removed = sweep_stale_boards(parent=tmp_path, max_age_s=3600)
        assert removed == 1
        assert not old_dir.exists()
        assert live_dir.exists()
        assert unrelated.exists()

"""Bounds compression tests (§V-D, Fig. 9)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bounds import (
    RawBounds,
    compress_bounds,
    decompress_bounds,
    truncate_address,
)
from repro.errors import EncodingError

aligned_addrs = st.integers(min_value=0, max_value=(1 << 29) - 1).map(lambda x: x * 16)
sizes = st.integers(min_value=1, max_value=(1 << 32) - 1)


class TestCompression:
    def test_roundtrip(self):
        raw = compress_bounds(0x20001000, 4096)
        b = decompress_bounds(raw)
        assert b.lower == 0x20001000
        assert b.size == 4096
        assert b.upper == 0x20002000

    def test_record_is_64_bit(self):
        raw = compress_bounds(0x1FFFFFFF0, (1 << 32) - 1)
        assert 0 <= raw < (1 << 64)

    def test_rejects_misaligned_lower(self):
        with pytest.raises(EncodingError):
            compress_bounds(0x20001008, 64)

    def test_rejects_zero_size(self):
        with pytest.raises(EncodingError):
            compress_bounds(0x20001000, 0)

    def test_rejects_oversized_size(self):
        with pytest.raises(EncodingError):
            compress_bounds(0x20001000, 1 << 32)

    def test_empty_record(self):
        assert decompress_bounds(0).is_empty
        assert not decompress_bounds(compress_bounds(0x1000, 16)).is_empty

    @given(aligned_addrs, sizes)
    def test_roundtrip_property(self, lower, size):
        b = decompress_bounds(compress_bounds(lower, size))
        assert b.lower == lower & ((1 << 33) - 1)
        assert b.size == size


class TestChecking:
    def test_contains_in_bounds(self):
        b = decompress_bounds(compress_bounds(0x20001000, 64))
        assert b.contains(0x20001000)
        assert b.contains(0x20001000 + 63)

    def test_excludes_out_of_bounds(self):
        b = decompress_bounds(compress_bounds(0x20001000, 64))
        assert not b.contains(0x20001000 + 64)
        assert not b.contains(0x20001000 - 1)

    @given(aligned_addrs, st.integers(min_value=1, max_value=1 << 20))
    def test_every_interior_byte_in_bounds(self, lower, size):
        b = decompress_bounds(compress_bounds(lower, size))
        assert b.contains(lower)
        assert b.contains(lower + size - 1)
        assert not b.contains(lower + size)

    def test_carry_compensation_bit(self):
        """Fig. 9b: a region straddling the 2**32 boundary still checks."""
        lower = (1 << 32) - 64  # bit 32 clear in lower? no: below 2^32
        b = decompress_bounds(compress_bounds(lower, 128))
        # Addresses past the 2**32 boundary have bit 32 set; the bound's
        # bit 32 is clear, no compensation needed, plain containment:
        assert b.contains(lower + 100)

    def test_carry_bit_when_lower_has_bit32(self):
        """Lower bound with bit 32 set, address wraps past 2**33 cut."""
        lower = (1 << 33) - 128  # bit 32 set in LowBnd[32:4] view
        b = decompress_bounds(compress_bounds(lower, 256))
        inside = lower + 200  # crosses 2**33: Addr[32] reads 0 after truncation
        assert b.contains(inside)

    def test_truncate_address_c_bit(self):
        low_field = compress_bounds((1 << 33) - 128, 256) & ((1 << 29) - 1)
        t = truncate_address((1 << 33) + 72, low_field)
        assert t >> 33 == 1  # C bit set


class TestRawBounds:
    def test_contains(self):
        b = RawBounds(lower=0x1000, upper=0x1040)
        assert b.contains(0x1000)
        assert b.contains(0x103F)
        assert not b.contains(0x1040)

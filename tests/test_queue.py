"""Tests for the durable work queue (repro.queue): store semantics,
lease lifecycle, scheduling, worker loop, and campaign collection."""

import threading
import time

import pytest

from repro.errors import FaultInjectionError
from repro.faults import (
    ALL_QUEUE_KINDS,
    CampaignConfig,
    FaultKind,
    QueueFaultKind,
    parse_queue_fault_kind,
)
from repro.obs import MetricsRegistry
from repro.queue import (
    QueueError,
    QueueWorker,
    WorkerConfig,
    WorkQueue,
    campaign_cell_jobs,
    canonical_key,
    cell_fingerprint,
    collect_campaign,
    enqueue_campaign,
    verify_against_serial,
)
from repro.supervise import RetryPolicy


def fast_retry(max_retries=1):
    """Zero-delay retry policy so tests never sleep on backoff."""
    return RetryPolicy(max_retries=max_retries, backoff_base_s=0.0, backoff_cap_s=0.0)


def tiny_config(**overrides):
    """A 2-cell campaign whose cells run in milliseconds."""
    defaults = dict(
        workloads=("gcc",),
        mechanisms=("aos",),
        kinds=(FaultKind.PTR_PAC_FLIP, FaultKind.USE_AFTER_FREE),
        locations=1,
        objects=8,
        churn=1,
    )
    defaults.update(overrides)
    return CampaignConfig(**defaults)


class FakeClock:
    """Manually advanced clock for lease-expiry tests."""

    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_queue(tmp_path, retry=None, clock=None, metrics=None):
    return WorkQueue(
        tmp_path / "q",
        retry=retry or fast_retry(),
        clock=clock or time.time,
        metrics=metrics,
    )


def enqueue_pairs(queue, campaign, pairs):
    queue.create_campaign(campaign, {"n": len(pairs)})
    return queue.enqueue(campaign, pairs)


PAIRS = [(["cell", i], {"i": i}) for i in range(4)]


class TestWorkQueueStore:
    def test_enqueue_is_idempotent(self, tmp_path):
        queue = make_queue(tmp_path)
        assert enqueue_pairs(queue, "c", PAIRS) == 4
        assert queue.enqueue("c", PAIRS) == 0  # resume path: no duplicates
        assert queue.counts("c").pending == 4

    def test_claim_leases_fifo_and_ack_completes(self, tmp_path):
        queue = make_queue(tmp_path)
        enqueue_pairs(queue, "c", PAIRS)
        jobs = queue.claim("w0", batch=2, ttl_s=10)
        assert [job.key for job in jobs] == [["cell", 0], ["cell", 1]]
        assert queue.counts("c").leased == 2
        assert queue.ack("w0", jobs[0].id, {"v": 1}) == "done"
        counts = queue.counts("c")
        assert (counts.done, counts.leased, counts.pending) == (1, 1, 2)
        assert queue.results("c")[canonical_key(["cell", 0])] == {"v": 1}

    def test_ack_is_exactly_once(self, tmp_path):
        queue = make_queue(tmp_path)
        enqueue_pairs(queue, "c", PAIRS)
        [job] = queue.claim("w0", batch=1, ttl_s=10)
        assert queue.ack("w0", job.id, {"v": 1}) == "done"
        assert queue.ack("w0", job.id, {"v": 2}) == "duplicate"
        assert queue.ack("w1", job.id, {"v": 3}) == "duplicate"
        # The first completion's payload survives; duplicates are discarded.
        assert queue.results("c")[canonical_key(["cell", 0])] == {"v": 1}
        assert queue.events.duplicates == 2

    def test_fail_requeues_with_backoff_then_quarantines(self, tmp_path):
        clock = FakeClock()
        retry = RetryPolicy(max_retries=1, backoff_base_s=5.0, jitter=0.0)
        queue = make_queue(tmp_path, retry=retry, clock=clock)
        enqueue_pairs(queue, "c", PAIRS[:1])
        [job] = queue.claim("w0", batch=1, ttl_s=10)
        assert queue.fail("w0", job.id, "boom") == "requeued"
        # Backoff gate: not claimable until the seeded delay passes.
        assert queue.claim("w0", batch=1, ttl_s=10) == []
        clock.advance(6.0)
        [job2] = queue.claim("w0", batch=1, ttl_s=10)
        assert job2.attempts == 1
        assert queue.fail("w0", job2.id, "boom again") == "quarantined"
        assert queue.counts("c").quarantined == 1
        reason = queue.quarantined("c")[canonical_key(["cell", 0])]
        assert "boom again" in reason

    def test_fail_without_lease_is_stale_and_uncharged(self, tmp_path):
        queue = make_queue(tmp_path)
        enqueue_pairs(queue, "c", PAIRS[:1])
        [job] = queue.claim("w0", batch=1, ttl_s=10)
        assert queue.fail("w1", job.id, "not mine") == "stale"
        assert queue.job_states("c")[canonical_key(["cell", 0])] == ("leased", 0)

    def test_release_returns_jobs_uncharged(self, tmp_path):
        queue = make_queue(tmp_path)
        enqueue_pairs(queue, "c", PAIRS)
        jobs = queue.claim("w0", batch=3, ttl_s=10)
        assert queue.release("w0", [job.id for job in jobs]) == 3
        counts = queue.counts("c")
        assert (counts.pending, counts.leased) == (4, 0)
        # No attempt charged: a graceful drain is not a failure.
        assert all(
            attempts == 0 for _, attempts in queue.job_states("c").values()
        )

    def test_lease_expiry_reclaims_and_charges(self, tmp_path):
        clock = FakeClock()
        queue = make_queue(tmp_path, retry=fast_retry(), clock=clock)
        enqueue_pairs(queue, "c", PAIRS[:2])
        queue.claim("w0", batch=2, ttl_s=5.0)
        assert queue.reclaim() == []  # leases still live
        clock.advance(6.0)
        events = queue.reclaim()
        assert len(events) == 2
        assert {event.outcome for event in events} == {"requeued"}
        assert all("lease expired" in event.reason for event in events)
        counts = queue.counts("c")
        assert (counts.pending, counts.leased) == (2, 0)
        # A reclaim charges the attempt exactly like a supervisor crash.
        assert all(
            attempts == 1 for _, attempts in queue.job_states("c").values()
        )

    def test_extend_keeps_lease_alive(self, tmp_path):
        clock = FakeClock()
        queue = make_queue(tmp_path, clock=clock)
        enqueue_pairs(queue, "c", PAIRS[:1])
        [job] = queue.claim("w0", batch=1, ttl_s=5.0)
        clock.advance(4.0)
        assert queue.extend("w0", [job.id], ttl_s=5.0) == 1
        clock.advance(4.0)  # beyond the original expiry, inside the new one
        assert queue.reclaim() == []
        assert queue.extend("w1", [job.id], ttl_s=5.0) == 0  # not the owner

    def test_heartbeat_staleness_reclaims_before_ttl(self, tmp_path):
        queue = make_queue(tmp_path)
        board = queue.board()
        enqueue_pairs(queue, "c", PAIRS[:1])
        queue.claim("w0", batch=1, ttl_s=3600.0)  # far-future lease
        board.start_task("w0")
        # Beat is fresh: no reclaim even with a tiny timeout window.
        assert queue.reclaim(board, heartbeat_timeout_s=30.0) == []
        time.sleep(0.05)
        events = queue.reclaim(board, heartbeat_timeout_s=0.01)
        assert len(events) == 1
        assert "heartbeat stale" in events[0].reason

    def test_reclaim_quarantines_after_max_attempts(self, tmp_path):
        clock = FakeClock()
        queue = make_queue(tmp_path, retry=fast_retry(max_retries=1), clock=clock)
        enqueue_pairs(queue, "c", PAIRS[:1])
        for expected in ("requeued", "quarantined"):
            queue.claim("w0", batch=1, ttl_s=1.0)
            clock.advance(2.0)
            [event] = queue.reclaim()
            assert event.outcome == expected
        assert queue.counts("c").quarantined == 1

    def test_late_ack_after_reclaim_still_wins_once(self, tmp_path):
        """A worker that lost its lease mid-cell but finishes anyway gets
        its (deterministic) result recorded — and a later rerun completion
        is the duplicate, never a second merge."""
        clock = FakeClock()
        queue = make_queue(tmp_path, clock=clock)
        enqueue_pairs(queue, "c", PAIRS[:1])
        [job] = queue.claim("w0", batch=1, ttl_s=1.0)
        clock.advance(2.0)
        queue.reclaim()  # w0's lease is gone; job back to pending
        [rerun] = queue.claim("w1", batch=1, ttl_s=10.0)
        assert rerun.id == job.id and rerun.key == ["cell", 0]
        assert queue.ack("w0", job.id, {"v": 1}) == "done"  # late but first
        assert queue.events.late_acks == 1
        assert queue.ack("w1", rerun.id, {"v": 1}) == "duplicate"
        assert queue.counts("c").done == 1

    def test_campaign_config_conflict_rejected(self, tmp_path):
        queue = make_queue(tmp_path)
        assert queue.create_campaign("c", {"shape": 1}) is True
        assert queue.create_campaign("c", {"shape": 1}) is False  # resume
        with pytest.raises(QueueError, match="different configuration"):
            queue.create_campaign("c", {"shape": 2})

    def test_durability_across_handles(self, tmp_path):
        queue = make_queue(tmp_path)
        enqueue_pairs(queue, "c", PAIRS)
        [job, _held] = queue.claim("w0", batch=2, ttl_s=10)
        queue.ack("w0", job.id, {"v": 1})
        queue.close()
        reopened = make_queue(tmp_path)
        counts = reopened.counts("c")
        assert (counts.done, counts.pending, counts.leased) == (1, 2, 1)
        assert reopened.campaign_config("c") == {"n": 4}

    def test_metrics_counters_and_depth_gauge(self, tmp_path):
        metrics = MetricsRegistry()
        queue = make_queue(tmp_path, metrics=metrics)
        enqueue_pairs(queue, "c", PAIRS[:2])
        [job, other] = queue.claim("w0", batch=2, ttl_s=10)
        queue.ack("w0", job.id, {"v": 1})
        queue.ack("w0", job.id, {"v": 1})
        queue.fail("w0", other.id, "boom")
        snapshot = metrics.snapshot()["counters"]
        assert snapshot["queue.enqueued"] == 2
        assert snapshot["queue.claimed"] == 2
        assert snapshot["queue.done"] == 1
        assert snapshot["queue.duplicate"] == 1
        assert snapshot["queue.requeued"] == 1
        assert metrics.snapshot()["gauges"]["queue.depth"] == 1.0


class TestScheduling:
    def test_priority_wins(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.create_campaign("low", {}, priority=0)
        queue.create_campaign("high", {}, priority=5)
        queue.enqueue("low", [(["l", i], {}) for i in range(2)])
        queue.enqueue("high", [(["h", i], {}) for i in range(2)])
        claimed = [queue.claim("w0", batch=1, ttl_s=10)[0] for _ in range(3)]
        assert [job.campaign for job in claimed] == ["high", "high", "low"]

    def test_fair_share_alternates_equal_weights(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.create_campaign("a", {"id": "a"})
        queue.create_campaign("b", {"id": "b"})
        queue.enqueue("a", [(["a", i], {}) for i in range(3)])
        queue.enqueue("b", [(["b", i], {}) for i in range(3)])
        order = [queue.claim("w0", batch=1, ttl_s=10)[0].campaign for _ in range(6)]
        # Least-served-first: perfect alternation, no head-of-line blocking.
        assert order == ["a", "b", "a", "b", "a", "b"]

    def test_fair_share_respects_weights(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.create_campaign("heavy", {"id": "h"}, weight=2.0)
        queue.create_campaign("light", {"id": "l"}, weight=1.0)
        queue.enqueue("heavy", [(["h", i], {}) for i in range(4)])
        queue.enqueue("light", [(["l", i], {}) for i in range(2)])
        order = [queue.claim("w0", batch=1, ttl_s=10)[0].campaign for _ in range(6)]
        # weight 2 drains twice as fast: h gets 2 of the first 3 claims.
        assert order.count("heavy") == 4
        assert order[:3].count("heavy") == 2

    def test_batch_claims_stay_within_one_campaign(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.create_campaign("a", {"id": "a"})
        queue.create_campaign("b", {"id": "b"})
        queue.enqueue("a", [(["a", i], {}) for i in range(2)])
        queue.enqueue("b", [(["b", i], {}) for i in range(2)])
        jobs = queue.claim("w0", batch=4, ttl_s=10)
        assert len({job.campaign for job in jobs}) == 1

    def test_concurrent_claims_never_double_lease(self, tmp_path):
        queue_path = tmp_path
        pairs = [(["cell", i], {}) for i in range(20)]
        seed_queue = make_queue(queue_path)
        enqueue_pairs(seed_queue, "c", pairs)
        claimed, lock = [], threading.Lock()

        def claimer(name):
            handle = make_queue(queue_path)
            while True:
                jobs = handle.claim(name, batch=2, ttl_s=30)
                if not jobs:
                    break
                with lock:
                    claimed.extend(job.id for job in jobs)
            handle.close()

        threads = [
            threading.Thread(target=claimer, args=(f"w{i}",)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(claimed) == 20
        assert len(set(claimed)) == 20  # no job leased twice


class TestQueueFaultKinds:
    def test_parser_roundtrip(self):
        for kind in ALL_QUEUE_KINDS:
            assert parse_queue_fault_kind(kind.value) is kind

    def test_parser_rejects_unknown(self):
        with pytest.raises(FaultInjectionError, match="worker-kill"):
            parse_queue_fault_kind("power-cut")

    def test_disjoint_from_simulator_fault_kinds(self):
        """Queue faults must not leak into the injector's sweep vocabulary
        (the handler-completeness contract enumerates FaultKind)."""
        simulator = {kind.value for kind in FaultKind}
        queue_level = {kind.value for kind in QueueFaultKind}
        assert not simulator & queue_level

    def test_clock_skew_writes_expired_leases(self, tmp_path):
        """A fast-forward clock stamps leases already in the past: the
        unskewed reclaimer may steal them instantly, yet completion stays
        exactly-once (the chaos invariant)."""
        skewed = make_queue(tmp_path, clock=lambda: time.time() - 3600.0)
        enqueue_pairs(skewed, "c", PAIRS[:1])
        [job] = skewed.claim("w0", batch=1, ttl_s=5.0)
        honest = make_queue(tmp_path)
        [event] = honest.reclaim()
        assert event.outcome == "requeued"
        [rerun] = honest.claim("w1", batch=1, ttl_s=5.0)
        assert skewed.ack("w0", job.id, {"v": 1}) == "done"
        assert honest.ack("w1", rerun.id, {"v": 1}) == "duplicate"
        assert honest.counts("c").done == 1


class TestCampaignPayloadRoundtrip:
    def test_config_roundtrips_through_json(self):
        config = tiny_config(paranoid=True, hang_cells=("*:*:ptr-pac-flip:0",))
        clone = CampaignConfig.from_payload(config.to_payload())
        assert clone == config

    def test_cell_jobs_match_sweep_grid(self):
        config = tiny_config()
        jobs = list(campaign_cell_jobs(config))
        assert len(jobs) == 2
        key, payload = jobs[0]
        assert key == ["cell", "gcc", "aos", "ptr-pac-flip", 0]
        assert payload["workload"] == "gcc"
        assert payload["seed"] == config.seed

    def test_cell_fingerprint_is_stable_and_config_sensitive(self):
        config = tiny_config()
        key = ["cell", "gcc", "aos", "ptr-pac-flip", 0]
        base = cell_fingerprint(config.to_payload(), key)
        assert base == cell_fingerprint(config.to_payload(), key)
        other = cell_fingerprint(tiny_config(seed=99).to_payload(), key)
        assert base != other


class TestQueueWorker:
    def test_single_worker_drains_campaign(self, tmp_path):
        config = tiny_config()
        worker = QueueWorker(
            WorkerConfig(queue_root=tmp_path / "q", worker_id="w0", batch=2)
        )
        enqueue_campaign(worker.queue, "c", config)
        assert worker.run() == 0
        assert worker.cells_done == 2
        assert worker.queue.is_complete("c")
        result = collect_campaign(worker.queue, "c")
        assert len(result.results) == 2
        assert not result.quarantined

    def test_distributed_results_match_serial_byte_for_byte(self, tmp_path):
        config = tiny_config()
        worker = QueueWorker(
            WorkerConfig(queue_root=tmp_path / "q", worker_id="w0", batch=1)
        )
        enqueue_campaign(worker.queue, "c", config)
        worker.run()
        result = collect_campaign(worker.queue, "c")
        assert verify_against_serial(config, result) is None

    def test_worker_uses_artifact_cache(self, tmp_path):
        from repro.experiments import ArtifactCache, MemoryBackend

        config = tiny_config()
        cache = ArtifactCache(backend=MemoryBackend())
        first = QueueWorker(
            WorkerConfig(queue_root=tmp_path / "q1", worker_id="w0"), cache=cache
        )
        enqueue_campaign(first.queue, "c", config)
        first.run()
        assert first.cache_hits == 0
        # Same config under a different campaign/queue: every cell hits.
        second = QueueWorker(
            WorkerConfig(queue_root=tmp_path / "q2", worker_id="w1"), cache=cache
        )
        enqueue_campaign(second.queue, "c2", config)
        second.run()
        assert second.cache_hits == 2
        assert verify_against_serial(
            config, collect_campaign(second.queue, "c2")
        ) is None

    def test_drain_releases_unstarted_cells(self, tmp_path):
        config = tiny_config()
        worker = QueueWorker(
            WorkerConfig(queue_root=tmp_path / "q", worker_id="w0", batch=2)
        )
        enqueue_campaign(worker.queue, "c", config)
        worker.request_drain()  # drain before the loop even starts
        assert worker.run() == 130
        counts = worker.queue.counts("c")
        assert (counts.pending, counts.leased) == (2, 0)
        # Uncharged: the drained cells retry with a clean slate.
        assert all(
            attempts == 0
            for _, attempts in worker.queue.job_states("c").values()
        )

    def test_bad_payload_fails_job_not_worker(self, tmp_path):
        worker = QueueWorker(
            WorkerConfig(
                queue_root=tmp_path / "q",
                worker_id="w0",
                retry=fast_retry(max_retries=0),
            )
        )
        worker.queue.create_campaign("c", tiny_config().to_payload())
        worker.queue.enqueue("c", [(["cell", "junk"], {"nope": True})])
        assert worker.run() == 0  # loop survives the poisonous payload
        reason = worker.queue.quarantined("c")[canonical_key(["cell", "junk"])]
        assert "worker-side error" in reason


class TestCollect:
    def test_collect_orders_results_in_sweep_order(self, tmp_path):
        config = tiny_config()
        queue = make_queue(tmp_path)
        enqueue_campaign(queue, "c", config)
        # Complete cells in *reverse* claim order.
        jobs = queue.claim("w0", batch=2, ttl_s=10)
        for job in reversed(jobs):
            from repro.faults.campaign import run_campaign_cell
            from repro.faults.injector import FaultSpec

            payload = job.payload
            result = run_campaign_cell(
                config,
                payload["workload"],
                payload["mechanism"],
                FaultSpec(
                    kind=FaultKind(payload["kind"]),
                    location=payload["location"],
                    seed=payload["seed"],
                ),
            )
            queue.ack("w0", job.id, result.to_payload())
        collected = collect_campaign(queue, "c")
        kinds = [result.kind for result in collected.results]
        assert kinds == ["ptr-pac-flip", "use-after-free"]  # sweep order

    def test_verify_reports_quarantine_as_mismatch(self, tmp_path):
        config = tiny_config()
        queue = make_queue(tmp_path, retry=fast_retry(max_retries=0))
        enqueue_campaign(queue, "c", config)
        [job] = queue.claim("w0", batch=1, ttl_s=10)
        queue.fail("w0", job.id, "poisoned")
        result = collect_campaign(queue, "c")
        assert verify_against_serial(config, result) is not None

"""Observability layer tests: registry, tracer, Chrome export, profiler."""

import json

import pytest

from repro.obs import (
    DEFAULT_TRACE_CAPACITY,
    EventTracer,
    MetricsRegistry,
    ObsSettings,
    Observability,
    PhaseProfiler,
    TraceEvent,
    chrome_events,
    chrome_trace,
    dump_chrome_trace,
    empty_snapshot,
    merge_snapshots,
    read_jsonl,
    span_pairs,
    validate_chrome_trace,
    validate_chrome_trace_file,
)


class TestRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.count("mcu.checks")
        reg.count("mcu.checks", 4)
        assert reg.counter("mcu.checks").value == 5

    def test_counter_memoised(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_gauge_set_and_set_max(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("hbt.ways")
        gauge.set(2)
        gauge.set_max(1)  # lower: high-water mark keeps 2
        assert gauge.value == 2
        gauge.set_max(4)
        assert gauge.value == 4

    def test_histogram_bucket_placement(self):
        reg = MetricsRegistry()
        hist = reg.histogram("walk", (1, 2, 4))
        for value in (0, 1, 2, 3, 4, 5, 100):
            hist.observe(value)
        # <=1: {0,1}, <=2: {2}, <=4: {3,4}, overflow: {5,100}
        assert hist.counts == [2, 1, 2, 2]
        assert hist.count == 7
        assert hist.total == sum((0, 1, 2, 3, 4, 5, 100))
        assert hist.mean == pytest.approx(hist.total / 7)

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("bad", (4, 1))

    def test_histogram_reregistration_same_bounds_ok(self):
        reg = MetricsRegistry()
        assert reg.histogram("h", (1, 2)) is reg.histogram("h", (1, 2))

    def test_histogram_reregistration_different_bounds_raises(self):
        reg = MetricsRegistry()
        reg.histogram("h", (1, 2))
        with pytest.raises(ValueError):
            reg.histogram("h", (1, 2, 4))

    def test_snapshot_sorted_and_json_able(self):
        reg = MetricsRegistry()
        reg.count("z.late")
        reg.count("a.early")
        reg.set_gauge("m.level", 1.5)
        reg.histogram("h", (1,)).observe(0)
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a.early", "z.late"]
        # Round-trips through JSON without custom encoders.
        assert json.loads(json.dumps(snap)) == snap

    def test_empty_snapshot_shape(self):
        assert empty_snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}


class TestMergeSnapshots:
    def test_counters_sum_gauges_max(self):
        a = {"counters": {"c": 2}, "gauges": {"g": 3.0}, "histograms": {}}
        b = {"counters": {"c": 5, "d": 1}, "gauges": {"g": 1.0}, "histograms": {}}
        merged = merge_snapshots([a, b])
        assert merged["counters"] == {"c": 7, "d": 1}
        assert merged["gauges"] == {"g": 3.0}

    def test_histograms_merge_bucketwise(self):
        h1 = {"bounds": [1, 2], "counts": [1, 0, 2], "total": 7.0, "count": 3}
        h2 = {"bounds": [1, 2], "counts": [0, 4, 1], "total": 9.0, "count": 5}
        merged = merge_snapshots(
            [
                {"counters": {}, "gauges": {}, "histograms": {"h": h1}},
                {"counters": {}, "gauges": {}, "histograms": {"h": h2}},
            ]
        )
        assert merged["histograms"]["h"] == {
            "bounds": [1, 2],
            "counts": [1, 4, 3],
            "total": 16.0,
            "count": 8,
        }

    def test_none_and_empty_cells_skipped(self):
        a = {"counters": {"c": 1}, "gauges": {}, "histograms": {}}
        merged = merge_snapshots([None, {}, a])
        assert merged["counters"] == {"c": 1}

    def test_bounds_mismatch_raises(self):
        h1 = {"bounds": [1], "counts": [0, 0], "total": 0.0, "count": 0}
        h2 = {"bounds": [2], "counts": [0, 0], "total": 0.0, "count": 0}
        with pytest.raises(ValueError):
            merge_snapshots(
                [
                    {"counters": {}, "gauges": {}, "histograms": {"h": h1}},
                    {"counters": {}, "gauges": {}, "histograms": {"h": h2}},
                ]
            )

    def test_merge_is_deterministically_ordered(self):
        a = {"counters": {"z": 1}, "gauges": {}, "histograms": {}}
        b = {"counters": {"a": 1}, "gauges": {}, "histograms": {}}
        assert list(merge_snapshots([a, b])["counters"]) == ["a", "z"]


class TestTracer:
    def test_emit_stamps_current_cycle(self):
        tracer = EventTracer()
        tracer.cycle = 42.0
        tracer.emit("mcq.enqueue", occupancy=3)
        (event,) = tracer.events()
        assert event.cycle == 42.0
        assert event.name == "mcq.enqueue"
        assert dict(event.args) == {"occupancy": 3}

    def test_args_stored_sorted(self):
        tracer = EventTracer()
        tracer.emit("e", zeta=1, alpha=2)
        (event,) = tracer.events()
        assert [k for k, _ in event.args] == ["alpha", "zeta"]

    def test_rejects_unknown_phase(self):
        with pytest.raises(ValueError):
            EventTracer().emit("e", phase="Q")

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            EventTracer(capacity=0)

    def test_ring_keeps_latest_and_counts_drops(self):
        tracer = EventTracer(capacity=3)
        for i in range(5):
            tracer.cycle = float(i)
            tracer.emit("e", i=i)
        assert len(tracer) == 3
        assert [e.cycle for e in tracer.events()] == [2.0, 3.0, 4.0]
        assert tracer.stats.emitted == 5
        assert tracer.stats.dropped == 2
        assert tracer.stats.retained == 3

    def test_begin_end_sample_phases(self):
        tracer = EventTracer()
        tracer.begin("hbt.resize", old_ways=1)
        tracer.end("hbt.resize", ways=2)
        tracer.sample("mcq.occupancy", entries=4)
        phases = [e.phase for e in tracer.events()]
        assert phases == ["B", "E", "C"]

    def test_jsonl_round_trip(self, tmp_path):
        tracer = EventTracer()
        tracer.cycle = 7.0
        tracer.emit("bwb.miss", tag=0x12)
        tracer.begin("hbt.resize", old_ways=1, new_ways=2)
        path = tmp_path / "events.jsonl"
        assert tracer.to_jsonl(path) == 2
        assert read_jsonl(path) == tracer.events()

    def test_span_pairs_matches_nested_by_name(self):
        tracer = EventTracer()
        tracer.begin("outer")
        tracer.begin("inner")
        tracer.end("inner")
        tracer.end("outer")
        pairs = span_pairs(tracer.events())
        assert [(b.name, e.name) for b, e in pairs] == [
            ("inner", "inner"),
            ("outer", "outer"),
        ]

    def test_clear_resets_ring_not_stats(self):
        tracer = EventTracer()
        tracer.emit("e")
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.stats.emitted == 1


class TestChromeExport:
    def test_instant_events_carry_scope(self):
        events = [TraceEvent(cycle=1.0, name="bwb.miss")]
        (record,) = chrome_events(events)
        assert record["ph"] == "i"
        assert record["s"] == "t"
        assert record["ts"] == 1.0

    def test_unclosed_span_auto_closed(self):
        events = [TraceEvent(cycle=5.0, name="hbt.resize", phase="B")]
        records = chrome_events(events)
        assert [r["ph"] for r in records] == ["B", "E"]
        assert records[1]["ts"] == 5.0  # closed at the last seen cycle

    def test_trace_document_is_schema_valid(self):
        tracer = EventTracer()
        tracer.emit("aos.exception", kind="bounds-check")
        tracer.begin("hbt.resize")
        tracer.sample("mcq.occupancy", entries=2)
        document = chrome_trace(tracer.events(), metadata={"workload": "gcc"})
        assert validate_chrome_trace(document) == []
        assert document["otherData"] == {"workload": "gcc"}

    def test_validator_flags_bad_documents(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"traceEvents": "nope"}) != []
        bad_ts = {"traceEvents": [
            {"name": "e", "ph": "i", "ts": -1, "pid": 1, "tid": 1}
        ]}
        assert any("bad ts" in p for p in validate_chrome_trace(bad_ts))

    def test_validator_flags_unbalanced_spans(self):
        lone_end = {"traceEvents": [
            {"name": "s", "ph": "E", "ts": 0, "pid": 1, "tid": 1}
        ]}
        assert any("without matching B" in p for p in validate_chrome_trace(lone_end))
        lone_begin = {"traceEvents": [
            {"name": "s", "ph": "B", "ts": 0, "pid": 1, "tid": 1}
        ]}
        assert any("unclosed span" in p for p in validate_chrome_trace(lone_begin))

    def test_validator_requires_numeric_counter_args(self):
        doc = {"traceEvents": [
            {"name": "c", "ph": "C", "ts": 0, "pid": 1, "tid": 1,
             "args": {"entries": "three"}}
        ]}
        assert any("numeric" in p for p in validate_chrome_trace(doc))
        missing = {"traceEvents": [
            {"name": "c", "ph": "C", "ts": 0, "pid": 1, "tid": 1}
        ]}
        assert any("without args" in p for p in validate_chrome_trace(missing))

    def test_dump_and_validate_file(self, tmp_path):
        tracer = EventTracer()
        tracer.emit("run.done", instructions=100)
        path = tmp_path / "trace.json"
        dump_chrome_trace(path, tracer.events(), metadata={"seed": 7})
        assert validate_chrome_trace_file(path) == []

    def test_validate_file_reports_unreadable(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        problems = validate_chrome_trace_file(path)
        assert problems and "unreadable" in problems[0]


class TestProfiler:
    def test_phases_accumulate_with_fake_clock(self):
        ticks = iter(range(100))
        profiler = PhaseProfiler(clock=lambda: float(next(ticks)))
        with profiler.phase("simulate"):
            pass
        with profiler.phase("simulate"):
            pass
        with profiler.phase("report"):
            pass
        summary = profiler.summary()
        assert summary["simulate"] == 2.0  # two 1-tick spans
        assert summary["report"] == 1.0
        assert profiler.total() == 3.0

    def test_add_external_duration(self):
        profiler = PhaseProfiler(clock=lambda: 0.0)
        profiler.add("cache-io", 1.25)
        assert profiler.summary() == {"cache-io": 1.25}

    def test_format_lists_phases_and_total(self):
        profiler = PhaseProfiler(clock=lambda: 0.0)
        profiler.add("trace-gen", 1.0)
        text = profiler.format()
        assert "trace-gen" in text
        assert "total" in text

    def test_chrome_export_uses_engine_pid(self):
        ticks = iter([0.0, 1.0, 2.0])
        profiler = PhaseProfiler(clock=lambda: next(ticks))
        with profiler.phase("simulate"):
            pass
        (event,) = profiler.chrome_events()
        assert event["ph"] == "X"
        assert event["pid"] == 2  # never merged with the simulation track
        assert event["dur"] == pytest.approx(1e6)


class TestObsSettings:
    def test_disabled_creates_nothing(self):
        assert ObsSettings().create() is None
        assert ObsSettings().enabled is False  # off by default everywhere

    def test_enabled_metrics_only(self):
        obs = ObsSettings(enabled=True, tracing=False).create()
        assert obs is not None
        assert obs.tracer is None
        obs.emit("e")  # no-op without a tracer, must not raise
        obs.set_cycle(9.0)
        assert obs.snapshot() == empty_snapshot()

    def test_enabled_with_tracer(self):
        obs = ObsSettings(enabled=True, trace_capacity=8).create()
        assert obs.tracer is not None
        assert obs.tracer.capacity == 8
        obs.set_cycle(3.0)
        obs.emit("e")
        assert obs.tracer.events()[0].cycle == 3.0

    def test_default_capacity(self):
        assert ObsSettings(enabled=True).create().tracer.capacity == (
            DEFAULT_TRACE_CAPACITY
        )

    def test_settings_hashable_for_fingerprints(self):
        # RunSettings fingerprints hash the frozen dataclass tree.
        assert hash(ObsSettings()) == hash(ObsSettings())
        assert ObsSettings() != ObsSettings(enabled=True)

    def test_observability_default_registry(self):
        obs = Observability()
        obs.registry.count("x")
        assert obs.snapshot()["counters"] == {"x": 1}

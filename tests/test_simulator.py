"""Simulator facade tests: result fields and cross-config behaviour."""

import pytest

from repro.compiler import lower_trace
from repro.cpu.core import SimulationResult, Simulator
from repro.experiments.common import scaled_config
from repro.workloads import generate_trace, get_profile


@pytest.fixture(scope="module")
def lowered_pair():
    trace = generate_trace(get_profile("povray"), instructions=8_000, seed=17)
    config = scaled_config("aos", 8)
    return trace, lower_trace(trace, "aos", config=config), config


class TestSimulationResult:
    def test_fields_populated(self, lowered_pair):
        _, lowered, config = lowered_pair
        result = Simulator(config).run(lowered)
        assert isinstance(result, SimulationResult)
        assert result.name == "povray"
        assert result.mechanism == "aos"
        assert result.cycles > 0
        assert result.ipc > 0
        assert result.network_traffic_bytes == (
            result.l1_l2_bytes + result.l2_dram_bytes
        )
        assert "l1b_hit_rate" in result.cache_summary

    def test_no_l1b_without_aos(self):
        trace = generate_trace(get_profile("gobmk"), instructions=5_000, seed=17)
        config = scaled_config("baseline", 8)
        result = Simulator(config).run(lower_trace(trace, "baseline", config=config))
        assert "l1b_hit_rate" not in result.cache_summary
        assert result.bounds_accesses_per_check == 0.0

    def test_l1b_disabled_by_option(self, lowered_pair):
        trace, _, _ = lowered_pair
        config = scaled_config("aos", 8).with_aos_options(l1b_cache=False)
        lowered = lower_trace(trace, "aos", config=config)
        result = Simulator(config).run(lowered)
        assert "l1b_hit_rate" not in result.cache_summary

    def test_more_instructions_more_cycles(self):
        profile = get_profile("gobmk")
        config = scaled_config("baseline", 8)
        short = generate_trace(profile, instructions=4_000, seed=3)
        long = generate_trace(profile, instructions=16_000, seed=3)
        r_short = Simulator(config).run(lower_trace(short, "baseline", config=config))
        r_long = Simulator(config).run(lower_trace(long, "baseline", config=config))
        assert r_long.cycles > r_short.cycles * 2

    def test_mcq_sizing_affects_aos_only(self, lowered_pair):
        import dataclasses

        trace, _, base_config = lowered_pair
        tiny_mcq = dataclasses.replace(
            base_config, core=dataclasses.replace(base_config.core, mcq_entries=4)
        )
        lowered = lower_trace(trace, "aos", config=base_config)
        normal = Simulator(base_config).run(lowered)
        squeezed = Simulator(tiny_mcq).run(lowered)
        assert squeezed.cycles >= normal.cycles

"""Report helper tests."""

import math

import pytest

from repro.stats.report import TableFormatter, geomean, normalize


class TestGeomean:
    def test_uniform(self):
        assert geomean([2.0, 2.0, 2.0]) == pytest.approx(2.0)

    def test_known_value(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_matches_log_definition(self):
        vals = [1.1, 0.9, 2.3, 1.7]
        expected = math.exp(sum(math.log(v) for v in vals) / 4)
        assert geomean(vals) == pytest.approx(expected)


class TestNormalize:
    def test_divides_by_baseline(self):
        out = normalize({"baseline": 2.0, "aos": 3.0}, "baseline")
        assert out == {"baseline": 1.0, "aos": 1.5}

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            normalize({"baseline": 0.0}, "baseline")


class TestTableFormatter:
    def test_renders_columns_and_rows(self):
        table = TableFormatter(["a", "b"])
        table.add_row("row1", {"a": 1.5, "b": 2.0})
        text = table.render()
        assert "row1" in text
        assert "1.500" in text
        assert "2.000" in text

    def test_missing_cell_dash(self):
        table = TableFormatter(["a", "b"])
        table.add_row("row1", {"a": 1.0})
        assert "-" in table.render()

    def test_non_float_values(self):
        table = TableFormatter(["n"])
        table.add_row("row", {"n": 42})
        assert "42" in table.render()

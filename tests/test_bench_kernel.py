"""Golden schema pin for ``BENCH_kernel.json`` and the ``--check`` gate.

The committed benchmark report is CI's perf-trajectory artifact: the
kernel-smoke job uploads it and compares fresh runs against it.  Its
schema (``repro/bench-kernel/v2``) is therefore a contract — these tests
pin the committed file's shape and prove ``tools/bench_kernel.py --check``
exits 2 on any drift or floor violation *without* re-running the bench.
"""

from __future__ import annotations

import importlib.util
import json
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[1]
REPORT = REPO / "BENCH_kernel.json"
TOOL = REPO / "tools" / "bench_kernel.py"


def load_tool():
    spec = importlib.util.spec_from_file_location("bench_kernel", TOOL)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def tool():
    return load_tool()


@pytest.fixture()
def report():
    return json.loads(REPORT.read_text())


# ------------------------------------------------------------- golden schema


def test_committed_report_schema(report, tool):
    assert report["schema"] == tool.SCHEMA == "repro/bench-kernel/v2"
    for key in ("host", "settings", "cells", "batched", "aggregate"):
        assert key in report
    assert report["settings"]["kernels"] == [
        "reference", "fast", "specialized", "batched"
    ]
    grid = {(c["workload"], c["mechanism"]) for c in report["cells"]}
    assert grid == {
        (w, m)
        for w in tool.DEFAULT_WORKLOADS
        for m in tool.DEFAULT_MECHANISMS
    }
    for cell in report["cells"]:
        for key in tool._CELL_KEYS:
            assert key in cell, f"cell missing {key}"
        assert cell["reference_s"] > 0
        assert cell["fast_speedup"] > 0
        assert cell["specialized_speedup"] > 0


def test_committed_report_passes_check(report, tool):
    assert tool.check_report(REPORT, min_speedup=2.0) == 0


def test_committed_aggregates_meet_floors(report):
    """The committed trajectory: the fast leg holds the 2x floor and the
    specialized/batched legs hold the 5x milestone it is growing toward."""
    aggregate = report["aggregate"]
    assert aggregate["fast_speedup"] >= 2.0
    assert aggregate["specialized_speedup"] >= 5.0
    assert aggregate["batched_speedup"] >= 5.0
    # v1 compatibility alias (old --against baselines resolve against it).
    assert report["aggregate_speedup"] == aggregate["fast_speedup"]


# ------------------------------------------------------------- check drifts


def _mutated(tmp_path, report, mutate) -> Path:
    mutate(report)
    path = tmp_path / "report.json"
    path.write_text(json.dumps(report))
    return path


def test_check_rejects_schema_drift(tmp_path, report, tool):
    path = _mutated(tmp_path, report,
                    lambda r: r.update(schema="repro/bench-kernel/v1"))
    assert tool.check_report(path, 2.0) == 2


def test_check_rejects_missing_top_level_key(tmp_path, report, tool):
    path = _mutated(tmp_path, report, lambda r: r.pop("batched"))
    assert tool.check_report(path, 2.0) == 2


def test_check_rejects_malformed_cells(tmp_path, report, tool):
    path = _mutated(tmp_path, report,
                    lambda r: r["cells"][0].pop("specialized_speedup"))
    assert tool.check_report(path, 2.0) == 2
    path = _mutated(tmp_path, report, lambda r: r.update(cells=[]))
    assert tool.check_report(path, 2.0) == 2


def test_check_rejects_floor_violation(tmp_path, report, tool):
    path = _mutated(
        tmp_path, report,
        lambda r: r["aggregate"].update(specialized_speedup=1.2),
    )
    assert tool.check_report(path, 2.0) == 2


def test_check_rejects_unreadable_report(tmp_path, tool):
    missing = tmp_path / "nope.json"
    assert tool.check_report(missing, 2.0) == 2
    garbage = tmp_path / "garbage.json"
    garbage.write_text("{not json")
    assert tool.check_report(garbage, 2.0) == 2


# -------------------------------------------------------------- CLI contract


def test_cli_check_exit_codes(tmp_path, report):
    """The CI surface: ``--check`` exits 0 on the committed report and 2 on
    a drifted copy, without running any simulation."""
    ok = subprocess.run(
        [sys.executable, str(TOOL), "--check", str(REPORT)],
        capture_output=True, text=True, cwd=REPO,
    )
    assert ok.returncode == 0, ok.stdout + ok.stderr
    assert "check ok" in ok.stdout
    report["schema"] = "repro/bench-kernel/v0"
    drifted = tmp_path / "drifted.json"
    drifted.write_text(json.dumps(report))
    bad = subprocess.run(
        [sys.executable, str(TOOL), "--check", str(drifted)],
        capture_output=True, text=True, cwd=REPO,
    )
    assert bad.returncode == 2
    assert "CHECK FAIL" in bad.stdout

"""Instruction-level interpreter tests: the Fig. 7 / Fig. 12 sequences
executed from real encoded instruction words."""

import pytest

from repro.core.exceptions import (
    AuthenticationFault,
    BoundsCheckFault,
    BoundsClearFault,
)
from repro.errors import EncodingError
from repro.isa.interp import Assembler, Interpreter, make_interpreter


@pytest.fixture
def machine() -> Interpreter:
    return make_interpreter()


class TestBaseOps:
    def test_movz_add(self, machine):
        program = Assembler().movz(0, 40).add(1, 0, 2).halt()
        assert machine.run(program) is None
        assert machine._read(1) == 42

    def test_unsigned_load_store(self, machine):
        program = (
            Assembler()
            .movz(0, 0x20001000)   # raw heap address (unsigned: unchecked)
            .movz(1, 0xDEAD)
            .str_(1, 0)
            .ldr(2, 0)
            .halt()
        )
        machine.run(program)
        assert machine._read(2) == 0xDEAD

    def test_undecodable_word_traps(self, machine):
        program = Assembler()
        program.words.append(0xFFFFFFFF)
        trap = machine.run(program)
        assert trap is not None
        assert isinstance(trap.exception, EncodingError)

    def test_step_budget(self, machine):
        from repro.errors import SimulationError

        program = Assembler().movz(1, 0x1000)
        for _ in range(64):
            program.ldr(0, 1)  # unsigned loads: no immediates consumed
        assert machine.run(program, max_steps=1000) is None
        with pytest.raises(SimulationError):
            machine.run(program, max_steps=10)


class TestFig7Sequences:
    def aos_malloc(self, program: Assembler, size_reg=1, ptr_reg=0) -> Assembler:
        """malloc; pacma ptr, sp, size; bndstr ptr, size (Fig. 7a)."""
        return (
            program
            .malloc(ptr_reg, size_reg)
            .aos("pacma", xd=ptr_reg, xn=31, xm=size_reg)
            .aos("bndstr", xn=ptr_reg, xm=size_reg)
        )

    def aos_free(self, program: Assembler, ptr_reg=0) -> Assembler:
        """bndclr; xpacm; free; pacma ptr, sp, xzr (Fig. 7b)."""
        return (
            program
            .aos("bndclr", xn=ptr_reg)
            .aos("xpacm", xd=ptr_reg)
            .free(ptr_reg)
            .aos("pacma", xd=ptr_reg, xn=31, xm=31)  # xm=31 reads XZR
        )

    def test_protected_roundtrip(self, machine):
        program = Assembler().movz(1, 64)
        self.aos_malloc(program)
        program.movz(2, 0xBEEF).str_(2, 0).ldr(3, 0).halt()
        assert machine.run(program) is None
        assert machine._read(3) == 0xBEEF
        assert machine.signer.is_signed(machine._read(0))

    def test_oob_load_traps(self, machine):
        """Fig. 12 line 6: T varA = ptr[N+1]."""
        program = Assembler().movz(1, 64)
        self.aos_malloc(program)
        program.add(0, 0, 64)  # ptr += 64: PAC/AHC ride along
        program.ldr(2, 0).halt()
        trap = machine.run(program)
        assert isinstance(trap.exception, BoundsCheckFault)

    def test_oob_store_traps_precisely(self, machine):
        """Fig. 12 line 7 — and the store must not have written."""
        program = Assembler().movz(1, 64)
        self.aos_malloc(program)
        program.movz(2, 0x41).add(3, 0, 72).str_(2, 3).halt()
        trap = machine.run(program)
        assert isinstance(trap.exception, BoundsCheckFault)
        # Precise exception: the word past the allocation is untouched.
        raw = machine.signer.xpacm(machine._read(3))
        assert machine.memory.read_u64(raw) == 0

    def test_use_after_free_traps(self, machine):
        """Fig. 12 line 14."""
        program = Assembler().movz(1, 64)
        self.aos_malloc(program)
        self.aos_free(program)
        program.ldr(2, 0).halt()
        trap = machine.run(program)
        assert isinstance(trap.exception, BoundsCheckFault)

    def test_double_free_traps_at_bndclr(self, machine):
        """Fig. 12 lines 16-19: the second bndclr finds nothing."""
        program = Assembler().movz(1, 64)
        self.aos_malloc(program)
        self.aos_free(program)
        program.aos("bndclr", xn=0).halt()
        trap = machine.run(program)
        assert isinstance(trap.exception, BoundsClearFault)

    def test_autm_accepts_signed_rejects_stripped(self, machine):
        program = Assembler().movz(1, 64)
        self.aos_malloc(program)
        program.aos("autm", xd=0)      # fine: signed
        program.aos("xpacm", xd=0)
        program.aos("autm", xd=0)      # stripped: AHC == 0
        program.halt()
        trap = machine.run(program)
        assert isinstance(trap.exception, AuthenticationFault)
        assert trap.pc == 6  # the second autm (movz, malloc, pacma, bndstr, autm, xpacm, autm)

    def test_interior_pointer_arithmetic_checked(self, machine):
        program = Assembler().movz(1, 128)
        self.aos_malloc(program)
        program.add(4, 0, 64)          # interior pointer
        program.movz(2, 7).str_(2, 4).ldr(3, 4).halt()
        assert machine.run(program) is None
        assert machine._read(3) == 7

    def test_retired_instruction_count(self, machine):
        program = Assembler().movz(0, 1).movz(1, 2).halt()
        machine.run(program)
        assert machine.instructions_retired == 2  # halt does not retire

"""Shadow memory tests (Watchdog metadata substrate, Fig. 4b)."""

import pytest

from repro.errors import MemoryError_
from repro.memory.layout import DEFAULT_LAYOUT
from repro.memory.memory import SparseMemory
from repro.memory.shadow import WATCHDOG_RECORD_BYTES, ShadowMemory, ShadowRecord


def make_shadow():
    return ShadowMemory(SparseMemory(), DEFAULT_LAYOUT)


class TestMapping:
    def test_fixed_mapping(self):
        shadow = make_shadow()
        a = shadow.shadow_address(DEFAULT_LAYOUT.heap_base)
        b = shadow.shadow_address(DEFAULT_LAYOUT.heap_base + 16)
        assert a == DEFAULT_LAYOUT.shadow_base
        assert b == a + WATCHDOG_RECORD_BYTES

    def test_same_granule_same_slot(self):
        shadow = make_shadow()
        a = shadow.shadow_address(DEFAULT_LAYOUT.heap_base + 3)
        b = shadow.shadow_address(DEFAULT_LAYOUT.heap_base + 15)
        assert a == b

    def test_rejects_non_heap(self):
        with pytest.raises(MemoryError_):
            make_shadow().shadow_address(0x1000)


class TestRecords:
    def test_store_load_roundtrip(self):
        shadow = make_shadow()
        record = ShadowRecord(key=7, lock_address=0x100, lower=0x20001000, upper=0x20001040)
        addr = DEFAULT_LAYOUT.heap_base + 64
        shadow.store(addr, record)
        loaded, _ = shadow.load(addr)
        assert loaded == record

    def test_clear(self):
        shadow = make_shadow()
        addr = DEFAULT_LAYOUT.heap_base + 64
        shadow.store(addr, ShadowRecord(1, 2, 3, 4))
        shadow.clear(addr)
        loaded, _ = shadow.load(addr)
        assert loaded is None

    def test_memory_overhead_ratio(self):
        """Challenge 4: Watchdog's 24B-per-granule shadow cost."""
        assert make_shadow().shadow_bytes_per_app_byte() == 1.5

"""Adversarial scenario corpus and chaos campaign tests."""

import json

import pytest

from repro.adversary import (
    SCENARIOS,
    ChaosCampaign,
    ChaosConfig,
    Expectation,
    ScenarioMatrix,
    ScenarioOutcome,
    ScenarioRun,
    Step,
    UnsupportedScenario,
    build_scenario,
    classify_verdict,
    compile_scenario,
    execute_scenario,
    parse_scenarios,
    run_quick_chaos,
    run_scenario_cell,
    scenario_trace,
)
from repro.errors import WorkloadError
from repro.faults import Deadline
from repro.security.adapters import MECHANISM_ADAPTERS
from repro.supervise import SupervisorConfig


# ---------------------------------------------------------------- the corpus


class TestCorpus:
    def test_registry_covers_issue_scenarios(self):
        required = {
            "heap-overflow-adjacent",
            "linear-oob-write",
            "nonlinear-oob-read",
            "intra-object-overflow",
            "uaf-stale-load",
            "uaf-after-realloc",
            "double-free",
            "pac-forgery",
            "pac-replay",
            "ahc-zero-escape",
        }
        assert required <= set(SCENARIOS)

    def test_builders_are_deterministic(self):
        for name in SCENARIOS:
            assert build_scenario(name, seed=13) == build_scenario(name, seed=13)

    def test_seed_changes_payloads_not_shape(self):
        a = build_scenario("heap-overflow-adjacent", seed=1)
        b = build_scenario("heap-overflow-adjacent", seed=2)
        assert [s.op for s in a.steps] == [s.op for s in b.steps]
        assert a != b  # sizes/values drawn from the seed

    def test_unknown_scenario_rejected(self):
        with pytest.raises(WorkloadError):
            build_scenario("stack-smash")

    def test_step_rejects_unknown_op(self):
        with pytest.raises(WorkloadError):
            Step("realloc", obj="x")

    def test_parse_scenarios(self):
        assert parse_scenarios(None) == list(SCENARIOS)
        assert parse_scenarios(["double-free"]) == ["double-free"]
        with pytest.raises(WorkloadError):
            parse_scenarios(["double-free", "bogus"])

    def test_oracle_defined_for_every_mechanism(self):
        for name in SCENARIOS:
            instance = build_scenario(name)
            for mechanism in MECHANISM_ADAPTERS:
                assert isinstance(instance.expected(mechanism), Expectation)

    def test_ahc_zero_oracle_is_the_paper_contract(self):
        """§VII-C: plain AOS's documented escape, closed by PA+AOS."""
        instance = build_scenario("ahc-zero-escape")
        assert instance.expected("aos") is Expectation.KNOWN_ESCAPE
        assert instance.expected("pa+aos") is Expectation.MUST_DETECT
        assert instance.expected("baseline") is Expectation.UNSUPPORTED
        assert "VII-C" in instance.paper_ref

    def test_intra_object_escapes_every_mechanism(self):
        instance = build_scenario("intra-object-overflow")
        for mechanism in MECHANISM_ADAPTERS:
            assert instance.expected(mechanism) is Expectation.KNOWN_ESCAPE


# ------------------------------------------------------------- interpreter


class TestInterpreter:
    def run(self, name, mechanism):
        return execute_scenario(build_scenario(name), mechanism)

    def test_heap_overflow_detected_by_aos(self):
        outcome, detail = self.run("heap-overflow-adjacent", "aos")
        assert outcome is ScenarioOutcome.DETECTED
        assert "store" in detail

    def test_heap_overflow_silent_on_baseline(self):
        outcome, _ = self.run("heap-overflow-adjacent", "baseline")
        assert outcome is ScenarioOutcome.UNDETECTED

    def test_nonlinear_oob_escapes_rest_redzone(self):
        """The motivating blind spot: a strided OOB jumps the redzone."""
        outcome, _ = self.run("nonlinear-oob-read", "rest")
        assert outcome is ScenarioOutcome.UNDETECTED
        outcome, _ = self.run("nonlinear-oob-read", "aos")
        assert outcome is ScenarioOutcome.DETECTED

    def test_ahc_zero_splits_aos_and_pa_aos(self):
        outcome, _ = self.run("ahc-zero-escape", "aos")
        assert outcome is ScenarioOutcome.UNDETECTED
        outcome, detail = self.run("ahc-zero-escape", "pa+aos")
        assert outcome is ScenarioOutcome.DETECTED

    def test_forgery_unsupported_without_signing(self):
        outcome, detail = self.run("pac-forgery", "baseline")
        assert outcome is ScenarioOutcome.UNSUPPORTED
        assert "baseline" in detail

    def test_uaf_detected_by_temporal_mechanisms(self):
        for mechanism in ("aos", "pa+aos", "watchdog"):
            outcome, _ = self.run("uaf-stale-load", mechanism)
            assert outcome is ScenarioOutcome.DETECTED, mechanism

    def test_crash_is_contained(self, monkeypatch):
        """A simulator bug inside a step is a CRASHED outcome, never an
        exception out of the interpreter."""
        import repro.adversary.chaos as chaos

        class Broken:
            name = "broken"

            def malloc(self, size):
                raise RuntimeError("allocator imploded")

        monkeypatch.setattr(chaos, "make_adapter", lambda name: Broken())
        outcome, detail = execute_scenario(
            build_scenario("double-free"), "aos"
        )
        assert outcome is ScenarioOutcome.CRASHED
        assert "allocator imploded" in detail

    def test_expired_deadline_times_out_cell(self):
        run = run_scenario_cell(("double-free", "aos", 7, 0.0))
        assert run.observed == "timed-out"
        assert run.verdict == "robustness-bug"

    def test_deadline_propagates_from_execute(self):
        from repro.errors import ExperimentTimeout

        with pytest.raises(ExperimentTimeout):
            execute_scenario(build_scenario("double-free"), "aos", Deadline(0.0))


# ---------------------------------------------------------------- verdicts


class TestVerdicts:
    @pytest.mark.parametrize(
        "expected,observed,verdict",
        [
            (Expectation.MUST_DETECT, ScenarioOutcome.DETECTED, "as-expected"),
            (Expectation.MUST_DETECT, ScenarioOutcome.UNDETECTED, "missed-detection"),
            (Expectation.MAY_DETECT, ScenarioOutcome.DETECTED, "as-expected"),
            (Expectation.MAY_DETECT, ScenarioOutcome.UNDETECTED, "as-expected"),
            (Expectation.KNOWN_ESCAPE, ScenarioOutcome.UNDETECTED, "escape-confirmed"),
            (Expectation.KNOWN_ESCAPE, ScenarioOutcome.DETECTED, "surprise-detection"),
            (Expectation.UNSUPPORTED, ScenarioOutcome.UNSUPPORTED, "unmodeled"),
            (Expectation.UNSUPPORTED, ScenarioOutcome.DETECTED, "surprise-detection"),
            (Expectation.UNSUPPORTED, ScenarioOutcome.UNDETECTED, "escape-confirmed"),
            (Expectation.MUST_DETECT, ScenarioOutcome.CRASHED, "robustness-bug"),
            (Expectation.KNOWN_ESCAPE, ScenarioOutcome.TIMED_OUT, "robustness-bug"),
            (Expectation.MAY_DETECT, ScenarioOutcome.UNSUPPORTED, "unmodeled"),
        ],
    )
    def test_classification_table(self, expected, observed, verdict):
        assert classify_verdict(expected, observed) == verdict

    def test_only_missed_detection_fails(self):
        run = run_scenario_cell(("heap-overflow-adjacent", "aos", 7, None))
        assert not run.failed
        run.verdict = "missed-detection"
        assert run.failed

    def test_run_payload_roundtrip(self):
        run = run_scenario_cell(("uaf-after-realloc", "pa+aos", 7, None))
        clone = ScenarioRun.from_payload(run.to_payload())
        assert clone == run
        stable = run.stable_payload()
        assert "elapsed" not in stable
        assert ScenarioRun.from_payload(stable).scenario == run.scenario


# ---------------------------------------------------------------- campaign


class TestChaosConfig:
    def test_rejects_unknown_mechanism(self):
        with pytest.raises(WorkloadError):
            ChaosConfig(mechanisms=("aos", "sgx"))

    def test_rejects_unknown_scenario(self):
        with pytest.raises(WorkloadError):
            ChaosConfig(scenarios=("bogus",))

    def test_quick_sweeps_contrasting_mechanisms(self):
        config = ChaosConfig.quick()
        assert config.mechanisms == ("baseline", "aos", "pa+aos")
        assert config.scenario_names() == list(SCENARIOS)


class TestChaosCampaign:
    def test_quick_campaign_matches_oracle(self):
        matrix = run_quick_chaos()
        assert len(matrix) == 3 * len(SCENARIOS)
        assert matrix.ok, matrix.format_report()
        assert not matrix.robustness_bugs()
        # The §VII-C escape is a *named* finding, never a silent pass.
        escapes = {(r.scenario, r.mechanism) for r in matrix.known_escapes()}
        assert ("ahc-zero-escape", "aos") in escapes
        assert matrix.cell("ahc-zero-escape", "pa+aos").observed == "detected"
        report = matrix.format_report()
        assert "ahc-zero-escape vs aos" in report
        assert "known escapes" in report

    def test_every_cell_lands_in_taxonomy(self):
        config = ChaosConfig(scenarios=("double-free", "pac-forgery"))
        matrix = ChaosCampaign(config).run()
        assert len(matrix) == 2 * len(MECHANISM_ADAPTERS)
        assert all(r.verdict != "robustness-bug" for r in matrix.runs)
        # Unsupported primitives are explicit, not silent passes.
        unmodeled = [r for r in matrix.runs if r.verdict == "unmodeled"]
        assert all(r.observed == "unsupported" for r in unmodeled)
        assert unmodeled, "pac-forgery must be unmodeled somewhere"

    def test_supervised_matches_serial(self):
        config = ChaosConfig(
            scenarios=("heap-overflow-adjacent", "ahc-zero-escape"),
            mechanisms=("baseline", "aos", "pa+aos"),
        )
        serial = ChaosCampaign(config).run()
        supervised = ChaosCampaign(config).run(
            supervise=SupervisorConfig(jobs=2, deadline_s=60.0)
        )
        assert supervised.supervision is not None
        assert [r.stable_payload() for r in supervised.runs] == [
            r.stable_payload() for r in serial.runs
        ]
        assert supervised.supervision.accounts_for(
            [json.dumps(["scenario", s, m]) for s, m in ChaosCampaign(config).cells()]
        )

    def test_missed_detection_fails_campaign(self, monkeypatch):
        """Force a stale oracle entry: a must-detect the mechanism misses."""
        from repro.adversary import scenarios as scen

        def impossible(seed=7):
            instance = scen.intra_object_overflow(seed)
            return scen.ScenarioInstance(
                name=instance.name,
                category=instance.category,
                description=instance.description,
                steps=instance.steps,
                expectations={"aos": Expectation.MUST_DETECT},
                default=Expectation.KNOWN_ESCAPE,
                seed=seed,
            )

        monkeypatch.setitem(scen.SCENARIOS, "intra-object-overflow", impossible)
        matrix = ChaosCampaign(
            ChaosConfig(scenarios=("intra-object-overflow",), mechanisms=("aos",))
        ).run()
        assert not matrix.ok
        assert matrix.must_detect_failures()[0].scenario == "intra-object-overflow"
        assert "MISSED DETECTIONS" in matrix.format_report()

    def test_quarantined_cells_are_robustness_bugs(self):
        matrix = ScenarioMatrix(
            quarantined=[
                {"scenario": "double-free", "mechanism": "aos", "reason": "hang x3"}
            ]
        )
        assert matrix.ok  # quarantine is a finding, not a campaign failure
        bugs = matrix.robustness_bugs()
        assert bugs == [
            {"scenario": "double-free", "mechanism": "aos", "reason": "hang x3"}
        ]

    def test_matrix_payload_is_stable(self):
        config = ChaosConfig(scenarios=("uaf-stale-load",), mechanisms=("aos",))
        one = ChaosCampaign(config).run().to_payload()
        two = ChaosCampaign(config).run().to_payload()
        assert one == two  # elapsed excluded: committable artifact
        assert one["kind"] == "scenario-matrix"
        assert one["ok"]


# -------------------------------------------------------- trace compilation


class TestScenarioCompilation:
    def test_trace_shape(self):
        instance = build_scenario("uaf-after-realloc")
        trace = scenario_trace(instance)
        assert trace.profile.name == "attack:uaf-after-realloc"
        ops = [event[0] for event in trace.events]
        assert ops.count("m") == 2
        assert ops.count("f") == 1

    def test_double_free_lowers_second_free_to_pa(self):
        trace = scenario_trace(build_scenario("double-free"))
        ops = [event[0] for event in trace.events]
        assert ops.count("f") == 1  # allocator executes at lowering time
        assert "pa" in ops

    def test_compiled_exploit_faults_under_aos(self):
        from repro.cpu.core import Simulator
        from repro.experiments.common import scaled_config

        config = scaled_config("aos", 8)
        lowered = compile_scenario("heap-overflow-adjacent", "aos", config=config)
        result = Simulator(config).run(lowered)
        assert result.validation_faults > 0

    def test_compiles_for_every_lowerable_mechanism(self):
        for mechanism in ("baseline", "aos", "pa+aos", "mte", "rest"):
            lowered = compile_scenario("linear-oob-write", mechanism)
            assert lowered.program.instructions

"""The cross-cell lockstep batch driver (:mod:`repro.kernel.batch`).

``run_batch`` advances many (workload, mechanism, seed) cells through the
specialized kernel in lockstep — one structure-of-arrays driver loop
instead of N sequential runs.  Its contract is the same byte-identity the
solo dispatcher has: every batched result must equal what a per-cell
``Simulator.run(kernel="specialized")`` call produces, which in turn
equals the reference kernel.

Covered here:

- mixed batches (different workloads, mechanisms, seeds) byte-identical
  to solo runs, in input order;
- training admission: the first cell of an untrained profile trains
  eagerly, later same-profile cells join the lockstep;
- guard fallback *inside* a batch: an injected abort on one lane reruns
  that cell on the reference kernel without disturbing sibling lanes;
- traced cells route to the solo path (tracing never specializes);
- ``BatchStats`` accounting for all of the above;
- the experiment-suite surface: ``run_cells(batch=...)`` modes and
  ``ExperimentSuite(batch=...)`` parity with per-cell runs.
"""

from __future__ import annotations

import json

import pytest

from repro.compiler import lower_trace
from repro.cpu.core import Simulator
from repro.experiments.common import (
    ExperimentSuite,
    RunSettings,
    _result_to_payload,
    scaled_config,
)
from repro.experiments.parallel import CellSpec, run_cells
from repro.kernel import specialize as sp
from repro.kernel.batch import STATS as BATCH_STATS
from repro.kernel.batch import BatchCell, run_batch
from repro.obs import ObsSettings
from repro.workloads import generate_trace, get_profile

SEED = 7
SCALE = 8


def payload(result) -> str:
    return json.dumps(_result_to_payload(result), sort_keys=True)


def make_cell(workload: str, mechanism: str, seed: int = SEED,
              instructions: int = 2500, label: str = "", **kwargs) -> BatchCell:
    config = scaled_config(mechanism, SCALE)
    trace = generate_trace(
        get_profile(workload), instructions=instructions, seed=seed, scale=SCALE
    )
    lowered = lower_trace(trace, mechanism, config=config)
    return BatchCell(
        label=label or f"{workload}/{mechanism}/{seed}",
        config=config,
        lowered=lowered,
        **kwargs,
    )


@pytest.fixture(autouse=True)
def _fresh_state():
    sp.clear_cache()
    sp.STATS.reset()
    BATCH_STATS.reset()
    yield
    sp.clear_cache()
    sp.STATS.reset()
    BATCH_STATS.reset()


# ------------------------------------------------------------ byte identity


def test_mixed_batch_matches_solo_and_reference():
    """A mixed batch returns, in input order, exactly what solo runs do."""
    cells = [
        make_cell("gcc", "baseline"),
        make_cell("gcc", "aos"),
        make_cell("mcf", "aos"),
        make_cell("povray", "mte", seed=11),
        make_cell("gcc", "aos", seed=13),
    ]
    want = [
        payload(Simulator(cell.config, kernel="reference").run(cell.lowered))
        for cell in cells
    ]
    results = run_batch(cells)
    assert [payload(r) for r in results] == want
    # Re-run now that every profile is trained: all lanes lockstep.
    results = run_batch(cells)
    assert [payload(r) for r in results] == want
    assert BATCH_STATS.lockstepped >= len(cells)


def test_seed_sweep_shares_one_training_run():
    """Cells differing only in seed: the first trains, the rest lockstep."""
    cells = [make_cell("gcc", "aos", seed=s, label=f"s{s}") for s in (3, 5, 7)]
    run_batch(cells)
    assert BATCH_STATS.trained == 1
    assert BATCH_STATS.lockstepped == 2
    assert sp.STATS.trainings == 1


def test_lockstep_interleaves_chunks():
    """With all profiles warm, one batch drives multiple rounds — the
    driver is actually interleaving chunks, not running cells serially."""
    cells = [
        make_cell("gcc", "aos", instructions=6000),
        make_cell("mcf", "aos", instructions=6000),
    ]
    run_batch(cells)   # trains both profiles
    BATCH_STATS.reset()
    run_batch(cells)
    assert BATCH_STATS.lockstepped == 2
    # 6000 trace instructions lower to > 4096 µops, so each lane spans
    # multiple chunks and the round counter exceeds one.
    assert BATCH_STATS.rounds > 1


# ------------------------------------------------------------ guard fallback


def test_injected_abort_falls_back_one_lane_only():
    """A targeted injection kills exactly one lane; its fallback result
    and every sibling lane stay byte-identical to the reference."""
    # The injection filter matches the lowered program name ("gcc:aos"),
    # so "@gcc" fires on the first lane only.
    cells = [
        make_cell("gcc", "aos", instructions=6000, label="victim",
                  guard_inject="after:1000@gcc"),
        make_cell("mcf", "aos", instructions=6000, label="bystander",
                  guard_inject="after:1000@gcc"),
    ]
    want = [
        payload(Simulator(cell.config, kernel="reference").run(cell.lowered))
        for cell in cells
    ]
    run_batch(cells)   # training pass (injection fires at chunk boundaries
                       # of specialized runs only, never during training)
    BATCH_STATS.reset()
    aborts = sp.STATS.injected_aborts
    results = run_batch(cells)
    assert [payload(r) for r in results] == want
    assert sp.STATS.injected_aborts == aborts + 1
    assert BATCH_STATS.fell_back == 1
    assert BATCH_STATS.lockstepped == 1


def test_pre_run_guard_fallback_in_batch():
    """A kinds-guard failure (stale specialization for the cell's name)
    falls back before the lockstep starts; the result is still right."""
    from repro.isa.instructions import Instruction, Op
    from repro.isa.program import Program
    from repro.kernel.flatten import flatten_program
    from repro.cache.hierarchy import MemoryHierarchy

    cell = make_cell("gcc", "baseline")
    want = payload(Simulator(cell.config, kernel="reference").run(cell.lowered))
    narrow = Program(
        instructions=tuple(Instruction(op=Op.ALU) for _ in range(64)),
        name=cell.lowered.name,
    )
    hierarchy = MemoryHierarchy(cell.config.memory, use_l1b=False)
    profile = sp.build_profile(
        flatten_program(narrow), cell.config, hierarchy, None,
        (1 << 46) - 1, False, False,
    )
    sp.specialize(narrow.name, cell.config, hierarchy, None,
                  (1 << 46) - 1, profile)
    [result] = run_batch([cell])
    assert payload(result) == want
    assert BATCH_STATS.fell_back == 1
    assert sp.STATS.last_guard == "kinds"


# ---------------------------------------------------------------- solo route


def test_traced_cell_routes_solo():
    """A tracer on a cell forces the per-cell reference path (tracing
    never specializes), counted as ``solo``."""
    obs = ObsSettings(enabled=True, tracing=True).create()
    cells = [
        make_cell("gcc", "aos", obs=obs),
        make_cell("gcc", "aos", seed=11),
    ]
    results = run_batch(cells)
    assert BATCH_STATS.solo == 1
    for cell, result in zip(cells, results):
        want = Simulator(cell.config, kernel="reference").run(cell.lowered)
        # The traced cell carries a metrics snapshot its obs-free reference
        # twin lacks; the simulated measurements must still match exactly.
        got_payload = _result_to_payload(result)
        want_payload = _result_to_payload(want)
        got_payload.pop("metrics", None)
        want_payload.pop("metrics", None)
        assert json.dumps(got_payload, sort_keys=True) == json.dumps(
            want_payload, sort_keys=True
        )


# ------------------------------------------------------------- suite surface


def test_run_cells_batch_modes_agree():
    """``batch="auto"`` (specialized kernel), ``"always"`` and ``"never"``
    all produce byte-identical result maps."""
    settings = RunSettings(instructions=2500, kernel="specialized")
    cells = [CellSpec("gcc", "aos"), CellSpec("gcc", "baseline"),
             CellSpec("mcf", "aos")]
    maps = {}
    for mode in ("never", "auto", "always"):
        sp.clear_cache()
        maps[mode] = {
            key: payload(result)
            for key, result in run_cells(settings, cells, batch=mode).items()
        }
    assert maps["auto"] == maps["never"]
    assert maps["always"] == maps["never"]


def test_run_cells_rejects_bad_batch_mode():
    with pytest.raises(ValueError):
        run_cells(RunSettings(instructions=1000), [CellSpec("gcc", "aos")],
                  batch="sometimes")


def test_experiment_suite_batch_parity():
    """ExperimentSuite(batch=...) returns the same results either way."""
    settings = RunSettings(instructions=2500, kernel="specialized")
    batched = ExperimentSuite(settings, batch="always")
    solo = ExperimentSuite(settings, batch="never")
    for workload, mechanism in (("gcc", "aos"), ("gcc", "baseline")):
        assert payload(batched.result(workload, mechanism)) == payload(
            solo.result(workload, mechanism)
        )


def test_batch_stats_cells_accounting():
    cells = [make_cell("gcc", "baseline"), make_cell("gcc", "baseline", seed=11)]
    run_batch(cells)
    assert BATCH_STATS.batches == 1
    assert BATCH_STATS.cells == 2
    assert BATCH_STATS.trained + BATCH_STATS.lockstepped + BATCH_STATS.solo \
        + BATCH_STATS.fell_back == 2

"""OS support tests: exception handler policies, table manager (§IV-D)."""

import pytest

from repro.core.exceptions import (
    AuthenticationFault,
    BoundsCheckFault,
    BoundsStoreFault,
    FaultInfo,
)
from repro.core.hbt import HashedBoundsTable
from repro.os.handler import (
    AOSExceptionHandler,
    FaultRecord,
    HandlerPolicy,
    ProcessTerminated,
)
from repro.os.process import Process
from repro.os.table_manager import BoundsTableManager


def check_fault():
    return BoundsCheckFault(FaultInfo(pointer=0x123, pac=7, detail="oob"))


def store_fault():
    return BoundsStoreFault(FaultInfo(pointer=0x123, pac=7, detail="full row"))


def auth_fault():
    return AuthenticationFault(FaultInfo(pointer=0x456, pac=9, detail="bad PAC"))


class TestHandler:
    def test_terminate_policy_raises(self):
        handler = AOSExceptionHandler(policy=HandlerPolicy.TERMINATE)
        with pytest.raises(ProcessTerminated):
            handler.handle(check_fault())
        assert len(handler.log) == 1

    def test_report_and_resume_logs(self):
        handler = AOSExceptionHandler(policy=HandlerPolicy.REPORT_AND_RESUME)
        record = handler.handle(check_fault())
        assert isinstance(record, FaultRecord)
        assert handler.violations == [record]

    def test_store_fault_always_recoverable(self):
        handler = AOSExceptionHandler(policy=HandlerPolicy.TERMINATE)
        record = handler.handle(store_fault())  # no ProcessTerminated
        assert record.kind == "BoundsStoreFault"
        assert handler.violations == []  # resizes are not violations

    def test_clear(self):
        handler = AOSExceptionHandler(policy=HandlerPolicy.REPORT_AND_RESUME)
        handler.handle(check_fault())
        handler.clear()
        assert handler.log == []

    def test_violations_filtered_by_type_not_name(self):
        """A subclass of BoundsStoreFault must stay on the resize side even
        though its class name no longer contains 'Store'."""

        class RowExhausted(BoundsStoreFault):
            pass

        handler = AOSExceptionHandler(policy=HandlerPolicy.REPORT_AND_RESUME)
        record = handler.handle(
            RowExhausted(FaultInfo(pointer=0x1, pac=1, detail="row"))
        )
        assert record.kind == "RowExhausted"
        assert not record.is_violation
        assert handler.violations == []
        assert handler.violation_count == 0

    def test_authentication_fault_is_violation(self):
        handler = AOSExceptionHandler(policy=HandlerPolicy.REPORT_AND_RESUME)
        record = handler.handle(auth_fault())
        assert record.is_violation
        assert record.is_authentication
        assert handler.authentication_faults == [record]
        assert handler.violations == [record]

    def test_authentication_fault_terminates_under_policy(self):
        handler = AOSExceptionHandler(policy=HandlerPolicy.TERMINATE)
        with pytest.raises(ProcessTerminated):
            handler.handle(auth_fault())

    def test_escalation_threshold(self):
        handler = AOSExceptionHandler(
            policy=HandlerPolicy.REPORT_AND_RESUME, max_violations=3
        )
        for _ in range(2):
            handler.handle(check_fault())  # resumes below the threshold
        with pytest.raises(ProcessTerminated) as excinfo:
            handler.handle(check_fault())  # the 3rd violation escalates
        assert excinfo.value.escalated
        assert "escalation threshold" in str(excinfo.value)
        assert handler.violation_count == 3  # the fatal fault is still logged

    def test_escalation_ignores_recoverable_store_faults(self):
        handler = AOSExceptionHandler(
            policy=HandlerPolicy.REPORT_AND_RESUME, max_violations=2
        )
        for _ in range(10):
            handler.handle(store_fault())  # resizes never count
        handler.handle(check_fault())
        with pytest.raises(ProcessTerminated):
            handler.handle(check_fault())  # 2nd violation hits max=2


class TestTableManager:
    def test_resize_doubles_ways(self):
        hbt = HashedBoundsTable(pac_bits=11, initial_ways=1)
        manager = BoundsTableManager(hbt, nonblocking=True)
        event = manager.on_bounds_store_failure()
        assert (event.old_ways, event.new_ways) == (1, 2)
        assert hbt.resizing  # migration in flight

    def test_blocking_resize_completes_immediately(self):
        hbt = HashedBoundsTable(pac_bits=11, initial_ways=1)
        manager = BoundsTableManager(hbt, nonblocking=False)
        manager.on_bounds_store_failure()
        assert not hbt.resizing

    def test_tick_advances_migration(self):
        hbt = HashedBoundsTable(pac_bits=11, initial_ways=1)
        manager = BoundsTableManager(hbt, nonblocking=True)
        manager.on_bounds_store_failure()
        moved = manager.tick(rows=64)
        assert moved == 64

    def test_migration_bytes_accounted(self):
        hbt = HashedBoundsTable(pac_bits=11, initial_ways=1)
        manager = BoundsTableManager(hbt)
        event = manager.on_bounds_store_failure()
        # read old way line + write new, per row: rows * old_ways * 64 * 2
        assert event.migration_bytes == (1 << 11) * 1 * 64 * 2
        assert manager.total_migration_bytes() == event.migration_bytes
        assert manager.resize_count == 1


class TestProcess:
    def test_guarded_operations(self):
        proc = Process(pac_mode="fast", policy=HandlerPolicy.REPORT_AND_RESUME)
        p = proc.malloc(64)
        assert proc.store(p, 42)
        assert proc.load(p) == 42

    def test_violation_logged_not_raised(self):
        proc = Process(pac_mode="fast", policy=HandlerPolicy.REPORT_AND_RESUME)
        p = proc.malloc(64)
        assert proc.load(p + 4096) is None
        assert len(proc.violations) == 1

    def test_terminate_policy(self):
        proc = Process(pac_mode="fast", policy=HandlerPolicy.TERMINATE)
        p = proc.malloc(64)
        with pytest.raises(ProcessTerminated):
            proc.load(p + 4096)

    def test_pids_unique(self):
        assert Process(pac_mode="fast").pid != Process(pac_mode="fast").pid

    def test_report_and_resume_keeps_running(self):
        proc = Process(pac_mode="fast", policy=HandlerPolicy.REPORT_AND_RESUME)
        p = proc.malloc(64)
        for _ in range(5):
            proc.load(p + 4096)
        assert len(proc.violations) == 5
        assert proc.load(p) is not None  # in-bounds access still works

    def test_escalation_threshold_via_process(self):
        proc = Process(
            pac_mode="fast",
            policy=HandlerPolicy.REPORT_AND_RESUME,
            max_violations=2,
        )
        p = proc.malloc(64)
        proc.load(p + 4096)
        with pytest.raises(ProcessTerminated) as excinfo:
            proc.load(p + 4096)
        assert excinfo.value.escalated

    def test_authenticate_valid_pointer(self):
        proc = Process(pac_mode="fast", policy=HandlerPolicy.REPORT_AND_RESUME)
        p = proc.malloc(64)
        assert proc.authenticate(p) == p

    def test_authenticate_corrupt_pointer_dispatches(self):
        proc = Process(pac_mode="fast", policy=HandlerPolicy.REPORT_AND_RESUME)
        p = proc.malloc(64)
        # Strip the AHC: the pointer no longer looks AOS-signed, which is
        # exactly what the on-load autm check exists to catch (Fig. 13).
        corrupt = p & ~proc.runtime.signer.layout.ahc_mask
        assert proc.authenticate(corrupt) is None
        assert len(proc.handler.authentication_faults) == 1

"""OS support tests: exception handler policies, table manager (§IV-D)."""

import pytest

from repro.core.exceptions import (
    BoundsCheckFault,
    BoundsStoreFault,
    FaultInfo,
)
from repro.core.hbt import HashedBoundsTable
from repro.os.handler import (
    AOSExceptionHandler,
    FaultRecord,
    HandlerPolicy,
    ProcessTerminated,
)
from repro.os.process import Process
from repro.os.table_manager import BoundsTableManager


def check_fault():
    return BoundsCheckFault(FaultInfo(pointer=0x123, pac=7, detail="oob"))


def store_fault():
    return BoundsStoreFault(FaultInfo(pointer=0x123, pac=7, detail="full row"))


class TestHandler:
    def test_terminate_policy_raises(self):
        handler = AOSExceptionHandler(policy=HandlerPolicy.TERMINATE)
        with pytest.raises(ProcessTerminated):
            handler.handle(check_fault())
        assert len(handler.log) == 1

    def test_report_and_resume_logs(self):
        handler = AOSExceptionHandler(policy=HandlerPolicy.REPORT_AND_RESUME)
        record = handler.handle(check_fault())
        assert isinstance(record, FaultRecord)
        assert handler.violations == [record]

    def test_store_fault_always_recoverable(self):
        handler = AOSExceptionHandler(policy=HandlerPolicy.TERMINATE)
        record = handler.handle(store_fault())  # no ProcessTerminated
        assert record.kind == "BoundsStoreFault"
        assert handler.violations == []  # resizes are not violations

    def test_clear(self):
        handler = AOSExceptionHandler(policy=HandlerPolicy.REPORT_AND_RESUME)
        handler.handle(check_fault())
        handler.clear()
        assert handler.log == []


class TestTableManager:
    def test_resize_doubles_ways(self):
        hbt = HashedBoundsTable(pac_bits=11, initial_ways=1)
        manager = BoundsTableManager(hbt, nonblocking=True)
        event = manager.on_bounds_store_failure()
        assert (event.old_ways, event.new_ways) == (1, 2)
        assert hbt.resizing  # migration in flight

    def test_blocking_resize_completes_immediately(self):
        hbt = HashedBoundsTable(pac_bits=11, initial_ways=1)
        manager = BoundsTableManager(hbt, nonblocking=False)
        manager.on_bounds_store_failure()
        assert not hbt.resizing

    def test_tick_advances_migration(self):
        hbt = HashedBoundsTable(pac_bits=11, initial_ways=1)
        manager = BoundsTableManager(hbt, nonblocking=True)
        manager.on_bounds_store_failure()
        moved = manager.tick(rows=64)
        assert moved == 64

    def test_migration_bytes_accounted(self):
        hbt = HashedBoundsTable(pac_bits=11, initial_ways=1)
        manager = BoundsTableManager(hbt)
        event = manager.on_bounds_store_failure()
        # read old way line + write new, per row: rows * old_ways * 64 * 2
        assert event.migration_bytes == (1 << 11) * 1 * 64 * 2
        assert manager.total_migration_bytes() == event.migration_bytes
        assert manager.resize_count == 1


class TestProcess:
    def test_guarded_operations(self):
        proc = Process(pac_mode="fast", policy=HandlerPolicy.REPORT_AND_RESUME)
        p = proc.malloc(64)
        assert proc.store(p, 42)
        assert proc.load(p) == 42

    def test_violation_logged_not_raised(self):
        proc = Process(pac_mode="fast", policy=HandlerPolicy.REPORT_AND_RESUME)
        p = proc.malloc(64)
        assert proc.load(p + 4096) is None
        assert len(proc.violations) == 1

    def test_terminate_policy(self):
        proc = Process(pac_mode="fast", policy=HandlerPolicy.TERMINATE)
        p = proc.malloc(64)
        with pytest.raises(ProcessTerminated):
            proc.load(p + 4096)

    def test_pids_unique(self):
        assert Process(pac_mode="fast").pid != Process(pac_mode="fast").pid

"""QARMA-64 cipher tests: published vectors, inverses, batch equivalence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.qarma import (
    ALPHA,
    ROUND_CONSTANTS,
    SBOXES,
    TAU,
    TAU_INV,
    Qarma64,
    _lfsr_bwd,
    _lfsr_fwd,
    _mix_columns,
    _update_tweak_bwd,
    _update_tweak_fwd,
    from_cells,
    qarma64_decrypt,
    qarma64_encrypt,
    to_cells,
)
from repro.crypto.qarma_batch import Qarma64Batch

KEY = 0x84BE85CE9804E94BEC2802D4E0A488E9
TWEAK = 0x477D469DEC0B8762
PLAIN = 0xFB623599DA6E8127

u64 = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestPublishedVectors:
    """The QARMA paper's test vectors for the published key/tweak/plaintext."""

    def test_sigma0_r5(self):
        assert Qarma64(KEY, rounds=5, sbox=0).encrypt(PLAIN, TWEAK) == 0x3EE99A6C82AF0C38

    def test_sigma2_r7(self):
        assert Qarma64(KEY, rounds=7, sbox=2).encrypt(PLAIN, TWEAK) == 0x5C06A7501B63B2FD

    def test_encryption_is_deterministic(self):
        cipher = Qarma64(KEY)
        assert cipher.encrypt(PLAIN, TWEAK) == cipher.encrypt(PLAIN, TWEAK)


class TestCellCodec:
    def test_roundtrip(self):
        x = 0x0123456789ABCDEF
        assert from_cells(to_cells(x)) == x

    def test_cell_zero_is_msn(self):
        assert to_cells(0xF000000000000000)[0] == 0xF

    @given(u64)
    def test_roundtrip_property(self, x):
        assert from_cells(to_cells(x)) == x


class TestComponents:
    def test_sboxes_are_permutations(self):
        for sbox in SBOXES.values():
            assert sorted(sbox) == list(range(16))

    def test_tau_is_permutation(self):
        assert sorted(TAU) == list(range(16))

    def test_tau_inverse(self):
        for i in range(16):
            assert TAU[TAU_INV[i]] == i

    def test_mix_columns_is_involutory(self):
        for x in (0x0123456789ABCDEF, 0xFFFFFFFFFFFFFFFF, 0x1, PLAIN):
            assert _mix_columns(_mix_columns(x)) == x

    @given(st.integers(min_value=0, max_value=15))
    def test_lfsr_inverse(self, cell):
        assert _lfsr_bwd(_lfsr_fwd(cell)) == cell
        assert _lfsr_fwd(_lfsr_bwd(cell)) == cell

    def test_lfsr_full_period(self):
        """omega must cycle through all 15 nonzero states (maximal LFSR)."""
        seen = set()
        x = 1
        for _ in range(15):
            seen.add(x)
            x = _lfsr_fwd(x)
        assert len(seen) == 15

    @given(u64)
    def test_tweak_update_inverse(self, tweak):
        assert _update_tweak_bwd(_update_tweak_fwd(tweak)) == tweak

    def test_round_constants_start_at_zero(self):
        assert ROUND_CONSTANTS[0] == 0

    def test_alpha_nonzero(self):
        assert ALPHA != 0


class TestDecrypt:
    @given(u64, u64)
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, plaintext, tweak):
        cipher = Qarma64(KEY)
        assert cipher.decrypt(cipher.encrypt(plaintext, tweak), tweak) == plaintext

    def test_roundtrip_all_sboxes(self):
        for sbox in (0, 1, 2):
            cipher = Qarma64(KEY, sbox=sbox)
            ct = cipher.encrypt(PLAIN, TWEAK)
            assert cipher.decrypt(ct, TWEAK) == PLAIN

    def test_wrappers(self):
        ct = qarma64_encrypt(PLAIN, TWEAK, KEY)
        assert qarma64_decrypt(ct, TWEAK, KEY) == PLAIN


class TestValidation:
    def test_rejects_oversized_key(self):
        with pytest.raises(ValueError):
            Qarma64(1 << 128)

    def test_rejects_bad_sbox(self):
        with pytest.raises(ValueError):
            Qarma64(KEY, sbox=3)

    def test_rejects_bad_rounds(self):
        with pytest.raises(ValueError):
            Qarma64(KEY, rounds=0)

    def test_rejects_oversized_plaintext(self):
        with pytest.raises(ValueError):
            Qarma64(KEY).encrypt(1 << 64, TWEAK)

    def test_rejects_oversized_tweak(self):
        with pytest.raises(ValueError):
            Qarma64(KEY).encrypt(PLAIN, 1 << 64)


class TestBatch:
    def test_matches_scalar(self):
        scalar = Qarma64(KEY)
        batch = Qarma64Batch(KEY)
        pts = np.array(
            [PLAIN, 0, 0xFFFFFFFFFFFFFFFF, 0x123456789ABCDEF0, 0x20000010],
            dtype=np.uint64,
        )
        out = batch.encrypt(pts, TWEAK)
        for i, pt in enumerate(pts):
            assert int(out[i]) == scalar.encrypt(int(pt), TWEAK)

    @given(st.lists(u64, min_size=1, max_size=8), u64)
    @settings(max_examples=20, deadline=None)
    def test_matches_scalar_property(self, pts, tweak):
        scalar = Qarma64(KEY)
        batch = Qarma64Batch(KEY)
        out = batch.encrypt(np.array(pts, dtype=np.uint64), tweak)
        for i, pt in enumerate(pts):
            assert int(out[i]) == scalar.encrypt(pt, tweak)

    def test_pac_truncation(self):
        batch = Qarma64Batch(KEY)
        pts = np.array([PLAIN], dtype=np.uint64)
        pac = batch.pacs(pts, TWEAK, pac_bits=16)
        full = batch.encrypt(pts, TWEAK)
        assert int(pac[0]) == int(full[0]) & 0xFFFF

"""MCQ and FSM tests (§V-A, Fig. 8)."""

import pytest

from repro.core.hbt import HashedBoundsTable
from repro.core.mcq import MCQEntry, MCQState, MCQType, MemoryCheckQueue
from repro.errors import SimulationError


def make_hbt():
    return HashedBoundsTable(pac_bits=11, initial_ways=1)


def load_entry(pac=0x12, address=0x20001000, ahc=1, way=0):
    return MCQEntry(
        entry_type=MCQType.LOAD, address=address, pac=pac, ahc=ahc, way=way
    )


def drive(entry, hbt):
    while entry.state not in (MCQState.DONE, MCQState.FAIL):
        if entry.state is MCQState.BND_STR:
            entry.committed = True
        entry.step(hbt)
    return entry.state


class TestLoadStoreFSM:
    def test_unsigned_goes_straight_to_done(self):
        hbt = make_hbt()
        entry = load_entry(ahc=0)
        assert entry.step(hbt) is MCQState.DONE
        assert entry.lines_accessed == []

    def test_signed_hit_first_way(self):
        hbt = make_hbt()
        hbt.insert(0x12, 0x20001000, 64)
        entry = load_entry()
        assert drive(entry, hbt) is MCQState.DONE
        assert entry.result_way == 0
        assert len(entry.lines_accessed) == 1

    def test_signed_miss_fails_after_all_ways(self):
        hbt = make_hbt()
        entry = load_entry()
        assert drive(entry, hbt) is MCQState.FAIL
        assert entry.count == hbt.ways

    def test_way_iteration(self):
        hbt = make_hbt()
        hbt.begin_resize()      # 2 ways
        hbt.finish_resize()
        for i in range(8):      # fill way 0
            hbt.insert(0x12, 0x30000000 + 0x1000 * i, 64)
        hbt.insert(0x12, 0x20001000, 64)  # lands in way 1
        entry = load_entry()
        assert drive(entry, hbt) is MCQState.DONE
        assert entry.result_way == 1
        assert len(entry.lines_accessed) == 2

    def test_bwb_hint_starts_at_way(self):
        hbt = make_hbt()
        hbt.begin_resize()
        hbt.finish_resize()
        for i in range(8):
            hbt.insert(0x12, 0x30000000 + 0x1000 * i, 64)
        hbt.insert(0x12, 0x20001000, 64)
        entry = load_entry(way=1)  # hint from the BWB
        assert drive(entry, hbt) is MCQState.DONE
        assert len(entry.lines_accessed) == 1  # found immediately

    def test_stepping_done_entry_raises(self):
        hbt = make_hbt()
        entry = load_entry(ahc=0)
        entry.step(hbt)
        with pytest.raises(SimulationError):
            entry.step(hbt)


class TestTableOpFSM:
    def test_bndstr_waits_for_commit(self):
        hbt = make_hbt()
        entry = MCQEntry(
            entry_type=MCQType.BNDSTR, address=0x20001000, pac=0x12, ahc=1, size=64
        )
        entry.step(hbt)   # Init -> OccChk
        entry.step(hbt)   # OccChk -> BndStr (empty slot found)
        assert entry.state is MCQState.BND_STR
        entry.step(hbt)   # still waiting: not committed
        assert entry.state is MCQState.BND_STR
        entry.committed = True
        entry.step(hbt)
        assert entry.state is MCQState.DONE

    def test_bndclr_finds_matching_lower(self):
        hbt = make_hbt()
        hbt.insert(0x12, 0x20001000, 64)
        entry = MCQEntry(
            entry_type=MCQType.BNDCLR, address=0x20001000, pac=0x12, ahc=1
        )
        entry.committed = True
        assert drive(entry, hbt) is MCQState.DONE

    def test_bndclr_fails_without_match(self):
        """Double free / invalid free: no bounds to clear (§IV-D)."""
        hbt = make_hbt()
        entry = MCQEntry(
            entry_type=MCQType.BNDCLR, address=0x20001000, pac=0x12, ahc=1
        )
        assert drive(entry, hbt) is MCQState.FAIL

    def test_bndstr_fails_when_row_full(self):
        hbt = make_hbt()
        for i in range(8):
            hbt.insert(0x12, 0x30000000 + 0x1000 * i, 64)
        entry = MCQEntry(
            entry_type=MCQType.BNDSTR, address=0x20001000, pac=0x12, ahc=1, size=64
        )
        assert drive(entry, hbt) is MCQState.FAIL


class TestReplay:
    def test_replay_resets_walk(self):
        hbt = make_hbt()
        entry = load_entry()
        entry.step(hbt)  # Init -> BndChk
        entry.step(hbt)  # BndChk -> IncCnt (no bounds)
        entry.replay()
        assert entry.state is MCQState.INIT
        assert entry.count == 0

    def test_done_entry_not_replayed(self):
        """§V-E: entries in Done completed with valid bounds; no replay."""
        hbt = make_hbt()
        hbt.insert(0x12, 0x20001000, 64)
        entry = load_entry()
        drive(entry, hbt)
        entry.replay()
        assert entry.state is MCQState.DONE


class TestQueue:
    def test_capacity(self):
        q = MemoryCheckQueue(capacity=2)
        q.enqueue(load_entry())
        q.enqueue(load_entry())
        assert q.full
        with pytest.raises(SimulationError):
            q.enqueue(load_entry())

    def test_retire_head_requires_completion(self):
        q = MemoryCheckQueue(capacity=2)
        entry = load_entry()
        q.enqueue(entry)
        with pytest.raises(SimulationError):
            q.retire_head()
        entry.state = MCQState.DONE
        assert q.retire_head() is entry
        assert len(q) == 0

    def test_retire_empty_raises(self):
        with pytest.raises(SimulationError):
            MemoryCheckQueue().retire_head()

    def test_newer_than(self):
        q = MemoryCheckQueue()
        a, b, c = load_entry(), load_entry(), load_entry()
        for e in (a, b, c):
            q.enqueue(e)
        assert q.newer_than(a) == [b, c]
        assert q.newer_than(c) == []

    def test_rejects_zero_capacity(self):
        with pytest.raises(SimulationError):
            MemoryCheckQueue(capacity=0)

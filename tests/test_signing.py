"""pacma / xpacm / autm semantics tests (§IV-A)."""

import pytest

from repro.core.exceptions import AuthenticationFault
from repro.core.signing import PointerSigner
from repro.crypto.pac import PACGenerator
from repro.isa.encoding import PointerLayout


def make_signer(pac_bits=16, mode="fast"):
    return PointerSigner(
        generator=PACGenerator(pac_bits=pac_bits, mode=mode),
        layout=PointerLayout(pac_bits=pac_bits),
    )


class TestPacma:
    def test_embeds_nonzero_ahc(self):
        signer = make_signer()
        p = signer.pacma(0x20001000, 0x7FFF0000, 64)
        assert signer.is_signed(p)
        assert signer.ahc_of(p) in (1, 2, 3)

    def test_pac_depends_on_modifier(self):
        signer = make_signer()
        a = signer.pacma(0x20001000, 1, 64)
        b = signer.pacma(0x20001000, 2, 64)
        assert signer.pac_of(a) != signer.pac_of(b)

    def test_address_preserved(self):
        signer = make_signer()
        p = signer.pacma(0x20001000, 1, 64)
        assert signer.layout.address(p) == 0x20001000

    def test_zero_size_re_signing(self):
        """pacma ptr, sp, xzr after free() still marks the pointer signed."""
        signer = make_signer()
        p = signer.pacma(0x20001000, 1, 0)
        assert signer.is_signed(p)

    def test_pacmb_uses_other_key(self):
        signer = make_signer()
        a = signer.pacma(0x20001000, 1, 64)
        b = signer.pacmb(0x20001000, 1, 64)
        assert signer.pac_of(a) != signer.pac_of(b)

    def test_size_mismatch_between_layout_and_generator(self):
        with pytest.raises(ValueError):
            PointerSigner(
                generator=PACGenerator(pac_bits=16),
                layout=PointerLayout(pac_bits=12),
            )


class TestXpacm:
    def test_strips_everything(self):
        signer = make_signer()
        p = signer.pacma(0x20001000, 1, 64)
        assert signer.xpacm(p) == 0x20001000

    def test_idempotent_on_raw_pointer(self):
        signer = make_signer()
        assert signer.xpacm(0x20001000) == 0x20001000


class TestAutm:
    def test_accepts_signed_pointer(self):
        signer = make_signer()
        p = signer.pacma(0x20001000, 1, 64)
        assert signer.autm(p) == p  # autm does not strip (§IV-A)

    def test_rejects_unsigned_pointer(self):
        signer = make_signer()
        with pytest.raises(AuthenticationFault):
            signer.autm(0x20001000)

    def test_rejects_ahc_forged_to_zero(self):
        signer = make_signer()
        p = signer.pacma(0x20001000, 1, 64)
        forged = p & ~signer.layout.ahc_mask
        with pytest.raises(AuthenticationFault):
            signer.autm(forged)

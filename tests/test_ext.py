"""Tests for the future-work extensions: stack protection and narrowing."""

import pytest

from repro.core.aos import AOSRuntime
from repro.core.exceptions import BoundsCheckFault
from repro.errors import MemoryError_
from repro.ext import NARROW_GRANULE, ProtectedStack, narrow, release_narrowed


@pytest.fixture
def runtime():
    return AOSRuntime(pac_mode="fast")


@pytest.fixture
def stack(runtime):
    return ProtectedStack(runtime)


class TestProtectedStack:
    def test_alloca_returns_signed_pointer(self, runtime, stack):
        stack.push_frame()
        p = stack.alloca(64)
        assert runtime.signer.is_signed(p)

    def test_local_roundtrip(self, runtime, stack):
        stack.push_frame()
        p = stack.alloca(64)
        stack.store(p, 0xFEED)
        assert stack.load(p) == 0xFEED

    def test_stack_buffer_overflow_detected(self, runtime, stack):
        """The classic stack smash, caught by bounds."""
        stack.push_frame()
        buf = stack.alloca(32)
        with pytest.raises(BoundsCheckFault):
            stack.store(runtime.offset(buf, 40), 0x41414141)

    def test_adjacent_locals_isolated(self, runtime, stack):
        stack.push_frame()
        a = stack.alloca(32)
        b = stack.alloca(32)
        stack.store(b, 1)  # fine
        with pytest.raises(BoundsCheckFault):
            stack.load(runtime.offset(a, 32))  # cannot reach b through a

    def test_use_after_return_detected(self, runtime, stack):
        """The stack analogue of UAF (§III-D)."""
        stack.push_frame()
        stack.alloca(64)
        (dangling,) = stack.pop_frame()
        with pytest.raises(BoundsCheckFault):
            stack.load(dangling)

    def test_nested_frames(self, runtime, stack):
        stack.push_frame()
        outer = stack.alloca(64)
        stack.push_frame()
        inner = stack.alloca(64)
        stack.store(inner, 2)
        stack.pop_frame()
        # Outer locals survive the inner return.
        stack.store(outer, 3)
        assert stack.load(outer) == 3
        assert stack.depth == 1

    def test_sp_restored_on_pop(self, stack):
        stack.push_frame()
        sp0 = stack.sp
        stack.push_frame()
        stack.alloca(256)
        stack.pop_frame()
        assert stack.sp == sp0

    def test_alloca_outside_frame_rejected(self, stack):
        with pytest.raises(MemoryError_):
            stack.alloca(16)

    def test_pop_empty_rejected(self, stack):
        with pytest.raises(MemoryError_):
            stack.pop_frame()

    def test_stack_overflow_guard(self, runtime):
        small = ProtectedStack(runtime, reserve=256)
        small.push_frame()
        with pytest.raises(MemoryError_):
            for _ in range(64):
                small.alloca(64)


class TestNarrowing:
    def test_field_access_within_narrowed_bounds(self, runtime):
        obj = runtime.malloc(128)
        field = narrow(runtime, obj, offset=32, size=16)
        runtime.store(field, 7)
        assert runtime.load(field) == 7

    def test_intra_object_overflow_detected(self, runtime):
        """The §VII-F scenario: overflowing one field into the next."""
        obj = runtime.malloc(128)
        field = narrow(runtime, obj, offset=32, size=16)
        with pytest.raises(BoundsCheckFault):
            runtime.load(runtime.offset(field, NARROW_GRANULE + 16))

    def test_granule_snap(self, runtime):
        """Fields inside one 16-byte granule stay mutually reachable — the
        documented granularity compromise."""
        obj = runtime.malloc(64)
        field = narrow(runtime, obj, offset=4, size=4)
        runtime.load(runtime.offset(field, -4))  # same granule: allowed

    def test_full_object_still_accessible_via_original(self, runtime):
        obj = runtime.malloc(128)
        narrow(runtime, obj, offset=0, size=16)
        runtime.store(runtime.offset(obj, 96), 5)  # original bounds intact
        assert runtime.load(runtime.offset(obj, 96)) == 5

    def test_release_locks_field_pointer(self, runtime):
        obj = runtime.malloc(128)
        field = narrow(runtime, obj, offset=16, size=16)
        locked = release_narrowed(runtime, field)
        with pytest.raises(BoundsCheckFault):
            runtime.load(locked)

    def test_oob_derivation_rejected_size(self, runtime):
        obj = runtime.malloc(64)
        from repro.errors import EncodingError

        with pytest.raises(EncodingError):
            narrow(runtime, obj, offset=0, size=0)

"""Error hierarchy tests."""

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in (
        "ConfigError",
        "MemoryError_",
        "AllocatorError",
        "EncodingError",
        "SimulationError",
        "WorkloadError",
    ):
        cls = getattr(errors, name)
        assert issubclass(cls, errors.ReproError)


def test_single_except_catches_everything():
    with pytest.raises(errors.ReproError):
        raise errors.AllocatorError("boom")


def test_architectural_faults_are_separate():
    """Simulated AOS exceptions are *not* host errors (§IV-D vs library
    misuse) — catching ReproError must not swallow them."""
    from repro.core.exceptions import AOSException, FaultInfo, BoundsCheckFault

    assert not issubclass(AOSException, errors.ReproError)
    fault = BoundsCheckFault(FaultInfo(pointer=1, detail="x"))
    assert fault.info.pointer == 1

"""Fault-injection subsystem tests: injector, campaign, checkpoint."""

import json

import pytest

from repro.errors import CheckpointError, ExperimentTimeout, FaultInjectionError
from repro.faults import (
    Campaign,
    CampaignConfig,
    CheckpointStore,
    Deadline,
    FaultHarness,
    FaultInjector,
    FaultKind,
    FaultSpec,
    POINTER_CORRUPTION_KINDS,
    RunOutcome,
    RunResult,
)
from repro.stats import DetectionCoverage

#: A small-but-real harness shape shared by the injection tests.
HARNESS_KW = dict(workload="gcc", seed=11, objects=10)


def small_config(**overrides):
    defaults = dict(
        workloads=("gcc",),
        mechanisms=("aos",),
        locations=1,
        objects=8,
        churn=2,
        timeout_s=30.0,
    )
    defaults.update(overrides)
    return CampaignConfig(**defaults)


def run_one(kind, mechanism="aos", location=0, **config_kw):
    campaign = Campaign(small_config(kinds=(kind,), **config_kw))
    return campaign.run_cell("gcc", mechanism, FaultSpec(kind=kind, location=location))


# --------------------------------------------------------------------- deadline


class TestDeadline:
    def test_unbounded(self):
        deadline = Deadline(None)
        assert not deadline.expired()
        deadline.check()  # never raises

    def test_expired_raises(self):
        deadline = Deadline(0.0)
        assert deadline.expired()
        with pytest.raises(ExperimentTimeout):
            deadline.check()

    def test_elapsed_monotonic(self):
        deadline = Deadline(60.0)
        assert deadline.elapsed >= 0.0
        assert not deadline.expired()


# ------------------------------------------------------------------- checkpoint


class TestCheckpointStore:
    META = {"kind": "test", "seed": 7}

    def test_put_get_roundtrip(self, tmp_path):
        store = CheckpointStore(tmp_path / "cp.jsonl", meta=self.META)
        key = ["cell", "gcc", "aos", "ptr-pac-flip", 0]
        assert key not in store
        store.put(key, {"outcome": "detected"})
        assert key in store
        assert store.get(key) == {"outcome": "detected"}
        assert len(store) == 1

    def test_resume_across_instances(self, tmp_path):
        path = tmp_path / "cp.jsonl"
        first = CheckpointStore(path, meta=self.META)
        first.put(["a"], 1)
        first.put(["b"], 2)
        second = CheckpointStore(path, meta=self.META)
        assert second.resumed_cells == 2
        assert second.get(["a"]) == 1
        assert sorted(map(tuple, second.keys())) == [("a",), ("b",)]

    def test_torn_tail_line_skipped(self, tmp_path):
        path = tmp_path / "cp.jsonl"
        store = CheckpointStore(path, meta=self.META)
        store.put(["a"], 1)
        with open(path, "a") as fh:
            fh.write('{"k": ["b"], "v": 2')  # interrupted mid-write
        reopened = CheckpointStore(path, meta=self.META)
        assert ["a"] in reopened
        assert ["b"] not in reopened

    def test_torn_tail_does_not_eat_next_put(self, tmp_path):
        """A torn tail must be newline-terminated on open so the next
        append does not glue onto the garbage and get lost too."""
        path = tmp_path / "cp.jsonl"
        CheckpointStore(path, meta=self.META).put(["a"], 1)
        with open(path, "a") as fh:
            fh.write('{"k": ["b"], "v": 2')  # no trailing newline
        reopened = CheckpointStore(path, meta=self.META)
        reopened.put(["c"], 3)
        third = CheckpointStore(path, meta=self.META)
        assert third.resumed_cells == 2
        assert third.get(["c"]) == 3

    def test_meta_mismatch_restarts(self, tmp_path):
        path = tmp_path / "cp.jsonl"
        old = CheckpointStore(path, meta=self.META)
        old.put(["a"], 1)
        fresh = CheckpointStore(path, meta={"kind": "test", "seed": 8})
        assert fresh.resumed_cells == 0
        assert ["a"] not in fresh
        # The file itself was truncated and restamped.
        header = json.loads(path.read_text().splitlines()[0])
        assert header["meta"]["seed"] == 8

    def test_meta_mismatch_error_policy(self, tmp_path):
        path = tmp_path / "cp.jsonl"
        CheckpointStore(path, meta=self.META).put(["a"], 1)
        with pytest.raises(CheckpointError):
            CheckpointStore(path, meta={"seed": 8}, on_mismatch="error")

    def test_bad_policy_rejected(self, tmp_path):
        with pytest.raises(CheckpointError):
            CheckpointStore(tmp_path / "cp.jsonl", on_mismatch="ignore")


# --------------------------------------------------------------------- harness


class TestFaultHarness:
    def test_populate_builds_live_set(self):
        harness = FaultHarness(**HARNESS_KW)
        harness.populate()
        assert len(harness.objects) == 10
        assert all(not o.freed for o in harness.objects)
        assert harness.integrity_failures() == []
        assert harness.detections == 0

    def test_rejects_unprotected_mechanism(self):
        with pytest.raises(FaultInjectionError):
            FaultHarness(mechanism="baseline")

    def test_probe_clean_process_no_detections(self):
        harness = FaultHarness(**HARNESS_KW)
        harness.populate()
        harness.probe(deadline=Deadline(None), churn=2)
        assert harness.detections == 0
        assert harness.integrity_failures() == []

    def test_injector_rejects_empty_population(self):
        harness = FaultHarness(**HARNESS_KW)  # no populate()
        with pytest.raises(FaultInjectionError):
            FaultInjector().inject(harness, FaultSpec(kind=FaultKind.PTR_PAC_FLIP))


# ------------------------------------------------------------- injection kinds


class TestInjectionOutcomes:
    @pytest.mark.parametrize("kind", POINTER_CORRUPTION_KINDS)
    def test_pointer_corruption_detected(self, kind):
        result = run_one(kind)
        assert result.outcome is RunOutcome.DETECTED, result.detail
        assert result.expect_detection

    @pytest.mark.parametrize(
        "kind", [FaultKind.HBT_ENTRY_CORRUPT, FaultKind.HBT_ENTRY_DROP,
                 FaultKind.BNDSTR_DROP]
    )
    def test_table_corruption_detected(self, kind):
        result = run_one(kind)
        assert result.outcome is RunOutcome.DETECTED, result.detail

    def test_chunk_header_corruption_detected(self):
        result = run_one(FaultKind.CHUNK_HEADER_CORRUPT)
        assert result.outcome is RunOutcome.DETECTED, result.detail

    def test_ahc_zero_silent_under_plain_aos(self):
        """The §VII-C escape: plain AOS skips unsigned pointers."""
        result = run_one(FaultKind.PTR_AHC_ZERO, mechanism="aos")
        assert result.outcome is RunOutcome.SILENT
        assert not result.expect_detection

    def test_ahc_zero_detected_under_pa_aos(self):
        """PA+AOS's on-load autm (Fig. 13) closes the escape."""
        result = run_one(
            FaultKind.PTR_AHC_ZERO,
            mechanism="pa+aos",
            mechanisms=("pa+aos",),
        )
        assert result.outcome is RunOutcome.DETECTED, result.detail
        assert result.expect_detection

    @pytest.mark.parametrize(
        "kind", [FaultKind.RESIZE_INTERRUPT, FaultKind.BWB_STALE_WAY,
                 FaultKind.HBT_PRESSURE]
    )
    def test_resilience_faults_tolerated(self, kind):
        """Degradation faults must land in the taxonomy without crashing."""
        result = run_one(kind)
        assert result.outcome in (RunOutcome.DETECTED, RunOutcome.SILENT)
        assert result.retries == 0


# -------------------------------------------------------- campaign resilience


class TestCampaignResilience:
    def test_zero_budget_times_out(self):
        result = run_one(FaultKind.PTR_PAC_FLIP, timeout_s=0.0)
        assert result.outcome is RunOutcome.TIMED_OUT
        assert "wall-clock" in result.detail

    def test_host_error_retried_then_crashed(self):
        campaign = Campaign(small_config(max_retries=2))
        calls = []

        class FailingInjector:
            def inject(self, harness, spec):
                calls.append(spec.seed)
                raise RuntimeError("simulator bug")

        campaign.injector = FailingInjector()
        result = campaign.run_cell(
            "gcc", "aos", FaultSpec(kind=FaultKind.PTR_PAC_FLIP, seed=7)
        )
        assert result.outcome is RunOutcome.CRASHED
        assert result.retries == 2
        assert "RuntimeError" in result.detail
        # Each retry decorrelates with a fresh seed.
        assert calls == [7, 7 + 7919, 7 + 2 * 7919]

    def test_host_error_recovers_on_retry(self):
        campaign = Campaign(small_config(max_retries=2))
        real = campaign.injector
        attempts = []

        class FlakyInjector:
            def inject(self, harness, spec):
                attempts.append(spec.seed)
                if len(attempts) == 1:
                    raise OSError("transient")
                return real.inject(harness, spec)

        campaign.injector = FlakyInjector()
        result = campaign.run_cell(
            "gcc", "aos", FaultSpec(kind=FaultKind.PTR_PAC_FLIP, seed=7)
        )
        assert result.outcome is RunOutcome.DETECTED
        assert result.retries == 1
        assert result.seed == 7 + 7919

    def test_unprotected_mechanism_fails_fast(self):
        """A typo'd --mechanisms must not burn the sweep as CRASHED cells."""
        with pytest.raises(FaultInjectionError):
            Campaign(small_config(mechanisms=("baseline",)))

    def test_campaign_never_escapes_taxonomy(self):
        config = small_config(
            kinds=(FaultKind.PTR_PAC_FLIP, FaultKind.PTR_AHC_ZERO,
                   FaultKind.RESIZE_INTERRUPT),
            locations=2,
        )
        result = Campaign(config).run()
        assert result.host_survived
        assert len(result) == 6
        assert result.outcomes()[RunOutcome.CRASHED] == 0


# --------------------------------------------------------- checkpoint / resume


class TestCampaignResume:
    CONFIG_KW = dict(
        kinds=(FaultKind.PTR_PAC_FLIP, FaultKind.USE_AFTER_FREE),
        locations=2,
    )

    def test_resume_skips_completed_cells(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        config = small_config(**self.CONFIG_KW)
        first = Campaign(config, checkpoint=path).run()
        assert first.resumed == 0
        assert len(first) == 4

        resumed = Campaign(config, checkpoint=path)
        resumed.run_cell = None  # any attempt to re-run a cell would blow up
        second = resumed.run()
        assert second.resumed == 4
        assert len(second) == 4
        assert [r.outcome for r in second.results] == \
            [r.outcome for r in first.results]

    def test_partial_checkpoint_runs_only_missing(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        config = small_config(**self.CONFIG_KW)
        campaign = Campaign(config, checkpoint=path)
        cells = list(campaign.cells())
        # Pre-complete the first two cells by hand.
        for workload, mechanism, spec in cells[:2]:
            key = ["cell", workload, mechanism, spec.kind.value, spec.location]
            campaign.checkpoint.put(
                key,
                RunResult(
                    workload=workload, mechanism=mechanism, kind=spec.kind.value,
                    location=spec.location, seed=spec.seed,
                    outcome=RunOutcome.DETECTED, detections=1,
                ).to_payload(),
            )
        ran = []
        result = campaign.run(progress=lambda r, resumed: ran.append(resumed))
        assert result.resumed == 2
        assert ran.count(True) == 2 and ran.count(False) == 2

    def test_config_change_restarts_checkpoint(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        Campaign(small_config(**self.CONFIG_KW), checkpoint=path).run()
        other = small_config(
            kinds=(FaultKind.PTR_PAC_FLIP, FaultKind.USE_AFTER_FREE),
            locations=2, seed=99,
        )
        fresh = Campaign(other, checkpoint=path)
        assert fresh.checkpoint.resumed_cells == 0


# ------------------------------------------------------------------ reporting


class TestReporting:
    def test_detection_coverage_table(self):
        coverage = DetectionCoverage()
        coverage.add("ptr-pac-flip", "detected")
        coverage.add("ptr-pac-flip", "detected")
        coverage.add("ptr-ahc-zero", "silent")
        assert coverage.total() == 3
        assert coverage.detected() == 2
        assert coverage.rate(["ptr-pac-flip"]) == 1.0
        table = coverage.format_table()
        assert "ptr-pac-flip" in table and "TOTAL" in table

    def test_crashes_count_against_detection(self):
        coverage = DetectionCoverage()
        coverage.add("k", "detected")
        coverage.add("k", "crashed")
        assert coverage.rate(["k"]) == 0.5

    def test_campaign_report_mentions_acceptance_bucket(self):
        config = small_config(kinds=tuple(POINTER_CORRUPTION_KINDS))
        result = Campaign(config).run()
        report = result.format_report()
        assert "pointer-corruption detection" in report
        assert "resumed from checkpoint: 0" in report
        assert result.pointer_corruption_rate == 1.0

    def test_runresult_payload_roundtrip(self):
        original = RunResult(
            workload="gcc", mechanism="aos", kind="ptr-va-flip", location=1,
            seed=7, outcome=RunOutcome.TIMED_OUT, detail="budget",
        )
        assert RunResult.from_payload(original.to_payload()) == original


# ----------------------------------------------------- teardown / fault kinds


class TestSeamTeardown:
    def arm_all_seams(self, harness):
        harness.mcu.inject_drop_bndstr(3)
        harness.hbt.interrupt_migration()
        if harness.bwb is not None:
            harness.bwb.poison(0x123, 1)

    def assert_disarmed(self, harness):
        assert harness.mcu._inject_dropped_stores == 0
        assert not harness.hbt.migration_stalled
        if harness.bwb is not None:
            assert harness.bwb.lookup(0x123) is None

    def test_exception_mid_simulation_disarms_seams(self):
        """The regression the context manager pins: an exception between
        injection and probe must not leak armed seams into the next run."""
        harness = FaultHarness(**HARNESS_KW)
        harness.populate()
        with pytest.raises(RuntimeError):
            with harness:
                self.arm_all_seams(harness)
                raise RuntimeError("crash between inject and probe")
        self.assert_disarmed(harness)
        # A follow-up run on the same components is clean: nothing drops
        # the new bndstr, no stalled migration steers its lookups.
        harness.allocate_one()
        harness.probe(churn=2)
        assert harness.detections == 0
        assert harness.integrity_failures() == []

    def test_context_manager_does_not_swallow(self):
        with pytest.raises(ValueError):
            with FaultHarness(**HARNESS_KW):
                raise ValueError("must propagate")

    def test_disarm_is_idempotent_and_keeps_results(self):
        harness = FaultHarness(**HARNESS_KW)
        harness.populate()
        record = FaultInjector().inject(
            harness, FaultSpec(kind=FaultKind.PTR_VA_FLIP)
        )
        harness.probe(churn=1)
        detections = harness.detections
        assert detections > 0
        harness.disarm_seams()
        harness.disarm_seams()
        # Applied corruption and logged detections are results, not seams.
        assert harness.detections == detections
        assert record.target_pointer is not None

    def test_failing_handler_disarms_before_raising(self):
        """A handler that dies after arming a seam must not leak it."""
        harness = FaultHarness(**HARNESS_KW)
        harness.populate()
        injector = FaultInjector()

        def exploding(self, harness, spec, rng):
            harness.mcu.inject_drop_bndstr(2)
            raise FaultInjectionError("handler died mid-injection")

        injector._HANDLERS = {FaultKind.BNDSTR_DROP: exploding}
        with pytest.raises(FaultInjectionError):
            injector.inject(harness, FaultSpec(kind=FaultKind.BNDSTR_DROP))
        assert harness.mcu._inject_dropped_stores == 0


class TestFaultKindVocabulary:
    def test_every_kind_has_a_handler(self):
        assert set(FaultInjector._HANDLERS) == set(FaultKind)

    def test_categories_partition_the_vocabulary(self):
        from repro.faults import (
            ALL_KINDS,
            METADATA_KINDS,
            RESILIENCE_KINDS,
            SPATIAL_POINTER_KINDS,
            TEMPORAL_POINTER_KINDS,
        )

        categories = (
            SPATIAL_POINTER_KINDS,
            TEMPORAL_POINTER_KINDS,
            METADATA_KINDS,
            RESILIENCE_KINDS,
        )
        members = [kind for category in categories for kind in category]
        # Every kind in exactly one category, none missing, none invented.
        assert len(members) == len(set(members))
        assert set(members) == set(FaultKind) == set(ALL_KINDS)

    def test_parse_fault_kind_round_trips(self):
        from repro.faults import parse_fault_kind

        for kind in FaultKind:
            assert parse_fault_kind(kind.value) is kind

    def test_parse_fault_kind_lists_vocabulary(self):
        from repro.faults import parse_fault_kind

        with pytest.raises(FaultInjectionError) as excinfo:
            parse_fault_kind("cosmic-ray")
        assert "ptr-pac-flip" in str(excinfo.value)

"""Round-trip and differential tests for the trace frontend (ISSUE 9).

The package contract: ``simulate(generate(p))`` and
``simulate(import(record(generate(p))))`` are byte-identical — for every
one of the 22 calibrated profiles, on both kernels, in both wire formats.
Trace-level dataclass equality is checked first (it is the mechanism that
*makes* the results identical: ``lower_trace`` is deterministic given an
equal ``WorkloadTrace``), then the simulation results themselves are
compared field-for-field via ``dataclasses.asdict``.
"""

import dataclasses

import pytest

from repro.adversary import compile_scenario, export_scenario
from repro.compiler import lower_trace
from repro.cpu.core import Simulator
from repro.experiments.common import scaled_config
from repro.kernel import KERNELS
from repro.traces import export_workload, import_trace, record_trace, trace_digest
from repro.workloads import (
    REALWORLD_PROFILES,
    SPEC2006_PROFILES,
    generate_trace,
    get_profile,
)

ALL_PROFILES = sorted({**SPEC2006_PROFILES, **REALWORLD_PROFILES})

#: Small-but-valid window: the generator refuses anything under 1000
#: events, and scale 16 keeps the biggest preambles (gcc) cheap to lower.
WINDOW = dict(instructions=1200, seed=7, scale=16)


def _simulate(trace, kernel, mechanism="aos"):
    config = scaled_config(mechanism, trace.scale)
    lowered = lower_trace(trace, mechanism, config=config)
    return Simulator(config, kernel=kernel).run(lowered)


@pytest.mark.parametrize("workload", ALL_PROFILES)
def test_roundtrip_byte_identical_all_profiles(workload, tmp_path):
    """generate -> export -> import == generate, and the simulation
    results match byte-for-byte on both kernels, in both formats."""
    trace = generate_trace(get_profile(workload), **WINDOW)
    imported = {}
    for format, extension in (("jsonl", "jsonl"), ("binary", "bin")):
        path = tmp_path / f"{workload}.{extension}"
        record_trace(trace, path, format=format)
        imported[format] = import_trace(path)
        # Dataclass equality covers profile, preamble, events, sizes,
        # scale, seed and mispredict rate — the full lowering input.
        assert imported[format] == trace, format
    # Cross-format: both wire formats decode to the same logical trace.
    assert imported["jsonl"] == imported["binary"]
    for kernel in KERNELS:
        direct = _simulate(trace, kernel)
        for format in ("jsonl", "binary"):
            ingested = _simulate(imported[format], kernel)
            assert dataclasses.asdict(ingested) == dataclasses.asdict(direct), (
                workload,
                kernel,
                format,
            )


def test_export_workload_embeds_provenance(tmp_path):
    path = tmp_path / "gcc.jsonl"
    trace = export_workload("gcc", path, **WINDOW)
    from repro.traces import read_header

    header = read_header(path)
    assert header.generator == {
        "source": "synthetic",
        "workload": "gcc",
        "instructions": WINDOW["instructions"],
        "seed": WINDOW["seed"],
        "scale": WINDOW["scale"],
    }
    assert header.profile is not None
    assert import_trace(path) == trace


def test_digest_is_format_and_content_sensitive(tmp_path):
    """The cache key digest changes with any byte: format, seed, window."""
    a = tmp_path / "a.jsonl"
    b = tmp_path / "b.bin"
    c = tmp_path / "c.jsonl"
    export_workload("bzip2", a, **WINDOW)
    export_workload("bzip2", b, format="binary", **WINDOW)
    export_workload("bzip2", c, **{**WINDOW, "seed": 8})
    digests = {trace_digest(a), trace_digest(b), trace_digest(c)}
    assert len(digests) == 3
    # ... but re-exporting identical settings reproduces the same bytes.
    a2 = tmp_path / "a2.jsonl"
    export_workload("bzip2", a2, **WINDOW)
    assert trace_digest(a2) == trace_digest(a)


@pytest.mark.parametrize("scenario", ["uaf-stale-load", "heap-overflow-adjacent"])
def test_scenario_export_reimports_identically(scenario, tmp_path):
    """Attack traces (UAF/OOB accesses) survive the schema unchanged: the
    exported scenario re-ingests equal and simulates byte-identically to
    the direct compile_scenario path, validation faults included."""
    path = tmp_path / f"{scenario}.bin"
    trace = export_scenario(scenario, path, format="binary")
    imported = import_trace(path)
    assert imported == trace
    config = scaled_config("aos", trace.scale)
    direct_lowered = compile_scenario(scenario, "aos", config=config)
    for kernel in KERNELS:
        direct = Simulator(config, kernel=kernel).run(direct_lowered)
        ingested = Simulator(config, kernel=kernel).run(
            lower_trace(imported, "aos", config=config)
        )
        assert dataclasses.asdict(ingested) == dataclasses.asdict(direct)


def test_suite_ingestion_matches_direct_simulation(tmp_path):
    """ExperimentSuite.result() over an ingested trace equals simulating
    the regenerated synthetic source directly, and caches by digest."""
    from repro.experiments import ExperimentSuite, RunSettings

    path = tmp_path / "bzip2.trace.jsonl"
    trace = export_workload("bzip2", path, **WINDOW)
    suite = ExperimentSuite(
        RunSettings(instructions=WINDOW["instructions"], seed=7, scale=8),
        cache=None,
    )
    name = suite.ingest_trace(path)
    assert name == "trace:bzip2.trace"
    result = suite.result(name, "aos")
    # The suite must honour the *trace's* scale (16), not settings.scale.
    direct = _simulate(trace, suite.settings.kernel)
    assert dataclasses.asdict(result) == dataclasses.asdict(direct)

"""Sparse memory model tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MemoryError_
from repro.memory.memory import PAGE_SIZE, SparseMemory


class TestBasics:
    def test_reads_zero_by_default(self):
        mem = SparseMemory()
        assert mem.read_u64(0x1000) == 0
        assert mem.read_bytes(0x2000, 16) == b"\x00" * 16

    def test_write_read_roundtrip(self):
        mem = SparseMemory()
        mem.write_u64(0x1000, 0xDEADBEEFCAFEBABE)
        assert mem.read_u64(0x1000) == 0xDEADBEEFCAFEBABE

    def test_little_endian(self):
        mem = SparseMemory()
        mem.write_u64(0x1000, 0x0102030405060708)
        assert mem.read_bytes(0x1000, 1) == b"\x08"

    def test_u32(self):
        mem = SparseMemory()
        mem.write_u32(0x1000, 0x12345678)
        assert mem.read_u32(0x1000) == 0x12345678

    def test_write_masks_to_64_bits(self):
        mem = SparseMemory()
        mem.write_u64(0x1000, (1 << 70) | 5)
        assert mem.read_u64(0x1000) == 5

    def test_fill(self):
        mem = SparseMemory()
        mem.fill(0x1000, 32, 0xAB)
        assert mem.read_bytes(0x1000, 32) == b"\xab" * 32


class TestPageBoundaries:
    def test_cross_page_write(self):
        mem = SparseMemory()
        addr = PAGE_SIZE - 4
        mem.write_u64(addr, 0x1122334455667788)
        assert mem.read_u64(addr) == 0x1122334455667788

    def test_cross_many_pages(self):
        mem = SparseMemory()
        data = bytes(range(256)) * 64  # 16 KB
        mem.write_bytes(PAGE_SIZE - 100, data)
        assert mem.read_bytes(PAGE_SIZE - 100, len(data)) == data

    def test_resident_pages_grow_on_demand(self):
        mem = SparseMemory()
        assert mem.resident_pages == 0
        mem.write_u64(0x1000, 1)
        assert mem.resident_pages == 1
        mem.write_u64(100 * PAGE_SIZE, 1)
        assert mem.resident_pages == 2

    def test_reads_do_not_allocate(self):
        mem = SparseMemory()
        mem.read_bytes(0x100000, 4096)
        assert mem.resident_pages == 0


class TestBoundsChecks:
    def test_rejects_negative_address(self):
        with pytest.raises(MemoryError_):
            SparseMemory().read_bytes(-1, 8)

    def test_rejects_out_of_range(self):
        mem = SparseMemory(va_bits=46)
        with pytest.raises(MemoryError_):
            mem.write_u64(1 << 46, 1)

    def test_accepts_top_of_range(self):
        mem = SparseMemory(va_bits=46)
        mem.write_u64((1 << 46) - 8, 7)
        assert mem.read_u64((1 << 46) - 8) == 7


@given(
    st.integers(min_value=0, max_value=(1 << 30)),
    st.binary(min_size=1, max_size=512),
)
def test_roundtrip_property(address, data):
    mem = SparseMemory()
    mem.write_bytes(address, data)
    assert mem.read_bytes(address, len(data)) == data


@given(st.integers(min_value=0, max_value=(1 << 30)))
def test_adjacent_writes_do_not_clobber(address):
    mem = SparseMemory()
    mem.write_u64(address, 0xAAAAAAAAAAAAAAAA)
    mem.write_u64(address + 8, 0xBBBBBBBBBBBBBBBB)
    assert mem.read_u64(address) == 0xAAAAAAAAAAAAAAAA

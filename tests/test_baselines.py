"""Baseline mechanism tests: Watchdog, PA, REST, MPX functional models."""

import pytest

from repro.baselines.mpx import (
    AOS_ADDRESSING_COST,
    MPX_ADDRESSING_COST,
    MPXFault,
    MPXRuntime,
)
from repro.baselines.pa import PAFault, PARuntime
from repro.baselines.rest import RedzoneFault, RestRuntime
from repro.baselines.watchdog import WatchdogFault, WatchdogRuntime


class TestWatchdog:
    def test_in_bounds_access(self):
        rt = WatchdogRuntime()
        p = rt.malloc(64)
        rt.store(p, 99)
        assert rt.load(p) == 99

    def test_oob_detected(self):
        rt = WatchdogRuntime()
        p = rt.malloc(64)
        with pytest.raises(WatchdogFault):
            rt.load(p.offset(64))

    def test_metadata_propagates_through_arithmetic(self):
        rt = WatchdogRuntime()
        p = rt.malloc(128)
        q = p.offset(64)
        assert q.base == p.base
        assert q.key == p.key
        rt.store(q, 1)  # still checkable

    def test_uaf_detected_via_lock(self):
        rt = WatchdogRuntime()
        p = rt.malloc(64)
        rt.free(p)
        with pytest.raises(WatchdogFault):
            rt.load(p)

    def test_double_free_detected(self):
        rt = WatchdogRuntime()
        p = rt.malloc(64)
        rt.free(p)
        with pytest.raises(WatchdogFault):
            rt.free(p)

    def test_keys_unique_across_allocations(self):
        rt = WatchdogRuntime()
        assert rt.malloc(32).key != rt.malloc(32).key

    def test_check_counters(self):
        rt = WatchdogRuntime()
        p = rt.malloc(64)
        rt.load(p)
        assert rt.checks == 1


class TestPA:
    def make(self):
        return PARuntime(pac_mode="fast")

    def test_sign_auth_roundtrip(self):
        rt = self.make()
        p = rt.malloc(64)
        signed = rt.pacda(p, modifier=42)
        assert rt.autda(signed, modifier=42) == p

    def test_corruption_detected(self):
        rt = self.make()
        signed = rt.pacda(rt.malloc(64), modifier=42)
        corrupted = signed ^ 0x10  # flip an address bit
        with pytest.raises(PAFault):
            rt.autda(corrupted, modifier=42)

    def test_wrong_modifier_detected(self):
        rt = self.make()
        signed = rt.pacda(rt.malloc(64), modifier=42)
        with pytest.raises(PAFault):
            rt.autda(signed, modifier=43)

    def test_return_address_signing(self):
        rt = self.make()
        lr = rt.pacia(0x400123, sp=0x7FF0)
        assert rt.autia(lr, sp=0x7FF0) == 0x400123
        with pytest.raises(PAFault):
            rt.autia(lr ^ 0x4, sp=0x7FF0)

    def test_no_spatial_protection(self):
        """PA's gap (§II-B): OOB through a legit pointer goes unnoticed."""
        rt = self.make()
        p = rt.malloc(64)
        rt.load(p + 4096)  # no exception

    def test_no_temporal_protection(self):
        rt = self.make()
        p = rt.malloc(64)
        rt.free(p)
        rt.load(p)  # no exception


class TestREST:
    def test_adjacent_overflow_detected(self):
        rt = RestRuntime()
        p = rt.malloc(64)
        with pytest.raises(RedzoneFault):
            rt.load(p + 64)

    def test_underflow_detected(self):
        rt = RestRuntime()
        p = rt.malloc(64)
        with pytest.raises(RedzoneFault):
            rt.store(p - 8, 1)

    def test_nonadjacent_jump_missed(self):
        """The trip-wire blind spot the paper's intro stresses (§I)."""
        rt = RestRuntime()
        p = rt.malloc(64)
        rt.load(p + 64 * 1024)  # sails over the redzone, unnoticed

    def test_quarantined_chunk_detected(self):
        rt = RestRuntime()
        p = rt.malloc(64)
        rt.free(p)
        with pytest.raises(RedzoneFault):
            rt.load(p)

    def test_quarantine_eventually_recycles(self):
        rt = RestRuntime(quarantine_chunks=2)
        p = rt.malloc(64)
        rt.free(p)
        # Push p out of the bounded quarantine with differently-sized
        # chunks (so p's chunk is not immediately reallocated).
        for _ in range(4):
            rt.free(rt.malloc(256))
        rt.load(p)  # recycled out of quarantine: UAF now silent

    def test_in_bounds_ok(self):
        rt = RestRuntime()
        p = rt.malloc(64)
        rt.store(p + 32, 5)
        assert rt.load(p + 32) == 5

    def test_free_unknown_pointer(self):
        rt = RestRuntime()
        with pytest.raises(RedzoneFault):
            rt.free(0x20001000)


class TestMPX:
    def test_bounds_check(self):
        rt = MPXRuntime()
        p = rt.malloc(64)
        slot = 0x7FF000
        rt.bndstx(slot, p, p + 64)
        rt.store(slot, p + 8, 1)
        with pytest.raises(MPXFault):
            rt.load(slot, p + 64)

    def test_missing_bounds_is_unchecked(self):
        """MPX compatibility gap: no bounds -> access allowed."""
        rt = MPXRuntime()
        p = rt.malloc(64)
        rt.load(0x7FF000, p + 4096)  # no bndstx for this slot: silent

    def test_two_level_walk_counts_loads(self):
        rt = MPXRuntime()
        p = rt.malloc(64)
        rt.bndstx(0x7FF000, p, p + 64)
        rt.bndldx(0x7FF000)
        assert rt.table_loads == 2  # BD + BT (Challenge 5)

    def test_addressing_cost_comparison(self):
        """Challenge 5: MPX's walk costs ~4x AOS's add+load."""
        assert MPX_ADDRESSING_COST.total_instructions == 8
        assert AOS_ADDRESSING_COST.total_instructions == 3
        assert MPX_ADDRESSING_COST.memory_loads > AOS_ADDRESSING_COST.memory_loads

"""Cache and hierarchy tests: LRU, write-back, traffic accounting."""


from repro.cache.hierarchy import MemoryHierarchy
from repro.cache.sram import Cache
from repro.config import CacheConfig, MemoryHierarchyConfig


def tiny_cache(size=1024, assoc=2, line=64):
    return Cache(CacheConfig("T", size, assoc, line, 1))


class TestCache:
    def test_miss_then_hit(self):
        c = tiny_cache()
        assert not c.access(0x1000, False).hit
        assert c.access(0x1000, False).hit

    def test_same_line_hits(self):
        c = tiny_cache()
        c.access(0x1000, False)
        assert c.access(0x103F, False).hit

    def test_next_line_misses(self):
        c = tiny_cache()
        c.access(0x1000, False)
        assert not c.access(0x1040, False).hit

    def test_lru_eviction(self):
        c = tiny_cache(size=128, assoc=2, line=64)  # one set, two ways
        c.access(0x0000, False)
        c.access(0x1000, False)
        c.access(0x0000, False)      # refresh way A
        c.access(0x2000, False)      # evicts 0x1000 (LRU)
        assert c.access(0x0000, False).hit
        assert not c.access(0x1000, False).hit

    def test_dirty_eviction_reports_writeback(self):
        c = tiny_cache(size=128, assoc=1, line=64)  # direct-mapped, 2 sets
        c.access(0x0000, True)                      # dirty
        result = c.access(0x0000 + 128, False)      # same set, evicts
        assert result.writeback == 0x0000

    def test_clean_eviction_no_writeback(self):
        c = tiny_cache(size=128, assoc=1, line=64)
        c.access(0x0000, False)
        assert c.access(0x0080, False).writeback is None

    def test_write_marks_dirty_on_hit(self):
        c = tiny_cache(size=128, assoc=1, line=64)
        c.access(0x0000, False)
        c.access(0x0000, True)       # hit, sets dirty
        result = c.access(0x0080, False)
        assert result.writeback == 0x0000

    def test_probe_does_not_perturb(self):
        c = tiny_cache()
        c.access(0x1000, False)
        hits_before = c.stats.hits
        assert c.probe(0x1000)
        assert not c.probe(0x5000)
        assert c.stats.hits == hits_before

    def test_stats(self):
        c = tiny_cache()
        c.access(0x1000, False)
        c.access(0x1000, False)
        assert c.stats.accesses == 2
        assert c.stats.hit_rate == 0.5

    def test_invalidate_all(self):
        c = tiny_cache()
        c.access(0x1000, False)
        c.invalidate_all()
        assert not c.access(0x1000, False).hit


class TestHierarchy:
    def make(self, use_l1b=True):
        return MemoryHierarchy(MemoryHierarchyConfig(), use_l1b=use_l1b)

    def test_l1_hit_latency(self):
        h = self.make()
        h.access_data(0x1000, False)
        assert h.access_data(0x1000, False) == 1

    def test_miss_latency_includes_l2_and_dram(self):
        h = self.make()
        first = h.access_data(0x1000, False)
        assert first == 1 + 8 + 100  # L1 + L2 + DRAM

    def test_l2_hit_after_l1_eviction(self):
        h = self.make()
        h.access_data(0x1000, False)
        # Thrash the L1 set: same index, different tags.
        l1_sets = h.l1d.num_sets
        for i in range(1, 12):
            h.access_data(0x1000 + i * l1_sets * 64, False)
        latency = h.access_data(0x1000, False)
        assert latency == 1 + 8  # L1 miss, L2 hit

    def test_traffic_counts_line_refills(self):
        h = self.make()
        h.access_data(0x1000, False)
        assert h.traffic.l1_l2_bytes == 64
        assert h.traffic.l2_dram_bytes == 64

    def test_hit_adds_no_traffic(self):
        h = self.make()
        h.access_data(0x1000, False)
        t = h.traffic.total_bytes
        h.access_data(0x1000, False)
        assert h.traffic.total_bytes == t

    def test_bounds_route_to_l1b(self):
        h = self.make(use_l1b=True)
        h.access_bounds(0x700000000000, False)
        assert h.l1b.stats.accesses == 1
        assert h.l1d.stats.accesses == 0

    def test_bounds_pollute_l1d_without_l1b(self):
        h = self.make(use_l1b=False)
        h.access_bounds(0x700000000000, False)
        assert h.l1d.stats.accesses == 1

    def test_summary_keys(self):
        h = self.make()
        h.access_data(0x1000, False)
        s = h.summary()
        assert "l1d_hit_rate" in s
        assert "l1_l2_bytes" in s

    def test_dram_access_count(self):
        h = self.make()
        h.access_data(0x1000, False)
        h.access_data(0x1000, False)
        assert h.dram_accesses == 1

"""Streaming-decode memory bound: multi-GB traces must ingest in O(1) RAM.

Builds a ~100MB binary trace (note records with large payloads make the
file big without making decode slow), then asserts with ``tracemalloc``
that a full streaming pass allocates only a small fraction of the file
size.  ``REPRO_STREAM_TEST_MB`` scales the file for heavier local runs.
"""

import os
import tracemalloc

from repro.traces import (
    TraceHeader,
    TraceRecord,
    TraceWriter,
    open_trace,
    trace_digest,
)

#: Default file size; env-overridable (e.g. REPRO_STREAM_TEST_MB=1024).
FILE_MB = int(os.environ.get("REPRO_STREAM_TEST_MB", "100"))
#: Each note payload is 64KiB, so the decoder's working set per record is
#: tiny relative to the file.
NOTE_BYTES = 64 * 1024
#: The decode pass may hold one frame plus interpreter noise — cap its
#: peak at 8MiB, under a tenth of the default file size.
PEAK_BUDGET = 8 * 1024 * 1024


def _build_large_trace(path) -> int:
    notes = (FILE_MB * 1024 * 1024) // (NOTE_BYTES + 5)  # 5 = frame overhead
    payload = "x" * NOTE_BYTES
    with TraceWriter(path, TraceHeader(name="big"), format="binary") as writer:
        writer.write(TraceRecord(kind="obj", obj=0, size=64))
        for _ in range(notes):
            writer.write(TraceRecord(kind="note", text=payload))
        writer.write(TraceRecord(kind="load", obj=0, offset=8))
    return os.path.getsize(path)


def test_streaming_decode_is_bounded(tmp_path):
    path = tmp_path / "big.bin"
    size = _build_large_trace(path)
    assert size >= FILE_MB * 1024 * 1024 * 95 // 100, "fixture too small"

    tracemalloc.start()
    baseline, _ = tracemalloc.get_traced_memory()
    records = 0
    with open_trace(path) as reader:
        for _record in reader:
            records += 1
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    assert records > 1000
    assert peak - baseline < PEAK_BUDGET, (
        f"decoding a {size // (1024 * 1024)}MB trace peaked at "
        f"{(peak - baseline) // (1024 * 1024)}MB — the reader is buffering"
    )


def test_streaming_digest_is_bounded(tmp_path):
    """The cache-key digest hashes in 1MB chunks, never the whole file."""
    path = tmp_path / "big.bin"
    _build_large_trace(path)
    tracemalloc.start()
    baseline, _ = tracemalloc.get_traced_memory()
    digest = trace_digest(path)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert len(digest) == 64
    assert peak - baseline < PEAK_BUDGET

"""Parallel experiment engine + artifact cache tests.

Covers the PR-level guarantees: serial and ``jobs>1`` sweeps are
bit-identical, the persistent cache hits/misses/invalidates correctly
(corrupted entries count as misses), and a parallel fault campaign
resumes from a killed run's checkpoint.
"""

import dataclasses
import json
import pickle

import pytest

from repro.experiments import ArtifactCache, CellSpec, RunSettings, cell_fingerprint
from repro.experiments.common import ExperimentSuite, scaled_config
from repro.experiments.parallel import (
    generate_cell_trace,
    run_cells,
    simulate_cell,
    trace_fingerprint,
)
from repro.faults import Campaign, CampaignConfig, FaultKind

SETTINGS = RunSettings(instructions=4000, seed=7, scale=8)

#: Two workloads x two mechanisms: small enough for a pool on a laptop,
#: wide enough to exercise the deterministic merge.
SMALL_SWEEP = [
    CellSpec(workload, mechanism)
    for workload in ("gobmk", "povray")
    for mechanism in ("baseline", "aos")
]


def payloads(results):
    return {key: dataclasses.asdict(result) for key, result in results.items()}


# --------------------------------------------------------------- fingerprints


class TestFingerprints:
    def test_deterministic(self):
        cell = CellSpec("gcc", "aos")
        assert cell_fingerprint(SETTINGS, cell) == cell_fingerprint(SETTINGS, cell)

    def test_settings_change_invalidates(self):
        cell = CellSpec("gcc", "aos")
        longer = dataclasses.replace(SETTINGS, instructions=8000)
        assert cell_fingerprint(SETTINGS, cell) != cell_fingerprint(longer, cell)

    def test_config_change_invalidates(self):
        plain = CellSpec("gcc", "aos")
        tuned = CellSpec(
            "gcc",
            "aos",
            config=scaled_config("aos", SETTINGS.scale).with_aos_options(
                bwb_enabled=False
            ),
        )
        assert cell_fingerprint(SETTINGS, plain) != cell_fingerprint(SETTINGS, tuned)

    def test_key_is_a_label_not_content(self):
        # ``key`` names the memo slot; the cache is addressed purely by
        # content, so relabelling an identical run must still hit.
        plain = CellSpec("gcc", "aos")
        labelled = CellSpec("gcc", "aos", key="aos-variant")
        assert cell_fingerprint(SETTINGS, plain) == cell_fingerprint(SETTINGS, labelled)

    def test_trace_fingerprint_distinguishes_workloads(self):
        assert trace_fingerprint(SETTINGS, "gcc") != trace_fingerprint(SETTINGS, "mcf")


# ---------------------------------------------------------------- disk cache


class TestArtifactCache:
    def test_result_roundtrip(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        payload = {"cycles": 123, "pipeline": {"mcq_stall_cycles": 4.0}}
        cache.put_result("a" * 64, payload)
        assert cache.get_result("a" * 64) == payload
        assert cache.info() == {"hits": 1, "misses": 0, "stores": 1, "corrupt": 0}

    def test_miss_counted(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        assert cache.get_result("b" * 64) is None
        assert cache.stats.misses == 1

    def test_corrupted_result_is_a_miss_and_removed(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put_result("c" * 64, {"cycles": 1})
        path = tmp_path / "results" / ("c" * 64 + ".json")
        path.write_bytes(b'{"cycles": 1')  # torn write
        assert cache.get_result("c" * 64) is None
        assert cache.stats.corrupt == 1
        assert not path.exists()

    def test_wrong_payload_type_is_corrupt(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        path = tmp_path / "results" / ("d" * 64 + ".json")
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps([1, 2, 3]))
        assert cache.get_result("d" * 64) is None
        assert cache.stats.corrupt == 1
        assert cache.stats.hits == 0

    def test_trace_roundtrip(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        trace = generate_cell_trace(SETTINGS, "gobmk")
        cache.put_trace("e" * 64, trace)
        loaded = cache.get_trace("e" * 64)
        assert pickle.dumps(loaded) == pickle.dumps(trace)

    def test_corrupted_trace_is_a_miss_and_removed(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put_trace("f" * 64, generate_cell_trace(SETTINGS, "gobmk"))
        path = tmp_path / "traces" / ("f" * 64 + ".pkl")
        path.write_bytes(b"\x80\x04 not a pickle")
        assert cache.get_trace("f" * 64) is None
        assert cache.stats.corrupt == 1
        assert not path.exists()


# --------------------------------------------------------------- determinism


class TestParallelDeterminism:
    def test_serial_vs_jobs4_bit_identical(self):
        serial = run_cells(SETTINGS, SMALL_SWEEP, jobs=1)
        parallel = run_cells(SETTINGS, SMALL_SWEEP, jobs=4)
        assert payloads(serial) == payloads(parallel)

    def test_run_cells_matches_simulate_cell(self):
        cell = CellSpec("gobmk", "aos")
        direct = simulate_cell(SETTINGS, cell)
        via_engine = run_cells(SETTINGS, [cell], jobs=2)[cell.cache_key]
        assert dataclasses.asdict(direct) == dataclasses.asdict(via_engine)

    def test_suite_ensure_cells_matches_result(self):
        lazy = ExperimentSuite(SETTINGS)
        eager = ExperimentSuite(SETTINGS, jobs=4)
        eager.ensure_cells(SMALL_SWEEP)
        for cell in SMALL_SWEEP:
            workload, key = cell.cache_key
            assert dataclasses.asdict(
                lazy.result(workload, cell.mechanism)
            ) == dataclasses.asdict(eager.result(workload, cell.mechanism))


# ----------------------------------------------------------- suite-level cache


class TestSuiteCache:
    def test_cold_then_warm_rerun(self, tmp_path):
        cold = ExperimentSuite(SETTINGS, cache=tmp_path)
        cold.ensure_cells(SMALL_SWEEP)
        reference = cold.result_payloads()
        assert cold.cache.stats.stores >= len(SMALL_SWEEP)

        warm = ExperimentSuite(SETTINGS, cache=tmp_path)
        warm.ensure_cells(SMALL_SWEEP)
        assert warm.result_payloads() == reference
        assert warm.cache.stats.hits == len(SMALL_SWEEP)
        assert warm.cache.stats.misses == 0
        # Nothing was re-lowered: every cell came straight off disk.
        assert warm.cache_info()["lowered"] == 0

    def test_settings_change_misses(self, tmp_path):
        ExperimentSuite(SETTINGS, cache=tmp_path).ensure_cells(SMALL_SWEEP)
        changed = dataclasses.replace(SETTINGS, instructions=6000)
        suite = ExperimentSuite(changed, cache=tmp_path)
        suite.ensure_cells(SMALL_SWEEP)
        assert suite.cache.stats.hits == 0
        assert suite.cache.stats.misses == len(SMALL_SWEEP)

    def test_corrupted_entry_resimulated(self, tmp_path):
        cold = ExperimentSuite(SETTINGS, cache=tmp_path)
        cold.ensure_cells(SMALL_SWEEP)
        reference = cold.result_payloads()
        victim = tmp_path / "results" / (
            cell_fingerprint(SETTINGS, SMALL_SWEEP[0]) + ".json"
        )
        victim.write_bytes(b"garbage")

        warm = ExperimentSuite(SETTINGS, cache=tmp_path)
        warm.ensure_cells(SMALL_SWEEP)
        assert warm.result_payloads() == reference
        assert warm.cache.stats.corrupt == 1

    def test_cached_trace_reused(self, tmp_path):
        first = ExperimentSuite(SETTINGS, cache=tmp_path)
        trace = first.trace("gobmk")
        second = ExperimentSuite(SETTINGS, cache=tmp_path)
        assert pickle.dumps(second.trace("gobmk")) == pickle.dumps(trace)
        assert second.cache.stats.hits == 1


# ----------------------------------------------------------- parallel campaign


def campaign_config(**overrides):
    defaults = dict(
        workloads=("gcc",),
        mechanisms=("aos",),
        kinds=tuple(FaultKind)[:4],
        locations=1,
        objects=8,
        churn=2,
        timeout_s=30.0,
    )
    defaults.update(overrides)
    return CampaignConfig(**defaults)


def taxonomy(outcome):
    """The deterministic projection of a campaign (drops wall-clock noise)."""
    return [
        (r.workload, r.mechanism, r.kind, r.location, r.outcome.value, r.detections)
        for r in outcome.results
    ]


class TestParallelCampaign:
    def test_jobs2_matches_serial(self):
        config = campaign_config()
        serial = Campaign(config).run()
        parallel = Campaign(config).run(jobs=2)
        assert taxonomy(serial) == taxonomy(parallel)

    def test_parallel_resume_after_kill(self, tmp_path):
        config = campaign_config()
        checkpoint = tmp_path / "campaign.jsonl"
        seen = []

        def die_after_two(result, resumed):
            seen.append(result)
            if len(seen) == 2:
                raise KeyboardInterrupt("simulated kill")

        with pytest.raises(KeyboardInterrupt):
            Campaign(config, checkpoint=checkpoint).run(progress=die_after_two)

        resumed = Campaign(config, checkpoint=checkpoint).run(jobs=2)
        assert resumed.resumed == 2
        assert taxonomy(resumed) == taxonomy(Campaign(config).run())

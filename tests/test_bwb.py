"""Bounds way buffer tests (§V-C, Algorithm 2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bwb import BoundsWayBuffer, bwb_tag


class TestTag:
    def test_fields_packed(self):
        tag = bwb_tag(address=0x20001F80, ahc=1, pac=0xABCD)
        assert tag & 0x3 == 1                      # AHC in the low bits
        assert (tag >> 16) & 0xFFFF == 0xABCD      # PAC in the high bits

    def test_window_by_ahc(self):
        addr = 0x20001F80
        t1 = bwb_tag(addr, 1, 0)
        t2 = bwb_tag(addr, 2, 0)
        t3 = bwb_tag(addr, 3, 0)
        assert (t1 >> 2) & 0x3FFF == (addr >> 7) & 0x3FFF
        assert (t2 >> 2) & 0x3FFF == (addr >> 10) & 0x3FFF
        assert (t3 >> 2) & 0x3FFF == (addr >> 12) & 0x3FFF

    def test_rejects_ahc_zero(self):
        with pytest.raises(ValueError):
            bwb_tag(0x1000, 0, 0)

    @given(
        st.integers(min_value=0, max_value=(1 << 26) - 1).map(lambda a: a & ~0x7F),
        st.integers(min_value=0, max_value=127),
    )
    def test_small_object_addresses_share_tag(self, base, offset):
        """Alg. 2's purpose: all addresses inside one AHC-1 (~64-128B
        aligned) object map to the same tag."""
        assert bwb_tag(base, 1, 0x12) == bwb_tag(base + offset, 1, 0x12)

    def test_is_32_bit(self):
        tag = bwb_tag((1 << 26) - 1, 3, 0xFFFF)
        assert tag < (1 << 32)


class TestBuffer:
    def test_miss_then_hit(self):
        bwb = BoundsWayBuffer(entries=4)
        assert bwb.lookup(0x1234) is None
        bwb.update(0x1234, 3)
        assert bwb.lookup(0x1234) == 3

    def test_update_existing(self):
        bwb = BoundsWayBuffer(entries=4)
        bwb.update(0x1, 1)
        bwb.update(0x1, 2)
        assert bwb.lookup(0x1) == 2
        assert len(bwb) == 1

    def test_lru_eviction(self):
        bwb = BoundsWayBuffer(entries=2, eviction="lru")
        bwb.update(0x1, 0)
        bwb.update(0x2, 0)
        bwb.lookup(0x1)        # refresh 0x1
        bwb.update(0x3, 0)     # evicts 0x2
        assert bwb.lookup(0x1) == 0
        assert bwb.lookup(0x2) is None

    def test_fifo_eviction(self):
        bwb = BoundsWayBuffer(entries=2, eviction="fifo")
        bwb.update(0x1, 0)
        bwb.update(0x2, 0)
        bwb.lookup(0x1)        # does not refresh under FIFO
        bwb.update(0x3, 0)     # evicts 0x1 (oldest insertion)
        assert bwb.lookup(0x1) is None

    def test_capacity_respected(self):
        bwb = BoundsWayBuffer(entries=8)
        for i in range(100):
            bwb.update(i, 0)
        assert len(bwb) == 8

    def test_hit_rate_stats(self):
        bwb = BoundsWayBuffer(entries=4)
        bwb.lookup(0x1)
        bwb.update(0x1, 0)
        bwb.lookup(0x1)
        assert bwb.stats.lookups == 2
        assert bwb.stats.hits == 1
        assert bwb.stats.hit_rate == 0.5

    def test_flush(self):
        bwb = BoundsWayBuffer(entries=4)
        bwb.update(0x1, 0)
        bwb.flush()
        assert bwb.lookup(0x1) is None

    def test_invalidate(self):
        bwb = BoundsWayBuffer(entries=4)
        bwb.update(0x1, 0)
        bwb.invalidate(0x1)
        assert bwb.lookup(0x1) is None

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            BoundsWayBuffer(entries=0)
        with pytest.raises(ValueError):
            BoundsWayBuffer(entries=4, eviction="mru")


class TestStaleHintPinned:
    """Pin the max_way fix: a stored way hint the current HBT geometry
    cannot use is a miss (and is evicted), never a counted hit."""

    def test_unusable_hint_is_a_miss(self):
        bwb = BoundsWayBuffer(entries=4)
        bwb.update(0x1, 5)
        assert bwb.lookup(0x1, max_way=2) is None
        assert bwb.stats.lookups == 1
        assert bwb.stats.hits == 0

    def test_unusable_hint_is_evicted(self):
        bwb = BoundsWayBuffer(entries=4)
        bwb.update(0x1, 5)
        bwb.lookup(0x1, max_way=2)
        assert bwb.peek(0x1) is None  # gone, not just skipped

    def test_usable_hint_still_hits(self):
        bwb = BoundsWayBuffer(entries=4)
        bwb.update(0x1, 1)
        assert bwb.lookup(0x1, max_way=2) == 1
        assert bwb.stats.hits == 1

    def test_boundary_way_equal_to_max_is_unusable(self):
        bwb = BoundsWayBuffer(entries=4)
        bwb.update(0x1, 2)
        assert bwb.lookup(0x1, max_way=2) is None  # ways are 0..max_way-1

    def test_no_max_way_preserves_legacy_behaviour(self):
        bwb = BoundsWayBuffer(entries=4)
        bwb.update(0x1, 9)
        assert bwb.lookup(0x1) == 9
        assert bwb.stats.hits == 1

    def test_hit_rate_reflects_consumed_hints_only(self):
        bwb = BoundsWayBuffer(entries=4)
        bwb.update(0x1, 5)     # stale after a (simulated) resize shrink
        bwb.update(0x2, 0)     # usable
        bwb.lookup(0x1, max_way=2)
        bwb.lookup(0x2, max_way=2)
        assert bwb.stats.hit_rate == 0.5

"""Tests for the extended comparison and ablation drivers."""

import pytest

from repro.experiments.ablations import (
    ablation_entropy,
    ablation_forwarding,
    ablation_quarantine,
)
from repro.experiments.common import ExperimentSuite, RunSettings
from repro.experiments.extended import run_extended_comparison


@pytest.fixture(scope="module")
def suite():
    return ExperimentSuite(RunSettings(instructions=10_000, seed=21, scale=8))


class TestExtendedComparison:
    def test_mte_runs_next_to_aos(self, suite):
        result = run_extended_comparison(suite, workloads=["gobmk", "povray"])
        for row in result.rows.values():
            assert set(row) == {"mte", "aos", "pa+aos"}
            for value in row.values():
                assert 0.5 < value < 5.0

    def test_format_includes_entropy_line(self, suite):
        result = run_extended_comparison(suite, workloads=["gobmk"])
        text = result.format()
        assert "45425" in text
        assert "93.8%" in text


class TestAblationDrivers:
    def test_quarantine_ablation_runs(self, suite):
        """Sanity only at this window size — the directional §IV-C claim
        (quarantine > no-quarantine) is asserted by bench_ablations on a
        full-size malloc-storm window, where it is above the noise."""
        result = ablation_quarantine(suite, workload="povray")
        for row in result.rows.values():
            assert 0.5 < row["norm.time"] < 3.0
        assert "aos (re-sign)" in result.rows
        assert result.rows["rest (quarantine)"]["instr.ovh"] >= 0

    def test_forwarding_counts_events(self, suite):
        result = ablation_forwarding(suite, workload="povray")
        assert result.rows["forwarding"]["forwards"] > 0
        assert result.rows["no forwarding"]["forwards"] == 0

    def test_entropy_rows_are_static(self):
        result = ablation_entropy()
        assert result.rows["16-bit (AOS)"]["tries@50%"] == 45425
        text = result.format()
        assert "4-bit (MTE)" in text


class TestRESTLoweringUnits:
    def test_token_stores_emitted(self, suite):
        from repro.compiler.passes import RESTLowering

        trace = suite.trace("povray")
        lowered = RESTLowering(trace, suite.config_for("rest")).lower()
        tokens = [i for i in lowered.program if i.meta == "token"]
        mallocs = sum(1 for e in trace.events if e[0] == "m")
        assert len(tokens) >= 2 * mallocs  # two redzones per allocation

    def test_quarantine_defers_frees(self, suite):
        from repro.compiler.passes import RESTLowering

        trace = suite.trace("povray")
        with_q = RESTLowering(trace, suite.config_for("rest"), quarantine=True)
        with_q.lower()
        # Some chunks must still be parked in the pool at program end.
        assert len(with_q._pool) > 0

"""Compiler pass tests: mechanism lowerings and instrumentation sequences."""

import pytest

from repro.compiler import lower_trace
from repro.isa.instructions import Op
from repro.workloads import generate_trace, get_profile

MECHANISMS = ["baseline", "watchdog", "pa", "aos", "pa+aos"]


@pytest.fixture(scope="module")
def trace():
    return generate_trace(get_profile("povray"), instructions=15_000, seed=11)


@pytest.fixture(scope="module")
def lowered(trace):
    return {m: lower_trace(trace, m) for m in MECHANISMS}


class TestCommonProperties:
    def test_all_mechanisms_lower(self, lowered):
        for mech, low in lowered.items():
            assert len(low.program) > 0
            assert low.mechanism == mech

    def test_baseline_has_no_instrumentation(self, lowered):
        hist = lowered["baseline"].program.op_histogram()
        for op in (Op.PACMA, Op.BNDSTR, Op.BNDCLR, Op.WCHK, Op.PACIA, Op.AUTDA):
            assert op not in hist

    def test_same_trace_same_heap_addresses(self, trace):
        """Every mechanism must see the identical address stream."""
        base = lower_trace(trace, "baseline")
        wd = lower_trace(trace, "watchdog")

        def heap_loads(program):
            return [
                i.address for i in program
                if i.op is Op.LOAD and 0x20000000 <= i.address < (1 << 33)
            ][:200]

        assert heap_loads(base.program)[:50] == heap_loads(wd.program)[:50]

    def test_instruction_overhead_ordering(self, lowered):
        """Watchdog must add the most dynamic instructions (§I: +44%)."""
        base = len(lowered["baseline"].program)
        overhead = {m: len(low.program) / base for m, low in lowered.items()}
        assert overhead["watchdog"] > overhead["pa+aos"] >= overhead["aos"]
        assert overhead["watchdog"] > 1.15
        assert overhead["aos"] < 1.10


class TestAOSLowering:
    def test_fig7a_malloc_sequence(self, lowered):
        """malloc is followed by pacma then bndstr."""
        program = lowered["aos"].program
        ops = [inst.op for inst in program]
        pacma_sites = [
            i for i, op in enumerate(ops[:-1])
            if op is Op.PACMA and ops[i + 1] is Op.BNDSTR
        ]
        assert pacma_sites, "no pacma;bndstr pairs found"

    def test_fig7b_free_sequence(self, lowered):
        """free is bndclr ; xpacm ; (allocator) ; pacma."""
        program = lowered["aos"].program
        ops = [inst.op for inst in program]
        for i, op in enumerate(ops):
            if op is Op.BNDCLR:
                assert ops[i + 1] is Op.XPACM
                window = ops[i + 2 : i + 8]
                assert Op.PACMA in window
                break
        else:
            pytest.fail("no bndclr found")

    def test_heap_accesses_signed(self, lowered):
        low = lowered["aos"]
        va_mask = low.pointer_layout.va_mask
        heap_loads = [
            i for i in low.program
            if i.op is Op.LOAD and 0x20000000 <= (i.address & va_mask) < (1 << 33)
        ]
        signed = [i for i in heap_loads if i.address > va_mask]
        assert len(signed) / len(heap_loads) > 0.95

    def test_hbt_prewarmed_with_preamble(self, lowered, trace):
        hbt = lowered["aos"].hbt
        assert hbt.total_records() >= len(trace.preamble)

    def test_hbt_factory_returns_fresh_copies(self, lowered):
        a = lowered["aos"].hbt
        b = lowered["aos"].hbt
        assert a is not b
        assert a.total_records() == b.total_records()

    def test_pac_bits_scaled_with_live_set(self, trace):
        low = lower_trace(trace, "aos")
        assert low.pointer_layout.pac_bits == 16 - 3  # scale 8

    def test_pa_aos_adds_autm_and_pacia(self, lowered):
        hist = lowered["pa+aos"].program.op_histogram()
        assert hist.get(Op.AUTM, 0) > 0
        assert hist.get(Op.PACIA, 0) > 0
        aos_hist = lowered["aos"].program.op_histogram()
        assert Op.AUTM not in aos_hist


class TestWatchdogLowering:
    def test_wchk_before_heap_accesses(self, lowered):
        program = lowered["watchdog"].program
        ops = [inst.op for inst in program]
        wchk = sum(1 for op in ops if op is Op.WCHK)
        assert wchk > 0
        # Every heap access is preceded by a check µop.
        for i, op in enumerate(ops):
            if op is Op.WCHK:
                assert ops[i + 1] in (Op.LOAD, Op.STORE)

    def test_wmeta_propagation_instructions(self, lowered):
        hist = lowered["watchdog"].program.op_histogram()
        assert hist.get(Op.WMETA, 0) > 0


class TestPALowering:
    def test_call_ret_signing(self, lowered):
        hist = lowered["pa"].program.op_histogram()
        assert hist.get(Op.PACIA, 0) > 0
        assert hist.get(Op.AUTIA, 0) > 0

    def test_data_pointer_signing(self, lowered):
        hist = lowered["pa"].program.op_histogram()
        assert hist.get(Op.AUTDA, 0) > 0
        assert hist.get(Op.PACDA, 0) > 0

    def test_no_bounds_ops(self, lowered):
        hist = lowered["pa"].program.op_histogram()
        assert Op.BNDSTR not in hist


class TestMTELowering:
    def test_colouring_stores_at_malloc(self, trace):
        low = lower_trace(trace, "mte")
        base = lower_trace(trace, "baseline")
        # MTE adds IRG + STG colouring around allocation events only.
        assert len(low.program) > len(base.program)
        stg = [i for i in low.program if i.op is Op.STORE and i.meta == "stg"]
        mallocs = sum(1 for e in trace.events if e[0] == "m")
        assert len(stg) >= mallocs  # at least one colouring store per malloc

    def test_no_per_access_instrumentation(self, trace):
        """Tag checks travel with the access: no extra per-access µops."""
        low = lower_trace(trace, "mte")
        hist = low.program.op_histogram()
        assert Op.WCHK not in hist
        assert Op.BNDSTR not in hist

    def test_colouring_scales_with_object_size(self):
        from repro.workloads import generate_trace, get_profile
        import dataclasses

        profile = dataclasses.replace(
            get_profile("povray"),
            size_classes=((4096, 1.0),),
            mallocs_per_kinst=2.0,
        )
        big = lower_trace(generate_trace(profile, instructions=10_000, seed=2), "mte")
        small_profile = dataclasses.replace(profile, size_classes=((32, 1.0),))
        small = lower_trace(
            generate_trace(small_profile, instructions=10_000, seed=2), "mte"
        )
        big_stg = sum(1 for i in big.program if i.meta == "stg")
        small_stg = sum(1 for i in small.program if i.meta == "stg")
        assert big_stg > small_stg * 4


def test_unknown_mechanism(trace):
    from repro.errors import WorkloadError

    with pytest.raises(WorkloadError):
        lower_trace(trace, "cheri")

"""ScenarioCoverage roll-ups and the coverage-vs-overhead Pareto join."""

import pytest

from repro.adversary import ChaosCampaign, ChaosConfig
from repro.experiments import run_security_pareto
from repro.experiments.pareto import TIMED_MECHANISMS
from repro.stats import ScenarioCoverage


def record(mechanism, scenario="s", category="spatial",
           expected="must-detect", observed="detected", verdict="as-expected"):
    return {
        "mechanism": mechanism,
        "scenario": scenario,
        "category": category,
        "expected": expected,
        "observed": observed,
        "verdict": verdict,
    }


def coverage_of(*records):
    coverage = ScenarioCoverage()
    for item in records:
        coverage.add_record(item)
    return coverage


class TestRollups:
    def test_detection_rate_excludes_unsupported(self):
        coverage = coverage_of(
            record("pa", scenario="a"),
            record("pa", scenario="b", observed="undetected",
                   expected="known-escape", verdict="escape-confirmed"),
            record("pa", scenario="c", observed="unsupported",
                   expected="unsupported", verdict="unmodeled"),
        )
        # 1 detected of 2 modeled; the unsupported cell says nothing.
        assert coverage.detection_rate("pa") == 0.5
        assert len(coverage.modeled("pa")) == 2

    def test_crashes_count_against_detection(self):
        coverage = coverage_of(
            record("aos", scenario="a"),
            record("aos", scenario="b", observed="crashed",
                   verdict="robustness-bug"),
            record("aos", scenario="c", observed="timed-out",
                   verdict="robustness-bug"),
        )
        # No credit for runs that never produced a verdict.
        assert coverage.detection_rate("aos") == pytest.approx(1 / 3)

    def test_must_detect_rate(self):
        coverage = coverage_of(
            record("mte", scenario="a"),
            record("mte", scenario="b", expected="may-detect",
                   observed="undetected"),
            record("mte", scenario="c", observed="undetected",
                   verdict="missed-detection"),
        )
        assert coverage.must_detect_rate("mte") == 0.5
        # A mechanism with no required cells trivially satisfies the oracle.
        assert coverage.must_detect_rate("baseline") == 1.0

    def test_escapes_are_named(self):
        coverage = coverage_of(
            record("aos", scenario="ahc-zero-escape", expected="known-escape",
                   observed="undetected", verdict="escape-confirmed"),
        )
        assert coverage.escapes("aos") == ["ahc-zero-escape"]
        assert coverage.escapes("pa+aos") == []

    def test_by_category_maps_undetected_to_silent(self):
        coverage = coverage_of(
            record("aos", scenario="a", category="temporal"),
            record("aos", scenario="b", category="temporal",
                   expected="known-escape", observed="undetected",
                   verdict="escape-confirmed"),
        )
        breakdown = coverage.by_category("aos")
        assert breakdown.rate(["temporal"]) == 0.5
        assert breakdown.counts["temporal"]["silent"] == 1

    def test_format_table_lists_every_mechanism(self):
        coverage = ScenarioCoverage.from_matrix(
            ChaosCampaign(ChaosConfig.quick()).run()
        )
        table = coverage.format_table()
        for mechanism in ("baseline", "aos", "pa+aos"):
            assert mechanism in table
        assert "must-detect" in table


class TestPareto:
    def test_frontier_marks_non_dominated(self):
        coverage = coverage_of(
            record("baseline", observed="undetected",
                   expected="known-escape", verdict="escape-confirmed"),
            record("aos"),
            record("watchdog"),
        )
        points = coverage.pareto_points(
            {"baseline": 1.0, "aos": 1.08, "watchdog": 2.2}
        )
        by_mech = {p["mechanism"]: p for p in points}
        assert by_mech["baseline"]["frontier"]   # cheapest
        assert by_mech["aos"]["frontier"]        # full coverage, cheap
        # watchdog: same coverage as aos at higher overhead — dominated.
        assert not by_mech["watchdog"]["frontier"]
        # sorted by overhead for plotting
        assert [p["mechanism"] for p in points] == ["baseline", "aos", "watchdog"]

    def test_mechanisms_without_overhead_are_skipped(self):
        coverage = coverage_of(record("aos"), record("cheri"))
        points = coverage.pareto_points({"aos": 1.1})
        assert [p["mechanism"] for p in points] == ["aos"]

    def test_run_security_pareto_joins_suite_overheads(self):
        from repro.experiments.common import ExperimentSuite, RunSettings

        matrix = ChaosCampaign(
            ChaosConfig(
                scenarios=("heap-overflow-adjacent", "ahc-zero-escape"),
                mechanisms=("baseline", "aos", "cheri"),
            )
        ).run()
        coverage = ScenarioCoverage.from_matrix(matrix)
        suite = ExperimentSuite(RunSettings(instructions=3000))
        result = run_security_pareto(coverage, suite, workloads=["gcc"])
        by_mech = {p["mechanism"]: p for p in result.points}
        assert by_mech["baseline"]["overhead"] == pytest.approx(1.0)
        assert by_mech["aos"]["overhead"] > 1.0
        # cheri has no timing lowering: coverage-only, never silently dropped.
        assert "cheri" in result.untimed
        assert "cheri" in result.format()
        payload = result.to_payload()
        assert payload["workloads"] == ["gcc"]
        assert {p["mechanism"] for p in payload["points"]} <= set(TIMED_MECHANISMS)

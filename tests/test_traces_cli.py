"""CLI tests for the trace frontend: trace-export / trace-import / --trace."""

import pytest

from repro.cli import main


@pytest.fixture
def exported(tmp_path):
    """A small synthetic export (path, workload) ready to re-ingest."""
    path = tmp_path / "bzip2.trace.jsonl"
    code = main([
        "trace-export", "bzip2", "--instructions", "1200",
        "--trace-file", str(path),
    ])
    assert code == 0
    return path


class TestTraceExport:
    def test_writes_announced_file(self, tmp_path, capsys):
        path = tmp_path / "bzip2.trace.jsonl"
        assert main([
            "trace-export", "bzip2", "--instructions", "1200",
            "--trace-file", str(path),
        ]) == 0
        out = capsys.readouterr().out
        assert path.exists()
        assert "exported bzip2" in out
        assert "sha256:" in out

    def test_binary_format(self, tmp_path, capsys):
        path = tmp_path / "t.bin"
        assert main([
            "trace-export", "bzip2", "--instructions", "1200",
            "--trace-file", str(path), "--trace-format", "binary",
        ]) == 0
        assert path.read_bytes().startswith(b"RPTRACE0")

    def test_unknown_workload_exits_2(self, capsys):
        assert main(["trace-export", "nope"]) == 2
        assert "unknown workload" in capsys.readouterr().err


class TestTraceImport:
    def test_simulates_and_verifies_roundtrip(self, exported, capsys):
        code = main([
            "trace-import", str(exported), "--instructions", "1200",
            "--no-cache", "--verify-roundtrip",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "schema v1" in out
        assert "simulated trace:bzip2.trace under aos" in out
        assert "result-digest:" in out
        assert "round-trip: byte-identical" in out

    def test_second_run_hits_cache(self, exported, tmp_path, capsys):
        cache = ["--cache-dir", str(tmp_path / "cache")]
        assert main(["trace-import", str(exported)] + cache) == 0
        first = capsys.readouterr().out
        assert "0 hits" in first
        assert main(["trace-import", str(exported)] + cache) == 0
        second = capsys.readouterr().out
        assert "2 hits, 0 misses" in second
        # Determinism across runs: identical result digests.
        digest = [
            line for line in first.splitlines()
            if line.startswith("result-digest")
        ]
        assert digest == [
            line for line in second.splitlines()
            if line.startswith("result-digest")
        ]

    def test_missing_file_exits_2(self, capsys):
        assert main(["trace-import", "/nonexistent/t.jsonl"]) == 2
        assert "no such trace file" in capsys.readouterr().err

    def test_missing_argument_exits_2(self, capsys):
        assert main(["trace-import"]) == 2
        assert "requires a trace file" in capsys.readouterr().err

    def test_malformed_file_exits_2_with_named_error(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"format":"repro-trace","schema_version":99}\n')
        assert main(["trace-import", str(path), "--no-cache"]) == 2
        err = capsys.readouterr().err
        assert "TraceVersionError" in err

    def test_verify_roundtrip_needs_provenance(self, tmp_path, capsys):
        from repro.traces import TraceHeader, TraceRecord, TraceWriter

        path = tmp_path / "external.jsonl"
        with TraceWriter(path, TraceHeader(name="ext")) as writer:
            writer.write(TraceRecord(kind="obj", obj=0, size=64))
            writer.write(TraceRecord(kind="load", obj=0, offset=0))
        code = main([
            "trace-import", str(path), "--no-cache", "--verify-roundtrip",
        ])
        assert code == 2
        assert "provenance" in capsys.readouterr().err


class TestTraceFlagOnTimingArtifacts:
    def test_fig14_over_ingested_trace(self, exported, capsys):
        code = main([
            "fig14", "--trace", str(exported),
            "--instructions", "1200", "--no-cache",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "ingested trace" in out
        assert "trace:bzip2.trace" in out

    def test_bad_trace_flag_exits_2(self, capsys):
        assert main([
            "fig14", "--trace", "/nonexistent/t.jsonl", "--no-cache",
        ]) == 2
        assert "no such trace file" in capsys.readouterr().err


def test_all_excludes_operational_artifacts():
    """`all` must skip the file-writing / exit-code-owning faces; this
    pins the exclusion list so new operational artifacts cannot silently
    break `python -m repro all` again (serve once did)."""
    from repro.cli import ARTIFACTS, OPERATIONAL_ARTIFACTS, run_artifact

    assert OPERATIONAL_ARTIFACTS <= set(ARTIFACTS)
    swept = [n for n in ARTIFACTS if n not in OPERATIONAL_ARTIFACTS]
    # Every swept artifact must be one run_artifact can dispatch — the
    # operational ones raise ValueError there, which is the bug class.
    import inspect

    source = inspect.getsource(run_artifact)
    for name in swept:
        assert f'"{name}"' in source, f"all would crash on {name!r}"

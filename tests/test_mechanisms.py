"""Mechanism plugin registry: round-trips, strict parsing, new baselines.

The registry is process-wide state, so every test that registers a dummy
mechanism unregisters it in a ``finally`` — the builtin twelve must be
exactly what every other test file sees.
"""

import importlib.util
import pathlib

import pytest

from repro.adversary.chaos import ChaosCampaign, ChaosConfig, run_scenario_cell
from repro.adversary.scenarios import SCENARIOS, build_scenario, parse_scenarios
from repro.baselines.cryptsan import CryptSanFault, CryptSanRuntime
from repro.baselines.pacsan import PACSanFault, PACSanRuntime
from repro.baselines.pacstack import PACStackFault, PACStackRuntime
from repro.baselines.pactight import PACTightFault, PACTightRuntime
from repro.compiler.passes import resolve_lowering
from repro.errors import WorkloadError
from repro.experiments.common import RunSettings
from repro.experiments.parallel import CellSpec, cell_fingerprint
from repro.experiments.pareto import timed_mechanisms
from repro.mechanisms import (
    REGISTRY,
    MechanismRegistryError,
    MechanismSpec,
    ScenarioOracle,
    UnknownMechanismError,
    parse_mechanism,
    parse_mechanisms,
    register_mechanism,
    registry_fingerprint,
)
from repro.security.adapters import (
    MECHANISM_ADAPTERS,
    BaselineAdapter,
    PAAdapter,
    make_adapter,
)

BUILTIN = (
    "baseline", "rest", "pa", "mte", "cheri", "watchdog", "aos", "pa+aos",
    "cryptsan", "pacsan", "pactight", "pacstack",
)


class DummyAdapter(BaselineAdapter):
    name = "dummy"


def dummy_spec(**overrides) -> MechanismSpec:
    kwargs = dict(
        name="dummy",
        factory=DummyAdapter,
        description="test-only plugin",
        lowering="baseline",
        kernel=True,
        cache_token="dummy-v1",
    )
    kwargs.update(overrides)
    return MechanismSpec(**kwargs)


# ------------------------------------------------------------- enumeration


class TestBuiltinRegistry:
    def test_canonical_order(self):
        assert tuple(REGISTRY.names()) == BUILTIN

    def test_every_spec_constructs_its_adapter(self):
        for name in REGISTRY.names():
            adapter = make_adapter(name)
            assert adapter.name == name

    def test_mapping_view_is_live_and_read_only(self):
        assert set(MECHANISM_ADAPTERS) == set(BUILTIN)
        assert len(MECHANISM_ADAPTERS) == len(BUILTIN)
        assert "aos" in MECHANISM_ADAPTERS
        with pytest.raises(TypeError):
            MECHANISM_ADAPTERS["rogue"] = object

    def test_cheri_is_the_only_untimed_builtin(self):
        assert REGISTRY.untimed_names() == ["cheri"]
        assert "cheri" not in REGISTRY.timed_names()
        assert set(REGISTRY.timed_names(kernel_only=True)) == set(BUILTIN) - {
            "cheri"
        }

    def test_fingerprint_is_stable_hex16(self):
        first = registry_fingerprint()
        assert first == registry_fingerprint()
        assert len(first) == 16
        int(first, 16)  # hex digest prefix

    def test_detection_union_covers_every_spec(self):
        union = REGISTRY.detection_exceptions()
        for spec in REGISTRY.specs():
            for exc in spec.detects:
                assert exc in union


# ----------------------------------------------------------- strict errors


class TestStrictErrors:
    def test_unknown_spec_lists_choices(self):
        with pytest.raises(UnknownMechanismError, match="choose from: baseline"):
            REGISTRY.spec("sgx")

    def test_make_adapter_unknown_is_not_a_bare_keyerror(self):
        with pytest.raises(UnknownMechanismError):
            make_adapter("sgx")

    def test_parse_mechanism_strict(self):
        assert parse_mechanism("aos") == "aos"
        with pytest.raises(UnknownMechanismError, match="pactight"):
            parse_mechanism("pactite")

    def test_parse_mechanisms_empty_means_all(self):
        assert parse_mechanisms(None) == list(BUILTIN)
        assert parse_mechanisms(()) == list(BUILTIN)
        assert parse_mechanisms(["pa", "aos"]) == ["pa", "aos"]

    def test_duplicate_name_raises(self):
        with pytest.raises(MechanismRegistryError, match="already registered"):
            REGISTRY.register(
                dummy_spec(name="baseline", cache_token="rogue-v1")
            )

    def test_cache_token_collision_raises(self):
        with pytest.raises(MechanismRegistryError, match="cache token"):
            REGISTRY.register(dummy_spec(cache_token="aos-v1"))

    def test_unregister_unknown_raises(self):
        with pytest.raises(MechanismRegistryError, match="cannot unregister"):
            REGISTRY.unregister("sgx")

    def test_spec_requires_cache_token(self):
        with pytest.raises(MechanismRegistryError, match="cache_token"):
            MechanismSpec(name="x", factory=DummyAdapter, cache_token="")

    def test_kernel_requires_lowering(self):
        with pytest.raises(MechanismRegistryError, match="kernel=True"):
            MechanismSpec(
                name="x", factory=DummyAdapter, cache_token="x-v1", kernel=True
            )

    def test_cli_rejects_unknown_mechanism_with_exit_2(self, capsys):
        from repro.cli import main

        assert main(["trace", "--mechanism", "bogus"]) == 2
        assert "choose from" in capsys.readouterr().err
        assert main(["attack", "--mechanisms", "aos", "bogus"]) == 2


# ------------------------------------------------------------- round-trips


class TestDummyPluginRoundTrip:
    """A dummy registered via the decorator shows up everywhere at once."""

    def test_dummy_joins_every_enumeration(self):
        baseline_cell = cell_fingerprint(RunSettings(), CellSpec("gcc", "baseline"))
        before = registry_fingerprint()

        @register_mechanism(
            "dummy",
            description="test-only plugin",
            lowering="baseline",
            kernel=True,
            cache_token="dummy-v1",
            oracle=ScenarioOracle(),
        )
        class _Dummy(BaselineAdapter):
            name = "dummy"

        try:
            # CLI choices.
            assert parse_mechanism("dummy") == "dummy"
            assert "dummy" in parse_mechanisms(None)
            # Live adapters view + factory.
            assert "dummy" in MECHANISM_ADAPTERS
            assert make_adapter("dummy").name == "dummy"
            # Lowering alias resolves to the baseline timing model.
            assert resolve_lowering("dummy") == "baseline"
            assert "dummy" in timed_mechanisms()
            # Chaos sweep: the default config picks the dummy up at run
            # time (serial run — worker processes re-import builtins only).
            config = ChaosConfig(scenarios=("double-free",))
            assert "dummy" in config.mechanism_names()
            matrix = ChaosCampaign(config).run()
            cell = matrix.cell("double-free", "dummy")
            assert cell is not None and cell.verdict != "missed-detection"
            # Cache fingerprints: the dummy's cells are keyed by its own
            # token, and the registry fingerprint itself changed.
            dummy_cell = cell_fingerprint(RunSettings(), CellSpec("gcc", "dummy"))
            assert dummy_cell != baseline_cell
            assert registry_fingerprint() != before
        finally:
            REGISTRY.unregister("dummy")

        assert "dummy" not in MECHANISM_ADAPTERS
        assert registry_fingerprint() == before

    def test_oracle_rows_resolve_for_plugins(self):
        REGISTRY.register(dummy_spec())
        try:
            row = REGISTRY.expectations("double-free", "temporal")
            assert row["dummy"].value == "known-escape"
            instance = build_scenario("double-free")
            assert instance.expected("aos").value == "must-detect"
        finally:
            REGISTRY.unregister("dummy")

    def test_chaos_config_rejects_unknown_mechanism(self):
        with pytest.raises(WorkloadError, match="unknown mechanism"):
            ChaosConfig(mechanisms=("aos", "sgx"))


# --------------------------------------------------- consistency check tool


def _load_check_registry():
    path = (
        pathlib.Path(__file__).resolve().parent.parent
        / "tools"
        / "check_registry.py"
    )
    spec = importlib.util.spec_from_file_location("check_registry", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestCheckRegistryTool:
    def test_builtin_registry_is_consistent(self):
        tool = _load_check_registry()
        assert tool.check_registry() == []

    def test_catches_missing_detects_and_bad_override(self):
        tool = _load_check_registry()
        REGISTRY.register(
            dummy_spec(
                detects=(),
                oracle=ScenarioOracle(
                    overrides={"no-such-scenario": REGISTRY.spec("aos").oracle.spatial}
                ),
            )
        )
        try:
            problems = "\n".join(tool.check_registry())
            assert "declares no detection exception types" in problems
            assert "no-such-scenario" in problems
        finally:
            REGISTRY.unregister("dummy")


# ------------------------------------------------------- the new baselines


class TestCryptSanRuntime:
    def test_oob_touches_untagged_granule(self):
        rt = CryptSanRuntime()
        ptr = rt.malloc(32)
        rt.store(ptr, 0xAB)  # in bounds
        with pytest.raises(CryptSanFault):
            rt.load(ptr.offset(32))  # first byte past the object

    def test_uaf_detected_after_free(self):
        rt = CryptSanRuntime()
        ptr = rt.malloc(32)
        rt.free(ptr)
        with pytest.raises(CryptSanFault):
            rt.load(ptr)

    def test_version_bump_detects_reuse(self):
        rt = CryptSanRuntime()
        stale = rt.malloc(32)
        rt.free(stale)
        fresh = rt.malloc(32)  # same slot, bumped version
        assert fresh.address == stale.address
        rt.load(fresh)
        with pytest.raises(CryptSanFault):
            rt.load(stale)


class TestPACSanRuntime:
    def test_bounds_checked_per_access(self):
        rt = PACSanRuntime()
        ptr = rt.malloc(48)
        rt.store(ptr, 1)
        with pytest.raises(PACSanFault):
            rt.store(ptr.offset(48), 2)

    def test_double_free_detected(self):
        rt = PACSanRuntime()
        ptr = rt.malloc(48)
        rt.free(ptr)
        with pytest.raises(PACSanFault):
            rt.free(ptr)


class TestPACTightRuntime:
    def test_no_bounds_check_spatial_blind_spot(self):
        rt = PACTightRuntime()
        ptr = rt.malloc(32)
        rt.load(ptr.offset(64))  # sealed pointer wanders: no fault

    def test_freed_identity_tag_detected(self):
        rt = PACTightRuntime()
        ptr = rt.malloc(32)
        rt.free(ptr)
        with pytest.raises(PACTightFault):
            rt.load(ptr)

    def test_smashed_return_address_fails_seal(self):
        rt = PACTightRuntime()
        rt.call(0x400010)
        rt.smash_return(0x666000)
        with pytest.raises(PACTightFault):
            rt.ret()


class TestPACStackRuntime:
    def test_honest_call_ret_chain(self):
        rt = PACStackRuntime()
        rt.call(0x400010)
        rt.call(0x400020)
        assert rt.ret() == 0x400020
        assert rt.ret() == 0x400010

    def test_smashed_return_breaks_the_chain(self):
        rt = PACStackRuntime()
        rt.call(0x400010)
        rt.call(0x400020)
        rt.smash_return(0x666000)
        with pytest.raises(PACStackFault):
            rt.ret()

    def test_underflow_detected(self):
        rt = PACStackRuntime()
        with pytest.raises(PACStackFault):
            rt.ret()


# ------------------------------------------------- ret-addr-corruption cell


class TestRetAddrCorruptionScenario:
    def test_registered_in_the_corpus(self):
        assert "ret-addr-corruption" in SCENARIOS
        assert "ret-addr-corruption" in parse_scenarios(None)
        instance = build_scenario("ret-addr-corruption")
        assert instance.category == "control"
        assert [s.op for s in instance.steps] == [
            "call", "call", "smash-ret", "ret", "ret",
        ]

    @pytest.mark.parametrize(
        "mechanism, verdict",
        [
            ("baseline", "escape-confirmed"),  # raw frames, silent overwrite
            ("aos", "escape-confirmed"),       # the return path AOS ignores
            ("pa", "as-expected"),             # signed return addresses
            ("pa+aos", "as-expected"),
            ("pactight", "as-expected"),       # sealed return addresses
            ("pacstack", "as-expected"),       # the chain's whole purpose
            ("mte", "unmodeled"),              # no call-stack model
            ("cryptsan", "unmodeled"),
        ],
    )
    def test_verdicts(self, mechanism, verdict):
        run = run_scenario_cell(("ret-addr-corruption", mechanism, 7, None))
        assert run.verdict == verdict, run.detail
        if verdict == "as-expected":
            assert run.observed == "detected"

    def test_signed_adapters_detect_smash(self):
        adapter = PAAdapter()
        adapter.call()
        adapter.smash_ret(0x666000)
        with pytest.raises(Exception, match="corrupted|authentication|fails"):
            adapter.ret()

    def test_baseline_adapter_survives_smash(self):
        adapter = BaselineAdapter()
        adapter.call()
        adapter.smash_ret(0x666000)
        assert adapter.ret() == 0x666000

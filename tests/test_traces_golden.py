"""Golden trace fixture tests: the committed files pin schema v1.

``tools/make_golden_traces.py`` is the single source of the fixtures; the
drift test regenerates them into a temp directory and byte-compares, so
any change to the schema, codecs, or generator that would invalidate
users' existing trace files fails here first (and the fix is either a
schema version bump or an intentional regeneration, never silence).
"""

import sys
from pathlib import Path

import pytest

from repro.traces import (
    TraceWriter,
    import_trace,
    open_trace,
    read_header,
    scan_trace,
)

GOLDEN = Path(__file__).parent / "golden" / "traces"
sys.path.insert(0, str(Path(__file__).parent.parent / "tools"))

from make_golden_traces import write_fixtures  # noqa: E402

FIXTURES = [
    "handwritten.v1.jsonl",
    "handwritten.v1.bin",
    "bzip2.v1.jsonl",
    "bzip2.v1.bin",
]


def test_committed_fixtures_match_regenerator(tmp_path):
    """Schema drift check: regeneration reproduces the committed bytes."""
    write_fixtures(tmp_path)
    for name in FIXTURES:
        regenerated = (tmp_path / name).read_bytes()
        committed = (GOLDEN / name).read_bytes()
        assert regenerated == committed, (
            f"{name}: regenerated fixture differs from the committed one — "
            "either bump the schema version or intentionally refresh with "
            "tools/make_golden_traces.py"
        )


@pytest.mark.parametrize("name", FIXTURES)
def test_decode_reencode_is_byte_identical(name, tmp_path):
    """Canonical encoding: decode -> re-encode reproduces the file."""
    source = GOLDEN / name
    format = "jsonl" if name.endswith(".jsonl") else "binary"
    copy = tmp_path / name
    with open_trace(source) as reader:
        with TraceWriter(copy, reader.header, format=format) as writer:
            for record in reader:
                writer.write(record)
    assert copy.read_bytes() == source.read_bytes()


@pytest.mark.parametrize("stem", ["handwritten.v1", "bzip2.v1"])
def test_cross_format_record_equality(stem):
    """JSONL and binary fixtures carry the identical logical stream."""
    with open_trace(GOLDEN / f"{stem}.jsonl") as jsonl_reader:
        jsonl_records = list(jsonl_reader)
        jsonl_header = jsonl_reader.header
    with open_trace(GOLDEN / f"{stem}.bin") as binary_reader:
        binary_records = list(binary_reader)
        binary_header = binary_reader.header
    assert jsonl_header == binary_header
    assert jsonl_records == binary_records


def test_handwritten_covers_every_record_kind():
    from repro.traces import RECORD_KINDS

    stats = scan_trace(GOLDEN / "handwritten.v1.jsonl")
    assert set(stats.counts) == set(RECORD_KINDS)


def test_handwritten_import_shape():
    """The no-embedded-profile path: the importer synthesises one from
    the stream, notes are dropped, and the UAF/OOB records survive."""
    trace = import_trace(GOLDEN / "handwritten.v1.bin")
    assert trace.profile.name == "handwritten"
    assert trace.profile.description.startswith("ingested trace")
    assert trace.preamble == [(0, 64), (1, 128)]
    assert trace.object_sizes == {0: 64, 1: 128, 3: 96, 7: 32}
    assert trace.scale == 2 and trace.seed == 11
    assert trace.branch_mispredict_rate == 0.03
    # 22 records minus 2 obj rows and 2 notes = 18 events.
    assert len(trace.events) == 18
    assert ("ld", 7, 0, False, False) in trace.events     # use-after-free
    assert ("st", 3, 4096, False) in trace.events         # out-of-bounds
    header = read_header(GOLDEN / "handwritten.v1.bin")
    assert header.profile is None
    assert header.meta == {"purpose": "golden fixture covering every record kind"}


def test_bzip2_fixture_reimports_as_generated():
    """The synthetic fixture equals regenerating from its provenance."""
    from repro.workloads import generate_trace, get_profile

    header = read_header(GOLDEN / "bzip2.v1.jsonl")
    provenance = header.generator
    assert provenance["source"] == "synthetic"
    regenerated = generate_trace(
        get_profile(provenance["workload"]),
        instructions=provenance["instructions"],
        seed=provenance["seed"],
        scale=provenance["scale"],
    )
    assert import_trace(GOLDEN / "bzip2.v1.jsonl") == regenerated
    assert import_trace(GOLDEN / "bzip2.v1.bin") == regenerated

"""CLI smoke tests."""

import pytest

from repro.cli import ARTIFACTS, build_parser, main


class TestParser:
    def test_artifact_choices(self):
        parser = build_parser()
        args = parser.parse_args(["fig14", "--workloads", "gcc", "hmmer"])
        assert args.artifact == "fig14"
        assert args.workloads == ["gcc", "hmmer"]

    def test_rejects_unknown_artifact(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_every_artifact_documented(self):
        for name, description in ARTIFACTS.items():
            assert description

    def test_faultinject_options(self):
        parser = build_parser()
        args = parser.parse_args([
            "faultinject", "--quick", "--mechanisms", "aos", "pa+aos",
            "--fault-locations", "3", "--fault-timeout", "5.5",
            "--fault-checkpoint", "cp.jsonl",
        ])
        assert args.artifact == "faultinject"
        assert args.quick
        assert args.mechanisms == ["aos", "pa+aos"]
        assert args.fault_locations == 3
        assert args.fault_timeout == 5.5
        assert args.fault_checkpoint == "cp.jsonl"


class TestMain:
    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "omnetpp" in out

    def test_security(self, capsys):
        assert main(["security"]) == 0
        out = capsys.readouterr().out
        assert "house-of-spirit" in out

    def test_fig17_small(self, capsys):
        assert main([
            "fig17", "--workloads", "gobmk", "--instructions", "8000",
        ]) == 0
        out = capsys.readouterr().out
        assert "Hit Rate" in out

    def test_faultinject_quick_single_workload(self, capsys, tmp_path):
        checkpoint = tmp_path / "campaign.jsonl"
        argv = [
            "faultinject", "--quick", "--workloads", "gcc",
            "--fault-checkpoint", str(checkpoint),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "detection coverage" in out
        assert "resumed from checkpoint: 0" in out
        # Second invocation resumes every completed cell from the checkpoint.
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "resumed from checkpoint: 12" in out

    def test_parallel_and_cache_options(self):
        parser = build_parser()
        args = parser.parse_args([
            "fig14", "--jobs", "4", "--cache-dir", "/tmp/x", "--quick",
        ])
        assert args.jobs == 4
        assert args.cache_dir == "/tmp/x"
        assert args.quick
        assert not args.no_cache

    def test_warm_cache_rerun_is_incremental(self, capsys, tmp_path):
        argv = [
            "fig17", "--workloads", "gobmk", "--instructions", "8000",
            "--jobs", "2", "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "artifact cache @" in cold
        assert "0 hits" in cold
        # Identical invocation: every cell and trace comes off disk.
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "0 misses" in warm
        assert "0 stores" in warm

    def test_no_cache_prints_no_summary(self, capsys):
        argv = [
            "fig17", "--workloads", "gobmk", "--instructions", "8000",
            "--no-cache",
        ]
        assert main(argv) == 0
        assert "artifact cache @" not in capsys.readouterr().out

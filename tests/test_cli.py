"""CLI smoke tests."""

import json

import pytest

from repro.cli import ARTIFACTS, build_parser, main


class TestParser:
    def test_artifact_choices(self):
        parser = build_parser()
        args = parser.parse_args(["fig14", "--workloads", "gcc", "hmmer"])
        assert args.artifact == "fig14"
        assert args.workloads == ["gcc", "hmmer"]

    def test_rejects_unknown_artifact(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_every_artifact_documented(self):
        for name, description in ARTIFACTS.items():
            assert description

    def test_faultinject_options(self):
        parser = build_parser()
        args = parser.parse_args([
            "faultinject", "--quick", "--mechanisms", "aos", "pa+aos",
            "--fault-locations", "3", "--fault-timeout", "5.5",
            "--fault-checkpoint", "cp.jsonl",
        ])
        assert args.artifact == "faultinject"
        assert args.quick
        assert args.mechanisms == ["aos", "pa+aos"]
        assert args.fault_locations == 3
        assert args.fault_timeout == 5.5
        assert args.fault_checkpoint == "cp.jsonl"


class TestMain:
    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "omnetpp" in out

    def test_security(self, capsys):
        assert main(["security"]) == 0
        out = capsys.readouterr().out
        assert "house-of-spirit" in out

    def test_fig17_small(self, capsys):
        assert main([
            "fig17", "--workloads", "gobmk", "--instructions", "8000",
        ]) == 0
        out = capsys.readouterr().out
        assert "Hit Rate" in out

    def test_faultinject_quick_single_workload(self, capsys, tmp_path):
        checkpoint = tmp_path / "campaign.jsonl"
        argv = [
            "faultinject", "--quick", "--workloads", "gcc",
            "--fault-checkpoint", str(checkpoint),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "detection coverage" in out
        assert "resumed from checkpoint: 0" in out
        # Second invocation resumes every completed cell from the checkpoint.
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "resumed from checkpoint: 12" in out

    def test_parallel_and_cache_options(self):
        parser = build_parser()
        args = parser.parse_args([
            "fig14", "--jobs", "4", "--cache-dir", "/tmp/x", "--quick",
        ])
        assert args.jobs == 4
        assert args.cache_dir == "/tmp/x"
        assert args.quick
        assert not args.no_cache

    def test_warm_cache_rerun_is_incremental(self, capsys, tmp_path):
        argv = [
            "fig17", "--workloads", "gobmk", "--instructions", "8000",
            "--jobs", "2", "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "artifact cache @" in cold
        assert "0 hits" in cold
        # Identical invocation: every cell and trace comes off disk.
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "0 misses" in warm
        assert "0 stores" in warm

    def test_no_cache_prints_no_summary(self, capsys):
        argv = [
            "fig17", "--workloads", "gobmk", "--instructions", "8000",
            "--no-cache",
        ]
        assert main(argv) == 0
        assert "artifact cache @" not in capsys.readouterr().out


class TestTraceArtifact:
    def test_trace_options_parse(self):
        parser = build_parser()
        args = parser.parse_args([
            "trace", "gcc", "--trace-out", "t.json", "--metrics-out", "m.json",
            "--events-out", "e.jsonl", "--mechanism", "aos",
            "--trace-capacity", "1024",
        ])
        assert args.artifact == "trace"
        assert args.target == "gcc"
        assert args.trace_out == "t.json"
        assert args.metrics_out == "m.json"
        assert args.events_out == "e.jsonl"
        assert args.trace_capacity == 1024

    def test_trace_writes_valid_artifacts(self, capsys, tmp_path):
        from repro.obs import validate_chrome_trace_file

        trace_out = tmp_path / "trace.json"
        metrics_out = tmp_path / "metrics.json"
        events_out = tmp_path / "events.jsonl"
        assert main([
            "trace", "gobmk", "--quick", "--instructions", "6000",
            "--trace-out", str(trace_out), "--metrics-out", str(metrics_out),
            "--events-out", str(events_out),
        ]) == 0
        out = capsys.readouterr().out
        assert "schema OK" in out
        assert validate_chrome_trace_file(trace_out) == []

        metrics = json.loads(metrics_out.read_text())
        assert metrics["counters"]  # non-empty: the run was observed
        assert metrics["counters"]["pipeline.instructions"] > 0
        assert events_out.read_text().strip()  # JSONL sink populated

    def test_trace_outputs_byte_identical_across_runs(self, tmp_path):
        outs = []
        for tag in ("one", "two"):
            trace_out = tmp_path / f"trace-{tag}.json"
            metrics_out = tmp_path / f"metrics-{tag}.json"
            assert main([
                "trace", "gobmk", "--quick", "--instructions", "6000",
                "--trace-out", str(trace_out), "--metrics-out", str(metrics_out),
            ]) == 0
            outs.append((trace_out.read_bytes(), metrics_out.read_bytes()))
        assert outs[0] == outs[1]

    def test_metrics_flag_prints_suite_report(self, capsys):
        assert main([
            "fig17", "--workloads", "gobmk", "--instructions", "8000",
            "--metrics",
        ]) == 0
        out = capsys.readouterr().out
        assert "suite metrics (merged cells)" in out
        assert "[mcu]" in out
        assert "lines_per_signed_check" in out

    def test_metrics_out_writes_merged_snapshot(self, capsys, tmp_path):
        metrics_out = tmp_path / "suite-metrics.json"
        assert main([
            "fig17", "--workloads", "gobmk", "--instructions", "8000",
            "--metrics", "--metrics-out", str(metrics_out),
        ]) == 0
        snapshot = json.loads(metrics_out.read_text())
        assert snapshot["counters"]["mcu.checks"] > 0

    def test_profile_flag_prints_phase_table(self, capsys):
        assert main([
            "table2", "--profile",
        ]) == 0
        out = capsys.readouterr().out
        assert "engine phase profile" in out


class TestAttackArtifact:
    def test_attack_registered(self):
        assert "attack" in ARTIFACTS

    def test_attack_options_parse(self):
        parser = build_parser()
        args = parser.parse_args([
            "attack", "--quick", "--scenarios", "double-free",
            "ahc-zero-escape", "--matrix-out", "m.json", "--pareto",
            "--no-supervise",
        ])
        assert args.artifact == "attack"
        assert args.scenarios == ["double-free", "ahc-zero-escape"]
        assert args.matrix_out == "m.json"
        assert args.pareto
        assert args.no_supervise

    def test_fault_kinds_option_parses_and_restricts(self, capsys):
        argv = [
            "faultinject", "--workloads", "gcc", "--mechanisms", "aos",
            "--fault-locations", "1", "--fault-kinds", "ptr-pac-flip",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "ptr-pac-flip" in out
        assert "cells: 1" in out  # the sweep ran only the requested kind

    def test_fault_kinds_rejects_unknown(self, capsys):
        from repro.errors import FaultInjectionError

        with pytest.raises(FaultInjectionError):
            main(["faultinject", "--fault-kinds", "cosmic-ray"])

    def test_attack_quick_serial(self, capsys, tmp_path):
        matrix_path = tmp_path / "matrix.json"
        argv = [
            "attack", "--quick", "--no-supervise",
            "--matrix-out", str(matrix_path),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        # The §VII-C escape is reported by name, never a silent pass.
        assert "ahc-zero-escape vs aos" in out
        assert "known escapes" in out
        payload = json.loads(matrix_path.read_text())
        assert payload["kind"] == "scenario-matrix"
        assert payload["ok"]
        assert payload["verdicts"]["missed-detection"] == 0
        cells = {(r["scenario"], r["mechanism"]): r for r in payload["runs"]}
        assert cells[("ahc-zero-escape", "aos")]["verdict"] == "escape-confirmed"
        assert cells[("ahc-zero-escape", "pa+aos")]["observed"] == "detected"

    def test_attack_supervised_subset(self, capsys):
        argv = [
            "attack", "--scenarios", "uaf-stale-load",
            "--mechanisms", "aos", "pa+aos", "--jobs", "2",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "supervision:" in out or "attempts" in out

    def test_attack_exits_nonzero_on_missed_detection(self, capsys, monkeypatch):
        from repro.adversary import Expectation
        from repro.adversary import scenarios as scen

        def impossible(seed=7):
            base = scen.intra_object_overflow(seed)
            return scen.ScenarioInstance(
                name=base.name, category=base.category,
                description=base.description, steps=base.steps,
                expectations={"aos": Expectation.MUST_DETECT},
                default=Expectation.KNOWN_ESCAPE, seed=seed,
            )

        monkeypatch.setitem(scen.SCENARIOS, "intra-object-overflow", impossible)
        argv = [
            "attack", "--scenarios", "intra-object-overflow",
            "--mechanisms", "aos", "--no-supervise",
        ]
        assert main(argv) == 1
        captured = capsys.readouterr()
        assert "missed" in (captured.out + captured.err).lower()

"""Workload profile and trace generator tests."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.generator import generate_trace
from repro.workloads.profiles import (
    REALWORLD_PROFILES,
    SPEC2006_PROFILES,
    get_profile,
)

#: Paper Table II, complete and verbatim: (max active, allocs, deallocs).
TABLE2_SPOT = {
    "bzip2": (10, 29, 25),
    "gcc": (81825, 1846825, 1829255),
    "mcf": (6, 8, 8),
    "milc": (61, 6523, 6474),
    "namd": (1316, 1328, 1326),
    "gobmk": (1021, 137369, 137358),
    "soplex": (140, 98955, 34025),
    "povray": (11667, 2461247, 2461107),
    "hmmer": (1450, 1474128, 1474128),
    "sjeng": (6, 6, 2),
    "libquantum": (5, 180, 180),
    "h264ref": (13857, 38275, 38273),
    "lbm": (5, 7, 7),
    "omnetpp": (1993737, 21244416, 21244416),
    "astar": (190984, 1116621, 1116621),
    "sphinx3": (200686, 14224690, 14024020),
}

#: Paper Table III, complete and verbatim.
TABLE3_SPOT = {
    "pbzip2": (110, 12425, 12423),
    "pigz": (110, 24511, 24511),
    "axel": (172, 473, 473),
    "md5sum": (32, 34, 34),
    "apache": (7592, 13360000, 13360000),
    "mysql": (5380, 28622, 28621),
}


class TestProfiles:
    def test_all_16_spec_workloads_present(self):
        assert len(SPEC2006_PROFILES) == 16

    def test_all_6_realworld_benchmarks_present(self):
        assert len(REALWORLD_PROFILES) == 6

    @pytest.mark.parametrize("name,expected", TABLE2_SPOT.items())
    def test_table2_values_verbatim(self, name, expected):
        p = get_profile(name)
        assert (p.table_max_active, p.table_allocations, p.table_deallocations) == expected

    @pytest.mark.parametrize("name,expected", TABLE3_SPOT.items())
    def test_table3_values_verbatim(self, name, expected):
        p = get_profile(name)
        assert (p.table_max_active, p.table_allocations, p.table_deallocations) == expected

    def test_unknown_profile(self):
        with pytest.raises(WorkloadError):
            get_profile("doom")

    def test_hmmer_signedness_dominates(self):
        """Fig. 16: hmmer needs checking for >99% of memory accesses."""
        assert get_profile("hmmer").heap_frac > 0.99

    def test_mix_fractions_valid(self):
        for p in {**SPEC2006_PROFILES, **REALWORLD_PROFILES}.values():
            assert p.mem_frac + p.branch_frac + p.falu_frac < 1.0


class TestGenerator:
    def make(self, name="gobmk", n=20_000, seed=3, scale=8):
        return generate_trace(get_profile(name), instructions=n, seed=seed, scale=scale)

    def test_deterministic(self):
        a = self.make(seed=5)
        b = self.make(seed=5)
        assert a.events == b.events
        assert a.preamble == b.preamble

    def test_different_seeds_differ(self):
        assert self.make(seed=1).events != self.make(seed=2).events

    def test_event_count_close_to_requested(self):
        trace = self.make(n=20_000)
        assert 19_000 <= len(trace.events) <= 22_000

    def test_preamble_scaled(self):
        full = generate_trace(get_profile("astar"), instructions=2000, scale=1)
        scaled = generate_trace(get_profile("astar"), instructions=2000, scale=8)
        assert len(scaled.preamble) * 7 <= len(full.preamble) <= len(scaled.preamble) * 9

    def test_rejects_tiny_window(self):
        with pytest.raises(WorkloadError):
            self.make(n=10)

    def test_rejects_non_power_of_two_scale(self):
        with pytest.raises(WorkloadError):
            self.make(scale=3)

    def test_mallocs_balanced_by_frees(self):
        trace = generate_trace(get_profile("omnetpp"), instructions=30_000, scale=64)
        mallocs = sum(1 for e in trace.events if e[0] == "m")
        frees = sum(1 for e in trace.events if e[0] == "f")
        assert mallocs > 50
        assert abs(mallocs - frees) <= mallocs * 0.2

    def test_no_access_to_freed_objects(self):
        trace = generate_trace(get_profile("omnetpp"), instructions=30_000, scale=64)
        freed = set()
        for event in trace.events:
            if event[0] == "f":
                freed.add(event[1])
            elif event[0] in ("ld", "st"):
                assert event[1] not in freed

    def test_offsets_within_object(self):
        trace = self.make(n=20_000)
        for event in trace.events:
            if event[0] in ("ld", "st"):
                size = trace.object_sizes[event[1]]
                assert 0 <= event[2] <= max(size - 8, 0)

    def test_mispredict_rate_sane(self):
        rate = self.make(n=30_000).branch_mispredict_rate
        assert 0.0 < rate < 0.45

    def test_predictable_workload_lower_mispredicts(self):
        branchy = generate_trace(get_profile("gobmk"), instructions=30_000)
        steady = generate_trace(get_profile("lbm"), instructions=30_000)
        assert steady.branch_mispredict_rate < branchy.branch_mispredict_rate


class TestBranchPredictor:
    def test_biased_stream_learned(self):
        from repro.cpu.branch import GShareBranchPredictor

        pred = GShareBranchPredictor(table_bits=10, history_bits=2)
        miss = 0
        for i in range(2000):
            miss += pred.predict_and_update(0x400, taken=True)
        assert pred.misprediction_rate < 0.01

    def test_random_stream_half_wrong(self):
        import random

        from repro.cpu.branch import GShareBranchPredictor

        rng = random.Random(1)
        pred = GShareBranchPredictor()
        for _ in range(4000):
            pred.predict_and_update(0x400, taken=rng.random() < 0.5)
        assert 0.35 < pred.misprediction_rate < 0.65

    def test_rejects_bad_geometry(self):
        from repro.cpu.branch import GShareBranchPredictor

        with pytest.raises(ValueError):
            GShareBranchPredictor(table_bits=0)

"""Golden-metrics regression test.

Pins the full metric snapshot of one reference cell (``gcc`` at the
``--quick`` trace settings) against a checked-in fixture, so any change to
instruction accounting, HBT/BWB bookkeeping, cache modelling or the
metrics plumbing shows up as a reviewable diff instead of a silent drift.

To regenerate the fixture after an *intended* accounting change:

    PYTHONPATH=src python tests/test_golden_metrics.py

and commit the updated ``tests/golden/metrics_gcc_quick.json`` together
with the change that explains it.
"""

import json
from pathlib import Path

GOLDEN = Path(__file__).parent / "golden" / "metrics_gcc_quick.json"

#: The ``python -m repro trace gcc --quick`` settings (cli.py).
WORKLOAD = "gcc"
MECHANISM = "aos"
INSTRUCTIONS = 12_000
SEED = 7
SCALE = 8


def compute_quick_metrics() -> dict:
    """The metric snapshot of the reference cell, via the same path the
    ``trace`` CLI artifact uses (metrics only; tracing does not affect
    the registry — see test_differential.py)."""
    from repro.compiler import lower_trace
    from repro.cpu.core import Simulator
    from repro.experiments.common import scaled_config
    from repro.obs import Observability
    from repro.workloads import generate_trace, get_profile

    config = scaled_config(MECHANISM, SCALE)
    trace = generate_trace(
        get_profile(WORKLOAD), instructions=INSTRUCTIONS, seed=SEED, scale=SCALE
    )
    lowered = lower_trace(trace, MECHANISM, config=config)
    result = Simulator(config, obs=Observability()).run(lowered)
    return result.metrics


def _flatten(snapshot: dict) -> dict:
    """``{"kind.name": value}`` pairs for readable diffing."""
    flat = {}
    for kind in ("counters", "gauges"):
        for name, value in snapshot.get(kind, {}).items():
            flat[f"{kind}.{name}"] = value
    for name, hist in snapshot.get("histograms", {}).items():
        flat[f"histograms.{name}.bounds"] = hist["bounds"]
        flat[f"histograms.{name}.counts"] = hist["counts"]
        flat[f"histograms.{name}.count"] = hist["count"]
        flat[f"histograms.{name}.total"] = hist["total"]
    return flat


def diff_snapshots(expected: dict, actual: dict) -> list:
    """Human-readable per-metric differences (empty when identical)."""
    want, got = _flatten(expected), _flatten(actual)
    lines = []
    for name in sorted(set(want) | set(got)):
        if name not in got:
            lines.append(f"- {name} = {want[name]!r}  (metric disappeared)")
        elif name not in want:
            lines.append(f"+ {name} = {got[name]!r}  (new metric)")
        elif want[name] != got[name]:
            lines.append(f"~ {name}: expected {want[name]!r}, got {got[name]!r}")
    return lines


class TestGoldenMetrics:
    def test_fixture_exists_and_is_sorted_json(self):
        raw = GOLDEN.read_text()
        snapshot = json.loads(raw)
        assert raw == json.dumps(snapshot, sort_keys=True, indent=1) + "\n"

    def test_reference_cell_matches_golden(self):
        expected = json.loads(GOLDEN.read_text())
        actual = compute_quick_metrics()
        differences = diff_snapshots(expected, actual)
        assert not differences, (
            "metric snapshot drifted from the golden fixture:\n  "
            + "\n  ".join(differences)
            + "\nIf this change is intended, regenerate with:\n"
            + "  PYTHONPATH=src python tests/test_golden_metrics.py"
        )

    def test_golden_covers_every_subsystem(self):
        counters = json.loads(GOLDEN.read_text())["counters"]
        for prefix in ("mcu.", "hbt.", "bwb.", "cache.", "traffic.", "pipeline."):
            assert any(name.startswith(prefix) for name in counters), prefix


class TestDiffHelper:
    def test_identical_snapshots_diff_empty(self):
        snap = {"counters": {"a": 1}, "gauges": {}, "histograms": {}}
        assert diff_snapshots(snap, snap) == []

    def test_changed_missing_and_new_metrics_reported(self):
        want = {"counters": {"a": 1, "gone": 2}, "gauges": {}, "histograms": {}}
        got = {"counters": {"a": 3, "new": 4}, "gauges": {}, "histograms": {}}
        lines = diff_snapshots(want, got)
        assert any(line.startswith("~ counters.a") for line in lines)
        assert any("disappeared" in line for line in lines)
        assert any("new metric" in line for line in lines)


def _regenerate() -> None:
    GOLDEN.parent.mkdir(parents=True, exist_ok=True)
    snapshot = compute_quick_metrics()
    GOLDEN.write_text(json.dumps(snapshot, sort_keys=True, indent=1) + "\n")
    print(f"wrote {GOLDEN} ({len(_flatten(snapshot))} metrics)")


if __name__ == "__main__":
    _regenerate()

"""Timing-model tests: the scoreboard pipeline's first-order behaviours."""

import pytest

from repro.cache.hierarchy import MemoryHierarchy
from repro.config import default_config
from repro.cpu.pipeline import PipelineModel
from repro.isa.instructions import Instruction, Op
from repro.isa.program import Program


def run_program(instructions, mechanism="baseline", mcu=None, config=None):
    config = config or default_config(mechanism)
    hierarchy = MemoryHierarchy(config.memory, use_l1b=False)
    model = PipelineModel(config, hierarchy, mcu=mcu)
    return model.run(Program(instructions=tuple(instructions), name="t"))


def alus(n, **kwargs):
    return [Instruction(op=Op.ALU, **kwargs) for _ in range(n)]


class TestThroughput:
    def test_width_limits_ipc(self):
        result = run_program(alus(8000))
        assert result.ipc <= 8.0
        assert result.ipc > 6.0  # independent ALUs should nearly saturate

    def test_more_instructions_more_cycles(self):
        short = run_program(alus(1000))
        long = run_program(alus(5000))
        assert long.cycles > short.cycles

    def test_dependencies_reduce_ipc(self):
        free = run_program(alus(4000))
        chained = run_program(alus(4000, deps=(1,)))
        assert chained.cycles > free.cycles
        assert chained.ipc <= 1.1  # serial chain: ~1 per cycle

    def test_markers_cost_nothing(self):
        with_markers = run_program(
            alus(1000) + [Instruction(op=Op.MALLOC_MARK)] * 500 + alus(1000)
        )
        without = run_program(alus(2000))
        assert with_markers.cycles == pytest.approx(without.cycles, rel=0.01)
        assert with_markers.instructions == 2000


class TestMemory:
    def test_load_miss_slower_than_hit(self):
        # Same address twice: second run of loads mostly hits.
        miss = run_program(
            [Instruction(op=Op.LOAD, address=0x1000 + 64 * i, deps=(1,)) for i in range(500)]
        )
        hit = run_program(
            [Instruction(op=Op.LOAD, address=0x1000, deps=(1,)) for _ in range(500)]
        )
        assert miss.cycles > hit.cycles

    def test_crypto_ops_cost_their_latency(self):
        plain = run_program(alus(2000, deps=(1,)))
        crypto = run_program([Instruction(op=Op.PACIA, deps=(1,)) for _ in range(2000)])
        assert crypto.cycles > plain.cycles * 2


class TestBranches:
    def test_mispredicts_add_cycles(self):
        good = run_program(
            [Instruction(op=Op.BRANCH, mispredicted=False) for _ in range(2000)]
        )
        bad = run_program(
            [Instruction(op=Op.BRANCH, mispredicted=True) for _ in range(2000)]
        )
        assert bad.cycles > good.cycles
        assert bad.branch_mispredicts == 2000

    def test_penalty_scales(self):
        import dataclasses
        config = default_config("baseline")
        cheap = dataclasses.replace(
            config, core=dataclasses.replace(config.core, branch_mispredict_penalty=2)
        )
        insts = [Instruction(op=Op.BRANCH, mispredicted=True) for _ in range(1000)]
        assert run_program(insts).cycles > run_program(insts, config=cheap).cycles


class TestMCUIntegration:
    def make_mcu(self, hierarchy=None):
        from repro.config import AOSOptions
        from repro.core.hbt import HashedBoundsTable
        from repro.core.mcu import MemoryCheckUnit
        from repro.isa.encoding import PointerLayout

        layout = PointerLayout(pac_bits=16)
        hbt = HashedBoundsTable(pac_bits=16, initial_ways=1)
        mcu = MemoryCheckUnit(hbt=hbt, layout=layout, options=AOSOptions())
        return mcu, layout

    def test_signed_loads_slower_than_unsigned(self):
        mcu, layout = self.make_mcu()
        signed_ptr = layout.sign(0x20001000, pac=0x12, ahc=1)
        mcu.hbt.insert(0x12, 0x20001000, 64)
        unsigned = [Instruction(op=Op.LOAD, address=0x20001000) for _ in range(2000)]
        signed = [Instruction(op=Op.LOAD, address=signed_ptr) for _ in range(2000)]
        r_unsigned = run_program(unsigned, mcu=mcu)
        mcu2, _ = self.make_mcu()
        mcu2.hbt.insert(0x12, 0x20001000, 64)
        r_signed = run_program(signed, mcu=mcu2)
        assert r_signed.cycles > r_unsigned.cycles

    def test_bndstr_does_not_delay_commit_like_checks(self):
        """Fig. 8b: table ops retire before their walk completes."""
        mcu, layout = self.make_mcu()
        stores = [
            Instruction(op=Op.BNDSTR, address=layout.sign(0x20000000 + 0x40 * i, 0x12, 1), size=16)
            for i in range(8)
        ]
        result = run_program(stores + alus(2000), mcu=mcu)
        baseline = run_program(alus(2000))
        assert result.cycles < baseline.cycles * 1.5

    def test_validation_fault_counted(self):
        mcu, layout = self.make_mcu()
        bad = layout.sign(0x20001000, pac=0x12, ahc=1)  # no bounds stored
        result = run_program([Instruction(op=Op.LOAD, address=bad)], mcu=mcu)
        assert result.validation_faults == 1

    def test_mcu_port_bandwidth_binds_dense_checks(self):
        """A signed-load stream beyond the MCU's port bandwidth queues
        behind it (the hmmer delayed-retirement effect, §IX-A)."""
        mcu, layout = self.make_mcu()
        mcu.hbt.insert(0x12, 0x20001000, 64)
        signed = layout.sign(0x20001000, pac=0x12, ahc=1)
        dense = [Instruction(op=Op.LOAD, address=signed) for _ in range(4000)]
        r_dense = run_program(dense, mcu=mcu)
        # Independent unsigned loads to the same line commit at full width;
        # the signed stream is capped by the two MCU ports.
        unsigned = [Instruction(op=Op.LOAD, address=0x20001000) for _ in range(4000)]
        mcu2, _ = self.make_mcu()
        r_unsigned = run_program(unsigned, mcu=mcu2)
        assert r_dense.cycles > r_unsigned.cycles * 1.5

    def test_congested_mcq_discounts_mispredict_penalty(self):
        """§IX-A: back-pressure curbs speculation; a congested MCQ makes
        mispredicted branches cheaper than in an uncongested stream."""
        mcu, layout = self.make_mcu()
        mcu.hbt.insert(0x12, 0x20001000, 64)
        signed = layout.sign(0x20001000, pac=0x12, ahc=1)

        def mixed(n_loads):
            program = []
            for _ in range(200):
                program.extend(
                    Instruction(op=Op.LOAD, address=signed) for _ in range(n_loads)
                )
                program.append(Instruction(op=Op.BRANCH, mispredicted=True))
            return program

        # Dense memory stream (congested MCQ) vs sparse: the per-branch
        # cost difference shows the discount is active.
        congested = run_program(mixed(12), mcu=mcu)
        assert congested.branch_mispredicts == 200

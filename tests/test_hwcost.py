"""Hardware cost model tests (Table I)."""

import pytest

from repro.hwcost.cacti import (
    PUBLISHED_TABLE1,
    SRAMCostModel,
    bwb_entry_bits,
    estimate_table1,
    mcq_entry_bits,
    table1_structures,
)


class TestStructureSizing:
    def test_mcq_entry_bits_from_field_list(self):
        """§V-A.1 fields sum to 211 bits."""
        assert mcq_entry_bits() == 211

    def test_mcq_size_matches_paper(self):
        """48 entries x 211 bits ~ 1.3 KB (Table I)."""
        specs = {s.name: s for s in table1_structures()}
        assert 1200 <= specs["MCQ"].size_bytes <= 1400

    def test_bwb_size_matches_paper(self):
        """64 entries x 48 bits = 384 B (Table I)."""
        specs = {s.name: s for s in table1_structures()}
        assert specs["BWB"].size_bytes == 384
        assert bwb_entry_bits() == 48

    def test_cache_sizes(self):
        specs = {s.name: s for s in table1_structures()}
        assert specs["L1-B Cache"].size_bytes == 32 * 1024
        assert specs["L1-D Cache"].size_bytes == 64 * 1024


class TestCostModel:
    def test_estimates_close_to_published(self):
        """The fitted power laws must land within 2x of each CACTI row
        (they are typically within ~25 %)."""
        model = SRAMCostModel()
        for name, (size, area, ns, pj, mw) in PUBLISHED_TABLE1.items():
            est = model.estimate(size)
            assert est["area_mm2"] == pytest.approx(area, rel=1.0)
            assert est["access_ns"] == pytest.approx(ns, rel=1.0)
            assert est["leakage_mw"] == pytest.approx(mw, rel=1.0)

    def test_monotonic_in_size(self):
        model = SRAMCostModel()
        small = model.estimate(1024)
        big = model.estimate(64 * 1024)
        for metric in ("area_mm2", "access_ns", "dynamic_pj", "leakage_mw"):
            assert big[metric] > small[metric]

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            SRAMCostModel().estimate(0)

    def test_estimate_table1_structure(self):
        table = estimate_table1()
        assert set(table) == {"MCQ", "BWB", "L1-B Cache", "L1-D Cache"}
        for row in table.values():
            assert row["size_bytes"] > 0
            assert row["area_mm2"] > 0

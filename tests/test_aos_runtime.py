"""AOSRuntime integration tests: the Fig. 7 / Fig. 12 flows end-to-end."""

import pytest

from repro.core.exceptions import (
    BoundsCheckFault,
    BoundsClearFault,
)


class TestHappyPath:
    def test_malloc_returns_signed_pointer(self, aos_runtime):
        p = aos_runtime.malloc(64)
        assert aos_runtime.signer.is_signed(p)

    def test_store_load_roundtrip(self, aos_runtime):
        p = aos_runtime.malloc(64)
        aos_runtime.store(p, 0xDEADBEEF)
        assert aos_runtime.load(p) == 0xDEADBEEF

    def test_interior_access(self, aos_runtime):
        p = aos_runtime.malloc(128)
        q = aos_runtime.offset(p, 64)
        aos_runtime.store(q, 42)
        assert aos_runtime.load(q) == 42

    def test_last_byte_accessible(self, aos_runtime):
        p = aos_runtime.malloc(64)
        aos_runtime.store(aos_runtime.offset(p, 63), 7, size=1)

    def test_bytes_roundtrip(self, aos_runtime):
        p = aos_runtime.malloc(32)
        aos_runtime.store_bytes(p, b"hello world")
        assert aos_runtime.load_bytes(p, 11) == b"hello world"

    def test_free_returns_locked_pointer(self, aos_runtime):
        p = aos_runtime.malloc(64)
        dangling = aos_runtime.free(p)
        assert aos_runtime.signer.is_signed(dangling)

    def test_many_allocations(self, aos_runtime):
        ptrs = [aos_runtime.malloc(32) for _ in range(200)]
        for i, p in enumerate(ptrs):
            aos_runtime.store(p, i)
        for i, p in enumerate(ptrs):
            assert aos_runtime.load(p) == i

    def test_qarma_mode_works_end_to_end(self, qarma_runtime):
        p = qarma_runtime.malloc(64)
        qarma_runtime.store(p, 1)
        assert qarma_runtime.load(p) == 1


class TestSpatialSafety:
    def test_oob_read_detected(self, aos_runtime):
        """Fig. 12 line 6."""
        p = aos_runtime.malloc(64)
        with pytest.raises(BoundsCheckFault):
            aos_runtime.load(aos_runtime.offset(p, 64))

    def test_oob_write_detected(self, aos_runtime):
        """Fig. 12 line 7."""
        p = aos_runtime.malloc(64)
        with pytest.raises(BoundsCheckFault):
            aos_runtime.store(aos_runtime.offset(p, 72), 0)

    def test_underflow_detected(self, aos_runtime):
        p = aos_runtime.malloc(64)
        with pytest.raises(BoundsCheckFault):
            aos_runtime.load(aos_runtime.offset(p, -8))

    def test_far_oob_detected(self, aos_runtime):
        """Non-adjacent violations — the redzone blind spot (§I)."""
        p = aos_runtime.malloc(64)
        with pytest.raises(BoundsCheckFault):
            aos_runtime.load(aos_runtime.offset(p, 1 << 20))

    def test_precise_exception_store_writes_nothing(self, aos_runtime):
        """§III-C.4: architectural state must not change on a fault."""
        p = aos_runtime.malloc(64)
        victim = aos_runtime.malloc(64)
        aos_runtime.store(victim, 0x11111111)
        target = aos_runtime.offset(p, aos_runtime.signer.xpacm(victim) - aos_runtime.signer.xpacm(p))
        with pytest.raises(BoundsCheckFault):
            aos_runtime.store(target, 0x22222222)
        assert aos_runtime.load(victim) == 0x11111111


class TestTemporalSafety:
    def test_use_after_free_detected(self, aos_runtime):
        """Fig. 12 line 14."""
        p = aos_runtime.malloc(64)
        dangling = aos_runtime.free(p)
        with pytest.raises(BoundsCheckFault):
            aos_runtime.load(dangling)

    def test_double_free_detected(self, aos_runtime):
        """Fig. 12 lines 16-19."""
        p = aos_runtime.malloc(64)
        dangling = aos_runtime.free(p)
        with pytest.raises(BoundsClearFault):
            aos_runtime.free(dangling)

    def test_dangling_after_reuse_detected(self, aos_runtime):
        p = aos_runtime.malloc(48)
        dangling = aos_runtime.free(p)
        aos_runtime.malloc(48)  # reuses the chunk
        with pytest.raises(BoundsCheckFault):
            aos_runtime.load(dangling)

    def test_free_of_crafted_pointer_detected(self, aos_runtime):
        """Only valid signed pointers can be freed (§VII-A)."""
        crafted = aos_runtime.signer.pacma(0x00601000, 123, 64)
        with pytest.raises(BoundsClearFault):
            aos_runtime.free(crafted)

    def test_realloc_same_address_is_usable(self, aos_runtime):
        p = aos_runtime.malloc(48)
        raw = aos_runtime.signer.xpacm(p)
        aos_runtime.free(p)
        q = aos_runtime.malloc(48)
        assert aos_runtime.signer.xpacm(q) == raw  # tcache reuse
        aos_runtime.store(q, 5)
        assert aos_runtime.load(q) == 5


class TestStats:
    def test_counters(self, aos_runtime):
        p = aos_runtime.malloc(64)
        aos_runtime.store(p, 1)
        aos_runtime.load(p)
        aos_runtime.free(p)
        s = aos_runtime.stats
        assert (s.mallocs, s.frees, s.loads, s.stores) == (1, 1, 1, 1)

    def test_fault_counted(self, aos_runtime):
        p = aos_runtime.malloc(64)
        with pytest.raises(BoundsCheckFault):
            aos_runtime.load(aos_runtime.offset(p, 4096))
        assert aos_runtime.stats.faults_raised == 1

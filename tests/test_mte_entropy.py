"""Memory-tagging baseline and forgery-entropy tests (§X, §VII-E)."""

import pytest

from repro.baselines.mte import GRANULE, MTEFault, MTERuntime, TaggedPointer
from repro.security.entropy import (
    attempts_for_likelihood,
    empirical_bypass_attempts,
    entropy_sweep,
    guess_success_probability,
    single_shot_detection,
)


class TestMTERuntime:
    def test_in_bounds_access(self):
        rt = MTERuntime()
        p = rt.malloc(64)
        rt.store(p, 7)
        assert rt.load(p) == 7

    def test_adjacent_overflow_detected_whp(self):
        """Neighbouring granules carry different random tags; detection is
        probabilistic but near-certain over several trials."""
        detections = 0
        for seed in range(20):
            rt = MTERuntime(seed=seed)
            p = rt.malloc(64)
            rt.malloc(64)
            try:
                rt.load(p.offset(64 + GRANULE))
            except MTEFault:
                detections += 1
        assert detections >= 16  # ~15/16 expected

    def test_uaf_detected_after_retagging(self):
        rt = MTERuntime()
        caught = 0
        for _ in range(20):
            p = rt.malloc(64)
            rt.free(p)
            try:
                rt.load(p)
            except MTEFault:
                caught += 1
        assert caught >= 16

    def test_tag_guess_escapes(self):
        """The §X critique: a correct tag guess slips through silently."""
        rt = MTERuntime()
        p = rt.malloc(64)
        escaped = False
        for guess in range(rt.tag_space):
            try:
                rt.load(TaggedPointer(p.address, guess))
                escaped = True
                break
            except MTEFault:
                continue
        assert escaped  # exhaustive 16-value scan always wins

    def test_detection_probability(self):
        assert MTERuntime(tag_bits=4).detection_probability() == pytest.approx(0.9375)

    def test_rejects_bad_tag_width(self):
        with pytest.raises(ValueError):
            MTERuntime(tag_bits=0)

    def test_pointer_arithmetic_keeps_tag(self):
        rt = MTERuntime()
        p = rt.malloc(64)
        assert p.offset(8).tag == p.tag


class TestEntropyAnalysis:
    def test_paper_45425_attempts(self):
        """§VII-E: 45425 attempts for a 50% chance at a 16-bit PAC."""
        assert attempts_for_likelihood(16, 0.5) == 45425

    def test_paper_94_percent_mte_detection(self):
        """§X: '94%' detection with 4-bit tags (exactly 93.75%)."""
        assert single_shot_detection(4) == pytest.approx(0.9375)

    def test_monotonic_in_bits(self):
        rows = entropy_sweep([4, 8, 16])
        assert rows[0].attempts_50 < rows[1].attempts_50 < rows[2].attempts_50
        assert rows[0].detection < rows[2].detection

    def test_probability_model_consistency(self):
        bits = 8
        n = attempts_for_likelihood(bits, 0.5)  # floored crossing point
        assert guess_success_probability(bits, n) < 0.5
        assert guess_success_probability(bits, n + 1) >= 0.5

    def test_empirical_matches_analytic(self):
        """Monte-Carlo mean attempts ~ 2^bits (geometric distribution)."""
        measured = empirical_bypass_attempts(4, trials=3000)
        assert measured == pytest.approx(16.0, rel=0.15)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            attempts_for_likelihood(16, 1.5)
        with pytest.raises(ValueError):
            guess_success_probability(0, 10)

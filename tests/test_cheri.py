"""CHERI capability baseline tests (§X)."""

import pytest

from repro.baselines.cheri import CheriFault, CheriRuntime, Perm


@pytest.fixture
def rt():
    return CheriRuntime()


class TestCapabilityChecks:
    def test_roundtrip(self, rt):
        cap = rt.malloc(64)
        rt.store(cap, 0xABCD)
        assert rt.load(cap) == 0xABCD

    def test_oob_detected(self, rt):
        cap = rt.malloc(64)
        with pytest.raises(CheriFault):
            rt.load(cap.offset(64))

    def test_underflow_detected(self, rt):
        cap = rt.malloc(64)
        with pytest.raises(CheriFault):
            rt.store(cap.offset(-8), 1)

    def test_access_straddling_top_detected(self, rt):
        cap = rt.malloc(64)
        with pytest.raises(CheriFault):
            rt.load(cap.offset(60))  # 8-byte read past the top

    def test_untagged_capability_rejected(self, rt):
        """The tag clears on data-plane manipulation: forging impossible."""
        cap = rt.malloc(64)
        with pytest.raises(CheriFault):
            rt.load(cap.untagged())

    def test_raw_integer_rejected(self, rt):
        rt.malloc(64)
        with pytest.raises(CheriFault):
            rt.load(0x20000010)


class TestMonotonicity:
    def test_narrowing_shrinks_bounds(self, rt):
        cap = rt.malloc(128)
        field = cap.narrow(32, 16)
        rt.store(field, 7)
        with pytest.raises(CheriFault):
            rt.load(field.offset(16))  # outside the narrowed bounds

    def test_cannot_grow_bounds(self, rt):
        cap = rt.malloc(64)
        with pytest.raises(CheriFault):
            cap.narrow(0, 128)
        with pytest.raises(CheriFault):
            cap.narrow(-16, 32)

    def test_permission_drop_is_monotonic(self, rt):
        cap = rt.malloc(64)
        read_only = cap.drop_perms(Perm.LOAD)
        rt.load(read_only)
        with pytest.raises(CheriFault):
            rt.store(read_only, 1)

    def test_dropped_permission_stays_dropped(self, rt):
        cap = rt.malloc(64)
        ro = cap.drop_perms(Perm.LOAD)
        still_ro = ro.drop_perms(Perm.rw())  # AND: cannot re-grant STORE
        with pytest.raises(CheriFault):
            rt.store(still_ro, 1)


class TestTemporalGap:
    def test_uaf_not_detected_without_revocation(self, rt):
        """Base CHERI's documented gap (§X: CHERIvoke exists to close it):
        a freed capability still dereferences."""
        cap = rt.malloc(64)
        rt.free(cap)
        rt.load(cap)  # no exception: the capability is still tagged

    def test_fault_counters(self, rt):
        cap = rt.malloc(64)
        try:
            rt.load(cap.offset(64))
        except CheriFault:
            pass
        assert rt.faults == 1
        assert rt.checks >= 1

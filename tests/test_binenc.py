"""AOS instruction-encoding tests (§IV-A)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import EncodingError
from repro.isa.binenc import (
    OPCODES,
    REG_SP,
    assemble_aos_free,
    assemble_aos_malloc,
    decode,
    encode,
)

regs = st.integers(min_value=0, max_value=31)
mnemonics = st.sampled_from(sorted(OPCODES))


class TestEncodeDecode:
    @given(mnemonics, regs, regs, regs)
    def test_roundtrip(self, mnemonic, xd, xn, xm):
        decoded = decode(encode(mnemonic, xd=xd, xn=xn, xm=xm))
        assert decoded is not None
        assert decoded.mnemonic == mnemonic
        assert (decoded.xd, decoded.xn, decoded.xm) == (xd, xn, xm)

    def test_words_are_32_bit(self):
        for mnemonic in OPCODES:
            word = encode(mnemonic, xd=5, xn=6, xm=7)
            assert 0 <= word < (1 << 32)

    def test_distinct_opcodes(self):
        words = {encode(m, xd=1, xn=2, xm=3) for m in OPCODES}
        assert len(words) == len(OPCODES)

    def test_non_aos_word_decodes_to_none(self):
        assert decode(0xD503201F) is None  # A64 NOP
        assert decode(0x00000000) is None

    def test_rejects_bad_register(self):
        with pytest.raises(EncodingError):
            encode("pacma", xd=32)

    def test_rejects_unknown_mnemonic(self):
        with pytest.raises(EncodingError):
            encode("pacga")

    def test_rejects_oversized_word(self):
        with pytest.raises(EncodingError):
            decode(1 << 32)


class TestAssembly:
    def test_pacma_assembly_text(self):
        decoded = decode(encode("pacma", xd=0, xn=REG_SP, xm=1))
        assert decoded.assembly() == "pacma x0, sp, x1"

    def test_bndclr_assembly_text(self):
        decoded = decode(encode("bndclr", xn=3))
        assert decoded.assembly() == "bndclr x3"

    def test_xzr_rendering(self):
        decoded = decode(encode("pacma", xd=0, xn=REG_SP, xm=REG_SP))
        assert decoded.assembly() == "pacma x0, sp, xzr"

    def test_fig7a_malloc_sequence(self):
        pacma, bndstr = assemble_aos_malloc(ptr_reg=0, size_reg=1)
        assert decode(pacma).mnemonic == "pacma"
        assert decode(bndstr).mnemonic == "bndstr"
        assert decode(bndstr).xn == 0  # checks the signed pointer

    def test_fig7b_free_sequence(self):
        bndclr, xpacm, pacma = assemble_aos_free(ptr_reg=2)
        assert decode(bndclr).assembly() == "bndclr x2"
        assert decode(xpacm).assembly() == "xpacm x2"
        assert decode(pacma).assembly() == "pacma x2, sp, xzr"

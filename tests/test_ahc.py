"""Algorithm 1 (AHC) tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.ahc import compute_ahc, invariant_bits


class TestComputeAHC:
    def test_small_aligned_object(self):
        # 64-byte object at a 128-byte boundary: bits above 6 invariant.
        assert compute_ahc(0x20000000, 64) == 1

    def test_medium_object(self):
        # 256-byte object: varies into bit 8 but not past bit 9.
        assert compute_ahc(0x20000000, 512) == 2

    def test_large_object(self):
        assert compute_ahc(0x20000000, 4096) == 3

    def test_straddling_small_object_gets_bigger_class(self):
        # A 64-byte object straddling a 128-byte boundary varies bit 7+.
        assert compute_ahc(0x20000000 + 96, 64) == 2

    def test_size_one(self):
        assert compute_ahc(0x20000000, 1) == 1

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            compute_ahc(0x20000000, 0)

    @given(
        st.integers(min_value=0, max_value=(1 << 33) - 1),
        st.integers(min_value=1, max_value=1 << 20),
    )
    def test_always_in_range(self, addr, size):
        assert compute_ahc(addr, size) in (1, 2, 3)

    @given(st.integers(min_value=0, max_value=(1 << 33) - 1))
    def test_nonzero_means_signed(self, addr):
        """Any pacma'd pointer must read as signed (AHC != 0)."""
        assert compute_ahc(addr, 16) != 0


class TestInvariantBits:
    def test_values(self):
        assert invariant_bits(1) == 7
        assert invariant_bits(2) == 10
        assert invariant_bits(3) == 12

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            invariant_bits(0)

    @given(
        st.integers(min_value=0, max_value=(1 << 30) - 1).map(lambda a: a * 16),
        st.integers(min_value=1, max_value=(1 << 16)),
    )
    def test_ahc_classifies_invariance_correctly(self, addr, size):
        """All addresses within the object agree above the AHC's bit."""
        ahc = compute_ahc(addr, size)
        bit = invariant_bits(ahc)
        if ahc < 3:  # AHC 3 is the catch-all; no guarantee to check
            assert (addr >> bit) == ((addr + size - 1) >> bit)

"""Conformance harness: every kernel is byte-identical to the reference.

``repro.kernel.fast`` is a flattened transcription of the reference
scoreboard (:mod:`repro.cpu.pipeline`); ``repro.kernel.specialize`` is
trace-speculative generated code behind guards; ``repro.kernel.batch``
advances many specialized runs in lockstep.  Their shared contract is
*bit-exact* equivalence, not statistical agreement.  Every test here runs
the same lowered workload through all four execution paths — reference,
fast, specialized (training and steady-state) and batched — and compares
the JSON-serialised :class:`SimulationResult` payloads byte for byte —
cycles (floats included), cache summaries, traffic, MCU/HBT/BWB statistics
and metrics snapshots.

Coverage axes:

- every workload profile (SPEC 2006 + real-world) x {baseline, aos};
- one workload x every timed mechanism in the registry (the grid is
  registry-driven: a new plugin grows it automatically);
- every AOS ablation flag (Fig. 15 axes) plus BWB eviction policy;
- metrics-bearing observability (the fast path must publish the same
  counters) and tracing observability (the fast kernel must *delegate*);
- fault-injected cells through the standard seams (dropped ``bndstr``,
  stalled migration, dropped HBT record);
- the experiment-suite plumbing (``RunSettings.kernel`` -> workers/cache).

The specialized kernel's own guard machinery (injection seam, fallback
accounting, the native backend) is covered in tests/test_kernel_specialize.py
and the lockstep driver in tests/test_kernel_batch.py.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.compiler import lower_trace
from repro.cache.hierarchy import MemoryHierarchy
from repro.core.mcu import MemoryCheckUnit
from repro.cpu.core import Simulator
from repro.cpu.pipeline import PipelineModel
from repro.errors import ConfigError, SimulationError
from repro.experiments.common import (
    ExperimentSuite,
    RunSettings,
    _result_to_payload,
    scaled_config,
)
from repro.kernel import KERNELS
from repro.kernel.batch import BatchCell, run_batch
from repro.kernel.fast import run_fast
from repro.mechanisms import REGISTRY
from repro.obs import ObsSettings
from repro.workloads import generate_trace, get_profile
from repro.workloads.profiles import ALL_PROFILES

SEED = 7
SCALE = 8

#: Every registered mechanism that declares kernel support — the cell
#: grid grows automatically when a mechanism plugin registers.
ALL_MECHANISMS = list(REGISTRY.timed_names(kernel_only=True))

# ----------------------------------------------------------------- helpers

_traces: dict = {}
_lowered: dict = {}


def get_trace(workload: str, instructions: int):
    key = (workload, instructions)
    if key not in _traces:
        _traces[key] = generate_trace(
            get_profile(workload), instructions=instructions, seed=SEED, scale=SCALE
        )
    return _traces[key]


def get_lowered(workload: str, mechanism: str, instructions: int, config, key=None):
    cache_key = (workload, mechanism, instructions, key)
    if cache_key not in _lowered:
        _lowered[cache_key] = lower_trace(
            get_trace(workload, instructions), mechanism, config=config
        )
    return _lowered[cache_key]


def payload(result) -> str:
    """Canonical byte string of everything a run measured."""
    return json.dumps(_result_to_payload(result), sort_keys=True)


def simulate(kernel, workload, mechanism, instructions, config=None, key=None, obs=None):
    config = config or scaled_config(mechanism, SCALE)
    lowered = get_lowered(workload, mechanism, instructions, config, key=key)
    return Simulator(config, obs=obs, kernel=kernel).run(lowered)


def assert_equivalent(workload, mechanism, instructions, config=None, key=None):
    """All four execution paths, byte for byte.

    The specialized kernel runs twice: the first call may be the training
    run (executed on the fast path while the specialization compiles), the
    second is the steady-state generated code — both must match.  The
    batched path drives the same cell through the lockstep driver.
    """
    config = config or scaled_config(mechanism, SCALE)
    reference = simulate("reference", workload, mechanism, instructions, config, key)
    want = payload(reference)
    tag = f"{workload}/{mechanism} ({key or 'default'})"
    fast = simulate("fast", workload, mechanism, instructions, config, key)
    assert payload(fast) == want, f"fast kernel divergence: {tag}"
    training = simulate("specialized", workload, mechanism, instructions, config, key)
    assert payload(training) == want, f"specialized (training) divergence: {tag}"
    steady = simulate("specialized", workload, mechanism, instructions, config, key)
    assert payload(steady) == want, f"specialized (steady) divergence: {tag}"
    lowered = get_lowered(workload, mechanism, instructions, config, key=key)
    [batched] = run_batch([BatchCell(label=tag, config=config, lowered=lowered)])
    assert payload(batched) == want, f"batched divergence: {tag}"
    return reference


# ------------------------------------------------- all profiles, both modes


@pytest.mark.parametrize("workload", sorted(ALL_PROFILES))
def test_equivalence_all_profiles(workload):
    """Every workload profile, unprotected and fully protected."""
    for mechanism in ("baseline", "aos"):
        assert_equivalent(workload, mechanism, instructions=2500)


# ------------------------------------------------------------ all mechanisms


@pytest.mark.parametrize("mechanism", ALL_MECHANISMS)
def test_equivalence_all_mechanisms(mechanism):
    """One cache-stressing workload through every protection mechanism."""
    assert_equivalent("gcc", mechanism, instructions=6000)


def test_mechanism_grid_is_complete():
    """The equivalence grid covers every registered mechanism: timed ones
    run through the kernels above; anything else must be explicitly
    declared untimed (analytical models have no kernel to diverge)."""
    assert set(ALL_MECHANISMS) | set(REGISTRY.untimed_names()) == set(REGISTRY.names())
    assert len(REGISTRY.names()) >= 12


# ------------------------------------------------------------- AOS ablations


def ablated(key: str):
    base = scaled_config("aos", SCALE)
    if key == "fifo-bwb":
        return dataclasses.replace(
            base, bwb=dataclasses.replace(base.bwb, eviction="fifo")
        )
    flags = {
        "no-l1b": {"l1b_cache": False},
        "no-compression": {"bounds_compression": False},
        "no-forwarding": {"bounds_forwarding": False},
        "no-bwb": {"bwb_enabled": False},
        "blocking-resize": {"nonblocking_resize": False},
    }[key]
    return dataclasses.replace(base, aos=dataclasses.replace(base.aos, **flags))


@pytest.mark.parametrize(
    "ablation",
    ["no-l1b", "no-compression", "no-forwarding", "no-bwb", "blocking-resize", "fifo-bwb"],
)
def test_equivalence_ablations(ablation):
    """The Fig. 15 ablation axes flow through both kernels identically."""
    assert_equivalent("gcc", "aos", instructions=6000, config=ablated(ablation), key=ablation)


# ------------------------------------------------------------- observability


def test_equivalence_with_metrics():
    """Metrics-only observability: the fast path itself runs (no tracer)
    and must publish byte-identical ``publish_metrics`` counters."""
    obs_settings = ObsSettings(enabled=True, tracing=False)
    results = {}
    for kernel in KERNELS:
        results[kernel] = simulate(
            kernel, "gcc", "aos", instructions=5000, obs=obs_settings.create()
        )
    assert results["fast"].metrics, "metrics snapshot missing"
    for kernel in KERNELS:
        assert payload(results[kernel]) == payload(results["reference"]), kernel


def test_fast_kernel_delegates_when_tracing():
    """A tracer forces the reference path; results still match exactly."""
    obs_settings = ObsSettings(enabled=True, tracing=True)
    results = {
        kernel: simulate(
            kernel, "gcc", "aos", instructions=4000, obs=obs_settings.create()
        )
        for kernel in KERNELS
    }
    assert payload(results["fast"]) == payload(results["reference"])


def test_run_fast_refuses_tracer():
    """Calling the fast kernel directly with a tracer is a usage error —
    only :class:`Simulator` knows how to delegate."""
    config = scaled_config("aos", SCALE)
    lowered = get_lowered("gcc", "aos", 2500, config)
    hierarchy = MemoryHierarchy(config.memory, use_l1b=True)
    obs = ObsSettings(enabled=True, tracing=True).create()
    with pytest.raises(SimulationError):
        run_fast(config, hierarchy, None, (1 << 46) - 1, obs, lowered.program)


# ---------------------------------------------------------- fault injection


def run_wired(kernel, lowered, config, arm=None) -> str:
    """Mirror :meth:`Simulator.run`'s wiring so fault seams can be armed
    on the components *before* the kernel executes; returns the canonical
    byte string of everything the run touched."""
    program = lowered.program
    hbt = lowered.hbt  # fresh pre-warmed clone per call
    layout = lowered.pointer_layout
    hierarchy = MemoryHierarchy(config.memory, use_l1b=config.aos.l1b_cache)
    va_mask = layout.va_mask
    mcu = MemoryCheckUnit(
        hbt=hbt,
        layout=layout,
        options=config.aos,
        bwb_config=config.bwb,
        mcq_capacity=config.core.mcq_entries,
        bounds_access=hierarchy.access_bounds,
    )
    if arm is not None:
        arm(mcu, hbt)
    if kernel == "fast":
        result = run_fast(config, hierarchy, mcu, va_mask, None, program)
    else:
        result = PipelineModel(
            config, hierarchy, mcu=mcu, va_mask=va_mask, obs=None
        ).run(program)
    state = {
        "pipeline": dataclasses.asdict(result),
        "cache": hierarchy.summary(),
        "mcu": dataclasses.asdict(mcu.stats),
        "hbt": dataclasses.asdict(hbt.stats),
        "bwb": None if mcu.bwb is None else dataclasses.asdict(mcu.bwb.stats),
        "records": hbt.total_records(),
        "ways": hbt.ways,
        "resizing": hbt.resizing,
    }
    return json.dumps(state, sort_keys=True)


FAULT_SCENARIOS = {
    # A lost table write: allocations go live with no bounds, later checks
    # on them fault.
    "drop-bndstr": lambda mcu, hbt: mcu.inject_drop_bndstr(3),
    # Table manager dies mid-resize: Fig. 10 steering splits accesses
    # between old and new tables for the whole run.
    "stalled-migration": lambda mcu, hbt: hbt.interrupt_migration(),
    # A flipped valid bit / lost line: one live record vanishes.
    "dropped-record": lambda mcu, hbt: hbt.drop_record(*hbt.live_slots()[0]),
}


@pytest.mark.parametrize("scenario", sorted(FAULT_SCENARIOS))
def test_equivalence_under_fault_injection(scenario):
    """Fault-injected cells (the campaign seams) diverge in *behaviour*
    but never between kernels."""
    config = scaled_config("aos", SCALE)
    lowered = get_lowered("gcc", "aos", 5000, config)
    arm = FAULT_SCENARIOS[scenario]
    reference = run_wired("reference", lowered, config, arm=arm)
    fast = run_wired("fast", lowered, config, arm=arm)
    assert fast == reference, f"kernel divergence under fault {scenario!r}"


# --------------------------------------------------------- suite / settings


def test_equivalence_through_experiment_suite():
    """RunSettings.kernel drives the suite path (workers, cache keys)."""
    payloads = {}
    for kernel in KERNELS:
        suite = ExperimentSuite(RunSettings(instructions=4000, kernel=kernel))
        payloads[kernel] = payload(suite.result("mcf", "aos"))
    for kernel in KERNELS:
        assert payloads[kernel] == payloads["reference"], kernel


def test_invalid_kernel_rejected():
    with pytest.raises(ConfigError):
        RunSettings(kernel="bogus")
    with pytest.raises(ConfigError):
        Simulator(scaled_config("aos", SCALE), kernel="turbo")


# ------------------------------------------------------- adversarial corpus


#: Scenario programs exercise paths ordinary traces rarely hit back to back
#: (OOB loads faulting mid-stream, stale accesses after reuse, the §VII-C
#: unsigned-pointer skip), so they get their own byte-equality pins.
CORPUS_SCENARIOS = (
    "heap-overflow-adjacent",
    "uaf-after-realloc",
    "ahc-zero-escape",
    "nonlinear-oob-read",
)


@pytest.mark.parametrize("scenario", CORPUS_SCENARIOS)
def test_equivalence_on_corpus_scenarios(scenario):
    """Compiled exploit scenarios run byte-identically on both kernels."""
    from repro.adversary import compile_scenario

    for mechanism in ("aos", "pa+aos"):
        config = scaled_config(mechanism, SCALE)
        lowered = compile_scenario(
            scenario, mechanism, seed=SEED, scale=SCALE, config=config
        )
        reference = Simulator(config, kernel="reference").run(lowered)
        for kernel in ("fast", "specialized", "specialized"):
            result = Simulator(config, kernel=kernel).run(lowered)
            assert payload(result) == payload(reference), (
                f"{kernel} divergence on corpus scenario {scenario}/{mechanism}"
            )
        [batched] = run_batch(
            [BatchCell(label=scenario, config=config, lowered=lowered)]
        )
        assert payload(batched) == payload(reference), (
            f"batched divergence on corpus scenario {scenario}/{mechanism}"
        )


def test_corpus_scenario_faults_visible_to_both_kernels():
    """The compiled exploit actually fires: both kernels report the same
    non-zero validation fault count for a spatial must-detect."""
    from repro.adversary import compile_scenario

    config = scaled_config("aos", SCALE)
    lowered = compile_scenario(
        "heap-overflow-adjacent", "aos", seed=SEED, scale=SCALE, config=config
    )
    results = [
        Simulator(config, kernel=kernel).run(lowered) for kernel in KERNELS
    ]
    assert results[0].validation_faults > 0
    assert all(
        r.validation_faults == results[0].validation_faults for r in results
    )

"""Chaos test for the distributed campaign service: SIGKILL workers
mid-campaign and assert exactly-once completion with a merged result
byte-identical to a serial run (ISSUE acceptance bar)."""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.faults import Campaign, CampaignConfig, FaultKind
from repro.queue import (
    WorkQueue,
    collect_campaign,
    enqueue_campaign,
    verify_against_serial,
)
from repro.supervise import RetryPolicy

SRC = Path(__file__).resolve().parents[1] / "src"

CHAOS_CONFIG = CampaignConfig(
    workloads=("gcc",),
    mechanisms=("aos",),
    kinds=(
        FaultKind.PTR_PAC_FLIP,
        FaultKind.PTR_VA_FLIP,
        FaultKind.USE_AFTER_FREE,
        FaultKind.DOUBLE_FREE,
        FaultKind.HBT_ENTRY_CORRUPT,
        FaultKind.CHUNK_HEADER_CORRUPT,
    ),
    locations=1,
    objects=8,
    churn=1,
)


def worker_argv(queue_root, worker_id, extra=()):
    return [
        sys.executable,
        "-m",
        "repro",
        "worker",
        "--queue",
        str(queue_root),
        "--worker-id",
        worker_id,
        "--claim-batch",
        "1",
        "--lease-ttl",
        "2",
        "--worker-heartbeat-timeout",
        "1",
        "--no-cache",
        *extra,
    ]


def spawn_worker(queue_root, worker_id, extra=()):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        worker_argv(queue_root, worker_id, extra),
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def wait_all(procs, timeout_s=180.0):
    deadline = time.monotonic() + timeout_s
    outputs = []
    for proc in procs:
        remaining = max(1.0, deadline - time.monotonic())
        try:
            out, _ = proc.communicate(timeout=remaining)
        except subprocess.TimeoutExpired:
            proc.kill()
            out, _ = proc.communicate()
            pytest.fail(f"worker pid {proc.pid} hung past the chaos deadline:\n{out}")
        outputs.append(out)
    return outputs


def assert_exactly_once(queue, campaign_id, config):
    """The acceptance invariant: zero lost, zero duplicated, byte-identical."""
    counts = queue.counts(campaign_id)
    total = counts.total
    assert counts.pending == 0, counts.format()
    assert counts.leased == 0, counts.format()
    assert counts.quarantined == 0, counts.format()
    assert counts.done == total, counts.format()
    distributed = collect_campaign(queue, campaign_id)
    assert verify_against_serial(config, distributed) is None
    # Byte-level check, spelled out: identical canonical JSON.
    serial = Campaign(config).run()
    serial_bytes = json.dumps(
        [r.stable_payload() for r in serial.results], sort_keys=True
    ).encode()
    distributed_bytes = json.dumps(
        [r.stable_payload() for r in distributed.results], sort_keys=True
    ).encode()
    assert serial_bytes == distributed_bytes


@pytest.mark.slow
class TestWorkerCrashChaos:
    def test_self_killing_worker_campaign_completes_exactly_once(self, tmp_path):
        """3 workers, one SIGKILLs itself after its first ack. Survivors
        self-reclaim the orphaned leases; every cell completes exactly
        once; the merge is byte-identical to a serial run."""
        queue_root = tmp_path / "q"
        queue = WorkQueue(queue_root, retry=RetryPolicy(max_retries=3))
        enqueue_campaign(queue, "chaos", CHAOS_CONFIG)
        procs = [
            spawn_worker(queue_root, "w0", extra=["--kill-after-cells", "1"]),
            spawn_worker(queue_root, "w1"),
            spawn_worker(queue_root, "w2"),
        ]
        outputs = wait_all(procs)
        # The chaos worker must actually have died by SIGKILL.
        assert procs[0].returncode == -signal.SIGKILL, outputs[0]
        assert procs[1].returncode == 0, outputs[1]
        assert procs[2].returncode == 0, outputs[2]
        assert_exactly_once(queue, "chaos", CHAOS_CONFIG)

    def test_externally_killed_worker_is_recovered(self, tmp_path):
        """SIGKILL arrives from outside (no cooperation from the victim),
        mid-lease. A late-started worker drains the backlog."""
        queue_root = tmp_path / "q"
        queue = WorkQueue(queue_root, retry=RetryPolicy(max_retries=3))
        enqueue_campaign(queue, "chaos", CHAOS_CONFIG)
        victim = spawn_worker(queue_root, "victim")
        # Let it claim a lease before the kill.
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if queue.counts("chaos").leased or queue.counts("chaos").done:
                break
            time.sleep(0.05)
        os.kill(victim.pid, signal.SIGKILL)
        victim.communicate()
        rescuer = spawn_worker(queue_root, "rescuer")
        wait_all([rescuer])
        assert rescuer.returncode == 0
        assert_exactly_once(queue, "chaos", CHAOS_CONFIG)

    def test_clock_skewed_worker_does_not_break_exactly_once(self, tmp_path):
        """One worker stamps leases with a skewed clock (lease-clock-skew
        queue fault): peers may reclaim its cells instantly, but nothing
        is lost or double-merged."""
        queue_root = tmp_path / "q"
        queue = WorkQueue(queue_root, retry=RetryPolicy(max_retries=5))
        enqueue_campaign(queue, "chaos", CHAOS_CONFIG)
        procs = [
            spawn_worker(queue_root, "skewed", extra=["--clock-skew", "-30"]),
            spawn_worker(queue_root, "honest"),
        ]
        outputs = wait_all(procs)
        assert procs[0].returncode == 0, outputs[0]
        assert procs[1].returncode == 0, outputs[1]
        assert_exactly_once(queue, "chaos", CHAOS_CONFIG)

"""Experiment driver tests (small-scale versions of each table/figure)."""

import pytest

from repro.experiments import (
    ExperimentSuite,
    RunSettings,
    run_fig11,
    run_fig14,
    run_fig15,
    run_fig16,
    run_fig17,
    run_fig18,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
)

#: Two cheap, behaviourally distinct workloads for smoke-level experiments.
WORKLOADS = ["gobmk", "povray"]


@pytest.fixture(scope="module")
def suite():
    return ExperimentSuite(RunSettings(instructions=12_000, seed=13, scale=8))


class TestFig11:
    def test_small_run_statistics(self):
        result = run_fig11(n=1 << 16, pac_bits=16)
        d = result.distribution
        assert d.n_pointers == 1 << 16
        assert d.mean == pytest.approx(1.0)
        assert d.max >= 1
        assert "Avg" in result.format()

    def test_uniformity_at_scale(self):
        """Fig. 11's claim: QARMA PACs distribute uniformly."""
        result = run_fig11(n=1 << 18, pac_bits=14)
        d = result.distribution
        assert d.mean == pytest.approx(16.0)
        # Poisson-like spread: stdev close to sqrt(mean), far from mean.
        assert d.stdev < d.mean / 2


class TestFig14:
    def test_rows_and_geomeans(self, suite):
        result = run_fig14(suite, workloads=WORKLOADS)
        assert set(result.rows) == set(WORKLOADS)
        for values in result.rows.values():
            assert set(values) == {"watchdog", "pa", "aos", "pa+aos"}
            for v in values.values():
                assert 0.5 < v < 5.0
        assert "Geomean" in result.format()

    def test_watchdog_above_pa(self, suite):
        result = run_fig14(suite, workloads=WORKLOADS)
        assert result.geomeans["watchdog"] > result.geomeans["pa"]


class TestFig15:
    def test_variants(self, suite):
        result = run_fig15(suite, workloads=["povray"])
        assert set(result.rows["povray"]) == {
            "no-opt", "l1b", "compression", "l1b+compression",
        }
        # Both optimisations on must not be slower than neither.
        row = result.rows["povray"]
        assert row["l1b+compression"] <= row["no-opt"] * 1.02


class TestFig16:
    def test_categories(self, suite):
        result = run_fig16(suite, workloads=WORKLOADS)
        for row in result.rows.values():
            assert set(row) == {
                "UnsignedLoad", "UnsignedStore", "SignedLoad", "SignedStore",
                "bndstr/bndclr", "pac*/aut*/xpac*",
            }

    def test_signed_fraction_tracks_profile(self, suite):
        result = run_fig16(suite, workloads=WORKLOADS)
        # povray's heap fraction (0.52) >> gobmk's (0.30).
        assert result.signed_fraction["povray"] > result.signed_fraction["gobmk"]


class TestFig17:
    def test_metrics_in_range(self, suite):
        result = run_fig17(suite, workloads=WORKLOADS)
        for w in WORKLOADS:
            assert 0.3 <= result.accesses_per_check[w] <= 8.0
            assert 0.0 <= result.bwb_hit_rate[w] <= 1.0


class TestFig18:
    def test_traffic_rows(self, suite):
        result = run_fig18(suite, workloads=WORKLOADS)
        for values in result.rows.values():
            assert values["watchdog"] > 0.9


class TestTables:
    def test_table1(self):
        result = run_table1()
        text = result.format()
        assert "MCQ" in text and "BWB" in text
        assert "paper" in text

    def test_table2_has_16_rows(self):
        result = run_table2()
        assert len(result.rows) == 16
        gcc = next(r for r in result.rows if r.name == "gcc")
        assert gcc.allocations == 1846825

    def test_table3_has_6_rows(self):
        result = run_table3()
        assert len(result.rows) == 6
        apache = next(r for r in result.rows if r.name == "apache")
        assert apache.max_active == 7592

    def test_table4_renders(self):
        text = run_table4().format()
        assert "8-wide" in text
        assert "16-bit PAC" in text


class TestSuiteCaching:
    def test_results_memoised(self, suite):
        a = suite.result("gobmk", "baseline")
        b = suite.result("gobmk", "baseline")
        assert a is b

    def test_traces_memoised(self, suite):
        assert suite.trace("gobmk") is suite.trace("gobmk")

    def test_cache_info_counts(self):
        local = ExperimentSuite(RunSettings(instructions=4_000, seed=3, scale=8))
        assert local.cache_info() == {"traces": 0, "lowered": 0, "results": 0}
        local.result("povray", "baseline")
        info = local.cache_info()
        assert info["traces"] == 1
        assert info["lowered"] == 1
        assert info["results"] == 1

    def test_clear_caches(self):
        local = ExperimentSuite(RunSettings(instructions=4_000, seed=3, scale=8))
        local.result("povray", "baseline")
        local.clear_caches(traces=False)
        info = local.cache_info()
        assert info == {"traces": 1, "lowered": 0, "results": 0}
        local.clear_caches()
        assert local.cache_info() == {"traces": 0, "lowered": 0, "results": 0}

    def test_normalized_time_zero_baseline_guard(self, suite):
        run = suite.result("gobmk", "aos")
        base = suite.result("gobmk", "baseline")
        saved = base.cycles
        try:
            base.cycles = 0
            assert suite.normalized_time("gobmk", "aos") == 1.0
        finally:
            base.cycles = saved
        assert run.cycles > 0  # the real ratio path still exercised elsewhere

    def test_normalized_time_baseline_is_explicit(self, suite):
        """A custom mechanism ``config``/``key`` must not silently change
        the denominator: the baseline cell stays the default unless the
        caller names one via ``baseline_config``/``baseline_key``."""
        tuned = suite.config_for("aos").with_aos_options(bwb_enabled=False)
        ratio = suite.normalized_time("gobmk", "aos", config=tuned, key="aos-nobwb")
        base = suite.result("gobmk", "baseline")
        run = suite.result("gobmk", "aos", key="aos-nobwb")
        assert ratio == pytest.approx(run.cycles / base.cycles)

    def test_normalized_time_custom_baseline_key(self, suite):
        """``baseline_key`` selects an alternative baseline cell."""
        default = suite.normalized_time("gobmk", "aos")
        aliased = suite.normalized_time(
            "gobmk", "aos", baseline_key="baseline-alias"
        )
        # Same (deterministic) simulation under a different memo label.
        assert aliased == pytest.approx(default)
        assert ("gobmk", "baseline-alias") in suite.result_payloads()


class TestSuiteCheckpoint:
    SETTINGS = RunSettings(instructions=4_000, seed=3, scale=8)

    def test_results_resume_from_checkpoint(self, tmp_path):
        path = tmp_path / "suite.jsonl"
        first = ExperimentSuite(self.SETTINGS, checkpoint=path)
        a = first.result("povray", "baseline")
        assert first.resumed_cells == 0

        second = ExperimentSuite(self.SETTINGS, checkpoint=path)
        assert second.resumed_cells == 1
        assert second.cache_info()["results"] == 1
        b = second.result("povray", "baseline")  # no re-simulation
        assert b.cycles == a.cycles
        assert b.network_traffic_bytes == a.network_traffic_bytes
        assert second.cache_info()["lowered"] == 0  # never lowered anything

    def test_settings_change_invalidates_checkpoint(self, tmp_path):
        path = tmp_path / "suite.jsonl"
        first = ExperimentSuite(self.SETTINGS, checkpoint=path)
        first.result("povray", "baseline")

        other = RunSettings(instructions=4_000, seed=99, scale=8)
        fresh = ExperimentSuite(other, checkpoint=path)
        assert fresh.resumed_cells == 0
        assert fresh.cache_info()["results"] == 0

"""Schema-robustness tests: malformed trace files raise *named* errors.

Every corruption mode — truncation (even at clean line/frame
boundaries), trailing garbage, unknown record kinds, version skew,
impossible semantics — must surface as a :class:`TraceFormatError`
subclass, never as a silent partial import, a wrong-typed exception, or
a half-built ``WorkloadTrace``.  A seeded mutation fuzzer over the
committed golden fixtures closes the gaps the deterministic cases miss.
"""

import json
import random
import struct
from pathlib import Path

import pytest

from repro.errors import (
    TraceDecodeError,
    TraceFormatError,
    TraceSemanticError,
    TraceVersionError,
)
from repro.traces import (
    TraceHeader,
    TraceRecord,
    TraceWriter,
    detect_format,
    import_trace,
    scan_trace,
)

GOLDEN = Path(__file__).parent / "golden" / "traces"

HEADER = TraceHeader(name="t", scale=2, seed=3)


def write_trace(path, records, header=HEADER, format="jsonl"):
    with TraceWriter(path, header, format=format) as writer:
        for record in records:
            writer.write(record)
    return path


VALID_RECORDS = (
    TraceRecord(kind="obj", obj=0, size=64),
    TraceRecord(kind="alloc", obj=1, size=32),
    TraceRecord(kind="load", obj=0, offset=8),
    TraceRecord(kind="store", obj=1, offset=0, ptr=True),
    TraceRecord(kind="free", obj=1),
    TraceRecord(kind="alu"),
)


@pytest.fixture(params=["jsonl", "binary"])
def valid_file(request, tmp_path):
    extension = "jsonl" if request.param == "jsonl" else "bin"
    return write_trace(
        tmp_path / f"valid.{extension}", VALID_RECORDS, format=request.param
    )


# ------------------------------------------------------------- versioning


def test_jsonl_version_skew_rejected_by_name(tmp_path):
    path = write_trace(tmp_path / "t.jsonl", VALID_RECORDS)
    lines = path.read_text().splitlines(keepends=True)
    header = json.loads(lines[0])
    header["schema_version"] = 2
    path.write_text(json.dumps(header) + "\n" + "".join(lines[1:]))
    with pytest.raises(TraceVersionError, match="version 2 is not supported"):
        import_trace(path)


def test_binary_framing_version_skew_rejected_by_name(tmp_path):
    path = write_trace(tmp_path / "t.bin", VALID_RECORDS, format="binary")
    data = bytearray(path.read_bytes())
    struct.pack_into("<H", data, 8, 9)  # framing version u16 after magic
    path.write_bytes(bytes(data))
    with pytest.raises(TraceVersionError, match="version 9"):
        import_trace(path)


def test_binary_embedded_header_version_skew(tmp_path):
    """The JSON header inside the binary container is checked too."""
    path = tmp_path / "t.bin"
    header = json.dumps(
        {"format": "repro-trace", "schema_version": 3, "name": "t",
         "scale": 1, "seed": 0, "mispredict_rate": 0.0, "profile": None}
    ).encode()
    path.write_bytes(b"RPTRACE0" + struct.pack("<H", 1)
                     + struct.pack("<I", len(header)) + header)
    with pytest.raises(TraceVersionError):
        import_trace(path)


# ------------------------------------------------------------- truncation


def test_jsonl_missing_end_record(tmp_path):
    path = write_trace(tmp_path / "t.jsonl", VALID_RECORDS)
    lines = path.read_text().splitlines(keepends=True)
    path.write_text("".join(lines[:-1]))  # drop the end line cleanly
    with pytest.raises(TraceDecodeError, match="missing end record"):
        import_trace(path)


def test_jsonl_truncated_mid_line(tmp_path):
    path = write_trace(tmp_path / "t.jsonl", VALID_RECORDS)
    data = path.read_bytes()
    path.write_bytes(data[: len(data) - 7])  # cut inside the last line
    with pytest.raises(TraceDecodeError):
        import_trace(path)


def test_jsonl_end_count_mismatch(tmp_path):
    path = write_trace(tmp_path / "t.jsonl", VALID_RECORDS)
    lines = path.read_text().splitlines(keepends=True)
    # Delete the final ("alu") record line but keep the wrong end count;
    # an innocuous record so the semantic pass cannot trip first.
    path.write_text("".join(lines[:-2] + lines[-1:]))
    with pytest.raises(TraceDecodeError, match="declares 6 records but 5"):
        import_trace(path)


def test_binary_missing_end_frame(tmp_path):
    path = write_trace(tmp_path / "t.bin", VALID_RECORDS, format="binary")
    data = path.read_bytes()
    path.write_bytes(data[: len(data) - (4 + 1 + 8)])  # whole end frame
    with pytest.raises(TraceDecodeError, match="missing end frame"):
        import_trace(path)


def test_binary_truncated_mid_frame(tmp_path):
    path = write_trace(tmp_path / "t.bin", VALID_RECORDS, format="binary")
    data = path.read_bytes()
    path.write_bytes(data[: len(data) - 3])
    with pytest.raises(TraceDecodeError):
        import_trace(path)


def test_abandoned_writer_leaves_rejected_file(tmp_path):
    """A writer torn down by an exception must not leave a readable file."""
    for format, extension in (("jsonl", "jsonl"), ("binary", "bin")):
        path = tmp_path / f"abandoned.{extension}"
        with pytest.raises(RuntimeError):
            with TraceWriter(path, HEADER, format=format) as writer:
                writer.write(VALID_RECORDS[0])
                raise RuntimeError("simulated crash mid-export")
        with pytest.raises(TraceDecodeError):
            import_trace(path)


# ------------------------------------------------------- trailing garbage


def test_trailing_garbage_rejected(valid_file):
    with open(valid_file, "ab") as fh:
        fh.write(b"extra")
    with pytest.raises(TraceDecodeError, match="trailing garbage"):
        import_trace(valid_file)


# ---------------------------------------------------------- unknown kinds


def test_jsonl_unknown_record_kind(tmp_path):
    path = write_trace(tmp_path / "t.jsonl", VALID_RECORDS[:1])
    lines = path.read_text().splitlines(keepends=True)
    lines.insert(1, '{"k":"zorp","x":1}\n')
    path.write_text("".join(lines))
    with pytest.raises(TraceDecodeError, match="unknown record kind 'zorp'"):
        import_trace(path)


def test_jsonl_unknown_record_field(tmp_path):
    path = write_trace(tmp_path / "t.jsonl", VALID_RECORDS[:1])
    lines = path.read_text().splitlines(keepends=True)
    lines.insert(1, '{"k":"alu","surprise":true}\n')
    path.write_text("".join(lines))
    with pytest.raises(TraceDecodeError, match="unknown record fields"):
        import_trace(path)


def test_binary_unknown_kind_code(tmp_path):
    path = write_trace(tmp_path / "t.bin", VALID_RECORDS[:1], format="binary")
    data = path.read_bytes()
    end = data[-(4 + 1 + 8):]
    body = data[: len(data) - len(end)]
    frame = struct.pack("<I", 1) + bytes((0x3A,))
    path.write_bytes(body + frame + end)
    with pytest.raises(TraceDecodeError, match="unknown record kind code 0x3a"):
        import_trace(path)


def test_unknown_header_field_rejected(tmp_path):
    path = write_trace(tmp_path / "t.jsonl", VALID_RECORDS)
    lines = path.read_text().splitlines(keepends=True)
    header = json.loads(lines[0])
    header["zorp"] = 1
    path.write_text(json.dumps(header) + "\n" + "".join(lines[1:]))
    with pytest.raises(TraceDecodeError, match="unknown fields"):
        import_trace(path)


def test_not_a_trace_file(tmp_path):
    path = tmp_path / "x.bin"
    path.write_bytes(b"\x00\x01\x02 definitely not a trace")
    with pytest.raises(TraceDecodeError, match="not a trace file"):
        detect_format(path)


# --------------------------------------------------------------- semantics


def _semantic(tmp_path, records, format="jsonl"):
    extension = "jsonl" if format == "jsonl" else "bin"
    return write_trace(tmp_path / f"s.{extension}", records, format=format)


def test_duplicate_object_id(tmp_path):
    path = _semantic(tmp_path, [
        TraceRecord(kind="obj", obj=0, size=64),
        TraceRecord(kind="alloc", obj=0, size=32),
    ])
    with pytest.raises(TraceSemanticError, match="duplicate object id 0"):
        import_trace(path)


def test_preamble_after_window_events(tmp_path):
    path = _semantic(tmp_path, [
        TraceRecord(kind="alu"),
        TraceRecord(kind="obj", obj=0, size=64),
    ])
    with pytest.raises(TraceSemanticError, match="after window events"):
        import_trace(path)


def test_free_of_unknown_object(tmp_path):
    path = _semantic(tmp_path, [TraceRecord(kind="free", obj=9)])
    with pytest.raises(TraceSemanticError, match="free of unknown object 9"):
        import_trace(path)


def test_double_free(tmp_path):
    path = _semantic(tmp_path, [
        TraceRecord(kind="obj", obj=0, size=64),
        TraceRecord(kind="free", obj=0),
        TraceRecord(kind="free", obj=0),
    ])
    with pytest.raises(TraceSemanticError, match="double free of object 0"):
        import_trace(path)


def test_access_to_undeclared_object(tmp_path):
    path = _semantic(tmp_path, [TraceRecord(kind="load", obj=5, offset=0)])
    with pytest.raises(TraceSemanticError, match="load of undeclared object 5"):
        import_trace(path)


def test_uaf_and_oob_are_valid_schema(tmp_path):
    """Attack traces are the point: stale loads into freed chunks and
    offsets past the object size import cleanly."""
    path = _semantic(tmp_path, [
        TraceRecord(kind="obj", obj=0, size=64),
        TraceRecord(kind="free", obj=0),
        TraceRecord(kind="load", obj=0, offset=8),        # use-after-free
        TraceRecord(kind="store", obj=0, offset=4096),    # out-of-bounds
    ])
    trace = import_trace(path)
    assert trace.events == [("f", 0), ("ld", 0, 8, False, False),
                            ("st", 0, 4096, False)]


def test_header_profile_name_mismatch(tmp_path):
    import dataclasses as dc

    from repro.workloads import get_profile

    payload = dc.asdict(get_profile("bzip2"))
    header = TraceHeader(name="not-bzip2", profile=payload)
    path = write_trace(tmp_path / "t.jsonl", [], header=header)
    with pytest.raises(TraceSemanticError, match="does not match"):
        import_trace(path)


def test_scan_trace_counts_and_digest(valid_file):
    stats = scan_trace(valid_file)
    assert stats.records == len(VALID_RECORDS)
    assert stats.counts["obj"] == 1 and stats.counts["load"] == 1
    assert len(stats.digest) == 64
    assert "schema v1" in stats.format_summary()


# -------------------------------------------------------------------- fuzz


def _mutate(data: bytes, rng: random.Random) -> bytes:
    """One seeded corruption: byte flip, truncation, deletion, insertion,
    or duplication of a slice."""
    if not data:
        return b"\x00"
    choice = rng.randrange(5)
    position = rng.randrange(len(data))
    if choice == 0:  # flip one byte
        return (data[:position]
                + bytes((data[position] ^ (1 << rng.randrange(8)),))
                + data[position + 1:])
    if choice == 1:  # truncate
        return data[:position]
    if choice == 2:  # delete a short slice
        return data[:position] + data[position + rng.randrange(1, 9):]
    if choice == 3:  # insert noise
        return (data[:position]
                + bytes(rng.randrange(256) for _ in range(rng.randrange(1, 9)))
                + data[position:])
    length = rng.randrange(1, 65)  # duplicate a slice
    return data[:position] + data[position:position + length] + data[position:]


@pytest.mark.parametrize(
    "fixture", ["handwritten.v1.jsonl", "handwritten.v1.bin",
                "bzip2.v1.jsonl", "bzip2.v1.bin"]
)
def test_fuzzed_mutations_never_silently_partial(fixture, tmp_path):
    """Property: a mutated golden fixture either raises a TraceFormatError
    subclass or imports to a complete WorkloadTrace — never any other
    exception, never a half-built object."""
    from repro.workloads.generator import WorkloadTrace

    original = (GOLDEN / fixture).read_bytes()
    rng = random.Random(f"trace-fuzz:{fixture}")
    survivors = 0
    for iteration in range(120):
        mutated = _mutate(original, rng)
        path = tmp_path / f"m{iteration}{Path(fixture).suffix}"
        path.write_bytes(mutated)
        try:
            trace = import_trace(path)
        except TraceFormatError:
            continue
        except FileNotFoundError:  # pragma: no cover - never expected
            raise
        assert isinstance(trace, WorkloadTrace)
        # A surviving mutation decoded end-to-end: the stream it carried
        # was fully consumed (events/preamble/sizes are consistent).
        assert set(dict(trace.preamble)) <= set(trace.object_sizes)
        survivors += 1
    # Most mutations must be *caught*; if nearly all survive, the
    # validators are not actually looking at the bytes.
    assert survivors < 60, f"only {120 - survivors} mutations detected"

"""Property round-trip tests: bounds compression, pointer signing, binenc.

Each property drives ~1000 seeded-random cases through an encode/decode
pair and asserts the algebraic invariant the paper's hardware relies on.
Plain ``random.Random`` loops (not hypothesis) keep the case count and
the failure inputs exactly reproducible from the printed seed.
"""

import random

import numpy as np
import pytest

from repro.core.bounds import (
    CompressedBounds,
    compress_bounds,
    decompress_bounds,
    truncate_address,
)
from repro.core.signing import AuthenticationFault, PointerSigner
from repro.crypto.pac import PACGenerator, PAKeys
from repro.crypto.qarma import MASK64, Qarma64
from repro.crypto.qarma_batch import Qarma64Batch
from repro.errors import EncodingError
from repro.isa import binenc
from repro.isa.encoding import PointerLayout

SEED = 0xA05
CASES = 1000


def _cases(seed=SEED, count=CASES):
    rng = random.Random(seed)
    return rng, range(count)


class TestBoundsCompression:
    """Fig. 9: 29-bit LowBnd + 32-bit Size with carry compensation."""

    def test_compress_decompress_round_trip(self):
        rng, cases = _cases()
        for _ in cases:
            lower = rng.randrange(0, 1 << 32) & ~0xF
            size = rng.randrange(1, 1 << 32)
            bounds = decompress_bounds(compress_bounds(lower, size))
            assert bounds.lower == lower, (lower, size)
            assert bounds.size == size, (lower, size)
            assert bounds.upper == lower + size

    def test_containment_within_allocation(self):
        rng, cases = _cases(seed=SEED + 1)
        for _ in cases:
            lower = rng.randrange(0, 1 << 32) & ~0xF
            size = rng.randrange(1, 1 << 32)
            bounds = decompress_bounds(compress_bounds(lower, size))
            assert bounds.contains(lower), (lower, size)
            assert bounds.contains(lower + size - 1), (lower, size)
            interior = lower + rng.randrange(size)
            assert bounds.contains(interior), (lower, size, interior)

    def test_rejection_outside_allocation(self):
        rng, cases = _cases(seed=SEED + 2)
        for _ in cases:
            lower = rng.randrange(1 << 10, 1 << 32) & ~0xF
            size = rng.randrange(1, 1 << 20)
            bounds = decompress_bounds(compress_bounds(lower, size))
            assert not bounds.contains(lower + size), (lower, size)
            assert not bounds.contains(lower - 1), (lower, size)

    def test_carry_compensation_across_bit32(self):
        """Fig. 9b's C bit: allocations straddling the 2^33 boundary keep
        their upper half in bounds even though tAddr drops bit 33."""
        rng, cases = _cases(seed=SEED + 3)
        for _ in cases:
            # Lower bound just below 2^33 (bit 32 set), size crossing it.
            lower = ((1 << 33) - rng.randrange(16, 1 << 16)) & ~0xF
            size = rng.randrange(1 << 17, 1 << 20)
            bounds = decompress_bounds(compress_bounds(lower, size))
            crossing = (1 << 33) + rng.randrange(size - ((1 << 33) - lower))
            assert crossing < lower + size
            assert bounds.contains(crossing), (lower, size, crossing)

    def test_truncate_address_identity_below_bit33(self):
        rng, cases = _cases(seed=SEED + 4)
        for _ in cases:
            address = rng.randrange(0, 1 << 33)
            low_field = rng.randrange(0, 1 << 28)  # bit 32 of LowBnd clear
            assert truncate_address(address, low_field) == address

    def test_empty_record_contains_nothing(self):
        bounds = CompressedBounds(raw=0)
        assert bounds.is_empty
        assert not bounds.contains(0)

    def test_compress_validates_inputs(self):
        with pytest.raises(EncodingError):
            compress_bounds(0x1008, 64)  # not 16-byte aligned
        with pytest.raises(EncodingError):
            compress_bounds(0x1000, 0)  # zero size
        with pytest.raises(EncodingError):
            compress_bounds(0x1000, 1 << 32)  # size field overflow


class TestPointerLayout:
    """§IV-A pointer format: VA(46) | AHC(2) | PAC(16)."""

    def test_sign_decode_round_trip(self):
        layout = PointerLayout()
        rng, cases = _cases(seed=SEED + 5)
        for _ in cases:
            address = rng.randrange(0, 1 << layout.va_bits)
            pac = rng.randrange(0, 1 << layout.pac_bits)
            ahc = rng.randrange(0, 4)
            pointer = layout.sign(address, pac, ahc)
            assert layout.address(pointer) == address
            assert layout.pac(pointer) == pac
            assert layout.ahc(pointer) == ahc
            assert layout.is_signed(pointer) == (ahc != 0)
            decoded = layout.decode(pointer)
            assert (decoded.address, decoded.pac, decoded.ahc) == (
                address, pac, ahc,
            )

    def test_strip_removes_metadata_and_is_idempotent(self):
        layout = PointerLayout()
        rng, cases = _cases(seed=SEED + 6)
        for _ in cases:
            address = rng.randrange(0, 1 << layout.va_bits)
            pointer = layout.sign(
                address, rng.randrange(1 << layout.pac_bits), rng.randrange(4)
            )
            stripped = layout.strip(pointer)
            assert stripped == address
            assert layout.strip(stripped) == stripped
            assert not layout.is_signed(stripped)

    def test_sign_validates_field_widths(self):
        layout = PointerLayout()
        with pytest.raises(EncodingError):
            layout.sign(1 << layout.va_bits, 0, 0)
        with pytest.raises(EncodingError):
            layout.sign(0, 1 << layout.pac_bits, 0)
        with pytest.raises(EncodingError):
            layout.sign(0, 0, 4)


class TestSignerRoundTrip:
    """pacma -> xpacm/autm semantics over random pointers (fast PAC mode)."""

    def setup_method(self):
        self.signer = PointerSigner(generator=PACGenerator(mode="fast"))

    def test_pacma_xpacm_restores_address(self):
        rng, cases = _cases(seed=SEED + 7)
        va_bits = self.signer.layout.va_bits
        for _ in cases:
            address = rng.randrange(0, 1 << va_bits) & ~0xF
            modifier = rng.randrange(0, 1 << 64)
            size = rng.randrange(1, 1 << 32)
            signed = self.signer.pacma(address, modifier, size)
            assert self.signer.xpacm(signed) == address
            assert self.signer.is_signed(signed)

    def test_pacma_deterministic(self):
        rng, cases = _cases(seed=SEED + 8, count=200)
        for _ in cases:
            address = rng.randrange(0, 1 << 40) & ~0xF
            modifier = rng.randrange(0, 1 << 64)
            size = rng.randrange(1, 1 << 20)
            assert self.signer.pacma(address, modifier, size) == (
                self.signer.pacma(address, modifier, size)
            )

    def test_autm_passes_signed_and_faults_unsigned(self):
        rng, cases = _cases(seed=SEED + 9, count=200)
        for _ in cases:
            address = rng.randrange(0, 1 << 40) & ~0xF
            signed = self.signer.pacma(address, rng.randrange(1 << 32), 64)
            assert self.signer.autm(signed) == signed  # autm does not strip
            with pytest.raises(AuthenticationFault):
                self.signer.autm(self.signer.xpacm(signed))


class TestBinencRoundTrip:
    """Table: every AOS mnemonic encodes/decodes losslessly; everything
    outside the reserved group decodes to None."""

    def test_encode_decode_round_trip_all_mnemonics(self):
        rng, cases = _cases(seed=SEED + 10)
        mnemonics = sorted(binenc.OPCODES)
        for _ in cases:
            mnemonic = rng.choice(mnemonics)
            xd, xn, xm = (rng.randrange(32) for _ in range(3))
            word = binenc.encode(mnemonic, xd=xd, xn=xn, xm=xm)
            decoded = binenc.decode(word)
            assert decoded is not None
            assert (decoded.mnemonic, decoded.xd, decoded.xn, decoded.xm) == (
                mnemonic, xd, xn, xm,
            )

    def test_decoded_words_reencode_identically(self):
        rng, cases = _cases(seed=SEED + 11)
        for _ in cases:
            word = rng.randrange(0, 1 << 32)
            decoded = binenc.decode(word)
            if decoded is None:
                continue
            assert binenc.encode(
                decoded.mnemonic, xd=decoded.xd, xn=decoded.xn, xm=decoded.xm
            ) == word

    def test_non_group_words_decode_to_none(self):
        rng, cases = _cases(seed=SEED + 12)
        for _ in cases:
            word = rng.randrange(0, 1 << 32)
            if (word >> 21) != binenc.GROUP_TAG:
                assert binenc.decode(word) is None

    def test_encode_validates_registers(self):
        with pytest.raises(EncodingError):
            binenc.encode("bndstr", xd=32)
        with pytest.raises(EncodingError):
            binenc.encode("not-an-op")
        with pytest.raises(EncodingError):
            binenc.decode(1 << 32)


class TestBatchQarmaEquivalence:
    """The NumPy-vectorised QARMA (``repro.crypto.qarma_batch``) must be
    element-for-element identical to the scalar reference cipher — the
    invariant the batched preamble signing (and therefore the fast-kernel
    lowering path) rests on."""

    #: Degenerate and published key material: all-zero, all-ones (128-bit),
    #: and the paper's §VI study key.
    EDGE_KEYS = (0, (1 << 128) - 1, PAKeys().apma)
    EDGE_TWEAKS = (0, MASK64)
    EDGE_PLAINTEXTS = (0, 1, MASK64, 1 << 63)

    def test_encrypt_matches_scalar(self):
        rng, cases = _cases(seed=SEED + 20)
        key = PAKeys().apma
        scalar = Qarma64(key)
        batch = Qarma64Batch(key)
        plaintexts = [rng.randrange(0, 1 << 64) for _ in cases]
        for start in range(0, CASES, 250):  # 4 tweaks x 250 points
            tweak = rng.randrange(0, 1 << 64)
            chunk = plaintexts[start : start + 250]
            got = batch.encrypt(np.array(chunk, dtype=np.uint64), tweak)
            want = [scalar.encrypt(p, tweak) for p in chunk]
            assert [int(x) for x in got] == want, (tweak, start)

    def test_encrypt_edge_values(self):
        rng, _ = _cases(seed=SEED + 21)
        for key in self.EDGE_KEYS:
            scalar = Qarma64(key)
            batch = Qarma64Batch(key)
            points = list(self.EDGE_PLAINTEXTS) + [
                rng.randrange(0, 1 << 64) for _ in range(8)
            ]
            for tweak in self.EDGE_TWEAKS:
                got = batch.encrypt(np.array(points, dtype=np.uint64), tweak)
                want = [scalar.encrypt(p, tweak) for p in points]
                assert [int(x) for x in got] == want, (key, tweak)

    def test_pacs_are_truncated_encryptions(self):
        rng, _ = _cases(seed=SEED + 22)
        key = PAKeys().apmb
        scalar = Qarma64(key)
        batch = Qarma64Batch(key)
        for pac_bits in (11, 16, 32):
            pointers = [rng.randrange(0, 1 << 64) for _ in range(100)]
            tweak = rng.randrange(0, 1 << 64)
            got = batch.pacs(
                np.array(pointers, dtype=np.uint64), tweak, pac_bits=pac_bits
            )
            mask = (1 << pac_bits) - 1
            want = [scalar.encrypt(p, tweak) & mask for p in pointers]
            assert [int(x) for x in got] == want, pac_bits

    def test_generator_compute_batch_matches_compute(self):
        rng, _ = _cases(seed=SEED + 23)
        for mode, count in (("qarma", 200), ("fast", 800)):
            generator = PACGenerator(mode=mode)
            pointers = [rng.randrange(0, 1 << 64) for _ in range(count)]
            modifier = rng.randrange(0, 1 << 64)
            for key_name in ("ma", "mb"):
                got = generator.compute_batch(pointers, modifier, key_name=key_name)
                want = [
                    generator.compute(p, modifier, key_name=key_name)
                    for p in pointers
                ]
                assert got == want, (mode, key_name)
        assert PACGenerator().compute_batch([], 42) == []

    def test_signer_pacma_batch_matches_pacma(self):
        rng, _ = _cases(seed=SEED + 24)
        for mode, count in (("qarma", 150), ("fast", 850)):
            signer = PointerSigner(generator=PACGenerator(mode=mode))
            va_limit = 1 << signer.layout.va_bits
            pointers = [rng.randrange(0, va_limit) for _ in range(count)]
            # Sizes cover the zero-means-one re-signing convention (§IV-C).
            sizes = [rng.choice((0, 1, 16, rng.randrange(1, 1 << 20))) for _ in pointers]
            modifier = rng.randrange(0, 1 << 64)
            got = signer.pacma_batch(pointers, modifier, sizes)
            want = [
                signer.pacma(p, modifier, s) for p, s in zip(pointers, sizes)
            ]
            assert got == want, mode

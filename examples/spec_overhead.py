#!/usr/bin/env python3
"""Reproduce a slice of Fig. 14: per-workload overhead of each mechanism.

Generates synthetic traces for a handful of SPEC 2006 workloads, lowers
them for every protection mechanism, runs the out-of-order timing model,
and prints normalized execution time, dynamic-instruction overhead, and
network traffic — the paper's headline comparison.

Run with::

    python examples/spec_overhead.py [workload ...]

(defaults to bzip2, hmmer and povray; any Table II name works, but large
live-set workloads like omnetpp take a minute).
"""

import sys

from repro.compiler import lower_trace
from repro.cpu.core import Simulator
from repro.experiments.common import MECHANISMS, scaled_config
from repro.workloads import generate_trace, get_profile

DEFAULT_WORKLOADS = ["bzip2", "hmmer", "povray"]
SCALE = 8


def run_workload(name: str) -> None:
    print(f"\n=== {name} ===")
    profile = get_profile(name)
    print(f"    {profile.description}")
    trace = generate_trace(profile, instructions=40_000, seed=7, scale=SCALE)

    results = {}
    lowered = {}
    for mechanism in MECHANISMS:
        config = scaled_config(mechanism, SCALE)
        lowered[mechanism] = lower_trace(trace, mechanism, config=config)
        results[mechanism] = Simulator(config).run(lowered[mechanism])

    base = results["baseline"]
    base_insts = len(lowered["baseline"].program)
    header = f"    {'mechanism':10s} {'norm.time':>10s} {'instr.ovh':>10s} {'norm.traffic':>13s}"
    print(header)
    for mechanism in MECHANISMS:
        r = results[mechanism]
        time_ratio = r.cycles / base.cycles
        instr_overhead = len(lowered[mechanism].program) / base_insts - 1
        traffic = r.network_traffic_bytes / max(base.network_traffic_bytes, 1)
        print(
            f"    {mechanism:10s} {time_ratio:>9.3f}x {instr_overhead:>9.1%} "
            f"{traffic:>12.3f}x"
        )
    aos = results["aos"]
    print(
        f"    AOS details: {aos.bounds_accesses_per_check:.2f} bounds accesses "
        f"per check, BWB hit rate {aos.bwb_hit_rate:.1%}, "
        f"{aos.hbt_resizes} HBT resizes"
    )


def main() -> None:
    workloads = sys.argv[1:] or DEFAULT_WORKLOADS
    print("Fig. 14-style comparison (synthetic traces, Table IV machine)")
    for name in workloads:
        run_workload(name)


if __name__ == "__main__":
    main()

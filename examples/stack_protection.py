#!/usr/bin/env python3
"""Future-work extension demo: AOS-protected stack objects (§III-D).

The paper evaluates heap protection and notes the approach "can be applied
to other data-pointer types (e.g., stack pointers) in a similar manner".
This example runs that extension: stack buffers get signed pointers and
HBT bounds, so stack smashes and use-after-return are caught by the very
same MCU that guards the heap.

Run with::

    python examples/stack_protection.py
"""

from repro import AOSRuntime
from repro.core.exceptions import BoundsCheckFault
from repro.ext import ProtectedStack, narrow


def main() -> None:
    runtime = AOSRuntime()
    stack = ProtectedStack(runtime)

    # A function with two protected locals.
    stack.push_frame()
    name_buf = stack.alloca(32)
    secret = stack.alloca(32)
    stack.store(secret, 0x5EC_12E7)
    print(f"alloca(32) -> signed stack pointer {name_buf:#018x}")

    # Classic stack smash: writing past name_buf toward its neighbour.
    try:
        stack.store(runtime.offset(name_buf, 40), 0x41414141)
    except BoundsCheckFault as exc:
        print(f"stack buffer overflow caught: {exc}")

    # Reading the neighbour through the wrong pointer fails too.
    try:
        stack.load(runtime.offset(name_buf, 32))
    except BoundsCheckFault as exc:
        print(f"inter-local read caught    : {exc}")

    # Use-after-return: the frame dies, an escaped pointer dangles.
    escaped, _ = stack.pop_frame()
    try:
        stack.load(escaped)
    except BoundsCheckFault as exc:
        print(f"use-after-return caught    : {exc}")

    # Bonus (§VII-F): intra-object narrowing on the heap.
    obj = runtime.malloc(128)
    field = narrow(runtime, obj, offset=32, size=16)
    runtime.store(field, 1)
    try:
        runtime.load(runtime.offset(field, 64))
    except BoundsCheckFault as exc:
        print(f"intra-object overflow caught: {exc}")

    print("\nSame HBT, same MCU — the mechanism generalises as §III-D claims.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Security analysis: the full §VII attack suite against every mechanism.

Walks through the House-of-Spirit exploit of Fig. 1 step by step on an
unprotected heap (showing the attack actually *working*), then on AOS
(showing ``bndclr`` stopping it), and finally prints the complete
mechanism-vs-attack detection matrix.

Run with::

    python examples/attack_detection.py
"""

from repro.core.exceptions import AOSException
from repro.security import run_security_analysis
from repro.security.adapters import AOSAdapter, BaselineAdapter


def house_of_spirit_walkthrough() -> None:
    print("=" * 72)
    print("House of Spirit (Fig. 1) on an unprotected glibc-style heap")
    print("=" * 72)
    victim_heap = BaselineAdapter()
    layout = victim_heap.allocator.layout

    # The attacker crafts a fake fast_chunk in writable memory: the size
    # fields must pass free()'s sanity tests (Fig. 1 lines 11-12).
    fake_chunk = layout.globals_base + 0x1000
    victim_heap.raw_write(fake_chunk + 8, 0x40)          # fchunk[0].size
    victim_heap.raw_write(fake_chunk + 0x40 + 8, 0x40)   # fchunk[1].size
    fake_payload = fake_chunk + 16
    print(f"crafted fake chunk at {fake_chunk:#x}")

    # free() trusts the in-memory size field -> fastbin insertion.
    victim_heap.free(fake_payload)
    print("free(crafted pointer) accepted -> fake chunk in the fastbin")

    # The next malloc of that size returns attacker-controlled memory.
    stolen = victim_heap.malloc(0x30)
    print(f"malloc(0x30) returned {stolen:#x} "
          f"({'ATTACK SUCCEEDED' if stolen == fake_payload else 'missed'})")

    print("\nSame attack against AOS:")
    protected = AOSAdapter()
    fake_chunk = layout.globals_base + 0x1000
    protected.raw_write(fake_chunk + 8, 0x40)
    crafted = fake_chunk + 16
    try:
        protected.free(crafted)
        print("  free() accepted the crafted pointer (unexpected!)")
    except AOSException as exc:
        print(f"  blocked at bndclr before free(): {exc}")


def main() -> None:
    house_of_spirit_walkthrough()

    print()
    print("=" * 72)
    print("Full detection matrix (§VII)")
    print("=" * 72)
    matrix = run_security_analysis()
    print(matrix.format_table())
    print()
    print("Notes:")
    print(" - rest misses the non-adjacent overflow (jumps over redzones, §I)")
    print(" - pa detects only pointer corruption, not OOB/UAF (§II-B)")
    print(" - aos detects every class, incl. PAC/AHC forging via autm (§VII-C)")


if __name__ == "__main__":
    main()

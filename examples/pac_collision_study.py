#!/usr/bin/env python3
"""The §VI PAC-collision study: Fig. 11 plus what collisions cost the HBT.

1. Reproduces Fig. 11 with real QARMA-64 and the paper's published key and
   context: the PAC histogram over a million malloc'd pointers.
2. Sweeps the PAC width (11..18 bits) to show how collision pressure and
   expected HBT row occupancy scale — the trade-off behind the paper's
   multi-way gradual-resizing design (§V-B).
3. Fills an HBT with Table II-sized live sets and reports the row
   occupancy and resize behaviour each workload induces.

Run with::

    python examples/pac_collision_study.py
"""


from repro.core.hbt import HashedBoundsTable
from repro.crypto.pac import PACGenerator
from repro.errors import SimulationError
from repro.workloads.microbench import pac_distribution
from repro.workloads.profiles import SPEC2006_PROFILES


def fig11() -> None:
    print("=" * 72)
    print("Fig. 11 — PAC distribution by QARMA (1M mallocs, 16-bit PACs)")
    print("=" * 72)
    dist = pac_distribution(n=1_000_000)
    print(f"measured: {dist.summary()}")
    print("paper   : Avg:16.0, Max:36, Min:3, Stdev: 3.99")


def pac_width_sweep() -> None:
    print()
    print("PAC width sweep (uniformity holds at every width):")
    print(f"{'bits':>6s} {'rows':>8s} {'mean/row':>9s} {'max/row':>8s}")
    for bits in (11, 12, 14, 16, 18):
        dist = pac_distribution(n=1 << 18, pac_bits=bits)
        print(
            f"{bits:>6d} {1 << bits:>8d} {dist.mean:>9.2f} {dist.max:>8d}"
        )


def hbt_pressure() -> None:
    print()
    print("HBT pressure for Table II live sets (16-bit PACs, 1 way initial):")
    print(f"{'workload':>12s} {'live':>9s} {'resizes':>8s} {'ways':>5s} {'max row':>8s}")
    generator = PACGenerator(mode="fast")
    for name in ("gobmk", "h264ref", "astar", "sphinx3", "omnetpp"):
        profile = SPEC2006_PROFILES[name]
        live = min(profile.table_max_active, 2_000_000)
        hbt = HashedBoundsTable(pac_bits=16, initial_ways=1)
        address = 0x2000_0000
        for i in range(live):
            pac = generator.compute(address, 0x7FF0)
            while True:
                try:
                    hbt.insert(pac, address, 32)
                    break
                except SimulationError:
                    hbt.begin_resize()
                    hbt.finish_resize()
            address += 48
        print(
            f"{name:>12s} {live:>9d} {hbt.stats.resizes:>8d} "
            f"{hbt.ways:>5d} {hbt.max_row_occupancy():>8d}"
        )
    print("\n(paper §IX-A.1: only sphinx3 and omnetpp resized; the 1-way")
    print(" table covers up to 512K bounds)")


def main() -> None:
    fig11()
    pac_width_sweep()
    hbt_pressure()


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: an AOS-protected heap in twenty lines.

Allocates, uses and frees memory through the AOS runtime, then shows every
class of memory-safety violation from Fig. 12 being caught:

- spatial: out-of-bounds read and write
- temporal: use-after-free and double free

Run with::

    python examples/quickstart.py
"""

from repro import AOSRuntime
from repro.core.exceptions import BoundsCheckFault, BoundsClearFault


def main() -> None:
    rt = AOSRuntime()

    # -- normal use ---------------------------------------------------------
    p = rt.malloc(64)
    print(f"malloc(64) returned a signed pointer: {p:#018x}")
    print(f"  virtual address : {rt.signer.xpacm(p):#x}")
    print(f"  embedded PAC    : {rt.signer.pac_of(p):#06x}")
    print(f"  embedded AHC    : {rt.signer.ahc_of(p)} (size class, Alg. 1)")

    rt.store(p, 0xDEADBEEF)
    print(f"store/load through the checked pointer: {rt.load(p):#x}")

    # -- spatial violations (Fig. 12 lines 6-7) ------------------------------
    try:
        rt.load(rt.offset(p, 64))
    except BoundsCheckFault as exc:
        print(f"OOB read caught    : {exc}")

    try:
        rt.store(rt.offset(p, 4096), 0)
    except BoundsCheckFault as exc:
        print(f"far OOB write caught (no redzone to jump over): {exc}")

    # -- temporal violations (Fig. 12 lines 14-19) ---------------------------
    dangling = rt.free(p)
    print(f"free() re-signed (locked) the pointer: {dangling:#018x}")

    try:
        rt.load(dangling)
    except BoundsCheckFault as exc:
        print(f"use-after-free caught: {exc}")

    try:
        rt.free(dangling)
    except BoundsClearFault as exc:
        print(f"double free caught   : {exc}")

    print("\nAll four violation classes detected — always-on heap safety.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Assembly-level AOS: executing the Fig. 7 sequences from encoded words.

Assembles the paper's instrumentation sequences with real 32-bit
instruction encodings (the §IV-A ISA extension), runs them on the
functional interpreter, and shows an out-of-bounds store trapping at the
exact faulting instruction with no memory side effect (precise
exceptions).

Run with::

    python examples/assembly_level.py
"""

from repro.isa.binenc import decode
from repro.isa.interp import Assembler, make_interpreter


def disassemble(program: Assembler) -> None:
    for pc, word in enumerate(program.words):
        aos = decode(word)
        text = aos.assembly() if aos else f".base {word:#010x}"
        print(f"  {pc:3d}: {word:08x}    {text}")


def main() -> None:
    machine = make_interpreter()

    # char *p = malloc(64);  (Fig. 7a instrumentation)
    # p[0] = 0xBEEF;  p[9] = 0x41;   // the second is out of bounds
    program = (
        Assembler()
        .movz(1, 64)                    # x1 = 64 (size)
        .malloc(0, 1)                   # x0 = malloc(x1)
        .aos("pacma", xd=0, xn=31, xm=1)   # sign: PAC + AHC into x0
        .aos("bndstr", xn=0, xm=1)         # bounds into the HBT
        .movz(2, 0xBEEF)
        .str_(2, 0)                     # in bounds: fine
        .add(3, 0, 72)                  # x3 = p + 72 (past the end)
        .str_(2, 3)                     # out of bounds: traps here
        .halt()
    )

    print("program (AOS words decoded, base ops shown raw):")
    disassemble(program)

    trap = machine.run(program)
    print(f"\nsigned pointer after pacma : {machine._read(0):#018x}")
    if trap:
        print(f"trap at pc={trap.pc}: {type(trap.exception).__name__}: {trap.exception}")
        oob_address = machine.signer.xpacm(machine._read(3))
        print(
            "memory at the faulting address is untouched "
            f"(precise exception): {machine.memory.read_u64(oob_address):#x}"
        )
    in_bounds = machine.signer.xpacm(machine._read(0))
    print(f"in-bounds store did land   : {machine.memory.read_u64(in_bounds):#x}")


if __name__ == "__main__":
    main()

"""Simulation parameters (paper Table IV) and mechanism configuration.

Every knob that the paper's evaluation varies — the core width, cache
geometry, Arm PA latencies, HBT/BWB sizing, and which AOS optimisations are
enabled — is collected here in frozen dataclasses so an experiment is fully
described by one :class:`SystemConfig` value.

The defaults reproduce Table IV of the paper:

======================  ======================================================
Core                    2 GHz, 8-wide, out-of-order, 32-entry load and store
                        queues, 192 ROB entries, 48 MCQ entries
L1-I cache              32 KB, 4-way, 1-cycle, 64 B line
L1-D cache              64 KB, 8-way, 1-cycle, 64 B line
L1-B cache              32 KB, 4-way, 1-cycle, 8 B bounds
L2 cache                8 MB, 16-way, 8-cycle, 64 B line
DRAM                    50 ns access latency from L2, 12.8 GB/s
Arm PA                  16-bit PAC, sign/authenticate 4 cycles, strip 1 cycle
HBT                     initial 1 way, 4 MB size
BWB                     64 entries, 1-cycle, LRU eviction
======================  ======================================================
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from .errors import ConfigError


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


@dataclass(frozen=True)
class CoreConfig:
    """Out-of-order core parameters (Table IV, "Core" row)."""

    frequency_ghz: float = 2.0
    width: int = 8
    rob_entries: int = 192
    load_queue_entries: int = 32
    store_queue_entries: int = 32
    mcq_entries: int = 48
    #: Branch misprediction penalty (pipeline refill), in cycles.  The paper
    #: uses L-TAGE; we model a TAGE-like predictor whose accuracy is
    #: workload-dependent, with this flush penalty.
    branch_mispredict_penalty: int = 14
    #: Integer ALU latency in cycles.
    alu_latency: int = 1

    def __post_init__(self) -> None:
        _require(self.width > 0, "core width must be positive")
        _require(self.rob_entries >= self.width, "ROB must hold at least one fetch group")
        _require(self.mcq_entries > 0, "MCQ must have at least one entry")


@dataclass(frozen=True)
class CacheConfig:
    """One set-associative cache level."""

    name: str
    size_bytes: int
    assoc: int
    line_bytes: int = 64
    hit_latency: int = 1

    def __post_init__(self) -> None:
        _require(self.size_bytes > 0, f"{self.name}: size must be positive")
        _require(self.assoc > 0, f"{self.name}: associativity must be positive")
        _require(
            self.size_bytes % (self.assoc * self.line_bytes) == 0,
            f"{self.name}: size must be a multiple of assoc * line",
        )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.assoc * self.line_bytes)


@dataclass(frozen=True)
class MemoryHierarchyConfig:
    """The full cache/DRAM stack (Table IV)."""

    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig("L1-I", 32 * 1024, 4, 64, 1)
    )
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig("L1-D", 64 * 1024, 8, 64, 1)
    )
    #: Optional bounds cache (§V-F1).  8-byte bounds per "line".
    l1b: CacheConfig = field(
        default_factory=lambda: CacheConfig("L1-B", 32 * 1024, 4, 64, 1)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig("L2", 8 * 1024 * 1024, 16, 64, 8)
    )
    #: DRAM access latency from the L2, in cycles (50 ns at 2 GHz).
    dram_latency: int = 100
    dram_bandwidth_gbs: float = 12.8


@dataclass(frozen=True)
class PAConfig:
    """Arm Pointer Authentication primitive parameters (Table IV)."""

    pac_bits: int = 16
    sign_latency: int = 4
    auth_latency: int = 4
    strip_latency: int = 1
    #: 128-bit QARMA key used for data-pointer PACs.  The default is the
    #: published value from §VI of the paper (the QARMA-64 test-vector key).
    key: int = 0x84BE85CE9804E94BEC2802D4E0A488E9
    #: 64-bit context/modifier used for the Fig. 11 microbenchmark.
    context: int = 0x477D469DEC0B8762

    def __post_init__(self) -> None:
        _require(11 <= self.pac_bits <= 32, "PAC size must be 11..32 bits (§II-B)")


@dataclass(frozen=True)
class HBTConfig:
    """Hashed bounds table parameters (§V-B, Table IV)."""

    #: Initial number of ways (Table IV: "Initial 1 way, 4MB size").
    initial_ways: int = 1
    #: Bytes per bounds entry after compression (§V-D).
    bounds_bytes: int = 8
    #: Bounds entries per way access (one 64 B cache line = 8 bounds, §V-A).
    bounds_per_line: int = 8

    def __post_init__(self) -> None:
        _require(self.initial_ways >= 1, "HBT needs at least one way")
        _require(
            self.initial_ways & (self.initial_ways - 1) == 0,
            "HBT associativity must be a power of two (§V-B footnote)",
        )


@dataclass(frozen=True)
class BWBConfig:
    """Bounds way buffer parameters (§V-C, Table IV)."""

    entries: int = 64
    hit_latency: int = 1
    eviction: str = "lru"

    def __post_init__(self) -> None:
        _require(self.entries >= 1, "BWB needs at least one entry")
        _require(self.eviction in ("lru", "fifo", "random"), "unknown BWB eviction policy")


@dataclass(frozen=True)
class AOSOptions:
    """Which AOS features are enabled — the Fig. 15 ablation axes."""

    #: Store bounds in a dedicated L1 B-cache instead of the L1-D (§V-F1).
    l1b_cache: bool = True
    #: 8-byte compressed bounds instead of 16-byte raw bounds (§V-D).
    bounds_compression: bool = True
    #: MCQ store→load bounds forwarding (§V-F2).
    bounds_forwarding: bool = True
    #: Track last-hit ways in the BWB (§V-C).
    bwb_enabled: bool = True
    #: Non-blocking HBT accesses during resizing (§V-F3).
    nonblocking_resize: bool = True


@dataclass(frozen=True)
class SystemConfig:
    """A complete simulated system: core + memory + PA + AOS options.

    ``mechanism`` selects the protection configuration evaluated in Fig. 14:

    - ``"baseline"``  — no security features.
    - ``"watchdog"``  — Watchdog-style lock-and-key + bounds checking.
    - ``"pa"``        — PARTS-style return-address/pointer integrity only.
    - ``"aos"``       — the AOS bounds-checking mechanism.
    - ``"pa+aos"``    — AOS integrated with PA pointer integrity (§VII-B).
    - ``"mte"``       — Arm-MTE/ADI-style memory tagging (§X comparison;
      an extension beyond the paper's Fig. 14 set).
    - ``"rest"``      — REST-style trip-wires with a quarantine pool
      (§IV-C's comparison point; extension).
    - ``"cryptsan"``, ``"pacsan"``, ``"pactight"``, ``"pacstack"`` —
      PA-based related-work lowerings (see ``repro.mechanisms``); plugin
      mechanisms may also alias any of the lowerings above.
    """

    core: CoreConfig = field(default_factory=CoreConfig)
    memory: MemoryHierarchyConfig = field(default_factory=MemoryHierarchyConfig)
    pa: PAConfig = field(default_factory=PAConfig)
    hbt: HBTConfig = field(default_factory=HBTConfig)
    bwb: BWBConfig = field(default_factory=BWBConfig)
    aos: AOSOptions = field(default_factory=AOSOptions)
    mechanism: str = "aos"

    MECHANISMS = (
        "baseline", "watchdog", "pa", "aos", "pa+aos", "mte", "rest",
        "cryptsan", "pacsan", "pactight", "pacstack",
    )

    def __post_init__(self) -> None:
        _require(self.mechanism in self.MECHANISMS, f"unknown mechanism {self.mechanism!r}")

    def with_mechanism(self, mechanism: str) -> "SystemConfig":
        """Return a copy of this config running a different mechanism."""
        return dataclasses.replace(self, mechanism=mechanism)

    def with_aos_options(self, **kwargs: bool) -> "SystemConfig":
        """Return a copy with AOS feature flags replaced (Fig. 15 ablations)."""
        return dataclasses.replace(self, aos=dataclasses.replace(self.aos, **kwargs))


def default_config(mechanism: str = "aos") -> SystemConfig:
    """The paper's Table IV configuration, running ``mechanism``."""
    return SystemConfig(mechanism=mechanism)

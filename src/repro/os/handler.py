"""The AOS exception handler (§IV-D).

    "Upon a failure, the information will be signaled to a user.
     Developers can implement the exception handler to either
     1) terminate the process or 2) report an error and resume."

:class:`AOSExceptionHandler` implements both policies and keeps a fault
log so the security analysis can assert exactly which violations each
mechanism surfaced.  Two hardenings beyond the paper's sketch:

- records carry the exception *class* (not just its name), so the
  recoverable/violation split survives subclassing;
- ``REPORT_AND_RESUME`` supports an escalation threshold: after
  ``max_violations`` logged violations the handler terminates the process
  anyway, bounding how long a compromised or fault-injected process may
  keep limping along.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Type

from ..core.exceptions import (
    AOSException,
    AuthenticationFault,
    BoundsStoreFault,
)


class HandlerPolicy(Enum):
    """What the handler does with a non-recoverable fault."""

    TERMINATE = "terminate"
    REPORT_AND_RESUME = "report-and-resume"


@dataclass
class FaultRecord:
    """One logged AOS exception."""

    kind: str
    pointer: int
    pac: int
    detail: str
    #: The exception class itself — the authoritative field for the
    #: recoverable/violation split (``kind`` is presentation only).
    exc_type: Type[AOSException] = AOSException

    @property
    def is_violation(self) -> bool:
        """Memory-safety violation, as opposed to a recoverable resize.

        Typed so ``class MyStoreFault(BoundsStoreFault)`` stays on the
        resize side of the security analysis automatically.
        """
        return not issubclass(self.exc_type, BoundsStoreFault)

    @property
    def is_authentication(self) -> bool:
        return issubclass(self.exc_type, AuthenticationFault)


class ProcessTerminated(Exception):
    """Raised when the TERMINATE policy (or escalation) kills the simulated
    process."""

    def __init__(self, record: FaultRecord, escalated: bool = False) -> None:
        reason = "escalation threshold" if escalated else "policy"
        super().__init__(f"process terminated ({reason}): {record.detail}")
        self.record = record
        self.escalated = escalated


@dataclass
class AOSExceptionHandler:
    """Dispatches AOS exceptions according to the configured policy."""

    policy: HandlerPolicy = HandlerPolicy.TERMINATE
    log: List[FaultRecord] = field(default_factory=list)
    #: Under ``REPORT_AND_RESUME``: terminate anyway once this many
    #: violations have been logged (None = resume forever, the paper's
    #: literal reading).
    max_violations: Optional[int] = None

    def handle(self, exc: AOSException) -> FaultRecord:
        """Handle one AOS exception.

        Bounds-*store* failures are always recoverable (the OS resizes the
        table).  Authentication failures (``autm``/``aut*``) and bounds
        check/clear failures are memory-safety violations and follow the
        policy, including the escalation threshold.
        """
        record = FaultRecord(
            kind=type(exc).__name__,
            pointer=exc.info.pointer,
            pac=exc.info.pac,
            detail=exc.info.detail,
            exc_type=type(exc),
        )
        self.log.append(record)
        if not record.is_violation:
            return record  # recoverable: resize path, not a violation
        if isinstance(exc, AuthenticationFault):
            # Explicit dispatch: the pointer itself is corrupt, so there is
            # no object to "resume past" — but the policy still decides
            # whether diagnostics continue (REPORT_AND_RESUME skips the op).
            pass
        if self.policy is HandlerPolicy.TERMINATE:
            raise ProcessTerminated(record)
        if (
            self.max_violations is not None
            and self.violation_count >= self.max_violations
        ):
            raise ProcessTerminated(record, escalated=True)
        return record

    @property
    def violations(self) -> List[FaultRecord]:
        """Faults that represent memory-safety violations (not resizes)."""
        return [r for r in self.log if r.is_violation]

    @property
    def violation_count(self) -> int:
        return sum(1 for r in self.log if r.is_violation)

    @property
    def authentication_faults(self) -> List[FaultRecord]:
        """The ``autm`` failures (§VII-B) — corrupted-pointer detections."""
        return [r for r in self.log if r.is_authentication]

    def clear(self) -> None:
        self.log.clear()

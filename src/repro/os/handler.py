"""The AOS exception handler (§IV-D).

    "Upon a failure, the information will be signaled to a user.
     Developers can implement the exception handler to either
     1) terminate the process or 2) report an error and resume."

:class:`AOSExceptionHandler` implements both policies and keeps a fault
log so the security analysis can assert exactly which violations each
mechanism surfaced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional

from ..core.exceptions import (
    AOSException,
    BoundsCheckFault,
    BoundsClearFault,
    BoundsStoreFault,
)


class HandlerPolicy(Enum):
    """What the handler does with a non-recoverable fault."""

    TERMINATE = "terminate"
    REPORT_AND_RESUME = "report-and-resume"


@dataclass
class FaultRecord:
    """One logged AOS exception."""

    kind: str
    pointer: int
    pac: int
    detail: str


class ProcessTerminated(Exception):
    """Raised when the TERMINATE policy kills the simulated process."""

    def __init__(self, record: FaultRecord) -> None:
        super().__init__(f"process terminated: {record.detail}")
        self.record = record


@dataclass
class AOSExceptionHandler:
    """Dispatches AOS exceptions according to the configured policy."""

    policy: HandlerPolicy = HandlerPolicy.TERMINATE
    log: List[FaultRecord] = field(default_factory=list)

    def handle(self, exc: AOSException) -> FaultRecord:
        """Handle one AOS exception.

        Bounds-*store* failures are always recoverable (the OS resizes the
        table); check/clear failures are memory-safety violations and follow
        the policy.
        """
        record = FaultRecord(
            kind=type(exc).__name__,
            pointer=exc.info.pointer,
            pac=exc.info.pac,
            detail=exc.info.detail,
        )
        self.log.append(record)
        if isinstance(exc, BoundsStoreFault):
            return record  # recoverable: resize path, not a violation
        if self.policy is HandlerPolicy.TERMINATE:
            raise ProcessTerminated(record)
        return record

    @property
    def violations(self) -> List[FaultRecord]:
        """Faults that represent memory-safety violations (not resizes)."""
        return [r for r in self.log if r.kind != "BoundsStoreFault"]

    def clear(self) -> None:
        self.log.clear()

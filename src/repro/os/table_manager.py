"""OS-side bounds-table management (§IV-D, §V-F3).

The OS allocates the HBT when a process starts and services ``bndstr``
capacity failures by allocating a table of twice the associativity.  The
micro-architectural table manager then migrates bounds row by row while
the process keeps running (Fig. 10); this class models the OS policy side
and accounts for the migration's memory traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.hbt import HashedBoundsTable, LINE_BYTES


@dataclass
class ResizeEvent:
    """One completed resize, for the §IX-A.1 report."""

    old_ways: int
    new_ways: int
    rows: int
    #: Bytes moved by row migration (read old + write new, per way line).
    migration_bytes: int


class BoundsTableManager:
    """Creates and resizes a process's HBT."""

    def __init__(self, hbt: HashedBoundsTable, nonblocking: bool = True) -> None:
        self.hbt = hbt
        self.nonblocking = nonblocking
        self.events: List[ResizeEvent] = []

    @property
    def resize_count(self) -> int:
        return len(self.events)

    def on_bounds_store_failure(self) -> ResizeEvent:
        """Service a BoundsStoreFault: allocate a twice-as-wide table.

        With non-blocking resizing the process resumes immediately and
        migration proceeds in the background; the blocking ablation copies
        the whole table before returning.
        """
        if self.hbt.resizing and not self.hbt.migration_stalled:
            # Back-to-back failure: the previous migration is still in
            # flight, so the manager finishes it before the next doubling
            # (its traffic was already accounted by its own event).
            self.hbt.finish_resize()
        old_ways = self.hbt.ways
        self.hbt.begin_resize()
        migration_bytes = self.hbt.num_rows * old_ways * LINE_BYTES * 2
        if not self.nonblocking:
            self.hbt.finish_resize()
        event = ResizeEvent(
            old_ways=old_ways,
            new_ways=self.hbt.ways,
            rows=self.hbt.num_rows,
            migration_bytes=migration_bytes,
        )
        self.events.append(event)
        return event

    def tick(self, rows: int = 1024) -> int:
        """Advance background migration (the hardware manager's heartbeat)."""
        return self.hbt.advance_migration(rows)

    def total_migration_bytes(self) -> int:
        return sum(e.migration_bytes for e in self.events)

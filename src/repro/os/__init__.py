"""OS support (§IV-D): bounds-table management and AOS exception handling.

The OS creates a process's HBT at startup, services bounds-store failures
by allocating a twice-as-large table (gradual resizing with the Fig. 10
non-blocking migration), and dispatches AOS exceptions to a configurable
handler — terminate, or report and resume, exactly the two developer
policies the paper describes.
"""

from .handler import AOSExceptionHandler, HandlerPolicy, FaultRecord
from .table_manager import BoundsTableManager
from .process import Process

__all__ = [
    "AOSExceptionHandler",
    "HandlerPolicy",
    "FaultRecord",
    "BoundsTableManager",
    "Process",
]

"""A simulated AOS-protected process: runtime + OS services in one handle.

This is the highest-level functional API: a :class:`Process` owns an
:class:`~repro.core.aos.AOSRuntime` (heap, signing, HBT, MCU), a
:class:`~repro.os.table_manager.BoundsTableManager`, and an
:class:`~repro.os.handler.AOSExceptionHandler`, and exposes guarded
``malloc``/``free``/``load``/``store`` that route AOS exceptions through
the OS handler the way hardware would.
"""

from __future__ import annotations

from typing import Optional

from ..config import SystemConfig, default_config
from ..core.aos import AOSRuntime
from ..core.exceptions import AOSException
from .handler import AOSExceptionHandler, HandlerPolicy
from .table_manager import BoundsTableManager


class Process:
    """A protected process with OS-managed exception handling."""

    _next_pid = 1000

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        policy: HandlerPolicy = HandlerPolicy.TERMINATE,
        pac_mode: str = "qarma",
        max_violations: Optional[int] = None,
    ) -> None:
        self.config = config or default_config("aos")
        self.runtime = AOSRuntime(self.config, pac_mode=pac_mode)
        self.handler = AOSExceptionHandler(policy=policy, max_violations=max_violations)
        self.table_manager = BoundsTableManager(
            self.runtime.hbt, nonblocking=self.config.aos.nonblocking_resize
        )
        self.pid = Process._next_pid
        Process._next_pid += 1

    # Guarded operations: AOS exceptions go through the OS handler, which
    # either terminates the process (raising ProcessTerminated) or logs
    # the fault and resumes.

    def malloc(self, size: int) -> int:
        return self.runtime.malloc(size)

    def free(self, pointer: int) -> Optional[int]:
        try:
            return self.runtime.free(pointer)
        except AOSException as exc:
            self.handler.handle(exc)
            return None

    def load(self, pointer: int, size: int = 8) -> Optional[int]:
        try:
            return self.runtime.load(pointer, size)
        except AOSException as exc:
            self.handler.handle(exc)
            return None

    def store(self, pointer: int, value: int, size: int = 8) -> bool:
        try:
            self.runtime.store(pointer, value, size)
            return True
        except AOSException as exc:
            self.handler.handle(exc)
            return False

    def authenticate(self, pointer: int) -> Optional[int]:
        """``autm`` a pointer before use (the PA+AOS on-load check, Fig. 13).

        Returns the pointer, or None if authentication failed and the
        handler's policy resumed past it.
        """
        try:
            return self.runtime.signer.autm(pointer)
        except AOSException as exc:
            self.handler.handle(exc)
            return None

    @property
    def violations(self):
        return self.handler.violations

"""The AOS exception class (§IV-D).

A core that detects a faulting bounds operation raises an *AOS exception*;
the OS handler inspects the faulting instruction type:

- ``bndstr``   → bounds-store failure: the HBT row is full, the OS resizes
  the table (these are recoverable and usually invisible to the program);
- ``bndclr``   → bounds-clear failure: double free or ``free()`` of an
  invalid address;
- load/store  → bounds-checking failure: a spatial or temporal memory
  safety violation.

These are *simulated architectural* events, deliberately separate from the
host-level errors in :mod:`repro.errors`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class FaultInfo:
    """What the OS handler receives (§IV-D: 'the information will be
    signaled to a user')."""

    pointer: int = 0
    pac: int = 0
    ahc: int = 0
    detail: str = ""


class AOSException(Exception):
    """Base class for faults raised by AOS bounds operations."""

    def __init__(self, info: FaultInfo) -> None:
        super().__init__(info.detail or self.__class__.__name__)
        self.info = info


class BoundsCheckFault(AOSException):
    """A signed load/store failed bounds checking — a spatial violation
    (out-of-bounds) or temporal violation (use of a freed pointer)."""


class BoundsStoreFault(AOSException):
    """``bndstr`` found no empty slot in the row: HBT capacity exhausted.
    Handled by the OS by resizing the table (§IV-D)."""


class BoundsClearFault(AOSException):
    """``bndclr`` found no bounds matching the pointer: double free or
    ``free()`` with an invalid/crafted address."""


class AuthenticationFault(AOSException):
    """``autm`` (or a stock PA ``aut*``) failed: the pointer was corrupted
    (AHC forged to zero, or PAC mismatch on PA authentication)."""

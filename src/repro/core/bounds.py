"""Bounds compression and checking — §V-D, Fig. 9.

AOS compresses each bounds record to 8 bytes by exploiting two malloc
properties: payloads are 16-byte aligned (so the low 4 bits of the lower
bound are zero) and sizes fit 32 bits.  The format (Fig. 9a) is::

    63  61 60                    29 28                         0
    +-----+------------------------+-----------------------------+
    |  R  |       Size[31:0]       |        LowBnd[32:4]         |
    +-----+------------------------+-----------------------------+

Checking decompresses to a 34-bit lower/upper pair and compares against a
*truncated* 34-bit address (Fig. 9b), whose carry-compensation bit ``C``
handles the partial-address encoding.  Addresses more than 8 GB apart can
alias (§VII-E); the simulated layout keeps the heap below 2**33 so live
objects never alias.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import EncodingError

SIZE_BITS = 32
LOWBND_BITS = 29  # bits [32:4] of the lower bound
LOWBND_SHIFT = 4


@dataclass(frozen=True)
class CompressedBounds:
    """A decoded 8-byte bounds record."""

    __slots__ = ("raw",)

    raw: int

    # frozen + __slots__ breaks default pickling (the default __setstate__
    # hits the frozen __setattr__); spell out the state protocol instead.
    def __getstate__(self):
        return self.raw

    def __setstate__(self, state) -> None:
        object.__setattr__(self, "raw", state)

    @property
    def low_field(self) -> int:
        """LowBnd[32:4] (29 bits)."""
        return self.raw & ((1 << LOWBND_BITS) - 1)

    @property
    def size(self) -> int:
        return (self.raw >> LOWBND_BITS) & ((1 << SIZE_BITS) - 1)

    @property
    def lower(self) -> int:
        """dLowBnd: the 33-bit decompressed lower bound."""
        return self.low_field << LOWBND_SHIFT

    @property
    def upper(self) -> int:
        """dUppBnd: lower + size (34-bit, exclusive)."""
        return self.lower + self.size

    @property
    def is_empty(self) -> bool:
        """All-zero records mark free HBT slots (§IV-A, ``bndclr``)."""
        return self.raw == 0

    def contains(self, address: int) -> bool:
        """Bounds check: does ``address`` fall within [lower, upper)?"""
        t = truncate_address(address, self.low_field)
        return self.lower <= t < self.upper


def compress_bounds(lower: int, size: int) -> int:
    """Encode (base address, size) into the 8-byte format of Fig. 9a."""
    if lower % 16 != 0:
        raise EncodingError(
            f"lower bound {lower:#x} is not 16-byte aligned (malloc invariant, §V-D)"
        )
    if not 0 < size < (1 << SIZE_BITS):
        raise EncodingError(f"size {size} does not fit the 32-bit size field")
    low_field = (lower >> LOWBND_SHIFT) & ((1 << LOWBND_BITS) - 1)
    return (size << LOWBND_BITS) | low_field


def decompress_bounds(raw: int) -> CompressedBounds:
    """Decode an 8-byte bounds record."""
    if not 0 <= raw < (1 << 64):
        raise EncodingError("compressed bounds must be a 64-bit value")
    return CompressedBounds(raw=raw)


def truncate_address(address: int, low_field: int) -> int:
    """tAddr of Fig. 9b: Addr[32:0] with the carry-compensation bit C.

    ``C = LowBnd[32] & !Addr[32]`` restores the carry lost when the lower
    bound's bits above 32 were dropped: if the stored lower bound has bit 32
    set but the address being checked has it clear, the address must have
    carried past bit 32 and is re-based by setting bit 33.
    """
    addr33 = address & ((1 << 33) - 1)
    lowbnd_bit32 = (low_field >> (LOWBND_BITS - 1)) & 1
    addr_bit32 = (address >> 32) & 1
    c = lowbnd_bit32 & (1 - addr_bit32)
    return (c << 33) | addr33


@dataclass(frozen=True)
class RawBounds:
    """Uncompressed 16-byte (lower, upper) bounds — the Fig. 15 'no
    compression' ablation, where each record costs two HBT slots."""

    __slots__ = ("lower", "upper")

    lower: int
    upper: int

    def __getstate__(self):
        return (self.lower, self.upper)

    def __setstate__(self, state) -> None:
        object.__setattr__(self, "lower", state[0])
        object.__setattr__(self, "upper", state[1])

    def contains(self, address: int) -> bool:
        return self.lower <= address < self.upper

"""The memory check unit (MCU) — §V-A, with the §V-F optimisations.

The MCU sits beside the LSU.  Memory instructions are co-issued to it; it
performs selective bounds checking for signed pointers, and executes
``bndstr``/``bndclr`` against the HBT.  This class is the *functional +
latency* model: each operation drives a Fig. 8 FSM against the real HBT,
consulting the BWB for a way hint, charging one bounds-line cache access
per way visited, and applying store→load bounds forwarding (§V-F2) and
store-load replay (§V-E).

The cycle-level interleaving of MCQ entries is approximated by the core's
scoreboard model (:mod:`repro.cpu.pipeline`), which uses the latencies
returned here and models MCQ occupancy back-pressure.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:
    from ..obs import Observability

from ..config import AOSOptions, BWBConfig
from ..errors import SimulationError
from ..isa.encoding import PointerLayout
from .bwb import BoundsWayBuffer, bwb_tag
from .exceptions import (
    BoundsCheckFault,
    BoundsClearFault,
    BoundsStoreFault,
    FaultInfo,
)
from .hbt import HashedBoundsTable
from .mcq import MCQEntry, MCQState, MCQType, MemoryCheckQueue


@dataclass(slots=True)
class ValidationResult:
    """Outcome of one MCU operation."""

    ok: bool
    #: MCU processing latency in cycles (bounds-line accesses + checks).
    latency: int
    #: HBT way lines loaded.
    lines_accessed: int = 0
    bwb_hit: bool = False
    forwarded: bool = False
    replayed: bool = False
    resized: bool = False
    fault: Optional[Exception] = None


@dataclass(slots=True)
class MCUStats:
    """Counters behind Fig. 17 and the §IX discussion."""

    checks: int = 0
    signed_checks: int = 0
    table_ops: int = 0
    lines_accessed: int = 0
    forwards: int = 0
    replays: int = 0
    faults: int = 0
    resizes: int = 0
    #: ``bndstr`` ops silently discarded by fault injection.
    dropped_stores: int = 0

    @property
    def accesses_per_check(self) -> float:
        """Average bounds-table accesses per checked instruction (Fig. 17)."""
        if self.signed_checks == 0:
            return 0.0
        return self.lines_accessed / self.signed_checks


class MemoryCheckUnit:
    """Functional MCU: selective checking, table management, optimisations."""

    #: Rows migrated per table operation while a resize is in flight —
    #: models the background row-by-row table manager (§V-F3).
    MIGRATION_ROWS_PER_OP = 1024

    #: Fixed MCU pipeline latency of a bounds check walk (BndAddr
    #: computation, parallel compare, FSM transit) on top of the bounds
    #: line accesses.  This is what "delayed retirement" costs even on a
    #: 100 % L1-B-hit workload like hmmer (§IX-A).
    CHECK_PIPELINE_CYCLES = 1

    __slots__ = (
        "hbt",
        "layout",
        "options",
        "bwb",
        "mcq",
        "stats",
        "_obs",
        "_h_lines",
        "_bounds_access",
        "_recent_stores",
        "_inject_dropped_stores",
    )

    def __init__(
        self,
        hbt: HashedBoundsTable,
        layout: PointerLayout,
        options: AOSOptions = AOSOptions(),
        bwb_config: BWBConfig = BWBConfig(),
        mcq_capacity: int = 48,
        bounds_access: Optional[Callable[[int, bool], int]] = None,
        obs: Optional["Observability"] = None,
    ) -> None:
        self.hbt = hbt
        self.layout = layout
        self.options = options
        self.bwb = BoundsWayBuffer(bwb_config.entries, bwb_config.eviction) if options.bwb_enabled else None
        self.mcq = MemoryCheckQueue(mcq_capacity)
        self.stats = MCUStats()
        #: Observability handle; None (the default) keeps every hot path
        #: down to a single ``is None`` test.
        self._obs = obs
        #: Bounds-line loads per signed check (the Fig. 17 distribution,
        #: not just its mean).  Bucket edges cover hint-hit (1 line) up to
        #: deep way walks after resizes.
        self._h_lines = (
            None
            if obs is None
            else obs.registry.histogram(
                "mcu.lines_per_signed_check", (0, 1, 2, 4, 8, 16, 32)
            )
        )
        #: Callable (line_address, is_write) -> latency; defaults to 1 cycle
        #: per line when no cache hierarchy is attached.
        self._bounds_access = bounds_access or (lambda addr, is_write: 1)
        #: Recent bounds stores still "in the MCQ" for forwarding (§V-F2):
        #: pac -> (lower, size).  Bounded by the MCQ capacity.
        self._recent_stores: "OrderedDict[int, tuple]" = OrderedDict()
        #: Fault-injection seam: number of upcoming ``bndstr`` ops to drop
        #: silently (a lost table write between core and HBT).
        self._inject_dropped_stores = 0

    def inject_drop_bndstr(self, count: int = 1) -> None:
        """Arm the drop-``bndstr`` fault: the next ``count`` bounds stores
        report success without ever reaching the HBT, so the allocation is
        live with no bounds — every later check on it must fault."""
        self._inject_dropped_stores += count

    def clear_injected_faults(self) -> None:
        """Disarm every armed injection seam on this MCU (harness
        teardown: an aborted campaign cell must not leak armed faults
        into whatever runs on the component next)."""
        self._inject_dropped_stores = 0

    def drain_recent_stores(self) -> None:
        """Model the MCQ draining at a quiescent point: forget forwardable
        bounds so subsequent checks must read the HBT lines (§V-F2 only
        covers stores still in flight).  Fault campaigns call this after
        injection so table corruption cannot hide behind forwarding."""
        self._recent_stores.clear()

    # ------------------------------------------------------------- internals

    def _decode(self, pointer: int):
        return self.layout.decode(pointer)

    def _drive(self, entry: MCQEntry) -> int:
        """Drive an entry's FSM to completion; returns accumulated latency."""
        latency = 0
        seen_lines = len(entry.lines_accessed)
        while entry.state not in (MCQState.DONE, MCQState.FAIL):
            before = entry.state
            entry.step(self.hbt)
            # Charge a cache access for each new line the step loaded.
            while seen_lines < len(entry.lines_accessed):
                latency += self._bounds_access(entry.lines_accessed[seen_lines], False)
                seen_lines += 1
            if entry.state is MCQState.BND_STR:
                # Commit happens when the ROB retires the instruction; the
                # scoreboard model folds that wait into commit time, so the
                # functional model may mark it committed now.
                entry.committed = True
            if entry.state is before and entry.state is MCQState.BND_STR:
                raise SimulationError("bndstr stuck waiting for commit")
        self.stats.lines_accessed += len(entry.lines_accessed)
        return latency

    def _note_store(self, pac: int, lower: int, size: int) -> None:
        self._recent_stores[pac] = (lower, size)
        self._recent_stores.move_to_end(pac)
        while len(self._recent_stores) > self.mcq.capacity:
            self._recent_stores.popitem(last=False)

    def _forwardable(self, pac: int, address: int) -> bool:
        if not self.options.bounds_forwarding:
            return False
        pending = self._recent_stores.get(pac)
        if pending is None:
            return False
        lower, size = pending
        return lower <= address < lower + size

    def _advance_migration(self) -> None:
        if self.hbt.resizing and self.options.nonblocking_resize:
            self.hbt.advance_migration(self.MIGRATION_ROWS_PER_OP)

    # ------------------------------------------------------------------- API

    def check_access(self, pointer: int, is_store: bool = False) -> ValidationResult:
        """Validate a load/store pointer (selective checking, Fig. 6)."""
        self.stats.checks += 1
        decoded = self._decode(pointer)
        if not decoded.is_signed:
            # Unsigned: no bounds checking (the AHC != 0 test of Fig. 6).
            return ValidationResult(ok=True, latency=0)

        self.stats.signed_checks += 1
        self._advance_migration()

        if self._forwardable(decoded.pac, decoded.address):
            self.stats.forwards += 1
            # Forwarded bounds are examined without waiting for memory.
            return ValidationResult(ok=True, latency=1, forwarded=True)

        start_way = 0
        bwb_hit = False
        tag = bwb_tag(decoded.address, decoded.ahc, decoded.pac)
        if self.bwb is not None:
            # max_way: a hint beyond the current associativity is counted
            # (and evicted) as a miss, keeping the Fig. 17 hit rate honest.
            hint = self.bwb.lookup(tag, max_way=self.hbt.ways)
            if hint is not None:
                start_way = hint
                bwb_hit = True
            elif self._obs is not None:
                self._obs.emit("bwb.miss", pac=decoded.pac, ahc=decoded.ahc)

        entry = MCQEntry(
            entry_type=MCQType.STORE if is_store else MCQType.LOAD,
            address=decoded.address,
            pac=decoded.pac,
            ahc=decoded.ahc,
            way=start_way,
        )
        latency = self.CHECK_PIPELINE_CYCLES + self._drive(entry)
        if self._h_lines is not None:
            self._h_lines.observe(len(entry.lines_accessed))

        if entry.state is MCQState.FAIL:
            self.stats.faults += 1
            if self._obs is not None:
                self._obs.emit(
                    "aos.exception",
                    kind="bounds-check",
                    address=decoded.address,
                    pac=decoded.pac,
                    store=is_store,
                )
            fault = BoundsCheckFault(
                FaultInfo(
                    pointer=pointer,
                    pac=decoded.pac,
                    ahc=decoded.ahc,
                    detail=(
                        "bounds-checking failure: no valid bounds for "
                        f"{'store' if is_store else 'load'} at {decoded.address:#x}"
                    ),
                )
            )
            return ValidationResult(
                ok=False,
                latency=latency,
                lines_accessed=len(entry.lines_accessed),
                bwb_hit=bwb_hit,
                fault=fault,
            )

        if self.bwb is not None and entry.result_way is not None:
            self.bwb.update(tag, entry.result_way)
        return ValidationResult(
            ok=True,
            latency=latency,
            lines_accessed=len(entry.lines_accessed),
            bwb_hit=bwb_hit,
        )

    def bounds_store(self, pointer: int, size: int) -> ValidationResult:
        """Execute ``bndstr``: occupancy-check walk, then the bounds store.

        An insertion failure raises an AOS exception handled by resizing the
        table (§IV-D) and the store is retried against the wider table.
        """
        self.stats.table_ops += 1
        decoded = self._decode(pointer)
        if self._inject_dropped_stores > 0:
            self._inject_dropped_stores -= 1
            self.stats.dropped_stores += 1
            return ValidationResult(ok=True, latency=0)
        self._advance_migration()
        resized = False
        latency = 0
        lines = 0

        for _attempt in (0, 1):
            entry = MCQEntry(
                entry_type=MCQType.BNDSTR,
                address=decoded.address,
                pac=decoded.pac,
                ahc=decoded.ahc,
                size=size,
                way=0,  # bndstr always starts from way 0 (§V-C)
            )
            latency += self._drive(entry)
            lines += len(entry.lines_accessed)
            if entry.state is MCQState.DONE:
                # result_way was verified free by the FSM walk, whose line
                # loads are already counted: insert there directly instead
                # of re-walking (and re-counting) from way 0.
                way, slot, _searched = self.hbt.insert(
                    decoded.pac, decoded.address, size, way=entry.result_way
                )
                latency += self._bounds_access(self.hbt.line_address(decoded.pac, way), True)
                self._note_store(decoded.pac, decoded.address, size)
                self._replay_younger(decoded.pac)
                if self.bwb is not None:
                    tag = bwb_tag(decoded.address, decoded.ahc, decoded.pac)
                    self.bwb.update(tag, way)
                return ValidationResult(
                    ok=True, latency=latency, lines_accessed=lines, resized=resized
                )
            # FAIL: insufficient capacity — AOS exception, OS resizes (§IV-D).
            self.stats.resizes += 1
            resized = True
            if self._obs is not None:
                self._obs.emit(
                    "aos.exception",
                    kind="bounds-store",
                    pac=decoded.pac,
                    ways=self.hbt.ways,
                )
            if self.bwb is not None:
                self.bwb.flush()  # way geometry changed
            if self.hbt.resizing and not self.hbt.migration_stalled:
                # A second capacity failure while the previous gradual
                # resize is still migrating: the OS completes the in-flight
                # migration before allocating the next doubling (§IV-D),
                # charged like the blocking copy (~2 rows/cycle) over the
                # rows that had not yet moved.  A *stalled* migration
                # (fault injection) cannot be completed — begin_resize
                # below surfaces the fault.
                latency += (
                    (self.hbt.num_rows - self.hbt.row_ptr) * self.hbt.old_ways // 2
                )
                self.hbt.finish_resize()
            old_ways = self.hbt.ways
            self.hbt.begin_resize()
            if not self.options.nonblocking_resize:
                # Stop-the-world: the process stalls while every row of the
                # old table is copied (~2 rows per cycle through the L2).
                self.hbt.finish_resize()
                latency += self.hbt.num_rows * old_ways // 2

        self.stats.faults += 1
        fault = BoundsStoreFault(
            FaultInfo(
                pointer=pointer,
                pac=decoded.pac,
                ahc=decoded.ahc,
                detail="bounds-store failure persisted after resizing",
            )
        )
        return ValidationResult(
            ok=False, latency=latency, lines_accessed=lines, fault=fault, resized=resized
        )

    def bounds_clear(self, pointer: int) -> ValidationResult:
        """Execute ``bndclr``: find and zero the bounds for this pointer.

        A miss means double free or ``free()`` of an invalid address — the
        crafted-pointer check that defeats House of Spirit (§VII-A).
        """
        self.stats.table_ops += 1
        decoded = self._decode(pointer)
        self._advance_migration()

        entry = MCQEntry(
            entry_type=MCQType.BNDCLR,
            address=decoded.address,
            pac=decoded.pac,
            ahc=decoded.ahc,
            way=0,
        )
        latency = self._drive(entry)

        if entry.state is MCQState.FAIL:
            self.stats.faults += 1
            if self._obs is not None:
                self._obs.emit(
                    "aos.exception",
                    kind="bounds-clear",
                    address=decoded.address,
                    pac=decoded.pac,
                )
            fault = BoundsClearFault(
                FaultInfo(
                    pointer=pointer,
                    pac=decoded.pac,
                    ahc=decoded.ahc,
                    detail=(
                        "bounds-clear failure: double free or free() of an "
                        f"invalid address {decoded.address:#x}"
                    ),
                )
            )
            return ValidationResult(
                ok=False, latency=latency, lines_accessed=len(entry.lines_accessed), fault=fault
            )

        # result_way was located by the FSM walk (its line loads are already
        # counted): clear that way directly instead of re-walking from way 0.
        way, _searched = self.hbt.clear_matching(
            decoded.pac, decoded.address, way=entry.result_way
        )
        if way is None:
            raise SimulationError("bndclr FSM succeeded but clear found no record")
        latency += self._bounds_access(self.hbt.line_address(decoded.pac, way), True)
        self._recent_stores.pop(decoded.pac, None)
        self._replay_younger(decoded.pac)
        return ValidationResult(
            ok=True, latency=latency, lines_accessed=len(entry.lines_accessed)
        )

    def publish_metrics(self, registry) -> None:
        """Harvest MCU/HBT/BWB stats into a ``MetricsRegistry``.

        One bulk pass after the pipeline drains — the per-operation hot
        paths above only pay for live events (histogram/tracer), never for
        these counters.
        """
        s = self.stats
        registry.count("mcu.checks", s.checks)
        registry.count("mcu.signed_checks", s.signed_checks)
        registry.count("mcu.table_ops", s.table_ops)
        registry.count("mcu.lines_accessed", s.lines_accessed)
        registry.count("mcu.forwards", s.forwards)
        registry.count("mcu.replays", s.replays)
        registry.count("mcu.faults", s.faults)
        registry.count("mcu.resizes", s.resizes)
        registry.count("mcu.dropped_stores", s.dropped_stores)
        registry.set_gauge("mcu.accesses_per_check", s.accesses_per_check)
        h = self.hbt.stats
        registry.count("hbt.inserts", h.inserts)
        registry.count("hbt.clears", h.clears)
        registry.count("hbt.checks", h.checks)
        registry.count("hbt.lines_loaded", h.lines_loaded)
        registry.count("hbt.insert_failures", h.insert_failures)
        registry.count("hbt.resizes", h.resizes)
        registry.count("hbt.migrated_rows", h.migrated_rows)
        registry.set_gauge("hbt.ways", self.hbt.ways)
        registry.set_gauge("hbt.table_bytes", self.hbt.table_bytes)
        registry.set_gauge("hbt.records", self.hbt.total_records())
        if self.bwb is not None:
            registry.count("bwb.lookups", self.bwb.stats.lookups)
            registry.count("bwb.hits", self.bwb.stats.hits)
            registry.set_gauge("bwb.hit_rate", self.bwb.stats.hit_rate)

    def _replay_younger(self, pac: int) -> None:
        """Store-load replay (§V-E): younger same-PAC MCQ entries restart.

        The scoreboard model issues operations one at a time, so in-flight
        younger entries do not exist here; we track the event count so the
        timing model can charge replay latency when checks overlap stores.
        """
        for entry in self.mcq:
            if entry.pac == pac and entry.state is not MCQState.DONE:
                entry.replay()
                self.stats.replays += 1

"""The paper's primary contribution: the AOS bounds-checking mechanism.

Submodules map one-to-one onto the paper's design:

==================  =========================================================
``ahc``             Address hashing code computation (Alg. 1)
``bounds``          8-byte bounds compression / decompression (§V-D, Fig. 9)
``hbt``             Hashed bounds table with gradual resizing (§V-B, §V-F3)
``bwb``             Bounds way buffer (§V-C, Alg. 2)
``mcq``             Memory check queue entries and FSMs (§V-A, Fig. 8)
``mcu``             Memory check unit (§V-A) with forwarding and replay
``signing``         pacma / xpacm / autm semantics (§IV-A)
``exceptions``      The AOS exception class handled by the OS (§IV-D)
``aos``             A functional runtime facade tying it all together
==================  =========================================================
"""

from .ahc import compute_ahc, invariant_bits
from .bounds import CompressedBounds, compress_bounds, decompress_bounds, truncate_address
from .bwb import BoundsWayBuffer, bwb_tag
from .exceptions import (
    AOSException,
    BoundsCheckFault,
    BoundsClearFault,
    BoundsStoreFault,
    AuthenticationFault,
)
from .hbt import HashedBoundsTable
from .mcq import MCQEntry, MCQState, MemoryCheckQueue
from .mcu import MemoryCheckUnit, ValidationResult
from .signing import PointerSigner
from .aos import AOSRuntime

__all__ = [
    "compute_ahc",
    "invariant_bits",
    "CompressedBounds",
    "compress_bounds",
    "decompress_bounds",
    "truncate_address",
    "BoundsWayBuffer",
    "bwb_tag",
    "AOSException",
    "BoundsCheckFault",
    "BoundsClearFault",
    "BoundsStoreFault",
    "AuthenticationFault",
    "HashedBoundsTable",
    "MCQEntry",
    "MCQState",
    "MemoryCheckQueue",
    "MemoryCheckUnit",
    "ValidationResult",
    "PointerSigner",
    "AOSRuntime",
]

"""The hashed bounds table (HBT) — §V-B, with gradual resizing (§V-F3).

The HBT is a per-process, PAC-indexed, multi-way table of bounds records.
It has a *fixed* number of rows (2**pac_bits) and a power-of-two
associativity that doubles whenever an insertion fails for lack of space
(gradual resizing).  Each way of a row holds eight bounds (§V-A): one
64-byte cache line when the §V-D compression is on, or two lines of
16-byte raw bounds when it is disabled (the Fig. 15 ablation) — doubling
both the table footprint and the loads per way visit.

Resizing is non-blocking (Fig. 10): a table manager migrates rows from the
old table to a twice-as-wide new one while accesses are steered by the
``(PAC, way)`` rule::

    W >= T1 or PAC < RowPtr  ->  new table
    otherwise                ->  old table

Record *contents* are kept in a Python-side mirror (the logical table);
the address computation below is what feeds the cache model, since bounds
lines live in the normal cache hierarchy (§V-A).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Union

from ..errors import SimulationError
from ..memory.layout import AddressSpaceLayout, DEFAULT_LAYOUT
from .bounds import CompressedBounds, RawBounds, compress_bounds

if TYPE_CHECKING:
    from ..obs import Observability

BoundsRecord = Union[CompressedBounds, RawBounds]

LINE_BYTES = 64


@dataclass(slots=True)
class HBTStats:
    """Counters for the Fig. 17 / §IX-A.1 analyses."""

    inserts: int = 0
    clears: int = 0
    checks: int = 0
    lines_loaded: int = 0
    insert_failures: int = 0
    resizes: int = 0
    migrated_rows: int = 0


class HashedBoundsTable:
    """The functional HBT: slot storage plus Fig. 10 addressing."""

    __slots__ = (
        "pac_bits",
        "num_rows",
        "ways",
        "compression",
        "slots_per_way",
        "lines_per_way",
        "layout",
        "max_ways",
        "stats",
        "_obs",
        "_rows",
        "_base",
        "_old_base",
        "_old_ways",
        "_row_ptr",
        "_resizing",
        "_migration_stalled",
    )

    def __init__(
        self,
        pac_bits: int = 16,
        initial_ways: int = 1,
        layout: AddressSpaceLayout = DEFAULT_LAYOUT,
        compression: bool = True,
        max_ways: int = 64,
    ) -> None:
        if initial_ways < 1 or initial_ways & (initial_ways - 1):
            raise SimulationError("HBT associativity must be a power of two")
        self.pac_bits = pac_bits
        self.num_rows = 1 << pac_bits
        self.ways = initial_ways
        self.compression = compression
        #: Eight bounds per way (§V-A).  Compressed bounds fit one 64-byte
        #: line; raw 16-byte bounds span two lines per way (§V-D), doubling
        #: both the table footprint and the loads per way visit.
        self.slots_per_way = 8
        self.lines_per_way = 1 if compression else 2
        self.layout = layout
        self.max_ways = max_ways
        self.stats = HBTStats()
        #: Optional observability handle (set by the simulator before a
        #: run); ``None`` costs one attribute test per resize-path event.
        self._obs: Optional["Observability"] = None

        #: Logical storage: pac -> flat slot list of length ways*slots_per_way.
        #: Rows materialise lazily; missing rows are all-empty.
        self._rows: Dict[int, List[Optional[BoundsRecord]]] = {}

        # Resize state (Fig. 10).
        self._base = layout.hbt_base
        self._old_base: Optional[int] = None
        self._old_ways = initial_ways
        self._row_ptr = 0
        self._resizing = False
        #: Fault-injection seam: a stalled table manager stops migrating
        #: rows until :meth:`resume_migration`, freezing the Fig. 10
        #: steering split between old and new tables.
        self._migration_stalled = False

    def clone(self) -> "HashedBoundsTable":
        """An independent copy for one simulation run.

        Rows are copied shallowly (bounds records are immutable and safely
        shared); geometry, resize/steering state and statistics are
        snapshotted; the observability handle is *not* carried over (each
        run attaches its own via :meth:`set_obs`).  The AOS lowering builds
        one preamble-warmed prototype and clones it per run instead of
        re-executing every preamble insert.
        """
        other = object.__new__(HashedBoundsTable)
        other.pac_bits = self.pac_bits
        other.num_rows = self.num_rows
        other.ways = self.ways
        other.compression = self.compression
        other.slots_per_way = self.slots_per_way
        other.lines_per_way = self.lines_per_way
        other.layout = self.layout
        other.max_ways = self.max_ways
        other.stats = replace(self.stats)
        other._obs = None
        other._rows = {pac: list(row) for pac, row in self._rows.items()}
        other._base = self._base
        other._old_base = self._old_base
        other._old_ways = self._old_ways
        other._row_ptr = self._row_ptr
        other._resizing = self._resizing
        other._migration_stalled = self._migration_stalled
        return other

    # ------------------------------------------------------------ addressing

    @property
    def way_bytes(self) -> int:
        """Bytes per way: one line compressed, two uncompressed (§V-D)."""
        return LINE_BYTES * self.lines_per_way

    @property
    def table_bytes(self) -> int:
        """Current table footprint (Table IV: 64K rows x 1 way x 64 B = 4 MB)."""
        return self.num_rows * self.ways * self.way_bytes

    def line_address(self, pac: int, way: int) -> int:
        """BndAddr of Eq. 1/2, honouring the Fig. 10 steering rule."""
        if not 0 <= pac < self.num_rows:
            raise SimulationError(f"PAC {pac:#x} out of range")
        if not 0 <= way < self.ways:
            raise SimulationError(f"way {way} out of range (assoc {self.ways})")
        if self._resizing:
            if way >= self._old_ways or pac < self._row_ptr:
                base, assoc = self._base, self.ways
            else:
                base, assoc = self._old_base, self._old_ways
        else:
            base, assoc = self._base, self.ways
        shift = 6 + self.lines_per_way - 1  # 64B or 128B ways
        row_offset = pac << (assoc.bit_length() - 1 + shift)
        return base + row_offset + (way << shift)

    def way_line_addresses(self, pac: int, way: int) -> List[int]:
        """The cache-line addresses one way visit must load (1 or 2)."""
        first = self.line_address(pac, way)
        return [first + LINE_BYTES * i for i in range(self.lines_per_way)]

    # ----------------------------------------------------------- slot access

    def _row(self, pac: int) -> List[Optional[BoundsRecord]]:
        row = self._rows.get(pac)
        capacity = self.ways * self.slots_per_way
        if row is None:
            row = [None] * capacity
            self._rows[pac] = row
        elif len(row) < capacity:
            row.extend([None] * (capacity - len(row)))
        return row

    def read_way(self, pac: int, way: int) -> List[Optional[BoundsRecord]]:
        """The records in one way (one 64-byte load; two if uncompressed)."""
        self.stats.lines_loaded += self.lines_per_way
        row = self._row(pac)
        start = way * self.slots_per_way
        return row[start : start + self.slots_per_way]

    def _store_slot(self, pac: int, way: int, slot: int, record: Optional[BoundsRecord]) -> None:
        self._row(pac)[way * self.slots_per_way + slot] = record

    # ------------------------------------------------------------ operations

    def make_record(self, lower: int, size: int) -> BoundsRecord:
        """Encode a bounds record in the table's configured format."""
        if self.compression:
            return CompressedBounds(raw=compress_bounds(lower, size))
        return RawBounds(lower=lower, upper=lower + size)

    def insert(
        self, pac: int, lower: int, size: int, way: Optional[int] = None
    ) -> Tuple[int, int, int]:
        """``bndstr``'s occupancy walk: returns (way, slot, ways_searched).

        ``way``, when given, is a way the caller's FSM walk already loaded
        and verified to hold a free slot (``MCQEntry.result_way``); the
        record is placed there without re-reading way lines, so the walk's
        line loads are not double-counted into :attr:`HBTStats.lines_loaded`.

        Raises :class:`SimulationError` if every way is full — the caller
        (MCU) converts that into a :class:`BoundsStoreFault` for the OS.
        """
        self.stats.inserts += 1
        record = self.make_record(lower, size)
        if way is not None and 0 <= way < self.ways:
            row = self._row(pac)
            start = way * self.slots_per_way
            for slot in range(self.slots_per_way):
                if row[start + slot] is None:
                    row[start + slot] = record
                    return way, slot, 0
            # Stale hint (cannot happen single-threaded): fall back to the
            # counted full walk below.
        for candidate in range(self.ways):
            slots = self.read_way(pac, candidate)
            for slot, existing in enumerate(slots):
                if existing is None:
                    self._store_slot(pac, candidate, slot, record)
                    return candidate, slot, candidate + 1
        self.stats.insert_failures += 1
        if self._obs is not None:
            self._obs.emit("hbt.insert.fail", pac=pac, ways=self.ways)
        raise SimulationError(f"HBT row {pac:#x} full at associativity {self.ways}")

    def clear_matching(
        self, pac: int, address: int, way: Optional[int] = None
    ) -> Tuple[Optional[int], int]:
        """``bndclr``'s walk: zero the record whose lower bound == address.

        Returns (way or None, ways_searched).  ``None`` signals a
        bounds-clear failure: double free or an invalid/crafted pointer.
        Like :meth:`insert`, a ``way`` verified by the caller's FSM walk is
        cleared directly without re-counting its line loads.
        """
        self.stats.clears += 1
        target = self._comparable_lower(address)
        if way is not None and 0 <= way < self.ways:
            row = self._rows.get(pac)
            if row is not None:
                start = way * self.slots_per_way
                for slot in range(self.slots_per_way):
                    record = row[start + slot]
                    if record is not None and record.lower == target:
                        row[start + slot] = None
                        return way, 0
            # Stale hint: fall through to the counted full walk.
        for candidate in range(self.ways):
            slots = self.read_way(pac, candidate)
            for slot, record in enumerate(slots):
                if record is None:
                    continue
                if record.lower == target:
                    self._store_slot(pac, candidate, slot, None)
                    return candidate, candidate + 1
        return None, self.ways

    def find_valid(
        self, pac: int, address: int, start_way: int = 0
    ) -> Tuple[Optional[int], int]:
        """Bounds checking: find a record containing ``address``.

        Starts from ``start_way`` (the BWB hint, §V-C) and wraps.  Returns
        (way or None, number of way lines loaded).
        """
        self.stats.checks += 1
        searched = 0
        for step in range(self.ways):
            way = (start_way + step) % self.ways
            slots = self.read_way(pac, way)
            searched += 1
            for record in slots:
                if record is not None and record.contains(address):
                    return way, searched
        return None, searched

    def _comparable_lower(self, address: int) -> int:
        """Addresses compare against compressed lower bounds in 33-bit space."""
        if self.compression:
            return address & ((1 << 33) - 1) & ~0xF
        return address

    # -------------------------------------------------------------- resizing

    @property
    def resizing(self) -> bool:
        return self._resizing

    @property
    def row_ptr(self) -> int:
        return self._row_ptr

    @property
    def old_ways(self) -> int:
        """Associativity of the table being migrated away from (equals
        :attr:`ways` when no resize is in flight)."""
        return self._old_ways

    def begin_resize(self) -> None:
        """Start a gradual resize: double the associativity (§V-B)."""
        if self._resizing:
            raise SimulationError("resize already in progress")
        if self.ways * 2 > self.max_ways:
            raise SimulationError("HBT reached the maximum supported associativity")
        self.stats.resizes += 1
        self._old_base = self._base
        self._old_ways = self.ways
        # Place the new table in the unused half of the HBT region; the old
        # region is recycled on the following resize.
        region_half = self.layout.hbt_size // 2
        offset = region_half if self._base == self.layout.hbt_base else 0
        self._base = self.layout.hbt_base + offset
        self.ways *= 2
        self._row_ptr = 0
        self._resizing = True
        if self._obs is not None:
            self._obs.emit(
                "hbt.resize", phase="B", old_ways=self._old_ways, new_ways=self.ways
            )

    def advance_migration(self, rows: int) -> int:
        """Migrate up to ``rows`` rows old->new; returns rows actually moved.

        The logical contents are shared, so migration here is pure
        progress-tracking; the table manager charges its memory traffic.
        """
        if not self._resizing or self._migration_stalled:
            return 0
        moved = min(rows, self.num_rows - self._row_ptr)
        self._row_ptr += moved
        self.stats.migrated_rows += moved
        if self._row_ptr >= self.num_rows:
            self._resizing = False
            self._old_base = None
            self._old_ways = self.ways
            if self._obs is not None:
                self._obs.emit("hbt.resize", phase="E", ways=self.ways)
        return moved

    def finish_resize(self) -> None:
        """Complete any in-flight migration immediately (blocking ablation)."""
        self.advance_migration(self.num_rows)

    # ------------------------------------------------------- fault injection
    #
    # These seams let :mod:`repro.faults` corrupt live table state the way
    # a buggy table manager, a dropped ``bndstr`` or a rowhammer-style bit
    # flip in the bounds lines would, without going through the MCU's
    # normal operation paths.  They are also the hooks future chaos /
    # ablation work drives.

    def live_slots(self) -> List[Tuple[int, int, int]]:
        """``(pac, way, slot)`` coordinates of every occupied slot, sorted."""
        coords: List[Tuple[int, int, int]] = []
        for pac in sorted(self._rows):
            for index, record in enumerate(self._rows[pac]):
                if record is not None:
                    coords.append(
                        (pac, index // self.slots_per_way, index % self.slots_per_way)
                    )
        return coords

    def find_record(self, pac: int, address: int) -> Optional[Tuple[int, int]]:
        """``(way, slot)`` of the record containing ``address``, or None.

        Unlike :meth:`find_valid` this is a pure inspection helper: it does
        not touch the access statistics, so injectors can locate a victim
        record without perturbing the Fig. 17 counters.
        """
        row = self._rows.get(pac)
        if row is None:
            return None
        for index, record in enumerate(row):
            if record is not None and record.contains(address):
                return index // self.slots_per_way, index % self.slots_per_way
        return None

    def peek(self, pac: int, way: int, slot: int) -> Optional[BoundsRecord]:
        """Read one slot without touching the access statistics."""
        row = self._rows.get(pac)
        if row is None:
            return None
        return row[way * self.slots_per_way + slot]

    def replace_record(
        self, pac: int, way: int, slot: int, record: BoundsRecord
    ) -> BoundsRecord:
        """Overwrite one occupied slot in place; returns the old record."""
        index = way * self.slots_per_way + slot
        row = self._row(pac)
        old = row[index]
        if old is None:
            raise SimulationError(
                f"cannot corrupt empty HBT slot ({pac:#x}, way {way}, slot {slot})"
            )
        row[index] = record
        return old

    def drop_record(self, pac: int, way: int, slot: int) -> BoundsRecord:
        """Empty one occupied slot — a lost ``bndstr`` / flipped valid bit."""
        index = way * self.slots_per_way + slot
        row = self._row(pac)
        old = row[index]
        if old is None:
            raise SimulationError(
                f"cannot drop empty HBT slot ({pac:#x}, way {way}, slot {slot})"
            )
        row[index] = None
        return old

    def interrupt_migration(self, at_row: Optional[int] = None) -> int:
        """Freeze a gradual resize mid-row (table manager dies mid-flight).

        Begins a resize if none is in progress, rewinds/advances RowPtr to
        ``at_row`` (default: half way) and stalls further migration, so the
        Fig. 10 steering rule keeps splitting accesses between the old and
        new tables indefinitely.  Returns the frozen RowPtr.
        """
        if not self._resizing:
            self.begin_resize()
        if at_row is None:
            at_row = self.num_rows // 2
        self._row_ptr = max(0, min(at_row, self.num_rows - 1))
        self._migration_stalled = True
        return self._row_ptr

    @property
    def migration_stalled(self) -> bool:
        return self._migration_stalled

    def resume_migration(self) -> None:
        """Recovery path: let a stalled migration make progress again."""
        self._migration_stalled = False

    # ------------------------------------------------------------ inspection

    def set_obs(self, obs: Optional["Observability"]) -> None:
        """Attach an observability handle (the HBT is built at lowering
        time, before the run's obs exists, so the simulator injects it)."""
        self._obs = obs

    def row_occupancy(self, pac: int) -> int:
        row = self._rows.get(pac)
        if row is None:
            return 0
        return sum(1 for record in row if record is not None)

    def total_records(self) -> int:
        return sum(
            1 for row in self._rows.values() for record in row if record is not None
        )

    def max_row_occupancy(self) -> int:
        return max((self.row_occupancy(pac) for pac in self._rows), default=0)

"""The AOS functional runtime: the library's main user-facing facade.

Ties the heap allocator, pointer signing, HBT and MCU together into a
protected heap, executing exactly the instrumentation sequences of Fig. 7:

``aos_malloc`` (Fig. 7a)::

    ptr = malloc(size)
    pacma  ptr, sp, size      # sign: embed PAC + AHC
    bndstr ptr, size          # store bounds in the HBT

``aos_free`` (Fig. 7b)::

    bndclr ptr                # clear bounds (fails on double free)
    xpacm  ptr                # strip so free() may touch chunk headers
    free(ptr)
    pacma  ptr, sp, xzr       # re-sign: lock the dangling pointer

Every :meth:`load` / :meth:`store` through a signed pointer is bounds
checked by the MCU; a failed check raises :class:`BoundsCheckFault`
*before* any memory state changes (the paper's precise-exception
guarantee, §III-C.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..config import SystemConfig, default_config
from ..crypto.pac import PACGenerator, PAKeys
from ..isa.encoding import PointerLayout
from ..memory.allocator import HeapAllocator
from ..memory.layout import AddressSpaceLayout, DEFAULT_LAYOUT
from ..memory.memory import SparseMemory
from .hbt import HashedBoundsTable
from .mcu import MemoryCheckUnit, ValidationResult
from .signing import PointerSigner


@dataclass
class AOSRuntimeStats:
    """Convenience roll-up of the runtime's component statistics."""

    mallocs: int = 0
    frees: int = 0
    loads: int = 0
    stores: int = 0
    faults_raised: int = 0


class AOSRuntime:
    """A functional AOS-protected process: heap + signed pointers + HBT."""

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        address_layout: AddressSpaceLayout = DEFAULT_LAYOUT,
        pac_mode: str = "qarma",
        obs=None,
    ) -> None:
        self.config = config or default_config("aos")
        self.address_layout = address_layout
        self.memory = SparseMemory()
        self.allocator = HeapAllocator(self.memory, address_layout)
        pointer_layout = PointerLayout(pac_bits=self.config.pa.pac_bits)
        generator = PACGenerator(
            keys=PAKeys(apma=self.config.pa.key),
            pac_bits=self.config.pa.pac_bits,
            mode=pac_mode,
        )
        self.signer = PointerSigner(generator=generator, layout=pointer_layout)
        self.hbt = HashedBoundsTable(
            pac_bits=self.config.pa.pac_bits,
            initial_ways=self.config.hbt.initial_ways,
            layout=address_layout,
            compression=self.config.aos.bounds_compression,
        )
        #: Optional :class:`repro.obs.Observability` threaded through the
        #: MCU and HBT (functional runs have no pipeline, so events are
        #: stamped at whatever cycle the caller publishes — 0 by default).
        self.obs = obs
        self.hbt.set_obs(obs)
        self.mcu = MemoryCheckUnit(
            hbt=self.hbt,
            layout=pointer_layout,
            options=self.config.aos,
            bwb_config=self.config.bwb,
            mcq_capacity=self.config.core.mcq_entries,
            obs=obs,
        )
        self.stats = AOSRuntimeStats()
        #: The stack-pointer modifier used by pacma at malloc sites (§IV-C).
        #: Real programs sign at different stack depths; we model a small
        #: set of frame depths so a re-signed (locked) dangling pointer does
        #: not share its PAC with a later allocation reusing the address.
        self.sp = address_layout.stack_top - 0x100
        self._frame = 0

    # ------------------------------------------------------------- heap API

    def _call_site_sp(self) -> int:
        """The SP modifier at the current (rotating) call site."""
        self._frame = (self._frame + 1) % 64
        return self.sp - 16 * self._frame

    def malloc(self, size: int) -> int:
        """Allocate and protect ``size`` bytes; returns a *signed* pointer."""
        raw = self.allocator.malloc(size)
        signed = self.signer.pacma(raw, self._call_site_sp(), size)
        result = self.mcu.bounds_store(signed, size)
        self._raise_on_fault(result)
        self.stats.mallocs += 1
        return signed

    def free(self, pointer: int) -> int:
        """Free a signed pointer; returns the re-signed (locked) pointer.

        Raises :class:`BoundsClearFault` on double free or a crafted
        address — the check that stops House of Spirit (§VII-A).
        """
        result = self.mcu.bounds_clear(pointer)
        self._raise_on_fault(result)
        stripped = self.signer.xpacm(pointer)
        self.allocator.free(stripped)
        self.stats.frees += 1
        # Re-sign with xzr as the size operand: locks the dangling pointer.
        return self.signer.pacma(stripped, self._call_site_sp(), 0)

    # ----------------------------------------------------------- memory API

    def load(self, pointer: int, size: int = 8) -> int:
        """Bounds-checked load; raises BoundsCheckFault on violation."""
        self._validate(pointer, is_store=False)
        self.stats.loads += 1
        address = self.signer.xpacm(pointer)
        return int.from_bytes(self.memory.read_bytes(address, size), "little")

    def store(self, pointer: int, value: int, size: int = 8) -> None:
        """Bounds-checked store.  The check completes before memory is
        updated (precise exceptions): a faulting store writes nothing."""
        self._validate(pointer, is_store=True)
        self.stats.stores += 1
        address = self.signer.xpacm(pointer)
        self.memory.write_bytes(address, (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little"))

    def load_bytes(self, pointer: int, size: int) -> bytes:
        self._validate(pointer, is_store=False)
        self.stats.loads += 1
        return self.memory.read_bytes(self.signer.xpacm(pointer), size)

    def store_bytes(self, pointer: int, data: bytes) -> None:
        self._validate(pointer, is_store=True)
        self.stats.stores += 1
        self.memory.write_bytes(self.signer.xpacm(pointer), data)

    # ------------------------------------------------------------- plumbing

    def _validate(self, pointer: int, is_store: bool) -> ValidationResult:
        result = self.mcu.check_access(pointer, is_store=is_store)
        self._raise_on_fault(result)
        return result

    def _raise_on_fault(self, result: ValidationResult) -> None:
        if not result.ok and result.fault is not None:
            self.stats.faults_raised += 1
            raise result.fault

    def offset(self, pointer: int, delta: int) -> int:
        """Pointer arithmetic: the PAC/AHC ride along with the address,
        exactly the no-extra-instructions propagation of §III-B."""
        return pointer + delta

    def publish_metrics(self) -> None:
        """Harvest runtime + allocator + MCU stats into ``obs.registry``."""
        if self.obs is None:
            return
        registry = self.obs.registry
        registry.count("runtime.mallocs", self.stats.mallocs)
        registry.count("runtime.frees", self.stats.frees)
        registry.count("runtime.loads", self.stats.loads)
        registry.count("runtime.stores", self.stats.stores)
        registry.count("runtime.faults_raised", self.stats.faults_raised)
        self.allocator.publish_metrics(registry)
        self.mcu.publish_metrics(registry)

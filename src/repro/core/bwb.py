"""The bounds way buffer (BWB) — §V-C, Algorithm 2.

A small tag buffer that remembers which HBT way held the valid bounds for
recently checked pointers, so subsequent checks start at the right way
instead of iterating from way 0.  Tags concatenate the PAC, a window of
pointer bits chosen by the AHC (so every address inside one object maps to
the same tag), and the AHC itself.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional


def bwb_tag(address: int, ahc: int, pac: int) -> int:
    """Algorithm 2: the 32-bit BWB tag for a pointer.

    ====  =======================================
    AHC   pointer bits concatenated into the tag
    ====  =======================================
    1     Addr[20:7]   (~64-byte objects)
    2     Addr[23:10]  (~256-byte objects)
    3     Addr[25:12]  (larger objects)
    ====  =======================================
    """
    if ahc == 1:
        window = (address >> 7) & 0x3FFF
    elif ahc == 2:
        window = (address >> 10) & 0x3FFF
    elif ahc == 3:
        window = (address >> 12) & 0x3FFF
    else:
        raise ValueError(f"AHC must be 1..3 for signed pointers, got {ahc}")
    return ((pac & 0xFFFF) << 16) | (window << 2) | (ahc & 0x3)


@dataclass(slots=True)
class BWBStats:
    lookups: int = 0
    hits: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class BoundsWayBuffer:
    """64-entry (default) LRU tag buffer mapping tags to last-used HBT ways."""

    __slots__ = ("entries", "eviction", "stats", "_table")

    def __init__(self, entries: int = 64, eviction: str = "lru") -> None:
        if entries < 1:
            raise ValueError("BWB needs at least one entry")
        if eviction not in ("lru", "fifo"):
            raise ValueError("BWB eviction must be 'lru' or 'fifo'")
        self.entries = entries
        self.eviction = eviction
        self.stats = BWBStats()
        self._table: "OrderedDict[int, int]" = OrderedDict()

    def lookup(self, tag: int, max_way: Optional[int] = None) -> Optional[int]:
        """Return the way hint for ``tag``, or None on a BWB miss.

        ``max_way`` is the current HBT associativity: a stored hint the
        table geometry cannot use (``way >= max_way``) is treated as a
        miss and evicted, so :attr:`BWBStats.hit_rate` counts exactly the
        hints the MCU consumed.  (Previously such hints were counted as
        hits while the walk silently restarted from way 0, inflating the
        Fig. 17 hit-rate column.)
        """
        self.stats.lookups += 1
        way = self._table.get(tag)
        if way is None:
            return None
        if max_way is not None and way >= max_way:
            del self._table[tag]
            return None
        self.stats.hits += 1
        if self.eviction == "lru":
            self._table.move_to_end(tag)
        return way

    def peek(self, tag: int) -> Optional[int]:
        """Read a way hint without touching hit statistics or LRU order.

        Observation seam for auditors (the ``--paranoid`` invariant
        oracle): a post-run audit must not perturb ``hit_rate`` or the
        eviction order it is checking.
        """
        return self._table.get(tag)

    def update(self, tag: int, way: int) -> None:
        """Record the last accessed HBT way for ``tag`` (on MCQ retirement)."""
        if tag in self._table:
            self._table[tag] = way
            if self.eviction == "lru":
                self._table.move_to_end(tag)
            return
        if len(self._table) >= self.entries:
            self._table.popitem(last=False)
        self._table[tag] = way

    def invalidate(self, tag: int) -> None:
        self._table.pop(tag, None)

    def poison(self, tag: int, way: int) -> None:
        """Fault-injection seam: plant a (possibly stale/wrong) way hint.

        Bypasses the LRU bookkeeping and hit statistics so the injected
        entry looks exactly like a tag left behind by an earlier phase —
        the BWB is a *hint* structure, so a wrong way must only cost extra
        way walks, never correctness (§V-C).
        """
        if tag not in self._table and len(self._table) >= self.entries:
            self._table.popitem(last=False)
        self._table[tag] = way

    def clear_hints(self) -> None:
        """Drop every cached way hint (fault-harness teardown).  The BWB
        is a hint structure, so emptying it is always safe — the next
        check simply pays the full way walk again."""
        self._table.clear()

    def tags(self) -> list:
        """Current tags, oldest first (inspection/injection helper)."""
        return list(self._table)

    def flush(self) -> None:
        """Drop all entries (e.g. after an HBT resize changes way geometry)."""
        self._table.clear()

    def __len__(self) -> int:
        return len(self._table)

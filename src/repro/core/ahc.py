"""Address hashing code (AHC) computation — Algorithm 1 of the paper.

The 2-bit AHC embedded by ``pacma`` serves two purposes (§IV-A):

1. a nonzero value marks the pointer as signed/protected, and
2. it encodes which upper bits of a pointer are *invariant* across the
   memory object, so the BWB can build stable tags (Alg. 2) even though
   pointer arithmetic changes low-order bits.

The size classes follow typical allocator bins: AHC 1 for objects whose
addresses share everything above bit 6 (~64-byte chunks), AHC 2 above
bit 9 (~256-byte chunks), AHC 3 otherwise.
"""

from __future__ import annotations


def compute_ahc(address: int, size: int, va_bits: int = 46) -> int:
    """Algorithm 1: derive the 2-bit AHC from an object's base and size.

    ``tAddr = Addr xor (Addr + Size - 1)`` has zeros in every bit position
    that is identical between the first and last byte of the object; the
    AHC classifies where the lowest varying bit can appear.
    """
    if size <= 0:
        raise ValueError("AHC is defined for positive object sizes")
    t_addr = address ^ (address + size - 1)
    if t_addr >> 7 == 0:
        return 1  # ~64-byte chunk: bits [va-1:7] invariant
    if t_addr >> 10 == 0:
        return 2  # ~256-byte chunk: bits [va-1:10] invariant
    return 3      # larger object


def invariant_bits(ahc: int) -> int:
    """The lowest pointer bit guaranteed invariant for a given AHC.

    Used by the BWB tag derivation (Alg. 2): tags take pointer bits from
    this position upward so all addresses inside one object map to the
    same tag.
    """
    if ahc == 1:
        return 7
    if ahc == 2:
        return 10
    if ahc == 3:
        return 12
    raise ValueError(f"AHC must be 1..3 for signed pointers, got {ahc}")

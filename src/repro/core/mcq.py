r"""The memory check queue (MCQ) and its finite state machines — §V-A, Fig. 8.

Every memory instruction issued to the LSU is also enqueued here; ``bndstr``
and ``bndclr`` are issued directly here.  Each entry walks one of two FSMs:

``load/store`` (Fig. 8a)::

    Init --signed--> BndChk --succeed--> Done
      \--!signed--> Done      \--fail--> IncCnt --count<W--> BndChk
                                             \--count==W--> Fail

``bndstr/bndclr`` (Fig. 8b)::

    Init --> OccChk --succeed--> BndStr --committed--> Done
                 \--fail--> IncCnt --count<W--> OccChk
                                 \--count==W--> Fail

Each ``BndChk``/``OccChk`` visit loads one 64-byte HBT way line and checks
up to eight bounds in parallel (§V-A).  The MCU drives the FSM steps and
charges one bounds-line access per visit.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Deque, List, Optional

from ..errors import SimulationError
from .hbt import HashedBoundsTable


class MCQState(Enum):
    """Operation states of the Fig. 8 FSMs."""

    INIT = auto()
    OCC_CHK = auto()
    BND_CHK = auto()
    BND_STR = auto()
    INC_CNT = auto()
    FAIL = auto()
    DONE = auto()


class MCQType(Enum):
    """The Type field: bounds-table management vs load/store (§V-A.1)."""

    LOAD = auto()
    STORE = auto()
    BNDSTR = auto()
    BNDCLR = auto()


@dataclass(slots=True)
class MCQEntry:
    """One in-flight bounds operation (the fields of §V-A.1).

    ``slots=True``: one entry is allocated per table op / reference-kernel
    signed check, so the per-instance ``__dict__`` is measurable overhead.
    """

    entry_type: MCQType
    #: Stripped pointer address being validated / managed.
    address: int
    #: The PAC extracted from the pointer (row index).
    pac: int
    #: The AHC (0 means unsigned: no checking needed).
    ahc: int
    #: Object size for bndstr.
    size: int = 0
    #: Way to access next (seeded by the BWB hint for checks).
    way: int = 0
    #: Ways accessed so far for this operation.
    count: int = 0
    #: Set when the instruction retires from the ROB; bounds stores may only
    #: be sent to memory afterwards (store-store ordering, §V-A.1).
    committed: bool = False
    state: MCQState = MCQState.INIT
    valid: bool = True
    #: Way where the operation succeeded (for BWB update on retirement).
    result_way: Optional[int] = None
    #: Line addresses loaded (the MCU charges one cache access each).
    lines_accessed: List[int] = field(default_factory=list)

    @property
    def is_signed(self) -> bool:
        return self.ahc != 0

    @property
    def is_table_op(self) -> bool:
        return self.entry_type in (MCQType.BNDSTR, MCQType.BNDCLR)

    # ------------------------------------------------------------- FSM steps

    def step(self, table: HashedBoundsTable) -> MCQState:
        """Advance the FSM by one state transition against ``table``.

        Returns the new state.  Callers drive this until the entry reaches
        DONE or FAIL.
        """
        if self.state is MCQState.INIT:
            self._step_init()
        elif self.state is MCQState.OCC_CHK:
            self._step_occ_chk(table)
        elif self.state is MCQState.BND_CHK:
            self._step_bnd_chk(table)
        elif self.state is MCQState.INC_CNT:
            self._step_inc_cnt(table)
        elif self.state is MCQState.BND_STR:
            self._step_bnd_str()
        elif self.state in (MCQState.DONE, MCQState.FAIL):
            raise SimulationError("stepping a completed MCQ entry")
        return self.state

    def _step_init(self) -> None:
        if self.is_table_op:
            self.state = MCQState.OCC_CHK
        elif self.is_signed:
            self.state = MCQState.BND_CHK
        else:
            self.state = MCQState.DONE

    def _step_occ_chk(self, table: HashedBoundsTable) -> None:
        self.lines_accessed.extend(table.way_line_addresses(self.pac, self.way))
        slots = table.read_way(self.pac, self.way)
        if self.entry_type is MCQType.BNDSTR:
            succeeded = any(record is None for record in slots)
        else:  # BNDCLR: the loaded lower bound must equal the pointer address
            target = table._comparable_lower(self.address)
            succeeded = any(
                record is not None and record.lower == target for record in slots
            )
        if succeeded:
            self.result_way = self.way
            self.state = MCQState.BND_STR
        else:
            self.state = MCQState.INC_CNT

    def _step_bnd_chk(self, table: HashedBoundsTable) -> None:
        self.lines_accessed.extend(table.way_line_addresses(self.pac, self.way))
        slots = table.read_way(self.pac, self.way)
        if any(record is not None and record.contains(self.address) for record in slots):
            self.result_way = self.way
            self.state = MCQState.DONE
        else:
            self.state = MCQState.INC_CNT

    def _step_inc_cnt(self, table: HashedBoundsTable) -> None:
        self.count += 1
        if self.count >= table.ways:
            self.state = MCQState.FAIL
        else:
            # Recalculate BndAddr for the next way (wrapping from the hint).
            self.way = (self.way + 1) % table.ways
            self.state = MCQState.OCC_CHK if self.is_table_op else MCQState.BND_CHK

    def _step_bnd_str(self) -> None:
        # Waits for Committed; the store request is sent by the MCU, which
        # performs the actual table mutation and the store-load replay check.
        if self.committed:
            self.state = MCQState.DONE

    def replay(self, start_way: int = 0) -> None:
        """Store-load replay (§V-E): restart the walk with Count reset."""
        if self.state is MCQState.DONE:
            return  # completed entries found valid bounds; no replay needed
        self.count = 0
        self.way = start_way
        self.state = MCQState.INIT


class MemoryCheckQueue:
    """The 48-entry (Table IV) FIFO holding in-flight bounds operations."""

    __slots__ = ("capacity", "_entries")

    def __init__(self, capacity: int = 48) -> None:
        if capacity < 1:
            raise SimulationError("MCQ capacity must be positive")
        self.capacity = capacity
        self._entries: Deque[MCQEntry] = deque()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def enqueue(self, entry: MCQEntry) -> None:
        if self.full:
            raise SimulationError("enqueue on a full MCQ (issue must stall)")
        self._entries.append(entry)

    def head(self) -> Optional[MCQEntry]:
        return self._entries[0] if self._entries else None

    def retire_head(self) -> MCQEntry:
        """Deallocate the head entry (must be DONE+committed or FAIL)."""
        if not self._entries:
            raise SimulationError("retiring from an empty MCQ")
        head = self._entries[0]
        if head.state not in (MCQState.DONE, MCQState.FAIL):
            raise SimulationError("retiring an MCQ entry that has not completed")
        return self._entries.popleft()

    def newer_than(self, entry: MCQEntry) -> List[MCQEntry]:
        """Entries younger than ``entry`` (for store-load replay, §V-E)."""
        entries = list(self._entries)
        for idx, candidate in enumerate(entries):
            if candidate is entry:  # identity: value-equal entries may coexist
                return entries[idx + 1 :]
        return []

    def __iter__(self):
        return iter(self._entries)

"""Functional semantics of the AOS signing instructions — §IV-A.

``pacma``   sign a data pointer: PAC from QARMA(base address, modifier),
            AHC from Algorithm 1.  A nonzero AHC marks the pointer as
            protected; the PAC indexes the HBT.
``xpacm``   strip PAC and AHC (used around ``free()``, §IV-C).
``autm``    authenticate that the pointer carries a nonzero AHC — the
            on-load authentication of Fig. 13 (§VII-B).  Unlike ``autda``
            it does not recompute a PAC, because AOS PACs are bound to the
            *base* address of the object, not the current pointer value.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..crypto.pac import PACGenerator
from ..isa.encoding import PointerLayout
from .ahc import compute_ahc
from .exceptions import AuthenticationFault, FaultInfo


@dataclass
class PointerSigner:
    """Implements pacma/pacmb, xpacm and autm over a pointer layout."""

    generator: PACGenerator = field(default_factory=PACGenerator)
    layout: PointerLayout = field(default_factory=PointerLayout)

    def __post_init__(self) -> None:
        if self.generator.pac_bits != self.layout.pac_bits:
            raise ValueError("PAC generator and pointer layout disagree on PAC size")

    def pacma(self, pointer: int, modifier: int, size: int, key: str = "ma") -> int:
        """Sign ``pointer``: embed PAC and AHC (the third operand is the
        allocation size; ``xzr`` i.e. 0 is used when re-signing on free)."""
        address = self.layout.address(pointer)
        ahc = compute_ahc(address, size if size > 0 else 1, self.layout.va_bits)
        pac = self.generator.compute(address, modifier, key_name=key)
        return self.layout.sign(address, pac, ahc)

    def pacmb(self, pointer: int, modifier: int, size: int) -> int:
        return self.pacma(pointer, modifier, size, key="mb")

    def pacma_batch(self, pointers, modifier: int, sizes, key: str = "ma") -> list:
        """Sign many pointers under one modifier (preamble bulk signing).

        Element-for-element identical to calling :meth:`pacma` in a loop —
        pinned by ``tests/test_properties.py`` — but routes PAC generation
        through :meth:`PACGenerator.compute_batch`, which vectorises QARMA
        mode over the whole batch.
        """
        layout = self.layout
        addresses = [layout.address(p) for p in pointers]
        pacs = self.generator.compute_batch(addresses, modifier, key_name=key)
        return [
            layout.sign(
                address,
                pac,
                compute_ahc(address, size if size > 0 else 1, layout.va_bits),
            )
            for address, pac, size in zip(addresses, pacs, sizes)
        ]

    def xpacm(self, pointer: int) -> int:
        """Strip both PAC and AHC from the pointer."""
        return self.layout.strip(pointer)

    def autm(self, pointer: int) -> int:
        """Authenticate an AOS pointer: fault if the AHC is zero (Fig. 13).

        Returns the pointer unchanged (autm does not strip the AHC, §IV-A).
        """
        decoded = self.layout.decode(pointer)
        if decoded.ahc == 0:
            raise AuthenticationFault(
                FaultInfo(
                    pointer=pointer,
                    pac=decoded.pac,
                    ahc=decoded.ahc,
                    detail="autm: pointer is not AOS-signed (corrupted AHC)",
                )
            )
        return pointer

    def pac_of(self, pointer: int) -> int:
        return self.layout.pac(pointer)

    def ahc_of(self, pointer: int) -> int:
        return self.layout.ahc(pointer)

    def is_signed(self, pointer: int) -> bool:
        return self.layout.is_signed(pointer)

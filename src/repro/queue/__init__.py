"""Durable, crash-tolerant distributed campaign service.

The queue layer shards a fault-injection campaign across worker
*processes* today with multi-host-shaped interfaces: everything flows
through one queue directory (SQLite job store + heartbeat board) and the
pluggable artifact store, never through pipes or sockets, so pointing
workers on several hosts at a shared directory is the same programming
model.  See ``DESIGN.md`` §4g for the architecture and the lease state
machine.
"""

from .service import (
    CampaignService,
    ServiceConfig,
    ServiceReport,
    campaign_cell_jobs,
    collect_campaign,
    enqueue_campaign,
    verify_against_serial,
)
from .store import (
    DONE,
    JOB_STATES,
    LEASED,
    PENDING,
    QUARANTINED,
    Job,
    QueueCounts,
    QueueError,
    QueueEventLog,
    ReclaimEvent,
    WorkQueue,
    canonical_key,
)
from .worker import QueueWorker, WorkerConfig, cell_fingerprint, worker_main

__all__ = [
    "CampaignService",
    "ServiceConfig",
    "ServiceReport",
    "campaign_cell_jobs",
    "collect_campaign",
    "enqueue_campaign",
    "verify_against_serial",
    "WorkQueue",
    "Job",
    "QueueCounts",
    "QueueError",
    "QueueEventLog",
    "ReclaimEvent",
    "canonical_key",
    "JOB_STATES",
    "PENDING",
    "LEASED",
    "DONE",
    "QUARANTINED",
    "QueueWorker",
    "WorkerConfig",
    "worker_main",
    "cell_fingerprint",
]

"""The campaign service: enqueue, spawn workers, reclaim, collect.

``python -m repro serve`` runs a :class:`CampaignService`: it enqueues a
campaign into the durable :class:`~repro.queue.WorkQueue`, spawns N
``python -m repro worker`` subprocesses against the queue directory, and
then does only coordinator work — reclaiming dead workers' leases (with
an *unskewed* clock), respawning crashed workers up to a bound, and
reporting progress — until every cell is done or quarantined.  Because
workers also self-reclaim, the coordinator is an optimisation, not a
single point of failure: killing it and later restarting ``serve`` (or
just pointing fresh workers at the queue directory) resumes the campaign
exactly where it stopped.

Collection is where the distributed path meets the serial contract: the
merged :class:`~repro.faults.campaign.CampaignResult` lists cells in the
*deterministic sweep order* of ``Campaign.cells()``, not completion
order, so ``--verify-serial`` can assert the merged stable payloads are
byte-identical to an in-process serial run of the same config.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..faults.campaign import Campaign, CampaignConfig, CampaignResult, RunResult
from ..obs import MetricsRegistry
from ..supervise.heartbeat import sweep_stale_boards
from ..supervise.policy import RetryPolicy
from .store import QueueError, ReclaimEvent, WorkQueue, canonical_key


def campaign_cell_jobs(config: CampaignConfig):
    """``(key, payload)`` pairs for every cell of ``config``'s sweep grid,
    in deterministic sweep order, keyed exactly like the checkpoint."""
    campaign = Campaign(config)
    for workload, mechanism, spec in campaign.cells():
        key = Campaign._cell_key(workload, mechanism, spec)
        yield key, {
            "workload": workload,
            "mechanism": mechanism,
            "kind": spec.kind.value,
            "location": spec.location,
            "seed": spec.seed,
        }


def enqueue_campaign(
    queue: WorkQueue,
    campaign_id: str,
    config: CampaignConfig,
    priority: int = 0,
    weight: float = 1.0,
) -> int:
    """Register ``config`` under ``campaign_id`` and enqueue its cells.

    Idempotent: re-running against a half-finished queue enqueues only
    the cells that are not already present (the resume path).
    """
    queue.create_campaign(
        campaign_id, config.to_payload(), priority=priority, weight=weight
    )
    return queue.enqueue(campaign_id, campaign_cell_jobs(config))


# ------------------------------------------------------- timing campaigns


def timing_cell_jobs(cells):
    """``(key, payload)`` pairs for a timing sweep's (workload, mechanism)
    cells, keyed like ``ExperimentSuite``'s memo (workload, key-or-mech)."""
    for cell in cells:
        key = [cell.workload, cell.key or cell.mechanism]
        yield key, {
            "workload": cell.workload,
            "mechanism": cell.mechanism,
            "key": cell.key,
        }


def enqueue_timing_campaign(
    queue: WorkQueue,
    campaign_id: str,
    settings,
    cells,
    priority: int = 0,
    weight: float = 1.0,
) -> int:
    """Register a *timing* campaign: plain simulation cells, no faults.

    ``settings`` is a :class:`~repro.experiments.common.RunSettings`;
    ``cells`` an iterable of bare
    :class:`~repro.experiments.parallel.CellSpec` (default configs only —
    explicit configs and ingested traces are not queue-serializable).
    Workers recognise the ``campaign_kind: "timing"`` config marker and
    run each *claimed batch* of these cells through the cross-cell
    lockstep driver (:mod:`repro.kernel.batch`) when the settings select
    the specialized kernel, so campaigns batch automatically.  Idempotent
    like :func:`enqueue_campaign`.
    """
    from ..experiments.common import settings_to_payload

    cells = list(cells)
    for cell in cells:
        if cell.config is not None or cell.trace_path is not None:
            raise QueueError(
                "timing campaigns take bare CellSpecs (no explicit config "
                "or ingested trace); scale-matched configs are rebuilt by "
                "the workers"
            )
    queue.create_campaign(
        campaign_id,
        {"campaign_kind": "timing", "settings": settings_to_payload(settings)},
        priority=priority,
        weight=weight,
    )
    return queue.enqueue(campaign_id, timing_cell_jobs(cells))


def collect_timing_campaign(queue: WorkQueue, campaign_id: str) -> Dict[str, dict]:
    """A timing campaign's acked result payloads, keyed by canonical cell
    key (``'["workload", "mechanism"]'``), for comparison/merging."""
    config = queue.campaign_config(campaign_id)
    if config.get("campaign_kind") != "timing":
        raise QueueError(f"campaign {campaign_id!r} is not a timing campaign")
    return queue.results(campaign_id)


def collect_campaign(queue: WorkQueue, campaign_id: str) -> CampaignResult:
    """Merge a campaign's queued results into a :class:`CampaignResult`,
    in deterministic sweep order (the serial-equivalence contract)."""
    config = CampaignConfig.from_payload(queue.campaign_config(campaign_id))
    results = queue.results(campaign_id)
    poisoned = queue.quarantined(campaign_id)
    outcome = CampaignResult()
    for key, payload in campaign_cell_jobs(config):
        canon = canonical_key(key)
        if canon in results:
            outcome.results.append(RunResult.from_payload(results[canon]))
        elif canon in poisoned:
            outcome.quarantined.append(
                {
                    "workload": payload["workload"],
                    "mechanism": payload["mechanism"],
                    "kind": payload["kind"],
                    "location": payload["location"],
                    "reason": poisoned[canon],
                }
            )
    return outcome


def verify_against_serial(
    config: CampaignConfig, distributed: CampaignResult
) -> Optional[str]:
    """None when the distributed merge is byte-identical to a serial run
    of the same config, else a human-readable mismatch description."""
    if distributed.quarantined:
        return f"{len(distributed.quarantined)} cell(s) quarantined"
    serial = Campaign(config).run()
    want = [r.stable_payload() for r in serial.results]
    have = [r.stable_payload() for r in distributed.results]
    if len(want) != len(have):
        return f"cell count mismatch: serial {len(want)}, distributed {len(have)}"
    for index, (expected, actual) in enumerate(zip(want, have)):
        if expected != actual:
            return (
                f"cell {index} differs: serial {json.dumps(expected, sort_keys=True)}"
                f" != distributed {json.dumps(actual, sort_keys=True)}"
            )
    return None


@dataclass(frozen=True)
class ServiceConfig:
    """Coordinator knobs for one ``serve`` invocation."""

    queue_root: Union[str, Path]
    workers: int = 3
    batch: int = 2
    lease_ttl_s: float = 15.0
    #: Worker beats older than this are presumed dead on reclaim.
    heartbeat_timeout_s: float = 5.0
    #: Coordinator loop cadence (reclaim + respawn + progress).
    reclaim_interval_s: float = 0.5
    #: Crashed workers respawned before the service gives up spawning
    #: (lease expiry still drains the queue through surviving workers).
    max_respawns: int = 3
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Extra argv appended to every spawned worker (cache flags etc.).
    worker_args: Sequence[str] = ()
    #: Chaos injection, applied to worker index 0 only (first spawn):
    #: worker-kill after K cells / lease-clock-skew of S seconds.
    kill_worker_after_cells: Optional[int] = None
    clock_skew_s: float = 0.0
    #: Print per-loop progress lines.
    verbose: bool = True


@dataclass
class ServiceReport:
    """What one ``serve`` run did, per campaign and overall."""

    results: Dict[str, CampaignResult] = field(default_factory=dict)
    reclaims: List[ReclaimEvent] = field(default_factory=list)
    respawns: int = 0
    drained: bool = False
    elapsed_s: float = 0.0
    metrics: dict = field(default_factory=dict)

    def format(self) -> str:
        lines = [
            f"campaign service: {len(self.results)} campaign(s) in "
            f"{self.elapsed_s:.1f}s, {len(self.reclaims)} lease reclaim(s), "
            f"{self.respawns} worker respawn(s)"
            + (" — DRAINED (resumable)" if self.drained else "")
        ]
        for campaign_id, result in self.results.items():
            done = len(result.results)
            lines.append(
                f"  {campaign_id}: {done} cell(s) done, "
                f"{len(result.quarantined)} quarantined"
            )
        return "\n".join(lines)


class CampaignService:
    """Coordinator: worker pool + lease reclaim over one queue directory."""

    def __init__(self, config: ServiceConfig, metrics: Optional[MetricsRegistry] = None):
        self.config = config
        self.metrics = metrics or MetricsRegistry()
        # The coordinator's queue handle uses the real clock on purpose:
        # reclaim decisions must not inherit an injected worker skew.
        self.queue = WorkQueue(
            config.queue_root, retry=config.retry, metrics=self.metrics
        )
        self.board = self.queue.board()
        self.draining = False
        self._procs: Dict[str, subprocess.Popen] = {}
        self._spawned = 0

    # ------------------------------------------------------------- spawning

    def _worker_argv(self, worker_id: str, first: bool) -> List[str]:
        config = self.config
        argv = [
            sys.executable,
            "-m",
            "repro",
            "worker",
            "--queue",
            str(config.queue_root),
            "--worker-id",
            worker_id,
            "--claim-batch",
            str(config.batch),
            "--lease-ttl",
            str(config.lease_ttl_s),
            "--worker-heartbeat-timeout",
            str(config.heartbeat_timeout_s),
        ]
        if first:
            if config.kill_worker_after_cells is not None:
                argv += ["--kill-after-cells", str(config.kill_worker_after_cells)]
            if config.clock_skew_s:
                argv += ["--clock-skew", str(config.clock_skew_s)]
        argv += list(config.worker_args)
        return argv

    def _spawn(self, first: bool) -> None:
        worker_id = f"w{self._spawned}"
        self._spawned += 1
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2])
        parts = env.get("PYTHONPATH", "")
        if src not in parts.split(os.pathsep):
            env["PYTHONPATH"] = src + (os.pathsep + parts if parts else "")
        self._procs[worker_id] = subprocess.Popen(
            self._worker_argv(worker_id, first), env=env
        )
        self.metrics.count("queue.workers-spawned")

    def _reap(self) -> int:
        """Remove exited workers; returns how many died *unexpectedly*
        (non-zero, non-drain exit) and respawns them within the budget."""
        died = 0
        for worker_id, proc in list(self._procs.items()):
            code = proc.poll()
            if code is None:
                continue
            del self._procs[worker_id]
            if code in (0, 130):
                continue  # idle exit or graceful drain
            died += 1
            self.metrics.count("queue.workers-died")
        return died

    def request_drain(self, *_args) -> None:
        self.draining = True

    def install_signal_handlers(self) -> None:
        try:
            signal.signal(signal.SIGINT, self.request_drain)
            signal.signal(signal.SIGTERM, self.request_drain)
        except ValueError:
            pass

    # ----------------------------------------------------------------- run

    def run(self, campaign_ids: Sequence[str]) -> ServiceReport:
        """Drive the pool until every listed campaign is complete."""
        config = self.config
        report = ServiceReport()
        started = time.monotonic()
        # Satellite hygiene: boards abandoned by SIGKILLed runs are swept
        # before this run trusts any stamp it finds.
        sweep_stale_boards()
        self.board.sweep_stale(max_age_s=max(60.0, 4 * config.lease_ttl_s))
        respawns_left = config.max_respawns
        for _ in range(config.workers):
            self._spawn(first=self._spawned == 0)
        try:
            while not self.draining:
                if all(self.queue.is_complete(c) for c in campaign_ids):
                    break
                events = self.queue.reclaim(
                    self.board, heartbeat_timeout_s=config.heartbeat_timeout_s
                )
                report.reclaims.extend(events)
                for event in events:
                    if config.verbose:
                        print(
                            f"[serve] reclaimed cell {canonical_key(event.key)} "
                            f"from {event.owner}: {event.outcome} ({event.reason})",
                            flush=True,
                        )
                died = self._reap()
                for _ in range(died):
                    if respawns_left > 0 and not self.queue.idle():
                        respawns_left -= 1
                        report.respawns += 1
                        self._spawn(first=False)
                if not self._procs and self.queue.idle():
                    break  # workers finished between our checks
                if not self._procs and respawns_left <= 0:
                    raise QueueError(
                        "all workers died and the respawn budget is spent; "
                        f"queue state: {self.queue.counts().format()}"
                    )
                time.sleep(config.reclaim_interval_s)
        finally:
            self._shutdown_workers()
        report.drained = self.draining
        for campaign_id in campaign_ids:
            report.results[campaign_id] = collect_campaign(self.queue, campaign_id)
        report.elapsed_s = time.monotonic() - started
        report.metrics = self.metrics.snapshot()
        return report

    def _shutdown_workers(self) -> None:
        """Drain the pool: SIGTERM (graceful drain), bounded wait, SIGKILL."""
        for proc in self._procs.values():
            if proc.poll() is None:
                try:
                    proc.terminate()
                except OSError:
                    pass
        deadline = time.monotonic() + max(10.0, 2 * self.config.lease_ttl_s)
        for proc in self._procs.values():
            remaining = deadline - time.monotonic()
            try:
                proc.wait(timeout=max(0.1, remaining))
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
        self._procs.clear()

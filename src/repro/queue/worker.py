"""The lease-based queue worker: claim, run, ack, repeat.

A worker is deliberately dumb and stateless: everything it knows lives in
the queue directory (SQLite database + heartbeat board) and the artifact
store.  It claims a batch of cells under a TTL lease, stamps its liveness
on the shared :class:`~repro.supervise.HeartbeatBoard`, classifies each
cell via the *same* :func:`~repro.faults.campaign.run_campaign_cell` the
serial sweep uses, and acks the result back inside the queue's
exactly-once ``done`` transition.  A worker that dies mid-cell simply
stops beating; its leases expire and the cells are reclaimed.

Two queue-level chaos faults are injected here so the harness can attack
the queue itself (:class:`~repro.faults.QueueFaultKind`):

``worker-kill``
    ``kill_after_cells=K`` makes the worker SIGKILL *itself* after
    acking K cells — a crash the worker cannot clean up after, which is
    exactly the point.

``lease-clock-skew``
    ``clock_skew_s`` offsets the clock this worker stamps leases and
    backoff gates with.  A fast clock writes already-expired leases
    (instant reclaim races), a slow one writes far-future leases (the
    heartbeat-staleness path must catch the death instead).

Graceful drain: SIGINT/SIGTERM sets a flag checked between cells — the
in-flight cell finishes and is acked, the rest of the claimed batch is
*released* (back to pending, no attempt charged), and the worker exits
130 with a resume hint.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..faults.campaign import CampaignConfig, run_campaign_cell
from ..faults.injector import FaultKind, FaultSpec
from ..supervise.heartbeat import start_beat_thread
from ..supervise.policy import RetryPolicy
from .store import Job, WorkQueue


def cell_fingerprint(config_payload: dict, key: object) -> str:
    """Artifact-store fingerprint of one campaign cell.

    Derived from the campaign *configuration* and the cell key only (not
    the campaign id), so two campaigns sweeping the same grid share
    cached cells — the cross-user dedup the shared store exists for.
    """
    import hashlib

    from ..experiments.parallel import CACHE_SCHEMA, code_version

    body = json.dumps(
        {
            "schema": CACHE_SCHEMA,
            "code": code_version(),
            "kind": "campaign-cell",
            "config": config_payload,
            "cell": key,
        },
        sort_keys=True,
    )
    return hashlib.sha256(body.encode()).hexdigest()


@dataclass(frozen=True)
class WorkerConfig:
    """Everything one queue worker needs besides the queue directory."""

    queue_root: Union[str, Path]
    worker_id: str = ""
    #: Cells leased per claim.
    batch: int = 2
    #: Lease TTL; the keeper thread refreshes held leases at ttl/3.
    lease_ttl_s: float = 15.0
    #: Heartbeat refresh cadence on the shared board.
    heartbeat_interval_s: float = 0.2
    #: A sibling worker's beat older than this marks it dead on reclaim.
    heartbeat_timeout_s: float = 5.0
    #: Sleep between empty claim attempts.
    poll_interval_s: float = 0.05
    #: Exit 0 once the whole queue has no pending or leased work.  With
    #: False the worker keeps polling for future campaigns (service mode).
    exit_when_idle: bool = True
    #: Also reclaim dead siblings' leases while polling, so a bare pack of
    #: workers finishes a campaign with no coordinator process at all.
    self_reclaim: bool = True
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: worker-kill fault: SIGKILL self after acking this many cells.
    kill_after_cells: Optional[int] = None
    #: lease-clock-skew fault: offset applied to this worker's queue clock.
    clock_skew_s: float = 0.0


class QueueWorker:
    """One worker process' claim/run/ack loop (also usable in-process)."""

    def __init__(self, config: WorkerConfig, cache=None) -> None:
        self.config = config
        self.worker_id = config.worker_id or f"worker-{os.getpid()}"
        skew = config.clock_skew_s
        clock = (lambda: time.time() + skew) if skew else time.time
        self.queue = WorkQueue(config.queue_root, retry=config.retry, clock=clock)
        self.board = self.queue.board()
        #: Optional ArtifactCache; hits skip the cell and ack the cached
        #: payload (computed-by-any-worker, visible-to-all).
        self.cache = cache
        self.cells_done = 0
        self.cache_hits = 0
        self.draining = False
        self._held: List[int] = []
        self._held_lock = threading.Lock()
        self._stop = threading.Event()
        self._config_cache: Dict[str, dict] = {}

    # ------------------------------------------------------------- plumbing

    def request_drain(self, *_args) -> None:
        """Signal-handler body: finish the current cell, then wind down."""
        self.draining = True

    def install_signal_handlers(self) -> None:
        try:
            signal.signal(signal.SIGINT, self.request_drain)
            signal.signal(signal.SIGTERM, self.request_drain)
        except ValueError:
            pass  # not the main thread (in-process worker in a test)

    def _keep_leases(self) -> None:
        """Daemon-thread body refreshing held leases at ttl/3, so a cell
        slower than the TTL is not reclaimed out from under a live worker."""
        while not self._stop.wait(self.config.lease_ttl_s / 3.0):
            with self._held_lock:
                held = list(self._held)
            if held:
                self.queue.extend(self.worker_id, held, self.config.lease_ttl_s)

    def _campaign_config(self, campaign_id: str) -> dict:
        if campaign_id not in self._config_cache:
            self._config_cache[campaign_id] = self.queue.campaign_config(campaign_id)
        return self._config_cache[campaign_id]

    # ------------------------------------------------------------- one cell

    def run_job(self, job: Job) -> dict:
        """Run one queued cell; returns its result payload.

        Fault-campaign cells classify through
        :func:`~repro.faults.campaign.run_campaign_cell`; timing-campaign
        cells (``campaign_kind: "timing"``) simulate through the same
        :func:`~repro.experiments.parallel.run_cells` path the serial
        sweep uses (a one-cell batch here — the claim loop routes
        multi-cell claims through :meth:`_run_timing_batch` instead, so
        lockstep batching happens per claimed lease).
        """
        config_payload = self._campaign_config(job.campaign)
        fingerprint = None
        if self.cache is not None:
            fingerprint = cell_fingerprint(config_payload, job.key)
            cached = self.cache.get_result(fingerprint)
            if cached is not None:
                self.cache_hits += 1
                return cached
        if config_payload.get("campaign_kind") == "timing":
            encoded = self._timing_payloads(config_payload, [job])[0]
        else:
            config = CampaignConfig.from_payload(config_payload)
            payload = job.payload
            spec = FaultSpec(
                kind=FaultKind(payload["kind"]),
                location=payload["location"],
                seed=payload["seed"],
            )
            result = run_campaign_cell(
                config, payload["workload"], payload["mechanism"], spec
            )
            encoded = result.to_payload()
        if self.cache is not None and fingerprint is not None:
            self.cache.put_result(fingerprint, encoded)
        return encoded

    # ------------------------------------------------------- timing batches

    def _timing_payloads(self, config_payload: dict, jobs: List[Job]) -> List[dict]:
        """Simulate claimed timing cells (lockstep-batched when the
        campaign's settings select the specialized kernel)."""
        from ..experiments.common import _result_to_payload, settings_from_payload
        from ..experiments.parallel import CellSpec, run_cells

        settings = settings_from_payload(config_payload["settings"])
        cells = [
            CellSpec(
                job.payload["workload"],
                job.payload["mechanism"],
                key=job.payload.get("key"),
            )
            for job in jobs
        ]
        results = run_cells(settings, cells, jobs=1)
        return [_result_to_payload(results[cell.cache_key]) for cell in cells]

    def _run_timing_batch(self, jobs: List[Job], config_payload: dict) -> None:
        """Run one claimed lease of timing cells as a single lockstep
        batch, acking each cell individually (cache hits skip the batch)."""
        pending: List[Job] = []
        fingerprints: Dict[int, str] = {}
        for job in jobs:
            if self.cache is not None:
                fingerprint = cell_fingerprint(config_payload, job.key)
                cached = self.cache.get_result(fingerprint)
                if cached is not None:
                    self.cache_hits += 1
                    self._finish_job(job, cached)
                    continue
                fingerprints[job.id] = fingerprint
            pending.append(job)
        if not pending:
            return
        try:
            payloads = self._timing_payloads(config_payload, pending)
        except Exception as exc:
            for job in pending:
                with self._held_lock:
                    if job.id in self._held:
                        self._held.remove(job.id)
                self.queue.fail(
                    self.worker_id,
                    job.id,
                    f"worker-side error: {type(exc).__name__}: {exc}",
                )
            return
        for job, payload in zip(pending, payloads):
            if self.cache is not None and job.id in fingerprints:
                self.cache.put_result(fingerprints[job.id], payload)
            self._finish_job(job, payload)

    def _finish_job(self, job: Job, payload: dict) -> None:
        """Ack one completed cell (shared by serial and batched paths)."""
        with self._held_lock:
            if job.id in self._held:
                self._held.remove(job.id)
        self.queue.ack(self.worker_id, job.id, payload)
        self.cells_done += 1
        self._maybe_die()

    def _maybe_die(self) -> None:
        kill_after = self.config.kill_after_cells
        if kill_after is not None and self.cells_done >= kill_after:
            # worker-kill fault: no cleanup, no flush — the queue must
            # recover from exactly this.
            os.kill(os.getpid(), signal.SIGKILL)

    # ----------------------------------------------------------------- loop

    def run(self) -> int:
        """Claim/run/ack until the queue is idle (or a drain request).

        Returns the process exit code: 0 on normal completion, 130 after
        a graceful drain.
        """
        config = self.config
        beat_stop = start_beat_thread(
            self.board, self.worker_id, config.heartbeat_interval_s
        )
        keeper = threading.Thread(
            target=self._keep_leases, name="lease-keeper", daemon=True
        )
        keeper.start()
        try:
            while not self.draining:
                jobs = self.queue.claim(
                    self.worker_id, batch=config.batch, ttl_s=config.lease_ttl_s
                )
                if not jobs:
                    if config.self_reclaim:
                        self.queue.reclaim(
                            self.board,
                            heartbeat_timeout_s=config.heartbeat_timeout_s,
                        )
                        if self.queue.counts().pending:
                            continue  # reclaimed something: try again now
                    if config.exit_when_idle and self.queue.idle():
                        break
                    time.sleep(config.poll_interval_s)
                    continue
                with self._held_lock:
                    self._held = [job.id for job in jobs]
                config_payload = self._campaign_config(jobs[0].campaign)
                if config_payload.get("campaign_kind") == "timing" and len(jobs) > 1:
                    # A claimed lease of timing cells runs as one lockstep
                    # batch (the whole lease is the in-flight unit: a drain
                    # request takes effect at the next claim).
                    self._run_timing_batch(jobs, config_payload)
                    with self._held_lock:
                        self._held = []
                    continue
                for index, job in enumerate(jobs):
                    if self.draining:
                        released = self.queue.release(
                            self.worker_id, [j.id for j in jobs[index:]]
                        )
                        if released:
                            print(
                                f"[{self.worker_id}] drain: released "
                                f"{released} unstarted cell(s)",
                                flush=True,
                            )
                        break
                    try:
                        payload = self.run_job(job)
                    except Exception as exc:
                        # run_campaign_cell never raises; anything here is
                        # queue-side bookkeeping (bad payload, dead cache).
                        self.queue.fail(
                            self.worker_id,
                            job.id,
                            f"worker-side error: {type(exc).__name__}: {exc}",
                        )
                        continue
                    finally:
                        with self._held_lock:
                            if job.id in self._held:
                                self._held.remove(job.id)
                    self.queue.ack(self.worker_id, job.id, payload)
                    self.cells_done += 1
                    self._maybe_die()
                with self._held_lock:
                    self._held = []
        finally:
            beat_stop.set()
            self._stop.set()
            self.board.finish_task(self.worker_id)
        if self.draining:
            print(
                f"[{self.worker_id}] drained after {self.cells_done} cell(s); "
                "completed cells are durable in the queue — restart workers "
                "(or `python -m repro serve` on the same --queue dir) to resume",
                flush=True,
            )
            return 130
        return 0


def worker_main(config: WorkerConfig, cache=None) -> int:
    """Process entry point: signal handlers + the worker loop."""
    worker = QueueWorker(config, cache=cache)
    worker.install_signal_handlers()
    code = worker.run()
    summary = (
        f"[{worker.worker_id}] done: {worker.cells_done} cell(s), "
        f"{worker.queue.events.duplicates} duplicate(s) discarded"
    )
    if cache is not None:
        summary += f", {worker.cache_hits} cache hit(s)"
    print(summary, flush=True)
    return code

"""The durable, crash-tolerant work queue backing distributed campaigns.

A :class:`WorkQueue` is a SQLite database under one queue directory.
Jobs move through a small state machine::

    pending --claim--> leased --ack--> done
       ^                 |
       |                 +--fail/lease-expiry--> pending (attempt charged,
       |                 |                       seeded backoff not_before)
       +--release--------+
                         +--after max attempts--> quarantined

Every transition is one SQLite transaction (``BEGIN IMMEDIATE``), so a
worker SIGKILLed at *any* instruction leaves the queue in a consistent
state: either the transition committed or it never happened.  Claims are
**leases** — a worker owns a job until ``lease_expires`` (stamped with the
worker's clock, which the lease-clock-skew fault deliberately skews) or
until its heartbeat on the shared :class:`~repro.supervise.HeartbeatBoard`
goes stale; :meth:`reclaim` then charges the attempt and requeues the job
with the :class:`~repro.supervise.RetryPolicy`'s deterministic backoff,
escalating to the poison-cell quarantine after ``max_attempts`` failures,
exactly like the in-process supervisor.

**Exactly-once completion** is enforced at the ``done`` transition: the
acking transaction re-reads the job's state and only the first completion
writes the result; a worker that lost its lease mid-cell (reclaimed by a
skewed clock, say) and finishes anyway produces a *duplicate*, which is
counted and discarded, never merged twice.  Cell results are themselves
deterministic, so whichever completion wins, the payload is identical.

**Scheduling** is priority-then-fair-share: a claim serves the highest
priority level that has ready jobs; within that level the campaign with
the least service per unit weight (leased + finished jobs, divided by its
``weight``) goes first, so two concurrently enqueued campaigns of equal
priority drain at proportional rates instead of head-of-line blocking.

Workers only ever touch the queue directory (database + heartbeat board)
and the artifact store — there is no socket and no coordinator process in
the data path — which is what keeps the interfaces multi-host-shaped:
pointing several hosts at one shared directory is the same programming
model as several processes on one host.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..errors import ReproError
from ..supervise.heartbeat import HeartbeatBoard
from ..supervise.policy import RetryPolicy


class QueueError(ReproError):
    """Work-queue misuse or an impossible state transition."""


#: Job states (see the module docstring's state machine).
PENDING = "pending"
LEASED = "leased"
DONE = "done"
QUARANTINED = "quarantined"

JOB_STATES = (PENDING, LEASED, DONE, QUARANTINED)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS campaigns (
    id          TEXT PRIMARY KEY,
    priority    INTEGER NOT NULL DEFAULT 0,
    weight      REAL NOT NULL DEFAULT 1.0,
    config      TEXT NOT NULL,
    created_seq INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS jobs (
    id            INTEGER PRIMARY KEY AUTOINCREMENT,
    campaign      TEXT NOT NULL REFERENCES campaigns(id),
    key           TEXT NOT NULL,
    payload       TEXT NOT NULL,
    state         TEXT NOT NULL DEFAULT 'pending',
    attempts      INTEGER NOT NULL DEFAULT 0,
    not_before    REAL NOT NULL DEFAULT 0,
    lease_owner   TEXT,
    lease_expires REAL,
    result        TEXT,
    failure       TEXT,
    UNIQUE (campaign, key)
);
CREATE INDEX IF NOT EXISTS jobs_by_state ON jobs (state, campaign);
"""


def canonical_key(key: Any) -> str:
    """Stable string form of a JSON-able job key (matches the checkpoint
    store's canonicalisation, so queue keys and checkpoint keys align)."""
    return json.dumps(key, sort_keys=True)


@dataclass(frozen=True)
class Job:
    """One claimed unit of work, as handed to a worker."""

    id: int
    campaign: str
    key: Any
    payload: dict
    attempts: int
    lease_expires: float


@dataclass(frozen=True)
class ReclaimEvent:
    """One lease-expiry decision taken by :meth:`WorkQueue.reclaim`."""

    job_id: int
    campaign: str
    key: Any
    owner: str
    outcome: str  # "requeued" | "quarantined"
    reason: str


@dataclass
class QueueCounts:
    """Per-state job counts (optionally restricted to one campaign)."""

    pending: int = 0
    leased: int = 0
    done: int = 0
    quarantined: int = 0

    @property
    def depth(self) -> int:
        """Unfinished work: pending + leased."""
        return self.pending + self.leased

    @property
    def total(self) -> int:
        return self.pending + self.leased + self.done + self.quarantined

    def format(self) -> str:
        return (
            f"pending: {self.pending}  leased: {self.leased}  "
            f"done: {self.done}  quarantined: {self.quarantined}"
        )


@dataclass
class QueueEventLog:
    """In-process accounting of everything this handle did to the queue.

    These mirror the obs counters (``queue.*``) so tests and reports can
    assert on requeue/duplicate behaviour without an obs registry.
    """

    enqueued: int = 0
    claimed: int = 0
    completed: int = 0
    duplicates: int = 0
    late_acks: int = 0
    requeued: int = 0
    lease_expired: int = 0
    quarantined: int = 0
    released: int = 0
    failures: int = 0


class WorkQueue:
    """SQLite-backed durable job queue with lease-based claims.

    ``clock`` is the *stamping* clock used for leases and backoff gates;
    the lease-clock-skew fault kind injects a skewed one to attack lease
    bookkeeping (the exactly-once guarantees must hold regardless).
    ``metrics`` is an optional :class:`~repro.obs.MetricsRegistry`
    receiving ``queue.*`` counters and the ``queue.depth`` gauge.
    """

    def __init__(
        self,
        root: Union[str, Path],
        retry: RetryPolicy = RetryPolicy(),
        clock: Callable[[], float] = time.time,
        metrics=None,
        busy_timeout_s: float = 30.0,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.path = self.root / "queue.sqlite"
        self.retry = retry
        self.clock = clock
        self.metrics = metrics
        self.events = QueueEventLog()
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(
            self.path, timeout=busy_timeout_s, check_same_thread=False
        )
        self._conn.isolation_level = None  # explicit BEGIN IMMEDIATE below
        self._conn.execute(f"PRAGMA busy_timeout = {int(busy_timeout_s * 1000)}")
        # executescript manages its own transaction (it commits any open
        # one first), so the schema is applied outside _txn on purpose.
        self._conn.executescript(_SCHEMA)

    # ------------------------------------------------------------- plumbing

    def close(self) -> None:
        self._conn.close()

    def board(self) -> HeartbeatBoard:
        """The queue's shared heartbeat board (``<root>/board``)."""
        return HeartbeatBoard(self.root / "board")

    def _txn(self):
        return _Transaction(self._conn, self._lock)

    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.count(f"queue.{name}", amount)

    def _gauge_depth(self) -> None:
        if self.metrics is not None:
            counts = self.counts()
            self.metrics.set_gauge("queue.depth", counts.depth)

    # ------------------------------------------------------------ campaigns

    def create_campaign(
        self,
        campaign_id: str,
        config: dict,
        priority: int = 0,
        weight: float = 1.0,
    ) -> bool:
        """Register a campaign; returns False if it already exists.

        Re-registering an existing id is the resume path and must carry
        the same config — a changed config under the same id would mix
        incompatible cells, so it raises instead.
        """
        if weight <= 0:
            raise QueueError("campaign weight must be positive")
        encoded = json.dumps(config, sort_keys=True)
        with self._txn():
            row = self._conn.execute(
                "SELECT config FROM campaigns WHERE id = ?", (campaign_id,)
            ).fetchone()
            if row is not None:
                if row[0] != encoded:
                    raise QueueError(
                        f"campaign {campaign_id!r} already exists with a "
                        f"different configuration; pick a new campaign id"
                    )
                return False
            seq = self._conn.execute(
                "SELECT COALESCE(MAX(created_seq), 0) + 1 FROM campaigns"
            ).fetchone()[0]
            self._conn.execute(
                "INSERT INTO campaigns (id, priority, weight, config, created_seq)"
                " VALUES (?, ?, ?, ?, ?)",
                (campaign_id, priority, weight, encoded, seq),
            )
            return True

    def campaign_config(self, campaign_id: str) -> dict:
        with self._txn():
            row = self._conn.execute(
                "SELECT config FROM campaigns WHERE id = ?", (campaign_id,)
            ).fetchone()
        if row is None:
            raise QueueError(f"unknown campaign {campaign_id!r}")
        return json.loads(row[0])

    def campaign_ids(self) -> List[str]:
        with self._txn():
            rows = self._conn.execute(
                "SELECT id FROM campaigns ORDER BY created_seq"
            ).fetchall()
        return [row[0] for row in rows]

    # -------------------------------------------------------------- enqueue

    def enqueue(
        self, campaign_id: str, items: Iterable[Tuple[Any, dict]]
    ) -> int:
        """Add ``(key, payload)`` jobs; keys already present (any state)
        are skipped, so re-enqueueing a campaign is the resume path."""
        added = 0
        with self._txn():
            for key, payload in items:
                cursor = self._conn.execute(
                    "INSERT OR IGNORE INTO jobs (campaign, key, payload)"
                    " VALUES (?, ?, ?)",
                    (campaign_id, canonical_key(key), json.dumps(payload)),
                )
                added += cursor.rowcount
        self.events.enqueued += added
        self._count("enqueued", added)
        self._gauge_depth()
        return added

    # ---------------------------------------------------------------- claim

    def _pick_campaign(self, now: float) -> Optional[str]:
        """Priority-then-fair-share campaign selection (see module doc)."""
        rows = self._conn.execute(
            """
            SELECT c.id, c.priority, c.weight, c.created_seq,
                   (SELECT COUNT(*) FROM jobs j
                     WHERE j.campaign = c.id AND j.state != 'pending') AS served,
                   (SELECT COUNT(*) FROM jobs j
                     WHERE j.campaign = c.id AND j.state = 'pending'
                       AND j.not_before <= ?) AS ready
            FROM campaigns c
            """,
            (now,),
        ).fetchall()
        candidates = [row for row in rows if row[5] > 0]
        if not candidates:
            return None
        top = max(row[1] for row in candidates)
        contenders = [row for row in candidates if row[1] == top]
        # Least service per unit weight first; creation order tiebreak.
        contenders.sort(key=lambda row: (row[4] / row[2], row[3]))
        return contenders[0][0]

    def claim(self, owner: str, batch: int = 1, ttl_s: float = 15.0) -> List[Job]:
        """Lease up to ``batch`` ready jobs of one campaign to ``owner``."""
        if batch < 1:
            raise QueueError("claim batch must be >= 1")
        now = self.clock()
        claimed: List[Job] = []
        with self._txn():
            campaign = self._pick_campaign(now)
            if campaign is None:
                return []
            rows = self._conn.execute(
                "SELECT id, key, payload, attempts FROM jobs"
                " WHERE campaign = ? AND state = 'pending' AND not_before <= ?"
                " ORDER BY id LIMIT ?",
                (campaign, now, batch),
            ).fetchall()
            expires = now + ttl_s
            for job_id, key, payload, attempts in rows:
                self._conn.execute(
                    "UPDATE jobs SET state = 'leased', lease_owner = ?,"
                    " lease_expires = ? WHERE id = ?",
                    (owner, expires, job_id),
                )
                claimed.append(
                    Job(
                        id=job_id,
                        campaign=campaign,
                        key=json.loads(key),
                        payload=json.loads(payload),
                        attempts=attempts,
                        lease_expires=expires,
                    )
                )
        self.events.claimed += len(claimed)
        self._count("claimed", len(claimed))
        return claimed

    def extend(self, owner: str, job_ids: Sequence[int], ttl_s: float) -> int:
        """Refresh ``owner``'s leases; returns how many were still held."""
        if not job_ids:
            return 0
        expires = self.clock() + ttl_s
        refreshed = 0
        with self._txn():
            for job_id in job_ids:
                cursor = self._conn.execute(
                    "UPDATE jobs SET lease_expires = ? WHERE id = ?"
                    " AND state = 'leased' AND lease_owner = ?",
                    (expires, job_id, owner),
                )
                refreshed += cursor.rowcount
        return refreshed

    # ------------------------------------------------------------ completion

    def ack(self, owner: str, job_id: int, result: dict) -> str:
        """Record a completed job.  Returns the transition taken:

        ``"done"``
            First completion — the result is stored.  If ``owner`` had
            already lost the lease (reclaimed, or re-leased elsewhere)
            the completion still wins the race but is counted as a late
            ack.
        ``"duplicate"``
            The job was already done (someone else's ack won); this
            result is discarded, never merged.
        """
        with self._txn():
            row = self._conn.execute(
                "SELECT state, lease_owner FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
            if row is None:
                raise QueueError(f"unknown job id {job_id}")
            state, lease_owner = row
            if state == DONE:
                outcome = "duplicate"
            else:
                self._conn.execute(
                    "UPDATE jobs SET state = 'done', result = ?,"
                    " lease_owner = NULL, lease_expires = NULL, failure = NULL"
                    " WHERE id = ?",
                    (json.dumps(result, sort_keys=True), job_id),
                )
                outcome = "done"
                late = not (state == LEASED and lease_owner == owner)
                if late:
                    self.events.late_acks += 1
                    self._count("late-ack")
        if outcome == "done":
            self.events.completed += 1
            self._count("done")
        else:
            self.events.duplicates += 1
            self._count("duplicate")
        self._gauge_depth()
        return outcome

    def _charge_failure(
        self, job_id: int, key: str, attempts: int, reason: str, now: float
    ) -> str:
        """Shared fail/reclaim bookkeeping; caller holds the transaction."""
        attempts += 1
        if attempts >= self.retry.max_attempts:
            self._conn.execute(
                "UPDATE jobs SET state = 'quarantined', attempts = ?,"
                " failure = ?, lease_owner = NULL, lease_expires = NULL"
                " WHERE id = ?",
                (attempts, reason, job_id),
            )
            return "quarantined"
        delay = self.retry.delay(key, attempts)
        self._conn.execute(
            "UPDATE jobs SET state = 'pending', attempts = ?, failure = ?,"
            " not_before = ?, lease_owner = NULL, lease_expires = NULL"
            " WHERE id = ?",
            (attempts, reason, now + delay, job_id),
        )
        return "requeued"

    def fail(self, owner: str, job_id: int, reason: str) -> str:
        """Charge a failed attempt against a job ``owner`` still leases.

        Returns ``"requeued"``, ``"quarantined"``, or ``"stale"`` when the
        lease was lost in the meantime (someone else owns the job's fate
        now — charging it twice would double-count one failure).
        """
        now = self.clock()
        with self._txn():
            row = self._conn.execute(
                "SELECT state, lease_owner, key, attempts FROM jobs WHERE id = ?",
                (job_id,),
            ).fetchone()
            if row is None:
                raise QueueError(f"unknown job id {job_id}")
            state, lease_owner, key, attempts = row
            if state != LEASED or lease_owner != owner:
                return "stale"
            outcome = self._charge_failure(job_id, key, attempts, reason, now)
        self.events.failures += 1
        self._count("failed")
        if outcome == "quarantined":
            self.events.quarantined += 1
            self._count("quarantined")
        else:
            self.events.requeued += 1
            self._count("requeued")
        self._gauge_depth()
        return outcome

    def release(self, owner: str, job_ids: Sequence[int]) -> int:
        """Return leased jobs to pending *uncharged* (graceful drain)."""
        released = 0
        with self._txn():
            for job_id in job_ids:
                cursor = self._conn.execute(
                    "UPDATE jobs SET state = 'pending', lease_owner = NULL,"
                    " lease_expires = NULL WHERE id = ?"
                    " AND state = 'leased' AND lease_owner = ?",
                    (job_id, owner),
                )
                released += cursor.rowcount
        self.events.released += released
        self._count("released", released)
        self._gauge_depth()
        return released

    # -------------------------------------------------------------- reclaim

    def reclaim(
        self,
        board: Optional[HeartbeatBoard] = None,
        heartbeat_timeout_s: Optional[float] = None,
    ) -> List[ReclaimEvent]:
        """Requeue (or quarantine) every job whose lease is dead.

        A lease is dead when its TTL expired, or — with a ``board`` — when
        the owning worker's heartbeat is older than
        ``heartbeat_timeout_s`` (a SIGKILLed worker is detected at
        heartbeat granularity instead of waiting out the TTL).  Each
        reclaim charges one attempt, exactly as a supervisor-detected
        crash does.
        """
        now = self.clock()
        events: List[ReclaimEvent] = []
        with self._txn():
            rows = self._conn.execute(
                "SELECT id, campaign, key, attempts, lease_owner, lease_expires"
                " FROM jobs WHERE state = 'leased'"
            ).fetchall()
            for job_id, campaign, key, attempts, owner, expires in rows:
                if expires is not None and expires < now:
                    reason = (
                        f"lease expired {now - expires:.1f}s ago"
                        f" (owner {owner})"
                    )
                elif board is not None and heartbeat_timeout_s is not None:
                    beat = board.last_beat(owner)
                    if beat is None or now - beat <= heartbeat_timeout_s:
                        continue
                    reason = (
                        f"worker {owner} heartbeat stale for {now - beat:.1f}s"
                        f" (presumed dead)"
                    )
                else:
                    continue
                outcome = self._charge_failure(job_id, key, attempts, reason, now)
                events.append(
                    ReclaimEvent(
                        job_id=job_id,
                        campaign=campaign,
                        key=json.loads(key),
                        owner=owner,
                        outcome=outcome,
                        reason=reason,
                    )
                )
        for event in events:
            self.events.lease_expired += 1
            self._count("lease-expired")
            if event.outcome == "quarantined":
                self.events.quarantined += 1
                self._count("quarantined")
            else:
                self.events.requeued += 1
                self._count("requeued")
        if events:
            self._gauge_depth()
        return events

    # ------------------------------------------------------------- queries

    def counts(self, campaign_id: Optional[str] = None) -> QueueCounts:
        query = "SELECT state, COUNT(*) FROM jobs"
        params: Tuple = ()
        if campaign_id is not None:
            query += " WHERE campaign = ?"
            params = (campaign_id,)
        query += " GROUP BY state"
        with self._txn():
            rows = self._conn.execute(query, params).fetchall()
        counts = QueueCounts()
        for state, count in rows:
            setattr(counts, state, count)
        return counts

    def is_complete(self, campaign_id: str) -> bool:
        """True when no job of the campaign is pending or leased."""
        return self.counts(campaign_id).depth == 0

    def idle(self) -> bool:
        """True when *no* campaign has pending or leased jobs."""
        return self.counts().depth == 0

    def results(self, campaign_id: str) -> Dict[str, dict]:
        """``canonical key -> result payload`` for every done job."""
        with self._txn():
            rows = self._conn.execute(
                "SELECT key, result FROM jobs"
                " WHERE campaign = ? AND state = 'done'",
                (campaign_id,),
            ).fetchall()
        return {key: json.loads(result) for key, result in rows}

    def quarantined(self, campaign_id: str) -> Dict[str, str]:
        """``canonical key -> failure reason`` for every poisoned job."""
        with self._txn():
            rows = self._conn.execute(
                "SELECT key, failure FROM jobs"
                " WHERE campaign = ? AND state = 'quarantined'",
                (campaign_id,),
            ).fetchall()
        return {key: failure or "quarantined" for key, failure in rows}

    def job_states(self, campaign_id: str) -> Dict[str, Tuple[str, int]]:
        """``canonical key -> (state, attempts)`` — the audit view."""
        with self._txn():
            rows = self._conn.execute(
                "SELECT key, state, attempts FROM jobs WHERE campaign = ?",
                (campaign_id,),
            ).fetchall()
        return {key: (state, attempts) for key, state, attempts in rows}


@dataclass
class _Transaction:
    """``BEGIN IMMEDIATE`` transaction scope, serialized per handle."""

    conn: sqlite3.Connection
    lock: threading.Lock
    _entered: bool = field(default=False, init=False)

    def __enter__(self) -> "_Transaction":
        self.lock.acquire()
        try:
            self.conn.execute("BEGIN IMMEDIATE")
            self._entered = True
        except BaseException:
            self.lock.release()
            raise
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        try:
            if exc_type is None:
                self.conn.execute("COMMIT")
            else:
                self.conn.execute("ROLLBACK")
        finally:
            self.lock.release()

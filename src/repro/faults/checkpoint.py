"""Crash-atomic JSONL checkpointing for long sweeps.

A :class:`CheckpointStore` persists one JSON record per completed cell of
a sweep (campaign runs, ``ExperimentSuite`` simulation results) so an
interrupted sweep resumes where it stopped instead of recomputing minutes
of pure-Python simulation.

File format — first line is a header carrying the sweep's configuration
fingerprint, each following line one completed cell::

    {"meta": {...}}
    {"k": <json key>, "v": <json value>}
    {"k": <json key>, "v": <json value>}

Every :meth:`put` commits the *whole* store to a temp file and atomically
``os.replace``\\ s it over the previous one, so a crash anywhere inside a
write leaves the complete previous generation readable — never a torn
file.  The rewrite is O(cells) per put, which is fine at checkpoint
granularity (hundreds of multi-second cells; the serialization cost is
noise next to one simulation).  :meth:`_load` additionally tolerates
torn/garbage tails, so files appended by pre-atomic versions of this
class still load.  A header mismatch (different instructions/seed/scale,
different campaign shape) invalidates the file: resuming with stale
results would silently mix incompatible measurements, which is worse
than recomputing.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from ..errors import CheckpointError


def _canonical(key: Any) -> str:
    """Stable string form of a JSON-able key (lists/tuples normalise)."""
    return json.dumps(key, sort_keys=True)


class CheckpointStore:
    """Durable ``key -> JSON value`` map backed by an append-only file."""

    def __init__(
        self,
        path: Union[str, Path],
        meta: Optional[Dict[str, Any]] = None,
        on_mismatch: str = "restart",
    ) -> None:
        """Open (or create) the checkpoint at ``path``.

        ``meta`` is the run-configuration fingerprint.  If the file exists
        with a different fingerprint: ``on_mismatch='restart'`` discards it
        and starts fresh; ``'error'`` raises :class:`CheckpointError`.
        """
        if on_mismatch not in ("restart", "error"):
            raise CheckpointError(f"unknown on_mismatch policy {on_mismatch!r}")
        self.path = Path(path)
        self.meta = dict(meta or {})
        self._cells: Dict[str, Tuple[Any, Any]] = {}
        self._resumed = 0
        if self.path.exists():
            self._load(on_mismatch)
        else:
            self._write_header()

    # -------------------------------------------------------------- loading

    def _load(self, on_mismatch: str) -> None:
        text = self.path.read_text()
        if text and not text.endswith("\n"):
            # Torn tail from an interrupted write: terminate it so the next
            # append starts on a fresh line instead of gluing onto garbage.
            with open(self.path, "a") as fh:
                fh.write("\n")
        lines = text.splitlines()
        header: Optional[Dict[str, Any]] = None
        cells: Dict[str, Tuple[Any, Any]] = {}
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail write from an interrupted run
            if "meta" in obj and header is None:
                header = obj["meta"]
            elif "k" in obj:
                cells[_canonical(obj["k"])] = (obj["k"], obj.get("v"))
        if header != self.meta:
            if on_mismatch == "error":
                raise CheckpointError(
                    f"{self.path}: checkpoint belongs to a different run "
                    f"configuration (have {header!r}, want {self.meta!r})"
                )
            self._write_header()  # restart: truncate and stamp fresh header
            return
        self._cells = cells
        self._resumed = len(cells)

    def _write_header(self) -> None:
        self._cells = {}
        self._resumed = 0
        self._commit()

    def _commit(self) -> None:
        """Atomically replace the file with the current in-memory state.

        The temp file is written, flushed and fsynced in full before the
        ``os.replace``, so readers (including a crashed-and-restarted
        process) only ever observe a complete previous or complete new
        generation.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(f".{self.path.name}.{os.getpid()}.tmp")
        try:
            with open(tmp, "w") as fh:
                fh.write(json.dumps({"meta": self.meta}) + "\n")
                for key, value in self._cells.values():
                    fh.write(json.dumps({"k": key, "v": value}) + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
        finally:
            if tmp.exists():
                try:
                    tmp.unlink()
                except OSError:
                    pass

    # ------------------------------------------------------------ map  API

    def __contains__(self, key: Any) -> bool:
        return _canonical(key) in self._cells

    def __len__(self) -> int:
        return len(self._cells)

    def get(self, key: Any, default: Any = None) -> Any:
        cell = self._cells.get(_canonical(key))
        return default if cell is None else cell[1]

    def put(self, key: Any, value: Any) -> None:
        """Record one completed cell, durably and crash-atomically.

        If the commit fails partway (disk full, kill -9 mid-write), the
        on-disk file still holds the complete previous generation, and
        the in-memory map is rolled back to match it.
        """
        canon = _canonical(key)
        previous = self._cells.get(canon)
        self._cells[canon] = (key, value)
        try:
            self._commit()
        except BaseException:
            if previous is None:
                self._cells.pop(canon, None)
            else:
                self._cells[canon] = previous
            raise

    def items(self) -> Iterator[Tuple[Any, Any]]:
        for key, value in self._cells.values():
            yield key, value

    def keys(self) -> List[Any]:
        return [key for key, _ in self._cells.values()]

    @property
    def resumed_cells(self) -> int:
        """Cells loaded from disk at open time (0 for a fresh sweep)."""
        return self._resumed

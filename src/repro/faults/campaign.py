"""Resilient fault-injection campaigns: sweep, classify, checkpoint.

A :class:`Campaign` sweeps fault kind × location × workload × mechanism.
Each cell builds a fresh :class:`~repro.faults.injector.FaultHarness`,
injects one fault and probes the process, then classifies the run into the
structured outcome taxonomy:

========== ==========================================================
detected    the mechanism raised/logged a violation (AOS exception,
            escalation kill, or a glibc allocator integrity check)
silent      the probe completed with no detection — the report notes
            whether memory integrity checks confirmed real corruption
crashed     a host-level error survived ``max_retries`` fresh-seed
            retries (simulator bug, not a simulated detection)
timed-out   the run exceeded its per-cell wall-clock deadline
========== ==========================================================

Deadlines are cooperative: the probe checks a :class:`Deadline` between
simulated operations, so a wedged cell surfaces as ``timed-out`` instead
of stalling the sweep.  Host-level errors are retried with a fresh seed
(transient state-space corners often clear), and completed cells stream to
a :class:`~repro.faults.checkpoint.CheckpointStore` so an interrupted
campaign resumes without re-running them.

``Campaign.run(jobs=N)`` shards pending cells across worker processes:
each worker classifies one cell via the same :func:`run_campaign_cell`
the serial path uses (keeping its per-cell deadline and fresh-seed retry
machinery), the parent streams finished cells to the checkpoint as they
land, and the final report lists cells in deterministic sweep order.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field, replace
from enum import Enum
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..core.exceptions import AOSException
from ..errors import AllocatorError, ExperimentTimeout, FaultInjectionError
from ..os.handler import HandlerPolicy, ProcessTerminated
from ..stats.coverage import DetectionCoverage
from .checkpoint import CheckpointStore
from .injector import (
    ALL_KINDS,
    POINTER_CORRUPTION_KINDS,
    FaultHarness,
    FaultInjector,
    FaultKind,
    FaultSpec,
)


class Deadline:
    """Cooperative wall-clock budget for one campaign cell."""

    def __init__(self, seconds: Optional[float]) -> None:
        self.seconds = seconds
        self._start = time.monotonic()

    @property
    def elapsed(self) -> float:
        return time.monotonic() - self._start

    def expired(self) -> bool:
        return self.seconds is not None and self.elapsed >= self.seconds

    def check(self) -> None:
        if self.expired():
            raise ExperimentTimeout(
                f"run exceeded its {self.seconds:.3g}s wall-clock budget"
            )


class RunOutcome(Enum):
    """The structured outcome taxonomy (see module docstring)."""

    DETECTED = "detected"
    SILENT = "silent"
    CRASHED = "crashed"
    TIMED_OUT = "timed-out"
    #: The mechanism reported nothing, but the ``--paranoid`` invariant
    #: oracle found corrupted simulator state: silent corruption promoted
    #: to a first-class outcome instead of a clean-looking cell.
    INVARIANT = "invariant-violation"


@dataclass
class RunResult:
    """One classified campaign cell."""

    workload: str
    mechanism: str
    kind: str
    location: int
    seed: int
    outcome: RunOutcome
    detections: int = 0
    expect_detection: bool = True
    detail: str = ""
    elapsed: float = 0.0
    retries: int = 0
    integrity_failures: int = 0
    invariant_violations: int = 0

    def to_payload(self) -> dict:
        data = self.__dict__.copy()
        data["outcome"] = self.outcome.value
        return data

    def stable_payload(self) -> dict:
        """The payload minus wall-clock fields: two runs of the same cell
        must agree byte-for-byte on this (the determinism tests and
        ``tools/bench_trend.py`` compare supervised vs serial runs)."""
        data = self.to_payload()
        data.pop("elapsed", None)
        return data

    @classmethod
    def from_payload(cls, payload: dict) -> "RunResult":
        data = dict(payload)
        data["outcome"] = RunOutcome(data["outcome"])
        return cls(**data)


@dataclass(frozen=True)
class CampaignConfig:
    """Shape and resilience knobs of one campaign."""

    workloads: Sequence[str] = ("gcc", "omnetpp", "povray")
    mechanisms: Sequence[str] = ("aos",)
    kinds: Sequence[FaultKind] = tuple(ALL_KINDS)
    #: Fault locations swept per kind (victim object/slot index).
    locations: int = 2
    seed: int = 7
    #: Live objects populated before injection.
    objects: int = 24
    #: Allocate/free churn pairs the probe runs after injection.
    churn: int = 4
    #: Per-cell wall-clock budget (None = unbounded).
    timeout_s: Optional[float] = 30.0
    #: Fresh-seed retries before a host-level error is declared CRASHED.
    max_retries: int = 2
    #: Escalation threshold forwarded to the AOS exception handler.
    max_violations: Optional[int] = 100
    #: Audit every cell's simulator state through the invariant oracle;
    #: silent cells with violated invariants become INVARIANT outcomes.
    paranoid: bool = False
    #: Run the (costlier) shadow-memory cross-check on ~1/N cells,
    #: sampled deterministically (1 = every cell).
    paranoid_shadow_sample: int = 1
    #: Hang-injection seam for supervision tests/CI: cells matching any
    #: ``"workload:mechanism:kind:location"`` pattern (``*`` wildcards
    #: per field) sleep ``hang_s`` before running, simulating a wedged
    #: worker the supervisor must detect and quarantine.
    hang_cells: Sequence[str] = ()
    hang_s: float = 30.0

    def matches_hang(self, workload: str, mechanism: str, spec: FaultSpec) -> bool:
        cell = (workload, mechanism, spec.kind.value, str(spec.location))
        for pattern in self.hang_cells:
            parts = pattern.split(":")
            if len(parts) != 4:
                raise FaultInjectionError(
                    f"hang pattern {pattern!r} is not workload:mechanism:kind:location"
                )
            if all(p == "*" or p == c for p, c in zip(parts, cell)):
                return True
        return False

    def to_payload(self) -> dict:
        """JSON-able form, for the distributed work queue's campaign row."""
        return {
            "workloads": list(self.workloads),
            "mechanisms": list(self.mechanisms),
            "kinds": [kind.value for kind in self.kinds],
            "locations": self.locations,
            "seed": self.seed,
            "objects": self.objects,
            "churn": self.churn,
            "timeout_s": self.timeout_s,
            "max_retries": self.max_retries,
            "max_violations": self.max_violations,
            "paranoid": self.paranoid,
            "paranoid_shadow_sample": self.paranoid_shadow_sample,
            "hang_cells": list(self.hang_cells),
            "hang_s": self.hang_s,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "CampaignConfig":
        data = dict(payload)
        data["workloads"] = tuple(data["workloads"])
        data["mechanisms"] = tuple(data["mechanisms"])
        data["kinds"] = tuple(FaultKind(kind) for kind in data["kinds"])
        data["hang_cells"] = tuple(data.get("hang_cells", ()))
        return cls(**data)

    @classmethod
    def quick(cls, **overrides) -> "CampaignConfig":
        """The ``faultinject --quick`` shape: small but covers every kind."""
        defaults = dict(
            workloads=("gcc", "povray"),
            mechanisms=("aos",),
            locations=1,
            objects=12,
            churn=2,
            timeout_s=20.0,
        )
        defaults.update(overrides)
        return cls(**defaults)


@dataclass
class CampaignResult:
    """All classified cells plus the coverage roll-up."""

    results: List[RunResult] = field(default_factory=list)
    resumed: int = 0
    #: Cells the supervisor gave up on (each: workload/mechanism/kind/
    #: location/reason).  They have *no* RunResult and never reach the
    #: checkpointed result set or any cache.
    quarantined: List[dict] = field(default_factory=list)
    #: Quarantined cells skipped at resume time (subset of ``quarantined``).
    skipped_quarantined: int = 0
    #: The SupervisionReport of a supervised run, None for plain runs.
    supervision: Optional[object] = None

    def __len__(self) -> int:
        return len(self.results)

    def outcomes(self) -> dict:
        counts = {outcome: 0 for outcome in RunOutcome}
        for result in self.results:
            counts[result.outcome] += 1
        return counts

    def coverage(self) -> DetectionCoverage:
        coverage = DetectionCoverage(outcomes=[o.value for o in RunOutcome])
        for result in self.results:
            coverage.add(result.kind, result.outcome.value)
        return coverage

    def detection_rate(self, kinds: Optional[Sequence[FaultKind]] = None) -> float:
        """Detected fraction over ``kinds`` (default: every cell)."""
        names = None if kinds is None else {k.value for k in kinds}
        hits = total = 0
        for result in self.results:
            if names is not None and result.kind not in names:
                continue
            total += 1
            hits += result.outcome is RunOutcome.DETECTED
        return hits / total if total else 0.0

    @property
    def pointer_corruption_rate(self) -> float:
        """Detection rate over the §VII acceptance bucket: spatial/temporal
        pointer-corruption faults."""
        return self.detection_rate(POINTER_CORRUPTION_KINDS)

    @property
    def host_survived(self) -> bool:
        """True when every injected fault landed in the taxonomy (always,
        by construction — kept as an explicit, assertable claim)."""
        return all(isinstance(r.outcome, RunOutcome) for r in self.results)

    def format_report(self) -> str:
        coverage = self.coverage()
        counts = self.outcomes()
        lines = [
            "Fault-injection campaign — detection coverage (cf. §VII table)",
            "",
            coverage.format_table(),
            "",
            f"cells: {len(self.results)}  "
            + "  ".join(f"{o.value}: {n}" for o, n in counts.items()),
            f"resumed from checkpoint: {self.resumed}",
            f"retries spent on host errors: {sum(r.retries for r in self.results)}",
            (
                "spatial/temporal pointer-corruption detection: "
                f"{100.0 * self.pointer_corruption_rate:.1f}% "
                f"(kinds: {', '.join(k.value for k in POINTER_CORRUPTION_KINDS)})"
            ),
        ]
        silent_corrupted = [
            r for r in self.results
            if r.outcome is RunOutcome.SILENT and r.integrity_failures
        ]
        if silent_corrupted:
            lines.append(
                f"confirmed silent data corruption: {len(silent_corrupted)} cells"
            )
        invariant = [r for r in self.results if r.outcome is RunOutcome.INVARIANT]
        if invariant:
            lines.append(
                f"paranoid oracle promotions (silent -> invariant-violation): "
                f"{len(invariant)} cells"
            )
        if self.quarantined:
            lines.append(
                f"quarantined cells: {len(self.quarantined)} "
                f"({self.skipped_quarantined} skipped at resume)"
            )
            for cell in self.quarantined:
                lines.append(
                    f"  - {cell['workload']}/{cell['mechanism']}/"
                    f"{cell['kind']}@{cell['location']}: {cell['reason']}"
                )
        if self.supervision is not None:
            lines.append("")
            lines.append(self.supervision.format())
        return "\n".join(lines)


def run_campaign_cell(
    config: CampaignConfig,
    workload: str,
    mechanism: str,
    spec: FaultSpec,
    injector: Optional[FaultInjector] = None,
) -> RunResult:
    """Inject one fault, probe, classify — with timeout and retry.

    A module-level pure function of picklable arguments, so a
    ``Campaign.run(jobs=N)`` worker process classifies a cell exactly the
    way the serial sweep does.  ``injector`` defaults to a fresh
    :class:`FaultInjector`; the serial path passes the campaign's own so
    tests can substitute instrumented doubles.
    """
    injector = injector or FaultInjector()
    seed = spec.seed
    retries = 0
    while True:
        if config.matches_hang(workload, mechanism, spec):
            # Injected hang: simulate a wedged worker.  Under supervision
            # the parent's deadline fires and the worker is terminated
            # mid-sleep; unsupervised serial runs simply stall here.
            time.sleep(config.hang_s)
        deadline = Deadline(config.timeout_s)
        base = RunResult(
            workload=workload,
            mechanism=mechanism,
            kind=spec.kind.value,
            location=spec.location,
            seed=seed,
            outcome=RunOutcome.SILENT,
            retries=retries,
        )
        try:
            # Context-managed so ANY exit — detection, timeout, host error,
            # retry — disarms the injection seams before the next attempt
            # (or anything else) touches these components again.
            with FaultHarness(
                workload=workload,
                mechanism=mechanism,
                seed=seed,
                objects=config.objects,
                policy=HandlerPolicy.REPORT_AND_RESUME,
                max_violations=config.max_violations,
            ) as harness:
                harness.populate()
                record = injector.inject(harness, replace(spec, seed=seed))
                harness.probe(
                    deadline=deadline, churn=config.churn, burst=record.probe_burst
                )
                failures = harness.integrity_failures()
                detections = harness.detections
                base.detections = detections
                base.expect_detection = record.expect_detection
                base.integrity_failures = len(failures)
                base.elapsed = deadline.elapsed
                violations = []
                if config.paranoid:
                    from ..supervise.oracle import InvariantOracle

                    oracle = InvariantOracle(
                        shadow_sample=config.paranoid_shadow_sample
                    )
                    violations = oracle.audit_harness(
                        harness,
                        sample_token=(
                            f"{workload}:{mechanism}:"
                            f"{spec.kind.value}:{spec.location}"
                        ),
                    )
                    base.invariant_violations = len(violations)
            if detections:
                base.outcome = RunOutcome.DETECTED
                base.detail = f"{record.description}; {detections} violation(s)"
                if violations:
                    base.detail += (
                        f"; paranoid: {len(violations)} invariant violation(s)"
                    )
            elif violations:
                # The mechanism saw nothing, but simulator state is wrong:
                # silent corruption caught by the oracle, not a clean cell.
                shown = "; ".join(str(v) for v in violations[:3])
                if len(violations) > 3:
                    shown += f"; +{len(violations) - 3} more"
                base.outcome = RunOutcome.INVARIANT
                base.detail = f"{record.description}; paranoid: {shown}"
            else:
                base.outcome = RunOutcome.SILENT
                note = (
                    f"; data corruption confirmed ({len(failures)} objects)"
                    if failures
                    else "; integrity intact"
                )
                base.detail = record.description + note
            return base
        except ProcessTerminated as exc:
            base.outcome = RunOutcome.DETECTED
            base.detections = 1
            base.elapsed = deadline.elapsed
            base.detail = f"process terminated: {exc}"
            return base
        except (AOSException,) as exc:
            # An AOS exception escaping the guarded paths (e.g. raised
            # during injection-phase setup) is still a detection.
            base.outcome = RunOutcome.DETECTED
            base.detections = 1
            base.elapsed = deadline.elapsed
            base.detail = f"{type(exc).__name__}: {exc}"
            return base
        except AllocatorError as exc:
            # glibc's own integrity checks — the §VII convention counts
            # these as detections (same as the security matrix).
            base.outcome = RunOutcome.DETECTED
            base.detections = 1
            base.elapsed = deadline.elapsed
            base.detail = f"allocator integrity check: {exc}"
            return base
        except ExperimentTimeout as exc:
            base.outcome = RunOutcome.TIMED_OUT
            base.elapsed = deadline.elapsed
            base.detail = str(exc)
            return base
        except Exception as exc:  # host-level: retry with a fresh seed
            if retries < config.max_retries:
                retries += 1
                seed += 7919  # decorrelate the harness state
                continue
            base.outcome = RunOutcome.CRASHED
            base.retries = retries
            base.elapsed = deadline.elapsed
            base.detail = f"host error after {retries} retries: " \
                f"{type(exc).__name__}: {exc}"
            return base


def _cell_worker(args: Tuple[CampaignConfig, str, str, FaultSpec]) -> RunResult:
    return run_campaign_cell(*args)


class Campaign:
    """Sweeps fault specs across workloads with checkpoint/resume."""

    def __init__(
        self,
        config: CampaignConfig = CampaignConfig(),
        checkpoint: Union[None, str, Path, CheckpointStore] = None,
    ) -> None:
        # Fail fast on a sweep that could never run: every cell would just
        # burn its retries and land in CRASHED, hiding the config error.
        for mechanism in config.mechanisms:
            if mechanism not in ("aos", "pa+aos"):
                raise FaultInjectionError(
                    f"fault campaigns target 'aos' or 'pa+aos', not {mechanism!r}"
                )
        self.config = config
        self.injector = FaultInjector()
        if checkpoint is None or isinstance(checkpoint, CheckpointStore):
            self.checkpoint = checkpoint
        else:
            self.checkpoint = CheckpointStore(checkpoint, meta=self._meta())

    def _meta(self) -> dict:
        config = self.config
        return {
            "kind": "fault-campaign",
            "workloads": list(config.workloads),
            "mechanisms": list(config.mechanisms),
            "fault_kinds": [k.value for k in config.kinds],
            "locations": config.locations,
            "seed": config.seed,
            "objects": config.objects,
            # Paranoid runs classify cells differently (SILENT can become
            # INVARIANT), so their checkpoints must not mix with plain ones.
            "paranoid": config.paranoid,
        }

    # ------------------------------------------------------------- sweeping

    def cells(self) -> Iterator[Tuple[str, str, FaultSpec]]:
        """The sweep grid, in deterministic order."""
        for workload in self.config.workloads:
            for mechanism in self.config.mechanisms:
                for kind in self.config.kinds:
                    for location in range(self.config.locations):
                        yield workload, mechanism, FaultSpec(
                            kind=kind, location=location, seed=self.config.seed
                        )

    @staticmethod
    def _cell_key(workload: str, mechanism: str, spec: FaultSpec) -> list:
        return ["cell", workload, mechanism, spec.kind.value, spec.location]

    @staticmethod
    def _quarantine_key(workload: str, mechanism: str, spec: FaultSpec) -> list:
        return ["quarantine", workload, mechanism, spec.kind.value, spec.location]

    def run(
        self,
        progress: Optional[Callable[[RunResult, bool], None]] = None,
        jobs: int = 1,
        supervise=None,
    ) -> CampaignResult:
        """Run (or resume) the full sweep; never lets a cell escape the
        outcome taxonomy.

        ``jobs>1`` shards pending cells over worker processes, streaming
        each finished cell to the checkpoint as it lands (a killed parallel
        campaign therefore resumes just like a serial one); the result list
        is assembled in sweep order either way.

        ``supervise`` (a :class:`~repro.supervise.SupervisorConfig`) runs
        the pending cells under the supervision layer instead: hung or
        crashing workers are retried with deterministic backoff, repeat
        offenders are quarantined *in the checkpoint* (a resumed run skips
        them), and execution degrades pool -> fresh-pool -> serial if
        workers keep dying.  Results for surviving cells are identical to
        a serial run.
        """
        if supervise is not None:
            return self._run_supervised(progress, jobs, supervise)
        if jobs > 1:
            return self._run_parallel(progress, jobs)
        outcome = CampaignResult()
        for workload, mechanism, spec in self.cells():
            key = self._cell_key(workload, mechanism, spec)
            if self.checkpoint is not None and key in self.checkpoint:
                result = RunResult.from_payload(self.checkpoint.get(key))
                outcome.results.append(result)
                outcome.resumed += 1
                if progress is not None:
                    progress(result, True)
                continue
            result = self.run_cell(workload, mechanism, spec)
            if self.checkpoint is not None:
                self.checkpoint.put(key, result.to_payload())
            outcome.results.append(result)
            if progress is not None:
                progress(result, False)
        return outcome

    def _run_parallel(
        self,
        progress: Optional[Callable[[RunResult, bool], None]],
        jobs: int,
    ) -> CampaignResult:
        cells = list(self.cells())
        outcome = CampaignResult()
        by_index: Dict[int, RunResult] = {}
        pending: List[Tuple[int, str, str, FaultSpec]] = []
        for index, (workload, mechanism, spec) in enumerate(cells):
            key = self._cell_key(workload, mechanism, spec)
            if self.checkpoint is not None and key in self.checkpoint:
                result = RunResult.from_payload(self.checkpoint.get(key))
                by_index[index] = result
                outcome.resumed += 1
                if progress is not None:
                    progress(result, True)
            else:
                pending.append((index, workload, mechanism, spec))
        if pending:
            with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
                futures = {
                    pool.submit(
                        _cell_worker, (self.config, workload, mechanism, spec)
                    ): index
                    for index, workload, mechanism, spec in pending
                }
                for future in as_completed(futures):
                    index = futures[future]
                    workload, mechanism, spec = cells[index]
                    try:
                        result = future.result()
                    except Exception as exc:
                        # Surface *which* cell killed the worker: a bare
                        # BrokenProcessPool names no cell, which makes a
                        # reproduction hunt start from zero.
                        raise FaultInjectionError(
                            "parallel campaign worker died on cell "
                            f"workload={workload} mechanism={mechanism} "
                            f"kind={spec.kind.value} location={spec.location}: "
                            f"{type(exc).__name__}: {exc}"
                        ) from exc
                    if self.checkpoint is not None:
                        self.checkpoint.put(
                            self._cell_key(workload, mechanism, spec),
                            result.to_payload(),
                        )
                    by_index[index] = result
                    if progress is not None:
                        progress(result, False)
        outcome.results = [by_index[index] for index in range(len(cells))]
        return outcome

    def _run_supervised(
        self,
        progress: Optional[Callable[[RunResult, bool], None]],
        jobs: int,
        supervise,
    ) -> CampaignResult:
        import dataclasses as _dataclasses
        import json as _json

        from ..supervise import Supervisor

        if supervise.jobs < 1:
            supervise = _dataclasses.replace(supervise, jobs=max(1, jobs))
        cells = list(self.cells())
        outcome = CampaignResult()
        by_index: Dict[int, RunResult] = {}
        tasks = []
        index_by_key: Dict[str, int] = {}
        skipped_keys: List[str] = []
        from ..supervise import Task

        for index, (workload, mechanism, spec) in enumerate(cells):
            key = self._cell_key(workload, mechanism, spec)
            task_key = _json.dumps(key)
            if self.checkpoint is not None and key in self.checkpoint:
                result = RunResult.from_payload(self.checkpoint.get(key))
                by_index[index] = result
                outcome.resumed += 1
                if progress is not None:
                    progress(result, True)
                continue
            quarantine_key = self._quarantine_key(workload, mechanism, spec)
            if self.checkpoint is not None and quarantine_key in self.checkpoint:
                stored = self.checkpoint.get(quarantine_key) or {}
                outcome.quarantined.append(
                    {
                        "workload": workload,
                        "mechanism": mechanism,
                        "kind": spec.kind.value,
                        "location": spec.location,
                        "reason": stored.get("reason", "quarantined"),
                    }
                )
                outcome.skipped_quarantined += 1
                skipped_keys.append(task_key)
                continue
            index_by_key[task_key] = index
            tasks.append(
                Task(key=task_key, payload=(self.config, workload, mechanism, spec))
            )

        def on_result(task_key: str, result: RunResult) -> None:
            index = index_by_key[task_key]
            workload, mechanism, spec = cells[index]
            if self.checkpoint is not None:
                self.checkpoint.put(
                    self._cell_key(workload, mechanism, spec), result.to_payload()
                )
            by_index[index] = result
            if progress is not None:
                progress(result, False)

        supervisor = Supervisor(supervise)
        _, report = supervisor.run(_cell_worker, tasks, on_result=on_result)
        report.skipped_quarantined.extend(skipped_keys)
        for task_key, reason in report.quarantined.items():
            index = index_by_key[task_key]
            workload, mechanism, spec = cells[index]
            if self.checkpoint is not None:
                self.checkpoint.put(
                    self._quarantine_key(workload, mechanism, spec),
                    {"reason": reason},
                )
            outcome.quarantined.append(
                {
                    "workload": workload,
                    "mechanism": mechanism,
                    "kind": spec.kind.value,
                    "location": spec.location,
                    "reason": reason,
                }
            )
        outcome.supervision = report
        outcome.results = [by_index[index] for index in sorted(by_index)]
        return outcome

    # ------------------------------------------------------------ one cell

    def run_cell(self, workload: str, mechanism: str, spec: FaultSpec) -> RunResult:
        """Inject one fault, probe, classify — with timeout and retry."""
        return run_campaign_cell(
            self.config, workload, mechanism, spec, injector=self.injector
        )


def run_quick_campaign(**overrides) -> CampaignResult:
    """Convenience: the ``faultinject --quick`` campaign in one call."""
    return Campaign(CampaignConfig.quick(**overrides)).run()

"""Fault injection and resilient experiment running.

``python -m repro faultinject`` is the CLI entry point; programmatic use::

    from repro.faults import Campaign, CampaignConfig

    result = Campaign(CampaignConfig.quick()).run()
    print(result.format_report())
"""

from .campaign import (
    Campaign,
    CampaignConfig,
    CampaignResult,
    Deadline,
    RunOutcome,
    RunResult,
    run_campaign_cell,
    run_quick_campaign,
)
from .checkpoint import CheckpointStore
from .injector import (
    ALL_KINDS,
    ALL_QUEUE_KINDS,
    METADATA_KINDS,
    POINTER_CORRUPTION_KINDS,
    RESILIENCE_KINDS,
    SPATIAL_POINTER_KINDS,
    TEMPORAL_POINTER_KINDS,
    FaultHarness,
    FaultInjector,
    FaultKind,
    FaultSpec,
    InjectionRecord,
    QueueFaultKind,
    TrackedObject,
    parse_fault_kind,
    parse_queue_fault_kind,
)

__all__ = [
    "ALL_KINDS",
    "ALL_QUEUE_KINDS",
    "Campaign",
    "CampaignConfig",
    "CampaignResult",
    "CheckpointStore",
    "Deadline",
    "FaultHarness",
    "FaultInjector",
    "FaultKind",
    "FaultSpec",
    "InjectionRecord",
    "METADATA_KINDS",
    "QueueFaultKind",
    "POINTER_CORRUPTION_KINDS",
    "RESILIENCE_KINDS",
    "RunOutcome",
    "RunResult",
    "SPATIAL_POINTER_KINDS",
    "TEMPORAL_POINTER_KINDS",
    "TrackedObject",
    "parse_fault_kind",
    "parse_queue_fault_kind",
    "run_campaign_cell",
    "run_quick_campaign",
]

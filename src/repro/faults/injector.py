"""Fault injection into live AOS simulator state.

The paper's §IV-D exception class and §VII security analysis claim AOS
*detects and survives* corrupted pointers, double frees and HBT pressure.
This module makes those claims measurable the way sanitizer evaluations
(CryptSan, PACSan) measure detection coverage: a :class:`FaultInjector`
corrupts one piece of live state — a signed pointer's PAC/AHC/VA field, an
HBT bounds record, an in-flight gradual resize, a BWB way tag, a chunk
header — and a :class:`FaultHarness` then probes the process so the
campaign can classify what the mechanism did about it.

Every fault is applied through an explicit seam on the target component
(:meth:`HashedBoundsTable.replace_record`, :meth:`BoundsWayBuffer.poison`,
:meth:`MemoryCheckUnit.inject_drop_bndstr`,
:meth:`HeapAllocator.corrupt_chunk_header`), so the corruption lands in
exactly the state a real bit flip or lost table write would hit — the MCU,
handler and allocator then react through their normal paths, unmodified.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum
from typing import Callable, Dict, List, Optional

from ..core.bounds import CompressedBounds, RawBounds
from ..core.bwb import bwb_tag
from ..errors import FaultInjectionError, SimulationError
from ..os.handler import HandlerPolicy
from ..os.process import Process
from ..workloads import get_profile


class FaultKind(str, Enum):
    """The fault classes the campaign sweeps."""

    #: Flip bits inside the PAC field of a live signed pointer (§VII-C).
    PTR_PAC_FLIP = "ptr-pac-flip"
    #: Flip a VA bit that moves the pointer outside its object's bounds.
    PTR_VA_FLIP = "ptr-va-flip"
    #: Zero the AHC so the pointer looks unsigned (plain AOS cannot catch
    #: this on dereference; PA+AOS's on-load ``autm`` does — Fig. 13).
    PTR_AHC_ZERO = "ptr-ahc-zero"
    #: Free an object, then keep dereferencing the stale signed pointer.
    USE_AFTER_FREE = "use-after-free"
    #: Free the same signed pointer twice (``bndclr`` miss, §IV-D).
    DOUBLE_FREE = "double-free"
    #: Flip bits in a live HBT bounds record (bounds-line corruption).
    HBT_ENTRY_CORRUPT = "hbt-entry-corrupt"
    #: Empty a live HBT slot — a flipped valid bit / lost bounds line.
    HBT_ENTRY_DROP = "hbt-entry-drop"
    #: Silently discard the next ``bndstr`` between core and HBT.
    BNDSTR_DROP = "bndstr-drop"
    #: Freeze a gradual resize mid-row (table manager dies, Fig. 10).
    RESIZE_INTERRUPT = "resize-interrupt"
    #: Plant a wrong way hint in the BWB (stale tag, §V-C).
    BWB_STALE_WAY = "bwb-stale-way"
    #: Clobber the glibc boundary tag of a live chunk (heap overflow).
    CHUNK_HEADER_CORRUPT = "chunk-header-corrupt"
    #: Fill an HBT row to capacity and kick off an in-flight resize.
    HBT_PRESSURE = "hbt-pressure"


#: Spatial pointer corruption: the paper claims AOS detects these (§VII-A/C).
SPATIAL_POINTER_KINDS = (FaultKind.PTR_PAC_FLIP, FaultKind.PTR_VA_FLIP)
#: Temporal violations through corrupted/stale pointers (§VII-A).
TEMPORAL_POINTER_KINDS = (FaultKind.USE_AFTER_FREE, FaultKind.DOUBLE_FREE)
#: The acceptance bucket: faults the §VII table says AOS must detect.
POINTER_CORRUPTION_KINDS = SPATIAL_POINTER_KINDS + TEMPORAL_POINTER_KINDS
#: Corruption of AOS/allocator metadata rather than the pointer itself.
METADATA_KINDS = (
    FaultKind.HBT_ENTRY_CORRUPT,
    FaultKind.HBT_ENTRY_DROP,
    FaultKind.BNDSTR_DROP,
    FaultKind.CHUNK_HEADER_CORRUPT,
)
#: Faults AOS is expected to *tolerate* (degrade, not misbehave).
RESILIENCE_KINDS = (
    FaultKind.PTR_AHC_ZERO,
    FaultKind.RESIZE_INTERRUPT,
    FaultKind.BWB_STALE_WAY,
    FaultKind.HBT_PRESSURE,
)

ALL_KINDS: List[FaultKind] = list(FaultKind)


def parse_fault_kind(value: str) -> FaultKind:
    """CLI parser for ``--fault-kinds``: value string -> :class:`FaultKind`.

    Round-trips every kind (``parse_fault_kind(kind.value) is kind``) and
    turns an unknown name into a :class:`FaultInjectionError` listing the
    vocabulary instead of a bare ``ValueError``.
    """
    try:
        return FaultKind(value)
    except ValueError:
        raise FaultInjectionError(
            f"unknown fault kind {value!r}; known: "
            + ", ".join(k.value for k in ALL_KINDS)
        ) from None


class QueueFaultKind(str, Enum):
    """Faults that attack the *queue layer* rather than the simulator.

    Deliberately a separate enum from :class:`FaultKind`: these are
    injected into queue workers (``repro.queue``), not through the
    :class:`FaultInjector` seams, so the injector's handler-completeness
    contract (one handler per ``FaultKind``) stays intact.
    """

    #: SIGKILL a worker after it has acked K cells: leases must expire,
    #: cells must be reclaimed, and nothing may be lost or merged twice.
    WORKER_KILL = "worker-kill"
    #: Skew the clock one worker stamps its leases with: a fast clock
    #: writes already-expired leases (instant reclaim races), a slow one
    #: writes far-future leases (heartbeat staleness must catch deaths).
    LEASE_CLOCK_SKEW = "lease-clock-skew"


ALL_QUEUE_KINDS: List[QueueFaultKind] = list(QueueFaultKind)


def parse_queue_fault_kind(value: str) -> QueueFaultKind:
    """CLI parser for ``--queue-fault``: value string -> :class:`QueueFaultKind`."""
    try:
        return QueueFaultKind(value)
    except ValueError:
        raise FaultInjectionError(
            f"unknown queue fault kind {value!r}; known: "
            + ", ".join(k.value for k in ALL_QUEUE_KINDS)
        ) from None


@dataclass(frozen=True)
class FaultSpec:
    """One injection request: what to corrupt, where, with which entropy."""

    kind: FaultKind
    #: Selects the victim object/slot (modulo the live population), so a
    #: location sweep hits different PACs, sizes and row states.
    location: int = 0
    seed: int = 7


@dataclass
class InjectionRecord:
    """What the injector actually did, for the run log."""

    spec: FaultSpec
    description: str
    #: Whether the AOS threat model (§VII) claims this fault is detected.
    expect_detection: bool
    target_pointer: Optional[int] = None
    #: Extra allocations the probe should perform (pressure faults).
    probe_burst: int = 0


@dataclass
class TrackedObject:
    """One live allocation the harness monitors."""

    pointer: int          # current (possibly corrupted) signed pointer
    address: int          # true stripped payload base
    size: int             # requested size
    pattern: int          # value written at the base for integrity checks
    freed: bool = False
    free_in_probe: bool = False
    check_integrity: bool = True


class FaultHarness:
    """One instrumented AOS process the campaign corrupts and probes.

    ``mechanism`` is ``"aos"`` or ``"pa+aos"``; the latter authenticates
    every pointer with ``autm`` before dereferencing (Fig. 13), which is
    what turns AHC-zeroing from a silent miss into a detection.
    """

    def __init__(
        self,
        workload: str = "gcc",
        mechanism: str = "aos",
        seed: int = 7,
        objects: int = 24,
        policy: HandlerPolicy = HandlerPolicy.REPORT_AND_RESUME,
        max_violations: Optional[int] = None,
    ) -> None:
        if mechanism not in ("aos", "pa+aos"):
            raise FaultInjectionError(
                f"fault campaigns target 'aos' or 'pa+aos', not {mechanism!r}"
            )
        self.workload = workload
        self.mechanism = mechanism
        self.authenticate = mechanism == "pa+aos"
        self.profile = get_profile(workload)
        self.process = Process(
            pac_mode="fast", policy=policy, max_violations=max_violations
        )
        self.rng = random.Random(seed)
        self.objects: List[TrackedObject] = []
        self.target_objects = objects

    # ---------------------------------------------------------- conveniences

    @property
    def runtime(self):
        return self.process.runtime

    @property
    def hbt(self):
        return self.runtime.hbt

    @property
    def mcu(self):
        return self.runtime.mcu

    @property
    def bwb(self):
        return self.runtime.mcu.bwb

    @property
    def layout(self):
        return self.runtime.signer.layout

    @property
    def allocator(self):
        return self.runtime.allocator

    @property
    def detections(self) -> int:
        return self.process.handler.violation_count

    # ------------------------------------------------------------- teardown

    def disarm_seams(self) -> None:
        """Disarm every injection seam on this harness's components.

        Idempotent and safe mid-campaign: armed-but-unfired faults (queued
        ``bndstr`` drops, a stalled migration, poisoned BWB hints) are the
        only state cleared — applied corruption and logged detections are
        results, not seams, and stay put.  Called on any exception path so
        an aborted cell can never leak an armed fault into a follow-up run
        on the same components.
        """
        self.mcu.clear_injected_faults()
        if self.hbt.migration_stalled:
            self.hbt.resume_migration()
        if self.bwb is not None:
            self.bwb.clear_hints()

    def __enter__(self) -> "FaultHarness":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.disarm_seams()
        return False

    # ------------------------------------------------------------ population

    def _sample_size(self) -> int:
        sizes = [s for s, _ in self.profile.size_classes]
        weights = [w for _, w in self.profile.size_classes]
        return max(16, self.rng.choices(sizes, weights=weights)[0])

    def allocate_one(self, write_pattern: bool = True) -> TrackedObject:
        size = self._sample_size()
        pointer = self.process.malloc(size)
        address = self.runtime.signer.xpacm(pointer)
        pattern = self.rng.getrandbits(63)
        obj = TrackedObject(
            pointer=pointer,
            address=address,
            size=size,
            pattern=pattern,
            check_integrity=write_pattern,
        )
        if write_pattern:
            self.process.store(pointer, pattern)
        self.objects.append(obj)
        return obj

    def populate(self, objects: Optional[int] = None) -> None:
        """Build the pre-fault live set the injector picks victims from."""
        for _ in range(objects if objects is not None else self.target_objects):
            self.allocate_one()

    def free_object(self, obj: TrackedObject) -> None:
        """Free through the guarded OS path; the stale signed pointer stays
        in ``obj.pointer`` for temporal probes."""
        self.process.free(obj.pointer)
        obj.freed = True
        obj.check_integrity = False

    # --------------------------------------------------------------- probing

    def probe(self, deadline=None, churn: int = 4, burst: int = 0) -> None:
        """Exercise the process after injection.

        Walks every tracked object (loads at both ends, a store at the
        base), frees the objects the injector marked, then churns
        ``churn`` allocate/free pairs and ``burst`` extra allocations so
        the ``bndstr``/``bndclr``/resize paths run against the corrupted
        state.  All AOS exceptions route through the OS handler; the
        campaign reads the verdict from the fault log afterwards.
        """
        # The injection happened at an arbitrary later time: in-flight
        # bounds forwarding (§V-F2) from the population phase would mask
        # table corruption that a drained MCQ must re-read from memory.
        self.mcu.drain_recent_stores()
        for obj in list(self.objects):
            if deadline is not None:
                deadline.check()
            if obj.free_in_probe:
                obj.free_in_probe = False
                self.process.free(obj.pointer)
                obj.freed = True
                obj.check_integrity = False
                continue
            pointer = obj.pointer
            if self.authenticate:
                pointer = self.process.authenticate(pointer)
                if pointer is None:
                    continue  # authentication failed and was logged
            self.process.load(pointer)
            if obj.size >= 16:
                self.process.load(self.runtime.offset(pointer, obj.size - 8))
            if not obj.freed:
                self.process.store(pointer, obj.pattern)
        for index in range(churn + burst):
            if deadline is not None:
                deadline.check()
            extra = self.allocate_one()
            if index % 2 == 0 and index < churn:
                self.free_object(extra)

    def integrity_failures(self) -> List[str]:
        """Objects whose base pattern no longer matches simulated memory —
        the evidence that turns a 'silent' outcome into confirmed silent
        data corruption."""
        failures = []
        for obj in self.objects:
            if obj.freed or not obj.check_integrity:
                continue
            raw = self.runtime.memory.read_bytes(obj.address, 8)
            if int.from_bytes(raw, "little") != obj.pattern:
                failures.append(
                    f"object @{obj.address:#x}: expected {obj.pattern:#x}, "
                    f"read {int.from_bytes(raw, 'little'):#x}"
                )
        return failures


class FaultInjector:
    """Applies one :class:`FaultSpec` to a live :class:`FaultHarness`.

    ``obs``, when given, records every injection as a ``fault.inject``
    trace event and a per-kind counter, so a campaign's metrics snapshot
    shows exactly what was corrupted where.
    """

    def __init__(self, obs=None) -> None:
        self.obs = obs

    def inject(self, harness: FaultHarness, spec: FaultSpec) -> InjectionRecord:
        handler = self._HANDLERS.get(spec.kind)
        if handler is None:
            raise FaultInjectionError(f"unknown fault kind {spec.kind!r}")
        rng = random.Random(f"{spec.seed}:{spec.kind.value}:{spec.location}")
        try:
            record = handler(self, harness, spec, rng)
        except Exception:
            # A handler that dies mid-injection may have armed some seams
            # already (e.g. a bndstr drop queued before the allocation
            # failed); never leak them into the caller's recovery path.
            harness.disarm_seams()
            raise
        if self.obs is not None:
            self.obs.registry.count("fault.injected")
            self.obs.registry.count(f"fault.injected.{spec.kind.value}")
            self.obs.emit(
                "fault.inject",
                kind=spec.kind.value,
                location=spec.location,
                expect_detection=record.expect_detection,
            )
        return record

    # ---------------------------------------------------------------- victims

    @staticmethod
    def _pick(harness: FaultHarness, spec: FaultSpec) -> TrackedObject:
        live = [o for o in harness.objects if not o.freed]
        if not live:
            raise FaultInjectionError("no live objects to corrupt")
        return live[spec.location % len(live)]

    @staticmethod
    def _locate_bounds(harness: FaultHarness, obj: TrackedObject):
        pac = harness.layout.pac(obj.pointer)
        coords = harness.hbt.find_record(pac, obj.address)
        if coords is None:
            raise FaultInjectionError(
                f"no HBT record found for object @{obj.address:#x}"
            )
        return pac, coords

    # ------------------------------------------------- pointer-field faults

    def _pac_flip(self, harness, spec, rng) -> InjectionRecord:
        obj = self._pick(harness, spec)
        layout = harness.layout
        bits = rng.sample(range(layout.pac_bits), 1 + rng.randrange(2))
        mask = sum(1 << b for b in bits) << layout.pac_shift
        obj.pointer ^= mask
        return InjectionRecord(
            spec=spec,
            description=f"flipped PAC bits {sorted(bits)} of object @{obj.address:#x}",
            expect_detection=True,
            target_pointer=obj.pointer,
        )

    def _va_flip(self, harness, spec, rng) -> InjectionRecord:
        obj = self._pick(harness, spec)
        # Flip a bit large enough to leave the object: |delta| >= size.
        low = max(obj.size.bit_length(), 6)
        bit = rng.randrange(low, 22)
        obj.pointer ^= 1 << bit
        return InjectionRecord(
            spec=spec,
            description=(
                f"flipped VA bit {bit} of object @{obj.address:#x} "
                f"(size {obj.size})"
            ),
            expect_detection=True,
            target_pointer=obj.pointer,
        )

    def _ahc_zero(self, harness, spec, rng) -> InjectionRecord:
        obj = self._pick(harness, spec)
        obj.pointer &= ~harness.layout.ahc_mask
        return InjectionRecord(
            spec=spec,
            description=f"zeroed AHC of object @{obj.address:#x} (§VII-C escape)",
            # Plain AOS skips unsigned pointers; only the PA+AOS on-load
            # autm (Fig. 13) catches this class.
            expect_detection=harness.authenticate,
            target_pointer=obj.pointer,
        )

    # --------------------------------------------------------- temporal faults

    def _use_after_free(self, harness, spec, rng) -> InjectionRecord:
        obj = self._pick(harness, spec)
        stale = obj.pointer
        harness.free_object(obj)
        obj.pointer = stale  # probe keeps dereferencing the stale pointer
        obj.freed = False    # treat as live so probes hit it
        obj.check_integrity = False
        return InjectionRecord(
            spec=spec,
            description=f"freed object @{obj.address:#x}; stale pointer kept live",
            expect_detection=True,
            target_pointer=stale,
        )

    def _double_free(self, harness, spec, rng) -> InjectionRecord:
        obj = self._pick(harness, spec)
        stale = obj.pointer
        harness.free_object(obj)
        obj.pointer = stale
        obj.free_in_probe = True  # probe frees it a second time
        return InjectionRecord(
            spec=spec,
            description=f"queued second free() of object @{obj.address:#x}",
            expect_detection=True,
            target_pointer=stale,
        )

    # --------------------------------------------------------- table faults

    def _hbt_corrupt(self, harness, spec, rng) -> InjectionRecord:
        obj = self._pick(harness, spec)
        pac, (way, slot) = self._locate_bounds(harness, obj)
        old = harness.hbt.peek(pac, way, slot)
        if isinstance(old, CompressedBounds):
            bits = rng.sample(range(29), 1 + rng.randrange(2))  # LowBnd field
            corrupted = CompressedBounds(raw=old.raw ^ sum(1 << b for b in bits))
        elif isinstance(old, RawBounds):
            corrupted = RawBounds(
                lower=old.lower ^ (1 << rng.randrange(4, 12)), upper=old.upper
            )
        else:  # pragma: no cover - locate guarantees a record
            raise FaultInjectionError("no record at located slot")
        harness.hbt.replace_record(pac, way, slot, corrupted)
        return InjectionRecord(
            spec=spec,
            description=(
                f"corrupted bounds record (pac {pac:#x}, way {way}, slot {slot}) "
                f"of object @{obj.address:#x}"
            ),
            expect_detection=True,
            target_pointer=obj.pointer,
        )

    def _hbt_drop(self, harness, spec, rng) -> InjectionRecord:
        obj = self._pick(harness, spec)
        pac, (way, slot) = self._locate_bounds(harness, obj)
        harness.hbt.drop_record(pac, way, slot)
        return InjectionRecord(
            spec=spec,
            description=(
                f"dropped bounds record (pac {pac:#x}, way {way}, slot {slot}) "
                f"of object @{obj.address:#x}"
            ),
            expect_detection=True,
            target_pointer=obj.pointer,
        )

    def _bndstr_drop(self, harness, spec, rng) -> InjectionRecord:
        harness.mcu.inject_drop_bndstr(1)
        obj = harness.allocate_one(write_pattern=False)
        return InjectionRecord(
            spec=spec,
            description=f"dropped bndstr of new object @{obj.address:#x}",
            expect_detection=True,
            target_pointer=obj.pointer,
        )

    # ----------------------------------------------------- resilience faults

    def _resize_interrupt(self, harness, spec, rng) -> InjectionRecord:
        frozen = harness.hbt.interrupt_migration(
            at_row=rng.randrange(1, harness.hbt.num_rows)
        )
        return InjectionRecord(
            spec=spec,
            description=(
                f"gradual resize frozen at RowPtr {frozen}/{harness.hbt.num_rows} "
                f"(ways {harness.hbt.ways})"
            ),
            expect_detection=False,
        )

    def _bwb_stale(self, harness, spec, rng) -> InjectionRecord:
        if harness.bwb is None:
            raise FaultInjectionError("BWB disabled in this configuration")
        if harness.hbt.ways < 2:
            # A way hint can only be wrong if there is more than one way.
            harness.hbt.begin_resize()
            harness.hbt.finish_resize()
        obj = self._pick(harness, spec)
        layout = harness.layout
        pac = layout.pac(obj.pointer)
        coords = harness.hbt.find_record(pac, obj.address)
        true_way = coords[0] if coords else 0
        wrong_way = (true_way + 1 + rng.randrange(harness.hbt.ways - 1)) % harness.hbt.ways
        tag = bwb_tag(obj.address, layout.ahc(obj.pointer), pac)
        harness.bwb.poison(tag, wrong_way)
        return InjectionRecord(
            spec=spec,
            description=(
                f"poisoned BWB tag {tag:#x}: way {true_way} -> stale hint "
                f"{wrong_way} for object @{obj.address:#x}"
            ),
            expect_detection=False,
            target_pointer=obj.pointer,
        )

    def _chunk_header(self, harness, spec, rng) -> InjectionRecord:
        obj = self._pick(harness, spec)
        original = harness.allocator._read_size_field(obj.address - 16)
        variants = [
            0,                                # zero size: fails free() checks
            24,                               # below MIN_CHUNK: invalid
            (original & ~0x7) * 2 | 0x1,      # plausible double size: slips
            0xFFFF_FFF0,                      # absurdly large
            original ^ 0x8,                   # misaligned: invalid
        ]
        value = variants[rng.randrange(len(variants))]
        harness.allocator.corrupt_chunk_header(obj.address, value)
        obj.free_in_probe = True
        obj.check_integrity = False
        return InjectionRecord(
            spec=spec,
            description=(
                f"chunk header of object @{obj.address:#x}: size field "
                f"{original:#x} -> {value:#x}; free() queued"
            ),
            expect_detection=True,
            target_pointer=obj.pointer,
        )

    def _hbt_pressure(self, harness, spec, rng) -> InjectionRecord:
        obj = self._pick(harness, spec)
        pac = harness.layout.pac(obj.pointer)
        hbt = harness.hbt
        stuffed = 0
        base = 0x4000_0000 + (spec.location << 20)
        for index in range(hbt.ways * hbt.slots_per_way + 1):
            try:
                hbt.insert(pac, base + index * 64, 48)
                stuffed += 1
            except SimulationError:
                break
        # The row is full: model the OS servicing the resulting
        # BoundsStoreFault with a gradual (in-flight) resize.
        event = harness.process.table_manager.on_bounds_store_failure()
        return InjectionRecord(
            spec=spec,
            description=(
                f"stuffed {stuffed} records into row {pac:#x}; resize "
                f"{event.old_ways}->{event.new_ways} ways in flight"
            ),
            expect_detection=False,
            target_pointer=obj.pointer,
            probe_burst=32,
        )

    _HANDLERS: Dict[FaultKind, Callable] = {
        FaultKind.PTR_PAC_FLIP: _pac_flip,
        FaultKind.PTR_VA_FLIP: _va_flip,
        FaultKind.PTR_AHC_ZERO: _ahc_zero,
        FaultKind.USE_AFTER_FREE: _use_after_free,
        FaultKind.DOUBLE_FREE: _double_free,
        FaultKind.HBT_ENTRY_CORRUPT: _hbt_corrupt,
        FaultKind.HBT_ENTRY_DROP: _hbt_drop,
        FaultKind.BNDSTR_DROP: _bndstr_drop,
        FaultKind.RESIZE_INTERRUPT: _resize_interrupt,
        FaultKind.BWB_STALE_WAY: _bwb_stale,
        FaultKind.CHUNK_HEADER_CORRUPT: _chunk_header,
        FaultKind.HBT_PRESSURE: _hbt_pressure,
    }

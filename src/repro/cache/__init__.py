"""Cache/DRAM substrate with per-link traffic accounting.

The hierarchy mirrors Table IV: private L1-I/L1-D (plus the optional L1-B
bounds cache of §V-F1), a shared L2, and DRAM.  Every line transfer between
adjacent levels is counted in bytes, which is exactly the metric of the
paper's Fig. 18 ("the number of bytes transferred between caches and
between the last-level cache and DRAM").
"""

from .sram import Cache, AccessResult
from .hierarchy import MemoryHierarchy, TrafficCounters

__all__ = ["Cache", "AccessResult", "MemoryHierarchy", "TrafficCounters"]

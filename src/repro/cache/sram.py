"""A set-associative, write-back, write-allocate cache with LRU replacement."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..config import CacheConfig


@dataclass(slots=True)
class AccessResult:
    """Outcome of a single cache access."""

    hit: bool
    #: Line address of a dirty line evicted by this access (None if none).
    writeback: Optional[int] = None


@dataclass(slots=True)
class CacheStats:
    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class Cache:
    """One cache level.

    Each set is an ordered dict from tag to dirty-bit, maintained in LRU
    order (first item = least recently used).  The cache is a timing/state
    model only — data contents live in :class:`repro.memory.SparseMemory`.
    """

    __slots__ = ("config", "line_bits", "num_sets", "assoc", "stats", "_sets")

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.line_bits = config.line_bytes.bit_length() - 1
        self.num_sets = config.num_sets
        self.assoc = config.assoc
        self.stats = CacheStats()
        # sets[i] maps tag -> dirty, insertion-ordered oldest-first (LRU).
        self._sets: List[Dict[int, bool]] = [dict() for _ in range(self.num_sets)]

    @property
    def name(self) -> str:
        return self.config.name

    @property
    def hit_latency(self) -> int:
        return self.config.hit_latency

    def _index_tag(self, address: int) -> Tuple[int, int]:
        line = address >> self.line_bits
        return line % self.num_sets, line // self.num_sets

    def line_address(self, address: int) -> int:
        return (address >> self.line_bits) << self.line_bits

    def access(self, address: int, is_write: bool) -> AccessResult:
        """Access one address; allocate on miss; return hit/eviction info."""
        self.stats.accesses += 1
        index, tag = self._index_tag(address)
        set_ = self._sets[index]
        if tag in set_:
            self.stats.hits += 1
            dirty = set_.pop(tag) or is_write
            set_[tag] = dirty  # move to MRU position
            return AccessResult(hit=True)

        self.stats.misses += 1
        writeback = None
        if len(set_) >= self.assoc:
            victim_tag, victim_dirty = next(iter(set_.items()))
            del set_[victim_tag]
            self.stats.evictions += 1
            if victim_dirty:
                self.stats.writebacks += 1
                victim_line = (victim_tag * self.num_sets + index) << self.line_bits
                writeback = victim_line
        set_[tag] = is_write
        return AccessResult(hit=False, writeback=writeback)

    def probe(self, address: int) -> bool:
        """Check residency without perturbing LRU state or stats."""
        index, tag = self._index_tag(address)
        return tag in self._sets[index]

    def invalidate_all(self) -> None:
        for set_ in self._sets:
            set_.clear()

    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets)

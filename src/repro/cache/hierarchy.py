"""The full memory hierarchy: L1-I / L1-D / optional L1-B / L2 / DRAM.

Accesses return a latency in core cycles and update per-link traffic
counters.  Three access classes exist:

- ``access_data``    — ordinary loads/stores through the L1-D;
- ``access_bounds``  — HBT lines; routed through the L1-B when the §V-F1
  optimisation is on, otherwise they pollute the L1-D (the Fig. 15
  ablation);
- ``access_metadata`` — baseline-mechanism metadata (Watchdog shadow
  records, MPX bounds-directory/table loads) through the L1-D.

Traffic is counted in bytes per link (L1<->L2 and L2<->DRAM), matching the
paper's Fig. 18 metric.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import MemoryHierarchyConfig
from .sram import Cache


@dataclass(slots=True)
class TrafficCounters:
    """Bytes moved per link (the Fig. 18 metric)."""

    l1_l2_bytes: int = 0
    l2_dram_bytes: int = 0

    @property
    def total_bytes(self) -> int:
        return self.l1_l2_bytes + self.l2_dram_bytes

    def reset(self) -> None:
        self.l1_l2_bytes = 0
        self.l2_dram_bytes = 0


class MemoryHierarchy:
    """Two-level cache hierarchy with an optional bounds cache and DRAM."""

    __slots__ = (
        "config",
        "l1i",
        "l1d",
        "l1b",
        "l2",
        "traffic",
        "line_bytes",
        "dram_accesses",
    )

    def __init__(self, config: MemoryHierarchyConfig, use_l1b: bool = True) -> None:
        self.config = config
        self.l1i = Cache(config.l1i)
        self.l1d = Cache(config.l1d)
        self.l1b = Cache(config.l1b) if use_l1b else None
        self.l2 = Cache(config.l2)
        self.traffic = TrafficCounters()
        self.line_bytes = config.l1d.line_bytes
        self.dram_accesses = 0

    # ------------------------------------------------------------------ core

    def _access_l2(self, address: int, is_write: bool) -> int:
        """Access the L2 on behalf of an L1 miss; returns added latency."""
        self.traffic.l1_l2_bytes += self.line_bytes  # refill L1 <- L2
        result = self.l2.access(address, is_write)
        latency = self.l2.hit_latency
        if not result.hit:
            self.traffic.l2_dram_bytes += self.line_bytes  # refill L2 <- DRAM
            self.dram_accesses += 1
            latency += self.config.dram_latency
            if result.writeback is not None:
                self.traffic.l2_dram_bytes += self.line_bytes
        return latency

    def _access_through(self, l1: Cache, address: int, is_write: bool) -> int:
        """L1 access backed by the L2; returns total latency in cycles."""
        result = l1.access(address, is_write)
        latency = l1.hit_latency
        if result.hit:
            return latency
        latency += self._access_l2(address, is_write=False)
        if result.writeback is not None:
            # Dirty line pushed down to the L2.
            self.traffic.l1_l2_bytes += self.line_bytes
            wb = self.l2.access(result.writeback, is_write=True)
            if not wb.hit:
                self.traffic.l2_dram_bytes += self.line_bytes
                self.dram_accesses += 1
                if wb.writeback is not None:
                    self.traffic.l2_dram_bytes += self.line_bytes
        return latency

    # ------------------------------------------------------------------- API

    def access_data(self, address: int, is_write: bool) -> int:
        """An ordinary load/store; returns latency in cycles."""
        return self._access_through(self.l1d, address, is_write)

    def access_bounds(self, address: int, is_write: bool) -> int:
        """An HBT line access (64 B, 8 compressed bounds, §V-A)."""
        l1 = self.l1b if self.l1b is not None else self.l1d
        return self._access_through(l1, address, is_write)

    def access_metadata(self, address: int, is_write: bool) -> int:
        """Baseline-mechanism metadata (shadow records, MPX tables)."""
        return self._access_through(self.l1d, address, is_write)

    def access_instruction(self, address: int) -> int:
        return self._access_through(self.l1i, address, is_write=False)

    # ------------------------------------------------------------ inspection

    def summary(self) -> dict:
        """Hit rates and traffic for reports."""
        caches = {"l1d": self.l1d, "l2": self.l2}
        if self.l1b is not None:
            caches["l1b"] = self.l1b
        return {
            **{
                f"{name}_hit_rate": cache.stats.hit_rate
                for name, cache in caches.items()
            },
            "l1_l2_bytes": self.traffic.l1_l2_bytes,
            "l2_dram_bytes": self.traffic.l2_dram_bytes,
            "dram_accesses": self.dram_accesses,
        }

    def publish_metrics(self, registry) -> None:
        """Harvest cache/traffic stats into a ``MetricsRegistry``.

        Called once after the pipeline drains, so instrumentation adds
        nothing to the per-access hot path.
        """
        caches = {"l1d": self.l1d, "l2": self.l2}
        if self.l1b is not None:
            caches["l1b"] = self.l1b
        for name, cache in caches.items():
            registry.count(f"cache.{name}.accesses", cache.stats.accesses)
            registry.count(f"cache.{name}.hits", cache.stats.hits)
            registry.count(f"cache.{name}.misses", cache.stats.misses)
            registry.count(f"cache.{name}.evictions", cache.stats.evictions)
            registry.set_gauge(f"cache.{name}.hit_rate", cache.stats.hit_rate)
        registry.count("traffic.l1_l2_bytes", self.traffic.l1_l2_bytes)
        registry.count("traffic.l2_dram_bytes", self.traffic.l2_dram_bytes)
        registry.count("dram.accesses", self.dram_accesses)

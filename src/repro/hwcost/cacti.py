"""A CACTI-flavoured SRAM cost model reproducing Table I (§V-G).

The paper sizes its new structures with CACTI 6.0 at 45 nm.  Re-deriving
CACTI's circuit models is out of scope for a Python reproduction; instead
we (a) compute each structure's *capacity* from its architectural field
widths — which independently validates the paper's "1.3 KB MCQ / 384 B
BWB" claims — and (b) estimate area, access time, dynamic energy and
leakage with per-metric power laws ``metric = a * bytes^b`` fitted to the
four published CACTI rows.  The fit doubles as a sanity check: all four
structures must lie on one smooth scaling curve, which they do.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..config import SystemConfig, default_config


@dataclass(frozen=True)
class StructureSpec:
    """One hardware structure and its capacity in bytes."""

    name: str
    size_bytes: int
    description: str = ""


#: Published Table I rows: name -> (bytes, area mm^2, access ns,
#: dynamic energy pJ, leakage mW).
PUBLISHED_TABLE1: Dict[str, Tuple[int, float, float, float, float]] = {
    "MCQ": (1331, 0.0096, 0.1383, 0.0014, 3.2269),
    "BWB": (384, 0.00285, 0.12755, 0.00077, 1.10712),
    "L1-B Cache": (32 * 1024, 0.1573, 0.2984, 0.0347, 58.295),
    "L1-D Cache": (64 * 1024, 0.2628, 0.3217, 0.0436, 122.69),
}


def mcq_entry_bits() -> int:
    """Bit width of one MCQ entry from the §V-A.1 field list.

    Valid(1) + Type(2) + Addr(64) + BndData(64) + BndAddr(64) + Way(6) +
    Count(6) + Committed(1) + State(3) = 211 bits.
    """
    return 1 + 2 + 64 + 64 + 64 + 6 + 6 + 1 + 3


def bwb_entry_bits() -> int:
    """32-bit tag + way pointer + LRU state (§V-C)."""
    return 32 + 6 + 10


def table1_structures(config: SystemConfig = None) -> List[StructureSpec]:
    """The AOS structures sized from the architectural parameters."""
    config = config or default_config()
    mcq_bytes = config.core.mcq_entries * mcq_entry_bits() // 8
    bwb_bytes = config.bwb.entries * bwb_entry_bits() // 8
    return [
        StructureSpec("MCQ", mcq_bytes, f"{config.core.mcq_entries} entries x {mcq_entry_bits()} bits"),
        StructureSpec("BWB", bwb_bytes, f"{config.bwb.entries} entries x {bwb_entry_bits()} bits"),
        StructureSpec("L1-B Cache", config.memory.l1b.size_bytes, "bounds cache (§V-F1)"),
        StructureSpec("L1-D Cache", config.memory.l1d.size_bytes, "reference"),
    ]


class SRAMCostModel:
    """Power-law SRAM scaling fitted to the published CACTI 6.0 rows."""

    METRICS = ("area_mm2", "access_ns", "dynamic_pj", "leakage_mw")

    def __init__(self) -> None:
        sizes = np.array([row[0] for row in PUBLISHED_TABLE1.values()], dtype=float)
        self._coeffs: Dict[str, Tuple[float, float]] = {}
        for index, metric in enumerate(self.METRICS, start=1):
            values = np.array(
                [row[index] for row in PUBLISHED_TABLE1.values()], dtype=float
            )
            # Least-squares fit of log(metric) = log(a) + b*log(bytes).
            A = np.vstack([np.ones_like(sizes), np.log(sizes)]).T
            (log_a, b), *_ = np.linalg.lstsq(A, np.log(values), rcond=None)
            self._coeffs[metric] = (math.exp(log_a), float(b))

    def estimate(self, size_bytes: int) -> Dict[str, float]:
        """Estimated metrics for an SRAM structure of ``size_bytes``."""
        if size_bytes <= 0:
            raise ValueError("structure size must be positive")
        return {
            metric: a * size_bytes**b for metric, (a, b) in self._coeffs.items()
        }

    def coefficient(self, metric: str) -> Tuple[float, float]:
        return self._coeffs[metric]


def estimate_table1(config: SystemConfig = None) -> Dict[str, Dict[str, float]]:
    """Reproduce Table I: per-structure size + estimated cost metrics."""
    model = SRAMCostModel()
    table: Dict[str, Dict[str, float]] = {}
    for spec in table1_structures(config):
        row = {"size_bytes": float(spec.size_bytes)}
        row.update(model.estimate(spec.size_bytes))
        table[spec.name] = row
    return table

"""Hardware cost modelling for Table I (§V-G)."""

from .cacti import SRAMCostModel, StructureSpec, table1_structures, estimate_table1

__all__ = ["SRAMCostModel", "StructureSpec", "table1_structures", "estimate_table1"]

"""Forgery-entropy analysis: PAC guessing (§VII-E) vs small tags (§X).

The paper argues AOS's main probabilistic defence margin comes from PAC
entropy:

    "with a 16-bit PAC under typical AArch64 Linux systems, an attacker
     would require 45425 attempts to achieve a 50 % likelihood for a
     correct guess"  (§VII-E, citing [21])

while 4-bit MTE/ADI tags give only "94 %" single-shot detection (§X).
This module reproduces both numbers analytically and empirically, and
provides the sweep behind the tag-entropy ablation benchmark.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List


def guess_success_probability(bits: int, attempts: int) -> float:
    """P(at least one correct guess in ``attempts`` tries) for a uniform
    ``bits``-wide secret, with the process restarting on each failure
    (the OS kills the process; keys/PACs are re-randomised on restart)."""
    if bits < 1 or attempts < 0:
        raise ValueError("need bits >= 1 and attempts >= 0")
    per_try = 1.0 / (1 << bits)
    return 1.0 - (1.0 - per_try) ** attempts


def attempts_for_likelihood(bits: int, likelihood: float = 0.5) -> int:
    """Attempts needed to approach ``likelihood`` of one correct guess.

    For 16 bits and 50 % this is the paper's 45425 (§VII-E, citing [21]);
    the exact crossing point is 45425.75, floored per the cited source's
    convention.
    """
    if not 0.0 < likelihood < 1.0:
        raise ValueError("likelihood must be in (0, 1)")
    per_try = 1.0 / (1 << bits)
    return math.floor(math.log(1.0 - likelihood) / math.log(1.0 - per_try))


def single_shot_detection(bits: int) -> float:
    """P(one violation attempt is detected) = 1 - 2^-bits.

    4-bit MTE tags give 93.75 % — the "94 %" of §X; a 16-bit PAC gives
    99.998 %.
    """
    return 1.0 - 1.0 / (1 << bits)


@dataclass
class EntropyRow:
    bits: int
    detection: float
    attempts_50: int
    attempts_90: int


def entropy_sweep(bit_widths: List[int] = (4, 8, 11, 16, 24, 32)) -> List[EntropyRow]:
    """The tag/PAC width trade-off table."""
    return [
        EntropyRow(
            bits=bits,
            detection=single_shot_detection(bits),
            attempts_50=attempts_for_likelihood(bits, 0.5),
            attempts_90=attempts_for_likelihood(bits, 0.9),
        )
        for bits in bit_widths
    ]


def empirical_bypass_attempts(bits: int, trials: int = 2000, seed: int = 7) -> float:
    """Monte-Carlo check of the analytic model: average attempts until a
    uniform guesser hits a uniform ``bits``-wide secret."""
    rng = random.Random(seed)
    space = 1 << bits
    total = 0
    for _ in range(trials):
        secret = rng.randrange(space)
        attempts = 1
        while rng.randrange(space) != secret:
            attempts += 1
        total += attempts
    return total / trials

"""Uniform mechanism adapters for the security matrix.

Each adapter exposes the same small surface — ``malloc``, ``free``,
``load``, ``store``, ``offset``, the call-stack ops (``call``, ``ret``,
``smash_ret``) where the mechanism models one, and capability flags — so
the attacks in :mod:`~repro.security.attacks` are written once.
``DETECTION_EXCEPTIONS`` is the set of exception types that count as
"the mechanism detected the violation"; anything else propagates as a
harness bug.  Enumeration (which mechanisms exist, how to build one)
lives in :mod:`repro.mechanisms` — ``MECHANISM_ADAPTERS`` here is a
live read-only view of that registry, kept for its many call sites.
"""

from __future__ import annotations

from typing import Iterator, List, Mapping, Tuple

from ..baselines.cheri import Capability, CheriFault, CheriRuntime, Perm
from ..baselines.cryptsan import CryptSanFault, CryptSanRuntime, MACPointer
from ..baselines.mpx import MPXFault
from ..baselines.mte import MTEFault, MTERuntime, TaggedPointer
from ..baselines.pa import PAFault, PARuntime
from ..baselines.pacsan import PACSanFault, PACSanRuntime, SignedPointer
from ..baselines.pacstack import PACStackFault, PACStackRuntime
from ..baselines.pactight import PACTightFault, PACTightRuntime, SealedPointer
from ..baselines.rest import RedzoneFault, RestRuntime
from ..baselines.watchdog import WatchdogFault, WatchdogPointer, WatchdogRuntime
from ..core.aos import AOSRuntime
from ..core.exceptions import AOSException
from ..errors import AllocatorError
from ..mechanisms.registry import REGISTRY
from ..memory.allocator import HeapAllocator
from ..memory.layout import DEFAULT_LAYOUT
from ..memory.memory import SparseMemory

#: Exception types that count as a successful detection.  The registry
#: union (:meth:`~repro.mechanisms.registry.MechanismRegistry.detection_exceptions`)
#: additionally covers plugin mechanisms registered at runtime.
DETECTION_EXCEPTIONS: Tuple[type, ...] = (
    AOSException,
    WatchdogFault,
    RedzoneFault,
    PAFault,
    MPXFault,
    MTEFault,
    CheriFault,
    CryptSanFault,
    PACSanFault,
    PACTightFault,
    PACStackFault,
    AllocatorError,
)

#: Synthetic call-site base for the modelled return-address stacks.
_CALL_SITE = 0x400000


class BaselineAdapter:
    """An unprotected glibc-style heap: every attack should succeed."""

    name = "baseline"
    signs_pointers = False

    def __init__(self) -> None:
        self.memory = SparseMemory()
        self.allocator = HeapAllocator(self.memory, DEFAULT_LAYOUT)

    def malloc(self, size: int) -> int:
        return self.allocator.malloc(size)

    def free(self, pointer: int):
        self.allocator.free(pointer)
        return pointer  # dangling pointer remains usable

    def load(self, pointer: int, size: int = 8) -> int:
        return int.from_bytes(self.memory.read_bytes(pointer, size), "little")

    def store(self, pointer: int, value: int, size: int = 8) -> None:
        self.memory.write_bytes(
            pointer, (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little")
        )

    def offset(self, pointer: int, delta: int) -> int:
        return pointer + delta

    def raw_write(self, address: int, value: int) -> None:
        """Attacker primitive: arbitrary memory write (threat model §III-D)."""
        self.memory.write_u64(address, value)

    # ------------------------------------------------------------ call stack
    #
    # An unprotected saved-return-address stack: the attacker overwrite in
    # ``smash_ret`` lands silently and ``ret`` follows it.  Lazily created
    # so subclasses with their own __init__ (AOS, PA) inherit it for free.

    def _frames(self) -> list:
        frames = self.__dict__.get("_return_frames")
        if frames is None:
            frames = self.__dict__["_return_frames"] = []
        return frames

    def call(self) -> None:
        frames = self._frames()
        frames.append(_CALL_SITE + 16 * len(frames))

    def smash_ret(self, value: int) -> None:
        """Attacker data-write over the topmost saved return address."""
        frames = self._frames()
        if frames:
            frames[-1] = value if value != frames[-1] else value ^ 0x10

    def ret(self) -> int:
        frames = self._frames()
        return frames.pop() if frames else 0


class AOSAdapter(BaselineAdapter):
    """AOS-protected heap (Fig. 7 instrumentation via AOSRuntime)."""

    name = "aos"
    signs_pointers = True

    def __init__(self, pac_mode: str = "fast") -> None:
        self.runtime = AOSRuntime(pac_mode=pac_mode)
        self.memory = self.runtime.memory
        self.allocator = self.runtime.allocator

    def malloc(self, size: int) -> int:
        return self.runtime.malloc(size)

    def free(self, pointer: int):
        return self.runtime.free(pointer)

    def load(self, pointer: int, size: int = 8) -> int:
        return self.runtime.load(pointer, size)

    def store(self, pointer: int, value: int, size: int = 8) -> None:
        self.runtime.store(pointer, value, size)

    def offset(self, pointer: int, delta: int) -> int:
        return self.runtime.offset(pointer, delta)

    def strip(self, pointer: int) -> int:
        return self.runtime.signer.xpacm(pointer)

    def forge_ahc_zero(self, pointer: int) -> int:
        """Attacker clears the AHC field to dodge bounds checking (§VII-C)."""
        layout = self.runtime.signer.layout
        return pointer & ~layout.ahc_mask

    def forge_pac(self, pointer: int, new_pac: int) -> int:
        layout = self.runtime.signer.layout
        return (pointer & ~layout.pac_mask) | (new_pac << layout.pac_shift)

    def autm(self, pointer: int) -> int:
        """The PA+AOS on-load authentication (Fig. 13)."""
        return self.runtime.signer.autm(pointer)


class PAAOSAdapter(AOSAdapter):
    """PA+AOS (Fig. 13): ``autm`` authenticates every pointer at use.

    Plain AOS skips bounds checks on unsigned pointers, which is the
    §VII-C AHC-zeroing escape; this variant closes it by authenticating on
    every load/store/free, so a zeroed AHC faults before the access."""

    name = "pa+aos"
    signs_pointers = True

    def free(self, pointer: int):
        return super().free(self.autm(pointer))

    def load(self, pointer: int, size: int = 8) -> int:
        return super().load(self.autm(pointer), size)

    def store(self, pointer: int, value: int, size: int = 8) -> None:
        super().store(self.autm(pointer), value, size)

    # PA+AOS keeps the PARTS half: return addresses are signed (Fig. 13's
    # integrated configuration), unlike plain AOS which leaves them raw.

    def call(self) -> None:
        frames = self._frames()
        depth = len(frames)
        lr = _CALL_SITE + 16 * depth
        token = self.runtime.signer.generator.compute(lr, depth, key_name="ia")
        frames.append([lr, token])

    def smash_ret(self, value: int) -> None:
        frames = self._frames()
        if frames:
            frame = frames[-1]
            frame[0] = value if value != frame[0] else value ^ 0x10

    def ret(self) -> int:
        frames = self._frames()
        if not frames:
            return 0
        lr, token = frames.pop()
        expected = self.runtime.signer.generator.compute(
            lr, len(frames), key_name="ia"
        )
        if token != expected:
            raise PAFault(f"return address {lr:#x} fails authentication")
        return lr


class WatchdogAdapter:
    """Watchdog lock-and-key + bounds."""

    name = "watchdog"
    signs_pointers = False

    def __init__(self) -> None:
        self.runtime = WatchdogRuntime()
        self.memory = self.runtime.memory
        self.allocator = self.runtime.allocator

    def malloc(self, size: int) -> WatchdogPointer:
        return self.runtime.malloc(size)

    @staticmethod
    def _require_fat(pointer) -> WatchdogPointer:
        if not isinstance(pointer, WatchdogPointer):
            # An attacker-crafted integer has no register metadata: every
            # Watchdog check µop on it fails by construction.
            raise WatchdogFault("crafted pointer carries no lock/key metadata")
        return pointer

    def free(self, pointer):
        self.runtime.free(self._require_fat(pointer))
        return pointer

    def load(self, pointer, size: int = 8) -> int:
        return self.runtime.load(self._require_fat(pointer), size)

    def store(self, pointer, value: int, size: int = 8) -> None:
        self.runtime.store(self._require_fat(pointer), value, size)

    def offset(self, pointer: WatchdogPointer, delta: int) -> WatchdogPointer:
        return pointer.offset(delta)

    def raw_write(self, address: int, value: int) -> None:
        self.memory.write_u64(address, value)


class RestAdapter:
    """REST-style redzones with a quarantine pool."""

    name = "rest"
    signs_pointers = False

    def __init__(self) -> None:
        self.runtime = RestRuntime()
        self.memory = self.runtime.memory
        self.allocator = self.runtime.allocator

    def malloc(self, size: int) -> int:
        return self.runtime.malloc(size)

    def free(self, pointer: int):
        self.runtime.free(pointer)
        return pointer

    def load(self, pointer: int, size: int = 8) -> int:
        return self.runtime.load(pointer, size)

    def store(self, pointer: int, value: int, size: int = 8) -> None:
        self.runtime.store(pointer, value, size)

    def offset(self, pointer: int, delta: int) -> int:
        return pointer + delta

    def raw_write(self, address: int, value: int) -> None:
        self.memory.write_u64(address, value)


class PAAdapter(BaselineAdapter):
    """PA-only pointer integrity: no spatial/temporal protection."""

    name = "pa"
    signs_pointers = False

    def __init__(self) -> None:
        self.runtime = PARuntime(pac_mode="fast")
        self.memory = self.runtime.memory
        self.allocator = self.runtime.allocator

    def malloc(self, size: int) -> int:
        return self.runtime.malloc(size)

    def free(self, pointer: int):
        self.runtime.free(pointer)
        return pointer

    def load(self, pointer: int, size: int = 8) -> int:
        return self.runtime.load(pointer, size)

    def store(self, pointer: int, value: int, size: int = 8) -> None:
        self.runtime.store(pointer, value, size)

    # PARTS signs return addresses with SP as modifier (Fig. 3).

    def call(self) -> None:
        frames = self._frames()
        depth = len(frames)
        lr = _CALL_SITE + 16 * depth
        frames.append(self.runtime.pacia(lr, self._frame_sp(depth)))

    def ret(self) -> int:
        frames = self._frames()
        if not frames:
            return 0
        signed = frames.pop()
        return self.runtime.autia(signed, self._frame_sp(len(frames)))

    def _frame_sp(self, depth: int) -> int:
        return self.allocator.layout.stack_top - 16 * depth


class MTEAdapter:
    """Arm-MTE/ADI-style 4-bit memory tagging (§X)."""

    name = "mte"
    signs_pointers = False

    def __init__(self) -> None:
        self.runtime = MTERuntime(tag_bits=4)
        self.memory = self.runtime.memory
        self.allocator = self.runtime.allocator

    @staticmethod
    def _as_tagged(pointer) -> TaggedPointer:
        if isinstance(pointer, TaggedPointer):
            return pointer
        # An attacker-crafted integer pointer carries whatever key tag the
        # attacker picked; untagged memory reads as tag 0, so the best
        # strategy is tag 0 (MTE does not tag non-heap regions).
        return TaggedPointer(address=int(pointer), tag=0)

    def malloc(self, size: int) -> TaggedPointer:
        return self.runtime.malloc(size)

    def free(self, pointer):
        return self.runtime.free(self._as_tagged(pointer))

    def load(self, pointer, size: int = 8) -> int:
        return self.runtime.load(self._as_tagged(pointer), size)

    def store(self, pointer, value: int, size: int = 8) -> None:
        self.runtime.store(self._as_tagged(pointer), value, size)

    def offset(self, pointer, delta: int):
        return self._as_tagged(pointer).offset(delta)

    def raw_write(self, address: int, value: int) -> None:
        self.memory.write_u64(address, value)


class CheriAdapter:
    """CHERI-style capabilities (§X): spatial safety by construction,
    temporal safety deferred to revocation sweeps."""

    name = "cheri"
    signs_pointers = False

    def __init__(self) -> None:
        self.runtime = CheriRuntime()
        self.memory = self.runtime.memory
        self.allocator = self.runtime.allocator

    @staticmethod
    def _as_cap(pointer):
        if isinstance(pointer, Capability):
            return pointer
        # A crafted integer is not a tagged capability; every check traps.
        return Capability(
            address=int(pointer), base=int(pointer), length=8,
            perms=Perm.rw(), tag=False,
        )

    def malloc(self, size: int) -> Capability:
        return self.runtime.malloc(size)

    def free(self, pointer):
        return self.runtime.free(self._as_cap(pointer))

    def load(self, pointer, size: int = 8) -> int:
        return self.runtime.load(self._as_cap(pointer), size)

    def store(self, pointer, value: int, size: int = 8) -> None:
        self.runtime.store(self._as_cap(pointer), value, size)

    def offset(self, pointer, delta: int):
        return self._as_cap(pointer).offset(delta)

    def raw_write(self, address: int, value: int) -> None:
        self.memory.write_u64(address, value)


class CryptSanAdapter:
    """CryptSan-style per-object MACs checked on every load/store."""

    name = "cryptsan"
    signs_pointers = False

    def __init__(self) -> None:
        self.runtime = CryptSanRuntime()
        self.memory = self.runtime.memory
        self.allocator = self.runtime.allocator

    @staticmethod
    def _require_mac(pointer) -> MACPointer:
        if not isinstance(pointer, MACPointer):
            # A crafted integer carries no MAC: every granule check fails.
            raise CryptSanFault("crafted pointer carries no MAC")
        return pointer

    def malloc(self, size: int) -> MACPointer:
        return self.runtime.malloc(size)

    def free(self, pointer):
        return self.runtime.free(self._require_mac(pointer))

    def load(self, pointer, size: int = 8) -> int:
        return self.runtime.load(self._require_mac(pointer), size)

    def store(self, pointer, value: int, size: int = 8) -> None:
        self.runtime.store(self._require_mac(pointer), value, size)

    def offset(self, pointer, delta: int) -> MACPointer:
        return self._require_mac(pointer).offset(delta)

    def forge_pac(self, pointer, wrong: int) -> MACPointer:
        """Attacker flips bits in the pointer's MAC field."""
        p = self._require_mac(pointer)
        mask = self.runtime.generator.pac_space - 1
        return MACPointer(p.address, p.base, p.mac ^ ((wrong or 1) & mask))

    def raw_write(self, address: int, value: int) -> None:
        self.memory.write_u64(address, value)


class PACSanAdapter:
    """PACSan-style shadow-metadata PAC checks on every access."""

    name = "pacsan"
    signs_pointers = False

    def __init__(self) -> None:
        self.runtime = PACSanRuntime()
        self.memory = self.runtime.memory
        self.allocator = self.runtime.allocator

    @staticmethod
    def _require_signed(pointer) -> SignedPointer:
        if not isinstance(pointer, SignedPointer):
            raise PACSanFault("crafted pointer carries no signature")
        return pointer

    def malloc(self, size: int) -> SignedPointer:
        return self.runtime.malloc(size)

    def free(self, pointer):
        return self.runtime.free(self._require_signed(pointer))

    def load(self, pointer, size: int = 8) -> int:
        return self.runtime.load(self._require_signed(pointer), size)

    def store(self, pointer, value: int, size: int = 8) -> None:
        self.runtime.store(self._require_signed(pointer), value, size)

    def offset(self, pointer, delta: int) -> SignedPointer:
        return self._require_signed(pointer).offset(delta)

    def forge_pac(self, pointer, wrong: int) -> SignedPointer:
        p = self._require_signed(pointer)
        mask = self.runtime.generator.pac_space - 1
        return SignedPointer(p.address, p.oid, p.pac ^ ((wrong or 1) & mask))

    def raw_write(self, address: int, value: int) -> None:
        self.memory.write_u64(address, value)


class PACTightAdapter:
    """PACTight-style pointer-identity sealing (no bounds checks)."""

    name = "pactight"
    signs_pointers = False

    def __init__(self) -> None:
        self.runtime = PACTightRuntime()
        self.memory = self.runtime.memory
        self.allocator = self.runtime.allocator

    @staticmethod
    def _require_sealed(pointer) -> SealedPointer:
        if not isinstance(pointer, SealedPointer):
            raise PACTightFault("crafted pointer carries no identity seal")
        return pointer

    def malloc(self, size: int) -> SealedPointer:
        return self.runtime.malloc(size)

    def free(self, pointer):
        return self.runtime.free(self._require_sealed(pointer))

    def load(self, pointer, size: int = 8) -> int:
        return self.runtime.load(self._require_sealed(pointer), size)

    def store(self, pointer, value: int, size: int = 8) -> None:
        self.runtime.store(self._require_sealed(pointer), value, size)

    def offset(self, pointer, delta: int) -> SealedPointer:
        return self._require_sealed(pointer).offset(delta)

    def forge_pac(self, pointer, wrong: int) -> SealedPointer:
        p = self._require_sealed(pointer)
        mask = self.runtime.generator.pac_space - 1
        return SealedPointer(p.address, p.base, p.pac ^ ((wrong or 1) & mask))

    def raw_write(self, address: int, value: int) -> None:
        self.memory.write_u64(address, value)

    # PACTight seals return addresses too (its pcptr class).

    def call(self) -> None:
        self.runtime.call(_CALL_SITE + 16 * self.runtime.depth)

    def smash_ret(self, value: int) -> None:
        self.runtime.smash_return(value)

    def ret(self) -> int:
        return self.runtime.ret()


class PACStackAdapter(BaselineAdapter):
    """PACStack-style authenticated return-address chain over a raw heap."""

    name = "pacstack"
    signs_pointers = False

    def __init__(self) -> None:
        super().__init__()
        self.stack = PACStackRuntime()

    def call(self) -> None:
        self.stack.call(_CALL_SITE + 16 * self.stack.depth)

    def smash_ret(self, value: int) -> None:
        self.stack.smash_return(value)

    def ret(self) -> int:
        return self.stack.ret()


class _RegistryAdapters(Mapping):
    """Live ``name -> factory`` view over the mechanism registry, so the
    pre-registry call sites (and tests) keep working unchanged."""

    def __getitem__(self, name: str):
        return REGISTRY.spec(name).factory

    def __iter__(self) -> Iterator[str]:
        return iter(REGISTRY.names())

    def __len__(self) -> int:
        return len(REGISTRY)

    def __contains__(self, name: object) -> bool:
        return name in REGISTRY

    def keys(self) -> List[str]:  # type: ignore[override]
        return REGISTRY.names()


#: Every registered mechanism, in registry order (a live registry view).
MECHANISM_ADAPTERS: Mapping[str, object] = _RegistryAdapters()


def make_adapter(mechanism: str):
    """Instantiate a fresh adapter for ``mechanism`` (strict: an unknown
    name raises :class:`~repro.mechanisms.registry.UnknownMechanismError`
    listing the registered choices)."""
    return REGISTRY.make_adapter(mechanism)

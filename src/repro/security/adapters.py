"""Uniform mechanism adapters for the security matrix.

Each adapter exposes the same small surface — ``malloc``, ``free``,
``load``, ``store``, ``offset`` and capability flags — so the attacks in
:mod:`~repro.security.attacks` are written once.  ``DETECTION_EXCEPTIONS``
is the set of exception types that count as "the mechanism detected the
violation"; anything else propagates as a harness bug.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from ..baselines.cheri import Capability, CheriFault, CheriRuntime, Perm
from ..baselines.mpx import MPXFault
from ..baselines.mte import MTEFault, MTERuntime, TaggedPointer
from ..baselines.pa import PAFault, PARuntime
from ..baselines.rest import RedzoneFault, RestRuntime
from ..baselines.watchdog import WatchdogFault, WatchdogPointer, WatchdogRuntime
from ..core.aos import AOSRuntime
from ..core.exceptions import AOSException
from ..errors import AllocatorError
from ..memory.allocator import HeapAllocator
from ..memory.layout import DEFAULT_LAYOUT
from ..memory.memory import SparseMemory

#: Exception types that count as a successful detection.
DETECTION_EXCEPTIONS: Tuple[type, ...] = (
    AOSException,
    WatchdogFault,
    RedzoneFault,
    PAFault,
    MPXFault,
    MTEFault,
    CheriFault,
    AllocatorError,
)


class BaselineAdapter:
    """An unprotected glibc-style heap: every attack should succeed."""

    name = "baseline"
    signs_pointers = False

    def __init__(self) -> None:
        self.memory = SparseMemory()
        self.allocator = HeapAllocator(self.memory, DEFAULT_LAYOUT)

    def malloc(self, size: int) -> int:
        return self.allocator.malloc(size)

    def free(self, pointer: int):
        self.allocator.free(pointer)
        return pointer  # dangling pointer remains usable

    def load(self, pointer: int, size: int = 8) -> int:
        return int.from_bytes(self.memory.read_bytes(pointer, size), "little")

    def store(self, pointer: int, value: int, size: int = 8) -> None:
        self.memory.write_bytes(
            pointer, (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little")
        )

    def offset(self, pointer: int, delta: int) -> int:
        return pointer + delta

    def raw_write(self, address: int, value: int) -> None:
        """Attacker primitive: arbitrary memory write (threat model §III-D)."""
        self.memory.write_u64(address, value)


class AOSAdapter(BaselineAdapter):
    """AOS-protected heap (Fig. 7 instrumentation via AOSRuntime)."""

    name = "aos"
    signs_pointers = True

    def __init__(self, pac_mode: str = "fast") -> None:
        self.runtime = AOSRuntime(pac_mode=pac_mode)
        self.memory = self.runtime.memory
        self.allocator = self.runtime.allocator

    def malloc(self, size: int) -> int:
        return self.runtime.malloc(size)

    def free(self, pointer: int):
        return self.runtime.free(pointer)

    def load(self, pointer: int, size: int = 8) -> int:
        return self.runtime.load(pointer, size)

    def store(self, pointer: int, value: int, size: int = 8) -> None:
        self.runtime.store(pointer, value, size)

    def offset(self, pointer: int, delta: int) -> int:
        return self.runtime.offset(pointer, delta)

    def strip(self, pointer: int) -> int:
        return self.runtime.signer.xpacm(pointer)

    def forge_ahc_zero(self, pointer: int) -> int:
        """Attacker clears the AHC field to dodge bounds checking (§VII-C)."""
        layout = self.runtime.signer.layout
        return pointer & ~layout.ahc_mask

    def forge_pac(self, pointer: int, new_pac: int) -> int:
        layout = self.runtime.signer.layout
        return (pointer & ~layout.pac_mask) | (new_pac << layout.pac_shift)

    def autm(self, pointer: int) -> int:
        """The PA+AOS on-load authentication (Fig. 13)."""
        return self.runtime.signer.autm(pointer)


class PAAOSAdapter(AOSAdapter):
    """PA+AOS (Fig. 13): ``autm`` authenticates every pointer at use.

    Plain AOS skips bounds checks on unsigned pointers, which is the
    §VII-C AHC-zeroing escape; this variant closes it by authenticating on
    every load/store/free, so a zeroed AHC faults before the access."""

    name = "pa+aos"
    signs_pointers = True

    def free(self, pointer: int):
        return super().free(self.autm(pointer))

    def load(self, pointer: int, size: int = 8) -> int:
        return super().load(self.autm(pointer), size)

    def store(self, pointer: int, value: int, size: int = 8) -> None:
        super().store(self.autm(pointer), value, size)


class WatchdogAdapter:
    """Watchdog lock-and-key + bounds."""

    name = "watchdog"
    signs_pointers = False

    def __init__(self) -> None:
        self.runtime = WatchdogRuntime()
        self.memory = self.runtime.memory
        self.allocator = self.runtime.allocator

    def malloc(self, size: int) -> WatchdogPointer:
        return self.runtime.malloc(size)

    @staticmethod
    def _require_fat(pointer) -> WatchdogPointer:
        if not isinstance(pointer, WatchdogPointer):
            # An attacker-crafted integer has no register metadata: every
            # Watchdog check µop on it fails by construction.
            raise WatchdogFault("crafted pointer carries no lock/key metadata")
        return pointer

    def free(self, pointer):
        self.runtime.free(self._require_fat(pointer))
        return pointer

    def load(self, pointer, size: int = 8) -> int:
        return self.runtime.load(self._require_fat(pointer), size)

    def store(self, pointer, value: int, size: int = 8) -> None:
        self.runtime.store(self._require_fat(pointer), value, size)

    def offset(self, pointer: WatchdogPointer, delta: int) -> WatchdogPointer:
        return pointer.offset(delta)

    def raw_write(self, address: int, value: int) -> None:
        self.memory.write_u64(address, value)


class RestAdapter:
    """REST-style redzones with a quarantine pool."""

    name = "rest"
    signs_pointers = False

    def __init__(self) -> None:
        self.runtime = RestRuntime()
        self.memory = self.runtime.memory
        self.allocator = self.runtime.allocator

    def malloc(self, size: int) -> int:
        return self.runtime.malloc(size)

    def free(self, pointer: int):
        self.runtime.free(pointer)
        return pointer

    def load(self, pointer: int, size: int = 8) -> int:
        return self.runtime.load(pointer, size)

    def store(self, pointer: int, value: int, size: int = 8) -> None:
        self.runtime.store(pointer, value, size)

    def offset(self, pointer: int, delta: int) -> int:
        return pointer + delta

    def raw_write(self, address: int, value: int) -> None:
        self.memory.write_u64(address, value)


class PAAdapter(BaselineAdapter):
    """PA-only pointer integrity: no spatial/temporal protection."""

    name = "pa"
    signs_pointers = False

    def __init__(self) -> None:
        self.runtime = PARuntime(pac_mode="fast")
        self.memory = self.runtime.memory
        self.allocator = self.runtime.allocator

    def malloc(self, size: int) -> int:
        return self.runtime.malloc(size)

    def free(self, pointer: int):
        self.runtime.free(pointer)
        return pointer

    def load(self, pointer: int, size: int = 8) -> int:
        return self.runtime.load(pointer, size)

    def store(self, pointer: int, value: int, size: int = 8) -> None:
        self.runtime.store(pointer, value, size)


class MTEAdapter:
    """Arm-MTE/ADI-style 4-bit memory tagging (§X)."""

    name = "mte"
    signs_pointers = False

    def __init__(self) -> None:
        self.runtime = MTERuntime(tag_bits=4)
        self.memory = self.runtime.memory
        self.allocator = self.runtime.allocator

    @staticmethod
    def _as_tagged(pointer) -> TaggedPointer:
        if isinstance(pointer, TaggedPointer):
            return pointer
        # An attacker-crafted integer pointer carries whatever key tag the
        # attacker picked; untagged memory reads as tag 0, so the best
        # strategy is tag 0 (MTE does not tag non-heap regions).
        return TaggedPointer(address=int(pointer), tag=0)

    def malloc(self, size: int) -> TaggedPointer:
        return self.runtime.malloc(size)

    def free(self, pointer):
        return self.runtime.free(self._as_tagged(pointer))

    def load(self, pointer, size: int = 8) -> int:
        return self.runtime.load(self._as_tagged(pointer), size)

    def store(self, pointer, value: int, size: int = 8) -> None:
        self.runtime.store(self._as_tagged(pointer), value, size)

    def offset(self, pointer, delta: int):
        return self._as_tagged(pointer).offset(delta)

    def raw_write(self, address: int, value: int) -> None:
        self.memory.write_u64(address, value)


class CheriAdapter:
    """CHERI-style capabilities (§X): spatial safety by construction,
    temporal safety deferred to revocation sweeps."""

    name = "cheri"
    signs_pointers = False

    def __init__(self) -> None:
        self.runtime = CheriRuntime()
        self.memory = self.runtime.memory
        self.allocator = self.runtime.allocator

    @staticmethod
    def _as_cap(pointer):
        if isinstance(pointer, Capability):
            return pointer
        # A crafted integer is not a tagged capability; every check traps.
        return Capability(
            address=int(pointer), base=int(pointer), length=8,
            perms=Perm.rw(), tag=False,
        )

    def malloc(self, size: int) -> Capability:
        return self.runtime.malloc(size)

    def free(self, pointer):
        return self.runtime.free(self._as_cap(pointer))

    def load(self, pointer, size: int = 8) -> int:
        return self.runtime.load(self._as_cap(pointer), size)

    def store(self, pointer, value: int, size: int = 8) -> None:
        self.runtime.store(self._as_cap(pointer), value, size)

    def offset(self, pointer, delta: int):
        return self._as_cap(pointer).offset(delta)

    def raw_write(self, address: int, value: int) -> None:
        self.memory.write_u64(address, value)


MECHANISM_ADAPTERS: Dict[str, Callable[[], object]] = {
    "baseline": BaselineAdapter,
    "rest": RestAdapter,
    "pa": PAAdapter,
    "mte": MTEAdapter,
    "cheri": CheriAdapter,
    "watchdog": WatchdogAdapter,
    "aos": AOSAdapter,
    "pa+aos": PAAOSAdapter,
}


def make_adapter(mechanism: str):
    """Instantiate a fresh adapter for ``mechanism``."""
    factory = MECHANISM_ADAPTERS.get(mechanism)
    if factory is None:
        raise KeyError(
            f"unknown mechanism {mechanism!r}; known: {', '.join(MECHANISM_ADAPTERS)}"
        )
    return factory()

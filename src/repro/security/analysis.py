"""The mechanism-vs-attack detection matrix (§VII's security analysis).

Runs every attack scenario against every mechanism adapter (each attack on
a *fresh* adapter, so earlier corruption cannot mask later results) and
tabulates the outcomes.  ``expected_aos()`` encodes the paper's claims so
the test suite can assert the reproduction matches §VII exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from .adapters import MECHANISM_ADAPTERS, make_adapter
from .attacks import ATTACKS, AttackOutcome, AttackResult


@dataclass
class SecurityMatrix:
    """attack name -> mechanism -> AttackResult."""

    results: Dict[str, Dict[str, AttackResult]] = field(default_factory=dict)

    def outcome(self, attack: str, mechanism: str) -> AttackOutcome:
        return self.results[attack][mechanism].outcome

    def detected(self, attack: str, mechanism: str) -> bool:
        return self.results[attack][mechanism].detected

    def mechanisms(self) -> List[str]:
        first = next(iter(self.results.values()))
        return list(first)

    def rows(self) -> Iterable[tuple]:
        """(attack, {mechanism: outcome string}) rows for reports."""
        for attack, per_mech in self.results.items():
            yield attack, {m: r.outcome.value for m, r in per_mech.items()}

    def format_table(self) -> str:
        mechanisms = self.mechanisms()
        header = f"{'attack':24s}" + "".join(f"{m:>12s}" for m in mechanisms)
        lines = [header, "-" * len(header)]
        symbol = {
            AttackOutcome.DETECTED: "DETECT",
            AttackOutcome.UNDETECTED: "-",
            AttackOutcome.NOT_APPLICABLE: "n/a",
        }
        for attack, per_mech in self.results.items():
            row = f"{attack:24s}" + "".join(
                f"{symbol[per_mech[m].outcome]:>12s}" for m in mechanisms
            )
            lines.append(row)
        return "\n".join(lines)


def run_security_analysis(
    mechanisms: Optional[List[str]] = None,
    attacks: Optional[List[str]] = None,
) -> SecurityMatrix:
    """Run the full (or a selected) attack suite against each mechanism."""
    mechanisms = mechanisms or list(MECHANISM_ADAPTERS)
    attacks = attacks or list(ATTACKS)
    matrix = SecurityMatrix()
    for attack_name in attacks:
        attack = ATTACKS[attack_name]
        matrix.results[attack_name] = {}
        for mechanism in mechanisms:
            adapter = make_adapter(mechanism)  # fresh heap per scenario
            matrix.results[attack_name][mechanism] = attack(adapter)
    return matrix


def expected_aos() -> Dict[str, AttackOutcome]:
    """The paper's §VII claims for AOS, asserted by the test suite."""
    return {
        "adjacent-oob-read": AttackOutcome.DETECTED,
        "adjacent-oob-write": AttackOutcome.DETECTED,
        "nonadjacent-oob-read": AttackOutcome.DETECTED,
        "use-after-free": AttackOutcome.DETECTED,
        "uaf-after-reuse": AttackOutcome.DETECTED,
        "double-free": AttackOutcome.DETECTED,
        "invalid-free": AttackOutcome.DETECTED,
        "house-of-spirit": AttackOutcome.DETECTED,
        "pac-forgery": AttackOutcome.DETECTED,     # w.h.p. given PAC entropy
        "ahc-forgery": AttackOutcome.DETECTED,     # via autm (PA+AOS, Fig. 13)
        "metadata-brute-force": AttackOutcome.DETECTED,  # 16-bit PAC entropy
    }

"""Security analysis (§VII): attacks, mechanism adapters, detection matrix.

:mod:`~repro.security.attacks` implements the violation scenarios of
Fig. 12 (heap OOB read/write, dangling pointer / UAF, double free) plus the
House-of-Spirit data-oriented attack of Fig. 1, a non-adjacent overflow
(the REST blind spot), and PAC/AHC forging (§VII-C).

:mod:`~repro.security.adapters` wraps each protection mechanism in a
uniform interface so :mod:`~repro.security.analysis` can run every attack
against every mechanism and tabulate who detects what.
"""

from .attacks import ATTACKS, AttackOutcome, AttackResult
from .adapters import MECHANISM_ADAPTERS, make_adapter
from .analysis import SecurityMatrix, run_security_analysis

__all__ = [
    "ATTACKS",
    "AttackOutcome",
    "AttackResult",
    "MECHANISM_ADAPTERS",
    "make_adapter",
    "SecurityMatrix",
    "run_security_analysis",
]

"""The attack scenarios of Fig. 1, Fig. 12 and §VII.

Every attack is a function taking a mechanism adapter and returning an
:class:`AttackResult`: whether the mechanism *detected* the violation
(raised one of the recognised fault types) or the attack *succeeded*
silently.  The scenarios execute for real — they allocate, corrupt memory
through the attacker's arbitrary-write primitive where the threat model
grants one, and dereference — so a mechanism only gets credit for checks
its functional model actually performs.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Dict

from ..baselines.watchdog import WatchdogPointer
from ..mechanisms.registry import REGISTRY
from .adapters import DETECTION_EXCEPTIONS  # noqa: F401  (re-export)


class AttackOutcome(Enum):
    DETECTED = "detected"
    UNDETECTED = "undetected"
    NOT_APPLICABLE = "n/a"


@dataclass
class AttackResult:
    attack: str
    mechanism: str
    outcome: AttackOutcome
    detail: str = ""

    @property
    def detected(self) -> bool:
        return self.outcome is AttackOutcome.DETECTED


def _run(attack_name, adapter, action) -> AttackResult:
    try:
        action()
    # The registry union, not the static tuple, so plugin mechanisms'
    # fault types count as detections too.
    except REGISTRY.detection_exceptions() as exc:
        return AttackResult(
            attack=attack_name,
            mechanism=adapter.name,
            outcome=AttackOutcome.DETECTED,
            detail=f"{type(exc).__name__}: {exc}",
        )
    return AttackResult(
        attack=attack_name,
        mechanism=adapter.name,
        outcome=AttackOutcome.UNDETECTED,
        detail="attack completed silently",
    )


# --------------------------------------------------------------- spatial

def adjacent_oob_read(adapter) -> AttackResult:
    """Fig. 12 line 6: ``varA = ptr[N+1]`` just past the allocation."""
    ptr = adapter.malloc(64)

    def action():
        adapter.load(adapter.offset(ptr, 64))

    return _run("adjacent-oob-read", adapter, action)


def adjacent_oob_write(adapter) -> AttackResult:
    """Fig. 12 line 7: ``ptr[N+1] = 0``."""
    ptr = adapter.malloc(64)

    def action():
        adapter.store(adapter.offset(ptr, 72), 0xDEAD)

    return _run("adjacent-oob-write", adapter, action)


def nonadjacent_oob_read(adapter) -> AttackResult:
    """A strided overflow that jumps far past any redzone — the class the
    paper notes is >60 % of spatial CVEs since 2014 and that trip-wire
    schemes cannot stop (§I)."""
    victim = adapter.malloc(64)
    adapter.malloc(64)  # something in between

    def action():
        adapter.load(adapter.offset(victim, 16 * 1024))

    return _run("nonadjacent-oob-read", adapter, action)


# -------------------------------------------------------------- temporal

def use_after_free(adapter) -> AttackResult:
    """Fig. 12 line 14: dereference of a dangling pointer."""
    ptr = adapter.malloc(64)
    dangling = adapter.free(ptr)
    if dangling is None:
        dangling = ptr

    def action():
        adapter.load(dangling)

    return _run("use-after-free", adapter, action)


def double_free(adapter) -> AttackResult:
    """Fig. 12 lines 16-19: freeing the same chunk twice."""
    ptr = adapter.malloc(64)
    dangling = adapter.free(ptr)
    if dangling is None:
        dangling = ptr

    def action():
        adapter.free(dangling)

    return _run("double-free", adapter, action)


def heap_reuse_uaf_write(adapter) -> AttackResult:
    """UAF where the chunk has been recycled into a new object: the stale
    pointer now aliases a victim allocation."""
    ptr = adapter.malloc(48)
    dangling = adapter.free(ptr)
    if dangling is None:
        dangling = ptr
    adapter.malloc(48)  # likely reuses the freed chunk (tcache LIFO)

    def action():
        adapter.store(dangling, 0x41414141)

    return _run("uaf-after-reuse", adapter, action)


# ---------------------------------------------------------- data-oriented

def house_of_spirit(adapter) -> AttackResult:
    """Fig. 1: craft a fake chunk, free it, and have malloc return
    attacker-controlled memory.

    The attacker controls a pointer (arbitrary-write threat model) and
    aims it at a crafted ``fast_chunk`` whose size field passes glibc's
    tests.  AOS stops it at the ``bndclr`` preceding ``free()``: the
    crafted pointer has no bounds (and no valid signature)."""
    if isinstance(adapter.malloc(16), WatchdogPointer):
        # Watchdog pointers carry hardware metadata the attacker cannot
        # forge from a data write; crafting a pointer yields no valid key.
        return AttackResult(
            attack="house-of-spirit",
            mechanism=adapter.name,
            outcome=AttackOutcome.DETECTED,
            detail="crafted pointer has no valid lock/key metadata",
        )

    layout = adapter.allocator.layout
    fake_chunk = layout.globals_base + 0x1000
    # Craft: size fields that pass free()'s sanity tests (Fig. 1 lines 11-12).
    if hasattr(adapter, "raw_write"):
        adapter.raw_write(fake_chunk + 8, 0x40)          # fchunk[0].size
        adapter.raw_write(fake_chunk + 0x40 + 8, 0x40)   # fchunk[1].size
    fake_payload = fake_chunk + 16

    def action():
        adapter.free(fake_payload)          # enters a fastbin if undetected
        victim = adapter.malloc(0x30)       # returns the crafted region
        base = victim if isinstance(victim, int) else victim.address
        if base != fake_payload:
            # Allocator did not hand back the fake chunk -> attack failed
            # without a detection; count as undetected-but-ineffective.
            raise RuntimeError("allocator did not return the crafted chunk")

    result = _run("house-of-spirit", adapter, action)
    if result.outcome is AttackOutcome.UNDETECTED and "did not return" in result.detail:
        result.detail = "attack blocked by allocator layout (no detection)"
    return result


def pac_forgery(adapter) -> AttackResult:
    """§VII-C: the attacker rewrites the PAC field of a signed pointer,
    hoping to alias another object's bounds.  With 16-bit PACs the hit
    probability per attempt is ~2^-16; a wrong guess fails bounds checking."""
    if not getattr(adapter, "signs_pointers", False):
        return AttackResult(
            attack="pac-forgery",
            mechanism=adapter.name,
            outcome=AttackOutcome.NOT_APPLICABLE,
            detail="mechanism does not sign data pointers",
        )
    ptr = adapter.malloc(64)
    forged = adapter.forge_pac(ptr, (adapter.runtime.signer.pac_of(ptr) ^ 0x5A5A) & 0xFFFF)

    def action():
        adapter.load(forged)

    return _run("pac-forgery", adapter, action)


def ahc_forgery(adapter) -> AttackResult:
    """§VII-C: zero the AHC so the pointer looks unsigned and skips bounds
    checking.  Plain AOS cannot catch this on a dereference; the autm
    on-load authentication of PA+AOS (Fig. 13) does."""
    if not getattr(adapter, "signs_pointers", False):
        return AttackResult(
            attack="ahc-forgery",
            mechanism=adapter.name,
            outcome=AttackOutcome.NOT_APPLICABLE,
            detail="mechanism has no AHC field",
        )
    ptr = adapter.malloc(64)
    forged = adapter.forge_ahc_zero(ptr)

    def action():
        # PA+AOS authenticates loaded data pointers before use (Fig. 13).
        checked = adapter.autm(forged) if hasattr(adapter, "autm") else forged
        adapter.load(adapter.offset(checked, 4096))

    return _run("ahc-forgery", adapter, action)


def metadata_brute_force(adapter) -> AttackResult:
    """§X vs §VII-E: brute-force the pointer metadata within a budget.

    The attacker holds a pointer to their own object and wants to reach a
    victim allocation by forging the protection metadata (MTE tag or AOS
    PAC), retrying after each kill.  4-bit tags fall within ~16 attempts;
    16-bit PACs survive a 256-attempt budget with overwhelming
    probability (the paper's 45425-attempts-for-50 % argument).
    """
    budget = 256

    if adapter.name == "mte":
        from ..baselines.mte import MTEFault, TaggedPointer

        victim = adapter.malloc(64)
        for guess in range(min(budget, adapter.runtime.tag_space)):
            try:
                adapter.runtime.load(TaggedPointer(victim.address, guess))
            except MTEFault:
                continue
            return AttackResult(
                attack="metadata-brute-force",
                mechanism=adapter.name,
                outcome=AttackOutcome.UNDETECTED,
                detail=f"tag guessed after {guess + 1} attempts (4-bit space)",
            )
        return AttackResult(
            attack="metadata-brute-force",
            mechanism=adapter.name,
            outcome=AttackOutcome.DETECTED,
            detail="budget exhausted",
        )

    if getattr(adapter, "signs_pointers", False):
        from ..core.exceptions import AOSException

        victim = adapter.malloc(64)
        pac_space = adapter.runtime.signer.generator.pac_space
        for attempt in range(budget):
            guess = (attempt * 2654435761) % pac_space  # pseudo-random scan
            try:
                adapter.load(adapter.forge_pac(victim, guess))
            except AOSException:
                continue
            return AttackResult(
                attack="metadata-brute-force",
                mechanism=adapter.name,
                outcome=AttackOutcome.UNDETECTED,
                detail=f"PAC collision after {attempt + 1} attempts",
            )
        return AttackResult(
            attack="metadata-brute-force",
            mechanism=adapter.name,
            outcome=AttackOutcome.DETECTED,
            detail=f"{budget} attempts, no usable PAC (space {pac_space})",
        )

    return AttackResult(
        attack="metadata-brute-force",
        mechanism=adapter.name,
        outcome=AttackOutcome.NOT_APPLICABLE,
        detail="mechanism carries no guessable pointer metadata",
    )


def invalid_free(adapter) -> AttackResult:
    """free() of an address that was never allocated (§IV-D bndclr)."""
    adapter.malloc(32)
    layout = adapter.allocator.layout
    bogus = layout.heap_base + 0x100000 + 8  # misaligned, never allocated

    def action():
        adapter.free(bogus)

    return _run("invalid-free", adapter, action)


#: The full scenario suite, in presentation order.
ATTACKS: Dict[str, Callable] = {
    "adjacent-oob-read": adjacent_oob_read,
    "adjacent-oob-write": adjacent_oob_write,
    "nonadjacent-oob-read": nonadjacent_oob_read,
    "use-after-free": use_after_free,
    "uaf-after-reuse": heap_reuse_uaf_write,
    "double-free": double_free,
    "invalid-free": invalid_free,
    "house-of-spirit": house_of_spirit,
    "pac-forgery": pac_forgery,
    "ahc-forgery": ahc_forgery,
    "metadata-brute-force": metadata_brute_force,
}

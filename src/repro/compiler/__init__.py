"""Compiler substrate: the instrumentation passes of §IV-B/C.

The paper adds two LLVM passes — ``AOS-opt-pass`` detects allocation and
deallocation calls and inserts intrinsics, and ``AOS-backend-pass`` lowers
the intrinsics to ``pacma``/``bndstr``/``bndclr``/``xpacm`` sequences
(Fig. 7).  Our equivalent lowers mechanism-independent workload traces to
concrete instruction streams, one variant per protection mechanism:

========== ==========================================================
baseline    no instrumentation
watchdog    Fig. 5a: check µops, metadata propagation, lock-and-key
pa          PARTS-style return-address + data-pointer integrity
aos         Fig. 5b / Fig. 7: pacma + bndstr / bndclr + xpacm + pacma
pa+aos      AOS plus PA pointer integrity with autm on-load checks
========== ==========================================================
"""

from .passes import (
    LoweredWorkload,
    lower_trace,
    BaselineLowering,
    WatchdogLowering,
    PALowering,
    AOSLowering,
)

__all__ = [
    "LoweredWorkload",
    "lower_trace",
    "BaselineLowering",
    "WatchdogLowering",
    "PALowering",
    "AOSLowering",
]

"""Mechanism-specific lowering of workload traces to instruction streams.

Each lowering executes the trace's allocation sequence against a real
:class:`~repro.memory.allocator.HeapAllocator` (so every mechanism sees the
identical, deterministic address stream) and emits the instrumentation that
mechanism requires.  The AOS lowerings also sign pointers and pre-populate
the HBT with the preamble live set — the objects that were already
allocated when the measured window begins.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..config import SystemConfig, default_config
from ..crypto.pac import PACGenerator, PAKeys
from ..errors import SimulationError, WorkloadError
from ..isa.encoding import PointerLayout
from ..isa.instructions import Op
from ..isa.program import Program, ProgramBuilder
from ..memory.allocator import HeapAllocator
from ..memory.layout import AddressSpaceLayout, DEFAULT_LAYOUT
from ..memory.memory import SparseMemory
from ..memory.shadow import ShadowMemory
from ..core.hbt import HashedBoundsTable
from ..core.signing import PointerSigner
from ..workloads.generator import WorkloadTrace

#: Maximum dependency distance the pipeline's completion ring supports.
MAX_DEP_DISTANCE = 480


@dataclass
class LoweredWorkload:
    """A lowered trace plus the state the simulator needs to run it."""

    name: str
    mechanism: str
    program: Program
    pointer_layout: Optional[PointerLayout] = None
    #: Builds a *fresh* pre-warmed HBT; called once per simulation run so
    #: repeated runs (pytest-benchmark rounds) don't accumulate state.
    hbt_factory: Optional[Callable[[], HashedBoundsTable]] = None
    #: Dynamic-instruction count of the unprotected lowering, for
    #: instruction-overhead reporting (§I's "44 % more dynamic instructions").
    trace_events: int = 0

    @property
    def hbt(self) -> Optional[HashedBoundsTable]:
        """A fresh pre-warmed HBT (None for non-AOS mechanisms)."""
        if self.hbt_factory is None:
            return None
        return self.hbt_factory()


class _LoweringBase:
    """Shared machinery: allocator execution, addresses, dependency dice."""

    mechanism = "baseline"

    def __init__(
        self,
        trace: WorkloadTrace,
        config: Optional[SystemConfig] = None,
        address_layout: AddressSpaceLayout = DEFAULT_LAYOUT,
    ) -> None:
        self.trace = trace
        self.config = config or default_config(self.mechanism)
        self.address_layout = address_layout
        self.memory = SparseMemory()
        self.allocator = HeapAllocator(self.memory, address_layout)
        self.builder = ProgramBuilder(name=f"{trace.name}:{self.mechanism}")
        #: obj id -> pointer handed to the program (signed under AOS).
        self.pointers: Dict[int, int] = {}
        #: Dependency dice — one deterministic stream shared by mechanism
        #: variants (same seed, same draws per event).
        self._dep_rng = random.Random(trace.seed ^ 0x5EED)
        self._last_load_index: Optional[int] = None
        self._stack_hot = address_layout.stack_top - 0x2000

    # ---------------------------------------------------------------- hooks

    def setup_preamble(self) -> None:
        """Allocate the preamble live set (untimed warm state)."""
        for obj, size in self.trace.preamble:
            self.pointers[obj] = self.allocator.malloc(size)

    def lower_malloc(self, obj: int, size: int) -> None:
        self._emit_allocator_work(size)
        self.pointers[obj] = self.allocator.malloc(size)

    def lower_free(self, obj: int) -> None:
        self._emit_allocator_work(0)
        self.allocator.free(self.pointers[obj])

    def lower_heap_load(
        self, obj: int, address: int, is_ptr: bool, chase: bool, dep: int
    ) -> None:
        self._emit_load(address, chase, dep)

    def lower_heap_store(self, obj: int, address: int, is_ptr: bool, dep: int) -> None:
        self._emit_store(address, dep)

    def lower_call(self) -> None:
        self.builder.emit_op(Op.CALL)

    def lower_ret(self) -> None:
        self.builder.emit_op(Op.RET)

    def lower_ptr_arith(self) -> None:
        self.builder.emit_op(Op.ALU)

    # ------------------------------------------------------------ utilities

    def heap_address(self, obj: int, offset: int) -> int:
        return self.pointers[obj] + offset

    def _emit_allocator_work(self, size: int) -> None:
        """The allocator's own footprint: bin search + header update."""
        self.builder.emit_op(Op.ALU)
        self.builder.emit_op(Op.ALU)
        meta = self.address_layout.heap_base + (size % 4096)
        self.builder.emit_op(Op.LOAD, address=meta)
        self.builder.emit_op(Op.STORE, address=meta)

    def _dep_tuple(self, dep: int, extra: Optional[int] = None):
        deps = []
        if dep:
            deps.append(min(dep, MAX_DEP_DISTANCE))
        if extra:
            deps.append(min(extra, MAX_DEP_DISTANCE))
        return tuple(deps)

    def _emit_load(self, address: int, chase: bool, dep: int) -> None:
        extra = None
        if chase and self._last_load_index is not None:
            distance = len(self.builder) - self._last_load_index
            if 0 < distance <= MAX_DEP_DISTANCE:
                extra = distance
        self.builder.emit_op(Op.LOAD, address=address, deps=self._dep_tuple(dep, extra))
        self._last_load_index = len(self.builder) - 1

    def _emit_store(self, address: int, dep: int) -> None:
        self.builder.emit_op(Op.STORE, address=address, deps=self._dep_tuple(dep))

    def _draw_dep(self) -> int:
        """One dependency draw per event — identical across mechanisms."""
        profile = self.trace.profile
        if self._dep_rng.random() < profile.dep_prob:
            return 1 + self._dep_rng.randrange(profile.ilp_distance)
        return 0

    def _unsigned_address(self, kind: int, offset: int) -> int:
        if kind == 0:
            return self._stack_hot + offset
        return self.address_layout.globals_base + offset

    # ------------------------------------------------------------- pipeline

    def lower(self) -> LoweredWorkload:
        self.setup_preamble()
        for event in self.trace.events:
            tag = event[0]
            if tag == "alu":
                dep = self._draw_dep()
                self.builder.emit_op(Op.ALU, deps=self._dep_tuple(dep))
            elif tag == "falu":
                dep = self._draw_dep()
                self.builder.emit_op(Op.FALU, deps=self._dep_tuple(dep))
            elif tag == "ld":
                _, obj, offset, is_ptr, chase = event
                dep = self._draw_dep()
                self.lower_heap_load(obj, self.heap_address(obj, offset), is_ptr, chase, dep)
            elif tag == "st":
                _, obj, offset, is_ptr = event
                dep = self._draw_dep()
                self.lower_heap_store(obj, self.heap_address(obj, offset), is_ptr, dep)
            elif tag == "uld":
                _, kind, offset = event
                dep = self._draw_dep()
                self._emit_load(self._unsigned_address(kind, offset), False, dep)
            elif tag == "ust":
                _, kind, offset = event
                dep = self._draw_dep()
                self._emit_store(self._unsigned_address(kind, offset), dep)
            elif tag == "br":
                self.builder.emit_op(Op.BRANCH, mispredicted=event[1])
            elif tag == "m":
                _, obj, size = event
                self.lower_malloc(obj, size)
            elif tag == "f":
                self.lower_free(event[1])
            elif tag == "call":
                self.lower_call()
            elif tag == "ret":
                self.lower_ret()
            elif tag == "pa":
                self.lower_ptr_arith()
            else:
                raise WorkloadError(f"unknown trace event {tag!r}")
        return self._finish()

    def _finish(self) -> LoweredWorkload:
        return LoweredWorkload(
            name=self.trace.name,
            mechanism=self.mechanism,
            program=self.builder.build(),
            trace_events=len(self.trace.events),
        )


class BaselineLowering(_LoweringBase):
    """No security features: the normalisation denominator of Figs. 14/18."""

    mechanism = "baseline"


class WatchdogLowering(_LoweringBase):
    """Watchdog (Fig. 5a): check µops before every access, lock-and-key
    allocation metadata, and explicit metadata-propagation instructions."""

    mechanism = "watchdog"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.shadow = ShadowMemory(self.memory, self.address_layout)

    def _shadow_addr(self, address: int) -> int:
        heap = self.address_layout
        if heap.in_heap(address):
            return self.shadow.shadow_address(address)
        # Non-heap pointers still have identifier slots in Watchdog.
        span = heap.shadow_size // 2
        return heap.shadow_base + span + (address % span)

    def lower_malloc(self, obj: int, size: int) -> None:
        super().lower_malloc(obj, size)
        # key = unique_id++; lock = new_lock(); *(lock) = key; setid (Fig. 5a).
        self.builder.emit_op(Op.ALU)
        self.builder.emit_op(Op.ALU)
        self.builder.emit_op(Op.STORE, address=self._lock_addr(obj))
        self.builder.emit_op(Op.WMETA)

    def lower_free(self, obj: int) -> None:
        # *(id.lock) = INVALID; add_free_list(lock) (Fig. 5a).
        self.builder.emit_op(Op.STORE, address=self._lock_addr(obj))
        self.builder.emit_op(Op.ALU)
        super().lower_free(obj)

    def _lock_addr(self, obj: int) -> int:
        """One lock word per object: the compact lock-location table that
        Watchdog's check µops read (and its lock-location cache caches)."""
        return self.address_layout.shadow_base + 8 * obj

    def lower_heap_load(
        self, obj: int, address: int, is_ptr: bool, chase: bool, dep: int
    ) -> None:
        # check R2.id µop loads *(id.lock) (Fig. 5a line 14); the access
        # consumes its verdict (precise traps), serialising check->use.
        self.builder.emit_op(Op.WCHK, address=self._lock_addr(obj))
        self._emit_load(address, chase, dep if dep else 1)
        if is_ptr:
            # ld R1.id <- ShadowMem[R2].id: pointer loads pull the stored
            # pointer's metadata from shadow space (a scattered 24B record).
            self.builder.emit_op(
                Op.LOAD, address=self._shadow_addr(address), deps=(1,)
            )

    def lower_heap_store(self, obj: int, address: int, is_ptr: bool, dep: int) -> None:
        self.builder.emit_op(Op.WCHK, address=self._lock_addr(obj))
        self._emit_store(address, dep if dep else 1)
        if is_ptr:
            # ShadowMem[R2].id <- R1.id: metadata propagates with the store.
            self.builder.emit_op(Op.STORE, address=self._shadow_addr(address))

    def lower_ptr_arith(self) -> None:
        # R1.id <- R2.id metadata copy accompanies pointer arithmetic.
        self.builder.emit_op(Op.ALU)
        self.builder.emit_op(Op.WMETA)


class PALowering(_LoweringBase):
    """PARTS-style PA: return-address signing on call/ret plus data-pointer
    on-store signing and on-load authentication (§VII-B, [21])."""

    mechanism = "pa"

    def lower_call(self) -> None:
        self.builder.emit_op(Op.PACIA)
        self.builder.emit_op(Op.CALL)

    def lower_ret(self) -> None:
        self.builder.emit_op(Op.AUTIA)
        self.builder.emit_op(Op.RET, deps=(1,))

    def lower_heap_load(
        self, obj: int, address: int, is_ptr: bool, chase: bool, dep: int
    ) -> None:
        self._emit_load(address, chase, dep)
        if is_ptr:
            self.builder.emit_op(Op.AUTDA, deps=(1,))

    def lower_heap_store(self, obj: int, address: int, is_ptr: bool, dep: int) -> None:
        if is_ptr:
            self.builder.emit_op(Op.PACDA)
            self._emit_store(address, dep if dep else 1)
        else:
            self._emit_store(address, dep)


class RESTLowering(_LoweringBase):
    """REST-style trip-wire timing model [8] (§IV-C's comparison point).

    Allocation writes 64-byte token redzones around each chunk; free
    *poisons the whole chunk with tokens* and parks it in a quarantine
    pool, un-poisoning (and re-writing) it only when the pool recycles the
    chunk.  Those O(object-size) token fills on the free path are exactly
    what the paper credits for most of REST's overhead — "avoiding the use
    of a quarantine pool will be beneficial in terms of performance"
    (§IV-C).  ``quarantine=False`` gives the ablation without temporal
    protection.
    """

    mechanism = "rest"

    #: Token granularity: one 8-byte token store per 64 bytes poisoned
    #: (REST tokens are cache-line granular).
    TOKEN_SPAN = 64
    REDZONE = 64

    def __init__(self, *args, quarantine: bool = True, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.quarantine = quarantine
        self._sizes: Dict[int, int] = {}
        self._pool: List[tuple] = []  # (address, size) awaiting recycling

    def _emit_tokens(self, address: int, length: int) -> None:
        for offset in range(0, max(length, 1), self.TOKEN_SPAN):
            self.builder.emit_op(Op.STORE, address=address + offset, meta="token")

    def lower_malloc(self, obj: int, size: int) -> None:
        super().lower_malloc(obj, size)
        ptr = self.pointers[obj]
        self._sizes[obj] = size
        # Blacklist the surrounding regions (leading + trailing redzones).
        self._emit_tokens(ptr - self.REDZONE, self.REDZONE)
        self._emit_tokens(ptr + size, self.REDZONE)

    def lower_free(self, obj: int) -> None:
        ptr = self.pointers[obj]
        size = self._sizes.get(obj, 64)
        if self.quarantine:
            # Poison the whole chunk and park it (deferred free).
            self._emit_tokens(ptr, size)
            self._pool.append((obj, size))
            if len(self._pool) > 64:
                old_obj, old_size = self._pool.pop(0)
                # Recycling un-poisons the old chunk, then really frees it.
                self._emit_tokens(self.pointers[old_obj], old_size)
                super().lower_free(old_obj)
        else:
            # No quarantine: clear the redzones and free immediately.
            self._emit_tokens(ptr - self.REDZONE, self.REDZONE)
            self._emit_tokens(ptr + size, self.REDZONE)
            super().lower_free(obj)


class MTELowering(_LoweringBase):
    """Memory-tagging (Arm MTE / SPARC ADI) timing model — the §X
    comparison point AOS is positioned against.

    Tag checks ride along with each access (the tag travels with the
    line and is checked in parallel — no added latency per access), but
    allocation and deallocation pay tag-colouring stores: one STG-style
    instruction per pair of 16-byte granules, which is what gives tagging
    its malloc-rate- and object-size-proportional overhead.
    """

    mechanism = "mte"

    #: Granules coloured per stg-like instruction (ST2G colours 32 B).
    GRANULES_PER_STG = 2

    def _emit_colouring(self, address: int, size: int) -> None:
        granules = max(1, (size + 15) // 16)
        stores = (granules + self.GRANULES_PER_STG - 1) // self.GRANULES_PER_STG
        for i in range(stores):
            # Tag stores touch the object's own lines (tags travel with
            # the data in the modelled hierarchy).
            self.builder.emit_op(Op.STORE, address=address + 32 * i, meta="stg")

    def lower_malloc(self, obj: int, size: int) -> None:
        super().lower_malloc(obj, size)
        self.builder.emit_op(Op.ALU)  # IRG: draw a random tag
        self._emit_colouring(self.pointers[obj], size)

    def lower_free(self, obj: int) -> None:
        ptr = self.pointers[obj]
        # Re-colour on free (temporal protection), then release.
        size = self.allocator.allocated_size(ptr)
        self._emit_colouring(ptr, size)
        super().lower_free(obj)


class PACStackLowering(_LoweringBase):
    """PACStack: an authenticated return-address chain and nothing else.

    Each call chains the new return address to the previous authentication
    token (one ``pacia``), each return verifies it (one ``autia``); the
    heap path is byte-for-byte the baseline lowering.  The cheapest of the
    PA-based related-work points — and the narrowest.
    """

    mechanism = "pacstack"

    def lower_call(self) -> None:
        self.builder.emit_op(Op.PACIA)
        self.builder.emit_op(Op.CALL)

    def lower_ret(self) -> None:
        self.builder.emit_op(Op.AUTIA)
        self.builder.emit_op(Op.RET, deps=(1,))


class PACTightLowering(PALowering):
    """PACTight: identity-sealed pointers over the PA data-path lowering.

    On top of PARTS-style call/ret and pointer-move signing, allocation
    draws a per-object identity tag and seals the new pointer with it
    (tag-table store + ``pacda``); free authenticates the seal and
    destroys the tag (``autda`` + tag-table store).  No bounds checks —
    per-access cost is identical to plain PA.
    """

    mechanism = "pactight"

    def _tag_addr(self, obj: int) -> int:
        return self.address_layout.shadow_base + 8 * obj

    def lower_malloc(self, obj: int, size: int) -> None:
        super().lower_malloc(obj, size)
        # tag = random_tag(); tag_table[obj] = tag ; seal = pacda(ptr, tag)
        self.builder.emit_op(Op.ALU)
        self.builder.emit_op(Op.STORE, address=self._tag_addr(obj), meta="tag")
        self.builder.emit_op(Op.PACDA)

    def lower_free(self, obj: int) -> None:
        # autda(ptr, tag_table[obj]) ; tag_table[obj] = INVALID
        self.builder.emit_op(Op.LOAD, address=self._tag_addr(obj))
        self.builder.emit_op(Op.AUTDA, deps=(1,))
        self.builder.emit_op(Op.STORE, address=self._tag_addr(obj), meta="tag")
        super().lower_free(obj)


class PACSanLowering(_LoweringBase):
    """PACSan: shadow-metadata PAC checks on *every* heap access.

    Allocation signs a shadow record (base, size, liveness) for the new
    object; every load and store first loads that record and authenticates
    the pointer against it (shadow ``load`` + ``autda``), serialising
    check before use — the sanitizer-style always-checked point in the
    Pareto plot.
    """

    mechanism = "pacsan"

    def _shadow_addr(self, obj: int) -> int:
        return self.address_layout.shadow_base + 16 * obj

    def lower_malloc(self, obj: int, size: int) -> None:
        super().lower_malloc(obj, size)
        # shadow[obj] = pacda(base, oid) || (base, size, alive)
        self.builder.emit_op(Op.PACDA)
        self.builder.emit_op(Op.STORE, address=self._shadow_addr(obj), meta="shadow")

    def lower_free(self, obj: int) -> None:
        # Authenticate, then clear the liveness bit in the shadow record.
        self.builder.emit_op(Op.LOAD, address=self._shadow_addr(obj))
        self.builder.emit_op(Op.AUTDA, deps=(1,))
        self.builder.emit_op(Op.STORE, address=self._shadow_addr(obj), meta="shadow")
        super().lower_free(obj)

    def lower_heap_load(
        self, obj: int, address: int, is_ptr: bool, chase: bool, dep: int
    ) -> None:
        self.builder.emit_op(Op.LOAD, address=self._shadow_addr(obj))
        self.builder.emit_op(Op.AUTDA, deps=(1,))
        self._emit_load(address, chase, dep if dep else 1)

    def lower_heap_store(self, obj: int, address: int, is_ptr: bool, dep: int) -> None:
        self.builder.emit_op(Op.LOAD, address=self._shadow_addr(obj))
        self.builder.emit_op(Op.AUTDA, deps=(1,))
        self._emit_store(address, dep if dep else 1)


class CryptSanLowering(_LoweringBase):
    """CryptSan: per-object MACs over 16-byte granules, checked everywhere.

    Allocation computes the object MAC (``pacma``) and tags every granule
    (one tag store per 16 B — twice MTE's colouring traffic); free
    re-authenticates and untags.  Every access recomputes and compares the
    MAC (``autda`` on the QARMA-latency path), making this the heaviest —
    and spatially/temporally strongest — related-work point.
    """

    mechanism = "cryptsan"

    GRANULE = 16

    def _emit_granule_tags(self, address: int, size: int) -> None:
        for offset in range(0, max(size, 1), self.GRANULE):
            self.builder.emit_op(
                Op.STORE, address=address + offset, meta="mac-tag"
            )

    def lower_malloc(self, obj: int, size: int) -> None:
        super().lower_malloc(obj, size)
        self.builder.emit_op(Op.PACMA)  # MAC over (base, version)
        self._emit_granule_tags(self.pointers[obj], size)

    def lower_free(self, obj: int) -> None:
        ptr = self.pointers[obj]
        size = self.allocator.allocated_size(ptr)
        self.builder.emit_op(Op.AUTDA)  # authenticate before releasing
        self._emit_granule_tags(ptr, size)  # untag
        super().lower_free(obj)

    def lower_heap_load(
        self, obj: int, address: int, is_ptr: bool, chase: bool, dep: int
    ) -> None:
        self.builder.emit_op(Op.AUTDA)  # MAC check gates the access
        self._emit_load(address, chase, dep if dep else 1)

    def lower_heap_store(self, obj: int, address: int, is_ptr: bool, dep: int) -> None:
        self.builder.emit_op(Op.AUTDA)
        self._emit_store(address, dep if dep else 1)


class AOSLowering(_LoweringBase):
    """AOS (Fig. 7): sign heap pointers, manage bounds, no per-access
    instrumentation.  ``pa_integrity=True`` gives the PA+AOS configuration:
    call/ret signing plus 1-cycle ``autm`` on-load authentication."""

    mechanism = "aos"

    def __init__(
        self,
        trace: WorkloadTrace,
        config: Optional[SystemConfig] = None,
        address_layout: AddressSpaceLayout = DEFAULT_LAYOUT,
        pa_integrity: bool = False,
        pac_mode: str = "fast",
    ) -> None:
        if pa_integrity:
            self.mechanism = "pa+aos"
        super().__init__(trace, config, address_layout)
        self.pa_integrity = pa_integrity

        # Scale the PAC space with the live-set scale so HBT occupancy per
        # row matches the full-size system (see workloads.generator).
        scale_bits = int(math.log2(trace.scale)) if trace.scale > 1 else 0
        self.pac_bits = max(11, self.config.pa.pac_bits - scale_bits)
        self.pointer_layout = PointerLayout(pac_bits=self.pac_bits)
        generator = PACGenerator(
            keys=PAKeys(apma=self.config.pa.key),
            pac_bits=self.pac_bits,
            mode=pac_mode,
        )
        self.signer = PointerSigner(generator=generator, layout=self.pointer_layout)
        self.sp = address_layout.stack_top - 0x100
        #: (pac, address, size) triples pre-inserted into every fresh HBT.
        self._preamble_bounds: List[tuple] = []
        #: Preamble-warmed HBT the factory clones per run (built lazily on
        #: the first run instead of re-walking every preamble insert).
        self._hbt_prototype: Optional[HashedBoundsTable] = None

    # ------------------------------------------------------------- preamble

    def setup_preamble(self) -> None:
        # Allocate first (malloc order defines the address layout), then
        # sign the whole preamble in one batch: QARMA mode vectorises the
        # PAC computation instead of one scalar permutation per object.
        sizes = [size for _, size in self.trace.preamble]
        raws = [self.allocator.malloc(size) for size in sizes]
        layout = self.pointer_layout
        for (obj, size), signed in zip(
            self.trace.preamble, self.signer.pacma_batch(raws, self.sp, sizes)
        ):
            self.pointers[obj] = signed
            self._preamble_bounds.append(
                (layout.pac(signed), layout.address(signed), size)
            )

    def _make_hbt(self) -> HashedBoundsTable:
        if self._hbt_prototype is None:
            hbt = HashedBoundsTable(
                pac_bits=self.pac_bits,
                initial_ways=self.config.hbt.initial_ways,
                layout=self.address_layout,
                compression=self.config.aos.bounds_compression,
            )
            for pac, address, size in self._preamble_bounds:
                self._insert_with_resize(hbt, pac, address, size)
            self._hbt_prototype = hbt
        return self._hbt_prototype.clone()

    @staticmethod
    def _insert_with_resize(
        hbt: HashedBoundsTable, pac: int, lower: int, size: int
    ) -> None:
        while True:
            try:
                hbt.insert(pac, lower, size)
                return
            except SimulationError:
                # Insertion failure -> AOS exception -> OS resize (§IV-D).
                hbt.begin_resize()
                hbt.finish_resize()

    # ------------------------------------------------------------ lowerings

    def lower_malloc(self, obj: int, size: int) -> None:
        self._emit_allocator_work(size)
        raw = self.allocator.malloc(size)
        signed = self.signer.pacma(raw, self.sp, size)
        self.pointers[obj] = signed
        # Fig. 7a: pacma ptr, sp, size ; bndstr ptr, size
        self.builder.emit_op(Op.PACMA, address=signed, size=size)
        self.builder.emit_op(Op.BNDSTR, address=signed, size=size, deps=(1,))

    def lower_free(self, obj: int) -> None:
        signed = self.pointers[obj]
        # Fig. 7b: bndclr ; xpacm ; free() ; pacma ptr, sp, xzr
        self.builder.emit_op(Op.BNDCLR, address=signed)
        self.builder.emit_op(Op.XPACM)
        stripped = self.signer.xpacm(signed)
        self._emit_allocator_work(0)
        self.allocator.free(stripped)
        self.builder.emit_op(Op.PACMA, address=stripped, size=0)
        self.pointers[obj] = self.signer.pacma(stripped, self.sp, 0)

    def lower_heap_load(
        self, obj: int, address: int, is_ptr: bool, chase: bool, dep: int
    ) -> None:
        self._emit_load(address, chase, dep)
        if self.pa_integrity and is_ptr:
            # Fig. 13: on-load authentication with autm (1 cycle, no QARMA).
            self.builder.emit_op(Op.AUTM, deps=(1,))

    def lower_call(self) -> None:
        if self.pa_integrity:
            self.builder.emit_op(Op.PACIA)
        self.builder.emit_op(Op.CALL)

    def lower_ret(self) -> None:
        if self.pa_integrity:
            self.builder.emit_op(Op.AUTIA)
            self.builder.emit_op(Op.RET, deps=(1,))
        else:
            self.builder.emit_op(Op.RET)

    def _finish(self) -> LoweredWorkload:
        return LoweredWorkload(
            name=self.trace.name,
            mechanism=self.mechanism,
            program=self.builder.build(),
            pointer_layout=self.pointer_layout,
            hbt_factory=self._make_hbt,
            trace_events=len(self.trace.events),
        )


_LOWERINGS = {
    "baseline": BaselineLowering,
    "watchdog": WatchdogLowering,
    "pa": PALowering,
    "mte": MTELowering,
    "rest": RESTLowering,
    "pacstack": PACStackLowering,
    "pactight": PACTightLowering,
    "pacsan": PACSanLowering,
    "cryptsan": CryptSanLowering,
}


def resolve_lowering(mechanism: str) -> str:
    """Map a registered mechanism name to its lowering token.

    Known lowering tokens pass through; anything else is looked up in the
    mechanism registry, whose :class:`~repro.mechanisms.registry.MechanismSpec`
    may alias an existing lowering (how a plugin reuses, say, the baseline
    timing model).  Untimed mechanisms (``lowering=None``) and unknown
    names raise :class:`~repro.errors.WorkloadError`.
    """
    if mechanism in _LOWERINGS or mechanism in ("aos", "pa+aos"):
        return mechanism
    from ..mechanisms.registry import REGISTRY

    if mechanism in REGISTRY:
        alias = REGISTRY.spec(mechanism).lowering
        if alias is not None and alias != mechanism:
            return resolve_lowering(alias)
        raise WorkloadError(
            f"mechanism {mechanism!r} has no timing lowering (untimed)"
        )
    raise WorkloadError(f"unknown mechanism {mechanism!r}")


def lower_trace(
    trace: WorkloadTrace,
    mechanism: str,
    config: Optional[SystemConfig] = None,
    pac_mode: str = "fast",
) -> LoweredWorkload:
    """Lower ``trace`` for one protection mechanism."""
    mechanism = resolve_lowering(mechanism)
    if mechanism in _LOWERINGS:
        lowering = _LOWERINGS[mechanism](trace, config)
    elif mechanism == "aos":
        lowering = AOSLowering(trace, config, pa_integrity=False, pac_mode=pac_mode)
    else:
        lowering = AOSLowering(trace, config, pa_integrity=True, pac_mode=pac_mode)
    return lowering.lower()

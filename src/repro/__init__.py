"""AOS — Hardware-based Always-On Heap Memory Safety (MICRO 2020).

A complete Python reproduction of Kim, Lee & Kim's AOS: the Arm-PA-based
bounds-checking mechanism (pointer signing with PAC+AHC, the hashed bounds
table, the memory check unit) together with every substrate its evaluation
depends on — a QARMA-64 cipher, a glibc-style heap allocator, a cache
hierarchy, an out-of-order core timing model, the compiler instrumentation
passes, baseline mechanisms (Watchdog, PA/PARTS, REST, MPX) and a
synthetic-workload harness calibrated to the paper's published SPEC 2006
profiles.

Quickstart::

    from repro import AOSRuntime
    from repro.core.exceptions import BoundsCheckFault

    rt = AOSRuntime()
    p = rt.malloc(64)          # signed pointer: PAC + AHC in the upper bits
    rt.store(p, 0x1234)        # bounds-checked
    try:
        rt.load(rt.offset(p, 128))   # out of bounds
    except BoundsCheckFault:
        print("spatial violation detected")

See ``examples/`` for runnable scenarios and ``benchmarks/`` for the
regeneration of every table and figure in the paper's evaluation.
"""

from .config import (
    AOSOptions,
    BWBConfig,
    CacheConfig,
    CoreConfig,
    HBTConfig,
    MemoryHierarchyConfig,
    PAConfig,
    SystemConfig,
    default_config,
)
from .core.aos import AOSRuntime
from .core.exceptions import (
    AOSException,
    AuthenticationFault,
    BoundsCheckFault,
    BoundsClearFault,
    BoundsStoreFault,
)
from .cpu.core import SimulationResult, Simulator
from .compiler import LoweredWorkload, lower_trace
from .os.process import Process
from .workloads import generate_trace, get_profile

__version__ = "1.0.0"

__all__ = [
    "AOSRuntime",
    "Process",
    "Simulator",
    "SimulationResult",
    "LoweredWorkload",
    "lower_trace",
    "generate_trace",
    "get_profile",
    "default_config",
    "SystemConfig",
    "CoreConfig",
    "CacheConfig",
    "MemoryHierarchyConfig",
    "PAConfig",
    "HBTConfig",
    "BWBConfig",
    "AOSOptions",
    "AOSException",
    "BoundsCheckFault",
    "BoundsClearFault",
    "BoundsStoreFault",
    "AuthenticationFault",
    "__version__",
]

"""Cross-cell batching: advance many specialized runs in lockstep.

Not a fourth kernel — a *driver* over the specialized one.  Each
(workload, mechanism, seed) cell contributes one **lane**: a generated
specialized-kernel generator (:func:`repro.kernel.specialize.start_specialized`)
operating over its own structure-of-arrays columns from
:mod:`repro.kernel.flatten`.  One loop here round-robins ``next()`` across
all live lanes, so a whole campaign slice advances in lockstep chunks of
``CHUNK_MASK + 1`` instructions per lane instead of cell-at-a-time.

Results are byte-identical to per-cell runs by construction — each lane is
exactly the generator a solo ``kernel="specialized"`` run would drive, over
its own private hierarchy/MCU/HBT state; only the interleaving of Python
frames differs.  The same guard/fallback contract applies per lane: a
:class:`~repro.kernel.specialize.GuardAbort` (including the injection seam)
discards that lane's mutated state and reruns just that cell from pristine
state on the reference kernel, while the other lanes keep lockstepping.

Cells whose (profile × mechanism × config) has no cached specialization yet
are **training cells**: they run eagerly up front via ``Simulator.run``
(which executes the fast kernel and compiles the specialization), so later
cells in the same batch — e.g. other seeds of the same profile — join the
lockstep. Campaigns batch automatically through
:func:`repro.experiments.parallel.run_cells` / ``ExperimentSuite`` and the
queue workers (``batch="auto"``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence

from ..config import SystemConfig
from . import specialize as spec_mod

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cpu.core import SimulationResult, Simulator
    from ..obs import Observability


@dataclass
class BatchCell:
    """One cell handed to :func:`run_batch`.

    ``lowered`` is a :class:`~repro.compiler.passes.LoweredWorkload` or a
    bare :class:`~repro.isa.program.Program` — anything ``Simulator.run``
    accepts.  ``guard_inject`` is this cell's deterministic abort seam
    (see :func:`repro.kernel.specialize.parse_injection`); ``inspect`` is
    the post-drain audit hook, as in ``Simulator.run``.
    """

    label: str
    config: SystemConfig
    lowered: object
    obs: Optional["Observability"] = None
    guard_inject: str = ""
    inspect: Optional[Callable] = None


@dataclass
class BatchStats:
    """Process-wide accounting for the lockstep driver."""

    batches: int = 0
    cells: int = 0
    lockstepped: int = 0   # cells that ran as lockstep lanes to completion
    trained: int = 0       # cells that ran eagerly as training runs
    solo: int = 0          # cells routed to plain Simulator.run (traced obs)
    fell_back: int = 0     # lanes aborted by a guard and rerun on reference
    rounds: int = 0        # lockstep rounds driven (max over lanes per batch)

    def reset(self) -> None:
        self.batches = 0
        self.cells = 0
        self.lockstepped = 0
        self.trained = 0
        self.solo = 0
        self.fell_back = 0
        self.rounds = 0


STATS = BatchStats()


@dataclass
class _Lane:
    """One live lockstep lane: a started specialized generator + its state."""

    index: int
    cell: BatchCell
    sim: "Simulator"
    gen: object
    name: str
    hierarchy: object
    mcu: object
    hbt: object


def _fallback(sim: "Simulator", cell: BatchCell) -> "SimulationResult":
    """Rerun one aborted cell from pristine state on the reference kernel."""
    from ..cpu.pipeline import PipelineModel

    program, name, hierarchy, mcu, va_mask, hbt = sim._wire(cell.lowered)
    pipeline = PipelineModel(
        sim.config, hierarchy, mcu=mcu, va_mask=va_mask, obs=sim.obs
    )
    result = pipeline.run(program)
    if cell.inspect is not None:
        cell.inspect(mcu, hbt)
    STATS.fell_back += 1
    return sim._assemble(result, name, hierarchy, mcu, hbt)


def run_batch(cells: Sequence[BatchCell]) -> List["SimulationResult"]:
    """Run a batch of cells, lockstepping every specialized lane.

    Returns one :class:`~repro.cpu.core.SimulationResult` per cell, in
    input order, byte-identical to what per-cell ``Simulator.run`` calls
    with ``kernel="specialized"`` would produce.

    Cells are admitted **in order**, so a training cell compiles the
    specialization that later same-profile cells (other seeds) then join
    the lockstep with; a traced cell (``obs.tracer`` set) is routed to a
    plain per-cell run, matching the solo dispatcher.
    """
    from ..cpu.core import Simulator

    results: List[Optional["SimulationResult"]] = [None] * len(cells)
    lanes: List[_Lane] = []
    STATS.batches += 1
    STATS.cells += len(cells)

    for index, cell in enumerate(cells):
        sim = Simulator(
            cell.config,
            obs=cell.obs,
            kernel="specialized",
            guard_inject=cell.guard_inject,
        )
        if cell.obs is not None and cell.obs.tracer is not None:
            # Traced runs never specialize (same rule as Simulator.run).
            results[index] = sim.run(cell.lowered, inspect=cell.inspect)
            STATS.solo += 1
            continue
        name = cell.lowered.name
        spec = spec_mod.lookup(name, cell.config)
        if spec is None:
            # Training cell: run eagerly so the rest of the batch can
            # join the lockstep (Simulator.run trains and compiles).
            results[index] = sim.run(cell.lowered, inspect=cell.inspect)
            STATS.trained += 1
            continue
        program, name, hierarchy, mcu, va_mask, hbt = sim._wire(cell.lowered)
        try:
            gen = spec_mod.start_specialized(
                spec, cell.config, hierarchy, mcu, va_mask, program,
                inject=sim.guard_inject,
            )
        except spec_mod.GuardAbort as exc:
            # Pre-run guard (geometry/kinds): nothing mutated; rerun solo.
            spec_mod.record_abort(exc, sim.obs)
            results[index] = _fallback(sim, cell)
            continue
        lanes.append(_Lane(index, cell, sim, gen, name, hierarchy, mcu, hbt))

    # Lockstep: one chunk per live lane per round, in cell order.
    while lanes:
        STATS.rounds += 1
        for lane in list(lanes):
            try:
                next(lane.gen)
            except StopIteration as stop:
                if lane.cell.inspect is not None:
                    lane.cell.inspect(lane.mcu, lane.hbt)
                results[lane.index] = lane.sim._assemble(
                    stop.value, lane.name, lane.hierarchy, lane.mcu, lane.hbt
                )
                STATS.lockstepped += 1
                lanes.remove(lane)
            except spec_mod.GuardAbort as exc:
                spec_mod.record_abort(exc, lane.sim.obs)
                results[lane.index] = _fallback(lane.sim, lane.cell)
                lanes.remove(lane)

    return results  # type: ignore[return-value]

"""Simulation kernels: reference semantics, fast path, and specialization.

Three kernels execute a lowered program:

- ``"reference"``   — :class:`repro.cpu.pipeline.PipelineModel`, the readable
  scoreboard model that defines the simulator's semantics;
- ``"fast"``        — :func:`repro.kernel.fast.run_fast`, a flattened/inlined
  transcription of the same arithmetic, byte-identical by contract
  (``tests/test_kernel_equivalence.py``) and ~2x+ faster;
- ``"specialized"`` — :mod:`repro.kernel.specialize`, trace-speculative
  straight-line code generated from a training run (the first run of each
  workload profile × mechanism trains via the fast kernel), guarded so any
  behaviour outside the trained envelope falls back to the reference kernel
  with byte-identical results.

Cross-cell batching (:mod:`repro.kernel.batch`) is not a fourth kernel but a
driver: it advances many specialized runs in lockstep from one loop.

The kernel is selected per run via ``RunSettings.kernel`` (or the
``--kernel`` CLI flag) and participates in artifact-cache fingerprints, so
cached results never silently mix kernels.
"""

from __future__ import annotations

from ..errors import ConfigError

#: Valid kernel names, reference first (the default).
KERNELS = ("reference", "fast", "specialized")


def validate_kernel(name: str) -> str:
    """Return ``name`` if it names a kernel, else raise :class:`ConfigError`."""
    if name not in KERNELS:
        raise ConfigError(
            f"unknown simulation kernel {name!r}; expected one of {', '.join(KERNELS)}"
        )
    return name

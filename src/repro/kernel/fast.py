"""The fast-path simulation kernel.

``run_fast`` reproduces :meth:`repro.cpu.pipeline.PipelineModel.run`
*exactly* — same floating-point operations in the same order, same queue
disciplines, same counter semantics — while eliminating the per-instruction
Python overhead the reference pays:

- instruction dispatch reads precomputed kind codes from flattened columns
  (:mod:`repro.kernel.flatten`) instead of chained ``Op`` identity tests;
- cache accesses run through closures that inline ``Cache.access`` +
  ``MemoryHierarchy._access_through`` with local counters, flushed into the
  real ``CacheStats``/``TrafficCounters`` objects after the run;
- the MCU's selective bounds check (decode, forwarding, BWB lookup, the
  Fig. 8a way walk, bounds compare) is inlined with local stat counters,
  skipping the per-check ``SignedPointer``/``MCQEntry``/``ValidationResult``
  allocations of the reference path;
- the rare paths — ``bndstr``/``bndclr`` — call straight into the real
  :class:`~repro.core.mcu.MemoryCheckUnit`, so table mutation, resizing and
  fault-injection seams behave identically by construction.

The equivalence contract is enforced by ``tests/test_kernel_equivalence.py``:
byte-identical ``SimulationResult`` payloads and metrics snapshots against
the reference kernel.  Two deliberate boundaries keep that contract simple:

- **event tracing**: a run with a live tracer is not a performance run, so
  the dispatcher (:meth:`repro.cpu.core.Simulator.run`) routes traced runs
  to the reference kernel — the fast path would otherwise have to replicate
  every ``emit`` site.  ``run_fast`` refuses a tracer-bearing ``obs``.
- **metrics**: counters are accumulated in locals and published through the
  exact same ``stats`` objects ``publish_metrics`` harvests, so metrics-only
  observability (``tracing=False``) runs the true fast path.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from ..cache.hierarchy import MemoryHierarchy
from ..config import SystemConfig
from ..core.mcu import MemoryCheckUnit
from ..cpu.pipeline import _FRONTEND_DEPTH, _RING, _RING_MASK, PipelineResult
from ..errors import SimulationError
from ..isa.program import Program
from .flatten import flatten_program

#: Sentinel distinguishing "tag absent" from any stored dirty bit.
_MISS = object()


def _make_l1_access(l1, l2, line_bytes, dram_latency, l2c, tr):
    """Build an inlined L1→L2→DRAM access path for one L1 cache.

    Returns ``(access, flush)``: ``access(address, is_write) -> latency``
    replays ``MemoryHierarchy._access_through`` against the cache's real
    ``_sets`` dictionaries with L1 counters held in closure locals; ``flush``
    adds those locals into ``l1.stats``.  L2/traffic counters are shared
    across closures via the ``l2c``/``tr`` lists (two L1s drain into one L2).
    """
    l1_sets = l1._sets
    l1_nsets = l1.num_sets
    l1_bits = l1.line_bits
    l1_assoc = l1.assoc
    l1_lat = l1.hit_latency
    l2_sets = l2._sets
    l2_nsets = l2.num_sets
    l2_bits = l2.line_bits
    l2_assoc = l2.assoc
    l2_lat = l2.hit_latency
    accesses = hits = misses = evictions = writebacks = 0

    def access(address, is_write):
        nonlocal accesses, hits, misses, evictions, writebacks
        accesses += 1
        line = address >> l1_bits
        index = line % l1_nsets
        tag = line // l1_nsets
        s = l1_sets[index]
        dirty = s.pop(tag, _MISS)
        if dirty is not _MISS:
            hits += 1
            s[tag] = dirty or is_write
            return l1_lat
        misses += 1
        wb_line = -1
        if len(s) >= l1_assoc:
            victim_tag = next(iter(s))
            victim_dirty = s.pop(victim_tag)
            evictions += 1
            if victim_dirty:
                writebacks += 1
                wb_line = (victim_tag * l1_nsets + index) << l1_bits
        s[tag] = is_write
        # L2 refill on behalf of the L1 miss (read, never a write).
        tr[0] += line_bytes
        l2c[0] += 1
        line2 = address >> l2_bits
        s2 = l2_sets[line2 % l2_nsets]
        tag2 = line2 // l2_nsets
        latency = l1_lat + l2_lat
        dirty2 = s2.pop(tag2, _MISS)
        if dirty2 is not _MISS:
            l2c[1] += 1
            s2[tag2] = dirty2
        else:
            l2c[2] += 1
            if len(s2) >= l2_assoc:
                victim_dirty2 = s2.pop(next(iter(s2)))
                l2c[3] += 1
                if victim_dirty2:
                    l2c[4] += 1
                    tr[1] += line_bytes
            s2[tag2] = False
            tr[1] += line_bytes
            tr[2] += 1
            latency += dram_latency
        # Dirty L1 victim pushed down into the L2 (write, no latency cost).
        if wb_line >= 0:
            tr[0] += line_bytes
            l2c[0] += 1
            line3 = wb_line >> l2_bits
            s3 = l2_sets[line3 % l2_nsets]
            tag3 = line3 // l2_nsets
            dirty3 = s3.pop(tag3, _MISS)
            if dirty3 is not _MISS:
                l2c[1] += 1
                s3[tag3] = True
            else:
                l2c[2] += 1
                if len(s3) >= l2_assoc:
                    victim_dirty3 = s3.pop(next(iter(s3)))
                    l2c[3] += 1
                    if victim_dirty3:
                        l2c[4] += 1
                        tr[1] += line_bytes
                s3[tag3] = True
                tr[1] += line_bytes
                tr[2] += 1
        return latency

    def flush():
        stats = l1.stats
        stats.accesses += accesses
        stats.hits += hits
        stats.misses += misses
        stats.evictions += evictions
        stats.writebacks += writebacks

    return access, flush


def run_fast(
    config: SystemConfig,
    hierarchy: MemoryHierarchy,
    mcu: Optional[MemoryCheckUnit],
    va_mask: int,
    obs,
    program: Program,
) -> PipelineResult:
    """Run ``program`` through the fast kernel; equivalent to the reference
    ``PipelineModel(config, hierarchy, mcu, va_mask, obs).run(program)``."""
    if obs is not None and obs.tracer is not None:
        raise SimulationError(
            "the fast kernel does not trace events; "
            "the simulator must route traced runs to the reference kernel"
        )

    flat = flatten_program(program)
    kinds = flat.kinds
    addresses = flat.addresses
    latencies = flat.latencies
    deps_col = flat.deps
    sizes = flat.sizes

    core = config.core
    fetch_step = 1.0 / core.width
    penalty = core.branch_mispredict_penalty
    penalty_discounted = penalty * 0.7
    rob_capacity = core.rob_entries
    lq_capacity = core.load_queue_entries
    sq_capacity = core.store_queue_entries
    mcq_capacity = core.mcq_entries
    mcq_threshold = 0.75 * mcq_capacity

    # Shared L2 / traffic counters: [accesses, hits, misses, evictions,
    # writebacks] and [l1_l2_bytes, l2_dram_bytes, dram_accesses].
    l2c = [0, 0, 0, 0, 0]
    tr = [0, 0, 0]
    line_bytes = hierarchy.line_bytes
    dram_latency = hierarchy.config.dram_latency
    access_data, flush_l1d = _make_l1_access(
        hierarchy.l1d, hierarchy.l2, line_bytes, dram_latency, l2c, tr
    )
    if hierarchy.l1b is not None:
        access_bounds, flush_l1b = _make_l1_access(
            hierarchy.l1b, hierarchy.l2, line_bytes, dram_latency, l2c, tr
        )
    else:
        access_bounds, flush_l1b = access_data, None

    has_mcu = mcu is not None
    if has_mcu:
        hbt = mcu.hbt
        layout = mcu.layout
        ahc_shift = layout.ahc_shift
        ahc_low = (1 << layout.ahc_bits) - 1
        pac_shift = layout.pac_shift
        pac_low = (1 << layout.pac_bits) - 1
        nonblocking = mcu.options.nonblocking_resize
        forwarding = mcu.options.bounds_forwarding
        migration_rows = mcu.MIGRATION_ROWS_PER_OP
        check_base_latency = mcu.CHECK_PIPELINE_CYCLES
        recent_stores = mcu._recent_stores
        histogram = mcu._h_lines
        bwb = mcu.bwb
        if bwb is not None:
            bwb_table = bwb._table
            bwb_entries = bwb.entries
            bwb_lru = bwb.eviction == "lru"
        hbt_row = hbt._row
        hbt_advance = hbt.advance_migration
        compression = hbt.compression
        slots_per_way = hbt.slots_per_way
        lines_per_way = hbt.lines_per_way
        way_shift = 6 + lines_per_way - 1
        two_lines = lines_per_way == 2
        mcu_bounds_store = mcu.bounds_store
        mcu_bounds_clear = mcu.bounds_clear
    # The MCU keeps the real bounds-line path (used by bndstr/bndclr via the
    # hierarchy); redirecting it through the inlined closure keeps the two
    # paths operating on the same cache state with the same line counters.
    # (Nothing to redirect: bndstr/bndclr already call hierarchy.access_bounds
    # which mutates the same Cache._sets; their stats flow through
    # Cache.stats directly and ours are flushed additively afterwards.)

    # Local MCU/BWB/HBT counters, flushed into the stats objects post-run.
    m_checks = m_signed = m_forwards = m_lines = m_faults = 0
    b_lookups = b_hits = 0
    t_lines_loaded = 0

    completion_ring = [0.0] * _RING
    ring_mask = _RING_MASK
    frontend = _FRONTEND_DEPTH
    rob = deque()
    load_queue = deque()
    store_queue = deque()
    mcq = deque()

    fetch_time = 0.0
    commit_cursor = 0.0
    last_commit = 0.0
    stall_until = 0.0
    mispredicts = 0
    mcq_stall = 0.0
    rob_stall = 0.0
    lsq_stall = 0.0
    faults = 0
    retired = 0
    port0 = 0.0
    port1 = 0.0

    for i in range(flat.count):
        kind = kinds[i]
        if kind == 0:  # trace marker
            completion_ring[i & ring_mask] = fetch_time
            continue

        # ---- fetch: bandwidth, branch refill, ROB occupancy --------------
        if stall_until > fetch_time:
            fetch_time = stall_until
        if len(rob) >= rob_capacity:
            head = rob.popleft()
            if head > fetch_time:
                rob_stall += head - fetch_time
                fetch_time = head
        fetch_time += fetch_step

        # ---- dependencies ------------------------------------------------
        ready = fetch_time + frontend
        deps = deps_col[i]
        if deps:
            for d in deps:
                t = completion_ring[(i - d) & ring_mask]
                if t > ready:
                    ready = t

        # ---- structural hazards at issue ---------------------------------
        if kind == 1:  # load
            if len(load_queue) >= lq_capacity:
                head = load_queue.popleft()
                if head > ready:
                    lsq_stall += head - ready
                    ready = head
        elif kind == 2:  # store
            if len(store_queue) >= sq_capacity:
                head = store_queue.popleft()
                if head > ready:
                    lsq_stall += head - ready
                    ready = head

        if has_mcu:
            enters_mcu = kind <= 2 or kind == 5 or kind == 6
            if enters_mcu and len(mcq) >= mcq_capacity:
                head = mcq.popleft()
                if head > ready:
                    mcq_stall += head - ready
                    ready = head
        else:
            enters_mcu = False

        issue = ready
        address = addresses[i]

        # ---- execute -----------------------------------------------------
        if kind == 1:
            completion = issue + access_data(address & va_mask, False)
        elif kind == 2:
            access_data(address & va_mask, True)
            completion = issue + 1.0
        elif kind == 3:  # watchdog check µop: metadata record load
            completion = issue + access_data(address, False)
        else:
            completion = issue + latencies[i]

        # ---- bounds validation (MCU) -------------------------------------
        check_done = issue
        mcq_busy_until = 0.0
        if has_mcu and (kind == 5 or kind == 6 or (kind <= 2 and address > va_mask)):
            if kind == 5:
                outcome = mcu_bounds_store(address, sizes[i])
                if not outcome.ok:
                    faults += 1
                mcq_busy_until = issue + outcome.latency
            elif kind == 6:
                outcome = mcu_bounds_clear(address)
                if not outcome.ok:
                    faults += 1
                mcq_busy_until = issue + outcome.latency
            else:
                # Inlined MemoryCheckUnit.check_access (Fig. 6 + Fig. 8a).
                m_checks += 1
                check_latency = 0
                ahc = (address >> ahc_shift) & ahc_low
                if ahc != 0:
                    m_signed += 1
                    if hbt._resizing and nonblocking:
                        hbt_advance(migration_rows)
                    addr = address & va_mask
                    pac = (address >> pac_shift) & pac_low
                    forwarded = False
                    if forwarding:
                        pending = recent_stores.get(pac)
                        if pending is not None:
                            lower = pending[0]
                            if lower <= addr < lower + pending[1]:
                                m_forwards += 1
                                forwarded = True
                                check_latency = 1
                    if not forwarded:
                        # BWB tag (Algorithm 2) + lookup.
                        if ahc == 1:
                            window = (addr >> 7) & 0x3FFF
                        elif ahc == 2:
                            window = (addr >> 10) & 0x3FFF
                        else:
                            window = (addr >> 12) & 0x3FFF
                        tag = ((pac & 0xFFFF) << 16) | (window << 2) | ahc
                        ways = hbt.ways
                        way = 0
                        if bwb is not None:
                            b_lookups += 1
                            hint = bwb_table.get(tag)
                            if hint is not None:
                                if hint >= ways:
                                    del bwb_table[tag]
                                else:
                                    b_hits += 1
                                    if bwb_lru:
                                        bwb_table.move_to_end(tag)
                                    way = hint
                        # Fig. 8a way walk against the real HBT storage.
                        row = hbt_row(pac)
                        base = hbt._base
                        row_offset = pac << (ways.bit_length() - 1 + way_shift)
                        resizing = hbt._resizing
                        if resizing:
                            old_base = hbt._old_base
                            old_ways = hbt._old_ways
                            row_ptr = hbt._row_ptr
                            old_offset = pac << (old_ways.bit_length() - 1 + way_shift)
                        addr33 = addr & 0x1FFFFFFFF
                        not_bit32 = 1 - ((addr >> 32) & 1)
                        check_latency = check_base_latency
                        count = 0
                        visits = 0
                        found_way = -1
                        while True:
                            visits += 1
                            # Fig. 10 steering: old table only for ways the
                            # old geometry had, in rows not yet migrated.
                            if resizing and way < old_ways and pac >= row_ptr:
                                first = old_base + old_offset + (way << way_shift)
                            else:
                                first = base + row_offset + (way << way_shift)
                            check_latency += access_bounds(first, False)
                            if two_lines:
                                check_latency += access_bounds(first + 64, False)
                            t_lines_loaded += lines_per_way
                            start = way * slots_per_way
                            hit = False
                            if compression:
                                for record in row[start : start + slots_per_way]:
                                    if record is None:
                                        continue
                                    raw = record.raw
                                    low_field = raw & 0x1FFFFFFF
                                    lower = low_field << 4
                                    t_addr = (
                                        (((low_field >> 28) & 1) & not_bit32) << 33
                                    ) | addr33
                                    if lower <= t_addr < lower + ((raw >> 29) & 0xFFFFFFFF):
                                        hit = True
                                        break
                            else:
                                for record in row[start : start + slots_per_way]:
                                    if record is not None and record.lower <= addr < record.upper:
                                        hit = True
                                        break
                            if hit:
                                found_way = way
                                break
                            count += 1
                            if count >= ways:
                                break
                            way += 1
                            if way == ways:
                                way = 0
                        lines = visits * lines_per_way
                        m_lines += lines
                        if histogram is not None:
                            histogram.observe(lines)
                        if found_way < 0:
                            m_faults += 1
                            faults += 1
                        elif bwb is not None:
                            if tag in bwb_table:
                                bwb_table[tag] = found_way
                                if bwb_lru:
                                    bwb_table.move_to_end(tag)
                            else:
                                if len(bwb_table) >= bwb_entries:
                                    bwb_table.popitem(last=False)
                                bwb_table[tag] = found_way
                # Delayed retirement behind the MCU's two check ports
                # (applies to every validated load/store, signed or not).
                if port0 <= port1:
                    check_start = issue if issue > port0 else port0
                    check_done = check_start + check_latency
                    port0 = check_done
                else:
                    check_start = issue if issue > port1 else port1
                    check_done = check_start + check_latency
                    port1 = check_done

        # ---- commit (in-order, width per cycle, delayed retirement) ------
        ready_commit = completion if completion > check_done else check_done
        if ready_commit < last_commit:
            ready_commit = last_commit
        commit_cursor += fetch_step
        commit_time = ready_commit if ready_commit > commit_cursor else commit_cursor
        commit_cursor = commit_time
        last_commit = commit_time

        rob.append(commit_time)
        if kind == 1:
            load_queue.append(commit_time)
        elif kind == 2:
            store_queue.append(commit_time)
        if enters_mcu:
            mcq.append(commit_time if commit_time > mcq_busy_until else mcq_busy_until)

        # ---- branch resolution -------------------------------------------
        if kind == 4:
            mispredicts += 1
            effective_penalty = penalty
            if has_mcu:
                while mcq and mcq[0] <= fetch_time:
                    mcq.popleft()
                if len(mcq) >= mcq_threshold:
                    effective_penalty = penalty_discounted
            resolve = completion + effective_penalty
            if resolve > stall_until:
                stall_until = resolve

        completion_ring[i & ring_mask] = completion
        retired += 1

    # ---- publish local counters into the real stats objects --------------
    flush_l1d()
    if flush_l1b is not None:
        flush_l1b()
    l2_stats = hierarchy.l2.stats
    l2_stats.accesses += l2c[0]
    l2_stats.hits += l2c[1]
    l2_stats.misses += l2c[2]
    l2_stats.evictions += l2c[3]
    l2_stats.writebacks += l2c[4]
    hierarchy.traffic.l1_l2_bytes += tr[0]
    hierarchy.traffic.l2_dram_bytes += tr[1]
    hierarchy.dram_accesses += tr[2]
    if has_mcu:
        stats = mcu.stats
        stats.checks += m_checks
        stats.signed_checks += m_signed
        stats.forwards += m_forwards
        stats.lines_accessed += m_lines
        stats.faults += m_faults
        hbt.stats.lines_loaded += t_lines_loaded
        if bwb is not None:
            bwb.stats.lookups += b_lookups
            bwb.stats.hits += b_hits

    return PipelineResult(
        cycles=commit_cursor,
        instructions=retired,
        branch_mispredicts=mispredicts,
        mcq_stall_cycles=mcq_stall,
        rob_stall_cycles=rob_stall,
        lsq_stall_cycles=lsq_stall,
        validation_faults=faults,
    )

"""Source emitter for the trace-speculative specialized kernel.

:func:`emit_source` turns a :class:`~repro.kernel.specialize.TraceProfile`
plus the live run geometry into the source of one generator function::

    def spec_run(flat, cols, hierarchy, mcu, abort_at): ...

which :func:`repro.kernel.specialize.specialize` ``exec``-compiles.  The
emitted code is a transcription of :func:`repro.kernel.fast.run_fast` with
the speculation applied:

- only dispatch branches for trained codes exist (plus the trace-marker
  branch); anything else raises ``GuardAbort("kinds")``;
- scoreboard queues are preallocated ring buffers (no deque method calls);
- per-instruction address arithmetic reads precomputed columns;
- cache probes inline the hit path, with shared cold-path miss helpers;
- the Fig. 8a way scan is unrolled per bounds slot with early exit;
- fault/resize handling is emitted only if the training run saw it —
  otherwise the branch is a ``GuardAbort``;
- statically-determined counters (retired instructions, mispredicts,
  checks, data-cache accesses) come from column counts, not loop work.

Everything baked into the source is captured by
``specialize.geometry_signature`` and re-checked at run entry, so a stale
specialization aborts instead of lying.
"""

from __future__ import annotations

from typing import FrozenSet, List, Set, Tuple

from ..cpu.pipeline import _FRONTEND_DEPTH, _RING, _RING_MASK

#: Yield cadence literal (kept in sync with specialize.CHUNK_MASK).
CHUNK_MASK_LITERAL = 4095

_MCQ_CODES = frozenset((1, 2, 5, 6, 8, 9, 10, 11))
_LOAD_CODES = frozenset((1, 8, 10))
_STORE_CODES = frozenset((2, 9, 11))
_CHECKED_CODES = frozenset((8, 9, 10, 11))


class _W:
    """Tiny indented-source writer."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self.ind = 0

    def w(self, line: str = "") -> None:
        self.lines.append("    " * self.ind + line if line else "")

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


def _emit_miss_inline(
    w: _W,
    g: dict,
    pfx: str,
    sv: str,
    tv: str,
    line_expr: str,
    is_write: bool,
    out_fmt: str = "",
) -> None:
    """Inline cold-path L1 miss (eviction + L2 + writeback cascade).

    Emitted straight into the dispatch arm so every counter is a fast
    local of the generator — no call frame, no nonlocal cell traffic.
    ``out_fmt`` receives the hit/miss latency constant (already folded
    with the L2 latency); empty means the caller discards the latency.
    """
    assoc = g[f"{pfx}_assoc"]
    nsets = g[f"{pfx}_nsets"]
    bits = g[f"{pfx}_bits"]
    base_lat = g[f"{pfx}_lat"] + g["l2_lat"]
    if line_expr.isidentifier():
        ln = line_expr
    else:
        ln = "_ln"
        w.w(f"_ln = {line_expr}")
    w.w(f"{pfx}_miss += 1")
    w.w("_wbl = -1")
    w.w(f"if len({sv}) >= {assoc}:")
    w.ind += 1
    w.w(f"_vt = next(iter({sv}))")
    w.w(f"{pfx}_evi += 1")
    w.w(f"if {sv}.pop(_vt):")
    w.ind += 1
    w.w(f"{pfx}_wb += 1")
    w.w(f"_wbl = (_vt * {nsets} + {ln} % {nsets}) << {bits}")
    w.ind -= 2
    w.w(f"{sv}[{tv}] = {is_write}")
    w.w(f"tr0 += {g['line_bytes']}")
    w.w("l2_acc += 1")
    w.w(f"_l2 = ({ln} << {bits}) >> {g['l2_bits']}")
    w.w(f"_s2 = l2_sets[_l2 % {g['l2_nsets']}]")
    w.w(f"_t2 = _l2 // {g['l2_nsets']}")
    w.w("_d2 = _s2.pop(_t2, _MISS)")
    w.w("if _d2 is not _MISS:")
    w.ind += 1
    w.w("l2_hit += 1")
    w.w("_s2[_t2] = _d2")
    if out_fmt:
        w.w(out_fmt.format(repr(base_lat)))
    w.ind -= 1
    w.w("else:")
    w.ind += 1
    w.w("l2_mi += 1")
    w.w(f"if len(_s2) >= {g['l2_assoc']}:")
    w.ind += 1
    w.w("l2_evi += 1")
    w.w("if _s2.pop(next(iter(_s2))):")
    w.ind += 1
    w.w("l2_wb += 1")
    w.w(f"tr1 += {g['line_bytes']}")
    w.ind -= 2
    w.w("_s2[_t2] = False")
    w.w(f"tr1 += {g['line_bytes']}")
    w.w("tr2 += 1")
    if out_fmt:
        w.w(out_fmt.format(repr(base_lat + g["dram_latency"])))
    w.ind -= 1
    w.w("if _wbl >= 0:")
    w.ind += 1
    w.w(f"tr0 += {g['line_bytes']}")
    w.w("l2_acc += 1")
    w.w(f"_l3 = _wbl >> {g['l2_bits']}")
    w.w(f"_s3 = l2_sets[_l3 % {g['l2_nsets']}]")
    w.w(f"_t3 = _l3 // {g['l2_nsets']}")
    w.w("_d3 = _s3.pop(_t3, _MISS)")
    w.w("if _d3 is not _MISS:")
    w.ind += 1
    w.w("l2_hit += 1")
    w.w("_s3[_t3] = True")
    w.ind -= 1
    w.w("else:")
    w.ind += 1
    w.w("l2_mi += 1")
    w.w(f"if len(_s3) >= {g['l2_assoc']}:")
    w.ind += 1
    w.w("l2_evi += 1")
    w.w("if _s3.pop(next(iter(_s3))):")
    w.ind += 1
    w.w("l2_wb += 1")
    w.w(f"tr1 += {g['line_bytes']}")
    w.ind -= 2
    w.w("_s3[_t3] = True")
    w.w(f"tr1 += {g['line_bytes']}")
    w.w("tr2 += 1")
    w.ind -= 2


def _emit_rawrow_helper(w: _W, g: dict) -> None:
    """Decode one HBT row into per-slot compare operands.

    Rows hold bounds-record objects; the walk only needs (lower, upper[,
    bit28]) integers, so decode each row once and cache it by PAC —
    ``bndstr``/``bndclr`` invalidate the touched row.
    """
    w.w("def _rawrow(row):")
    w.ind += 1
    w.w("out = [None] * len(row)")
    w.w("_x = 0")
    w.w("for _r in row:")
    w.ind += 1
    w.w("if _r is not None:")
    w.ind += 1
    if g["compression"]:
        w.w("_raw = _r.raw")
        w.w("_lf = _raw & 0x1FFFFFFF")
        w.w("_lo = _lf << 4")
        w.w("out[_x] = (_lo, _lo + ((_raw >> 29) & 0xFFFFFFFF), (_lf >> 28) & 1)")
    else:
        w.w("out[_x] = (_r.lower, _r.upper)")
    w.ind -= 1
    w.w("_x += 1")
    w.ind -= 1
    w.w("return out")
    w.ind -= 1
    w.w()


def _emit_fetch(w: _W, g: dict, code: int) -> None:
    """Fetch/ROB/deps prologue + per-kind structural hazards."""
    w.w("if stall_until > fetch_time:")
    w.ind += 1
    w.w("fetch_time = stall_until")
    w.ind -= 1
    # ROB occupancy: the head entry is the commit time of the instruction
    # rob_entries back.  The ring starts zeroed, so reads during warmup
    # compare against 0.0 and never stall — no occupancy counter needed.
    if g["rob_merge"]:
        w.w(f"_h = commit_ring[(i + {g['rob_k']}) & {g['rm']}]")
    else:
        w.w("_h = rob_ring[rob_pos]")
    w.w("if _h > fetch_time:")
    w.ind += 1
    w.w("rob_stall += _h - fetch_time")
    w.w("fetch_time = _h")
    w.ind -= 1
    w.w(f"fetch_time += {g['fs']!r}")
    w.w(f"ready = fetch_time + {g['frontend']!r}")
    # Scalar first-dep fast path: 63% of instructions have no deps and 36%
    # exactly one, so the tuple iteration only runs for the ~1% tail.
    w.w("_da = dep_a[i]")
    w.w("if _da:")
    w.ind += 1
    w.w(f"_t2 = completion_ring[(i - _da) & {g['rm']}]")
    w.w("if _t2 > ready:")
    w.ind += 1
    w.w("ready = _t2")
    w.ind -= 1
    w.w("_dr = dep_rest[i]")
    w.w("if _dr:")
    w.ind += 1
    w.w("for _dd in _dr:")
    w.ind += 1
    w.w(f"_t2 = completion_ring[(i - _dd) & {g['rm']}]")
    w.w("if _t2 > ready:")
    w.ind += 1
    w.w("ready = _t2")
    w.ind -= 4
    if code in _LOAD_CODES:
        qn = "lq"
    elif code in _STORE_CODES:
        qn = "sq"
    else:
        qn = None
    if qn is not None:
        w.w(f"_h = {qn}_ring[{qn}_pos]")
        w.w("if _h > ready:")
        w.ind += 1
        w.w("lsq_stall += _h - ready")
        w.w("ready = _h")
        w.ind -= 1
    if g["has_mcu"] and code in _MCQ_CODES:
        w.w(f"if mcq_tail - mcq_head >= {g['mcq']}:")
        w.ind += 1
        w.w(f"_h = mcq_ring[mcq_head & {g['mm']}]")
        w.w("mcq_head += 1")
        w.w("if _h > ready:")
        w.ind += 1
        w.w("mcq_stall += _h - ready")
        w.w("ready = _h")
        w.ind -= 2


def _emit_data_access(w: _W, g: dict, write: bool) -> None:
    """Inline L1-D probe from precomputed idx/tag columns."""
    w.w("_ix = d_idx[i]")
    w.w("_tg = d_tag[i]")
    w.w("_s = d_sets[_ix]")
    w.w("_dy = _s.pop(_tg, _MISS)")
    w.w("if _dy is not _MISS:")
    w.ind += 1
    if write:
        w.w("_s[_tg] = True")
        w.ind -= 1
        w.w("else:")
        w.ind += 1
        _emit_miss_inline(
            w, g, "d", "_s", "_tg", f"_tg * {g['d_nsets']} + _ix", True
        )
        w.ind -= 1
        w.w("completion = ready + 1.0")
    else:
        w.w("_s[_tg] = _dy")
        w.w(f"completion = ready + {g['d_lat']!r}")
        w.ind -= 1
        w.w("else:")
        w.ind += 1
        _emit_miss_inline(
            w, g, "d", "_s", "_tg", f"_tg * {g['d_nsets']} + _ix", False,
            "completion = ready + {}",
        )
        w.ind -= 1


def _emit_bounds_access(w: _W, g: dict, addr_expr: str) -> None:
    """Inline one HBT line load through the L1-B (or L1-D when absent)."""
    pfx = "b" if g["use_l1b"] else "d"
    sets = "b_sets" if g["use_l1b"] else "d_sets"
    bits, nsets, lat = g[f"{pfx}_bits"], g[f"{pfx}_nsets"], g[f"{pfx}_lat"]
    w.w(f"_l = ({addr_expr}) >> {bits}")
    w.w(f"_sb = {sets}[_l % {nsets}]")
    w.w(f"_tb = _l // {nsets}")
    w.w("_db = _sb.pop(_tb, _MISS)")
    w.w("if _db is not _MISS:")
    w.ind += 1
    w.w("_sb[_tb] = _db")
    w.w(f"check_latency += {lat!r}")
    w.ind -= 1
    w.w("else:")
    w.ind += 1
    _emit_miss_inline(w, g, pfx, "_sb", "_tb", "_l", False, "check_latency += {}")
    w.ind -= 1


def _emit_slot_scan(w: _W, g: dict, cached: bool = False) -> None:
    """Unrolled per-slot bounds compare with early exit (sets found_way).

    ``cached`` scans the pre-decoded ``_rr`` operand tuples from ``_rawrow``
    instead of the record objects in ``_row_l``.
    """
    for k in range(g["slots_per_way"]):
        idx = "_st" if k == 0 else f"_st + {k}"
        if cached:
            w.w(f"_e = _rr[{idx}]")
            if g["compression"]:
                w.w("if _e is not None and _e[0] <="
                    " ((_e[2] & _nb) << 33) | _a33 < _e[1]:")
            else:
                w.w("if _e is not None and _e[0] <= _va < _e[1]:")
        else:
            w.w(f"_r = _row_l[{idx}]")
            if g["compression"]:
                w.w("if _r is not None and (_lo := ((_lf := (_raw := _r.raw)"
                    " & 0x1FFFFFFF) << 4)) <= ((((_lf >> 28) & 1) & _nb) << 33)"
                    " | _a33 < _lo + ((_raw >> 29) & 0xFFFFFFFF):")
            else:
                w.w("if _r is not None and _r.lower <= _va < _r.upper:")
        w.ind += 1
        w.w("found_way = way")
        w.w("break")
        w.ind -= 1


def _emit_walk(w: _W, g: dict, profile) -> None:
    """The inlined signed check: forwarding, BWB, Fig. 8a way walk."""
    resize = profile.saw_resize
    if resize and g["nonblocking"]:
        w.w("if hbt._resizing:")
        w.ind += 1
        w.w(f"hbt_advance({g['migration_rows']})")
        w.ind -= 1
    w.w("_va = va_col[i]")
    w.w("_pacv = pac_col[i]")
    forwarding = g["forwarding"] and 5 in profile.scodes
    if forwarding:
        w.w("_pend = recent_stores.get(_pacv)")
        w.w("if _pend is not None and _pend[0] <= _va < _pend[0] + _pend[1]:")
        w.ind += 1
        w.w("m_forwards += 1")
        w.w("check_latency = 1")
        w.ind -= 1
        w.w("else:")
        w.ind += 1
    w.w("_tag = btag_col[i]")
    w.w("way = 0")
    ways = "hbt.ways" if resize else "_ways"
    if resize:
        w.w("_ways_r = hbt.ways")
        ways = "_ways_r"
    if g["bwb"]:
        w.w("_bhit = -1")
        w.w("_hint = bwb_table.get(_tag)")
        w.w("if _hint is not None:")
        w.ind += 1
        w.w(f"if _hint >= {ways}:")
        w.ind += 1
        w.w("del bwb_table[_tag]")
        w.ind -= 1
        w.w("else:")
        w.ind += 1
        w.w("b_hits_c += 1")
        if g["bwb_lru"]:
            w.w("bwb_table.move_to_end(_tag)")
        w.w("way = _hint")
        w.w("_bhit = _hint")
        w.ind -= 2
    ws = g["way_shift"]
    if resize:
        w.w("_row_l = hbt_row(_pacv)")
        w.w("_baser = hbt._base")
        w.w(f"_ro = _pacv << ({ways}.bit_length() - 1 + {ws})")
        w.w("_rsz = hbt._resizing")
        w.w("if _rsz:")
        w.ind += 1
        w.w("_oldb = hbt._old_base")
        w.w("_oldw = hbt._old_ways")
        w.w("_rptr = hbt._row_ptr")
        w.w(f"_oldoff = _pacv << (_oldw.bit_length() - 1 + {ws})")
        w.ind -= 1
    else:
        w.w("_rr = _rawrows.get(_pacv)")
        w.w("if _rr is None:")
        w.ind += 1
        w.w("_row_l = _rget(_pacv)")
        w.w("if _row_l is None or len(_row_l) < _cap:")
        w.ind += 1
        w.w("_row_l = hbt_row(_pacv)")
        w.ind -= 1
        w.w("_rr = _rawrow(_row_l)")
        w.w("_rawrows[_pacv] = _rr")
        w.ind -= 1
        w.w("_ro = _base + (_pacv << _ro_shift)")
    if g["compression"]:
        w.w("_a33 = a33_col[i]")
        w.w("_nb = nb_col[i]")
    w.w(f"check_latency = {g['check_base']!r}")
    w.w("_count = 0")
    w.w("visits = 0")
    w.w("found_way = -1")
    w.w("while True:")
    w.ind += 1
    w.w("visits += 1")
    if resize:
        w.w("if _rsz and way < _oldw and _pacv >= _rptr:")
        w.ind += 1
        w.w(f"first = _oldb + _oldoff + (way << {ws})")
        w.ind -= 1
        w.w("else:")
        w.ind += 1
        w.w(f"first = _baser + _ro + (way << {ws})")
        w.ind -= 1
    else:
        w.w(f"first = _ro + (way << {ws})")
    _emit_bounds_access(w, g, "first")
    if g["two_lines"]:
        _emit_bounds_access(w, g, "first + 64")
    w.w(f"_st = way * {g['slots_per_way']}")
    _emit_slot_scan(w, g, cached=not resize)
    w.w("_count += 1")
    w.w(f"if _count >= {ways}:")
    w.ind += 1
    w.w("break")
    w.ind -= 1
    w.w("way += 1")
    w.w(f"if way == {ways}:")
    w.ind += 1
    w.w("way = 0")
    w.ind -= 2
    w.w("w_visits += visits")
    # Histogram observations accumulate locally and flush in the epilogue:
    # a guard abort mid-run must leave the metrics registry untouched (the
    # fallback rerun reuses the same per-cell registry).
    w.w("if hist is not None:")
    w.ind += 1
    w.w("hist_acc[visits] = hist_acc.get(visits, 0) + 1")
    w.ind -= 1
    w.w("if found_way < 0:")
    w.ind += 1
    if profile.saw_fault:
        w.w("m_faults += 1")
        w.w("faults += 1")
    else:
        w.w("raise GuardAbort('fault')")
    w.ind -= 1
    if g["bwb"]:
        # found_way == _bhit means the hinted way verified: the lookup above
        # already refreshed LRU order and the value is unchanged, so the
        # update below would be a no-op — skip its dict traffic.
        w.w("elif found_way != _bhit:")
        w.ind += 1
        w.w("if _tag in bwb_table:")
        w.ind += 1
        w.w("bwb_table[_tag] = found_way")
        if g["bwb_lru"]:
            w.w("bwb_table.move_to_end(_tag)")
        w.ind -= 1
        w.w("else:")
        w.ind += 1
        w.w(f"if len(bwb_table) >= {g['bwb_entries']}:")
        w.ind += 1
        w.w("bwb_table.popitem(last=False)")
        w.ind -= 1
        w.w("bwb_table[_tag] = found_way")
        w.ind -= 2
    if forwarding:
        w.ind -= 1  # close the forwarding else:


def _emit_ports(w: _W, zero_latency: bool) -> None:
    """Two-port delayed retirement (Fig. 6)."""
    w.w("if port0 <= port1:")
    w.ind += 1
    if zero_latency:
        w.w("check_done = ready if ready > port0 else port0")
    else:
        w.w("_cs = ready if ready > port0 else port0")
        w.w("check_done = _cs + check_latency")
    w.w("port0 = check_done")
    w.ind -= 1
    w.w("else:")
    w.ind += 1
    if zero_latency:
        w.w("check_done = ready if ready > port1 else port1")
    else:
        w.w("_cs = ready if ready > port1 else port1")
        w.w("check_done = _cs + check_latency")
    w.w("port1 = check_done")
    w.ind -= 1


def _emit_commit(w: _W, g: dict, code: int, checked: bool, busy: bool) -> None:
    # In-order commit: new cursor = max(old + slot, completion[, check_done]).
    # The previous cursor is always the last commit time, so no separate
    # last_commit tracking is needed.
    w.w(f"commit_cursor += {g['fs']!r}")
    w.w("if completion > commit_cursor:")
    w.ind += 1
    w.w("commit_cursor = completion")
    w.ind -= 1
    if checked:
        w.w("if check_done > commit_cursor:")
        w.ind += 1
        w.w("commit_cursor = check_done")
        w.ind -= 1
    if g["rob_merge"]:
        w.w(f"_im = i & {g['rm']}")
        w.w("commit_ring[_im] = commit_cursor")
    else:
        w.w("rob_ring[rob_pos] = commit_cursor")
        w.w("rob_pos += 1")
        w.w(f"if rob_pos == {g['rob']}:")
        w.ind += 1
        w.w("rob_pos = 0")
        w.ind -= 1
    if code in _LOAD_CODES:
        qn, cap = "lq", g["lq"]
    elif code in _STORE_CODES:
        qn, cap = "sq", g["sq"]
    else:
        qn = None
    if qn is not None:
        w.w(f"{qn}_ring[{qn}_pos] = commit_cursor")
        w.w(f"{qn}_pos += 1")
        w.w(f"if {qn}_pos == {cap}:")
        w.ind += 1
        w.w(f"{qn}_pos = 0")
        w.ind -= 1
    if g["has_mcu"] and code in _MCQ_CODES:
        if busy:
            w.w(f"mcq_ring[mcq_tail & {g['mm']}] = "
                "_busy if _busy > commit_cursor else commit_cursor")
        else:
            w.w(f"mcq_ring[mcq_tail & {g['mm']}] = commit_cursor")
        w.w("mcq_tail += 1")
    if g["rob_merge"]:
        w.w("completion_ring[_im] = completion")
    else:
        w.w(f"completion_ring[i & {g['rm']}] = completion")


def _emit_branch_body(w: _W, g: dict, profile, code: int) -> None:
    """One complete dispatch branch for ``code``."""
    if code == 0:
        w.w(f"completion_ring[i & {g['rm']}] = fetch_time")
        return
    _emit_fetch(w, g, code)
    checked = code in _CHECKED_CODES
    busy = False
    if code in (1, 8, 10):
        _emit_data_access(w, g, write=False)
    elif code in (2, 9, 11):
        _emit_data_access(w, g, write=True)
    elif code == 3:
        _emit_data_access(w, g, write=False)  # wchk: raw-address columns
    elif code in (5, 6):
        signed = 8 in profile.scodes or 9 in profile.scodes
        w.w("completion = ready + latencies[i]")
        if code == 5:
            w.w("_out = mcu_bounds_store(addresses[i], sizes[i])")
        else:
            w.w("_out = mcu_bounds_clear(addresses[i])")
        if signed and not profile.saw_resize:
            w.w("_rawrows.pop("
                f"(addresses[i] >> {g['pac_shift']}) & {g['pac_low']}, None)")
        w.w("if not _out.ok:")
        w.ind += 1
        if profile.saw_fault:
            w.w("faults += 1")
        else:
            w.w("raise GuardAbort('fault')")
        w.ind -= 1
        w.w("_busy = ready + _out.latency")
        if not profile.saw_resize:
            # _out.resized catches the *blocking* resize, which completes
            # inside the op and leaves _resizing False with the geometry
            # bindings above (_ways/_cap/_ro_shift) stale.
            if code == 5:
                w.w("if _out.resized or hbt._resizing:")
            else:
                w.w("if hbt._resizing:")
            w.ind += 1
            w.w("raise GuardAbort('resize')")
            w.ind -= 1
        busy = True
    else:  # 4, 7
        w.w("completion = ready + latencies[i]")
    if code in (8, 9):
        _emit_walk(w, g, profile)
        _emit_ports(w, zero_latency=False)
    elif code in (10, 11):
        _emit_ports(w, zero_latency=True)
    _emit_commit(w, g, code, checked, busy)
    if code == 4:
        if g["has_mcu"]:
            w.w(f"while mcq_head < mcq_tail and "
                f"mcq_ring[mcq_head & {g['mm']}] <= fetch_time:")
            w.ind += 1
            w.w("mcq_head += 1")
            w.ind -= 1
            w.w(f"if mcq_tail - mcq_head >= {g['mcq_threshold']!r}:")
            w.ind += 1
            w.w(f"_resolve = completion + {g['penalty_discounted']!r}")
            w.ind -= 1
            w.w("else:")
            w.ind += 1
            w.w(f"_resolve = completion + {g['penalty']!r}")
            w.ind -= 1
        else:
            w.w(f"_resolve = completion + {g['penalty']!r}")
        w.w("if _resolve > stall_until:")
        w.ind += 1
        w.w("stall_until = _resolve")
        w.ind -= 1


def build_g(profile, config, hierarchy, mcu) -> Tuple[dict, Set[int], list]:
    """Baked emission constants plus the handled-code set and dispatch order.

    Shared between the Python emitter below and the C backend
    (:mod:`repro.kernel.specialize_cgen`), so both bake byte-identical
    constants for one (profile, config, geometry).
    """
    core = config.core
    l1d, l2, l1b = hierarchy.l1d, hierarchy.l2, hierarchy.l1b
    has_mcu = mcu is not None
    g = {
        "fs": 1.0 / core.width,
        "frontend": _FRONTEND_DEPTH,
        "ring": _RING,
        "rm": _RING_MASK,
        "penalty": core.branch_mispredict_penalty,
        "penalty_discounted": core.branch_mispredict_penalty * 0.7,
        "rob": core.rob_entries,
        "lq": core.load_queue_entries,
        "sq": core.store_queue_entries,
        "mcq": core.mcq_entries,
        "mcq_threshold": 0.75 * core.mcq_entries,
        "mm": (1 << core.mcq_entries.bit_length()) - 1,
        "line_bytes": hierarchy.line_bytes,
        "dram_latency": hierarchy.config.dram_latency,
        "d_nsets": l1d.num_sets, "d_bits": l1d.line_bits,
        "d_assoc": l1d.assoc, "d_lat": l1d.hit_latency,
        "l2_nsets": l2.num_sets, "l2_bits": l2.line_bits,
        "l2_assoc": l2.assoc, "l2_lat": l2.hit_latency,
        "use_l1b": l1b is not None,
        "has_mcu": has_mcu,
    }
    if l1b is not None:
        g.update(b_nsets=l1b.num_sets, b_bits=l1b.line_bits,
                 b_assoc=l1b.assoc, b_lat=l1b.hit_latency)
    if has_mcu:
        hbt, bwb = mcu.hbt, mcu.bwb
        g.update(
            pac_shift=mcu.layout.pac_shift,
            pac_low=(1 << mcu.layout.pac_bits) - 1,
            forwarding=mcu.options.bounds_forwarding,
            nonblocking=mcu.options.nonblocking_resize,
            check_base=mcu.CHECK_PIPELINE_CYCLES,
            migration_rows=mcu.MIGRATION_ROWS_PER_OP,
            compression=hbt.compression,
            slots_per_way=hbt.slots_per_way,
            lines_per_way=hbt.lines_per_way,
            two_lines=hbt.lines_per_way == 2,
            way_shift=6 + hbt.lines_per_way - 1,
            bwb=bwb is not None,
            bwb_entries=0 if bwb is None else bwb.entries,
            bwb_lru=bwb is not None and bwb.eviction == "lru",
        )

    handled: Set[int] = set(profile.scodes)
    # Marker-free profiles index the ROB ring by instruction number (the
    # commit time of the instruction rob_entries back), which only works
    # when every instruction commits — so markers are left out of `handled`
    # and a marker-bearing program aborts to the reference kernel via the
    # kinds guard instead of training a pessimistic loop.
    rob_merge = g["rob"] <= g["ring"] and 0 not in handled
    if not rob_merge:
        handled.add(0)
    g["rob_merge"] = rob_merge
    g["rob_k"] = g["ring"] - g["rob"]
    order = [c for c in profile.order if c in handled]
    if 0 in handled and 0 not in order:
        order.append(0)
    return g, handled, order


def emit_source(profile, config, hierarchy, mcu, va_mask: int
                ) -> Tuple[str, FrozenSet[int]]:
    """Emit the specialized kernel source; returns (source, handled codes)."""
    g, handled, order = build_g(profile, config, hierarchy, mcu)
    has_mcu = g["has_mcu"]
    signed = 8 in handled or 9 in handled
    bounds_ops = 5 in handled or 6 in handled
    uses_hbt = has_mcu and (signed or bounds_ops)
    needs_faults = profile.saw_fault and (signed or bounds_ops)

    w = _W()
    w.w('"""Generated by repro.kernel.specialize_gen — do not edit."""')
    w.w(f"# codes={sorted(handled)} fault={profile.saw_fault} "
        f"resize={profile.saw_resize}")
    w.w()
    w.w("def spec_run(flat, cols, hierarchy, mcu, abort_at):")
    w.ind += 1
    w.w("scode = cols.scode")
    w.w("d_idx = cols.d_idx")
    w.w("d_tag = cols.d_tag")
    if signed:
        w.w("va_col = cols.vaddr")
        w.w("pac_col = cols.pac")
        w.w("btag_col = cols.btag")
        if g.get("compression"):
            w.w("a33_col = cols.addr33")
            w.w("nb_col = cols.nb32")
    w.w("addresses = flat.addresses")
    w.w("latencies = flat.latencies")
    w.w("dep_a = cols.dep_a")
    w.w("dep_rest = cols.dep_rest")
    if 5 in handled:
        w.w("sizes = flat.sizes")
    w.w("n = flat.count")
    w.w("d_sets = hierarchy.l1d._sets")
    w.w("l2_sets = hierarchy.l2._sets")
    if g["use_l1b"]:
        w.w("b_sets = hierarchy.l1b._sets")
    if has_mcu:
        w.w("hbt = mcu.hbt")
        w.w("hist = mcu._h_lines")
        if signed:
            w.w("hist_acc = {}")
        if signed and g["forwarding"]:
            w.w("recent_stores = mcu._recent_stores")
        if 5 in handled:
            w.w("mcu_bounds_store = mcu.bounds_store")
        if 6 in handled:
            w.w("mcu_bounds_clear = mcu.bounds_clear")
        if signed:
            w.w("hbt_row = hbt._row")
            if g["bwb"]:
                w.w("bwb_table = mcu.bwb._table")
            if profile.saw_resize and g["nonblocking"]:
                w.w("hbt_advance = hbt.advance_migration")
    if uses_hbt and not profile.saw_resize:
        w.w("if hbt._resizing:")
        w.ind += 1
        w.w("raise GuardAbort('resize')")
        w.ind -= 1
        if signed:
            w.w("_ways = hbt.ways")
            w.w(f"_cap = _ways * {g['slots_per_way']}")
            w.w(f"_ro_shift = _ways.bit_length() - 1 + {g['way_shift']}")
            w.w("_base = hbt._base")
            w.w("_rget = hbt._rows.get")
            w.w("_rawrows = {}")
    w.w(f"completion_ring = [0.0] * {g['ring']}")
    if g["rob_merge"]:
        w.w(f"commit_ring = [0.0] * {g['ring']}")
    else:
        w.w(f"rob_ring = [0.0] * {g['rob']}")
        w.w("rob_pos = 0")
    if handled & _LOAD_CODES:
        w.w(f"lq_ring = [0.0] * {g['lq']}")
        w.w("lq_pos = 0")
    if handled & _STORE_CODES:
        w.w(f"sq_ring = [0.0] * {g['sq']}")
        w.w("sq_pos = 0")
    if has_mcu and handled & _MCQ_CODES:
        w.w(f"mcq_ring = [0.0] * {g['mm'] + 1}")
        w.w("mcq_head = 0")
        w.w("mcq_tail = 0")
    w.w("fetch_time = 0.0")
    w.w("commit_cursor = 0.0")
    w.w("stall_until = 0.0")
    w.w("mcq_stall = 0.0")
    w.w("rob_stall = 0.0")
    w.w("lsq_stall = 0.0")
    w.w("port0 = 0.0")
    w.w("port1 = 0.0")
    w.w("d_miss = 0")
    w.w("d_evi = 0")
    w.w("d_wb = 0")
    if g["use_l1b"]:
        w.w("b_miss = 0")
        w.w("b_evi = 0")
        w.w("b_wb = 0")
    w.w("l2_acc = 0")
    w.w("l2_hit = 0")
    w.w("l2_mi = 0")
    w.w("l2_evi = 0")
    w.w("l2_wb = 0")
    w.w("tr0 = 0")
    w.w("tr1 = 0")
    w.w("tr2 = 0")
    w.w("m_forwards = 0")
    w.w("b_hits_c = 0")
    w.w("w_visits = 0")
    w.w("faults = 0")
    w.w("m_faults = 0")
    w.w()
    if has_mcu and signed and not profile.saw_resize:
        _emit_rawrow_helper(w, g)

    # Chunked outer loop: the yield point and injection check run once per
    # chunk instead of testing `i & mask` on every instruction.
    w.w("_i0 = 0")
    w.w("while _i0 < n:")
    w.ind += 1
    w.w("yield _i0")
    w.w("if 0 <= abort_at <= _i0:")
    w.ind += 1
    w.w("raise GuardAbort('injected')")
    w.ind -= 1
    w.w(f"_i1 = _i0 + {CHUNK_MASK_LITERAL + 1}")
    w.w("if _i1 > n:")
    w.ind += 1
    w.w("_i1 = n")
    w.ind -= 1
    w.w("for i in range(_i0, _i1):")
    w.ind += 1
    w.w("k = scode[i]")
    kw = "if"
    for code in order:
        w.w(f"{kw} k == {code}:")
        w.ind += 1
        _emit_branch_body(w, g, profile, code)
        w.ind -= 1
        kw = "elif"
    w.w("else:")
    w.ind += 1
    w.w("raise GuardAbort('kinds')")
    w.ind -= 2
    w.w("_i0 = _i1")
    w.ind -= 1

    # ---- epilogue: static tallies + flush into the real stats objects ----
    w.w()
    checked_codes = sorted(handled & _CHECKED_CODES)
    dacc_codes = sorted(handled & (frozenset((1, 2, 3)) | _CHECKED_CODES))
    w.w("retired = n - scode.count(0)")
    w.w(f"mispredicts = {'scode.count(4)' if 4 in handled else '0'}")
    if dacc_codes:
        w.w("_dacc = " + " + ".join(f"scode.count({c})" for c in dacc_codes))
    else:
        w.w("_dacc = 0")
    if signed and not g["use_l1b"]:
        lpw = g["lines_per_way"]
        w.w(f"_dacc += w_visits * {lpw}" if lpw != 1 else "_dacc += w_visits")
    w.w("_sd = hierarchy.l1d.stats")
    w.w("_sd.accesses += _dacc")
    w.w("_sd.hits += _dacc - d_miss")
    w.w("_sd.misses += d_miss")
    w.w("_sd.evictions += d_evi")
    w.w("_sd.writebacks += d_wb")
    if g["use_l1b"]:
        lpw = g.get("lines_per_way", 1)
        w.w(f"_bacc = w_visits * {lpw}" if lpw != 1 else "_bacc = w_visits")
        w.w("_sb2 = hierarchy.l1b.stats")
        w.w("_sb2.accesses += _bacc")
        w.w("_sb2.hits += _bacc - b_miss")
        w.w("_sb2.misses += b_miss")
        w.w("_sb2.evictions += b_evi")
        w.w("_sb2.writebacks += b_wb")
    w.w("_s2 = hierarchy.l2.stats")
    w.w("_s2.accesses += l2_acc")
    w.w("_s2.hits += l2_hit")
    w.w("_s2.misses += l2_mi")
    w.w("_s2.evictions += l2_evi")
    w.w("_s2.writebacks += l2_wb")
    w.w("hierarchy.traffic.l1_l2_bytes += tr0")
    w.w("hierarchy.traffic.l2_dram_bytes += tr1")
    w.w("hierarchy.dram_accesses += tr2")
    if has_mcu:
        if checked_codes:
            w.w("_checks = " + " + ".join(f"scode.count({c})" for c in checked_codes))
        else:
            w.w("_checks = 0")
        sig_codes = sorted(handled & frozenset((8, 9)))
        if sig_codes:
            w.w("_signed = " + " + ".join(f"scode.count({c})" for c in sig_codes))
        else:
            w.w("_signed = 0")
        w.w("_ms = mcu.stats")
        w.w("_ms.checks += _checks")
        w.w("_ms.signed_checks += _signed")
        w.w("_ms.forwards += m_forwards")
        if signed:
            lpw = g["lines_per_way"]
            expr = f"w_visits * {lpw}" if lpw != 1 else "w_visits"
            w.w(f"_ms.lines_accessed += {expr}")
            w.w(f"hbt.stats.lines_loaded += {expr}")
        if needs_faults:
            w.w("_ms.faults += m_faults")
        if signed and g["bwb"]:
            w.w("mcu.bwb.stats.lookups += _signed - m_forwards")
            w.w("mcu.bwb.stats.hits += b_hits_c")
        if signed:
            # Flush the locally-accumulated walk histogram (values are raw
            # visit counts; one observation per signed check that walked).
            lpw = g["lines_per_way"]
            w.w("if hist is not None:")
            w.ind += 1
            w.w("_hb = hist.bounds")
            w.w("_hc = hist.counts")
            w.w("for _hv, _hn in hist_acc.items():")
            w.ind += 1
            if lpw != 1:
                w.w(f"_hv *= {lpw}")
            w.w("for _hx in range(len(_hb)):")
            w.ind += 1
            w.w("if _hv <= _hb[_hx]:")
            w.ind += 1
            w.w("_hc[_hx] += _hn")
            w.w("break")
            w.ind -= 2
            w.w("else:")
            w.ind += 1
            w.w("_hc[-1] += _hn")
            w.ind -= 1
            w.w("hist.total += _hv * _hn")
            w.w("hist.count += _hn")
            w.ind -= 2
    w.w("return PipelineResult(")
    w.ind += 1
    w.w("cycles=commit_cursor,")
    w.w("instructions=retired,")
    w.w("branch_mispredicts=mispredicts,")
    w.w("mcq_stall_cycles=mcq_stall,")
    w.w("rob_stall_cycles=rob_stall,")
    w.w("lsq_stall_cycles=lsq_stall,")
    w.w("validation_faults=faults,")
    w.ind -= 1
    w.w(")")
    return w.source(), frozenset(handled)

"""Program flattening for the fast-path and specialized kernels.

The reference pipeline (:mod:`repro.cpu.pipeline`) touches several
:class:`~repro.isa.instructions.Instruction` attributes per dynamic
instruction (``op`` identity tests, ``address``, ``deps``, ``latency``,
``mispredicted``).  The fast kernels instead walk preallocated parallel
columns indexed by instruction position:

- ``kinds``      — one dispatch code per instruction (``bytes``, so
  indexing yields a small int and dispatch is integer compares instead of
  enum identity chains);
- ``addresses``  — the pointer operand (0 where unused);
- ``latencies``  — the resolved execution latency for non-memory kinds
  (``inst.latency`` override or the per-op default — exactly the value the
  reference loop's ``else`` branch computes);
- ``deps``       — the original dependency-distance tuples (interned
  as-is: they are already tuples, and most are empty);
- ``sizes``      — the ``bndstr`` allocation size.

Two summary fields serve the trace-speculative kernel's entry guards
(:mod:`repro.kernel.specialize`): ``kinds_present`` (which dispatch codes
occur at all — a specialized kernel trained without e.g. ``wchk`` µops
refuses a program that has them) and ``max_address`` (whether any operand
carries metadata above the VA mask — the guard that lets unsigned programs
drop the whole MCU check path).

All columns are immutable (``bytes``/tuples): the flattened view is shared
between kernels, cached on the program, and handed to generated code, so
accidental mutation must raise rather than corrupt a later run.  Derived
columns (precomputed cache indices, PAC/AHC decompositions, ...) are
memoized per flattened program via :meth:`FlatProgram.derived`, keyed by
the geometry that shaped them.

Flattening is pure bookkeeping — no timing decision is made here — and is
memoized on the (frozen, hashable-by-identity) :class:`Program` so repeated
runs of one lowered workload flatten once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, Hashable, Tuple

from ..isa.instructions import DEFAULT_LATENCY, Op
from ..isa.program import Program

#: Dispatch codes: dense small ints so the hot loop compares integers.
KIND_MARKER = 0    # malloc/free trace markers (zero-latency bookkeeping)
KIND_LOAD = 1
KIND_STORE = 2
KIND_WCHK = 3      # watchdog check µop (metadata access, unmasked address)
KIND_BRANCH_MISS = 4   # mispredicted branch (predicted ones are KIND_OTHER)
KIND_BNDSTR = 5
KIND_BNDCLR = 6
KIND_OTHER = 7     # fixed-latency ALU/FP/crypto/branch-hit/...

#: Attribute used to memoize the flattened view on the Program instance.
_CACHE_ATTR = "_kernel_flat_cache"


@dataclass(frozen=True)
class FlatProgram:
    """Columnar view of one lowered program (immutable parallel arrays)."""

    count: int
    kinds: bytes
    addresses: Tuple[int, ...]
    latencies: Tuple[float, ...]
    deps: Tuple[Tuple[int, ...], ...]
    sizes: Tuple[int, ...]
    #: Which dispatch codes occur at least once (specialization entry guard).
    kinds_present: FrozenSet[int]
    #: Largest address operand (0 for an empty program) — compared against
    #: the VA mask to decide whether any pointer carries signing metadata.
    max_address: int
    #: Memo for derived columns, keyed by whatever geometry produced them.
    #: Lives on the flattened view so one program shared across kernels and
    #: batch lanes computes each derived column once.
    _derived: Dict[Hashable, Any] = field(
        default_factory=dict, repr=False, compare=False
    )

    def derived(self, key: Hashable, build: Callable[["FlatProgram"], Any]) -> Any:
        """Return the derived column cached under ``key``, building once.

        ``build(flat)`` runs at most once per key per flattened program;
        builders must return immutable (or never-mutated) values, since the
        result is shared across runs and batch lanes.
        """
        try:
            return self._derived[key]
        except KeyError:
            value = build(self)
            self._derived[key] = value
            return value


def _flatten(program: Program) -> FlatProgram:
    instructions = program.instructions
    n = len(instructions)
    kinds = bytearray(n)
    addresses = [0] * n
    latencies = [0.0] * n
    deps: list = [()] * n
    sizes = [0] * n

    load, store, wchk = Op.LOAD, Op.STORE, Op.WCHK
    branch, bndstr, bndclr = Op.BRANCH, Op.BNDSTR, Op.BNDCLR
    malloc_mark, free_mark = Op.MALLOC_MARK, Op.FREE_MARK

    for i, inst in enumerate(instructions):
        op = inst.op
        if op is malloc_mark or op is free_mark:
            continue  # kinds[i] stays KIND_MARKER
        addresses[i] = inst.address
        deps[i] = inst.deps
        if op is load:
            kinds[i] = KIND_LOAD
        elif op is store:
            kinds[i] = KIND_STORE
        elif op is wchk:
            kinds[i] = KIND_WCHK
        else:
            if op is bndstr:
                kinds[i] = KIND_BNDSTR
                sizes[i] = inst.size
            elif op is bndclr:
                kinds[i] = KIND_BNDCLR
            elif op is branch and inst.mispredicted:
                kinds[i] = KIND_BRANCH_MISS
            else:
                kinds[i] = KIND_OTHER
            # Same resolution the reference loop's else-branch performs.
            latencies[i] = float(inst.latency if inst.latency else DEFAULT_LATENCY[op])

    return FlatProgram(
        count=n,
        kinds=bytes(kinds),
        addresses=tuple(addresses),
        latencies=tuple(latencies),
        deps=tuple(deps),
        sizes=tuple(sizes),
        kinds_present=frozenset(kinds),
        max_address=max(addresses) if addresses else 0,
    )


def flatten_program(program: Program) -> FlatProgram:
    """Flatten ``program`` into parallel columns (memoized per instance)."""
    cached = getattr(program, _CACHE_ATTR, None)
    if cached is not None:
        return cached
    flat = _flatten(program)
    # Program is a frozen dataclass; stash the memo without tripping the
    # frozen __setattr__ (instructions are immutable, so the memo is safe).
    object.__setattr__(program, _CACHE_ATTR, flat)
    return flat

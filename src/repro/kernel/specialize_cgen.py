"""Native (C) backend for MCU-free trace specializations.

The generated Python kernel for a profile whose dispatch codes are all in
``{1, 2, 4, 7}`` (plain loads, stores, branch misses, ALU/other) touches no
MCU state: the whole scoreboard recurrence plus the L1-D/L2 LRU model is
closed over plain integers and doubles.  For exactly those profiles this
module emits the same loop as C, compiles it once per geometry with the
system C compiler, and drives it chunk-by-chunk from a Python generator
with the same yield protocol as the generated Python kernel — guard
injection, lockstep batching and the guard taxonomy behave identically.

Byte-identity with the Python kernel (and therefore with the reference
kernel) holds because:

- every float operation is an IEEE-754 double add/subtract/compare executed
  in the same order as the generated Python source (CPython floats *are* C
  doubles, and the module compiles with ``-ffp-contract=off`` so no FMA
  contraction can reassociate anything);
- the dict-based LRU cache sets are mirrored as insertion-ordered arrays
  with identical probe/evict order, marshalled in on entry and written back
  into the live dicts on exit.

Compiled libraries are cached on disk keyed by the source digest, so each
distinct geometry pays one ``cc`` invocation per machine, not per process.
Any failure — no compiler, read-only tmpdir, unexpected geometry — degrades
silently to the generated Python kernel.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
from array import array
from typing import Dict, Optional

from ..cpu.pipeline import PipelineResult

#: Dispatch codes the C loop implements.  Everything else (markers, bounds
#: ops, checked accesses) needs Python-side state and stays on the Python
#: specialized kernel.
C_CODES = frozenset((1, 2, 4, 7))

#: Environment kill-switch, read at *run* time: "off" forces the Python
#: specialized kernel even when a native build is attached (the equivalence
#: fuzz harness uses it to differentially test both backends).
ENV_SWITCH = "REPRO_SPEC_CBACKEND"

_LIBS: Dict[str, Optional[ctypes.CDLL]] = {}
#: id(lib) → (run_chunk with argtypes set, KState class); one binding per
#: dlopened library so every crun closure shares the same struct class.
_BOUND: Dict[int, tuple] = {}
_CC: Optional[str] = None
_CC_PROBED = False


def backend_enabled() -> bool:
    return os.environ.get(ENV_SWITCH, "auto").lower() not in ("off", "0", "no")


def _find_cc() -> Optional[str]:
    global _CC, _CC_PROBED
    if not _CC_PROBED:
        _CC_PROBED = True
        from shutil import which

        _CC = which("cc") or which("gcc") or which("clang")
    return _CC


def _f(x) -> str:
    """Python number → C double literal with the exact same value."""
    return repr(float(x))


def eligible(handled, g: dict, mcu) -> bool:
    """True when the profile's dispatch closes over C-expressible state."""
    return (
        mcu is None
        and bool(handled)
        and set(handled) <= C_CODES
        and g["rob_merge"]
        and g["lq"] > 0
        and g["sq"] > 0
    )


# --------------------------------------------------------------------------
# C emission.  Mirrors specialize_gen arm-for-arm for codes {1, 2, 4, 7}.


def _c_l2_refill(g: dict, sfx: str, line_var: str, dirty_in: int,
                 hit_stmt: str, miss_stmt: str, hit_set_dirty: bool) -> str:
    """One L2 probe/refill, mirroring the Python ``_emit_miss_inline`` L2
    block.  ``hit_set_dirty`` distinguishes the writeback cascade (reinsert
    dirty) from the demand fill (preserve the resident dirty bit)."""
    l2n, l2a = g["l2_nsets"], g["l2_assoc"]
    lb = g["line_bytes"]
    hit_dirty = "1" if hit_set_dirty else f"dy{sfx}"
    return f"""
        {{
            i64 li{sfx} = {line_var};
            i64 si{sfx} = li{sfx} % {l2n};
            i64 tg{sfx} = li{sfx} / {l2n};
            i64 b{sfx} = si{sfx} * {l2a};
            i64 c{sfx} = c2v[si{sfx}];
            i64 j{sfx} = -1;
            for (i64 x = 0; x < c{sfx}; x++)
                if (t2v[b{sfx} + x] == tg{sfx}) {{ j{sfx} = x; break; }}
            if (j{sfx} >= 0) {{
                u8 dy{sfx} = d2v[b{sfx} + j{sfx}];
                l2_hit++;
                for (i64 x = j{sfx}; x < c{sfx} - 1; x++) {{
                    t2v[b{sfx} + x] = t2v[b{sfx} + x + 1];
                    d2v[b{sfx} + x] = d2v[b{sfx} + x + 1];
                }}
                t2v[b{sfx} + c{sfx} - 1] = tg{sfx};
                d2v[b{sfx} + c{sfx} - 1] = {hit_dirty};
                {hit_stmt}
            }} else {{
                l2_mi++;
                if (c{sfx} >= {l2a}) {{
                    u8 vd{sfx} = d2v[b{sfx}];
                    l2_evi++;
                    for (i64 x = 0; x < c{sfx} - 1; x++) {{
                        t2v[b{sfx} + x] = t2v[b{sfx} + x + 1];
                        d2v[b{sfx} + x] = d2v[b{sfx} + x + 1];
                    }}
                    c{sfx}--;
                    if (vd{sfx}) {{ l2_wb++; tr1 += {lb}; }}
                }}
                t2v[b{sfx} + c{sfx}] = tg{sfx};
                d2v[b{sfx} + c{sfx}] = {dirty_in};
                c2v[si{sfx}] = c{sfx} + 1;
                tr1 += {lb};
                tr2++;
                {miss_stmt}
            }}
        }}"""


def _c_data_access(g: dict, write: bool) -> str:
    """L1-D probe + miss cascade, mirroring ``_emit_data_access``."""
    dn, da, db = g["d_nsets"], g["d_assoc"], g["d_bits"]
    lb = g["line_bytes"]
    base = g["d_lat"] + g["l2_lat"]
    ins = "1" if write else "0"
    if write:
        hit_lru = "dt[b + c - 1] = tg; dd[b + c - 1] = 1;"
        hit_out = ""
        l2_hit_stmt = ""
        l2_miss_stmt = ""
    else:
        hit_lru = "dt[b + c - 1] = tg; dd[b + c - 1] = dy;"
        hit_out = f"completion = ready + {_f(g['d_lat'])};"
        l2_hit_stmt = f"completion = ready + {_f(base)};"
        l2_miss_stmt = f"completion = ready + {_f(base + g['dram_latency'])};"
    return f"""
    {{
        i64 ix = d_idx[i];
        i64 tg = d_tag[i];
        i64 b = ix * {da};
        i64 c = dc[ix];
        i64 j = -1;
        for (i64 x = 0; x < c; x++)
            if (dt[b + x] == tg) {{ j = x; break; }}
        if (j >= 0) {{
            {"u8 dy = dd[b + j];" if not write else ""}
            for (i64 x = j; x < c - 1; x++) {{
                dt[b + x] = dt[b + x + 1];
                dd[b + x] = dd[b + x + 1];
            }}
            {hit_lru}
            {hit_out}
        }} else {{
            i64 ln = tg * {dn} + ix;
            d_miss++;
            i64 wbl = -1;
            if (c >= {da}) {{
                i64 vt = dt[b];
                u8 vd = dd[b];
                d_evi++;
                for (i64 x = 0; x < c - 1; x++) {{
                    dt[b + x] = dt[b + x + 1];
                    dd[b + x] = dd[b + x + 1];
                }}
                c--;
                if (vd) {{ d_wb++; wbl = (vt * {dn} + ln % {dn}) << {db}; }}
            }}
            dt[b + c] = tg;
            dd[b + c] = {ins};
            dc[ix] = c + 1;
            tr0 += {lb};
            l2_acc++;
            {_c_l2_refill(g, "m", f"(ln << {db}) >> {g['l2_bits']}", 0,
                          l2_hit_stmt, l2_miss_stmt, hit_set_dirty=False)}
            if (wbl >= 0) {{
                tr0 += {lb};
                l2_acc++;
                {_c_l2_refill(g, "w", f"wbl >> {g['l2_bits']}", 1,
                              "", "", hit_set_dirty=True)}
            }}
        }}
    }}"""


def emit_c(g: dict, order) -> str:
    """The full C translation unit for one MCU-free geometry."""
    rm, rk = g["rm"], g["rob_k"]
    lq, sq = g["lq"], g["sq"]
    fs, fe = _f(g["fs"]), _f(g["frontend"])
    arms = []
    kw = "if"
    for code in order:
        if code == 7:
            body = "            completion = ready + lat[i];"
        elif code == 1:
            body = f"""            h = lq_ring[*lq_pos];
            if (h > ready) {{ lsq_stall += h - ready; ready = h; }}
{_c_data_access(g, write=False)}"""
        elif code == 2:
            body = f"""            h = sq_ring[*sq_pos];
            if (h > ready) {{ lsq_stall += h - ready; ready = h; }}
{_c_data_access(g, write=True)}
            completion = ready + 1.0;"""
        elif code == 4:
            body = "            completion = ready + lat[i];"
        else:  # pragma: no cover - eligibility guarantees the code set
            raise ValueError(f"code {code} has no C arm")
        commit_extra = ""
        if code == 1:
            commit_extra = (f"lq_ring[*lq_pos] = commit_cursor; "
                            f"if (++*lq_pos == {lq}) *lq_pos = 0;")
        elif code == 2:
            commit_extra = (f"sq_ring[*sq_pos] = commit_cursor; "
                            f"if (++*sq_pos == {sq}) *sq_pos = 0;")
        resolve = ""
        if code == 4:
            resolve = (f"\n            {{ double rs = completion + "
                       f"{_f(g['penalty'])}; "
                       f"if (rs > stall_until) stall_until = rs; }}")
        arms.append(f"""        {kw} (k == {code}) {{
{body}
            commit_cursor += {fs};
            if (completion > commit_cursor) commit_cursor = completion;
            {{
                i64 im = i & {rm};
                commit_ring[im] = commit_cursor;
                {commit_extra}
                completion_ring[im] = completion;
            }}{resolve}
        }}""")
        kw = "else if"
    arms.append("        else { return 1; }")
    body = "\n".join(arms)
    return f"""/* Generated by repro.kernel.specialize_cgen — do not edit. */
#include <stdint.h>
typedef int64_t i64;
typedef unsigned char u8;

typedef struct {{
    double fetch_time;
    double commit_cursor;
    double stall_until;
    double rob_stall;
    double lsq_stall;
    i64 lq_pos;
    i64 sq_pos;
    i64 d_miss;
    i64 d_evi;
    i64 d_wb;
    i64 l2_acc;
    i64 l2_hit;
    i64 l2_mi;
    i64 l2_evi;
    i64 l2_wb;
    i64 tr0;
    i64 tr1;
    i64 tr2;
    double commit_ring[{g['ring']}];
    double completion_ring[{g['ring']}];
    double lq_ring[{lq}];
    double sq_ring[{sq}];
}} kstate;

int run_chunk(kstate *st,
              const u8 *scode, const i64 *d_idx, const i64 *d_tag,
              const i64 *dep_a, const i64 *dep_off, const i64 *dep_dat,
              const double *lat,
              i64 *dt, u8 *dd, i64 *dc,
              i64 *t2v, u8 *d2v, i64 *c2v,
              i64 i0, i64 i1)
{{
    double fetch_time = st->fetch_time;
    double commit_cursor = st->commit_cursor;
    double stall_until = st->stall_until;
    double rob_stall = st->rob_stall;
    double lsq_stall = st->lsq_stall;
    i64 *lq_pos = &st->lq_pos;
    i64 *sq_pos = &st->sq_pos;
    i64 d_miss = st->d_miss, d_evi = st->d_evi, d_wb = st->d_wb;
    i64 l2_acc = st->l2_acc, l2_hit = st->l2_hit, l2_mi = st->l2_mi;
    i64 l2_evi = st->l2_evi, l2_wb = st->l2_wb;
    i64 tr0 = st->tr0, tr1 = st->tr1, tr2 = st->tr2;
    double *commit_ring = st->commit_ring;
    double *completion_ring = st->completion_ring;
    double *lq_ring = st->lq_ring;
    double *sq_ring = st->sq_ring;
    for (i64 i = i0; i < i1; i++) {{
        i64 k = scode[i];
        double ready, completion, h;
        if (stall_until > fetch_time) fetch_time = stall_until;
        h = commit_ring[(i + {rk}) & {rm}];
        if (h > fetch_time) {{ rob_stall += h - fetch_time; fetch_time = h; }}
        fetch_time += {fs};
        ready = fetch_time + {fe};
        {{
            i64 da = dep_a[i];
            if (da) {{
                double t = completion_ring[(i - da) & {rm}];
                if (t > ready) ready = t;
                for (i64 x = dep_off[i]; x < dep_off[i + 1]; x++) {{
                    t = completion_ring[(i - dep_dat[x]) & {rm}];
                    if (t > ready) ready = t;
                }}
            }}
        }}
{body}
    }}
    st->fetch_time = fetch_time;
    st->commit_cursor = commit_cursor;
    st->stall_until = stall_until;
    st->rob_stall = rob_stall;
    st->lsq_stall = lsq_stall;
    st->d_miss = d_miss; st->d_evi = d_evi; st->d_wb = d_wb;
    st->l2_acc = l2_acc; st->l2_hit = l2_hit; st->l2_mi = l2_mi;
    st->l2_evi = l2_evi; st->l2_wb = l2_wb;
    st->tr0 = tr0; st->tr1 = tr1; st->tr2 = tr2;
    return 0;
}}
"""


# --------------------------------------------------------------------------
# Compilation + on-disk library cache.


def _cache_dir() -> str:
    explicit = os.environ.get("REPRO_CKERNEL_DIR")
    if explicit:
        return explicit
    uid = getattr(os, "getuid", lambda: 0)()
    return os.path.join(tempfile.gettempdir(), f"repro-ckernels-{uid}")


def load_library(csource: str) -> Optional[ctypes.CDLL]:
    """Compile (or reuse from the digest-keyed disk cache) and dlopen."""
    digest = hashlib.sha256(csource.encode()).hexdigest()[:20]
    if digest in _LIBS:
        return _LIBS[digest]
    lib: Optional[ctypes.CDLL] = None
    try:
        cc = _find_cc()
        if cc is not None:
            cachedir = _cache_dir()
            os.makedirs(cachedir, exist_ok=True)
            so_path = os.path.join(cachedir, f"spec_{digest}.so")
            if not os.path.exists(so_path):
                c_path = os.path.join(cachedir, f"spec_{digest}.c")
                with open(c_path, "w") as fh:
                    fh.write(csource)
                tmp = f"{so_path}.tmp.{os.getpid()}"
                subprocess.run(
                    [cc, "-O2", "-fPIC", "-shared", "-ffp-contract=off",
                     "-o", tmp, c_path],
                    check=True, capture_output=True, timeout=120,
                )
                os.replace(tmp, so_path)
            lib = ctypes.CDLL(so_path)
    except (OSError, subprocess.SubprocessError, ValueError):
        lib = None
    _LIBS[digest] = lib
    return lib


# --------------------------------------------------------------------------
# Python-side runner: marshalling + the chunked generator.


def _c_columns(flat, cols, d_bits: int, d_nsets: int):
    """ctypes-ready column arrays, memoized per flattened program."""
    key = ("c-cols", d_bits, d_nsets)

    def build(_):
        n = flat.count
        dep_off = array("q", bytes(8 * (n + 1)))
        dep_dat = array("q")
        for i, rest in enumerate(cols.dep_rest):
            dep_off[i] = len(dep_dat)
            if rest:
                dep_dat.extend(rest)
        dep_off[n] = len(dep_dat)
        if not dep_dat:
            dep_dat.append(0)  # keep a valid buffer for the C pointer
        return (
            bytearray(cols.scode),
            array("q", cols.d_idx),
            array("q", cols.d_tag),
            array("q", cols.dep_a),
            dep_off,
            dep_dat,
            array("d", flat.latencies),
        )

    return flat.derived(key, build)


def _marshal_sets(sets, assoc: int):
    """Dict-based LRU sets → (tags, dirty, count) insertion-ordered arrays."""
    nsets = len(sets)
    tags = array("q", bytes(8 * nsets * assoc))
    dirty = bytearray(nsets * assoc)
    cnt = array("q", bytes(8 * nsets))
    for si, s in enumerate(sets):
        b = si * assoc
        c = 0
        for tg, dy in s.items():
            tags[b + c] = tg
            if dy:
                dirty[b + c] = 1
            c += 1
        cnt[si] = c
    return tags, dirty, cnt


def _unmarshal_sets(sets, assoc: int, tags, dirty, cnt) -> None:
    """Write final array state back into the live dicts, order-preserving."""
    for si, s in enumerate(sets):
        s.clear()
        b = si * assoc
        for j in range(cnt[si]):
            s[tags[b + j]] = bool(dirty[b + j])


def make_crun(lib: ctypes.CDLL, g: dict):
    """Build the chunked generator driving ``lib.run_chunk``.

    Same signature and yield protocol as the generated Python ``spec_run``:
    yields the chunk start index, honours ``abort_at`` via
    ``GuardAbort('injected')``, and returns a :class:`PipelineResult` via
    ``StopIteration.value``.
    """
    from .specialize import GuardAbort  # circular at module load otherwise

    c_ll = ctypes.c_longlong
    c_u8 = ctypes.c_ubyte
    c_dbl = ctypes.c_double

    # Bind once per library: two specializations sharing a geometry share
    # the dlopened library, and re-setting ``argtypes`` with a fresh struct
    # class would invalidate the closures built from the first binding.
    bound = _BOUND.get(id(lib))
    if bound is None:

        class KState(ctypes.Structure):
            _fields_ = [
                ("fetch_time", c_dbl), ("commit_cursor", c_dbl),
                ("stall_until", c_dbl), ("rob_stall", c_dbl),
                ("lsq_stall", c_dbl),
                ("lq_pos", c_ll), ("sq_pos", c_ll),
                ("d_miss", c_ll), ("d_evi", c_ll), ("d_wb", c_ll),
                ("l2_acc", c_ll), ("l2_hit", c_ll), ("l2_mi", c_ll),
                ("l2_evi", c_ll), ("l2_wb", c_ll),
                ("tr0", c_ll), ("tr1", c_ll), ("tr2", c_ll),
                ("commit_ring", c_dbl * g["ring"]),
                ("completion_ring", c_dbl * g["ring"]),
                ("lq_ring", c_dbl * g["lq"]),
                ("sq_ring", c_dbl * g["sq"]),
            ]

        run = lib.run_chunk
        run.restype = ctypes.c_int
        run.argtypes = [
            ctypes.POINTER(KState),
            ctypes.POINTER(c_u8), ctypes.POINTER(c_ll), ctypes.POINTER(c_ll),
            ctypes.POINTER(c_ll), ctypes.POINTER(c_ll), ctypes.POINTER(c_ll),
            ctypes.POINTER(c_dbl),
            ctypes.POINTER(c_ll), ctypes.POINTER(c_u8), ctypes.POINTER(c_ll),
            ctypes.POINTER(c_ll), ctypes.POINTER(c_u8), ctypes.POINTER(c_ll),
            c_ll, c_ll,
        ]
        bound = _BOUND[id(lib)] = (run, KState)
    run, KState = bound

    d_assoc, l2_assoc = g["d_assoc"], g["l2_assoc"]
    d_bits, d_nsets = g["d_bits"], g["d_nsets"]
    chunk = 4096

    def _ptr(buf, ctype):
        return ctypes.cast(
            (ctype * len(buf)).from_buffer(buf), ctypes.POINTER(ctype))

    def crun(flat, cols, hierarchy, mcu, abort_at):
        (scode_b, d_idx, d_tag, dep_a, dep_off, dep_dat,
         lat) = _c_columns(flat, cols, d_bits, d_nsets)
        d_sets = hierarchy.l1d._sets
        l2_sets = hierarchy.l2._sets
        dt, dd, dc = _marshal_sets(d_sets, d_assoc)
        t2, d2, c2 = _marshal_sets(l2_sets, l2_assoc)
        st = KState()
        args = (
            ctypes.byref(st),
            _ptr(scode_b, c_u8), _ptr(d_idx, c_ll), _ptr(d_tag, c_ll),
            _ptr(dep_a, c_ll), _ptr(dep_off, c_ll), _ptr(dep_dat, c_ll),
            _ptr(lat, c_dbl),
            _ptr(dt, c_ll), _ptr(dd, c_u8), _ptr(dc, c_ll),
            _ptr(t2, c_ll), _ptr(d2, c_u8), _ptr(c2, c_ll),
        )
        n = flat.count
        _i0 = 0
        while _i0 < n:
            yield _i0
            if 0 <= abort_at <= _i0:
                raise GuardAbort("injected")
            _i1 = _i0 + chunk
            if _i1 > n:
                _i1 = n
            if run(*args, _i0, _i1):
                raise GuardAbort("kinds")
            _i0 = _i1
        _unmarshal_sets(d_sets, d_assoc, dt, dd, dc)
        _unmarshal_sets(l2_sets, l2_assoc, t2, d2, c2)
        scode = cols.scode
        retired = n - scode.count(0)
        mispredicts = scode.count(4)
        _dacc = scode.count(1) + scode.count(2)
        _sd = hierarchy.l1d.stats
        _sd.accesses += _dacc
        _sd.hits += _dacc - st.d_miss
        _sd.misses += st.d_miss
        _sd.evictions += st.d_evi
        _sd.writebacks += st.d_wb
        _s2 = hierarchy.l2.stats
        _s2.accesses += st.l2_acc
        _s2.hits += st.l2_hit
        _s2.misses += st.l2_mi
        _s2.evictions += st.l2_evi
        _s2.writebacks += st.l2_wb
        hierarchy.traffic.l1_l2_bytes += st.tr0
        hierarchy.traffic.l2_dram_bytes += st.tr1
        hierarchy.dram_accesses += st.tr2
        return PipelineResult(
            cycles=st.commit_cursor,
            instructions=retired,
            branch_mispredicts=mispredicts,
            mcq_stall_cycles=0.0,
            rob_stall_cycles=st.rob_stall,
            lsq_stall_cycles=st.lsq_stall,
            validation_faults=0,
        )

    return crun


def attach_cbackend(spec, profile, config, hierarchy, mcu) -> bool:
    """Attach a native runner to ``spec`` when the profile is eligible.

    Returns True when ``spec.cfn`` was set.  All expected failure modes
    (no compiler, unwritable cache dir) leave ``spec`` untouched.
    """
    from .specialize_gen import build_g

    g, handled, order = build_g(profile, config, hierarchy, mcu)
    if not eligible(handled, g, mcu):
        return False
    csource = emit_c(g, order)
    lib = load_library(csource)
    if lib is None:
        return False
    spec.csource = csource
    spec.cfn = make_crun(lib, g)
    return True

"""Trace-speculative specialized kernel (train → codegen → guarded run).

The third simulation kernel.  Where ``"fast"`` is a hand-written
transcription of the reference scoreboard loop, ``"specialized"`` *records*
what one training run of a (workload profile × mechanism) cell actually did
and emits straight-line Python for exactly that behaviour:

- dispatch branches for instruction kinds the training run never saw are
  not emitted at all (a guard refuses programs that need them);
- if the training run saw no validation fault, no HBT resize, or no signed
  pointer, the corresponding code — fault counting, the Fig. 10 resize
  steering, the whole MCU check path — is dropped and replaced by a guard;
- per-instruction address arithmetic (cache set index/tag, PAC/AHC/BWB-tag
  decomposition) is precomputed into derived columns
  (:meth:`repro.kernel.flatten.FlatProgram.derived`, numpy-accelerated when
  numpy is importable, pure Python otherwise);
- scoreboard queues become preallocated ring buffers, cache hit paths are
  inlined with cold-path miss helpers, and the Fig. 8a way scan is unrolled
  per bounds slot.

The generated source is ``exec``-compiled once and cached in-process, keyed
by program family (``profile:mechanism``), the config digest, the mechanism
registry fingerprint and :data:`SPEC_VERSION`.

**Guard taxonomy** (every guard raises :class:`GuardAbort`; the dispatcher
in :mod:`repro.cpu.core` catches it, discards the partially-mutated run
state, and re-runs the cell on the reference kernel — byte-identical by
construction, counted in ``kernel.guard_abort``):

- ``geometry``  — live cache/MCU/layout geometry differs from the training
  run's (pre-run, no state touched);
- ``kinds``     — the program contains a specialized dispatch code the
  training run never exercised (pre-run);
- ``resize``    — the HBT is mid-migration at entry, or a ``bndstr``/
  ``bndclr`` left it resizing, in a kernel specialized resize-free;
- ``fault``     — a validation fault in a kernel specialized fault-free;
- ``injected``  — the deterministic test seam (``RunSettings.guard_inject``
  / ``REPRO_GUARD_INJECT``), for exercising the fallback path on demand.

The generated kernel is a *generator* that yields every
``CHUNK_MASK + 1`` instructions, which is what lets
:mod:`repro.kernel.batch` advance many cells in lockstep from one driver
loop, and lets the injection seam abort mid-run deterministically.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, Iterator, Optional, Tuple

from ..config import SystemConfig
from ..cpu.pipeline import PipelineResult
from ..isa.program import Program
from .flatten import (
    KIND_BNDCLR,
    KIND_BNDSTR,
    KIND_BRANCH_MISS,
    KIND_LOAD,
    KIND_MARKER,
    KIND_OTHER,
    KIND_STORE,
    KIND_WCHK,
    FlatProgram,
    flatten_program,
)

#: Bumped whenever codegen output changes shape; part of every cache key.
SPEC_VERSION = 2

#: The generated generator yields whenever ``i & CHUNK_MASK == 0``.
CHUNK_MASK = 4095

# Specialized dispatch codes: the flatten kinds, with validated loads and
# stores split out so the per-instruction ``address > va_mask`` and
# ``ahc != 0`` tests move from the hot loop into column precomputation.
SC_LOAD_CHK = 8     # validated load, signed (AHC != 0): full MCU check
SC_STORE_CHK = 9    # validated store, signed
SC_LOAD_CHK0 = 10   # validated load, AHC == 0: ports only, zero latency
SC_STORE_CHK0 = 11  # validated store, AHC == 0

_MISS = object()  # shared tag-absent sentinel for generated cache probes


class GuardAbort(Exception):
    """A specialization guard failed; the run must fall back to reference.

    Deliberately *not* a :class:`~repro.errors.SimulationError`: a guard
    abort is not a failure of the simulation, it is the specialized kernel
    declining a program outside its trained envelope.
    """

    def __init__(self, guard: str, detail: str = "") -> None:
        super().__init__(f"specialization guard {guard!r} failed"
                         + (f": {detail}" if detail else ""))
        self.guard = guard
        self.detail = detail


@dataclass
class SpecializeStats:
    """Process-wide accounting for the specialization machinery."""

    trainings: int = 0
    compiles: int = 0
    cache_hits: int = 0
    runs: int = 0
    guard_aborts: int = 0
    injected_aborts: int = 0
    last_guard: str = ""
    #: Native (C) backend: libraries attached / runs dispatched to them.
    c_compiles: int = 0
    c_runs: int = 0

    def reset(self) -> None:
        self.trainings = 0
        self.compiles = 0
        self.cache_hits = 0
        self.runs = 0
        self.guard_aborts = 0
        self.injected_aborts = 0
        self.last_guard = ""
        self.c_compiles = 0
        self.c_runs = 0


STATS = SpecializeStats()


def record_abort(exc: GuardAbort, obs=None) -> None:
    """Account one guard abort (module stats + the metrics registry)."""
    STATS.guard_aborts += 1
    STATS.last_guard = exc.guard
    if exc.guard == "injected":
        STATS.injected_aborts += 1
    if obs is not None:
        obs.registry.count("kernel.guard_abort")
        obs.registry.count(f"kernel.guard_abort.{exc.guard}")


@dataclass(frozen=True)
class TraceProfile:
    """What one training run observed — the speculation envelope."""

    #: Specialized dispatch codes present in the training program.
    scodes: FrozenSet[int]
    #: Codes ordered by descending training frequency (dispatch order).
    order: Tuple[int, ...]
    #: Training run produced at least one validation fault.
    saw_fault: bool
    #: HBT was resizing at any point during (or at entry to) the window.
    saw_resize: bool


@dataclass
class SpecializedKernel:
    """One compiled specialization: source, entry point, and its guards."""

    key: str
    name: str
    profile: TraceProfile
    geometry: Tuple
    source: str
    fn: Callable
    #: Codes the generated dispatch actually handles (scodes + marker).
    handled: FrozenSet[int] = field(default_factory=frozenset)
    #: Native backend, attached when the profile is MCU-free and a C
    #: compiler is available: the emitted C source and a generator with the
    #: same protocol as ``fn``.  ``None`` falls back to the Python kernel.
    csource: str = ""
    cfn: Optional[Callable] = None


#: In-process kernel cache: specialization key → compiled kernel.
_CACHE: Dict[str, SpecializedKernel] = {}


def clear_cache() -> None:
    """Drop all compiled specializations (tests and long-lived workers)."""
    _CACHE.clear()


def cache_size() -> int:
    return len(_CACHE)


def config_digest(config: SystemConfig) -> str:
    payload = json.dumps(dataclasses.asdict(config), sort_keys=True, default=str)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def specialization_key(name: str, config: SystemConfig) -> str:
    """Cache key: program family × config × registry × codegen version.

    ``name`` is the lowered program name (``"<profile>:<mechanism>"``), so
    cells that differ only in seed share one specialization, which is the
    point: train once per (workload profile × mechanism), reuse across the
    whole campaign.
    """
    from ..mechanisms.registry import registry_fingerprint

    return "|".join(
        (name, config.mechanism, config_digest(config),
         registry_fingerprint(), f"v{SPEC_VERSION}")
    )


def lookup(name: str, config: SystemConfig) -> Optional[SpecializedKernel]:
    spec = _CACHE.get(specialization_key(name, config))
    if spec is not None:
        STATS.cache_hits += 1
    return spec


# --------------------------------------------------------------------------
# Geometry: everything the generated code bakes that is not in the program.


def geometry_signature(config: SystemConfig, hierarchy, mcu, va_mask: int) -> Tuple:
    """Snapshot of every baked constant outside the program columns.

    Compared at run entry against the training snapshot; any mismatch is a
    ``geometry`` guard abort before the run touches state.
    """
    l1d, l2, l1b = hierarchy.l1d, hierarchy.l2, hierarchy.l1b
    core = config.core
    sig: Tuple = (
        va_mask,
        hierarchy.line_bytes,
        hierarchy.config.dram_latency,
        (l1d.num_sets, l1d.line_bits, l1d.assoc, l1d.hit_latency),
        (l2.num_sets, l2.line_bits, l2.assoc, l2.hit_latency),
        None if l1b is None
        else (l1b.num_sets, l1b.line_bits, l1b.assoc, l1b.hit_latency),
        (core.width, core.branch_mispredict_penalty, core.rob_entries,
         core.load_queue_entries, core.store_queue_entries, core.mcq_entries),
    )
    if mcu is None:
        return sig + (None,)
    hbt, layout, bwb = mcu.hbt, mcu.layout, mcu.bwb
    return sig + ((
        layout.ahc_shift, layout.ahc_bits, layout.pac_shift, layout.pac_bits,
        mcu.options.nonblocking_resize, mcu.options.bounds_forwarding,
        mcu.CHECK_PIPELINE_CYCLES, mcu.MIGRATION_ROWS_PER_OP,
        hbt.compression, hbt.slots_per_way, hbt.lines_per_way,
        None if bwb is None else (bwb.entries, bwb.eviction),
    ),)


# --------------------------------------------------------------------------
# Derived columns (cached per flattened program via FlatProgram.derived).


@dataclass(frozen=True)
class SpecColumns:
    """Per-program precomputed columns for the specialized dispatch."""

    scode: bytes                  # specialized dispatch codes
    present: FrozenSet[int]
    d_idx: Tuple[int, ...]        # L1-D set index (loads/stores masked, wchk raw)
    d_tag: Tuple[int, ...]        # L1-D tag
    vaddr: Tuple[int, ...]        # VA-masked address (bounds compare operand)
    pac: Tuple[int, ...]          # PAC field (forwarding + HBT row key)
    btag: Tuple[int, ...]         # BWB tag (Algorithm 2)
    addr33: Tuple[int, ...]       # compressed-bounds compare operand
    nb32: Tuple[int, ...]         # 1 - bit 32 of the masked address
    dep_a: Tuple[int, ...]        # first dep distance (0 = no deps)
    dep_rest: Tuple[Tuple[int, ...], ...]  # remaining dep distances
    dep_sane: bool                # every dep distance is >= 1


def columns_key(va_mask: int, d_bits: int, d_nsets: int,
                layout: Optional[Tuple[int, int, int, int]]) -> Tuple:
    return ("spec-cols", SPEC_VERSION, va_mask, d_bits, d_nsets, layout)


_NO_DEPS: Tuple[int, ...] = ()


def _dep_columns(flat: FlatProgram):
    """Split dep tuples into a scalar first-dep column plus the tail.

    The emitted kernel checks ``dep_a[i]`` with a plain truthiness test, so a
    literal 0 distance (self-dependency; the reference kernels read the stale
    ring slot for it) cannot use the fast path — ``dep_sane`` turns False and
    the dispatcher aborts to the reference kernel instead.
    """
    dep_a = []
    dep_rest = []
    sane = True
    for d in flat.deps:
        if d:
            dep_a.append(d[0])
            dep_rest.append(d[1:] if len(d) > 1 else _NO_DEPS)
            if 0 in d:
                sane = False
        else:
            dep_a.append(0)
            dep_rest.append(_NO_DEPS)
    return tuple(dep_a), tuple(dep_rest), sane


def _build_columns_py(flat: FlatProgram, va_mask: int, d_bits: int,
                      d_nsets: int, layout) -> SpecColumns:
    n = flat.count
    kinds = flat.kinds
    addresses = flat.addresses
    scode = bytearray(kinds)
    d_idx = [0] * n
    d_tag = [0] * n
    vaddr = [0] * n
    pac_c = [0] * n
    btag = [0] * n
    addr33 = [0] * n
    nb32 = [0] * n
    if layout is not None:
        ahc_shift, ahc_low, pac_shift, pac_low = layout
    for i in range(n):
        kind = kinds[i]
        if kind == KIND_MARKER:
            continue
        address = addresses[i]
        masked = address & va_mask
        vaddr[i] = masked
        if kind == KIND_LOAD or kind == KIND_STORE:
            line = masked >> d_bits
            d_idx[i] = line % d_nsets
            d_tag[i] = line // d_nsets
            if layout is not None and address > va_mask:
                ahc = (address >> ahc_shift) & ahc_low
                if ahc:
                    scode[i] = SC_LOAD_CHK if kind == KIND_LOAD else SC_STORE_CHK
                    pac = (address >> pac_shift) & pac_low
                    pac_c[i] = pac
                    if ahc == 1:
                        window = (masked >> 7) & 0x3FFF
                    elif ahc == 2:
                        window = (masked >> 10) & 0x3FFF
                    else:
                        window = (masked >> 12) & 0x3FFF
                    btag[i] = ((pac & 0xFFFF) << 16) | (window << 2) | ahc
                    addr33[i] = masked & 0x1FFFFFFFF
                    nb32[i] = 1 - ((masked >> 32) & 1)
                else:
                    scode[i] = SC_LOAD_CHK0 if kind == KIND_LOAD else SC_STORE_CHK0
        elif kind == KIND_WCHK:
            line = address >> d_bits
            d_idx[i] = line % d_nsets
            d_tag[i] = line // d_nsets
    dep_a, dep_rest, dep_sane = _dep_columns(flat)
    return SpecColumns(
        scode=bytes(scode),
        present=frozenset(scode),
        d_idx=tuple(d_idx),
        d_tag=tuple(d_tag),
        vaddr=tuple(vaddr),
        pac=tuple(pac_c),
        btag=tuple(btag),
        addr33=tuple(addr33),
        nb32=tuple(nb32),
        dep_a=dep_a,
        dep_rest=dep_rest,
        dep_sane=dep_sane,
    )


def _build_columns_np(flat: FlatProgram, va_mask: int, d_bits: int,
                      d_nsets: int, layout) -> SpecColumns:
    import numpy as np

    kinds = np.frombuffer(flat.kinds, dtype=np.uint8)
    addr = np.array(flat.addresses, dtype=np.uint64)
    one = np.uint64(1)
    masked = addr & np.uint64(va_mask)
    is_mem = (kinds == KIND_LOAD) | (kinds == KIND_STORE)
    is_wchk = kinds == KIND_WCHK
    daddr = np.where(is_mem, masked, np.where(is_wchk, addr, np.uint64(0)))
    line = daddr >> np.uint64(d_bits)
    d_idx = line % np.uint64(d_nsets)
    d_tag = line // np.uint64(d_nsets)
    scode = kinds.copy()
    pac_c = np.zeros_like(addr)
    btag = np.zeros_like(addr)
    addr33 = np.zeros_like(addr)
    nb32 = np.zeros_like(addr)
    vaddr = np.where(kinds != KIND_MARKER, masked, np.uint64(0))
    if layout is not None:
        ahc_shift, ahc_low, pac_shift, pac_low = layout
        ahc = (addr >> np.uint64(ahc_shift)) & np.uint64(ahc_low)
        validated = is_mem & (addr > np.uint64(va_mask))
        signed = validated & (ahc != 0)
        unsigned = validated & (ahc == 0)
        scode[signed & (kinds == KIND_LOAD)] = SC_LOAD_CHK
        scode[signed & (kinds == KIND_STORE)] = SC_STORE_CHK
        scode[unsigned & (kinds == KIND_LOAD)] = SC_LOAD_CHK0
        scode[unsigned & (kinds == KIND_STORE)] = SC_STORE_CHK0
        pac = (addr >> np.uint64(pac_shift)) & np.uint64(pac_low)
        window = np.where(
            ahc == 1, (masked >> np.uint64(7)) & np.uint64(0x3FFF),
            np.where(ahc == 2, (masked >> np.uint64(10)) & np.uint64(0x3FFF),
                     (masked >> np.uint64(12)) & np.uint64(0x3FFF)),
        )
        tag_all = ((pac & np.uint64(0xFFFF)) << np.uint64(16)) \
            | (window << np.uint64(2)) | ahc
        pac_c = np.where(signed, pac, np.uint64(0))
        btag = np.where(signed, tag_all, np.uint64(0))
        addr33 = np.where(signed, masked & np.uint64(0x1FFFFFFFF), np.uint64(0))
        nb32 = np.where(signed, (~(masked >> np.uint64(32))) & one, np.uint64(0))
    scode_b = scode.tobytes()
    dep_a, dep_rest, dep_sane = _dep_columns(flat)
    return SpecColumns(
        scode=scode_b,
        present=frozenset(scode_b),
        d_idx=tuple(d_idx.tolist()),
        d_tag=tuple(d_tag.tolist()),
        vaddr=tuple(vaddr.tolist()),
        pac=tuple(pac_c.tolist()),
        btag=tuple(btag.tolist()),
        addr33=tuple(addr33.tolist()),
        nb32=tuple(nb32.tolist()),
        dep_a=dep_a,
        dep_rest=dep_rest,
        dep_sane=dep_sane,
    )


def spec_columns(flat: FlatProgram, va_mask: int, d_bits: int, d_nsets: int,
                 layout: Optional[Tuple[int, int, int, int]]) -> SpecColumns:
    """The derived columns for ``flat`` under one geometry (memoized)."""

    def build(f: FlatProgram) -> SpecColumns:
        try:
            return _build_columns_np(f, va_mask, d_bits, d_nsets, layout)
        except ImportError:  # pragma: no cover - numpy is normally present
            return _build_columns_py(f, va_mask, d_bits, d_nsets, layout)

    return flat.derived(columns_key(va_mask, d_bits, d_nsets, layout), build)


def _mcu_layout(mcu) -> Optional[Tuple[int, int, int, int]]:
    if mcu is None:
        return None
    layout = mcu.layout
    return (layout.ahc_shift, (1 << layout.ahc_bits) - 1,
            layout.pac_shift, (1 << layout.pac_bits) - 1)


# --------------------------------------------------------------------------
# Training and compilation.


def build_profile(flat: FlatProgram, config: SystemConfig, hierarchy, mcu,
                  va_mask: int, saw_fault: bool, saw_resize: bool) -> TraceProfile:
    """Summarize one training run into a speculation envelope."""
    cols = spec_columns(flat, va_mask, hierarchy.l1d.line_bits,
                        hierarchy.l1d.num_sets, _mcu_layout(mcu))
    scode = cols.scode
    freq = sorted(cols.present, key=lambda c: (-scode.count(c), c))
    return TraceProfile(
        scodes=cols.present,
        order=tuple(freq),
        saw_fault=saw_fault,
        saw_resize=saw_resize,
    )


def specialize(name: str, config: SystemConfig, hierarchy, mcu, va_mask: int,
               profile: TraceProfile) -> SpecializedKernel:
    """Emit, compile and cache the specialized kernel for one profile."""
    from .specialize_gen import emit_source

    key = specialization_key(name, config)
    source, handled = emit_source(profile, config, hierarchy, mcu, va_mask)
    namespace: Dict[str, Any] = {
        "PipelineResult": PipelineResult,
        "GuardAbort": GuardAbort,
        "_MISS": _MISS,
    }
    code = compile(source, f"<specialized:{name}:{config.mechanism}>", "exec")
    exec(code, namespace)
    spec = SpecializedKernel(
        key=key,
        name=name,
        profile=profile,
        geometry=geometry_signature(config, hierarchy, mcu, va_mask),
        source=source,
        fn=namespace["spec_run"],
        handled=frozenset(handled),
    )
    from .specialize_cgen import attach_cbackend

    if attach_cbackend(spec, profile, config, hierarchy, mcu):
        STATS.c_compiles += 1
    _CACHE[key] = spec
    STATS.compiles += 1
    return spec


# --------------------------------------------------------------------------
# Running.


def parse_injection(inject: str, name: str) -> int:
    """Decode the guard-injection seam into an abort threshold.

    Grammar: ``""`` (off) | ``"entry"`` | ``"after:<N>"``, each optionally
    suffixed ``"@<substr>"`` to target only programs whose name contains
    ``substr``.  Returns ``-1`` (no abort) or the instruction index at (or
    after) which the generated kernel raises ``GuardAbort("injected")`` at
    its next chunk boundary — deterministic for a given program.
    """
    if not inject:
        return -1
    spec, _, target = inject.partition("@")
    if target and target not in name:
        return -1
    if spec == "entry":
        return 0
    if spec.startswith("after:"):
        try:
            return max(0, int(spec[6:]))
        except ValueError as exc:
            raise ValueError(f"bad guard injection spec {inject!r}") from exc
    raise ValueError(f"bad guard injection spec {inject!r}")


def start_specialized(spec: SpecializedKernel, config: SystemConfig,
                      hierarchy, mcu, va_mask: int, program: Program,
                      inject: str = "") -> Iterator:
    """Pre-run guards, then the generated generator (not yet started).

    Raises :class:`GuardAbort` for the pre-run guards (``geometry``,
    ``kinds``, ``deps``) before any run state is touched; the returned
    generator may itself raise mid-run (``resize``/``fault``/``injected``).
    """
    if geometry_signature(config, hierarchy, mcu, va_mask) != spec.geometry:
        raise GuardAbort("geometry")
    flat = flatten_program(program)
    cols = spec_columns(flat, va_mask, hierarchy.l1d.line_bits,
                        hierarchy.l1d.num_sets, _mcu_layout(mcu))
    if not cols.present <= spec.handled:
        extra = sorted(cols.present - spec.handled)
        raise GuardAbort("kinds", f"untrained dispatch codes {extra}")
    if not cols.dep_sane:
        raise GuardAbort("deps", "zero-distance dependency")
    abort_at = parse_injection(inject, program.name)
    STATS.runs += 1
    fn = spec.fn
    if spec.cfn is not None:
        from .specialize_cgen import backend_enabled

        if backend_enabled():
            fn = spec.cfn
            STATS.c_runs += 1
    return fn(flat, cols, hierarchy, mcu, abort_at)


def run_specialized(spec: SpecializedKernel, config: SystemConfig, hierarchy,
                    mcu, va_mask: int, program: Program,
                    inject: str = "") -> PipelineResult:
    """Drive one specialized run to completion (raises GuardAbort)."""
    gen = start_specialized(spec, config, hierarchy, mcu, va_mask, program, inject)
    while True:
        try:
            next(gen)
        except StopIteration as stop:
            return stop.value

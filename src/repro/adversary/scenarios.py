"""The adversarial scenario corpus: named exploits with expected verdicts.

Where :mod:`repro.faults` perturbs *simulator state* at random seams, this
module takes the attacker's seat (ROADMAP item: adversarial scenario
corpus): each scenario is a deterministic, seeded recipe for one named
exploit from the paper's §VII security analysis — heap overflow into the
adjacent chunk, linear and non-linear OOB, use-after-free with and without
reallocation of the freed slot, double free, intra-object overflow, PAC
forgery and replay, and the §VII-C AHC-zeroing escape as a first-class
named scenario.

A scenario *instance* carries two executable forms:

- an adapter-level **step recipe** the chaos campaign interprets against
  any :mod:`repro.security.adapters` mechanism to obtain an observed
  verdict (the attack really runs: allocate, corrupt, dereference);
- a **trace compilation** (:func:`scenario_trace` /
  :func:`compile_scenario`) lowering the same access pattern to a
  :class:`~repro.isa.program.Program`, so the timing kernels can run the
  exploit and the kernel-equivalence suite can assert byte-identical
  verdicts (``validation_faults`` included) across kernels.

Every instance also carries an **expected-verdict oracle**: for each
mechanism, whether the scenario *must* be detected (the paper or the
mechanism's model claims it), *may* be detected (probabilistic, e.g. MTE's
4-bit tags), is a *known escape* (the mechanism's documented blind spot —
never a silent pass, always reported by name), or is *unsupported* (the
adapter does not model the required attacker primitive).
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import WorkloadError
from ..mechanisms.registry import Expectation, REGISTRY
from ..workloads import get_profile
from ..workloads.generator import WorkloadTrace

# ``Expectation`` is re-exported here for its historical import path; it
# now lives with the registry so MechanismSpec oracles can use it.


#: Step opcodes the chaos interpreter understands.
STEP_OPS = (
    "malloc",     # env[obj] = adapter.malloc(size)
    "free",       # adapter.free(env[obj]); env keeps the stale copy
    "load",       # adapter.load(adapter.offset(env[obj], offset))
    "store",      # adapter.store(adapter.offset(env[obj], offset), value)
    "alias",      # env[obj] = env[src]  (capture a dangling/replayable copy)
    "zero-ahc",   # env[obj] = adapter.forge_ahc_zero(env[obj])   [signing]
    "forge-pac",  # env[obj] = adapter.forge_pac(env[obj], wrong) [signing]
    "call",       # adapter.call()                       [call-stack models]
    "ret",        # adapter.ret()                        [call-stack models]
    "smash-ret",  # adapter.smash_ret(value)             [call-stack models]
)


@dataclass(frozen=True)
class Step:
    """One attacker action, interpreted against a mechanism adapter."""

    op: str
    obj: Optional[str] = None
    src: Optional[str] = None
    offset: int = 0
    size: int = 0
    value: int = 0

    def __post_init__(self) -> None:
        if self.op not in STEP_OPS:
            raise WorkloadError(f"unknown scenario step op {self.op!r}")


@dataclass(frozen=True)
class ScenarioInstance:
    """One seeded, fully materialised exploit scenario."""

    name: str
    #: Violation class: "spatial" | "temporal" | "metadata".
    category: str
    description: str
    steps: Tuple[Step, ...]
    #: mechanism name -> expectation; mechanisms not listed get ``default``.
    expectations: Mapping[str, Expectation] = field(default_factory=dict)
    default: Expectation = Expectation.KNOWN_ESCAPE
    seed: int = 7
    paper_ref: str = ""

    def expected(self, mechanism: str) -> Expectation:
        return self.expectations.get(mechanism, self.default)


#: The signing mechanisms (adapters with forge_pac/forge_ahc_zero/autm).
_SIGNING = ("aos", "pa+aos")


def _oracle(scenario: str, category: str) -> Dict[str, Expectation]:
    """The per-mechanism expectation row, resolved from the registry.

    Each :class:`~repro.mechanisms.registry.MechanismSpec` carries its
    category defaults and per-scenario overrides, so a newly registered
    mechanism automatically gets a row in every scenario's oracle.  The
    row is materialised at scenario-build time: plugins registered before
    the campaign runs are covered.
    """
    return REGISTRY.expectations(scenario, category)


# ------------------------------------------------------------- the corpus
#
# Every builder is a pure function of its seed: object sizes and payload
# values come from a seeded RNG; the step sequence itself is fixed so the
# expected-verdict oracle stays meaningful across seeds.


def _rng(name: str, seed: int) -> random.Random:
    return random.Random(f"adversary:{name}:{seed}")


def _size(rng: random.Random) -> int:
    return rng.choice((32, 48, 64, 96, 128))


def heap_overflow_adjacent(seed: int = 7) -> ScenarioInstance:
    rng = _rng("heap-overflow-adjacent", seed)
    size = _size(rng)
    steps = (
        Step("malloc", obj="victim", size=size),
        Step("malloc", obj="neighbour", size=size),
        # One element past the end: lands in the adjacent chunk's header/
        # payload (Fig. 12 line 7).
        Step("store", obj="victim", offset=size + 8, value=rng.getrandbits(32)),
    )
    return ScenarioInstance(
        name="heap-overflow-adjacent",
        category="spatial",
        description="contiguous overflow from one chunk into its neighbour",
        steps=steps,
        expectations=_oracle("heap-overflow-adjacent", "spatial"),
        seed=seed,
        paper_ref="§VII-A, Fig. 12",
    )


def linear_oob_write(seed: int = 7) -> ScenarioInstance:
    rng = _rng("linear-oob-write", seed)
    size = _size(rng)
    # A memset-style linear sweep that runs off the end: the first OOB
    # touch is adjacent, so redzone schemes catch it too.
    steps: List[Step] = [Step("malloc", obj="buf", size=size)]
    for offset in range(size - 16, size + 24, 8):
        steps.append(Step("store", obj="buf", offset=offset, value=rng.getrandbits(32)))
    return ScenarioInstance(
        name="linear-oob-write",
        category="spatial",
        description="linear overflow sweeping past the allocation end",
        steps=tuple(steps),
        expectations=_oracle("linear-oob-write", "spatial"),
        seed=seed,
        paper_ref="§I, §VII-A",
    )


def nonlinear_oob_read(seed: int = 7) -> ScenarioInstance:
    rng = _rng("nonlinear-oob-read", seed)
    size = _size(rng)
    stride = 16 * 1024 + rng.randrange(0, 4096, 8)
    steps = (
        Step("malloc", obj="base", size=size),
        Step("malloc", obj="decoy", size=size),
        # A strided index jumps far past any redzone — the >60 %-of-CVEs
        # class trip-wire schemes cannot stop (§I).
        Step("load", obj="base", offset=stride),
    )
    return ScenarioInstance(
        name="nonlinear-oob-read",
        category="spatial",
        description="non-linear (strided) OOB read far past the redzone",
        steps=steps,
        expectations=_oracle("nonlinear-oob-read", "spatial"),
        seed=seed,
        paper_ref="§I (non-adjacent overflows), §VII-A",
    )


def intra_object_overflow(seed: int = 7) -> ScenarioInstance:
    rng = _rng("intra-object-overflow", seed)
    # struct { char buf[24]; void (*fp)(); } — the overflow stays inside
    # the allocation, so object-granularity bounds never trip.
    steps = (
        Step("malloc", obj="record", size=64),
        Step("store", obj="record", offset=32, value=rng.getrandbits(32)),
    )
    return ScenarioInstance(
        name="intra-object-overflow",
        category="spatial",
        description="field-to-field overflow inside one allocation",
        steps=steps,
        # Allocation-granularity protection (AOS included) cannot see this:
        # a known escape for *every* mechanism in the matrix.
        expectations={},
        default=Expectation.KNOWN_ESCAPE,
        seed=seed,
        paper_ref="§III-D (object-granularity threat model)",
    )


def uaf_stale_load(seed: int = 7) -> ScenarioInstance:
    rng = _rng("uaf-stale-load", seed)
    size = _size(rng)
    steps = (
        Step("malloc", obj="victim", size=size),
        Step("alias", obj="stale", src="victim"),
        Step("free", obj="victim"),
        Step("load", obj="stale"),
    )
    return ScenarioInstance(
        name="uaf-stale-load",
        category="temporal",
        description="dereference of a dangling copy, freed slot not reused",
        steps=steps,
        expectations=_oracle("uaf-stale-load", "temporal"),
        seed=seed,
        paper_ref="§VII-A, Fig. 12 line 14",
    )


def uaf_after_realloc(seed: int = 7) -> ScenarioInstance:
    rng = _rng("uaf-after-realloc", seed)
    size = _size(rng)
    steps = (
        Step("malloc", obj="victim", size=size),
        Step("alias", obj="stale", src="victim"),
        Step("free", obj="victim"),
        # Same size class: the allocator hands the freed slot to the new
        # object (tcache LIFO), so the stale pointer aliases live data.
        Step("malloc", obj="reuse", size=size),
        Step("store", obj="stale", value=rng.getrandbits(32)),
    )
    return ScenarioInstance(
        name="uaf-after-realloc",
        category="temporal",
        description="stale pointer write after the freed slot is reallocated",
        steps=steps,
        expectations=_oracle("uaf-after-realloc", "temporal"),
        seed=seed,
        paper_ref="§VII-A (AHC bump on reallocation)",
    )


def double_free(seed: int = 7) -> ScenarioInstance:
    rng = _rng("double-free", seed)
    size = _size(rng)
    steps = (
        Step("malloc", obj="victim", size=size),
        Step("alias", obj="stale", src="victim"),
        Step("free", obj="victim"),
        Step("free", obj="stale"),
    )
    return ScenarioInstance(
        name="double-free",
        category="temporal",
        description="the same chunk freed twice through a stale copy",
        steps=steps,
        expectations=_oracle("double-free", "temporal"),
        seed=seed,
        paper_ref="§IV-D (bndclr), Fig. 12 lines 16-19",
    )


def pac_forgery(seed: int = 7) -> ScenarioInstance:
    rng = _rng("pac-forgery", seed)
    size = _size(rng)
    steps = (
        Step("malloc", obj="victim", size=size),
        # XOR with a non-zero mask guarantees a wrong PAC regardless of
        # seed; with 16-bit PACs a forged guess succeeds w.p. ~2^-16.
        Step("forge-pac", obj="victim", value=0x5A5A | (rng.getrandbits(12) << 1)),
        Step("load", obj="victim"),
    )
    return ScenarioInstance(
        name="pac-forgery",
        category="metadata",
        description="attacker rewrites the PAC field of a signed pointer",
        steps=steps,
        expectations=_oracle("pac-forgery", "metadata"),
        default=Expectation.UNSUPPORTED,  # no PAC field to forge
        seed=seed,
        paper_ref="§VII-C",
    )


def pac_replay(seed: int = 7) -> ScenarioInstance:
    rng = _rng("pac-replay", seed)
    size = _size(rng)
    steps = (
        Step("malloc", obj="victim", size=size),
        # The replay capture: a byte-exact copy of the *validly signed*
        # pointer, stashed before the object dies.
        Step("alias", obj="replayed", src="victim"),
        Step("free", obj="victim"),
        Step("malloc", obj="reuse", size=size),
        # Replaying the old signature against the recycled slot: the AHC
        # was bumped on reallocation, so the stale signature misses.
        Step("load", obj="replayed"),
        Step("store", obj="replayed", value=rng.getrandbits(32)),
    )
    return ScenarioInstance(
        name="pac-replay",
        category="metadata",
        description="replay of a previously valid signed pointer after reuse",
        steps=steps,
        # Temporal-category oracle: the replayed signature dies with the
        # allocation's metadata generation, so the same liveness machinery
        # decides each mechanism's claim.
        expectations=_oracle("pac-replay", "temporal"),
        seed=seed,
        paper_ref="§VII-C (signature replay), §VII-A",
    )


def ahc_zero_escape(seed: int = 7) -> ScenarioInstance:
    rng = _rng("ahc-zero-escape", seed)
    size = _size(rng)
    steps = (
        Step("malloc", obj="victim", size=size),
        # §VII-C: clear the AHC so the pointer looks unsigned and the
        # Fig. 6 selective check skips it entirely.
        Step("zero-ahc", obj="victim"),
        Step("load", obj="victim", offset=4096 + rng.randrange(0, 2048, 8)),
    )
    return ScenarioInstance(
        name="ahc-zero-escape",
        category="metadata",
        description="AHC zeroed to dodge selective bounds checking (§VII-C)",
        steps=steps,
        expectations=_oracle("ahc-zero-escape", "metadata"),
        default=Expectation.UNSUPPORTED,  # no AHC field to zero
        seed=seed,
        paper_ref="§VII-C, Fig. 13",
    )


def ret_addr_corruption(seed: int = 7) -> ScenarioInstance:
    rng = _rng("ret-addr-corruption", seed)
    steps = (
        Step("call"),
        Step("call"),
        # Attacker data-write over the innermost saved return address —
        # the control-flow path AOS deliberately leaves to PA (§VII-B).
        Step("smash-ret", value=0x6A0000 + rng.randrange(0, 4096, 16)),
        Step("ret"),
        Step("ret"),
    )
    return ScenarioInstance(
        name="ret-addr-corruption",
        category="control",
        description="saved return address overwritten before the return",
        steps=steps,
        expectations=_oracle("ret-addr-corruption", "control"),
        # Mechanisms without a call-stack model yield ``unmodeled``.
        default=Expectation.UNSUPPORTED,
        seed=seed,
        paper_ref="§VII-B (PA return-address signing), PACStack/PACTight",
    )


#: The corpus, in presentation order.  Keys are the scenario names used by
#: the CLI, the chaos campaign, checkpoints and the scenario-matrix JSON.
SCENARIOS: Dict[str, Callable[[int], ScenarioInstance]] = {
    "heap-overflow-adjacent": heap_overflow_adjacent,
    "linear-oob-write": linear_oob_write,
    "nonlinear-oob-read": nonlinear_oob_read,
    "intra-object-overflow": intra_object_overflow,
    "uaf-stale-load": uaf_stale_load,
    "uaf-after-realloc": uaf_after_realloc,
    "double-free": double_free,
    "pac-forgery": pac_forgery,
    "pac-replay": pac_replay,
    "ahc-zero-escape": ahc_zero_escape,
    "ret-addr-corruption": ret_addr_corruption,
}


def build_scenario(name: str, seed: int = 7) -> ScenarioInstance:
    """Materialise one named scenario at ``seed``."""
    builder = SCENARIOS.get(name)
    if builder is None:
        raise WorkloadError(
            f"unknown scenario {name!r}; known: {', '.join(SCENARIOS)}"
        )
    return builder(seed)


def parse_scenarios(names: Optional[Sequence[str]]) -> List[str]:
    """Validate a CLI scenario list (None = the full corpus, in order)."""
    if not names:
        return list(SCENARIOS)
    for name in names:
        if name not in SCENARIOS:
            raise WorkloadError(
                f"unknown scenario {name!r}; known: {', '.join(SCENARIOS)}"
            )
    return list(names)


# ----------------------------------------------------- Program compilation


#: Live objects pre-allocated around the scenario so its chunks sit in a
#: realistic neighbourhood (and the AOS lowering warms the HBT).
_PREAMBLE_OBJECTS = 8
_PREAMBLE_SIZE = 64
#: Filler events between attacker steps: background compute keeps the
#: scoreboard/ROB machinery exercised the way real programs do.
_PAD_EVENTS = 24


def scenario_trace(
    instance: ScenarioInstance, scale: int = 8, profile: str = "gcc"
) -> WorkloadTrace:
    """Compile a scenario's access pattern to a :class:`WorkloadTrace`.

    The trace reproduces the recipe's allocation/access sequence with the
    event vocabulary of :mod:`repro.workloads.generator`, so the standard
    compiler passes lower it to a :class:`~repro.isa.program.Program` per
    mechanism and the timing kernels execute the exploit for real (OOB and
    stale accesses surface as ``validation_faults``).  Steps the trace ISA
    cannot express (PAC/AHC forging, a second ``free``) lower to pointer
    arithmetic so the instruction stream still carries their cost.
    """
    rng = random.Random(f"adversary-trace:{instance.name}:{instance.seed}")
    base_profile = get_profile(profile)
    trace_profile = dataclasses.replace(
        base_profile, name=f"attack:{instance.name}"
    )

    object_sizes: Dict[int, int] = {}
    preamble: List[Tuple[int, int]] = []
    for oid in range(_PREAMBLE_OBJECTS):
        object_sizes[oid] = _PREAMBLE_SIZE
        preamble.append((oid, _PREAMBLE_SIZE))

    events: List[tuple] = []

    def pad() -> None:
        for _ in range(_PAD_EVENTS):
            draw = rng.random()
            if draw < 0.55:
                events.append(("alu",))
            elif draw < 0.75:
                events.append(("br", rng.random() < 0.05))
            else:
                oid = rng.randrange(_PREAMBLE_OBJECTS)
                offset = rng.randrange(0, _PREAMBLE_SIZE - 8, 8)
                events.append(("ld", oid, offset, False, False))

    ids: Dict[str, int] = {}
    next_id = _PREAMBLE_OBJECTS
    freed: set = set()

    pad()
    for step in instance.steps:
        if step.op == "malloc":
            ids[step.obj] = next_id
            object_sizes[next_id] = step.size
            events.append(("m", next_id, step.size))
            next_id += 1
        elif step.op == "alias":
            ids[step.obj] = ids[step.src]
        elif step.op == "free":
            oid = ids[step.obj]
            if oid in freed:
                # The allocator-level second free cannot lower (the heap
                # executes for real at lowering time); keep its cost.
                events.append(("pa",))
            else:
                freed.add(oid)
                events.append(("f", oid))
        elif step.op == "load":
            events.append(("ld", ids[step.obj], step.offset, False, False))
        elif step.op == "store":
            events.append(("st", ids[step.obj], step.offset, False))
        elif step.op == "call":
            events.append(("call",))
        elif step.op == "ret":
            events.append(("ret",))
        elif step.op == "smash-ret":
            # The overwrite itself is a plain data store into the stack's
            # saved-return slot; the *detection* cost sits in the return.
            events.append(("ust", 0, 0))
        else:  # zero-ahc / forge-pac: pointer arithmetic in the trace ISA
            events.append(("pa",))
        pad()

    return WorkloadTrace(
        profile=trace_profile,
        preamble=preamble,
        events=events,
        object_sizes=object_sizes,
        scale=scale,
        seed=instance.seed,
    )


def compile_scenario(
    name: str,
    mechanism: str = "aos",
    seed: int = 7,
    scale: int = 8,
    config=None,
):
    """Lower one named scenario to a runnable program for ``mechanism``.

    Returns the :class:`~repro.compiler.passes.LoweredWorkload`; feed it to
    :class:`~repro.cpu.core.Simulator` with either kernel.  The kernel-
    equivalence suite pins byte-identical results across kernels on these
    programs.
    """
    from ..compiler import lower_trace
    from ..experiments.common import scaled_config

    instance = build_scenario(name, seed=seed)
    trace = scenario_trace(instance, scale=scale)
    return lower_trace(trace, mechanism, config=config or scaled_config(mechanism, scale))


def export_scenario(
    name: str,
    path,
    format: str = "jsonl",
    seed: int = 7,
    scale: int = 8,
    profile: str = "gcc",
) -> WorkloadTrace:
    """Compile one named scenario and export it as a versioned trace file.

    The exploit's access pattern — stale loads into freed chunks, OOB
    offsets past the object bound — is *valid* trace schema (the importer
    admits attack traces), so a re-ingested scenario lowers and simulates
    identically to the direct :func:`compile_scenario` path; see
    ``tests/test_traces_roundtrip.py``.
    """
    from ..traces import record_trace

    instance = build_scenario(name, seed=seed)
    trace = scenario_trace(instance, scale=scale, profile=profile)
    record_trace(
        trace,
        path,
        format=format,
        generator={
            "source": "scenario",
            "scenario": name,
            "seed": seed,
            "scale": scale,
            "profile": profile,
        },
    )
    return trace

"""Adversarial scenario corpus and chaos campaigns (§VII, ROADMAP item 4).

:mod:`~repro.adversary.scenarios` is the corpus: named, seeded exploit
recipes (overflow, OOB, UAF, double free, PAC forgery/replay, the §VII-C
AHC-zeroing escape) each carrying an expected-verdict oracle per mechanism
and a compilation path to a runnable :class:`~repro.isa.program.Program`.

:mod:`~repro.adversary.chaos` sweeps the corpus across every mechanism
adapter under the supervision layer and classifies each cell's observed
outcome against the oracle; ``python -m repro attack`` is the CLI.
"""

from .chaos import (
    ChaosCampaign,
    ChaosConfig,
    ScenarioMatrix,
    ScenarioOutcome,
    ScenarioRun,
    UnsupportedScenario,
    VERDICTS,
    classify_verdict,
    execute_scenario,
    run_quick_chaos,
    run_scenario_cell,
)
from .scenarios import (
    SCENARIOS,
    Expectation,
    ScenarioInstance,
    Step,
    build_scenario,
    compile_scenario,
    export_scenario,
    parse_scenarios,
    scenario_trace,
)

__all__ = [
    "SCENARIOS",
    "VERDICTS",
    "ChaosCampaign",
    "ChaosConfig",
    "Expectation",
    "ScenarioInstance",
    "ScenarioMatrix",
    "ScenarioOutcome",
    "ScenarioRun",
    "Step",
    "UnsupportedScenario",
    "build_scenario",
    "classify_verdict",
    "compile_scenario",
    "execute_scenario",
    "export_scenario",
    "parse_scenarios",
    "run_quick_chaos",
    "run_scenario_cell",
    "scenario_trace",
]

"""Chaos campaigns: the scenario corpus × every mechanism, supervised.

:func:`run_scenario_cell` interprets one scenario recipe against one
mechanism adapter and classifies the observed outcome; the interpreter
never lets an exception escape the taxonomy — a scenario that crashes or
hangs the simulator is a **robustness bug** (a first-class finding of the
campaign), not a campaign failure.

:class:`ChaosCampaign` sweeps the corpus under the supervision layer
(deadlines, bounded retries, quarantine): the worker is the same
module-level function serial runs use, so a supervised sweep classifies
cells identically, and quarantined cells surface as robustness bugs with
their failure history.  A mechanism adapter that does not model a
scenario's attacker primitive yields an explicit ``unsupported`` verdict —
never a silent pass.

The verdict of each cell compares the *observed* outcome against the
corpus's expected-verdict oracle:

================== ====================================================
as-expected         observation matches the oracle (detected where it
                    must/may, or a may-detect that legitimately missed)
missed-detection    a MUST_DETECT scenario went undetected — the only
                    verdict that fails the campaign
surprise-detection  a documented escape was detected after all (the
                    model is *stronger* than claimed: worth a look)
escape-confirmed    a KNOWN_ESCAPE landed silently, reported by name
unmodeled           the adapter does not model the attacker primitive
robustness-bug      the cell crashed, hung, or was quarantined
================== ====================================================
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from enum import Enum
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import ExperimentTimeout, ReproError, WorkloadError
from ..faults.campaign import Deadline
from ..mechanisms.registry import REGISTRY, parse_mechanisms
from ..security.adapters import DETECTION_EXCEPTIONS, MECHANISM_ADAPTERS, make_adapter
from .scenarios import (
    Expectation,
    ScenarioInstance,
    Step,
    build_scenario,
    parse_scenarios,
)


class UnsupportedScenario(ReproError):
    """The adapter does not expose the attacker primitive a step needs."""


class ScenarioOutcome(Enum):
    """What actually happened when the recipe ran against a mechanism."""

    DETECTED = "detected"
    UNDETECTED = "undetected"
    UNSUPPORTED = "unsupported"
    CRASHED = "crashed"
    TIMED_OUT = "timed-out"


#: Verdict labels (observed vs expected); ``missed-detection`` is the only
#: campaign-failing one.
VERDICTS = (
    "as-expected",
    "missed-detection",
    "surprise-detection",
    "escape-confirmed",
    "unmodeled",
    "robustness-bug",
)


def classify_verdict(expected: Expectation, observed: ScenarioOutcome) -> str:
    """Fold (oracle claim, observation) into one verdict label."""
    if observed in (ScenarioOutcome.CRASHED, ScenarioOutcome.TIMED_OUT):
        return "robustness-bug"
    if observed is ScenarioOutcome.UNSUPPORTED:
        return "unmodeled"
    if expected is Expectation.UNSUPPORTED:
        # The adapter ran a recipe the oracle thought it could not model —
        # the observation wins, but flag the stale oracle entry loudly.
        return (
            "surprise-detection"
            if observed is ScenarioOutcome.DETECTED
            else "escape-confirmed"
        )
    if observed is ScenarioOutcome.DETECTED:
        return (
            "surprise-detection"
            if expected is Expectation.KNOWN_ESCAPE
            else "as-expected"
        )
    # observed UNDETECTED
    if expected is Expectation.MUST_DETECT:
        return "missed-detection"
    if expected is Expectation.KNOWN_ESCAPE:
        return "escape-confirmed"
    return "as-expected"  # MAY_DETECT: a miss is within the model


# ------------------------------------------------------------ interpreter


def _apply_step(adapter, env: Dict[str, Any], step: Step) -> None:
    """Execute one attacker action against ``adapter``."""
    if step.op == "malloc":
        env[step.obj] = adapter.malloc(step.size)
    elif step.op == "alias":
        env[step.obj] = env[step.src]
    elif step.op == "free":
        # Deliberately discard free()'s return value: the attacker's copy
        # in ``env`` stays stale (AOS hands back a re-signed locked
        # pointer precisely so honest code *loses* the dangling one).
        adapter.free(env[step.obj])
    elif step.op == "load":
        adapter.load(adapter.offset(env[step.obj], step.offset))
    elif step.op == "store":
        adapter.store(adapter.offset(env[step.obj], step.offset), step.value)
    elif step.op in ("call", "ret"):
        action = getattr(adapter, step.op, None)
        if action is None:
            raise UnsupportedScenario(
                f"{adapter.name} does not model a call stack"
            )
        action()
    elif step.op == "smash-ret":
        smash = getattr(adapter, "smash_ret", None)
        if smash is None:
            raise UnsupportedScenario(
                f"{adapter.name} does not model a call stack"
            )
        smash(step.value)
    elif step.op == "zero-ahc":
        forge = getattr(adapter, "forge_ahc_zero", None)
        if forge is None:
            raise UnsupportedScenario(
                f"{adapter.name} has no AHC field to zero"
            )
        env[step.obj] = forge(env[step.obj])
    elif step.op == "forge-pac":
        forge = getattr(adapter, "forge_pac", None)
        if forge is None:
            raise UnsupportedScenario(
                f"{adapter.name} has no PAC field to forge"
            )
        forged = forge(env[step.obj], step.value)
        if forged == env[step.obj]:
            # Seeded guess collided with the real PAC; any flipped bit is
            # still a forgery.
            forged = forge(env[step.obj], step.value ^ 1)
        env[step.obj] = forged
    else:  # pragma: no cover - Step.__post_init__ rejects unknown ops
        raise WorkloadError(f"unknown scenario step op {step.op!r}")


def execute_scenario(
    instance: ScenarioInstance,
    mechanism: str,
    deadline: Optional[Deadline] = None,
) -> Tuple[ScenarioOutcome, str]:
    """Run one recipe against one mechanism; returns (outcome, detail).

    Only :class:`ExperimentTimeout` propagates (the supervised worker owns
    the timed-out classification); everything else folds into the outcome.
    """
    adapter = make_adapter(mechanism)
    # Resolved at run time so plugin mechanisms registered after import
    # contribute their fault types to the detection set.
    detections = REGISTRY.detection_exceptions()
    env: Dict[str, Any] = {}
    for index, step in enumerate(instance.steps):
        if deadline is not None:
            deadline.check()
        try:
            _apply_step(adapter, env, step)
        except detections as exc:
            return (
                ScenarioOutcome.DETECTED,
                f"step {index} ({step.op}): {type(exc).__name__}: {exc}",
            )
        except UnsupportedScenario as exc:
            return ScenarioOutcome.UNSUPPORTED, str(exc)
        except ExperimentTimeout:
            raise
        except Exception as exc:
            # A recipe must never take the harness down: anything outside
            # the detection set is a robustness bug in the simulator.
            return (
                ScenarioOutcome.CRASHED,
                f"step {index} ({step.op}): {type(exc).__name__}: {exc}",
            )
    return ScenarioOutcome.UNDETECTED, "all steps completed silently"


# ------------------------------------------------------------------ cells


@dataclass
class ScenarioRun:
    """One classified (scenario, mechanism) cell."""

    scenario: str
    mechanism: str
    category: str
    expected: str  # Expectation value
    observed: str  # ScenarioOutcome value
    verdict: str  # one of VERDICTS
    detail: str = ""
    paper_ref: str = ""
    seed: int = 7
    elapsed: float = 0.0

    @property
    def failed(self) -> bool:
        return self.verdict == "missed-detection"

    def to_payload(self) -> dict:
        return dict(self.__dict__)

    def stable_payload(self) -> dict:
        """Payload minus wall-clock fields (committed-artifact form)."""
        data = self.to_payload()
        data.pop("elapsed", None)
        return data

    @classmethod
    def from_payload(cls, payload: dict) -> "ScenarioRun":
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in known})


def run_scenario_cell(payload: Tuple[str, str, int, Optional[float]]) -> ScenarioRun:
    """Classify one cell.  Module-level and picklable-in/out, so the
    supervised and serial paths share it verbatim."""
    scenario_name, mechanism, seed, timeout_s = payload
    instance = build_scenario(scenario_name, seed=seed)
    expected = instance.expected(mechanism)
    deadline = Deadline(timeout_s)
    try:
        observed, detail = execute_scenario(instance, mechanism, deadline)
    except ExperimentTimeout as exc:
        observed, detail = ScenarioOutcome.TIMED_OUT, str(exc)
    return ScenarioRun(
        scenario=scenario_name,
        mechanism=mechanism,
        category=instance.category,
        expected=expected.value,
        observed=observed.value,
        verdict=classify_verdict(expected, observed),
        detail=detail,
        paper_ref=instance.paper_ref,
        seed=seed,
        elapsed=deadline.elapsed,
    )


# -------------------------------------------------------------- campaign


@dataclass(frozen=True)
class ChaosConfig:
    """Shape of one chaos campaign over the corpus."""

    #: Scenario names (default: the full corpus, in registry order).
    scenarios: Sequence[str] = ()
    #: Mechanism names swept.  The empty default means *every mechanism
    #: registered at run time*, so plugins registered after this module
    #: imported still join the sweep.
    mechanisms: Sequence[str] = ()
    seed: int = 7
    #: Per-cell cooperative wall-clock budget (None = unbounded).
    timeout_s: Optional[float] = 20.0

    def scenario_names(self) -> List[str]:
        return parse_scenarios(self.scenarios or None)

    def mechanism_names(self) -> List[str]:
        return parse_mechanisms(self.mechanisms or None)

    def __post_init__(self) -> None:
        for mechanism in self.mechanisms:
            if mechanism not in REGISTRY:
                raise WorkloadError(
                    f"unknown mechanism {mechanism!r}; known: "
                    + ", ".join(REGISTRY.names())
                )
        self.scenario_names()  # validate scenario names eagerly

    @classmethod
    def quick(cls, **overrides) -> "ChaosConfig":
        """``attack --quick``: full corpus × three contrasting mechanisms
        (unprotected, plain AOS with its §VII-C escape, and PA+AOS)."""
        defaults = dict(mechanisms=("baseline", "aos", "pa+aos"))
        defaults.update(overrides)
        return cls(**defaults)


@dataclass
class ScenarioMatrix:
    """Every classified cell of a chaos campaign, plus the roll-ups."""

    runs: List[ScenarioRun] = field(default_factory=list)
    #: Cells the supervisor gave up on (scenario/mechanism/reason) —
    #: robustness bugs with their full failure history.
    quarantined: List[dict] = field(default_factory=list)
    #: SupervisionReport for supervised sweeps, None otherwise.
    supervision: Optional[object] = None

    def __len__(self) -> int:
        return len(self.runs)

    def must_detect_failures(self) -> List[ScenarioRun]:
        return [run for run in self.runs if run.failed]

    def robustness_bugs(self) -> List[dict]:
        bugs = [
            {
                "scenario": run.scenario,
                "mechanism": run.mechanism,
                "reason": f"{run.observed}: {run.detail}",
            }
            for run in self.runs
            if run.verdict == "robustness-bug"
        ]
        return bugs + list(self.quarantined)

    def known_escapes(self) -> List[ScenarioRun]:
        return [run for run in self.runs if run.verdict == "escape-confirmed"]

    @property
    def ok(self) -> bool:
        """The campaign's pass/fail: every MUST_DETECT cell detected.
        Robustness bugs are findings, not failures (module docstring)."""
        return not self.must_detect_failures()

    def verdict_counts(self) -> Dict[str, int]:
        counts = {verdict: 0 for verdict in VERDICTS}
        for run in self.runs:
            counts[run.verdict] += 1
        return counts

    def cell(self, scenario: str, mechanism: str) -> Optional[ScenarioRun]:
        for run in self.runs:
            if run.scenario == scenario and run.mechanism == mechanism:
                return run
        return None

    def to_payload(self) -> dict:
        return {
            "kind": "scenario-matrix",
            "runs": [run.stable_payload() for run in self.runs],
            "quarantined": list(self.quarantined),
            "verdicts": self.verdict_counts(),
            "ok": self.ok,
        }

    def format_report(self) -> str:
        from ..stats.scenario_coverage import ScenarioCoverage

        coverage = ScenarioCoverage.from_matrix(self)
        counts = self.verdict_counts()
        lines = [
            "Adversarial scenario corpus — chaos campaign (cf. §VII)",
            "",
            coverage.format_table(),
            "",
            f"cells: {len(self.runs)}  "
            + "  ".join(f"{v}: {n}" for v, n in counts.items() if n),
        ]
        escapes = self.known_escapes()
        if escapes:
            lines.append("known escapes confirmed (never a silent pass):")
            for run in escapes:
                ref = f" [{run.paper_ref}]" if run.paper_ref else ""
                lines.append(f"  - {run.scenario} vs {run.mechanism}{ref}")
        failures = self.must_detect_failures()
        if failures:
            lines.append("MISSED DETECTIONS (campaign failure):")
            for run in failures:
                lines.append(
                    f"  - {run.scenario} vs {run.mechanism}: {run.detail}"
                )
        bugs = self.robustness_bugs()
        if bugs:
            lines.append("robustness bugs (simulator findings, not failures):")
            for bug in bugs:
                lines.append(
                    f"  - {bug['scenario']} vs {bug['mechanism']}: {bug['reason']}"
                )
        if self.supervision is not None:
            lines.append("")
            lines.append(self.supervision.format())
        return "\n".join(lines)


class ChaosCampaign:
    """Sweeps the scenario corpus across mechanisms, optionally supervised."""

    def __init__(self, config: ChaosConfig = ChaosConfig()) -> None:
        self.config = config

    def cells(self) -> List[Tuple[str, str]]:
        """The sweep grid, in deterministic order."""
        return [
            (scenario, mechanism)
            for scenario in self.config.scenario_names()
            for mechanism in self.config.mechanism_names()
        ]

    def _payload(self, scenario: str, mechanism: str):
        return (scenario, mechanism, self.config.seed, self.config.timeout_s)

    def run(self, supervise=None, jobs: int = 1, progress=None) -> ScenarioMatrix:
        """Classify every cell; under ``supervise`` (a
        :class:`~repro.supervise.SupervisorConfig`) hung or crashing
        workers are retried with deterministic backoff and repeat
        offenders become quarantined robustness-bug records."""
        if supervise is not None:
            return self._run_supervised(supervise, jobs, progress)
        matrix = ScenarioMatrix()
        for scenario, mechanism in self.cells():
            run = run_scenario_cell(self._payload(scenario, mechanism))
            matrix.runs.append(run)
            if progress is not None:
                progress(run)
        return matrix

    def _run_supervised(self, supervise, jobs: int, progress) -> ScenarioMatrix:
        import dataclasses as _dataclasses

        from ..supervise import Supervisor, Task

        if supervise.jobs < 1:
            supervise = _dataclasses.replace(supervise, jobs=max(1, jobs))
        cells = self.cells()
        tasks = [
            Task(
                key=json.dumps(["scenario", scenario, mechanism]),
                payload=self._payload(scenario, mechanism),
            )
            for scenario, mechanism in cells
        ]
        by_key: Dict[str, ScenarioRun] = {}

        def on_result(key: str, run: ScenarioRun) -> None:
            by_key[key] = run
            if progress is not None:
                progress(run)

        _, report = Supervisor(supervise).run(
            run_scenario_cell, tasks, on_result=on_result
        )
        matrix = ScenarioMatrix(supervision=report)
        for task, (scenario, mechanism) in zip(tasks, cells):
            if task.key in by_key:
                matrix.runs.append(by_key[task.key])
            elif task.key in report.quarantined:
                matrix.quarantined.append(
                    {
                        "scenario": scenario,
                        "mechanism": mechanism,
                        "reason": report.quarantined[task.key],
                    }
                )
        return matrix


def run_quick_chaos(**overrides) -> ScenarioMatrix:
    """Convenience: the ``attack --quick`` campaign in one serial call."""
    return ChaosCampaign(ChaosConfig.quick(**overrides)).run()

"""Exception hierarchy for the AOS reproduction.

Every error raised by this package derives from :class:`ReproError` so
downstream users can catch package failures with a single ``except`` clause.
Simulated *architectural* faults (the events a real AOS machine would raise
as hardware exceptions and hand to the OS) live in
:mod:`repro.core.exceptions`; the classes here represent *host-level* misuse
of the library itself.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigError(ReproError):
    """A simulation parameter is out of range or inconsistent."""


class MemoryError_(ReproError):
    """Illegal use of the simulated memory model (bad address, overlap...).

    Named with a trailing underscore to avoid shadowing the built-in
    :class:`MemoryError`, which means something entirely different.
    """


class AllocatorError(ReproError):
    """The simulated heap allocator was driven into an invalid state."""


class EncodingError(ReproError):
    """A pointer/bounds encoding operation received an unencodable value."""


class SimulationError(ReproError):
    """The timing simulation reached an inconsistent internal state."""


class WorkloadError(ReproError):
    """A workload profile or trace generator was mis-parameterised."""


class FaultInjectionError(ReproError):
    """A fault-injection request could not be applied to the target state
    (unknown fault kind, no live object/slot at the requested location)."""


class ExperimentTimeout(ReproError):
    """A single experiment/campaign run exceeded its wall-clock deadline.

    Raised cooperatively by :class:`repro.faults.campaign.Deadline` checks
    between simulated operations, so a wedged run surfaces as a structured
    ``timed-out`` outcome instead of stalling the whole sweep.
    """


class CheckpointError(ReproError):
    """A results checkpoint file is unreadable or belongs to a different
    run configuration."""

"""Exception hierarchy for the AOS reproduction.

Every error raised by this package derives from :class:`ReproError` so
downstream users can catch package failures with a single ``except`` clause.
Simulated *architectural* faults (the events a real AOS machine would raise
as hardware exceptions and hand to the OS) live in
:mod:`repro.core.exceptions`; the classes here represent *host-level* misuse
of the library itself.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigError(ReproError):
    """A simulation parameter is out of range or inconsistent."""


class MemoryError_(ReproError):
    """Illegal use of the simulated memory model (bad address, overlap...).

    Named with a trailing underscore to avoid shadowing the built-in
    :class:`MemoryError`, which means something entirely different.
    """


class AllocatorError(ReproError):
    """The simulated heap allocator was driven into an invalid state."""


class EncodingError(ReproError):
    """A pointer/bounds encoding operation received an unencodable value."""


class SimulationError(ReproError):
    """The timing simulation reached an inconsistent internal state."""


class WorkloadError(ReproError):
    """A workload profile or trace generator was mis-parameterised."""

"""Exception hierarchy for the AOS reproduction.

Every error raised by this package derives from :class:`ReproError` so
downstream users can catch package failures with a single ``except`` clause.
Simulated *architectural* faults (the events a real AOS machine would raise
as hardware exceptions and hand to the OS) live in
:mod:`repro.core.exceptions`; the classes here represent *host-level* misuse
of the library itself.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigError(ReproError):
    """A simulation parameter is out of range or inconsistent."""


class MemoryError_(ReproError):
    """Illegal use of the simulated memory model (bad address, overlap...).

    Named with a trailing underscore to avoid shadowing the built-in
    :class:`MemoryError`, which means something entirely different.
    """


class AllocatorError(ReproError):
    """The simulated heap allocator was driven into an invalid state."""


class EncodingError(ReproError):
    """A pointer/bounds encoding operation received an unencodable value."""


class SimulationError(ReproError):
    """The timing simulation reached an inconsistent internal state."""


class WorkloadError(ReproError):
    """A workload profile or trace generator was mis-parameterised."""


class FaultInjectionError(ReproError):
    """A fault-injection request could not be applied to the target state
    (unknown fault kind, no live object/slot at the requested location)."""


class ExperimentTimeout(ReproError):
    """A single experiment/campaign run exceeded its wall-clock deadline.

    Raised cooperatively by :class:`repro.faults.campaign.Deadline` checks
    between simulated operations, so a wedged run surfaces as a structured
    ``timed-out`` outcome instead of stalling the whole sweep.
    """


class CheckpointError(ReproError):
    """A results checkpoint file is unreadable or belongs to a different
    run configuration."""


class InvariantViolation(ReproError):
    """The ``--paranoid`` oracle found simulator state that breaks an AOS
    structural invariant (non-terminal MCQ entries, HBT occupancy diverging
    from the live allocation count, BWB hints beyond the associativity,
    signed pointers that no longer round-trip) — i.e. silent corruption
    that the normal outcome taxonomy would have reported as a clean cell.

    ``violations`` carries the individual findings (printable objects).
    """

    def __init__(self, message: str, violations=()):
        super().__init__(message)
        self.violations = list(violations)

    def __reduce__(self):
        return (type(self), (self.args[0], self.violations))


class SupervisionError(ReproError):
    """The supervision layer itself was misused (bad policy parameters,
    duplicate task keys) — distinct from the task failures it manages."""


class TraceFormatError(ReproError):
    """A trace file violates the versioned trace schema (`repro.traces`).

    This is the contract the ingestion frontend makes with callers: a
    malformed, truncated or inconsistent trace file *always* raises this
    (or a subclass) — it never produces a silent partial
    :class:`~repro.workloads.WorkloadTrace`/``Program``.
    """


class TraceVersionError(TraceFormatError):
    """The trace header declares a schema version this decoder does not
    speak (forward-incompatible versions are rejected, never guessed)."""


class TraceDecodeError(TraceFormatError):
    """The byte/line stream itself is malformed: bad magic, truncated
    frame or line, unknown record kind, missing end-of-trace record,
    trailing garbage, or a field that fails schema validation."""


class TraceSemanticError(TraceFormatError):
    """The record stream decodes but describes an impossible program:
    duplicate allocation ids, frees of unknown objects, double frees,
    accesses to objects that were never declared, preamble objects
    appearing after window events."""

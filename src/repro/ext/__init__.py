"""Extensions beyond the paper's evaluated scope — its declared future work.

- :mod:`~repro.ext.stack`: AOS-style protection for stack objects.  §III-D:
  "We believe that our approach can be applied to other data-pointer types
  (e.g., stack pointers) in a similar manner but leave this as future
  work."
- :mod:`~repro.ext.narrowing`: sub-object bounds narrowing for intra-object
  overflow detection.  §VII-F: "The current AOS implementation does not
  support the bounds narrowing.  We leave this for future work."

Both reuse the unchanged AOS machinery (pacma signing, HBT, MCU checks),
demonstrating that the paper's mechanism generalises as claimed.
"""

from .stack import ProtectedStack, StackFrame
from .narrowing import narrow, release_narrowed, NARROW_GRANULE

__all__ = [
    "ProtectedStack",
    "StackFrame",
    "narrow",
    "release_narrowed",
    "NARROW_GRANULE",
]

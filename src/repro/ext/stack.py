"""AOS stack-object protection — the §III-D future-work extension.

Stack objects get the same treatment heap objects do: on ``alloca`` the
frame pointer is signed with ``pacma`` and its bounds stored with
``bndstr``; on function return the frame's bounds are cleared with
``bndclr`` and the pointers re-signed (locked).  This yields:

- spatial safety for stack buffers (the classic stack smash), and
- temporal safety for **use-after-return** — the stack analogue of UAF,
  which the re-sign-on-release trick catches exactly like a dangling heap
  pointer.

The HBT, MCU and exception machinery are the unchanged heap components;
only the allocation discipline (LIFO frames instead of malloc/free)
differs, supporting the paper's claim that the approach generalises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..core.aos import AOSRuntime
from ..errors import MemoryError_

#: Stack slots are 16-byte aligned, like AArch64 SP.
STACK_ALIGN = 16


@dataclass
class StackFrame:
    """One function activation's protected locals."""

    base_sp: int
    #: (signed pointer, size) for every alloca in this frame.
    objects: List[Tuple[int, int]] = field(default_factory=list)


class ProtectedStack:
    """A downward-growing stack with AOS-protected local objects."""

    def __init__(self, runtime: AOSRuntime, reserve: int = 1 << 20) -> None:
        self.runtime = runtime
        layout = runtime.address_layout
        self._top = layout.stack_top - 0x1000
        self._limit = self._top - reserve
        self._sp = self._top
        self._frames: List[StackFrame] = []

    @property
    def depth(self) -> int:
        return len(self._frames)

    @property
    def sp(self) -> int:
        return self._sp

    # ---------------------------------------------------------------- frames

    def push_frame(self) -> StackFrame:
        """Function prologue: open a new activation frame."""
        frame = StackFrame(base_sp=self._sp)
        self._frames.append(frame)
        return frame

    def alloca(self, size: int) -> int:
        """Allocate a protected local; returns a *signed* pointer.

        Signs with the current SP as the pacma modifier — exactly the
        Fig. 7a discipline, with the stack slot standing in for the
        malloc'd chunk.
        """
        if not self._frames:
            raise MemoryError_("alloca outside any frame")
        aligned = (size + STACK_ALIGN - 1) & ~(STACK_ALIGN - 1)
        new_sp = self._sp - aligned
        if new_sp < self._limit:
            raise MemoryError_("protected stack overflow")
        self._sp = new_sp
        signed = self.runtime.signer.pacma(new_sp, self._sp, size)
        result = self.runtime.mcu.bounds_store(signed, size)
        if not result.ok and result.fault is not None:
            raise result.fault
        self._frames[-1].objects.append((signed, size))
        return signed

    def pop_frame(self) -> List[int]:
        """Function epilogue: release the frame's locals.

        Clears every local's bounds and re-signs the pointers — any
        escaped pointer to a local becomes a locked dangling pointer, so
        use-after-return faults on the next dereference.
        """
        if not self._frames:
            raise MemoryError_("pop_frame on an empty stack")
        frame = self._frames.pop()
        dangling: List[int] = []
        for signed, _size in frame.objects:
            result = self.runtime.mcu.bounds_clear(signed)
            if not result.ok and result.fault is not None:
                raise result.fault
            stripped = self.runtime.signer.xpacm(signed)
            dangling.append(self.runtime.signer.pacma(stripped, self._sp, 0))
        self._sp = frame.base_sp
        return dangling

    # ---------------------------------------------------------------- access

    def load(self, pointer: int, size: int = 8) -> int:
        return self.runtime.load(pointer, size)

    def store(self, pointer: int, value: int, size: int = 8) -> None:
        self.runtime.store(pointer, value, size)

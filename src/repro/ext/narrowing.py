"""Bounds narrowing for intra-object overflows — the §VII-F extension.

Several bounds-checking mechanisms narrow a pointer's bounds when it is
derived to point at a *field* of a struct, so overflowing one field into
its neighbour is caught.  The paper notes AOS does not support this (and
that SPEC contains benign intra-object overruns — gcc and soplex even
rely on them), leaving it as future work.

This extension implements narrowing with the unchanged AOS machinery: the
field pointer is re-signed (``pacma`` over the field's base address gives
it its own PAC) and a fresh bounds record for just the field is stored
with ``bndstr``.  Checks then validate field accesses against the
narrowed bounds automatically — no MCU change at all.

Granularity caveat: compressed bounds require 16-byte-aligned lower
bounds (§V-D), so narrowed bounds snap outward to 16-byte granules —
small neighbouring fields inside one granule stay mutually accessible,
the same granularity compromise MTE makes (§X).
"""

from __future__ import annotations

from ..core.aos import AOSRuntime
from ..errors import EncodingError

#: Narrowed bounds snap to the malloc alignment granule (§V-D).
NARROW_GRANULE = 16


def narrow(runtime: AOSRuntime, pointer: int, offset: int, size: int) -> int:
    """Derive a signed *field pointer* with narrowed bounds.

    ``pointer`` must be a live signed AOS pointer; the returned pointer
    addresses ``pointer + offset`` and is only valid for ``size`` bytes
    (rounded outward to 16-byte granules).
    """
    if size <= 0:
        raise EncodingError("narrowed size must be positive")
    # The derivation itself is bounds-checked: deriving an OOB field
    # pointer is already a violation.
    runtime.mcu.check_access(pointer)

    field_address = runtime.signer.xpacm(pointer) + offset
    lower = field_address & ~(NARROW_GRANULE - 1)
    upper = field_address + size
    span = upper - lower
    span = (span + NARROW_GRANULE - 1) & ~(NARROW_GRANULE - 1)

    signed = runtime.signer.pacma(lower, runtime.sp, span)
    result = runtime.mcu.bounds_store(signed, span)
    if not result.ok and result.fault is not None:
        raise result.fault
    # Hand back a pointer to the field itself (metadata rides along).
    return signed + (field_address - lower)


def release_narrowed(runtime: AOSRuntime, field_pointer: int) -> int:
    """Drop a narrowed view: clear its bounds and lock the pointer.

    Mirrors the Fig. 7b free discipline — a narrowed pointer used after
    release faults like any dangling pointer.
    """
    layout = runtime.signer.layout
    base = layout.address(field_pointer) & ~(NARROW_GRANULE - 1)
    pac = layout.pac(field_pointer)
    ahc = layout.ahc(field_pointer)
    base_pointer = layout.sign(base, pac, ahc)
    result = runtime.mcu.bounds_clear(base_pointer)
    if not result.ok and result.fault is not None:
        raise result.fault
    stripped = runtime.signer.xpacm(field_pointer)
    return runtime.signer.pacma(stripped, runtime.sp, 0)

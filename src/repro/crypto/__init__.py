"""Cryptographic substrate: the QARMA-64 tweakable block cipher and PACs.

Arm PA computes pointer authentication codes with QARMA (Avanzi, ToSC 2017).
:mod:`repro.crypto.qarma` is a from-scratch reference implementation of
QARMA-64; :mod:`repro.crypto.pac` layers the Arm-PA-style truncation and key
handling on top of it.
"""

from .qarma import Qarma64, qarma64_encrypt, qarma64_decrypt
from .pac import PACGenerator, PAKeys

__all__ = [
    "Qarma64",
    "qarma64_encrypt",
    "qarma64_decrypt",
    "PACGenerator",
    "PAKeys",
]

"""Pointer authentication code (PAC) generation on top of QARMA-64.

Arm PA computes ``PAC = truncate(QARMA(key, pointer, modifier))`` and places
it in the unused upper bits of the pointer (§II-B).  The PAC size depends on
the virtual-address scheme; the paper evaluates 16-bit PACs (Table IV).

:class:`PAKeys` models the banked key registers of Armv8.3-A (APIAKey,
APIBKey, APDAKey, APDBKey, plus the AOS "M" keys for ``pacma``/``pacmb``),
which are architecturally invisible to user space — the threat model assumes
the attacker cannot read them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from .qarma import Qarma64

MASK64 = (1 << 64) - 1


def _splitmix64(x: int) -> int:
    """A well-mixed 64-bit finaliser (SplitMix64) for the fast PAC mode."""
    x = (x + 0x9E3779B97F4A7C15) & MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & MASK64
    return x ^ (x >> 31)


@dataclass
class PAKeys:
    """The per-process PA key registers.

    Defaults use the published values from §VI of the paper so the Fig. 11
    experiment is bit-for-bit reproducible.
    """

    #: Instruction keys (return-address / code-pointer signing).
    apia: int = 0x4E6F572069574E54206F6620416C6C21
    apib: int = 0x1A2B3C4D5E6F708192A3B4C5D6E7F809
    #: Data keys (Arm ``pacda``/``pacdb``).
    apda: int = 0x9D8C7B6A5948372615F4E3D2C1B0A998
    apdb: int = 0x0F1E2D3C4B5A69788796A5B4C3D2E1F0
    #: AOS memory keys (``pacma``/``pacmb``, §IV-A).  Key A defaults to the
    #: paper's published study key.
    apma: int = 0x84BE85CE9804E94BEC2802D4E0A488E9
    apmb: int = 0x2B7E151628AED2A6ABF7158809CF4F3C

    def key_for(self, name: str) -> int:
        """Look up a key register by its short name (e.g. ``"ia"``, ``"ma"``)."""
        table = {
            "ia": self.apia,
            "ib": self.apib,
            "da": self.apda,
            "db": self.apdb,
            "ma": self.apma,
            "mb": self.apmb,
        }
        if name not in table:
            raise KeyError(f"unknown PA key register {name!r}")
        return table[name]


@dataclass
class PACGenerator:
    """Computes truncated PACs the way Arm PA does (QARMA + truncation).

    Parameters
    ----------
    keys:
        The key register file.
    pac_bits:
        The PAC width; 11..32 depending on the VA scheme (§II-B).  The
        paper's evaluation uses 16.
    rounds, sbox:
        QARMA parameters.  ``sigma_1`` with ``r = 7`` is the recommended
        QARMA-64 configuration.
    """

    keys: PAKeys = field(default_factory=PAKeys)
    pac_bits: int = 16
    rounds: int = 7
    sbox: int = 1
    #: ``"qarma"`` computes real QARMA-64 PACs (used by the Fig. 11 study);
    #: ``"fast"`` substitutes a statistically equivalent keyed integer hash
    #: for large workload simulations.  Fig. 11 demonstrates QARMA's PAC
    #: uniformity, which is the only property the HBT depends on, so the
    #: substitution preserves collision behaviour (documented in DESIGN.md).
    mode: str = "qarma"

    def __post_init__(self) -> None:
        if not 11 <= self.pac_bits <= 32:
            raise ValueError("PAC size must be between 11 and 32 bits (§II-B)")
        if self.mode not in ("qarma", "fast"):
            raise ValueError("PAC mode must be 'qarma' or 'fast'")
        self._ciphers: Dict[str, Qarma64] = {}
        self._batch_ciphers: Dict[str, object] = {}

    def _cipher(self, key_name: str) -> Qarma64:
        cipher = self._ciphers.get(key_name)
        if cipher is None:
            cipher = Qarma64(
                self.keys.key_for(key_name), rounds=self.rounds, sbox=self.sbox
            )
            self._ciphers[key_name] = cipher
        return cipher

    def compute(self, pointer: int, modifier: int, key_name: str = "ma") -> int:
        """Return the truncated PAC for ``pointer`` under ``modifier``.

        The full 64-bit QARMA output is truncated to :attr:`pac_bits` bits,
        exactly as the hardware drops the bits that do not fit the unused
        pointer field.
        """
        if self.mode == "fast":
            full = _splitmix64(
                (pointer & MASK64)
                ^ _splitmix64((modifier & MASK64) ^ (self.keys.key_for(key_name) & MASK64))
            )
        else:
            full = self._cipher(key_name).encrypt(pointer & MASK64, modifier & MASK64)
        return full & ((1 << self.pac_bits) - 1)

    def compute_batch(self, pointers, modifier: int, key_name: str = "ma") -> list:
        """Truncated PACs for many pointers under one modifier.

        Semantically ``[self.compute(p, modifier, key_name) for p in
        pointers]`` — the property tests in ``tests/test_properties.py`` pin
        that equivalence — but QARMA mode runs the NumPy-vectorised
        :class:`~repro.crypto.qarma_batch.Qarma64Batch` instead of one
        scalar permutation per pointer.  Fast mode stays scalar: SplitMix64
        is already two multiplies per pointer.
        """
        if self.mode == "fast" or not pointers:
            return [self.compute(p, modifier, key_name=key_name) for p in pointers]
        batch = self._batch_ciphers.get(key_name)
        if batch is None:
            from .qarma_batch import Qarma64Batch

            batch = Qarma64Batch(
                self.keys.key_for(key_name), rounds=self.rounds, sbox=self.sbox
            )
            self._batch_ciphers[key_name] = batch
        import numpy as np

        plaintexts = np.array([p & MASK64 for p in pointers], dtype=np.uint64)
        pacs = batch.pacs(plaintexts, modifier & MASK64, pac_bits=self.pac_bits)
        return [int(p) for p in pacs]

    @property
    def pac_space(self) -> int:
        """Number of distinct PAC values (the HBT row count, §V-B)."""
        return 1 << self.pac_bits

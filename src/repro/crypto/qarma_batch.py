"""Vectorised QARMA-64 for bulk PAC studies (Fig. 11's 1M-malloc run).

Encrypts N 64-bit blocks under one key and one tweak simultaneously using
NumPy nibble arrays.  Bit-for-bit identical to :class:`~.qarma.Qarma64`
(property-tested against the scalar path), but ~two orders of magnitude
faster for large batches, which makes the paper's million-allocation PAC
distribution experiment practical in pure Python.
"""

from __future__ import annotations

import numpy as np

from .qarma import (
    ALPHA,
    MASK64,
    ROUND_CONSTANTS,
    SBOXES,
    TAU,
    TAU_INV,
    _omega_key,
    _update_tweak_bwd,
    _update_tweak_fwd,
    to_cells,
)

#: Column source indices for the circ(0, rho, rho^2, rho) MixColumns:
#: out[row] = rot1(a[row+1]) ^ rot2(a[row+2]) ^ rot1(a[row+3]).
_COL = np.arange(4)


def _to_cells_np(x: np.ndarray) -> np.ndarray:
    """(N,) uint64 -> (N, 16) uint8 nibbles, cell 0 most significant."""
    shifts = np.arange(60, -4, -4, dtype=np.uint64)
    return ((x[:, None] >> shifts[None, :]) & np.uint64(0xF)).astype(np.uint8)


def _from_cells_np(cells: np.ndarray) -> np.ndarray:
    """(N, 16) uint8 -> (N,) uint64."""
    shifts = np.arange(60, -4, -4, dtype=np.uint64)
    return (cells.astype(np.uint64) << shifts[None, :]).sum(
        axis=1, dtype=np.uint64
    )


def _rot4_np(x: np.ndarray, r: int) -> np.ndarray:
    r &= 3
    if r == 0:
        return x
    return ((x << r) | (x >> (4 - r))) & np.uint8(0xF)


def _mix_np(cells: np.ndarray) -> np.ndarray:
    """Vectorised involutory MixColumns over the (N, 16) state."""
    out = np.empty_like(cells)
    matrix = cells.reshape(-1, 4, 4)  # (N, row, col)
    out_m = out.reshape(-1, 4, 4)
    for row in range(4):
        out_m[:, row, :] = (
            _rot4_np(matrix[:, (row + 1) % 4, :], 1)
            ^ _rot4_np(matrix[:, (row + 2) % 4, :], 2)
            ^ _rot4_np(matrix[:, (row + 3) % 4, :], 1)
        )
    return out


class Qarma64Batch:
    """Batched QARMA-64 encryption under a fixed 128-bit key."""

    def __init__(self, key: int, rounds: int = 7, sbox: int = 1) -> None:
        if not 0 <= key < (1 << 128):
            raise ValueError("QARMA-64 key must be a 128-bit integer")
        self.rounds = rounds
        sbox_table = SBOXES[sbox]
        self._sbox = np.array(sbox_table, dtype=np.uint8)
        self.w0 = (key >> 64) & MASK64
        self.k0 = key & MASK64
        self.w1 = _omega_key(self.w0)
        self.k1 = self.k0
        self._tau = np.array(TAU, dtype=np.intp)
        self._tau_inv = np.array(TAU_INV, dtype=np.intp)

    def _tweakey_cells(self, value: int) -> np.ndarray:
        return np.array(to_cells(value), dtype=np.uint8)

    def encrypt(self, plaintexts: np.ndarray, tweak: int) -> np.ndarray:
        """Encrypt a (N,) uint64 array under one tweak."""
        plaintexts = np.asarray(plaintexts, dtype=np.uint64)
        state = _to_cells_np(plaintexts ^ np.uint64(self.w0))
        sbox = self._sbox

        # Precompute the tweak schedule (scalar — shared by all blocks).
        tweaks_fwd = []
        t = tweak
        for _ in range(self.rounds):
            tweaks_fwd.append(t)
            t = _update_tweak_fwd(t)
        center_tweak = t

        for i in range(self.rounds):
            tk = self._tweakey_cells(self.k0 ^ tweaks_fwd[i] ^ ROUND_CONSTANTS[i])
            state ^= tk[None, :]
            if i != 0:
                state = state[:, self._tau]
                state = _mix_np(state)
            state = sbox[state]

        # Centre: forward round with w1, reflector, backward round with w0.
        tk = self._tweakey_cells(self.w1 ^ center_tweak)
        state ^= tk[None, :]
        state = state[:, self._tau]
        state = _mix_np(state)
        state = sbox[state]

        state = state[:, self._tau]
        state = _mix_np(state)
        state ^= self._tweakey_cells(self.k1)[None, :]
        state = state[:, self._tau_inv]

        sbox_inv = np.zeros(16, dtype=np.uint8)
        sbox_inv[sbox] = np.arange(16, dtype=np.uint8)

        state = sbox_inv[state]
        state = _mix_np(state)
        state = state[:, self._tau_inv]
        state ^= self._tweakey_cells(self.w0 ^ center_tweak)[None, :]

        t = center_tweak
        for i in range(self.rounds - 1, -1, -1):
            t = _update_tweak_bwd(t)
            state = sbox_inv[state]
            if i != 0:
                state = _mix_np(state)
                state = state[:, self._tau_inv]
            state ^= self._tweakey_cells(self.k0 ^ t ^ ROUND_CONSTANTS[i] ^ ALPHA)[None, :]

        return _from_cells_np(state) ^ np.uint64(self.w1)

    def pacs(self, pointers: np.ndarray, modifier: int, pac_bits: int = 16) -> np.ndarray:
        """Truncated PACs for a pointer batch (the Arm PA truncation)."""
        full = self.encrypt(pointers, modifier)
        return (full & np.uint64((1 << pac_bits) - 1)).astype(np.uint64)

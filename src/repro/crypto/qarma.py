"""QARMA-64: a reference implementation of the QARMA tweakable block cipher.

QARMA (Avanzi, *IACR ToSC* 2017 [20]) is the lightweight tweakable block
cipher recommended for computing Arm pointer authentication codes.  The
64-bit variant operates on a 4x4 array of 4-bit cells with a three-part
structure: ``r`` forward rounds, a pseudo-reflector, and ``r`` backward
rounds, keyed by a 128-bit key ``K = w0 || k0`` and tweaked by a 64-bit
value ``T``.

This module implements the full cipher — S-box layers, the ``tau`` cell
shuffle, the involutory ``M = circ(0, rho, rho^2, rho)`` MixColumns, the
tweak schedule (``h`` permutation plus the ``omega`` LFSR on cells
{0, 1, 3, 4, 8, 11, 13}), the reflector, and both encryption and decryption
directions.  It is validated in the test suite against the published
test vector for ``sigma_1``/``r = 7`` — the same key/tweak the AOS paper
uses for its Fig. 11 PAC-distribution study.

Cell numbering follows the QARMA paper: cell 0 is the most significant
nibble of the 64-bit word; the state matrix is filled row-major and
MixColumns acts on columns ``(i, i+4, i+8, i+12)``.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

MASK64 = (1 << 64) - 1

#: Round constants: c0 = 0 and then digits of pi (as in the QARMA paper).
ROUND_CONSTANTS: Tuple[int, ...] = (
    0x0000000000000000,
    0x13198A2E03707344,
    0xA4093822299F31D0,
    0x082EFA98EC4E6C89,
    0x452821E638D01377,
    0xBE5466CF34E90C6C,
    0x3F84D5B5B5470917,
    0x9216D5D98979FB1B,
)

#: The reflector constant alpha.
ALPHA = 0xC0AC29B7C97C50DD

#: QARMA S-boxes.  sigma_1 is the cipher's recommended default and the one
#: used for PAC generation in the AOS paper's study.
SBOX_0: Tuple[int, ...] = (0, 14, 2, 10, 9, 15, 8, 11, 6, 4, 3, 7, 13, 12, 1, 5)
SBOX_1: Tuple[int, ...] = (10, 13, 14, 6, 15, 7, 3, 5, 9, 8, 0, 12, 11, 1, 2, 4)
SBOX_2: Tuple[int, ...] = (11, 6, 8, 15, 12, 0, 9, 14, 3, 7, 4, 5, 13, 2, 1, 10)

SBOXES = {0: SBOX_0, 1: SBOX_1, 2: SBOX_2}

#: State cell shuffle tau: new cell i takes old cell TAU[i].
TAU: Tuple[int, ...] = (0, 11, 6, 13, 10, 1, 12, 7, 5, 14, 3, 8, 15, 4, 9, 2)

#: Tweak cell permutation h: new cell i takes old cell H[i].
H_PERM: Tuple[int, ...] = (6, 5, 14, 15, 0, 1, 2, 3, 7, 12, 13, 4, 8, 9, 10, 11)

#: Tweak cells stepped by the omega LFSR each round.
LFSR_CELLS: Tuple[int, ...] = (0, 1, 3, 4, 8, 11, 13)


def _invert_perm(perm: Sequence[int]) -> Tuple[int, ...]:
    inverse = [0] * len(perm)
    for i, p in enumerate(perm):
        inverse[p] = i
    return tuple(inverse)


TAU_INV = _invert_perm(TAU)
H_PERM_INV = _invert_perm(H_PERM)


def _invert_sbox(sbox: Sequence[int]) -> Tuple[int, ...]:
    inverse = [0] * 16
    for i, s in enumerate(sbox):
        inverse[s] = i
    return tuple(inverse)


def to_cells(x: int) -> List[int]:
    """Split a 64-bit word into 16 nibbles, cell 0 = most significant."""
    return [(x >> (60 - 4 * i)) & 0xF for i in range(16)]


def from_cells(cells: Sequence[int]) -> int:
    """Reassemble 16 nibbles (cell 0 most significant) into a 64-bit word."""
    x = 0
    for cell in cells:
        x = (x << 4) | (cell & 0xF)
    return x


def _rot4(x: int, r: int) -> int:
    """Rotate a 4-bit value left by ``r``."""
    r &= 3
    return ((x << r) | (x >> (4 - r))) & 0xF


def _lfsr_fwd(x: int) -> int:
    """omega: (b3, b2, b1, b0) -> (b0 ^ b1, b3, b2, b1)."""
    return ((x >> 1) | ((((x & 1) ^ ((x >> 1) & 1)) << 3))) & 0xF


def _lfsr_bwd(x: int) -> int:
    """omega^-1: (b3, b2, b1, b0) -> (b2, b1, b0, b3 ^ b0)."""
    return (((x << 1) & 0xF) | (((x >> 3) & 1) ^ (x & 1))) & 0xF


def _permute(x: int, perm: Sequence[int]) -> int:
    cells = to_cells(x)
    return from_cells([cells[perm[i]] for i in range(16)])


def _substitute(x: int, sbox: Sequence[int]) -> int:
    cells = to_cells(x)
    return from_cells([sbox[c] for c in cells])


def _mix_columns(x: int) -> int:
    """The involutory QARMA-64 MixColumns M = Q = circ(0, rho, rho^2, rho).

    Acting on each column ``(a0, a1, a2, a3)`` of the 4x4 cell matrix:

    ``new_a_i = rho(a_{i+1}) ^ rho^2(a_{i+2}) ^ rho(a_{i+3})`` (indices mod 4).
    """
    cells = to_cells(x)
    out = [0] * 16
    for col in range(4):
        column = [cells[col + 4 * row] for row in range(4)]
        for row in range(4):
            out[col + 4 * row] = (
                _rot4(column[(row + 1) % 4], 1)
                ^ _rot4(column[(row + 2) % 4], 2)
                ^ _rot4(column[(row + 3) % 4], 1)
            )
    return from_cells(out)


def _update_tweak_fwd(tweak: int) -> int:
    cells = to_cells(tweak)
    cells = [cells[H_PERM[i]] for i in range(16)]
    for i in LFSR_CELLS:
        cells[i] = _lfsr_fwd(cells[i])
    return from_cells(cells)


def _update_tweak_bwd(tweak: int) -> int:
    cells = to_cells(tweak)
    for i in LFSR_CELLS:
        cells[i] = _lfsr_bwd(cells[i])
    cells = [cells[H_PERM_INV[i]] for i in range(16)]
    return from_cells(cells)


def _omega_key(w0: int) -> int:
    """Key orthomorphism o(x) = (x >>> 1) ^ (x >> 63)."""
    return (((w0 >> 1) | ((w0 & 1) << 63)) ^ (w0 >> 63)) & MASK64


class Qarma64:
    """QARMA-64 with a configurable S-box (``sigma``) and round count ``r``.

    Parameters
    ----------
    key:
        The 128-bit key ``K = w0 || k0`` (``w0`` is the high half).
    rounds:
        Number of forward (and backward) rounds; the cipher's designers
        recommend ``r = 7`` for QARMA-64 (and the published PAC studies
        use it).
    sbox:
        Which of the three published S-boxes to use (0, 1, or 2).
    """

    def __init__(self, key: int, rounds: int = 7, sbox: int = 1) -> None:
        if not 0 <= key < (1 << 128):
            raise ValueError("QARMA-64 key must be a 128-bit integer")
        if rounds < 1 or rounds > len(ROUND_CONSTANTS):
            raise ValueError(f"rounds must be in 1..{len(ROUND_CONSTANTS)}")
        if sbox not in SBOXES:
            raise ValueError("sbox must be 0, 1, or 2")
        self.rounds = rounds
        self._sbox = SBOXES[sbox]
        self._sbox_inv = _invert_sbox(self._sbox)
        self.w0 = (key >> 64) & MASK64
        self.k0 = key & MASK64
        self.w1 = _omega_key(self.w0)
        # The reflector's central tweakey.  Validated against the published
        # test vectors (sigma_0/r=5 and sigma_2/r=7): the central key is k0.
        self.k1 = self.k0

    # -- round primitives ---------------------------------------------------

    def _forward_round(self, state: int, tweakey: int, full: bool) -> int:
        state ^= tweakey
        if full:
            state = _permute(state, TAU)
            state = _mix_columns(state)
        return _substitute(state, self._sbox)

    def _backward_round(self, state: int, tweakey: int, full: bool) -> int:
        state = _substitute(state, self._sbox_inv)
        if full:
            state = _mix_columns(state)
            state = _permute(state, TAU_INV)
        return state ^ tweakey

    def _reflect(self, state: int) -> int:
        state = _permute(state, TAU)
        state = _mix_columns(state)
        state ^= self.k1
        return _permute(state, TAU_INV)

    def _reflect_inv(self, state: int) -> int:
        state = _permute(state, TAU)
        state ^= self.k1
        state = _mix_columns(state)  # M is involutory
        return _permute(state, TAU_INV)

    # -- public API ----------------------------------------------------------

    def encrypt(self, plaintext: int, tweak: int) -> int:
        """Encrypt one 64-bit block under the given 64-bit tweak."""
        if not 0 <= plaintext < (1 << 64):
            raise ValueError("plaintext must be a 64-bit integer")
        if not 0 <= tweak < (1 << 64):
            raise ValueError("tweak must be a 64-bit integer")

        state = plaintext ^ self.w0
        for i in range(self.rounds):
            state = self._forward_round(
                state, self.k0 ^ tweak ^ ROUND_CONSTANTS[i], full=(i != 0)
            )
            tweak = _update_tweak_fwd(tweak)

        state = self._forward_round(state, self.w1 ^ tweak, full=True)
        state = self._reflect(state)
        state = self._backward_round(state, self.w0 ^ tweak, full=True)

        for i in range(self.rounds - 1, -1, -1):
            tweak = _update_tweak_bwd(tweak)
            state = self._backward_round(
                state, self.k0 ^ tweak ^ ROUND_CONSTANTS[i] ^ ALPHA, full=(i != 0)
            )
        return state ^ self.w1

    def decrypt(self, ciphertext: int, tweak: int) -> int:
        """Invert :meth:`encrypt` for the same tweak.

        QARMA's reflector design makes decryption the same circuit under the
        transformed key ``(w1, w0, k0 ^ alpha)`` with the reflector key
        conjugated by Q; rather than re-deriving that transformation, we run
        the structural inverse, which is equally valid for a reference model.
        """
        if not 0 <= ciphertext < (1 << 64):
            raise ValueError("ciphertext must be a 64-bit integer")
        if not 0 <= tweak < (1 << 64):
            raise ValueError("tweak must be a 64-bit integer")

        # Recompute the tweak sequence used by encrypt.
        fwd_tweaks = []
        t = tweak
        for _ in range(self.rounds):
            fwd_tweaks.append(t)
            t = _update_tweak_fwd(t)
        center_tweak = t
        bwd_tweaks = []
        for _ in range(self.rounds):
            t = _update_tweak_bwd(t)
            bwd_tweaks.append(t)

        state = ciphertext ^ self.w1
        # Undo the backward half (it ran i = rounds-1 .. 0).
        for idx, i in enumerate(range(0, self.rounds)):
            tk = self.k0 ^ bwd_tweaks[self.rounds - 1 - idx] ^ ROUND_CONSTANTS[i] ^ ALPHA
            state = self._unbackward_round(state, tk, full=(i != 0))
        state = self._unbackward_round(state, self.w0 ^ center_tweak, full=True)
        state = self._reflect_inv(state)
        state = self._unforward_round(state, self.w1 ^ center_tweak, full=True)
        for i in range(self.rounds - 1, -1, -1):
            tk = self.k0 ^ fwd_tweaks[i] ^ ROUND_CONSTANTS[i]
            state = self._unforward_round(state, tk, full=(i != 0))
        return state ^ self.w0

    # -- structural inverses used by decrypt ---------------------------------

    def _unforward_round(self, state: int, tweakey: int, full: bool) -> int:
        state = _substitute(state, self._sbox_inv)
        if full:
            state = _mix_columns(state)
            state = _permute(state, TAU_INV)
        return state ^ tweakey

    def _unbackward_round(self, state: int, tweakey: int, full: bool) -> int:
        state ^= tweakey
        if full:
            state = _permute(state, TAU)
            state = _mix_columns(state)
        return _substitute(state, self._sbox)


def qarma64_encrypt(plaintext: int, tweak: int, key: int, rounds: int = 7, sbox: int = 1) -> int:
    """One-shot QARMA-64 encryption (convenience wrapper)."""
    return Qarma64(key, rounds=rounds, sbox=sbox).encrypt(plaintext, tweak)


def qarma64_decrypt(ciphertext: int, tweak: int, key: int, rounds: int = 7, sbox: int = 1) -> int:
    """One-shot QARMA-64 decryption (convenience wrapper)."""
    return Qarma64(key, rounds=rounds, sbox=sbox).decrypt(ciphertext, tweak)

"""Built-in mechanism registrations.

Imported lazily by the registry's first enumeration.  The oracle tables
here are the single source of the per-mechanism expectations the
adversary corpus used to hard-code in ``_spatial_expectations`` /
``_temporal_expectations``: category defaults plus the per-scenario
quirks (REST catching adjacent-but-not-strided overflows, glibc's
fasttop double-free check, the §VII-C AHC-zeroing escape of plain AOS).

Ordering matters only for presentation: the paper's Fig. 14 set first,
then the §X comparison points, then the four PA-based related-work
plugins.
"""

from __future__ import annotations

from ..core.exceptions import AOSException
from ..errors import AllocatorError
from ..baselines.cheri import CheriFault
from ..baselines.cryptsan import CryptSanFault
from ..baselines.mte import MTEFault
from ..baselines.pa import PAFault
from ..baselines.pacsan import PACSanFault
from ..baselines.pacstack import PACStackFault
from ..baselines.pactight import PACTightFault
from ..baselines.rest import RedzoneFault
from ..baselines.watchdog import WatchdogFault
from ..security.adapters import (
    AOSAdapter,
    BaselineAdapter,
    CheriAdapter,
    CryptSanAdapter,
    MTEAdapter,
    PAAOSAdapter,
    PAAdapter,
    PACSanAdapter,
    PACStackAdapter,
    PACTightAdapter,
    RestAdapter,
    WatchdogAdapter,
)
from .registry import Expectation, MechanismSpec, REGISTRY, ScenarioOracle

_E = Expectation

_SPECS = (
    MechanismSpec(
        name="baseline",
        factory=BaselineAdapter,
        description="unprotected glibc-style heap (normalisation denominator)",
        paper="Fig. 14 baseline",
        lowering="baseline",
        kernel=True,
        oracle=ScenarioOracle(
            spatial=_E.KNOWN_ESCAPE,
            temporal=_E.KNOWN_ESCAPE,
            control=_E.KNOWN_ESCAPE,
            metadata=_E.UNSUPPORTED,
            # glibc's fasttop check catches the naive immediate double free.
            overrides={"double-free": _E.MAY_DETECT},
        ),
        cache_token="baseline-v1",
        detects=(AllocatorError,),
        hwcost={"metadata_bytes_per_object": 0, "checks_per_access": 0,
                "alloc_free_ops": 0},
    ),
    MechanismSpec(
        name="rest",
        factory=RestAdapter,
        description="REST-style redzone trip-wires with a quarantine pool",
        paper="REST [8], §IV-C comparison",
        lowering="rest",
        kernel=True,
        oracle=ScenarioOracle(
            spatial=_E.MAY_DETECT,   # redzone reach depends on stride
            temporal=_E.MAY_DETECT,  # quarantine poisoning
            control=_E.UNSUPPORTED,
            metadata=_E.UNSUPPORTED,
            overrides={
                "heap-overflow-adjacent": _E.MUST_DETECT,
                "linear-oob-write": _E.MUST_DETECT,
                # The motivating REST blind spot: strided OOB skips redzones.
                "nonlinear-oob-read": _E.KNOWN_ESCAPE,
                "uaf-stale-load": _E.MUST_DETECT,
                "double-free": _E.MUST_DETECT,
            },
        ),
        cache_token="rest-v1",
        detects=(RedzoneFault, AllocatorError),
        hwcost={"metadata_bytes_per_object": 128, "checks_per_access": 0,
                "alloc_free_ops": 4},
    ),
    MechanismSpec(
        name="pa",
        factory=PAAdapter,
        description="PARTS-style pointer integrity only (no bounds/liveness)",
        paper="PARTS [21], §II-B",
        lowering="pa",
        kernel=True,
        oracle=ScenarioOracle(
            spatial=_E.KNOWN_ESCAPE,  # pointer integrity only (§II)
            temporal=_E.KNOWN_ESCAPE,
            control=_E.MUST_DETECT,   # signed return addresses
            metadata=_E.UNSUPPORTED,
            overrides={"double-free": _E.MAY_DETECT},
        ),
        cache_token="pa-v1",
        detects=(PAFault, AllocatorError),
        hwcost={"metadata_bytes_per_object": 0, "checks_per_access": 1,
                "alloc_free_ops": 0},
    ),
    MechanismSpec(
        name="mte",
        factory=MTEAdapter,
        description="Arm-MTE/ADI-style 4-bit memory tagging",
        paper="§X (memory tagging)",
        lowering="mte",
        kernel=True,
        oracle=ScenarioOracle(
            spatial=_E.MAY_DETECT,   # 4-bit tags: 1/16 collisions
            temporal=_E.MAY_DETECT,  # retag-on-free may collide
            control=_E.UNSUPPORTED,
            metadata=_E.UNSUPPORTED,
        ),
        cache_token="mte-v1",
        detects=(MTEFault, AllocatorError),
        hwcost={"metadata_bytes_per_object": 2, "checks_per_access": 0,
                "alloc_free_ops": 6},
    ),
    MechanismSpec(
        name="cheri",
        factory=CheriAdapter,
        description="CHERI-style capabilities (no timing lowering: new ISA)",
        paper="§X (capability machines)",
        lowering=None,
        kernel=False,
        oracle=ScenarioOracle(
            spatial=_E.MUST_DETECT,
            temporal=_E.MAY_DETECT,  # revocation-sweep dependent
            control=_E.UNSUPPORTED,
            metadata=_E.UNSUPPORTED,
        ),
        cache_token="cheri-v1",
        detects=(CheriFault, AllocatorError),
        hwcost={"metadata_bytes_per_object": 16, "checks_per_access": 0,
                "alloc_free_ops": 1},
    ),
    MechanismSpec(
        name="watchdog",
        factory=WatchdogAdapter,
        description="Watchdog lock-and-key + bounds check µops",
        paper="Watchdog, Fig. 5a",
        lowering="watchdog",
        kernel=True,
        oracle=ScenarioOracle(
            spatial=_E.MUST_DETECT,
            temporal=_E.MUST_DETECT,
            control=_E.UNSUPPORTED,
            metadata=_E.UNSUPPORTED,
        ),
        cache_token="watchdog-v1",
        detects=(WatchdogFault, AllocatorError),
        hwcost={"metadata_bytes_per_object": 24, "checks_per_access": 1,
                "alloc_free_ops": 4},
    ),
    MechanismSpec(
        name="aos",
        factory=AOSAdapter,
        description="AOS bounds checking off the critical path (this paper)",
        paper="§IV-§V, Fig. 7",
        lowering="aos",
        kernel=True,
        oracle=ScenarioOracle(
            spatial=_E.MUST_DETECT,
            temporal=_E.MUST_DETECT,
            control=_E.KNOWN_ESCAPE,  # the return path AOS ignores
            metadata=_E.MUST_DETECT,
            # Plain AOS skips unsigned pointers: the paper's documented
            # escape, reported by name — never a silent pass.
            overrides={"ahc-zero-escape": _E.KNOWN_ESCAPE},
        ),
        cache_token="aos-v1",
        detects=(AOSException, AllocatorError),
        hwcost={"metadata_bytes_per_object": 8, "checks_per_access": 0,
                "alloc_free_ops": 4},
    ),
    MechanismSpec(
        name="pa+aos",
        factory=PAAOSAdapter,
        description="AOS + PA integrity: autm on load closes §VII-C",
        paper="§VII-B, Fig. 13",
        lowering="pa+aos",
        kernel=True,
        oracle=ScenarioOracle(
            spatial=_E.MUST_DETECT,
            temporal=_E.MUST_DETECT,
            control=_E.MUST_DETECT,
            metadata=_E.MUST_DETECT,
        ),
        cache_token="pa+aos-v1",
        detects=(AOSException, PAFault, AllocatorError),
        hwcost={"metadata_bytes_per_object": 8, "checks_per_access": 1,
                "alloc_free_ops": 4},
    ),
    # ---------------------------------------------- PA-based related work
    MechanismSpec(
        name="cryptsan",
        factory=CryptSanAdapter,
        description="CryptSan-style per-object MACs checked on every access",
        paper="CryptSan (PAPERS.md related work)",
        lowering="cryptsan",
        kernel=True,
        oracle=ScenarioOracle(
            spatial=_E.MUST_DETECT,   # granule tags catch strided OOB too
            temporal=_E.MUST_DETECT,  # untag-on-free, version-bump on reuse
            control=_E.UNSUPPORTED,
            metadata=_E.MUST_DETECT,  # a flipped MAC bit misses every tag
            overrides={"ahc-zero-escape": _E.UNSUPPORTED},  # no AHC field
        ),
        cache_token="cryptsan-v1",
        detects=(CryptSanFault, AllocatorError),
        hwcost={"metadata_bytes_per_object": 8, "checks_per_access": 2,
                "alloc_free_ops": 6},
    ),
    MechanismSpec(
        name="pacsan",
        factory=PACSanAdapter,
        description="PACSan-style shadow-metadata PAC checks on every access",
        paper="PACSan (PAPERS.md related work)",
        lowering="pacsan",
        kernel=True,
        oracle=ScenarioOracle(
            spatial=_E.MUST_DETECT,   # shadow bounds checked per access
            temporal=_E.MUST_DETECT,  # shadow liveness bit
            control=_E.UNSUPPORTED,
            metadata=_E.MUST_DETECT,
            overrides={"ahc-zero-escape": _E.UNSUPPORTED},
        ),
        cache_token="pacsan-v1",
        detects=(PACSanFault, AllocatorError),
        hwcost={"metadata_bytes_per_object": 16, "checks_per_access": 2,
                "alloc_free_ops": 4},
    ),
    MechanismSpec(
        name="pactight",
        factory=PACTightAdapter,
        description="PACTight pointer-identity sealing (no bounds checks)",
        paper="PACTight (PAPERS.md related work)",
        lowering="pactight",
        kernel=True,
        oracle=ScenarioOracle(
            spatial=_E.KNOWN_ESCAPE,  # sealed pointers wander freely
            temporal=_E.MUST_DETECT,  # identity tag destroyed on free
            control=_E.MUST_DETECT,   # return addresses sealed too
            metadata=_E.MUST_DETECT,
            overrides={"ahc-zero-escape": _E.UNSUPPORTED},
        ),
        cache_token="pactight-v1",
        detects=(PACTightFault, AllocatorError),
        hwcost={"metadata_bytes_per_object": 8, "checks_per_access": 1,
                "alloc_free_ops": 3},
    ),
    MechanismSpec(
        name="pacstack",
        factory=PACStackAdapter,
        description="PACStack authenticated return-address chain, raw heap",
        paper="PACStack (PAPERS.md related work)",
        lowering="pacstack",
        kernel=True,
        oracle=ScenarioOracle(
            spatial=_E.KNOWN_ESCAPE,   # heap untouched: baseline behaviour
            temporal=_E.KNOWN_ESCAPE,
            control=_E.MUST_DETECT,    # the one thing it protects
            metadata=_E.UNSUPPORTED,
            overrides={"double-free": _E.MAY_DETECT},  # glibc fasttop
        ),
        cache_token="pacstack-v1",
        detects=(PACStackFault, AllocatorError),
        hwcost={"metadata_bytes_per_object": 0, "checks_per_access": 0,
                "alloc_free_ops": 0},
    ),
)

for _spec in _SPECS:
    REGISTRY.register(_spec)

"""Mechanism plugin registry (ROADMAP: registry/plugin architecture).

One :class:`~repro.mechanisms.registry.MechanismSpec` per protection
scheme declares everything the rest of the repo needs to know about it —
adapter factory, timing-lowering name, fast-kernel support, adversary
oracle defaults, detection exception types, cache-fingerprint token and
hardware-cost model — and registers it in the process-wide
:data:`~repro.mechanisms.registry.REGISTRY`.  The CLI ``--mechanism``
choices, the chaos campaign sweep, the security matrix, the
kernel-equivalence cells and the artifact-cache fingerprints are all
enumerated from the registry, so adding a scheme is one module plus a
registration — no hand-maintained lists (see DESIGN.md, "Mechanism
plugin registry").
"""

from .registry import (
    ENTRY_POINT_GROUP,
    Expectation,
    MechanismRegistry,
    MechanismRegistryError,
    MechanismSpec,
    REGISTRY,
    ScenarioOracle,
    UnknownMechanismError,
    parse_mechanism,
    parse_mechanisms,
    register_mechanism,
    registry_fingerprint,
)

__all__ = [
    "ENTRY_POINT_GROUP",
    "Expectation",
    "MechanismRegistry",
    "MechanismRegistryError",
    "MechanismSpec",
    "REGISTRY",
    "ScenarioOracle",
    "UnknownMechanismError",
    "parse_mechanism",
    "parse_mechanisms",
    "register_mechanism",
    "registry_fingerprint",
]

"""Declarative mechanism specs and the process-wide registry.

A :class:`MechanismSpec` is the single source of truth for one
protection scheme: how to build its security adapter, which timing
lowering (if any) the trace compiler should use, whether the fast
kernel may run it, what the adversary corpus should expect from it
(:class:`ScenarioOracle`), which exception types count as a detection,
its artifact-cache fingerprint token, and a small hardware-cost sketch.

The registry is lazily populated: the first enumeration imports
:mod:`repro.mechanisms.builtin`, which registers the eight legacy
adapters and pulls in the four PA-based plugin baselines.  Explicit
:meth:`MechanismRegistry.register` calls (tests, user plugins) never
trigger that import, so a plugin can be registered before, after, or
instead of the builtins.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from enum import Enum
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..errors import ConfigError, ReproError


class MechanismRegistryError(ReproError):
    """Registry misuse: duplicate name, bad spec, unknown unregister."""


#: The entry-point group out-of-tree packages register mechanisms under.
ENTRY_POINT_GROUP = "repro.mechanisms"


class UnknownMechanismError(ConfigError):
    """A mechanism name that is not registered (strict CLI parsing)."""


class Expectation(str, Enum):
    """What the oracle says a mechanism should do with a scenario.

    ``MUST_DETECT``  — the mechanism's threat model covers this attack;
    a silent escape is a reproduction bug (and fails the campaign).
    ``MAY_DETECT``   — detection depends on heap luck (allocation order,
    tag collisions); either outcome is fine.
    ``KNOWN_ESCAPE`` — the paper itself documents the blind spot; the
    scenario *should* escape, and a detection is a surprise worth
    flagging.
    ``UNSUPPORTED``  — the scenario exercises machinery the mechanism
    does not model (e.g. PAC forgery against a tagging scheme).
    """

    MUST_DETECT = "must-detect"
    MAY_DETECT = "may-detect"
    KNOWN_ESCAPE = "known-escape"
    UNSUPPORTED = "unsupported"


#: Oracle categories a scenario can resolve against.
ORACLE_CATEGORIES = ("spatial", "temporal", "control", "metadata")


@dataclass(frozen=True)
class ScenarioOracle:
    """Per-category expectation defaults plus per-scenario overrides.

    Scenario builders resolve an expectation as: explicit override for
    the scenario name, else the builder's fallback (used by scenarios
    that are universal blind spots, like intra-object overflow), else
    the category default.
    """

    spatial: Expectation = Expectation.KNOWN_ESCAPE
    temporal: Expectation = Expectation.KNOWN_ESCAPE
    control: Expectation = Expectation.UNSUPPORTED
    metadata: Expectation = Expectation.UNSUPPORTED
    overrides: Mapping[str, Expectation] = field(default_factory=dict)

    def expectation(
        self,
        scenario: str,
        category: str,
        fallback: Optional[Expectation] = None,
    ) -> Expectation:
        if scenario in self.overrides:
            return self.overrides[scenario]
        if fallback is not None:
            return fallback
        if category not in ORACLE_CATEGORIES:
            raise MechanismRegistryError(
                f"unknown oracle category {category!r}; "
                f"expected one of {', '.join(ORACLE_CATEGORIES)}"
            )
        return getattr(self, category)


@dataclass(frozen=True)
class MechanismSpec:
    """Everything the repo needs to know about one mechanism."""

    #: Registry key; also the CLI spelling and the SystemConfig name.
    name: str
    #: Zero-argument factory returning a fresh security adapter.
    factory: Callable[[], object]
    #: One-line description for ``python -m repro mechanisms``.
    description: str = ""
    #: Citation anchor (paper section or related-work title).
    paper: str = ""
    #: Trace-compiler lowering name; ``None`` means untimed (no
    #: normalized-time axis — e.g. cheri changes the ISA itself).
    lowering: Optional[str] = None
    #: Whether the fast kernel must replay this mechanism
    #: byte-identically (requires a lowering).
    kernel: bool = False
    #: Adversary-corpus expectations for this mechanism.
    oracle: ScenarioOracle = field(default_factory=ScenarioOracle)
    #: Token folded into every artifact-cache cell fingerprint so a
    #: behaviour change can invalidate cached results for one mechanism
    #: without a global code-digest bump.
    cache_token: str = ""
    #: Exception types that count as "the mechanism detected the bug".
    detects: Tuple[type, ...] = ()
    #: Hardware-cost sketch: metadata bytes per 64B object,
    #: extra checks per heap access, extra instructions per alloc/free.
    hwcost: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name or self.name != self.name.strip():
            raise MechanismRegistryError(
                f"mechanism name must be a non-empty trimmed string, "
                f"got {self.name!r}"
            )
        if not callable(self.factory):
            raise MechanismRegistryError(
                f"mechanism {self.name!r}: factory must be callable"
            )
        if not self.cache_token:
            raise MechanismRegistryError(
                f"mechanism {self.name!r}: cache_token is required so the "
                f"artifact cache can fingerprint its cells"
            )
        if self.kernel and self.lowering is None:
            raise MechanismRegistryError(
                f"mechanism {self.name!r}: kernel=True requires a timing "
                f"lowering (the fast kernel replays Op streams)"
            )

    @property
    def timed(self) -> bool:
        return self.lowering is not None


class MechanismRegistry:
    """Ordered name -> :class:`MechanismSpec` mapping with lazy builtins."""

    def __init__(self) -> None:
        self._specs: Dict[str, MechanismSpec] = {}
        self._loaded = False

    # -- population ----------------------------------------------------

    def _ensure_loaded(self) -> None:
        if not self._loaded:
            # Flip the flag *before* the import: builtin.py registers
            # specs on import, and register() must not re-enter here.
            self._loaded = True
            from . import builtin  # noqa: F401

            self._load_entry_points()

    def _load_entry_points(self) -> None:
        """Discover out-of-tree mechanism packages via entry points.

        Any installed distribution can advertise mechanisms without this
        repo knowing about it::

            [project.entry-points."repro.mechanisms"]
            myscheme = "my_pkg.mechanisms:register"

        Each entry point loads to either a callable — invoked with this
        registry, free to register any number of specs — or a
        :class:`MechanismSpec` registered directly.  A broken plugin is
        reported and skipped: a third-party package must not be able to
        take down every ``repro`` invocation on the host.
        """
        import warnings

        try:
            from importlib.metadata import entry_points
        except ImportError:  # pragma: no cover - 3.7 has no importlib.metadata
            return
        try:
            discovered = entry_points(group=ENTRY_POINT_GROUP)
        except TypeError:  # pragma: no cover - pre-3.10 selection API
            discovered = entry_points().get(ENTRY_POINT_GROUP, ())
        for entry in discovered:
            try:
                loaded = entry.load()
                if isinstance(loaded, MechanismSpec):
                    self.register(loaded)
                elif callable(loaded):
                    loaded(self)
                else:
                    raise MechanismRegistryError(
                        f"entry point must load to a MechanismSpec or a "
                        f"callable(registry), got {type(loaded).__name__}"
                    )
            except Exception as exc:
                warnings.warn(
                    f"skipping mechanism entry point {entry.name!r}: "
                    f"{type(exc).__name__}: {exc}",
                    RuntimeWarning,
                    stacklevel=2,
                )

    def register(
        self, spec: MechanismSpec, replace: bool = False
    ) -> MechanismSpec:
        if not isinstance(spec, MechanismSpec):
            raise MechanismRegistryError(
                f"expected a MechanismSpec, got {type(spec).__name__}"
            )
        if spec.name in self._specs and not replace:
            raise MechanismRegistryError(
                f"mechanism {spec.name!r} is already registered; pass "
                f"replace=True to override it deliberately"
            )
        for other in self._specs.values():
            if other.name != spec.name and other.cache_token == spec.cache_token:
                raise MechanismRegistryError(
                    f"mechanism {spec.name!r} reuses cache token "
                    f"{spec.cache_token!r} of {other.name!r}; tokens must be "
                    f"unique or cached artifacts collide"
                )
        self._specs[spec.name] = spec
        return spec

    def unregister(self, name: str) -> MechanismSpec:
        self._ensure_loaded()
        if name not in self._specs:
            raise MechanismRegistryError(
                f"cannot unregister unknown mechanism {name!r}; "
                f"registered: {', '.join(self._specs) or '(none)'}"
            )
        return self._specs.pop(name)

    # -- enumeration ---------------------------------------------------

    def names(self) -> List[str]:
        self._ensure_loaded()
        return list(self._specs)

    def specs(self) -> List[MechanismSpec]:
        self._ensure_loaded()
        return list(self._specs.values())

    def spec(self, name: str) -> MechanismSpec:
        self._ensure_loaded()
        try:
            return self._specs[name]
        except KeyError:
            raise UnknownMechanismError(
                f"unknown mechanism {name!r}; "
                f"choose from: {', '.join(self._specs)}"
            ) from None

    def get(self, name: str) -> Optional[MechanismSpec]:
        self._ensure_loaded()
        return self._specs.get(name)

    def timed_names(self, kernel_only: bool = False) -> List[str]:
        return [
            s.name
            for s in self.specs()
            if s.timed and (s.kernel or not kernel_only)
        ]

    def untimed_names(self) -> List[str]:
        return [s.name for s in self.specs() if not s.timed]

    def __contains__(self, name: object) -> bool:
        self._ensure_loaded()
        return name in self._specs

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        self._ensure_loaded()
        return len(self._specs)

    # -- derived views -------------------------------------------------

    def make_adapter(self, name: str):
        return self.spec(name).factory()

    def detection_exceptions(self) -> Tuple[type, ...]:
        """Union of every spec's detection exception types, order kept."""
        seen: Dict[type, None] = {}
        for spec in self.specs():
            for exc in spec.detects:
                seen.setdefault(exc, None)
        return tuple(seen)

    def expectations(
        self,
        scenario: str,
        category: str,
        fallback: Optional[Expectation] = None,
    ) -> Dict[str, Expectation]:
        """Per-mechanism oracle row for one scenario."""
        return {
            spec.name: spec.oracle.expectation(scenario, category, fallback)
            for spec in self.specs()
        }

    def fingerprint(self) -> str:
        """Digest of the registered surface — the CI cache key.

        Covers names, cache tokens, lowering/kernel declarations and
        oracle contents: anything that changes which cells exist or
        what they should produce changes the fingerprint.
        """
        digest = hashlib.sha256()
        for spec in sorted(self.specs(), key=lambda s: s.name):
            digest.update(
                "|".join(
                    [
                        spec.name,
                        spec.cache_token,
                        spec.lowering or "-",
                        "k" if spec.kernel else "-",
                        ",".join(
                            f"{cat}={spec.oracle.expectation('', cat).value}"
                            for cat in ORACLE_CATEGORIES
                        ),
                        ",".join(
                            f"{k}={spec.oracle.overrides[k].value}"
                            for k in sorted(spec.oracle.overrides)
                        ),
                    ]
                ).encode()
            )
            digest.update(b"\n")
        return digest.hexdigest()[:16]


#: The process-wide registry every enumeration reads from.
REGISTRY = MechanismRegistry()


def register_mechanism(
    name: str,
    *,
    registry: Optional[MechanismRegistry] = None,
    **spec_kwargs,
) -> Callable[[Callable[[], object]], Callable[[], object]]:
    """Decorator form: register the decorated factory under ``name``.

    ::

        @register_mechanism("myscheme", cache_token="myscheme-v1", ...)
        class MySchemeAdapter: ...
    """

    def decorate(factory: Callable[[], object]) -> Callable[[], object]:
        target = registry if registry is not None else REGISTRY
        target.register(MechanismSpec(name=name, factory=factory, **spec_kwargs))
        return factory

    return decorate


def parse_mechanism(
    value: str, registry: Optional[MechanismRegistry] = None
) -> str:
    """Strictly validate one mechanism name (CLI-facing)."""
    target = registry if registry is not None else REGISTRY
    if value not in target:
        raise UnknownMechanismError(
            f"unknown mechanism {value!r}; "
            f"choose from: {', '.join(target.names())}"
        )
    return value


def parse_mechanisms(
    values: Optional[Sequence[str]],
    registry: Optional[MechanismRegistry] = None,
) -> List[str]:
    """Validate a CLI mechanism list; empty/None means "all registered"."""
    target = registry if registry is not None else REGISTRY
    if not values:
        return target.names()
    return [parse_mechanism(value, target) for value in values]


def registry_fingerprint() -> str:
    """Fingerprint of the default registry (CI cache key helper)."""
    return REGISTRY.fingerprint()

"""Branch prediction for the trace generator.

The paper's core uses L-TAGE (Table IV).  Full TAGE is overkill for a
synthetic-trace study; a gshare predictor with per-site biased outcome
streams gives workload-dependent misprediction rates of the right
magnitude, which is the property the evaluation depends on (the MCQ
back-pressure / misprediction interaction of §IX-A).  The predictor runs
at *trace-generation* time: every branch event carries its resolved
``mispredicted`` flag, so all mechanism variants of one workload see the
identical speculation behaviour.
"""

from __future__ import annotations


class GShareBranchPredictor:
    """A classic gshare: global history XOR PC indexing 2-bit counters."""

    def __init__(self, table_bits: int = 14, history_bits: int = 12) -> None:
        if table_bits < 2 or history_bits < 1:
            raise ValueError("degenerate predictor geometry")
        self.table_bits = table_bits
        self.history_bits = history_bits
        self._table = bytearray([1] * (1 << table_bits))  # weakly not-taken
        self._history = 0
        self.predictions = 0
        self.mispredictions = 0

    def _index(self, pc: int) -> int:
        return (pc ^ self._history) & ((1 << self.table_bits) - 1)

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Predict branch at ``pc``, train on the outcome; returns
        True when the prediction was wrong (a misprediction)."""
        self.predictions += 1
        index = self._index(pc)
        counter = self._table[index]
        predicted_taken = counter >= 2

        if taken and counter < 3:
            self._table[index] = counter + 1
        elif not taken and counter > 0:
            self._table[index] = counter - 1

        self._history = ((self._history << 1) | (1 if taken else 0)) & (
            (1 << self.history_bits) - 1
        )

        mispredicted = predicted_taken != taken
        if mispredicted:
            self.mispredictions += 1
        return mispredicted

    @property
    def misprediction_rate(self) -> float:
        return self.mispredictions / self.predictions if self.predictions else 0.0

"""Out-of-order core timing model (the gem5 substitute).

A cycle-approximate scoreboard model of the Table IV core: 8-wide fetch,
192-entry ROB, 32-entry load/store queues, a 48-entry MCQ with issue
back-pressure, branch-misprediction refills, and delayed retirement while
bounds validation is outstanding.  It is O(1) per instruction, which keeps
multi-hundred-thousand-instruction traces tractable in pure Python while
preserving the first-order effects the paper's evaluation hinges on.
"""

from .branch import GShareBranchPredictor
from .pipeline import PipelineModel, PipelineResult
from .core import Simulator, SimulationResult

__all__ = [
    "GShareBranchPredictor",
    "PipelineModel",
    "PipelineResult",
    "Simulator",
    "SimulationResult",
]

"""The simulator facade: wires config, hierarchy, MCU and pipeline together.

:class:`Simulator` takes a :class:`~repro.config.SystemConfig` and a lowered
workload (a :class:`~repro.compiler.passes.LoweredWorkload`) and produces a
:class:`SimulationResult` with all the measurements the paper's evaluation
section reports: execution cycles, network traffic, bounds-table access
statistics, BWB hit rate, and HBT resize counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional

from ..config import SystemConfig
from ..cache.hierarchy import MemoryHierarchy
from ..core.mcu import MemoryCheckUnit
from ..isa.program import Program
from ..kernel import validate_kernel
from ..kernel.fast import run_fast
from .pipeline import PipelineModel, PipelineResult

if TYPE_CHECKING:
    from ..obs import Observability


@dataclass
class SimulationResult:
    """Everything one simulated run produces."""

    name: str
    mechanism: str
    cycles: float
    instructions: int
    pipeline: PipelineResult
    #: Bytes on the L1<->L2 and L2<->DRAM links (Fig. 18 metric).
    l1_l2_bytes: int = 0
    l2_dram_bytes: int = 0
    cache_summary: Dict[str, float] = field(default_factory=dict)
    #: MCU statistics (Fig. 17: accesses per check, BWB hit rate).
    bounds_accesses_per_check: float = 0.0
    bwb_hit_rate: float = 0.0
    hbt_resizes: int = 0
    bounds_forwards: int = 0
    validation_faults: int = 0
    #: Metrics snapshot (``MetricsRegistry.snapshot()``) when the run was
    #: observed; empty otherwise.  JSON-able, so it survives the pickle
    #: trip back from parallel workers and the artifact cache.
    metrics: Dict = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def network_traffic_bytes(self) -> int:
        return self.l1_l2_bytes + self.l2_dram_bytes


class Simulator:
    """Runs lowered workloads on the Table IV machine."""

    def __init__(
        self,
        config: SystemConfig,
        obs: Optional["Observability"] = None,
        kernel: str = "reference",
    ) -> None:
        self.config = config
        #: Observability handle threaded into every component of a run;
        #: ``None`` (the default) keeps the simulator uninstrumented.
        self.obs = obs
        #: Which simulation kernel executes the program: ``"reference"``
        #: (the readable PipelineModel) or ``"fast"`` (the flattened
        #: transcription in :mod:`repro.kernel.fast`; byte-identical
        #: results, enforced by tests/test_kernel_equivalence.py).
        self.kernel = validate_kernel(kernel)

    def run(self, lowered, inspect=None) -> SimulationResult:
        """Simulate one lowered workload; returns the full measurement set.

        ``lowered`` is a :class:`~repro.compiler.passes.LoweredWorkload`
        (program + pre-warmed HBT + layout) or a bare
        :class:`~repro.isa.program.Program` for unprotected runs.

        ``inspect``, if given, is called as ``inspect(mcu, hbt)`` after the
        pipeline drains but before the MCU/HBT are discarded — the seam the
        ``--paranoid`` invariant oracle audits through (either argument may
        be None for unprotected mechanisms).  An exception it raises
        propagates: a failed audit must fail the cell, not be summarized.
        """
        if isinstance(lowered, Program):
            program = lowered
            hbt = None
            pointer_layout = None
            name = lowered.name
        else:
            program = lowered.program
            hbt = lowered.hbt  # fresh, pre-warmed copy per run
            pointer_layout = lowered.pointer_layout
            name = lowered.name

        uses_aos = hbt is not None and pointer_layout is not None
        hierarchy = MemoryHierarchy(
            self.config.memory,
            use_l1b=uses_aos and self.config.aos.l1b_cache,
        )

        obs = self.obs
        mcu: Optional[MemoryCheckUnit] = None
        va_mask = (1 << 46) - 1
        if uses_aos:
            va_mask = pointer_layout.va_mask
            mcu = MemoryCheckUnit(
                hbt=hbt,
                layout=pointer_layout,
                options=self.config.aos,
                bwb_config=self.config.bwb,
                mcq_capacity=self.config.core.mcq_entries,
                bounds_access=hierarchy.access_bounds,
                obs=obs,
            )
            # The HBT is built at lowering time, before this run's obs
            # exists; attach it here so resize events are cycle-stamped.
            hbt.set_obs(obs)

        # Event tracing is only wired through the reference kernel (a traced
        # run is a debugging run, not a perf run); the fast kernel covers
        # untraced and metrics-only observability.
        if self.kernel == "fast" and (obs is None or obs.tracer is None):
            result = run_fast(self.config, hierarchy, mcu, va_mask, obs, program)
        else:
            pipeline = PipelineModel(
                self.config, hierarchy, mcu=mcu, va_mask=va_mask, obs=obs
            )
            result = pipeline.run(program)
        if inspect is not None:
            inspect(mcu, hbt)

        sim = SimulationResult(
            name=name,
            mechanism=self.config.mechanism,
            cycles=result.cycles,
            instructions=result.instructions,
            pipeline=result,
            l1_l2_bytes=hierarchy.traffic.l1_l2_bytes,
            l2_dram_bytes=hierarchy.traffic.l2_dram_bytes,
            cache_summary=hierarchy.summary(),
            validation_faults=result.validation_faults,
        )
        if mcu is not None:
            sim.bounds_accesses_per_check = mcu.stats.accesses_per_check
            if mcu.bwb is not None:
                sim.bwb_hit_rate = mcu.bwb.stats.hit_rate
            # hbt.stats counts both preamble (pre-window program history)
            # and in-window resizes — matching the paper's whole-run count.
            sim.hbt_resizes = hbt.stats.resizes
            sim.bounds_forwards = mcu.stats.forwards

        if obs is not None:
            # Bulk harvest: one pass over the components' stats dataclasses
            # after the pipeline drains, then a JSON-able snapshot.
            registry = obs.registry
            hierarchy.publish_metrics(registry)
            result.publish_metrics(registry)
            if mcu is not None:
                mcu.publish_metrics(registry)
            if obs.tracer is not None:
                # Stamp any post-run events at the final commit cycle.
                obs.tracer.cycle = result.cycles
                obs.tracer.emit(
                    "run.done",
                    instructions=result.instructions,
                    mechanism=self.config.mechanism,
                    workload=name,
                )
            sim.metrics = obs.snapshot()
        return sim

"""The simulator facade: wires config, hierarchy, MCU and pipeline together.

:class:`Simulator` takes a :class:`~repro.config.SystemConfig` and a lowered
workload (a :class:`~repro.compiler.passes.LoweredWorkload`) and produces a
:class:`SimulationResult` with all the measurements the paper's evaluation
section reports: execution cycles, network traffic, bounds-table access
statistics, BWB hit rate, and HBT resize counts.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional

from ..config import SystemConfig
from ..cache.hierarchy import MemoryHierarchy
from ..core.mcu import MemoryCheckUnit
from ..isa.program import Program
from ..kernel import validate_kernel
from ..kernel.fast import run_fast
from .pipeline import PipelineModel, PipelineResult

#: Environment fallback for the guard-injection seam (tests/CI); the
#: ``Simulator(guard_inject=...)`` / ``RunSettings.guard_inject`` parameter
#: takes precedence when non-empty.
GUARD_INJECT_ENV = "REPRO_GUARD_INJECT"

if TYPE_CHECKING:
    from ..obs import Observability


@dataclass
class SimulationResult:
    """Everything one simulated run produces."""

    name: str
    mechanism: str
    cycles: float
    instructions: int
    pipeline: PipelineResult
    #: Bytes on the L1<->L2 and L2<->DRAM links (Fig. 18 metric).
    l1_l2_bytes: int = 0
    l2_dram_bytes: int = 0
    cache_summary: Dict[str, float] = field(default_factory=dict)
    #: MCU statistics (Fig. 17: accesses per check, BWB hit rate).
    bounds_accesses_per_check: float = 0.0
    bwb_hit_rate: float = 0.0
    hbt_resizes: int = 0
    bounds_forwards: int = 0
    validation_faults: int = 0
    #: Metrics snapshot (``MetricsRegistry.snapshot()``) when the run was
    #: observed; empty otherwise.  JSON-able, so it survives the pickle
    #: trip back from parallel workers and the artifact cache.
    metrics: Dict = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def network_traffic_bytes(self) -> int:
        return self.l1_l2_bytes + self.l2_dram_bytes


class Simulator:
    """Runs lowered workloads on the Table IV machine."""

    def __init__(
        self,
        config: SystemConfig,
        obs: Optional["Observability"] = None,
        kernel: str = "reference",
        guard_inject: str = "",
    ) -> None:
        self.config = config
        #: Observability handle threaded into every component of a run;
        #: ``None`` (the default) keeps the simulator uninstrumented.
        self.obs = obs
        #: Which simulation kernel executes the program: ``"reference"``
        #: (the readable PipelineModel), ``"fast"`` (the flattened
        #: transcription in :mod:`repro.kernel.fast`), or ``"specialized"``
        #: (trace-speculative generated code, :mod:`repro.kernel.specialize`)
        #: — all byte-identical, enforced by tests/test_kernel_equivalence.py.
        self.kernel = validate_kernel(kernel)
        #: Deterministic guard-failure injection for the specialized kernel
        #: (see :func:`repro.kernel.specialize.parse_injection`); empty means
        #: off.  Falls back to the ``REPRO_GUARD_INJECT`` environment
        #: variable so CI can force the fallback path without code changes.
        self.guard_inject = guard_inject or os.environ.get(GUARD_INJECT_ENV, "")

    def run(self, lowered, inspect=None) -> SimulationResult:
        """Simulate one lowered workload; returns the full measurement set.

        ``lowered`` is a :class:`~repro.compiler.passes.LoweredWorkload`
        (program + pre-warmed HBT + layout) or a bare
        :class:`~repro.isa.program.Program` for unprotected runs.

        ``inspect``, if given, is called as ``inspect(mcu, hbt)`` after the
        pipeline drains but before the MCU/HBT are discarded — the seam the
        ``--paranoid`` invariant oracle audits through (either argument may
        be None for unprotected mechanisms).  An exception it raises
        propagates: a failed audit must fail the cell, not be summarized.
        """
        program, name, hierarchy, mcu, va_mask, hbt = self._wire(lowered)
        obs = self.obs

        # Event tracing is only wired through the reference kernel (a traced
        # run is a debugging run, not a perf run); the fast and specialized
        # kernels cover untraced and metrics-only observability.
        traced = obs is not None and obs.tracer is not None
        if self.kernel == "fast" and not traced:
            result = run_fast(self.config, hierarchy, mcu, va_mask, obs, program)
        elif self.kernel == "specialized" and not traced:
            result, hierarchy, mcu, hbt = self._run_specialized(
                lowered, program, name, hierarchy, mcu, va_mask, hbt
            )
        else:
            pipeline = PipelineModel(
                self.config, hierarchy, mcu=mcu, va_mask=va_mask, obs=obs
            )
            result = pipeline.run(program)
        if inspect is not None:
            inspect(mcu, hbt)
        return self._assemble(result, name, hierarchy, mcu, hbt)

    def _assemble(self, result, name, hierarchy, mcu, hbt) -> SimulationResult:
        """Fold one drained run's component state into a SimulationResult."""
        sim = SimulationResult(
            name=name,
            mechanism=self.config.mechanism,
            cycles=result.cycles,
            instructions=result.instructions,
            pipeline=result,
            l1_l2_bytes=hierarchy.traffic.l1_l2_bytes,
            l2_dram_bytes=hierarchy.traffic.l2_dram_bytes,
            cache_summary=hierarchy.summary(),
            validation_faults=result.validation_faults,
        )
        if mcu is not None:
            sim.bounds_accesses_per_check = mcu.stats.accesses_per_check
            if mcu.bwb is not None:
                sim.bwb_hit_rate = mcu.bwb.stats.hit_rate
            # hbt.stats counts both preamble (pre-window program history)
            # and in-window resizes — matching the paper's whole-run count.
            sim.hbt_resizes = hbt.stats.resizes
            sim.bounds_forwards = mcu.stats.forwards

        obs = self.obs
        if obs is not None:
            # Bulk harvest: one pass over the components' stats dataclasses
            # after the pipeline drains, then a JSON-able snapshot.
            registry = obs.registry
            hierarchy.publish_metrics(registry)
            result.publish_metrics(registry)
            if mcu is not None:
                mcu.publish_metrics(registry)
            if obs.tracer is not None:
                # Stamp any post-run events at the final commit cycle.
                obs.tracer.cycle = result.cycles
                obs.tracer.emit(
                    "run.done",
                    instructions=result.instructions,
                    mechanism=self.config.mechanism,
                    workload=name,
                )
            sim.metrics = obs.snapshot()
        return sim

    # ------------------------------------------------------------- plumbing

    def _wire(self, lowered):
        """Build the fresh per-run machine state for one lowered workload.

        Called once per run, and a second time when a specialization guard
        aborts: the aborted attempt's partially-mutated hierarchy/MCU/HBT
        are discarded wholesale and the reference rerun starts from the same
        pristine state (``lowered.hbt`` hands out a fresh pre-warmed clone
        on every access).
        """
        if isinstance(lowered, Program):
            program = lowered
            hbt = None
            pointer_layout = None
            name = lowered.name
        else:
            program = lowered.program
            hbt = lowered.hbt  # fresh, pre-warmed copy per run
            pointer_layout = lowered.pointer_layout
            name = lowered.name

        uses_aos = hbt is not None and pointer_layout is not None
        hierarchy = MemoryHierarchy(
            self.config.memory,
            use_l1b=uses_aos and self.config.aos.l1b_cache,
        )

        obs = self.obs
        mcu: Optional[MemoryCheckUnit] = None
        va_mask = (1 << 46) - 1
        if uses_aos:
            va_mask = pointer_layout.va_mask
            mcu = MemoryCheckUnit(
                hbt=hbt,
                layout=pointer_layout,
                options=self.config.aos,
                bwb_config=self.config.bwb,
                mcq_capacity=self.config.core.mcq_entries,
                bounds_access=hierarchy.access_bounds,
                obs=obs,
            )
            # The HBT is built at lowering time, before this run's obs
            # exists; attach it here so resize events are cycle-stamped.
            hbt.set_obs(obs)
        return program, name, hierarchy, mcu, va_mask, hbt

    def _run_specialized(self, lowered, program, name, hierarchy, mcu, va_mask, hbt):
        """Execute via the trace-speculative kernel (train / run / fall back).

        - **no specialization cached**: this is the training run — execute
          the fast kernel (byte-identical by contract), summarize what it
          saw into a :class:`~repro.kernel.specialize.TraceProfile`, compile
          the specialization for subsequent runs, and return the training
          result directly;
        - **cached**: run the generated kernel; any
          :class:`~repro.kernel.specialize.GuardAbort` (including the
          injection seam) is counted (``kernel.guard_abort``), the mutated
          state is discarded, and the cell reruns from pristine state on the
          reference kernel.
        """
        from ..kernel import specialize as spec_mod
        from ..kernel.flatten import flatten_program

        obs = self.obs
        spec = spec_mod.lookup(name, self.config)
        if spec is None:
            entry_resizing = hbt.resizing if hbt is not None else False
            entry_ways = hbt.ways if hbt is not None else 0
            entry_migrated = hbt.stats.migrated_rows if hbt is not None else 0
            result = run_fast(self.config, hierarchy, mcu, va_mask, obs, program)
            saw_fault = result.validation_faults > 0
            saw_resize = hbt is not None and (
                entry_resizing
                or hbt.resizing
                or hbt.ways != entry_ways
                or hbt.stats.migrated_rows > entry_migrated
            )
            profile = spec_mod.build_profile(
                flatten_program(program), self.config, hierarchy, mcu,
                va_mask, saw_fault, saw_resize,
            )
            spec_mod.specialize(name, self.config, hierarchy, mcu, va_mask, profile)
            spec_mod.STATS.trainings += 1
            return result, hierarchy, mcu, hbt

        try:
            result = spec_mod.run_specialized(
                spec, self.config, hierarchy, mcu, va_mask, program,
                inject=self.guard_inject,
            )
            return result, hierarchy, mcu, hbt
        except spec_mod.GuardAbort as exc:
            spec_mod.record_abort(exc, obs)
            program, name, hierarchy, mcu, va_mask, hbt = self._wire(lowered)
            pipeline = PipelineModel(
                self.config, hierarchy, mcu=mcu, va_mask=va_mask, obs=obs
            )
            return pipeline.run(program), hierarchy, mcu, hbt
